(* Robust lock paths: owner-death recovery with EOWNERDEAD witnesses.

   The central claims under test, for every algorithm the factory
   builds: with a crash-stopped holder, (1) every surviving thread
   completes (verdict [Completed], no watchdog stall), (2) exactly one
   recovering acquisition witnesses the dead holder ([Owner_died]),
   (3) the witness arrives before the protected state is reused, so a
   recovery closure restores consistency, and (4) with no faults at
   all the robust paths are just a working lock (all grants [Clean],
   no lost updates). *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_simlocks

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all_algos p = Simlock.algos_for p

(* Shared-state pair kept equal by every critical section; a holder
   crash between the two stores leaves them unequal until the next
   grant's recovery closure repairs the invariant. *)
type shared = {
  lock : Lock_type.t;
  d1 : Memory.addr;
  d2 : Memory.addr;
  witnesses : int list list ref; (* every Owner_died payload seen *)
}

let robust_cs shared ~tid ~work =
  (match shared.lock.Lock_type.acquire_robust ~tid with
  | Lock_type.Clean -> ()
  | Lock_type.Owner_died { dead } ->
      shared.witnesses := dead :: !(shared.witnesses);
      (* repair: make d2 agree with d1 again *)
      Sim.store shared.d2 (Sim.load shared.d1));
  let x = Sim.load shared.d1 in
  Sim.store shared.d1 (x + 1);
  work ();
  Sim.store shared.d2 (x + 1);
  shared.lock.Lock_type.release_robust ~tid

(* One crash-stopped holder (workload tid 0 = engine tid 0: the hashed
   spawn order keeps 0 first), five survivors hammering the robust
   path. *)
let crashed_holder_robust ?(platform = Platform.opteron) ?(crash_at = 40_000)
    algo =
  let p = platform in
  let threads = 6 in
  let faults = Fault.crash_stop ~seed:1 [ (0, crash_at) ] in
  let witnesses = ref [] in
  let stats = ref (Lock_type.rstats_zero ()) in
  let r =
    Harness.run ~faults p ~threads ~duration:150_000
      ~setup:(fun mem ->
        let lock = Simlock.create mem p ~n_threads:threads algo in
        stats := lock.Lock_type.rstats;
        {
          lock;
          d1 = Memory.alloc ~home_core:0 mem;
          d2 = Memory.alloc ~home_core:0 mem;
          witnesses;
        })
      ~body:(fun shared _mem ~tid ~deadline ->
        if tid = 0 then begin
          (* the victim: robust-acquires, then dies mid-critical-section
             with d1 already bumped and d2 not yet *)
          (match shared.lock.Lock_type.acquire_robust ~tid with
          | Lock_type.Clean -> ()
          | Lock_type.Owner_died { dead } ->
              shared.witnesses := dead :: !(shared.witnesses));
          let x = Sim.load shared.d1 in
          Sim.store shared.d1 (x + 1);
          Sim.pause 1_000_000;
          (* never reached *)
          Sim.store shared.d2 (x + 1);
          shared.lock.Lock_type.release_robust ~tid;
          0
        end
        else begin
          let n = ref 0 in
          while Sim.now () < deadline do
            robust_cs shared ~tid ~work:(fun () -> Sim.pause 60);
            incr n;
            Sim.pause 120
          done;
          !n
        end)
  in
  (r, !witnesses, !stats)

let test_owner_death_recovery () =
  List.iter
    (fun algo ->
      let r, witnesses, _ = crashed_holder_robust algo in
      let label s = Printf.sprintf "%s %s" (Simlock.name algo) s in
      check_bool (label "crash recorded") true
        (r.Harness.health.Sim.crashed = [ 0 ]);
      check_bool (label "verdict is Completed") true
        (r.Harness.health.Sim.verdict = Sim.Completed);
      check_bool (label "victim marked incomplete") false
        r.Harness.completed.(0);
      check_bool (label "survivors completed") true
        (Array.for_all (fun c -> c) (Array.sub r.Harness.completed 1 5));
      (* exactly one grant witnessed the dead holder, and named it *)
      check_bool (label "owner death witnessed once") true
        (witnesses = [ [ 0 ] ]);
      check_bool (label "survivors made progress") true (r.Harness.total_ops > 0))
    (all_algos Platform.opteron)

(* The same scenario on a single-socket platform (no hierarchical
   locks there, matching the paper's setup). *)
let test_owner_death_recovery_niagara () =
  List.iter
    (fun algo ->
      let r, witnesses, _ =
        crashed_holder_robust ~platform:Platform.niagara algo
      in
      let label s = Printf.sprintf "niagara %s %s" (Simlock.name algo) s in
      check_bool (label "verdict is Completed") true
        (r.Harness.health.Sim.verdict = Sim.Completed);
      check_bool (label "owner death witnessed once") true
        (witnesses = [ [ 0 ] ]))
    (all_algos Platform.niagara)

(* Robust paths under [Fault.none] are just a working lock: every grant
   Clean, no lost updates, every thread completes. *)
let test_robust_faultless () =
  List.iter
    (fun algo ->
      let p = Platform.opteron in
      let threads = 8 in
      let iters = 40 in
      let witnesses = ref [] in
      let r =
        Harness.run p ~threads ~duration:4_000_000
          ~setup:(fun mem ->
            let lock = Simlock.create mem p ~n_threads:threads algo in
            {
              lock;
              d1 = Memory.alloc ~home_core:0 mem;
              d2 = Memory.alloc ~home_core:0 mem;
              witnesses;
            })
          ~body:(fun shared _mem ~tid ~deadline:_ ->
            for _ = 1 to iters do
              robust_cs shared ~tid ~work:(fun () -> Sim.pause 30);
              Sim.pause 50
            done;
            iters)
      in
      let label s = Printf.sprintf "%s %s" (Simlock.name algo) s in
      check_bool (label "completed") true
        (r.Harness.health.Sim.verdict = Sim.Completed);
      check_bool (label "all clean grants") true (!witnesses = []);
      ())
    (all_algos Platform.opteron)

(* No lost updates through the robust path: re-run the faultless
   workload and check the shared counter equals total increments. *)
let test_robust_counter_exact () =
  List.iter
    (fun algo ->
      let p = Platform.xeon in
      let threads = 6 in
      let iters = 30 in
      let final = ref 0 in
      let r =
        Harness.run p ~threads ~duration:4_000_000
          ~setup:(fun mem ->
            let lock = Simlock.create mem p ~n_threads:threads algo in
            let d1 = Memory.alloc ~home_core:0 mem in
            let d2 = Memory.alloc ~home_core:0 mem in
            (lock, d1, d2, mem))
          ~body:(fun (lock, d1, d2, mem) _mem ~tid ~deadline:_ ->
            for _ = 1 to iters do
              (match lock.Lock_type.acquire_robust ~tid with
              | Lock_type.Clean -> ()
              | Lock_type.Owner_died _ -> assert false);
              let x = Sim.load d1 in
              Sim.pause 25;
              Sim.store d1 (x + 1);
              Sim.store d2 (x + 1);
              lock.Lock_type.release_robust ~tid;
              Sim.pause 40
            done;
            final := Memory.peek mem d1;
            iters)
      in
      let label s = Printf.sprintf "%s %s" (Simlock.name algo) s in
      check_bool (label "completed") true
        (r.Harness.health.Sim.verdict = Sim.Completed);
      check_int (label "no lost updates") (threads * iters) !final)
    (all_algos Platform.xeon)

(* Recovery bookkeeping: the rstats counters reflect the single
   dead-holder recovery the crashed-holder run performs. *)
let test_rstats_accounting () =
  List.iter
    (fun algo ->
      let _, _, st = crashed_holder_robust algo in
      let label s = Printf.sprintf "%s %s" (Simlock.name algo) s in
      check_bool (label "grants counted") true (st.Lock_type.r_grants > 0);
      check_int (label "one owner death surfaced") 1
        st.Lock_type.r_owner_deaths;
      check_bool (label "dead holder claimed") true
        (st.Lock_type.r_dead_holders >= 1);
      check_bool (label "recovery episode closed") true
        (st.Lock_type.r_recoveries >= 1);
      (* latency is detection -> grant; locks that claim the corpse
         with a real memory operation in between must clock non-zero
         cycles (the MCS/CLH family claims within one atomic block, so
         it can legitimately report a zero-cycle recovery) *)
      if not (List.mem algo [ Simlock.Mcs; Simlock.Clh; Simlock.Hclh ]) then
        check_bool (label "recovery latency measured") true
          (st.Lock_type.r_recovery_cycles > 0))
    (all_algos Platform.opteron)

(* ------------------------------------------------------------------ *)
(* The invariant checker itself: hand-built traces with known defects
   must be flagged, and the crash-aware exemptions must hold.  (The
   chaos sweep only ever shows the checker zero-violation runs, so this
   is the only place its teeth are tested.) *)

let test_invariant_checker_teeth () =
  let module Trace = Ssync_trace.Trace in
  let mk () =
    let tr = Trace.create () in
    let lk = Trace.new_lock tr "MCS" in
    (tr, lk)
  in
  let spawn tr tids =
    List.iter
      (fun t -> Trace.emit tr ~ts:0 (Trace.E_thread { tid = t; core = t }))
      tids
  in
  let acq tr lk ~ts tid =
    Trace.emit tr ~ts (Trace.E_acq { tid; lock = lk; wait = 0; dist = None })
  in
  let rel tr lk ~ts tid =
    Trace.emit tr ~ts (Trace.E_rel { tid; lock = lk; held = 10 })
  in
  let all_done _ = true in
  (* clean alternation: no violations *)
  let tr, lk = mk () in
  spawn tr [ 0; 1 ];
  acq tr lk ~ts:10 0;
  rel tr lk ~ts:20 0;
  acq tr lk ~ts:30 1;
  rel tr lk ~ts:40 1;
  let rep = Invariant.check ~completed:all_done tr in
  check_bool "clean trace passes" true (Invariant.ok rep);
  (* double grant: second acquisition while a live holder is out *)
  let tr, lk = mk () in
  spawn tr [ 0; 1 ];
  acq tr lk ~ts:10 0;
  acq tr lk ~ts:15 1;
  rel tr lk ~ts:20 0;
  rel tr lk ~ts:25 1;
  let rep = Invariant.check ~completed:all_done tr in
  check_bool "double grant flagged" true
    (List.exists
       (fun v -> v.Invariant.v_kind = Invariant.Mutual_exclusion)
       rep.Invariant.violations);
  (* the same overlap is a recovery steal when the holder crashed *)
  let tr, lk = mk () in
  spawn tr [ 0; 1 ];
  acq tr lk ~ts:10 0;
  Trace.emit tr ~ts:12
    (Trace.E_fault { tid = 0; kind = Trace.Crash; cycles = 0 });
  acq tr lk ~ts:15 1;
  rel tr lk ~ts:25 1;
  let rep = Invariant.check ~completed:(fun t -> t <> 0) tr in
  check_bool "steal past a corpse allowed" true (Invariant.ok rep);
  check_int "steal counted" 1 rep.Invariant.steals;
  (* unbounded overtaking on a FIFO lock: t1 waits while t0 churns *)
  let tr, lk = mk () in
  spawn tr [ 0; 1 ];
  Trace.emit tr ~ts:5 (Trace.E_wait { tid = 1; lock = lk });
  for i = 0 to 19 do
    Trace.emit tr ~ts:((i * 20) + 6) (Trace.E_wait { tid = 0; lock = lk });
    acq tr lk ~ts:((i * 20) + 10) 0;
    rel tr lk ~ts:((i * 20) + 15) 0
  done;
  let rep = Invariant.check ~completed:all_done tr in
  check_bool "unbounded overtaking flagged" true
    (List.exists
       (fun v -> v.Invariant.v_kind = Invariant.Overtaking)
       rep.Invariant.violations);
  check_bool "overtaking depth reported" true (rep.Invariant.max_overtakes >= 20);
  (* a never-woken park from a live incomplete thread is a lost wakeup *)
  let tr, _ = mk () in
  spawn tr [ 0; 1 ];
  Trace.emit tr ~ts:10 (Trace.E_park { tid = 1; addr = 7 });
  let rep = Invariant.check ~completed:(fun t -> t = 0) tr in
  check_bool "lost wakeup flagged" true
    (List.exists
       (fun v -> v.Invariant.v_kind = Invariant.Lost_wakeup)
       rep.Invariant.violations);
  (* ...but not when the sleeper was woken, crashed, or completed *)
  let tr, _ = mk () in
  spawn tr [ 0; 1 ];
  Trace.emit tr ~ts:10 (Trace.E_park { tid = 1; addr = 7 });
  Trace.emit tr ~ts:20 (Trace.E_wake { tid = 1; addr = 7 });
  let rep = Invariant.check ~completed:(fun t -> t = 0) tr in
  check_bool "woken sleeper not flagged for wakeup" true
    (not
       (List.exists
          (fun v -> v.Invariant.v_kind = Invariant.Lost_wakeup)
          rep.Invariant.violations));
  (* liveness: a non-crashed spawned thread that never completed *)
  let tr, _ = mk () in
  spawn tr [ 0; 1 ];
  let rep = Invariant.check ~completed:(fun t -> t = 0) tr in
  check_bool "wedged survivor flagged" true
    (List.exists
       (fun v -> v.Invariant.v_kind = Invariant.Liveness)
       rep.Invariant.violations)

(* ------------------------------------------------------------------ *)
(* acquire_timeout edge cases and trylock under a crashed holder. *)

(* Deadline landing in the neighbourhood of the grant instant: sweep
   timeouts across the holder's release time so one of them expires
   exactly as the lock becomes free.  Whatever side the race lands on,
   the call must stay coherent: [false] leaves no trace (the lock is
   immediately acquirable afterwards), [true] means the holder had
   released first (mutual exclusion preserved).  The engine is
   deterministic, so this covers the exact-tie cycle too. *)
let test_timeout_at_grant_boundary () =
  let p = Platform.opteron in
  let hold = 8_000 in
  List.iter
    (fun algo ->
      List.iter
        (fun delta ->
          let timeout = hold + delta in
          let got = ref None in
          let r =
            Harness.run p ~threads:2 ~duration:80_000
              ~setup:(fun mem -> Simlock.create mem p ~n_threads:2 algo)
              ~body:(fun lock _mem ~tid ~deadline:_ ->
                if tid = 0 then begin
                  lock.Lock_type.acquire ~tid;
                  Sim.pause hold;
                  lock.Lock_type.release ~tid;
                  1
                end
                else begin
                  Sim.pause 200;
                  (* the holder wins the initial race; our deadline
                     lands around its release *)
                  let okd =
                    Lock_type.acquire_timeout lock ~tid ~timeout
                  in
                  if okd then begin
                    Sim.pause 50;
                    lock.Lock_type.release ~tid
                  end;
                  got := Some okd;
                  (* timed out or not, the lock must be free now and
                     the timed attempt must have left no trace in it *)
                  Sim.pause 20_000;
                  if not (lock.Lock_type.try_acquire ~tid) then
                    failwith "lock wedged after acquire_timeout";
                  lock.Lock_type.release ~tid;
                  1
                end)
          in
          let label =
            Printf.sprintf "%s delta=%d" (Simlock.name algo) delta
          in
          check_bool (label ^ " completed") true (Harness.completed_all r);
          check_bool (label ^ " returned") true (!got <> None))
        [ -600; -40; -5; 0; 5; 40; 600 ])
    [ Simlock.Ticket; Simlock.Mcs; Simlock.Clh; Simlock.Mutex ]

(* A timed waiter giving up must not eat a wakeup that belongs to a
   parked waiter: holder + parked blocking waiter + timed waiter that
   times out while the other sleeps — the release must still reach the
   sleeper and the run must complete. *)
let test_timeout_while_others_parked () =
  let p = Platform.opteron in
  let timed_out = ref None in
  let r =
    Harness.run ~parking:true p ~threads:3 ~duration:120_000
      ~setup:(fun mem -> Simlock.create mem p ~n_threads:3 Simlock.Mutex)
      ~body:(fun lock _mem ~tid ~deadline:_ ->
        match tid with
        | 0 ->
            lock.Lock_type.acquire ~tid;
            Sim.pause 30_000;
            lock.Lock_type.release ~tid;
            1
        | 1 ->
            Sim.pause 500;
            (* blocking waiter: sleeps until tid 0's release wakes it *)
            lock.Lock_type.acquire ~tid;
            Sim.pause 50;
            lock.Lock_type.release ~tid;
            1
        | _ ->
            Sim.pause 1_000;
            (* expires while the holder still has 25k cycles to go *)
            timed_out :=
              Some (Lock_type.acquire_timeout lock ~tid ~timeout:4_000);
            1)
  in
  check_bool "run completed (no lost wakeup)" true (Harness.completed_all r);
  check_bool "timed waiter gave up" true (!timed_out = Some false)

(* try_acquire against a crash-stopped holder, all nine locks: every
   attempt must return false immediately (the plain path cannot recover
   a dead owner) and leave no trace — so the survivors complete and the
   run never stalls, which is exactly why acquire_timeout is the escape
   hatch for non-robust users. *)
let test_trylock_under_crash () =
  List.iter
    (fun algo ->
      let p = Platform.opteron in
      let threads = 6 in
      let faults = Fault.crash_stop ~seed:1 [ (0, 40_000) ] in
      let snuck = ref 0 in
      let r =
        Harness.run ~faults p ~threads ~duration:100_000
          ~setup:(fun mem -> Simlock.create mem p ~n_threads:threads algo)
          ~body:(fun lock _mem ~tid ~deadline ->
            if tid = 0 then begin
              lock.Lock_type.acquire ~tid;
              Sim.pause 500_000;
              (* never reached: crash-stopped mid-hold *)
              lock.Lock_type.release ~tid;
              0
            end
            else begin
              Sim.pause 1_000;
              (* from here the victim holds the lock until it dies with
                 it: no trylock may ever succeed *)
              let n = ref 0 in
              while Sim.now () < deadline do
                if lock.Lock_type.try_acquire ~tid then incr snuck;
                incr n;
                Sim.pause 400
              done;
              !n
            end)
      in
      let label s = Printf.sprintf "%s %s" (Simlock.name algo) s in
      check_bool (label "crash recorded") true
        (r.Harness.health.Sim.crashed = [ 0 ]);
      check_bool (label "survivors escaped via trylock") true
        (Array.for_all (fun c -> c) (Array.sub r.Harness.completed 1 5));
      check_int (label "no trylock ever succeeded") 0 !snuck)
    Simlock.paper_algos

let suite =
  [
    Alcotest.test_case "owner death: all locks recover (opteron)" `Slow
      test_owner_death_recovery;
    Alcotest.test_case "owner death: all locks recover (niagara)" `Slow
      test_owner_death_recovery_niagara;
    Alcotest.test_case "robust paths are clean without faults" `Slow
      test_robust_faultless;
    Alcotest.test_case "robust counter exact (xeon)" `Slow
      test_robust_counter_exact;
    Alcotest.test_case "rstats accounting" `Quick test_rstats_accounting;
    Alcotest.test_case "invariant checker catches planted defects" `Quick
      test_invariant_checker_teeth;
    Alcotest.test_case "timeout at the grant boundary" `Quick
      test_timeout_at_grant_boundary;
    Alcotest.test_case "timeout while others parked" `Quick
      test_timeout_while_others_parked;
    Alcotest.test_case "trylock under a crashed holder: 9 algos" `Quick
      test_trylock_under_crash;
  ]
