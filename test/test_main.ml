let () =
  Alcotest.run "ssync"
    [
      ("platform", Test_platform.suite);
      ("coherence", Test_coherence.suite);
      ("interconnect", Test_interconnect.suite);
      ("engine", Test_engine.suite);
      ("eventq", Test_eventq.suite);
      ("parking", Test_parking.suite);
      ("simlocks", Test_simlocks.suite);
      ("simmp", Test_simmp.suite);
      ("ccbench", Test_ccbench.suite);
      ("workload", Test_workload.suite);
      ("report", Test_report.suite);
      ("locks-native", Test_locks.suite);
      ("mp-native", Test_mp.suite);
      ("ssht", Test_ssht.suite);
      ("tm", Test_tm.suite);
      ("kvs", Test_kvs.suite);
      ("extras", Test_extras.suite);
      ("pool", Test_pool.suite);
      ("robust", Test_robust.suite);
      ("trace", Test_trace.suite);
      ("shards", Test_shards.suite);
      ("speculation", Test_speculation.suite);
      ("metrics", Test_metrics.suite);
    ]
