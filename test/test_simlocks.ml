(* Tests of the simulated lock suite: mutual exclusion for all nine
   algorithms on all four platforms, FIFO fairness of the queue-based
   locks, and the ticket-variant behaviors of Figure 3. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_simlocks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run [threads] threads that each perform [iters] non-atomic
   increments of a shared word under [algo]; any mutual-exclusion
   violation loses updates. *)
let run_mutex_test pid algo ~threads ~iters =
  let p = Platform.get pid in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let lock = Simlock.create mem p ~n_threads:threads algo in
  let data = Memory.alloc mem in
  let b = Sim.make_barrier threads in
  for tid = 0 to threads - 1 do
    Sim.spawn sim ~core:(Platform.place p tid) (fun () ->
        Sim.await b;
        for _ = 1 to iters do
          lock.Lock_type.acquire ~tid;
          let v = Sim.load data in
          Sim.pause 30; (* widen the race window *)
          Sim.store data (v + 1);
          lock.Lock_type.release ~tid
        done)
  done;
  ignore (Sim.run sim);
  Memory.peek mem data

let test_mutual_exclusion () =
  List.iter
    (fun pid ->
      let p = Platform.get pid in
      List.iter
        (fun algo ->
          let threads = min 12 (Platform.n_cores p) in
          let iters = 25 in
          let got = run_mutex_test pid algo ~threads ~iters in
          check_int
            (Printf.sprintf "%s/%s no lost updates" (Arch.platform_name pid)
               (Simlock.name algo))
            (threads * iters) got)
        (Simlock.algos_for p))
    Arch.paper_platform_ids

let test_figure3_variants_mutual_exclusion () =
  List.iter
    (fun algo ->
      let got = run_mutex_test Arch.Opteron algo ~threads:12 ~iters:20 in
      check_int (Simlock.name algo) 240 got)
    [ Simlock.Ticket_spin; Simlock.Ticket_prefetchw ]

(* FIFO locks grant in arrival order: with each thread acquiring once
   after staggered arrivals, completion order equals arrival order. *)
let test_fifo_order algo =
  let p = Platform.opteron in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let threads = 10 in
  let lock = Simlock.create mem p ~n_threads:threads algo in
  let order = ref [] in
  (* thread 0 holds the lock while the others queue up in tid order *)
  Sim.spawn sim ~core:(Platform.place p 0) (fun () ->
      lock.Lock_type.acquire ~tid:0;
      Sim.pause 100_000;
      lock.Lock_type.release ~tid:0);
  for tid = 1 to threads - 1 do
    Sim.spawn sim ~core:(Platform.place p tid) (fun () ->
        Sim.pause (1000 * tid); (* staggered, well-separated arrivals *)
        lock.Lock_type.acquire ~tid;
        order := tid :: !order;
        Sim.pause 50;
        lock.Lock_type.release ~tid)
  done;
  ignore (Sim.run sim);
  List.rev !order

let test_ticket_fifo () =
  Alcotest.(check (list int))
    "ticket FIFO" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (test_fifo_order Simlock.Ticket)

let test_mcs_fifo () =
  Alcotest.(check (list int))
    "MCS FIFO" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (test_fifo_order Simlock.Mcs)

let test_clh_fifo () =
  Alcotest.(check (list int))
    "CLH FIFO" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (test_fifo_order Simlock.Clh)

(* Uncontested acquire+release should be cheap (no spinning, a handful
   of memory operations). *)
let test_uncontested_latency_sane () =
  List.iter
    (fun pid ->
      let p = Platform.get pid in
      List.iter
        (fun algo ->
          let sim = Sim.create p in
          let mem = Sim.memory sim in
          let lock = Simlock.create mem p ~n_threads:4 algo in
          let cost = ref 0 in
          Sim.spawn sim ~core:0 (fun () ->
              (* warm the lines *)
              lock.Lock_type.acquire ~tid:0;
              lock.Lock_type.release ~tid:0;
              let t0 = Sim.now () in
              lock.Lock_type.acquire ~tid:0;
              lock.Lock_type.release ~tid:0;
              cost := Sim.now () - t0);
          ignore (Sim.run sim);
          check_bool
            (Printf.sprintf "%s/%s uncontested %d cycles in (0, 3000)"
               (Arch.platform_name pid) (Simlock.name algo) !cost)
            true
            (!cost > 0 && !cost < 3000))
        (Simlock.algos_for p))
    Arch.paper_platform_ids

(* Hierarchical locks must actually bound global handoffs: under heavy
   same-cluster traffic, a cohort lock acquires the global lock far
   fewer times than it acquires the local one.  We check indirectly:
   throughput of HTICKET on Xeon under extreme contention with threads
   on two sockets beats TAS. *)
let contended_throughput pid algo ~threads =
  let p = Platform.get pid in
  let r =
    Harness.run p ~threads ~duration:300_000
      ~setup:(fun mem -> Simlock.create mem p ~n_threads:threads algo)
      ~body:(fun lock _mem ~tid ~deadline ->
        let n = ref 0 in
        while Sim.now () < deadline do
          lock.Lock_type.acquire ~tid;
          Sim.pause 40;
          lock.Lock_type.release ~tid;
          Sim.pause 80;
          incr n
        done;
        !n)
  in
  r.Harness.mops

let test_hticket_beats_tas_cross_socket () =
  let tas = contended_throughput Arch.Xeon Simlock.Tas ~threads:20 in
  let ht = contended_throughput Arch.Xeon Simlock.Hticket ~threads:20 in
  check_bool
    (Printf.sprintf "hticket (%.2f) > tas (%.2f) on 2 sockets" ht tas)
    true (ht > tas)

let test_queue_locks_resilient () =
  (* CLH should not collapse from 1 to many threads as badly as TAS
     (section 6.1.2: queue locks are the most resilient). *)
  let t1 = contended_throughput Arch.Opteron Simlock.Clh ~threads:1 in
  let t24 = contended_throughput Arch.Opteron Simlock.Clh ~threads:24 in
  let tas24 = contended_throughput Arch.Opteron Simlock.Tas ~threads:24 in
  check_bool
    (Printf.sprintf "CLH keeps >10%% of single-thread (%.2f -> %.2f)" t1 t24)
    true
    (t24 > 0.1 *. t1);
  check_bool
    (Printf.sprintf "CLH (%.2f) >= TAS (%.2f) at 24 threads" t24 tas24)
    true (t24 >= tas24 *. 0.9)

(* Figure 3's headline: the non-optimized ticket lock is dramatically
   worse than proportional backoff at high thread counts on Opteron. *)
let test_ticket_backoff_helps_on_opteron () =
  let p = Platform.opteron in
  let latency variant threads =
    let _, mean =
      Harness.run_latency p ~threads ~duration:400_000
        ~setup:(fun mem -> Simlock.create mem p ~n_threads:threads variant)
        ~body:(fun lock _mem ~tid ~deadline ->
          let n = ref 0 and cy = ref 0 in
          while Sim.now () < deadline do
            let t0 = Sim.now () in
            lock.Lock_type.acquire ~tid;
            lock.Lock_type.release ~tid;
            cy := !cy + (Sim.now () - t0);
            Sim.pause 300;
            incr n
          done;
          (!n, !cy))
    in
    mean
  in
  let spin = latency Simlock.Ticket_spin 24 in
  let backoff = latency Simlock.Ticket 24 in
  check_bool
    (Printf.sprintf "spin %.0f cy >> backoff %.0f cy" spin backoff)
    true
    (spin > 2. *. backoff)

(* Figure 3 at full contention: at 48 threads the prefetchw variant's
   directed handoff (the releaser's store finds the line reserved by
   the next holder's exclusive probe and pays a directed transfer, not
   the broadcast) must beat plain proportional backoff by a clear
   margin, as on the real Opteron (section 5.3). *)
let test_ticket_prefetchw_wins_at_scale () =
  let backoff =
    Ssync_ccbench.Lock_bench.figure3_latency Simlock.Ticket ~threads:48
  in
  let pfw =
    Ssync_ccbench.Lock_bench.figure3_latency Simlock.Ticket_prefetchw
      ~threads:48
  in
  check_bool
    (Printf.sprintf "backoff (%.0f cy) >= 1.5x prefetchw (%.0f cy)" backoff pfw)
    true
    (backoff >= 1.5 *. pfw)

(* Figure 5 on the Xeon: with a single contended lock spanning all
   eight sockets, the hierarchical locks must not lose to flat CLH —
   cross-socket handoffs dominate a flat FIFO queue there, which is the
   whole argument for cohort locks on this machine. *)
let test_hierarchical_beats_clh_on_xeon () =
  let tp algo =
    (Ssync_ccbench.Lock_bench.throughput Arch.Xeon algo ~threads:40 ~n_locks:1)
      .Harness.mops
  in
  let clh = tp Simlock.Clh in
  let hclh = tp Simlock.Hclh in
  let hticket = tp Simlock.Hticket in
  check_bool
    (Printf.sprintf "hclh (%.2f) >= clh (%.2f) on 4 sockets" hclh clh)
    true (hclh >= clh);
  check_bool
    (Printf.sprintf "hticket (%.2f) >= clh (%.2f) on 4 sockets" hticket clh)
    true (hticket >= clh)

(* ------------------------------------------------------------------ *)
(* Timed acquisition. *)

(* try_acquire: wins a free lock, refuses a held one without leaving a
   trace, and acquire_timeout gives up within its bound — for all nine
   algorithms. *)
let test_try_acquire_semantics () =
  List.iter
    (fun pid ->
      let p = Platform.get pid in
      List.iter
        (fun algo ->
          let label s =
            Printf.sprintf "%s/%s %s" (Arch.platform_name pid)
              (Simlock.name algo) s
          in
          let sim = Sim.create p in
          let mem = Sim.memory sim in
          let lock = Simlock.create mem p ~n_threads:2 algo in
          let free_try = ref false in
          let held_try = ref true in
          let timed_out = ref true in
          let gave_up_at = ref 0 in
          let eventually = ref false in
          Sim.spawn sim ~core:(Platform.place p 0) (fun () ->
              free_try := lock.Lock_type.try_acquire ~tid:0;
              Sim.pause 50_000;
              lock.Lock_type.release ~tid:0);
          Sim.spawn sim ~core:(Platform.place p 1) (fun () ->
              Sim.pause 5_000;
              held_try := lock.Lock_type.try_acquire ~tid:1;
              let t0 = Sim.now () in
              timed_out :=
                not (Lock_type.acquire_timeout lock ~tid:1 ~timeout:10_000);
              gave_up_at := Sim.now () - t0;
              eventually :=
                Lock_type.acquire_timeout lock ~tid:1 ~timeout:200_000;
              if !eventually then lock.Lock_type.release ~tid:1);
          ignore (Sim.run sim ~until:500_000);
          check_bool (label "free trylock wins") true !free_try;
          check_bool (label "held trylock refuses") false !held_try;
          check_bool (label "acquire_timeout gives up") true !timed_out;
          check_bool
            (label (Printf.sprintf "gave up within bound (%d cy)" !gave_up_at))
            true
            (!gave_up_at >= 10_000 && !gave_up_at < 20_000);
          check_bool (label "succeeds once free") true !eventually)
        (Simlock.algos_for p))
    Arch.paper_platform_ids

(* The trylock path must still exclude: increments under
   acquire_timeout-guarded critical sections are never lost, and the
   counter matches the number of successful acquisitions. *)
let test_timeout_mutual_exclusion () =
  let p = Platform.opteron in
  List.iter
    (fun algo ->
      let sim = Sim.create p in
      let mem = Sim.memory sim in
      let threads = 8 in
      let lock = Simlock.create mem p ~n_threads:threads algo in
      let data = Memory.alloc mem in
      let succ = Array.make threads 0 in
      let b = Sim.make_barrier threads in
      for tid = 0 to threads - 1 do
        Sim.spawn sim ~core:(Platform.place p tid) (fun () ->
            Sim.await b;
            for _ = 1 to 30 do
              if Lock_type.acquire_timeout lock ~tid ~timeout:3_000 then begin
                let v = Sim.load data in
                Sim.pause 25;
                Sim.store data (v + 1);
                lock.Lock_type.release ~tid;
                succ.(tid) <- succ.(tid) + 1
              end
            done)
      done;
      ignore (Sim.run sim);
      check_int
        (Printf.sprintf "%s trylock excludes" (Simlock.name algo))
        (Array.fold_left ( + ) 0 succ)
        (Memory.peek mem data))
    (Simlock.algos_for p)

(* ------------------------------------------------------------------ *)
(* Fault injection meets the queue locks: a holder that dies while
   holding wedges every FIFO waiter.  The blocking path must terminate
   via the watchdog with a structured verdict; the timed path must let
   waiters escape and complete with partial results. *)

let crashed_holder_run algo ~timeout =
  let p = Platform.opteron in
  let threads = 6 in
  let faults = Fault.crash_stop ~seed:1 [ (0, 40_000) ] in
  Harness.run ~faults p ~threads ~duration:100_000
    ~setup:(fun mem -> Simlock.create mem p ~n_threads:threads algo)
    ~body:(fun lock _mem ~tid ~deadline ->
      if tid = 0 then begin
        (* the victim: acquires, then is crash-stopped mid-hold *)
        lock.Lock_type.acquire ~tid;
        Sim.pause 500_000;
        lock.Lock_type.release ~tid;
        0
      end
      else begin
        let n = ref 0 in
        while Sim.now () < deadline do
          (match timeout with
          | None ->
              lock.Lock_type.acquire ~tid;
              Sim.pause 50;
              lock.Lock_type.release ~tid;
              incr n
          | Some timeout ->
              if Lock_type.acquire_timeout lock ~tid ~timeout then begin
                Sim.pause 50;
                lock.Lock_type.release ~tid;
                incr n
              end);
          Sim.pause 100
        done;
        !n
      end)

let test_crashed_holder_watchdog () =
  List.iter
    (fun algo ->
      let r = crashed_holder_run algo ~timeout:None in
      let label s = Printf.sprintf "%s %s" (Simlock.name algo) s in
      check_bool (label "crash recorded") true
        (r.Harness.health.Sim.crashed = [ 0 ]);
      check_bool (label "verdict is Stalled") true
        (match r.Harness.health.Sim.verdict with
        | Sim.Stalled _ -> true
        | Sim.Completed -> false);
      check_bool (label "incomplete threads surfaced") false
        (Harness.completed_all r))
    [ Simlock.Mcs; Simlock.Clh; Simlock.Ticket; Simlock.Array_lock ]

let test_timeout_escapes_crashed_holder () =
  List.iter
    (fun algo ->
      let r = crashed_holder_run algo ~timeout:(Some 2_000) in
      let label s = Printf.sprintf "%s %s" (Simlock.name algo) s in
      (* impatient waiters give up on the dead holder: the run finishes
         instead of stalling, with the crash on record *)
      check_bool (label "verdict is Completed") true
        (r.Harness.health.Sim.verdict = Sim.Completed);
      check_bool (label "crash recorded") true
        (r.Harness.health.Sim.crashed = [ 0 ]);
      check_bool (label "victim marked incomplete") false r.Harness.completed.(0);
      check_bool (label "survivors completed") true
        (Array.for_all (fun c -> c) (Array.sub r.Harness.completed 1 5)))
    [ Simlock.Mcs; Simlock.Clh; Simlock.Ticket ]

(* qcheck: random (platform, algo, threads, iters) never loses updates. *)
let qcheck_mutual_exclusion =
  let gen =
    QCheck.Gen.(
      let* pid = oneofl Arch.paper_platform_ids in
      let p = Platform.get pid in
      let* algo = oneofl (Simlock.algos_for p) in
      let* threads = int_range 2 (min 16 (Platform.n_cores p)) in
      let* iters = int_range 1 15 in
      return (pid, algo, threads, iters))
  in
  QCheck.Test.make ~count:40 ~name:"mutual exclusion (random configs)"
    (QCheck.make gen) (fun (pid, algo, threads, iters) ->
      run_mutex_test pid algo ~threads ~iters = threads * iters)

let suite =
  [
    Alcotest.test_case "mutual exclusion: 9 algos x 4 platforms" `Quick
      test_mutual_exclusion;
    Alcotest.test_case "figure 3 ticket variants exclude" `Quick
      test_figure3_variants_mutual_exclusion;
    Alcotest.test_case "ticket is FIFO" `Quick test_ticket_fifo;
    Alcotest.test_case "MCS is FIFO" `Quick test_mcs_fifo;
    Alcotest.test_case "CLH is FIFO" `Quick test_clh_fifo;
    Alcotest.test_case "uncontested latency sane" `Quick
      test_uncontested_latency_sane;
    Alcotest.test_case "hticket beats TAS across sockets" `Quick
      test_hticket_beats_tas_cross_socket;
    Alcotest.test_case "queue locks resilient to contention" `Quick
      test_queue_locks_resilient;
    Alcotest.test_case "ticket backoff helps (Figure 3)" `Quick
      test_ticket_backoff_helps_on_opteron;
    Alcotest.test_case "prefetchw ticket wins at 48 threads (Figure 3)" `Quick
      test_ticket_prefetchw_wins_at_scale;
    Alcotest.test_case "hierarchical locks hold up on Xeon (Figure 5)" `Quick
      test_hierarchical_beats_clh_on_xeon;
    Alcotest.test_case "try_acquire semantics: 9 algos x 4 platforms" `Quick
      test_try_acquire_semantics;
    Alcotest.test_case "timed acquisition excludes" `Quick
      test_timeout_mutual_exclusion;
    Alcotest.test_case "crashed holder trips the watchdog" `Quick
      test_crashed_holder_watchdog;
    Alcotest.test_case "acquire_timeout escapes a crashed holder" `Quick
      test_timeout_escapes_crashed_holder;
    QCheck_alcotest.to_alcotest qcheck_mutual_exclusion;
  ]
