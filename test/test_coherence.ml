(* Tests of the coherence memory model: protocol transitions, data
   semantics, contention serialization, and qcheck invariants. *)

open Ssync_platform
open Ssync_coherence

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mem_on pid = Memory.create (Platform.get pid)

let state_name m a = Arch.cstate_name (Memory.line m a).Memory.state

(* ------------------------- transitions --------------------------- *)

let test_load_fills_exclusive () =
  let m = mem_on Arch.Xeon in
  let a = Memory.alloc m in
  Alcotest.(check string) "starts invalid" "Invalid" (state_name m a);
  ignore (Memory.access m ~core:0 ~now:0 Arch.Load a);
  Alcotest.(check string) "exclusive after first load" "Exclusive"
    (state_name m a)

let test_moesi_owned_on_opteron () =
  let m = mem_on Arch.Opteron in
  let a = Memory.alloc m in
  ignore (Memory.access m ~core:0 ~now:0 Arch.Store a ~operand:7);
  Alcotest.(check string) "modified after store" "Modified" (state_name m a);
  ignore (Memory.access m ~core:6 ~now:0 Arch.Load a);
  (* MOESI: the dirty copy stays with core 0 in Owned state *)
  Alcotest.(check string) "owned after remote load" "Owned" (state_name m a);
  check_bool "owner kept" true ((Memory.line m a).Memory.owner = Some 0);
  check_bool "reader became sharer" true
    (Coreset.mem (Memory.line m a).Memory.sharers 6)

let test_mesi_shared_on_xeon () =
  let m = mem_on Arch.Xeon in
  let a = Memory.alloc m in
  ignore (Memory.access m ~core:0 ~now:0 Arch.Store a ~operand:7);
  ignore (Memory.access m ~core:1 ~now:0 Arch.Load a);
  Alcotest.(check string) "shared after remote load" "Shared" (state_name m a);
  check_bool "no owner" true ((Memory.line m a).Memory.owner = None);
  check_int "two sharers" 2 (Coreset.cardinal (Memory.line m a).Memory.sharers)

let test_store_invalidates_sharers () =
  let m = mem_on Arch.Xeon in
  let a = Memory.alloc m in
  ignore (Memory.access m ~core:0 ~now:0 Arch.Load a);
  ignore (Memory.access m ~core:1 ~now:0 Arch.Load a);
  ignore (Memory.access m ~core:2 ~now:0 Arch.Load a);
  ignore (Memory.access m ~core:3 ~now:0 Arch.Store a ~operand:9);
  let l = Memory.line m a in
  Alcotest.(check string) "modified" "Modified" (state_name m a);
  check_bool "owner is 3" true (l.Memory.owner = Some 3);
  check_int "no sharers" 0 (Coreset.cardinal l.Memory.sharers);
  check_int "value stored" 9 (Memory.peek m a)

(* ------------------------- data semantics ------------------------ *)

let test_cas_semantics () =
  let m = mem_on Arch.Opteron in
  let a = Memory.alloc m ~value:5 in
  let _, ok = Memory.access m ~core:0 ~now:0 Arch.Cas a ~operand:4 ~operand2:9 in
  check_int "cas fails on mismatch" 0 ok;
  check_int "value unchanged" 5 (Memory.peek m a);
  let _, ok = Memory.access m ~core:0 ~now:0 Arch.Cas a ~operand:5 ~operand2:9 in
  check_int "cas succeeds" 1 ok;
  check_int "value swapped" 9 (Memory.peek m a)

let test_fai_tas_swap_semantics () =
  let m = mem_on Arch.Niagara in
  let a = Memory.alloc m ~value:41 in
  let _, old = Memory.access m ~core:0 ~now:0 Arch.Fai a ~operand:1 in
  check_int "fai returns old" 41 old;
  check_int "fai increments" 42 (Memory.peek m a);
  let b = Memory.alloc m in
  let _, old = Memory.access m ~core:0 ~now:0 Arch.Tas b in
  check_int "tas wins on 0" 0 old;
  let _, old = Memory.access m ~core:1 ~now:0 Arch.Tas b in
  check_int "tas loses on 1" 1 old;
  let _, old = Memory.access m ~core:1 ~now:0 Arch.Swap b ~operand:7 in
  check_int "swap returns old" 1 old;
  check_int "swap stores" 7 (Memory.peek m b)

(* ------------------------- latencies ----------------------------- *)

let test_local_spin_is_cheap () =
  (* A core that loaded a line spins on it at L1 cost. *)
  let m = mem_on Arch.Opteron in
  let a = Memory.alloc m in
  ignore (Memory.access m ~core:0 ~now:0 Arch.Store a ~operand:1);
  ignore (Memory.access m ~core:1 ~now:0 Arch.Load a);
  let lat, _ = Memory.access m ~core:1 ~now:1000 Arch.Load a in
  check_bool "second load is a hit" true (lat <= 5)

let test_contention_serializes () =
  (* Two stores issued at the same instant: the second queues behind the
     first's occupancy. *)
  let m = mem_on Arch.Xeon in
  let a = Memory.alloc m in
  ignore (Memory.access m ~core:5 ~now:0 Arch.Store a ~operand:1);
  Memory.reset_busy m a;
  let l1, _ = Memory.access m ~core:1 ~now:1000 Arch.Store a ~operand:2 in
  let l2, _ = Memory.access m ~core:2 ~now:1000 Arch.Store a ~operand:3 in
  check_bool "second waits" true (l2 > l1)

let test_cross_socket_more_expensive () =
  List.iter
    (fun pid ->
      let m = mem_on pid in
      let p = Platform.get pid in
      let a = Memory.alloc m ~home_core:0 in
      ignore (Memory.access m ~core:1 ~now:0 Arch.Store a ~operand:1);
      Memory.reset_busy m a;
      let near, _ = Memory.access m ~core:0 ~now:1000 Arch.Load a in
      (* rebuild modified-at-1 and measure a far reader *)
      ignore (Memory.access m ~core:1 ~now:2000 Arch.Store a ~operand:2);
      Memory.reset_busy m a;
      let far_core = Platform.n_cores p - 1 in
      let far, _ = Memory.access m ~core:far_core ~now:9000 Arch.Load a in
      check_bool
        (Printf.sprintf "%s: far load (%d) > near load (%d)"
           (Arch.platform_name pid) far near)
        true (far > near))
    [ Arch.Opteron; Arch.Xeon; Arch.Tilera ]

let test_force_state () =
  let m = mem_on Arch.Opteron in
  let a = Memory.alloc m in
  List.iter
    (fun st ->
      Memory.force_state m ~holder:3 st a;
      Alcotest.(check string)
        (Printf.sprintf "forced %s" (Arch.cstate_name st))
        (Arch.cstate_name st) (state_name m a))
    [ Arch.Invalid; Arch.Exclusive; Arch.Modified; Arch.Shared; Arch.Owned ]

(* ------------------------- qcheck invariants --------------------- *)

(* Single-writer/multiple-reader and state consistency after arbitrary
   operation sequences, and value agreement with a sequential model. *)
let qcheck_protocol_invariants =
  let gen =
    QCheck.Gen.(
      let* pid = oneofl Arch.paper_platform_ids in
      let n = (Topology.of_platform pid).Topology.n_cores in
      let* ops =
        list_size (int_range 1 60)
          (triple (int_range 0 (n - 1)) (int_range 0 5) (int_range 0 3))
      in
      return (pid, ops))
  in
  QCheck.Test.make ~count:300 ~name:"protocol invariants + sequential values"
    (QCheck.make gen) (fun (pid, ops) ->
      let m = mem_on pid in
      let addrs = Array.init 4 (fun _ -> Memory.alloc m) in
      let model = Array.make 4 0 in
      let now = ref 0 in
      List.for_all
        (fun (core, opcode, ai) ->
          let a = addrs.(ai) in
          now := !now + 17;
          let ok_value =
            match opcode with
            | 0 ->
                let _, v = Memory.access m ~core ~now:!now Arch.Load a in
                v = model.(ai)
            | 1 ->
                let nv = (core * 7) + !now in
                ignore (Memory.access m ~core ~now:!now Arch.Store a ~operand:nv);
                model.(ai) <- nv;
                true
            | 2 ->
                let _, old = Memory.access m ~core ~now:!now Arch.Fai a ~operand:1 in
                let ok = old = model.(ai) in
                model.(ai) <- model.(ai) + 1;
                ok
            | 3 ->
                let expected = model.(ai) in
                let _, r =
                  Memory.access m ~core ~now:!now Arch.Cas a ~operand:expected
                    ~operand2:(expected + 100)
                in
                model.(ai) <- expected + 100;
                r = 1
            | 4 ->
                let _, old = Memory.access m ~core ~now:!now Arch.Tas a in
                let ok = old = model.(ai) in
                model.(ai) <- 1;
                ok
            | _ ->
                let _, old = Memory.access m ~core ~now:!now Arch.Swap a ~operand:3 in
                let ok = old = model.(ai) in
                model.(ai) <- 3;
                ok
          in
          let l = Memory.line m a in
          let swmr =
            match l.Memory.state with
            | Arch.Modified | Arch.Exclusive ->
                l.Memory.owner <> None && Coreset.is_empty l.Memory.sharers
            | Arch.Owned -> l.Memory.owner <> None
            | Arch.Shared | Arch.Forward ->
                l.Memory.owner = None && not (Coreset.is_empty l.Memory.sharers)
            | Arch.Invalid -> l.Memory.owner = None && Coreset.is_empty l.Memory.sharers
          in
          let owner_not_sharer =
            match l.Memory.owner with
            | Some o -> not (Coreset.mem l.Memory.sharers o)
            | None -> true
          in
          ok_value && swmr && owner_not_sharer)
        ops)

let qcheck_latency_monotone_queueing =
  QCheck.Test.make ~count:200 ~name:"queued accesses never get faster"
    QCheck.(make Gen.(pair (int_range 0 47) (int_range 0 47)))
    (fun (c1, c2) ->
      let m = mem_on Arch.Opteron in
      let a = Memory.alloc m in
      ignore (Memory.access m ~core:0 ~now:0 Arch.Store a ~operand:1);
      Memory.reset_busy m a;
      let l1, _ = Memory.access m ~core:c1 ~now:100 Arch.Fai a ~operand:1 in
      let l2, _ = Memory.access m ~core:c2 ~now:100 Arch.Fai a ~operand:1 in
      (* the second atomic can never be cheaper than its own service *)
      l1 > 0 && l2 > 0)

let suite =
  [
    Alcotest.test_case "first load fills Exclusive" `Quick
      test_load_fills_exclusive;
    Alcotest.test_case "MOESI keeps Owned on Opteron" `Quick
      test_moesi_owned_on_opteron;
    Alcotest.test_case "MESI downgrades to Shared on Xeon" `Quick
      test_mesi_shared_on_xeon;
    Alcotest.test_case "store invalidates sharers" `Quick
      test_store_invalidates_sharers;
    Alcotest.test_case "CAS semantics" `Quick test_cas_semantics;
    Alcotest.test_case "FAI/TAS/SWAP semantics" `Quick
      test_fai_tas_swap_semantics;
    Alcotest.test_case "local spin is cheap" `Quick test_local_spin_is_cheap;
    Alcotest.test_case "contention serializes" `Quick
      test_contention_serializes;
    Alcotest.test_case "cross-socket dearer than intra" `Quick
      test_cross_socket_more_expensive;
    Alcotest.test_case "force_state reaches all states" `Quick
      test_force_state;
    QCheck_alcotest.to_alcotest qcheck_protocol_invariants;
    QCheck_alcotest.to_alcotest qcheck_latency_monotone_queueing;
  ]
