(* Property tests of the event queue (4-ary struct-of-arrays min-heap)
   against a reference model: a sorted association list keyed by
   (time, insertion seq).  The model is the contract the simulator
   depends on — global (time, seq) pop order, [next_time]/[pop_into]
   agreement, and [clear] resetting to a fresh queue. *)

open Ssync_engine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The reference model: a list of (time, seq, id) kept sorted by
   (time, seq).  Insertion assigns seqs in program order, exactly like
   the queue. *)
module Model = struct
  type t = { mutable entries : (int * int * int) list; mutable seq : int }

  let create () = { entries = []; seq = 0 }

  let push m ~time id =
    let seq = m.seq in
    m.seq <- seq + 1;
    m.entries <-
      List.merge
        (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
        m.entries
        [ (time, seq, id) ]

  let next_time m =
    match m.entries with [] -> max_int | (t, _, _) :: _ -> t

  let pop m =
    match m.entries with
    | [] -> None
    | e :: rest ->
        m.entries <- rest;
        Some e
end

(* A script step: [Push dt] pushes at [last popped time + dt] (the dt
   spread mixes immediate completions with far-future schedules);
   [Pop] pops one event from both and compares. *)
type step = Push of int | Pop

let gen_script =
  QCheck.Gen.(
    list_size (int_range 0 600)
      (frequency
         [
           (3, map (fun dt -> Push dt) (int_range 0 5000));
           (2, return Pop);
         ]))

let arb_script =
  QCheck.make gen_script
    ~print:(fun s ->
      String.concat ";"
        (List.map
           (function Push dt -> Printf.sprintf "P%d" dt | Pop -> "pop")
           s))

let run_script script =
  let q = Event_queue.create () in
  let m = Model.create () in
  let p = Event_queue.make_popped () in
  let popped_q = ref [] in
  let popped_m = ref [] in
  let next_id = ref 0 in
  let last = ref 0 in
  let ok = ref true in
  List.iter
    (fun step ->
      match step with
      | Push dt ->
          let time = !last + dt in
          let id = !next_id in
          incr next_id;
          Event_queue.push q ~time (fun () -> popped_q := id :: !popped_q);
          Model.push m ~time id
      | Pop -> (
          if Event_queue.next_time q <> Model.next_time m then ok := false;
          let got = Event_queue.pop_into q p in
          match Model.pop m with
          | None -> if got then ok := false
          | Some (mt, _, mid) ->
              if not got then ok := false
              else begin
                if p.Event_queue.p_time <> mt then ok := false;
                p.Event_queue.p_run ();
                popped_m := mid :: !popped_m;
                last := mt
              end))
    script;
  (* drain both completely *)
  let rec drain () =
    let got = Event_queue.pop_into q p in
    match Model.pop m with
    | None -> if got then ok := false
    | Some (mt, _, mid) ->
        if (not got) || p.Event_queue.p_time <> mt then ok := false
        else begin
          p.Event_queue.p_run ();
          popped_m := mid :: !popped_m;
          drain ()
        end
  in
  drain ();
  if Event_queue.length q <> 0 then ok := false;
  !ok && !popped_q = !popped_m

let qcheck_vs_model =
  QCheck.Test.make ~count:400
    ~name:"event queue = sorted-list model (order, ties, next_time)"
    arb_script run_script

(* Same-time pushes must pop in insertion order: a long run of
   identical timestamps stresses the tie-break through several heap
   growth steps. *)
let test_tie_order () =
  let q = Event_queue.create () in
  let order = ref [] in
  let n = 400 in
  for i = 0 to n - 1 do
    Event_queue.push q ~time:7 (fun () -> order := i :: !order)
  done;
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some e ->
        e.Event_queue.run ();
        drain ()
  in
  drain ();
  check_bool "fifo among ties" true
    (!order = List.rev (List.init n (fun i -> i)))

(* Events scheduled behind the last popped time (a coordinator
   re-injecting deferred work) must still pop first. *)
let test_regressing_push () =
  let q = Event_queue.create () in
  let p = Event_queue.make_popped () in
  Event_queue.push q ~time:5000 ignore;
  ignore (Event_queue.pop_into q p);
  check_int "advanced" 5000 p.Event_queue.p_time;
  Event_queue.push q ~time:100 ignore;
  Event_queue.push q ~time:6000 ignore;
  check_int "regressed event is next" 100 (Event_queue.next_time q);
  ignore (Event_queue.pop_into q p);
  check_int "popped the early one" 100 p.Event_queue.p_time

let test_clear_reuse () =
  let q = Event_queue.create () in
  for i = 0 to 999 do
    Event_queue.push q ~time:(i * 3) ignore
  done;
  Event_queue.clear q;
  check_bool "empty after clear" true (Event_queue.is_empty q);
  check_int "length 0" 0 (Event_queue.length q);
  check_int "next_time empty" max_int (Event_queue.next_time q);
  (* a cleared queue behaves like a fresh one, including tie order *)
  let order = ref [] in
  for i = 0 to 5 do
    Event_queue.push q ~time:1 (fun () -> order := i :: !order)
  done;
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some e ->
        e.Event_queue.run ();
        drain ()
  in
  drain ();
  check_bool "fifo after clear" true (!order = [ 5; 4; 3; 2; 1; 0 ])

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_vs_model;
    Alcotest.test_case "same-time FIFO order" `Quick test_tie_order;
    Alcotest.test_case "push behind the base pops first" `Quick
      test_regressing_push;
    Alcotest.test_case "clear resets for reuse" `Quick test_clear_reuse;
  ]
