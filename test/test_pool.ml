(* The domain pool and the parallel bench harness built on it:

   - Pool.run returns results in submission order whatever the domain
     count, propagates the lowest-indexed failure, and captures per-job
     engine-counter deltas;
   - the plan/render sections print byte-identical output with 1 and 4
     domains, with identical aggregated counters (the --jobs guarantee);
   - two full simulations running concurrently in two domains (one with
     fault injection) each reproduce their serial result — the engine
     keeps no cross-simulation mutable state. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_bench

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------- Pool basics ---------------------------- *)

let squares n = Array.init n (fun i () -> i * i)

let test_order_inline () =
  let results = Pool.run ~jobs:1 (squares 10) in
  Array.iteri
    (fun i (v, _) -> check_int (Printf.sprintf "slot %d" i) (i * i) v)
    results

let test_order_parallel () =
  let results = Pool.run ~jobs:4 (squares 100) in
  check_int "all jobs ran" 100 (Array.length results);
  Array.iteri
    (fun i (v, _) -> check_int (Printf.sprintf "slot %d" i) (i * i) v)
    results

exception Boom of int

let test_exception_lowest_index () =
  (* A single failing job re-raises its original exception unchanged. *)
  let one =
    Array.init 8 (fun i () -> if i = 3 then raise (Boom i) else i)
  in
  let got =
    try
      ignore (Pool.run ~jobs:4 one);
      None
    with Boom i -> Some i
  in
  check_bool "single failure re-raised as-is" true (got = Some 3)

let test_exception_aggregation () =
  (* Several failing jobs are all collected: [Job_failures] carries
     every (index, exn) pair, lowest index first. *)
  let thunks =
    Array.init 8 (fun i () ->
        if i = 3 || i = 5 || i = 6 then raise (Boom i) else i)
  in
  let got =
    try
      ignore (Pool.run ~jobs:4 thunks);
      None
    with Pool.Job_failures fails -> Some fails
  in
  match got with
  | None -> Alcotest.fail "expected Job_failures"
  | Some fails ->
      Alcotest.(check (list int))
        "all failing jobs reported, lowest first" [ 3; 5; 6 ]
        (List.map fst fails);
      check_bool "original exceptions preserved" true
        (List.for_all (fun (i, e) -> e = Boom i) fails);
      let msg = Printexc.to_string (Pool.Job_failures fails) in
      let contains needle =
        let nl = String.length needle and ml = String.length msg in
        let rec at i =
          i + nl <= ml && (String.sub msg i nl = needle || at (i + 1))
        in
        at 0
      in
      check_bool "printer aggregates every job's message" true
        (List.for_all
           (fun i -> contains (Printf.sprintf "job %d" i))
           [ 3; 5; 6 ])

let test_invalid_jobs () =
  check_bool "jobs = 0 rejected" true
    (try
       ignore (Pool.run ~jobs:0 [| (fun () -> ()) |]);
       false
     with Invalid_argument _ -> true)

(* A small but real simulation, for stats capture and the concurrency
   smoke test.  [tid]-dependent pauses keep the schedule nontrivial. *)
let sim_workload ?faults () =
  Harness.run ?faults Platform.xeon ~threads:6 ~duration:30_000
    ~setup:(fun mem -> Memory.alloc mem)
    ~body:(fun a _mem ~tid ~deadline ->
      let n = ref 0 in
      while Sim.now () < deadline do
        ignore (Sim.fai a);
        Sim.pause (60 + (tid * 7));
        incr n
      done;
      !n)

let fingerprint (r : Harness.result) =
  ( Array.to_list r.Harness.ops,
    Array.to_list r.Harness.completed,
    r.Harness.total_ops,
    r.Harness.health )

let test_job_stats_captured () =
  let results =
    Pool.run ~jobs:2 [| (fun () -> sim_workload ()); (fun () -> sim_workload ()) |]
  in
  Array.iter
    (fun ((_ : Harness.result), (s : Pool.stats)) ->
      check_bool "job ran events" true (s.Pool.perf.Sim.events > 0);
      check_bool "job advanced virtual time" true
        (s.Pool.perf.Sim.sim_cycles > 0);
      check_bool "wall time non-negative" true (s.Pool.wall_ns >= 0))
    results;
  let total = Pool.total_stats results in
  check_int "totals sum the per-job events"
    (Array.fold_left (fun acc (_, s) -> acc + s.Pool.perf.Sim.events) 0 results)
    total.Pool.perf.Sim.events

(* ----------------------- perf arithmetic --------------------------- *)

let perf_of (a, b, c, d, e, f) =
  {
    Sim.perf_zero with
    Sim.events = a;
    parks = b;
    wakeups = c;
    elided_probes = d;
    sim_cycles = e;
    wall_ns = f;
  }

let test_perf_arithmetic () =
  let a = perf_of (10, 2, 3, 40, 5_000, 77)
  and b = perf_of (7, 1, 1, 13, 900, 11) in
  check_bool "zero is add-neutral" true (Sim.perf_add a Sim.perf_zero = a);
  check_bool "diff of self is zero" true (Sim.perf_diff a a = Sim.perf_zero);
  check_bool "add/diff round-trip" true
    (Sim.perf_diff (Sim.perf_add a b) b = a);
  check_bool "add commutes" true (Sim.perf_add a b = Sim.perf_add b a)

(* [cumulative_perf] deltas around a run must equal the run's own
   [perf] — the invariant the pool's per-job capture relies on. *)
let test_cumulative_matches_per_run () =
  let before = Sim.cumulative_perf () in
  let r = sim_workload () in
  let delta = Sim.perf_diff (Sim.cumulative_perf ()) before in
  let p = { r.Harness.perf with Sim.wall_ns = 0 } in
  let d = { delta with Sim.wall_ns = 0 } in
  check_bool "cumulative delta equals the run's perf" true (p = d)

(* The pool's summed per-job counters are independent of the domain
   count (wall time excepted): the --jobs invariant at the stats
   level. *)
let test_total_stats_jobs_invariant () =
  let thunks () =
    Array.init 4 (fun i () ->
        if i mod 2 = 0 then ignore (sim_workload ())
        else
          ignore
            (sim_workload
               ~faults:(Fault.preemption ~seed:7 ~cycles:(1_000, 5_000) 0.01)
               ()))
  in
  let p1 = (Pool.total_stats (Pool.run ~jobs:1 (thunks ()))).Pool.perf in
  let p4 = (Pool.total_stats (Pool.run ~jobs:4 (thunks ()))).Pool.perf in
  check_int "events" p1.Sim.events p4.Sim.events;
  check_int "parks" p1.Sim.parks p4.Sim.parks;
  check_int "wakeups" p1.Sim.wakeups p4.Sim.wakeups;
  check_int "elided probes" p1.Sim.elided_probes p4.Sim.elided_probes;
  check_int "sim cycles" p1.Sim.sim_cycles p4.Sim.sim_cycles

(* -------------------- concurrent-domain smoke ---------------------- *)

let test_two_domains_match_serial () =
  let faults = Fault.preemption ~seed:42 ~cycles:(2_000, 20_000) 0.02 in
  let serial_plain = fingerprint (sim_workload ()) in
  let serial_faulty = fingerprint (sim_workload ~faults ()) in
  let results =
    Pool.run ~jobs:2
      [|
        (fun () -> fingerprint (sim_workload ()));
        (fun () -> fingerprint (sim_workload ~faults ()));
      |]
  in
  let plain, _ = results.(0) and faulty, _ = results.(1) in
  check_bool "fault-free sim matches its serial run" true (plain = serial_plain);
  check_bool "fault-injected sim matches its serial run" true
    (faulty = serial_faulty);
  check_bool "the two runs differ from each other" true (plain <> faulty)

(* ------------------- byte-identical rendering ---------------------- *)

let capture_stdout f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let tmp = Filename.temp_file "ssync_determinism" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  (match f () with
  | () -> restore ()
  | exception e ->
      restore ();
      Sys.remove tmp;
      raise e);
  let ic = open_in_bin tmp in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  s

(* The determinism suite the ISSUE names: fig3, fig9 and the ablations,
   planned and fanned through the pool, then rendered.  Returns the
   rendered bytes and the aggregated engine counters. *)
let run_suite ~jobs =
  let sections =
    [
      Figures.fig3 ~duration:120_000 ();
      Figures.fig9 ();
      Ablations.run ~quick:true ();
    ]
  in
  let all_jobs =
    Array.concat (List.map (fun s -> s.Section.jobs) sections)
  in
  let results = Pool.run ~jobs all_jobs in
  let out =
    capture_stdout (fun () ->
        List.iter (fun s -> s.Section.render ()) sections)
  in
  (out, (Pool.total_stats results).Pool.perf)

let test_byte_identical_output () =
  let out1, perf1 = run_suite ~jobs:1 in
  let out4, perf4 = run_suite ~jobs:4 in
  check_bool "serial run rendered something" true (String.length out1 > 500);
  check_string "stdout byte-identical with 1 and 4 domains" out1 out4;
  (* identical aggregated counters, wall time excepted *)
  check_int "events" perf1.Sim.events perf4.Sim.events;
  check_int "parks" perf1.Sim.parks perf4.Sim.parks;
  check_int "wakeups" perf1.Sim.wakeups perf4.Sim.wakeups;
  check_int "elided probes" perf1.Sim.elided_probes perf4.Sim.elided_probes;
  check_int "sim cycles" perf1.Sim.sim_cycles perf4.Sim.sim_cycles

let suite =
  [
    Alcotest.test_case "pool: inline order" `Quick test_order_inline;
    Alcotest.test_case "pool: parallel order" `Quick test_order_parallel;
    Alcotest.test_case "pool: lowest-index exception" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "pool: multi-failure aggregation" `Quick
      test_exception_aggregation;
    Alcotest.test_case "pool: invalid jobs" `Quick test_invalid_jobs;
    Alcotest.test_case "pool: per-job stats" `Quick test_job_stats_captured;
    Alcotest.test_case "perf arithmetic round-trips" `Quick
      test_perf_arithmetic;
    Alcotest.test_case "cumulative perf matches per-run perf" `Quick
      test_cumulative_matches_per_run;
    Alcotest.test_case "total stats identical across domain counts" `Quick
      test_total_stats_jobs_invariant;
    Alcotest.test_case "two domains match serial" `Quick
      test_two_domains_match_serial;
    Alcotest.test_case "bench output byte-identical across domains" `Slow
      test_byte_identical_output;
  ]
