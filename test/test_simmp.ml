(* Tests of the simulated message passing (libssmp): delivery, ordering,
   the client-server layer, Tilera hardware MP, and the prefetchw
   optimization. *)

open Ssync_platform
open Ssync_engine
open Ssync_simmp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_send_recv_roundtrip () =
  List.iter
    (fun pid ->
      let p = Platform.get pid in
      let sim = Sim.create p in
      let mem = Sim.memory sim in
      let ch = Channel.create mem p ~sender_core:0 ~receiver_core:1 in
      let got = ref [] in
      Sim.spawn sim ~core:0 (fun () ->
          for i = 1 to 20 do
            Channel.send ch (i * 3)
          done);
      Sim.spawn sim ~core:1 (fun () ->
          for _ = 1 to 20 do
            got := Channel.recv ch :: !got
          done);
      ignore (Sim.run sim ~until:10_000_000);
      Alcotest.(check (list int))
        (Printf.sprintf "%s: FIFO, no loss" (Arch.platform_name pid))
        (List.init 20 (fun i -> (i + 1) * 3))
        (List.rev !got))
    Arch.paper_platform_ids

let test_try_recv_empty () =
  let p = Platform.xeon in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let ch = Channel.create mem p ~sender_core:0 ~receiver_core:1 in
  let r = ref (Some 99) in
  Sim.spawn sim ~core:1 (fun () -> r := Channel.try_recv ch);
  ignore (Sim.run sim);
  check_bool "empty channel" true (!r = None)

let test_tilera_uses_hardware () =
  (* Hardware MP is nearly distance-insensitive (Figure 9: 61 vs 64
     cycles one-way), unlike the coherence-based implementation. *)
  let lat use_hw distance =
    let p = Platform.tilera in
    let a_core, b_core =
      Option.get (Topology.pair_at_distance p.Platform.topo distance)
    in
    let sim = Sim.create p in
    let mem = Sim.memory sim in
    let ch = Channel.create ~use_hw mem p ~sender_core:a_core ~receiver_core:b_core in
    let dt = ref 0 in
    Sim.spawn sim ~core:a_core (fun () -> Channel.send ch 5);
    Sim.spawn sim ~core:b_core (fun () ->
        let t0 = Sim.now () in
        ignore (Channel.recv ch);
        dt := Sim.now () - t0);
    ignore (Sim.run sim ~until:1_000_000);
    !dt
  in
  let hw_near = lat true Arch.One_hop and hw_far = lat true Arch.Max_hops in
  let sw_far = lat false Arch.Max_hops in
  check_bool
    (Printf.sprintf "hw nearly flat (%d vs %d)" hw_near hw_far)
    true
    (hw_far - hw_near <= 12);
  check_bool
    (Printf.sprintf "hw (%d) beats sw (%d) at max distance" hw_far sw_far)
    true (hw_far < sw_far)

let test_client_server_serves_all () =
  let p = Platform.opteron in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let clients = 6 in
  let cs =
    Client_server.create mem p ~server_core:0
      ~client_cores:(Array.init clients (fun i -> i + 1))
  in
  let served = Array.make clients 0 in
  let reqs_per_client = 15 in
  Sim.spawn sim ~core:0 (fun () ->
      for _ = 1 to clients * reqs_per_client do
        let i, v = Client_server.recv_any cs in
        served.(i) <- served.(i) + 1;
        Client_server.respond cs i (v + 1)
      done);
  for i = 0 to clients - 1 do
    Sim.spawn sim ~core:(i + 1) (fun () ->
        for k = 1 to reqs_per_client do
          let r = Client_server.request cs ~client:i k in
          if r <> k + 1 then failwith "bad response"
        done)
  done;
  ignore (Sim.run sim ~until:50_000_000);
  Array.iteri
    (fun i n ->
      check_int (Printf.sprintf "client %d fully served" i) reqs_per_client n)
    served

let test_one_to_one_costs () =
  (* A one-way message costs about two line transfers; a round trip
     about four (section 6.2). *)
  match Ssync_ccbench.Mp_bench.one_to_one Arch.Xeon Arch.One_hop with
  | None -> Alcotest.fail "no pair"
  | Some r ->
      check_bool
        (Printf.sprintf "round trip (%.0f) ~ 2x one way (%.0f)" r.round_trip
           r.one_way)
        true
        (r.round_trip > 1.5 *. r.one_way
        && r.round_trip < 3.0 *. r.one_way)

let test_mp_distance_sensitivity () =
  let lat d =
    match Ssync_ccbench.Mp_bench.one_to_one Arch.Opteron d with
    | Some r -> r.one_way
    | None -> nan
  in
  let near = lat Arch.Same_die and far = lat Arch.Two_hops in
  check_bool
    (Printf.sprintf "one-way grows with distance (%.0f -> %.0f)" near far)
    true (far > near)

(* Figure 9 endpoints: the one-way latency at the nearest and farthest
   distances of each coherence-based platform must land within 30% of
   the paper's measurement.  These pin the overlapped-transfer channel
   model (posted stores, exclusive-probe receives) to absolute numbers,
   not just orderings.  Two cells carry a 10% band: the Opteron
   two-hop (the interconnect-occupancy calibration point — links and
   directories queued per hop) and the Xeon same-die (the
   dirty-LLC-hit fetch of a Modified line). *)
let test_figure9_endpoints () =
  let cases =
    [
      ("Opteron same-die", Arch.Opteron, Arch.Same_die, 262., 0.30);
      ("Opteron two-hops", Arch.Opteron, Arch.Two_hops, 660., 0.10);
      ("Xeon same-die", Arch.Xeon, Arch.Same_die, 214., 0.10);
      ("Xeon two-hops", Arch.Xeon, Arch.Two_hops, 1167., 0.30);
      ("Niagara same-core", Arch.Niagara, Arch.Same_core, 181., 0.30);
      ("Niagara same-die", Arch.Niagara, Arch.Same_die, 249., 0.30);
    ]
  in
  List.iter
    (fun (label, pid, distance, paper, tolerance) ->
      match Ssync_ccbench.Mp_bench.one_to_one pid distance with
      | None -> Alcotest.fail (label ^ ": no core pair at that distance")
      | Some r ->
          let err = abs_float (r.one_way -. paper) /. paper in
          check_bool
            (Printf.sprintf "%s one-way %.0f within %.0f%% of paper %.0f"
               label r.one_way (100. *. tolerance) paper)
            true (err <= tolerance))
    cases

let test_prefetchw_speedup () =
  let plain, pfw = Ssync_ccbench.Mp_bench.opteron_prefetchw_speedup () in
  check_bool
    (Printf.sprintf "prefetchw faster (%.0f vs %.0f)" plain pfw)
    true
    (pfw < plain && plain /. pfw > 1.3 && plain /. pfw < 4.0)

(* qcheck: random payload sequences arrive intact and in order. *)
let qcheck_channel_fifo =
  QCheck.Test.make ~count:50 ~name:"channel preserves sequences"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 10000))
    (fun payloads ->
      let p = Platform.niagara in
      let sim = Sim.create p in
      let mem = Sim.memory sim in
      let ch = Channel.create mem p ~sender_core:0 ~receiver_core:9 in
      let got = ref [] in
      Sim.spawn sim ~core:0 (fun () -> List.iter (Channel.send ch) payloads);
      Sim.spawn sim ~core:9 (fun () ->
          for _ = 1 to List.length payloads do
            got := Channel.recv ch :: !got
          done);
      ignore (Sim.run sim ~until:50_000_000);
      List.rev !got = payloads)

let suite =
  [
    Alcotest.test_case "send/recv FIFO on all platforms" `Quick
      test_send_recv_roundtrip;
    Alcotest.test_case "try_recv on empty" `Quick test_try_recv_empty;
    Alcotest.test_case "Tilera hardware MP" `Quick test_tilera_uses_hardware;
    Alcotest.test_case "client-server serves all" `Quick
      test_client_server_serves_all;
    Alcotest.test_case "one-way vs round-trip cost" `Quick
      test_one_to_one_costs;
    Alcotest.test_case "MP latency grows with distance" `Quick
      test_mp_distance_sensitivity;
    Alcotest.test_case "Figure 9 endpoints within 30%" `Quick
      test_figure9_endpoints;
    Alcotest.test_case "Opteron prefetchw speedup (section 5.3)" `Quick
      test_prefetchw_speedup;
    QCheck_alcotest.to_alcotest qcheck_channel_fifo;
  ]
