(* Virtual-time telemetry: the metrics accumulator's one observable
   contract is that sampling is free of observer effects in every
   direction —

   - byte-identical dumps at any [--jobs] count (per-job sinks, keyed
     by virtual time and stable ids only);
   - byte-identical dumps at any [--shards] count (a sharded run either
     replays the serial schedule exactly or aborts without draining;
     strategy-dependent tallies are excluded from the dump and never
     move the epoch base);
   - zero perturbation: a sampled run computes the identical simulation
     (ops, duration, perf counters) as an unsampled one;
   - the samples are the engine's truth: queued-cycle, park, and wake
     totals reconcile exactly against [Sim.perf];
   - a planted saturation case shows up where it was planted: read
     streams from every node funneled at one link drive its sampled
     busy cycles to >= 90% of a steady-state bucket. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
module Metrics = Ssync_metrics.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_sampling f =
  let saved = !Metrics.requested in
  Metrics.requested := true;
  Fun.protect ~finally:(fun () -> Metrics.requested := saved) f

let with_shards n f =
  let saved = !Sim.default_shards in
  Sim.default_shards := n;
  Fun.protect ~finally:(fun () -> Sim.default_shards := saved) f

let with_domains b f =
  let saved = !Sim.shard_domains in
  Sim.shard_domains := b;
  Fun.protect ~finally:(fun () -> Sim.shard_domains := saved) f

let dump jobs =
  let b = Buffer.create 4096 in
  Metrics.dump_csv b jobs;
  Buffer.contents b

(* Strategy-dependent fields masked for identity checks, as in
   test_shards. *)
let no_wall p =
  {
    p with
    Sim.wall_ns = 0;
    windows = 0;
    speculative_replays = 0;
    promoted_lines = 0;
    serial_escalations = 0;
  }

(* A moderately contended lock workload: spins, parks, coherence
   traffic and interconnect queueing all occur, so every sampled kind
   is exercised. *)
let lock_job () =
  Ssync_ccbench.Lock_bench.throughput ~duration:30_000 Arch.Opteron
    Ssync_simlocks.Simlock.Mcs ~threads:18 ~n_locks:1

(* ------------------------- jobs identity --------------------------- *)

let run_pool ~jobs =
  with_sampling (fun () ->
      let thunks = Array.init 3 (fun _ () -> lock_job ()) in
      let results = Pool.run ~jobs thunks in
      let labels = List.init 3 (fun i -> Printf.sprintf "job/%d" i) in
      (results, List.combine labels (Pool.metrics results)))

let test_jobs_identity () =
  let _, m1 = run_pool ~jobs:1 in
  let _, m4 = run_pool ~jobs:4 in
  check_int "every job got a sink" 3 (List.length m1);
  check_string "dump byte-identical at --jobs 1 vs 4" (dump m1) (dump m4)

(* ------------------------ shards identity -------------------------- *)

(* One thread per node hammering node-local lines (the partitioned
   workload of test_shards): stays sharded end-to-end, so the sharded
   run must drain the very same samples the serial schedule does. *)
let partitioned () =
  let p = Platform.get Arch.Opteron in
  let topo = p.Platform.topo in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let core_of_node = Array.make topo.Topology.n_nodes (-1) in
  for c = topo.Topology.n_cores - 1 downto 0 do
    core_of_node.(topo.Topology.node_of_core c) <- c
  done;
  for i = 0 to 3 do
    let a = Memory.alloc ~home_core:core_of_node.(i) mem in
    Sim.spawn sim ~core:core_of_node.(i) (fun () ->
        for _ = 1 to 300 do
          let v = Sim.load a in
          Sim.store a (v + 1);
          ignore (Sim.fai a);
          Sim.pause (50 + (i * 13))
        done)
  done;
  ignore (Sim.run sim);
  Sim.perf sim

let sampled_partitioned () =
  let sink = Metrics.start () in
  let p = partitioned () in
  ignore (Metrics.stop ());
  (sink, p)

let test_shards_identity () =
  let m1, p1 = with_shards 1 sampled_partitioned in
  let m4, p4 =
    with_shards 4 (fun () -> with_domains true sampled_partitioned)
  in
  check_bool "sharded run executed windows" true (p4.Sim.windows > 0);
  check_bool "perf identical (minus strategy)" true
    (no_wall p1 = no_wall p4);
  check_string "dump byte-identical at shards 1 vs 4"
    (dump [ ("p", m1) ])
    (dump [ ("p", m4) ])

(* A conflicting workload that aborts and re-runs serially must land on
   the identical dump too: the aborted attempt drains nothing, and its
   strategy tallies must not shift the epoch base of anything that
   follows in the same job. *)
let test_abort_replay_identity () =
  let job () =
    let sink = Metrics.start () in
    let r1 = lock_job () in
    let r2 = lock_job () in
    ignore (Metrics.stop ());
    (sink, no_wall r1.Harness.perf, no_wall r2.Harness.perf)
  in
  let m1, a1, b1 = with_shards 1 job in
  let m4, a4, b4 = with_shards 4 (fun () -> with_domains true job) in
  check_bool "first run perf identical" true (a1 = a4);
  check_bool "second run perf identical" true (b1 = b4);
  check_string "two-sim job dump byte-identical at shards 1 vs 4"
    (dump [ ("j", m1) ])
    (dump [ ("j", m4) ])

(* ------------------------ no perturbation -------------------------- *)

let test_no_perturbation () =
  let plain = lock_job () in
  let sampled =
    with_sampling (fun () ->
        ignore (Metrics.start ());
        let r = lock_job () in
        ignore (Metrics.stop ());
        r)
  in
  check_bool "ops identical" true (plain.Harness.ops = sampled.Harness.ops);
  check_int "duration identical" plain.Harness.duration
    sampled.Harness.duration;
  check_bool "perf identical (minus wall)" true
    (no_wall plain.Harness.perf = no_wall sampled.Harness.perf)

(* ------------------------- reconciliation -------------------------- *)

let test_reconciles_with_perf () =
  let sink = Metrics.start () in
  let r = lock_job () in
  ignore (Metrics.stop ());
  let p = r.Harness.perf in
  let tot k = Metrics.total sink ~kind:k in
  check_bool "workload queues on the interconnect" true
    (p.Sim.link_queued_cycles > 0);
  check_bool "workload parks" true (p.Sim.parks > 0);
  check_int "queued cycles reconcile"
    p.Sim.link_queued_cycles
    (tot Metrics.k_dir_queued + tot Metrics.k_link_queued);
  check_int "parks reconcile" p.Sim.parks (tot Metrics.k_parks);
  check_int "wakes reconcile" p.Sim.wakeups (tot Metrics.k_wakes)

(* ------------------------ planted saturation ----------------------- *)

(* Saturate the Opteron's 0-1 HT link and check the heat shows up
   where it was planted.  The plant exploits the deterministic route:
   every 2-hop requester reaches node 1 through intermediate node 0
   (the first minimal detour in scan order), so reads of node-1-homed
   lines funnel through the 0-1 link from EVERY other node.  One
   reader per remaining core (42 crossing read streams), each on its
   own word that a node-1 writer keeps invalidating, oversubscribes
   the link's 16-cycle holds — its sampled busy cycles must reach
   >= 90% of a steady-state bucket, and it must be the busiest link. *)
let test_planted_saturated_link () =
  let p = Platform.get Arch.Opteron in
  let topo = p.Platform.topo in
  let n = topo.Topology.n_nodes in
  let cores_of node =
    List.filter
      (fun c -> topo.Topology.node_of_core c = node)
      (List.init topo.Topology.n_cores Fun.id)
  in
  let writers = Array.of_list (cores_of 1) in
  let readers =
    Array.of_list
      (List.filter
         (fun c -> topo.Topology.node_of_core c <> 1)
         (List.init topo.Topology.n_cores Fun.id))
  in
  let sink = Metrics.start () in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  (* long enough that steady state covers whole grid buckets *)
  let deadline = 3 * 65_536 in
  (* One dedicated reader + writer thread per word.  Cores are not a
     simulated resource — a thread blocked in a memory transaction
     does not occupy its core — so pinning several threads to one core
     multiplies the outstanding transactions.  Each word's writer
     stays MOESI owner on node 1, so every reader miss is sourced from
     node 1 across the 0-1 link, while the writer's own stores (owner
     and home both local) book no link at all.  ~72 independent
     crossing streams at a 16-cycle hold per ~650-cycle miss cycle
     oversubscribe the link well past its capacity; the queue feedback
     then keeps it busy essentially every cycle. *)
  let pairs = 72 in
  for i = 0 to pairs - 1 do
    let wc = writers.(i mod Array.length writers) in
    let w = Memory.alloc ~home_core:wc mem in
    let rc = readers.(i mod Array.length readers) in
    (* the pause thins out the local re-read hits without limiting the
       invalidation-driven crossing rate *)
    Sim.spawn sim ~core:rc (fun () ->
        while Sim.now () < deadline do
          ignore (Sim.load w);
          Sim.pause 48
        done);
    Sim.spawn sim ~core:wc (fun () ->
        while Sim.now () < deadline do
          Sim.store w (Sim.now ());
          Sim.pause 32
        done)
  done;
  ignore (Sim.run sim);
  ignore (Metrics.stop ());
  let link01 = (0 * n) + 1 in
  let grid = Metrics.grid sink in
  (* peak steady-state bucket of the planted link *)
  let peak = ref 0 in
  let busiest = ref (-1, 0) in
  Metrics.iter_sorted sink (fun ~kind ~id ~bucket:_ v ->
      if kind = Metrics.k_link_busy then begin
        if id = link01 && v > !peak then peak := v;
        let _, bv = !busiest in
        if v > bv then busiest := (id, v)
      end);
  check_bool
    (Printf.sprintf "planted link >= 90%% busy in its peak bucket (%d/%d)"
       !peak grid)
    true
    (float_of_int !peak >= 0.9 *. float_of_int grid);
  check_int "the busiest sampled link is the planted one" link01
    (fst !busiest)

(* ----------------------------- dumps ------------------------------- *)

let test_dump_formats () =
  let _, jobs = run_pool ~jobs:1 in
  let csv = dump jobs in
  check_bool "csv header" true
    (String.length csv > 0
    && String.sub csv 0 22 = "# ssync metrics v1 buc");
  let b = Buffer.create 4096 in
  Metrics.dump_json b jobs;
  let json = Buffer.contents b in
  check_bool "json opens with the grid" true
    (String.sub json 0 17 = "{\"bucket_cycles\":");
  (* strategy-dependent kinds never appear in the deterministic dump *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  check_bool "no strategy kinds in csv" false (contains csv "windows");
  check_bool "no strategy kinds in json" false (contains json "windows")

let suite =
  [
    Alcotest.test_case "dump identical across --jobs" `Quick
      test_jobs_identity;
    Alcotest.test_case "dump identical across --shards" `Quick
      test_shards_identity;
    Alcotest.test_case "abort/replay cannot shift the dump" `Quick
      test_abort_replay_identity;
    Alcotest.test_case "sampling perturbs nothing" `Quick
      test_no_perturbation;
    Alcotest.test_case "samples reconcile with Sim.perf" `Quick
      test_reconciles_with_perf;
    Alcotest.test_case "planted saturated link shows up" `Quick
      test_planted_saturated_link;
    Alcotest.test_case "dump formats" `Quick test_dump_formats;
  ]
