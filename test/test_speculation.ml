(* Speculative replay: the checkpoint/rollback layer in [Memory] and
   the promotion-based replay driver in [Harness].

   - qcheck property: for arbitrary access/alloc/poke sequences, a
     checkpoint taken at an arbitrary point followed by arbitrary
     further mutation and [restore] leaves the memory bit-equal to a
     fresh memory that replayed only the pre-checkpoint prefix — and a
     second [restore] (the checkpoint stays armed) agrees too;
   - a planted cross-shard race: two far threads hammering one shared
     line makes the sharded harness abort, promote the line and replay
     — the result must be byte-identical to the serial run, and the
     second run of the same job must not pay the discovery again
     (adaptive policy). *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let platform = Platform.get Arch.Opteron
let n_cores = Platform.n_cores platform

(* ------------------- memory state fingerprint ---------------------- *)

(* Every observable component the checkpoint claims to cover: word
   values, line protocol state (owner, sharers, home, busy, pfw/cas
   reservations, llc flag, waiter count), per-line residency, slot-0
   statistics, and interconnect-resource busy times. *)
let fingerprint mem =
  let words =
    List.init (Memory.n_words mem) (fun a ->
        let l = Memory.line mem a in
        ( Memory.peek mem a,
          Memory.residency mem a,
          ( l.Memory.state,
            l.Memory.owner,
            Ssync_platform.Coreset.elements l.Memory.sharers,
            l.Memory.home,
            l.Memory.busy_until,
            l.Memory.pfw_owner,
            l.Memory.cas_pending,
            l.Memory.llc_dirty,
            List.length l.Memory.waiters ) ))
  in
  let st = Memory.stats mem in
  let stats_obs =
    ( Stats.total_ops st,
      Stats.total_cycles st,
      Format.asprintf "%a" Stats.pp st )
  in
  let n_res = Cost_model.n_resources platform.Platform.topo in
  let resources = List.init n_res (fun r -> Memory.resource_busy mem r) in
  (Memory.n_lines mem, Memory.n_words mem, words, stats_obs, resources)

(* --------------------- random op sequences ------------------------- *)

(* One op is (kind, core, addr index, operand, time step); the driver
   folds them over a memory with a strictly increasing clock, so any
   two applications of the same list are identical. *)
let apply_op mem addrs now (kind, core, idx, operand, dt) =
  let core = core mod n_cores in
  let a () =
    let l = !addrs in
    List.nth l (idx mod List.length l)
  in
  now := !now + 1 + (dt mod 97);
  match kind mod 9 with
  | 0 -> ignore (Memory.access mem ~core ~now:!now Arch.Load (a ()))
  | 1 -> ignore (Memory.access ~operand mem ~core ~now:!now Arch.Store (a ()))
  | 2 ->
      ignore
        (Memory.access ~operand:(operand mod 4)
           ~operand2:((operand + 1) mod 4)
           mem ~core ~now:!now Arch.Cas (a ()))
  | 3 -> ignore (Memory.access ~operand:1 mem ~core ~now:!now Arch.Fai (a ()))
  | 4 -> ignore (Memory.access mem ~core ~now:!now Arch.Tas (a ()))
  | 5 -> ignore (Memory.access ~operand mem ~core ~now:!now Arch.Swap (a ()))
  | 6 -> Memory.poke mem (a ()) operand
  | 7 -> addrs := !addrs @ [ Memory.alloc ~home_core:core mem ]
  | _ ->
      let b = Memory.alloc_packed ~home_core:core mem 2 in
      addrs := !addrs @ [ b; b + 1 ]

let init_mem () =
  let mem = Memory.create platform in
  let a0 = Memory.alloc ~home_core:0 ~value:7 mem in
  let a1 = Memory.alloc ~home_core:12 mem in
  let ap = Memory.alloc_packed ~home_core:30 mem 4 in
  (mem, ref [ a0; a1; ap; ap + 1; ap + 2; ap + 3 ])

let apply_all mem addrs ops =
  let now = ref 0 in
  List.iter (apply_op mem addrs now) ops

let split_at k l =
  let rec go k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (k - 1) (x :: acc) rest
  in
  go k [] l

let op_gen =
  QCheck.(
    list_of_size
      Gen.(0 -- 60)
      (pair (pair small_nat small_nat)
         (pair small_nat (pair small_nat small_nat))))

let flat ((kind, core), (idx, (operand, dt))) = (kind, core, idx, operand, dt)

let prop_checkpoint_restore =
  QCheck.Test.make ~count:200 ~name:"checkpoint/restore == fresh replay"
    QCheck.(pair op_gen small_nat)
    (fun (ops, kraw) ->
      let ops = List.map flat ops in
      let k = kraw mod (List.length ops + 1) in
      let prefix, suffix = split_at k ops in
      (* reference: a fresh memory that ran only the prefix *)
      let ref_mem, ref_addrs = init_mem () in
      apply_all ref_mem ref_addrs prefix;
      let expected = fingerprint ref_mem in
      (* subject: prefix, checkpoint, suffix, restore (twice) *)
      let mem, addrs = init_mem () in
      let now = ref 0 in
      List.iter (apply_op mem addrs now) prefix;
      Memory.checkpoint mem;
      List.iter (apply_op mem addrs now) suffix;
      Memory.restore mem;
      let once = fingerprint mem in
      (* the checkpoint stays armed: mutate again, restore again *)
      let addrs2 = ref !ref_addrs in
      let now2 = ref 1_000_000 in
      List.iter (apply_op mem addrs2 now2) (List.rev suffix);
      Memory.restore mem;
      let twice = fingerprint mem in
      Memory.dispose mem;
      Memory.dispose ref_mem;
      expected = once && expected = twice)

(* ------------------- planted cross-shard race ---------------------- *)

let mask p =
  {
    p with
    Sim.wall_ns = 0;
    windows = 0;
    speculative_replays = 0;
    promoted_lines = 0;
    serial_escalations = 0;
  }

(* Mostly-partitioned workload with one shared counter: each of four
   threads works a private line, and every few iterations bursts on
   the shared one — the planted race that crosses shards.  On the
   Tilera each core is its own topology node, so four threads span
   four shards (on the socket-filling platforms they would sit on one
   node and the harness's span rule would force them serial). *)
let planted_race () =
  let p = Platform.get Arch.Tilera in
  let far_cores = Array.init 4 (fun tid -> Platform.place p tid) in
  Harness.run p ~threads:4 ~duration:60_000
    ~setup:(fun mem ->
      let shared = Memory.alloc ~home_core:0 mem in
      let privs =
        Array.map (fun c -> Memory.alloc ~home_core:c mem) far_cores
      in
      (shared, privs))
    ~body:(fun (shared, privs) _mem ~tid ~deadline ->
      let mine = privs.(tid) in
      let n = ref 0 in
      while Sim.now () < deadline do
        for _ = 1 to 6 do
          let v = Sim.load mine in
          Sim.store mine (v + 1);
          Sim.pause (45 + (tid * 13))
        done;
        (* burst on the shared line: several accesses closer together
           than any window width, guaranteeing a cross-shard stamp
           conflict on the first sharded attempt *)
        for _ = 1 to 4 do
          ignore (Sim.fai shared);
          Sim.pause (23 + (tid * 7))
        done;
        incr n
      done;
      !n)

let race_fingerprint (r : Harness.result) =
  ( Array.to_list r.Harness.ops,
    Array.to_list r.Harness.completed,
    r.Harness.total_ops,
    r.Harness.health,
    mask r.Harness.perf )

let with_shards n f =
  let saved = !Sim.default_shards in
  let saved_domains = !Sim.shard_domains in
  Sim.default_shards := n;
  (* the harness's host gate keeps sharding off without worker domains;
     force them on so a single-core test runner still speculates *)
  Sim.shard_domains := true;
  Fun.protect
    ~finally:(fun () ->
      Sim.default_shards := saved;
      Sim.shard_domains := saved_domains)
    f

let test_planted_race_replays_identically () =
  let serial = race_fingerprint (planted_race ()) in
  let before = Sim.cumulative_perf () in
  let sharded = with_shards 4 (fun () -> race_fingerprint (planted_race ())) in
  let d1 = Sim.perf_diff (Sim.cumulative_perf ()) before in
  check_bool "sharded race run byte-identical to serial" true
    (serial = sharded);
  check_bool "the race engaged speculation (replayed or escalated)" true
    (d1.Sim.speculative_replays > 0 || d1.Sim.serial_escalations > 0);
  (* second run of the same job: the adaptive policy replays nothing —
     it either pre-promotes the learned line set or goes straight to
     the serial engine *)
  let before2 = Sim.cumulative_perf () in
  let again = with_shards 4 (fun () -> race_fingerprint (planted_race ())) in
  let d2 = Sim.perf_diff (Sim.cumulative_perf ()) before2 in
  check_bool "second sharded run still identical" true (serial = again);
  check_int "second run pays no rediscovery replays" 0
    d2.Sim.speculative_replays

(* Checkpoints refuse memories with parked waiters: a parked spinner's
   elided probes cannot be journaled back. *)
let test_checkpoint_refuses_parked_waiters () =
  let sim = Sim.create platform in
  let mem = Sim.memory sim in
  let a = Memory.alloc ~home_core:0 mem in
  Sim.spawn sim ~core:0 (fun () -> ignore (Sim.spin_load a ~while_:0 ~poll:100));
  Sim.spawn sim ~core:1 (fun () ->
      Sim.pause 40_000;
      Sim.store a 1);
  ignore (Sim.run sim ~until:10_000);
  check_bool "the spinner is parked" true (Memory.waiter_count mem a > 0);
  (match Memory.checkpoint mem with
  | () -> Alcotest.fail "checkpoint accepted a parked waiter"
  | exception Invalid_argument _ -> ());
  ignore (Sim.run sim)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_checkpoint_restore;
    Alcotest.test_case "planted cross-shard race: replay == serial" `Quick
      test_planted_race_replays_identically;
    Alcotest.test_case "checkpoint refuses parked waiters" `Quick
      test_checkpoint_refuses_parked_waiters;
  ]
