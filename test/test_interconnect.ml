(* Tests of the interconnect/directory occupancy model and the
   multi-word line layer: packed allocation, line-granular coherence
   (false sharing), finite-bandwidth queueing at home directories, and
   the reconciliation of the link-wait accounting against the engine's
   counters. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mem_on pid = Memory.create (Platform.get pid)

(* ------------------------ multi-word lines ------------------------ *)

let test_packed_words_share_lines () =
  let m = mem_on Arch.Opteron in
  let lw = Memory.line_words m in
  check_bool "platforms have multi-word lines" true (lw > 1);
  let base = Memory.alloc_packed m (lw + 2) in
  check_bool "first and last word of a line alias" true
    (Memory.same_line m base (base + lw - 1));
  check_bool "word lw spills to the next line" false
    (Memory.same_line m base (base + lw));
  let padded = Memory.alloc_n m 2 in
  check_bool "padded words never share" false
    (Memory.same_line m padded (padded + 1))

let test_packed_words_have_independent_values () =
  let m = mem_on Arch.Xeon in
  let base = Memory.alloc_packed ~value:3 m 4 in
  ignore (Memory.access m ~core:0 ~now:0 Arch.Store (base + 1) ~operand:9);
  check_int "neighbor untouched" 3 (Memory.peek m base);
  check_int "stored word updated" 9 (Memory.peek m (base + 1));
  check_int "other neighbor untouched" 3 (Memory.peek m (base + 2));
  (* atomics too: a FAI on one word leaves its line-mates alone *)
  ignore (Memory.access m ~core:1 ~now:10_000 Arch.Fai (base + 2) ~operand:1);
  check_int "fai hit only its word" 4 (Memory.peek m (base + 2));
  check_int "neighbors still intact" 9 (Memory.peek m (base + 1))

let test_false_sharing_invalidates_line_mates () =
  let m = mem_on Arch.Xeon in
  let base = Memory.alloc_packed m 2 in
  (* core 0 caches the line by reading word 0 ... *)
  ignore (Memory.access m ~core:0 ~now:0 Arch.Load base);
  let hit, _ = Memory.access m ~core:0 ~now:5_000 Arch.Load base in
  (* ... core 1 writes the *other* word: coherence is line-granular,
     so core 0's copy dies even though no shared data exists *)
  ignore (Memory.access m ~core:1 ~now:10_000 Arch.Store (base + 1) ~operand:7);
  let miss, _ = Memory.access m ~core:0 ~now:50_000 Arch.Load base in
  check_bool
    (Printf.sprintf "line-mate write forces a refetch (%d > %d)" miss hit)
    true (miss > hit);
  (* the padded layout is immune: same traffic, different lines *)
  let p0 = Memory.alloc_n m 2 in
  ignore (Memory.access m ~core:0 ~now:100_000 Arch.Load p0);
  let hit_p, _ = Memory.access m ~core:0 ~now:105_000 Arch.Load p0 in
  ignore
    (Memory.access m ~core:1 ~now:110_000 Arch.Store (p0 + 1) ~operand:7);
  let still_hit, _ = Memory.access m ~core:0 ~now:150_000 Arch.Load p0 in
  check_int "padded neighbor write leaves the hit local" hit_p still_hit

(* --------------------- finite-bandwidth queueing ------------------ *)

(* Two requests to *different* lines with the same home must still
   serialize: the home node's directory is a finite resource.  Before
   this model, occupancy was line-only and cross-line traffic to one
   node was infinitely parallel. *)
let test_home_directory_serializes_distinct_lines () =
  let p = Platform.get Arch.Opteron in
  let topo = p.Platform.topo in
  (* isolated baseline: the same remote load on an idle machine *)
  let baseline =
    let m = Memory.create p in
    let b = Memory.alloc ~home_core:0 m in
    fst (Memory.access m ~core:12 ~now:0 Arch.Load b)
  in
  let m = Memory.create p in
  let a = Memory.alloc ~home_core:0 m in
  let b = Memory.alloc ~home_core:0 m in
  check_bool "distinct lines" false (Memory.same_line m a b);
  let q0 = (Memory.stats m).Stats.link_queued_cycles in
  ignore (Memory.access m ~core:6 ~now:0 Arch.Load a);
  let lat, _ = Memory.access m ~core:12 ~now:0 Arch.Load b in
  check_bool
    (Printf.sprintf "second request queued at the home directory (%d > %d)"
       lat baseline)
    true (lat > baseline);
  let q1 = (Memory.stats m).Stats.link_queued_cycles in
  check_int "the extra wait is exactly the accounted link/dir wait"
    (lat - baseline) (q1 - q0);
  let home_dir = Topology.node_of topo 0 in
  check_bool "home directory resource is held" true
    (Memory.resource_busy m home_dir > 0);
  (* fully node-local traffic is exempt: on-die bandwidth is not the
     modeled bottleneck, so a same-node access never queues on links *)
  let c = Memory.alloc ~home_core:0 m in
  let q2 = (Memory.stats m).Stats.link_queued_cycles in
  ignore (Memory.access m ~core:1 ~now:0 Arch.Load c);
  check_int "node-local access crosses no finite resource" q2
    (Memory.stats m).Stats.link_queued_cycles

(* A contended cross-die run must keep its occupancy books consistent
   with the engine's counters: link waits are part of line waits, line
   waits are part of op cycles, and op cycles fit in the virtual time
   the engine actually advanced. *)
let test_occupancy_reconciles_with_perf () =
  let p = Platform.get Arch.Opteron in
  let threads = 12 in
  let memref = ref None in
  let r =
    (* padded counters all homed at one node, each ping-ponged between
       two neighbor threads: lines stay non-local (so they cross the
       interconnect every time) while many distinct lines converge on
       the same finite home directory *)
    Harness.run p ~threads ~duration:60_000
      ~setup:(fun mem ->
        memref := Some mem;
        Memory.alloc_n ~home_core:(Platform.place p 0) mem threads)
      ~body:(fun base _mem ~tid ~deadline ->
        let mine = base + tid in
        let next = base + ((tid + 1) mod threads) in
        let n = ref 0 in
        while Sim.now () < deadline do
          ignore (Sim.fai mine);
          ignore (Sim.fai next);
          Sim.pause 50;
          incr n
        done;
        !n)
  in
  check_bool "workload did work" true (r.Harness.total_ops > 0);
  let st = Memory.stats (Option.get !memref) in
  let total_op_cycles =
    st.Stats.loads.Stats.cycles + st.Stats.stores.Stats.cycles
    + st.Stats.atomics.Stats.cycles
  in
  check_bool "cross-die traffic queued on links/dirs" true
    (st.Stats.link_queued_cycles > 0);
  check_bool "link wait is a component of total wait" true
    (st.Stats.link_queued_cycles <= st.Stats.queued_cycles);
  check_bool "total wait fits in op cycles" true
    (st.Stats.queued_cycles <= total_op_cycles);
  check_bool "op cycles fit in threads * advanced virtual time" true
    (total_op_cycles <= threads * r.Harness.perf.Sim.sim_cycles)

(* ---------------- false sharing: padded vs packed ----------------- *)

let test_false_sharing_slower_than_padded () =
  List.iter
    (fun pid ->
      List.iter
        (fun w ->
          let mops layout =
            (Ssync_ccbench.Fs_bench.throughput ~duration:60_000 pid w layout
               ~threads:8)
              .Harness.mops
          in
          let padded = mops Ssync_ccbench.Fs_bench.Padded in
          let packed = mops Ssync_ccbench.Fs_bench.Packed in
          check_bool
            (Printf.sprintf "%s %s: padded %.1f > 2x packed %.1f"
               (Arch.platform_name pid)
               (Ssync_ccbench.Fs_bench.workload_name w)
               padded packed)
            true
            (padded > 2. *. packed))
        Ssync_ccbench.Fs_bench.all_workloads)
    Arch.paper_platform_ids

let suite =
  [
    Alcotest.test_case "packed words share lines; padded don't" `Quick
      test_packed_words_share_lines;
    Alcotest.test_case "packed words keep independent values" `Quick
      test_packed_words_have_independent_values;
    Alcotest.test_case "line-mate write invalidates (false sharing)" `Quick
      test_false_sharing_invalidates_line_mates;
    Alcotest.test_case "home directory serializes distinct lines" `Quick
      test_home_directory_serializes_distinct_lines;
    Alcotest.test_case "occupancy accounting reconciles with Sim.perf" `Quick
      test_occupancy_reconciles_with_perf;
    Alcotest.test_case "false sharing slower than padded everywhere" `Slow
      test_false_sharing_slower_than_padded;
  ]
