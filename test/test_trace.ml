(* Tests of the tracing/profiling subsystem:

   - ring-buffer semantics: geometric growth to the cap, wrap-around
     with [dropped] accounting, never-dropped aggregate totals;
   - reconciliation: trace aggregates match the engine's own perf
     counters exactly (parks, wakeups, elided probes) for a traced
     simulation;
   - the Chrome exporter emits valid trace-event JSON — checked with a
     small hand-rolled parser (no JSON library in this environment):
     every event carries ph/pid/tid, every non-metadata event carries
     ts, and timestamps are monotone per (pid, tid) track;
   - exports are byte-identical at --jobs 1 and --jobs 4;
   - profile invariants: acquisitions equal releases for a
     acquire/release-balanced workload, the handoff matrix sums to
     acquisitions minus first acquisitions, and per-thread fairness
     counts sum to the acquisition count. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_simlocks
module Trace = Ssync_trace.Trace
module Chrome = Ssync_trace.Chrome
module Profile = Ssync_trace.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --------------------------- ring buffer --------------------------- *)

let test_ring_wrap () =
  let tr = Trace.create ~capacity:64 () in
  for i = 0 to 99 do
    Trace.emit tr ~ts:i (Trace.E_park { tid = 0; addr = i })
  done;
  check_int "ring holds its capacity" 64 (Trace.length tr);
  check_int "oldest events dropped" 36 (Trace.dropped tr);
  let first = ref (-1) and count = ref 0 and last = ref (-1) in
  Trace.iter tr (fun e ->
      if !first < 0 then first := e.Trace.ts;
      check_bool "iter is chronological" true (e.Trace.ts >= !last);
      last := e.Trace.ts;
      incr count);
  check_int "iter covers the retained window" 64 !count;
  check_int "retained window starts after the drop" 36 !first;
  let tt = Trace.totals tr in
  check_int "aggregates never drop" 100 tt.Trace.t_parks;
  check_int "emitted counts everything" 100 tt.Trace.t_emitted

let test_epoch_offsets () =
  let tr = Trace.create () in
  Trace.emit tr ~ts:500 (Trace.E_park { tid = 0; addr = 0 });
  Trace.new_epoch tr;
  (* the second sim restarts at ts 0; its events must land after the
     first sim's on the shared timeline *)
  Trace.emit tr ~ts:0 (Trace.E_wake { tid = 0; addr = 0 });
  let tss = ref [] in
  Trace.iter tr (fun e -> tss := e.Trace.ts :: !tss);
  match List.rev !tss with
  | [ a; b ] ->
      check_int "first epoch timestamp" 500 a;
      check_bool "second epoch offset past the first" true (b >= a)
  | _ -> Alcotest.fail "expected two events"

(* ----------------- traced simulation + reconciliation -------------- *)

(* A contended lock workload on the Opteron: parks, wakes and elided
   probes all occur, so the reconciliation is non-trivial. *)
let traced_workload () =
  Harness.run Platform.opteron ~threads:8 ~duration:60_000
    ~setup:(fun mem ->
      let p = Platform.opteron in
      (Simlock.create mem p ~n_threads:8 Simlock.Ticket, Memory.alloc mem))
    ~body:(fun (lock, data) _mem ~tid ~deadline ->
      let n = ref 0 in
      while Sim.now () < deadline do
        lock.Lock_type.acquire ~tid;
        ignore (Sim.fai data);
        lock.Lock_type.release ~tid;
        Sim.pause 100;
        incr n
      done;
      !n)

let with_trace f =
  let tr = Trace.start () in
  match f () with
  | v ->
      ignore (Trace.stop ());
      (v, tr)
  | exception e ->
      ignore (Trace.stop ());
      raise e

let test_reconciles_with_perf () =
  let r, tr = with_trace traced_workload in
  let tt = Trace.totals tr in
  let p = r.Harness.perf in
  check_bool "workload did work" true (r.Harness.total_ops > 0);
  check_bool "events were recorded" true (Trace.length tr > 0);
  check_int "parks reconcile" p.Sim.parks tt.Trace.t_parks;
  check_int "wakeups reconcile" p.Sim.wakeups tt.Trace.t_wakes;
  check_int "elided probes reconcile" p.Sim.elided_probes tt.Trace.t_elided;
  check_int "acquires balance releases" tt.Trace.t_acquires
    tt.Trace.t_releases

let test_traced_run_same_virtual_time () =
  (* tracing must not perturb the simulation: identical throughput and
     engine counters (minus wall time) with and without a sink *)
  let plain = traced_workload () in
  let traced, _ = with_trace traced_workload in
  check_int "total ops unchanged" plain.Harness.total_ops
    traced.Harness.total_ops;
  check_int "events unchanged" plain.Harness.perf.Sim.events
    traced.Harness.perf.Sim.events;
  check_int "sim cycles unchanged" plain.Harness.perf.Sim.sim_cycles
    traced.Harness.perf.Sim.sim_cycles

(* ------------------------- profile sanity -------------------------- *)

let test_profile_invariants () =
  let r, tr = with_trace traced_workload in
  let prof = Profile.of_traces [ tr ] in
  (match Profile.locks_in_order prof with
  | [ name ] ->
      check_string "one lock profiled" "TICKET" name;
      let lp = Hashtbl.find prof.Profile.locks name in
      check_int "acqs == releases" lp.Profile.acqs lp.Profile.rels;
      check_int "every op acquired once" r.Harness.total_ops lp.Profile.acqs;
      let handoffs = Array.fold_left ( + ) 0 lp.Profile.handoff in
      check_int "handoff matrix sums to non-first acquisitions"
        (lp.Profile.acqs - lp.Profile.first_acqs)
        handoffs;
      check_int "fairness counts sum to acqs" lp.Profile.acqs
        (Array.fold_left ( + ) 0 lp.Profile.by_tid);
      check_int "histogram sums to acqs" lp.Profile.acqs
        (Array.fold_left ( + ) 0 lp.Profile.wait_hist)
  | l -> Alcotest.failf "expected one lock, got %d" (List.length l));
  (* the rendered tables must not raise and must mention the lock *)
  let tbls =
    [
      Profile.lock_table prof; Profile.wait_hist_table prof;
      Profile.coherence_table prof; Profile.transitions_table prof;
      Profile.lines_table prof; Profile.summary_table prof;
    ]
  in
  check_int "all tables render" 6 (List.length tbls)

(* ------------------- minimal JSON schema checker ------------------- *)

(* Just enough of a JSON parser to validate the exporter's output:
   values become a tree of variants; parse errors raise [Failure]. *)
type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of float
  | J_bool of bool
  | J_null

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | 'u' ->
              advance ();
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char b '?'
          | c ->
              advance ();
              Buffer.add_char b
                (match c with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | c -> c));
          go ()
      | '\000' -> fail "unterminated string"
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elems [])
        end
    | '"' -> J_str (parse_string ())
    | 't' ->
        pos := !pos + 4;
        J_bool true
    | 'f' ->
        pos := !pos + 5;
        J_bool false
    | 'n' ->
        pos := !pos + 4;
        J_null
    | c when c = '-' || (c >= '0' && c <= '9') ->
        let start = !pos in
        let num c = (c >= '0' && c <= '9') || String.contains "-+.eE" c in
        while num (peek ()) do
          advance ()
        done;
        J_num (float_of_string (String.sub s start (!pos - start)))
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field o k =
  match o with J_obj kvs -> List.assoc_opt k kvs | _ -> None

let as_num = function J_num f -> Some f | _ -> None
let as_str = function J_str s -> Some s | _ -> None

(* ----------------------- Chrome export schema ---------------------- *)

let export_of_workload () =
  let _, tr = with_trace traced_workload in
  Chrome.export_string [ ("job/0", tr) ]

let test_chrome_schema () =
  let s = export_of_workload () in
  let j = parse_json s in
  let events =
    match obj_field j "traceEvents" with
    | Some (J_arr evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  check_bool "events exported" true (List.length events > 100);
  let tracks : (float * float, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let ph =
        match obj_field e "ph" with
        | Some (J_str p) -> p
        | _ -> Alcotest.fail "event without ph"
      in
      let num k =
        match Option.bind (obj_field e k) as_num with
        | Some v -> v
        | None -> Alcotest.failf "event without numeric %s" k
      in
      check_bool "name present" true (obj_field e "name" <> None);
      let pid = num "pid" and tid = num "tid" in
      if ph <> "M" then begin
        let ts = num "ts" in
        check_bool "timestamps non-negative" true (ts >= 0.);
        (match Hashtbl.find_opt tracks (pid, tid) with
        | Some prev ->
            if ts < prev then
              Alcotest.failf "track (%g,%g): ts %g after %g" pid tid ts prev
        | None -> ());
        Hashtbl.replace tracks (pid, tid) ts
      end)
    events;
  (* the process got named after its job label *)
  let labeled =
    List.exists
      (fun e ->
        obj_field e "name" = Some (J_str "process_name")
        && (match obj_field e "args" with
           | Some a -> Option.bind (obj_field a "name") as_str = Some "job/0"
           | None -> false))
      events
  in
  check_bool "process named after the job label" true labeled

(* ----------------- determinism across domain counts ---------------- *)

(* Four independent lock sims fanned through the pool: the export must
   be byte-identical however many domains executed the jobs. *)
let pool_export ~jobs =
  Trace.requested := true;
  let thunks = Array.init 4 (fun _ () -> ignore (traced_workload ())) in
  let results = Pool.run ~jobs thunks in
  Trace.requested := false;
  let traces = Pool.traces results in
  check_int "every job traced" 4 (List.length traces);
  Chrome.export_string
    (List.mapi (fun i tr -> (Printf.sprintf "job/%d" i, tr)) traces)

let test_export_jobs_identical () =
  let s1 = pool_export ~jobs:1 in
  let s4 = pool_export ~jobs:4 in
  check_bool "export non-trivial" true (String.length s1 > 10_000);
  check_string "byte-identical at --jobs 1 and 4" s1 s4

let suite =
  [
    Alcotest.test_case "ring: wrap and totals" `Quick test_ring_wrap;
    Alcotest.test_case "ring: epoch offsets" `Quick test_epoch_offsets;
    Alcotest.test_case "totals reconcile with Sim.perf" `Quick
      test_reconciles_with_perf;
    Alcotest.test_case "tracing leaves virtual time unchanged" `Quick
      test_traced_run_same_virtual_time;
    Alcotest.test_case "profile invariants" `Quick test_profile_invariants;
    Alcotest.test_case "chrome export: schema and monotone tracks" `Quick
      test_chrome_schema;
    Alcotest.test_case "chrome export: byte-identical across domains" `Quick
      test_export_jobs_identical;
  ]
