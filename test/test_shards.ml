(* Sharded (PDES) execution: the engine's one observable contract is
   byte-identity with the serial engine — same stdout, same virtual
   timestamps, same perf counters (wall time excepted) at any shard
   count — with [Shard_conflict] + [serial_fallback] as the escape
   hatch for interleavings the conservative windows cannot order.

   - a partitioned workload (per-node private lines) stays sharded and
     reproduces the serial run exactly, sequentially and on a real
     worker-domain crew;
   - cross-shard contention on one line aborts deterministically and
     [serial_fallback] recovers the serial result;
   - fig3 / fig9 / fig11 render byte-identical output with
     [default_shards = 4], with identical aggregated engine counters;
   - crash-stop fault schedules force one shard at creation, so faulty
     runs are trivially identical;
   - a traced run's Chrome export is byte-identical with sharding
     requested (tracing also forces one shard). *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_bench
module Trace = Ssync_trace.Trace
module Chrome = Ssync_trace.Chrome

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_shards n f =
  let saved = !Sim.default_shards in
  Sim.default_shards := n;
  Fun.protect ~finally:(fun () -> Sim.default_shards := saved) f

let with_domains b f =
  let saved = !Sim.shard_domains in
  Sim.shard_domains := b;
  Fun.protect ~finally:(fun () -> Sim.shard_domains := saved) f

(* Mask wall time and the speculation telemetry: both depend on the
   execution strategy (shard count, replay luck, adaptive policy), not
   on the simulated machine, so identity checks exclude them. *)
let no_wall p =
  {
    p with
    Sim.wall_ns = 0;
    windows = 0;
    speculative_replays = 0;
    promoted_lines = 0;
    serial_escalations = 0;
  }

(* ------------------- partitioned direct workload ------------------- *)

(* One thread per node, each hammering its own node-homed lines (plus
   local pauses): shards never interact, so the run must stay sharded
   end-to-end and still reproduce the serial schedule exactly. *)
let partitioned ?shards () =
  let p = Platform.get Arch.Opteron in
  let topo = p.Platform.topo in
  let sim = Sim.create ?shards p in
  let mem = Sim.memory sim in
  (* first core of each of the first 4 nodes *)
  let core_of_node = Array.make topo.Topology.n_nodes (-1) in
  for c = topo.Topology.n_cores - 1 downto 0 do
    core_of_node.(topo.Topology.node_of_core c) <- c
  done;
  let nodes = 4 in
  let lines =
    Array.init nodes (fun i -> Memory.alloc ~home_core:core_of_node.(i) mem)
  in
  let finals = Array.make nodes 0 in
  for i = 0 to nodes - 1 do
    let a = lines.(i) in
    Sim.spawn sim ~core:core_of_node.(i) (fun () ->
        for _ = 1 to 400 do
          let v = Sim.load a in
          Sim.store a (v + 1);
          ignore (Sim.fai a);
          Sim.pause (50 + (i * 13))
        done;
        finals.(i) <- Sim.load a)
  done;
  let final_t, health = Sim.run_health sim in
  (sim, final_t, health, Array.to_list finals, Sim.perf sim)

let test_partitioned_identical () =
  let _, t1, h1, f1, p1 = partitioned ~shards:1 () in
  let sim4, t4, h4, f4, p4 = partitioned ~shards:4 () in
  check_int "run actually sharded" 4 (Sim.shards_of sim4);
  check_int "final virtual time" t1 t4;
  check_bool "verdicts match" true (h1 = h4);
  check_bool "final line values match" true (f1 = f4);
  check_bool "perf counters match (minus wall)" true
    (no_wall p1 = no_wall p4)

let test_partitioned_identical_on_domains () =
  (* same workload, but force a real worker-domain crew even on a
     single-core host: results must not depend on who drains a shard *)
  let _, t1, h1, f1, p1 = partitioned ~shards:1 () in
  let sim4, t4, h4, f4, p4 =
    with_domains true (fun () -> partitioned ~shards:4 ())
  in
  check_int "run actually sharded" 4 (Sim.shards_of sim4);
  check_int "final virtual time" t1 t4;
  check_bool "verdicts match" true (h1 = h4);
  check_bool "final line values match" true (f1 = f4);
  check_bool "perf counters match (minus wall)" true
    (no_wall p1 = no_wall p4)

(* --------------------- conflict and fallback ----------------------- *)

(* Two threads on different nodes hammering one shared line: the
   window machinery cannot order this serially and must abort. *)
let contended ?shards () =
  let p = Platform.get Arch.Opteron in
  let topo = p.Platform.topo in
  let sim = Sim.create ?shards p in
  let mem = Sim.memory sim in
  let a = Memory.alloc ~home_core:0 mem in
  let far =
    let rec find c =
      if topo.Topology.node_of_core c <> topo.Topology.node_of_core 0 then c
      else find (c + 1)
    in
    find 1
  in
  List.iter
    (fun core ->
      Sim.spawn sim ~core (fun () ->
          for _ = 1 to 200 do
            ignore (Sim.fai a);
            Sim.pause 30
          done))
    [ 0; far ];
  let t, _ = Sim.run_health sim in
  (t, Memory.peek mem a, no_wall (Sim.perf sim))

let test_conflict_aborts_and_fallback_recovers () =
  let serial = contended ~shards:1 () in
  (match contended ~shards:4 () with
  | _ -> Alcotest.fail "expected Shard_conflict on cross-shard contention"
  | exception Sim.Shard_conflict -> ());
  let recovered = Sim.serial_fallback (fun () -> contended ~shards:4 ()) in
  check_bool "serial_fallback reproduces the serial run" true
    (serial = recovered)

(* ----------------- harness-level byte identity --------------------- *)

let capture_stdout f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let tmp = Filename.temp_file "ssync_shards" ".out" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  (match f () with
  | () -> restore ()
  | exception e ->
      restore ();
      Sys.remove tmp;
      raise e);
  let ic = open_in_bin tmp in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  s

(* Run a figure section start to finish (jobs then render) and return
   the rendered bytes plus the engine-counter delta of the jobs. *)
let run_section mk =
  let before = Sim.cumulative_perf () in
  let s = mk () in
  Array.iter (fun job -> job ()) s.Section.jobs;
  let perf = Sim.perf_diff (Sim.cumulative_perf ()) before in
  (capture_stdout (fun () -> s.Section.render ()), no_wall perf)

let check_section name mk =
  let out1, perf1 = run_section mk in
  (* [with_domains true]: the harness's host gate would otherwise keep
     sharding off on a single-core test runner *)
  let out4, perf4 =
    with_shards 4 (fun () -> with_domains true (fun () -> run_section mk))
  in
  check_bool (name ^ ": rendered something") true (String.length out1 > 100);
  check_string (name ^ ": stdout byte-identical with --shards 4") out1 out4;
  check_bool (name ^ ": engine counters identical (minus wall)") true
    (perf1 = perf4)

let test_fig3_identical () =
  check_section "fig3" (fun () -> Figures.fig3 ~duration:100_000 ())

let test_fig9_identical () = check_section "fig9" (fun () -> Figures.fig9 ())

let test_fig11_identical () =
  check_section "fig11" (fun () -> Figures_app.fig11 ~duration:20_000 ())

let test_false_sharing_identical () =
  (* packed lines are the workload most likely to straddle shards:
     line-granular stamps must keep the sharded run byte-identical *)
  check_section "false-sharing" (fun () ->
      Figures.false_sharing ~duration:20_000 ())

(* ----------------------- faults and tracing ------------------------ *)

let faulty_workload () =
  let p = Platform.get Arch.Xeon in
  Harness.run p ~threads:6 ~duration:120_000
    ~faults:(Fault.crash_stop ~seed:5 [ (1, 30_000); (3, 55_000) ])
    ~setup:(fun mem -> Memory.alloc ~home_core:0 mem)
    ~body:(fun a _mem ~tid ~deadline ->
      let n = ref 0 in
      while Sim.now () < deadline do
        ignore (Sim.fai a);
        Sim.pause (70 + (tid * 11));
        incr n
      done;
      !n)

let fingerprint (r : Harness.result) =
  ( Array.to_list r.Harness.ops,
    Array.to_list r.Harness.completed,
    r.Harness.total_ops,
    r.Harness.health,
    no_wall r.Harness.perf )

let test_crash_faults_force_serial () =
  let faults = Fault.crash_stop ~seed:5 [ (1, 30_000) ] in
  let sim =
    Sim.create ~faults ~shards:4 (Platform.get Arch.Xeon)
  in
  check_int "crash schedules force one shard" 1 (Sim.shards_of sim);
  let serial = fingerprint (faulty_workload ()) in
  let sharded =
    with_shards 4 (fun () ->
        with_domains true (fun () -> fingerprint (faulty_workload ())))
  in
  check_bool "faulty run identical with --shards 4" true (serial = sharded)

let traced_export () =
  let tr = Trace.start () in
  let run () =
    let p = Platform.get Arch.Opteron in
    ignore
      (Harness.run p ~threads:8 ~duration:100_000
         ~setup:(fun mem ->
           Ssync_simlocks.Simlock.create ~home_core:0 mem p ~n_threads:8
             Ssync_simlocks.Simlock.Ticket)
         ~body:(fun lock _mem ~tid ~deadline ->
           let n = ref 0 in
           while Sim.now () < deadline do
             lock.Ssync_simlocks.Lock_type.acquire ~tid;
             Sim.pause 60;
             lock.Ssync_simlocks.Lock_type.release ~tid;
             Sim.pause 100;
             incr n
           done;
           !n))
  in
  (match run () with
  | () -> ignore (Trace.stop ())
  | exception e ->
      ignore (Trace.stop ());
      raise e);
  Chrome.export_string [ ("job/0", tr) ]

let test_traced_export_identical () =
  let serial = traced_export () in
  let sharded =
    with_shards 4 (fun () -> with_domains true (fun () -> traced_export ()))
  in
  check_bool "export non-trivial" true (String.length serial > 1_000);
  check_string "chrome export byte-identical with --shards 4" serial sharded

(* ------------------------- window fusing --------------------------- *)

let with_fusing b f =
  let saved = !Sim.window_fusing in
  Sim.window_fusing := b;
  Fun.protect ~finally:(fun () -> Sim.window_fusing := saved) f

(* A two-phase partitioned workload: run to completion, spawn a second
   wave of threads on the same lines, run again.  The second
   [run_health] is where fusing applies — it reuses the first call's
   stamps and residency instead of re-deriving them. *)
let two_phase ?shards () =
  let p = Platform.get Arch.Opteron in
  let topo = p.Platform.topo in
  let sim = Sim.create ?shards p in
  let mem = Sim.memory sim in
  let core_of_node = Array.make topo.Topology.n_nodes (-1) in
  for c = topo.Topology.n_cores - 1 downto 0 do
    core_of_node.(topo.Topology.node_of_core c) <- c
  done;
  let nodes = 4 in
  let lines =
    Array.init nodes (fun i -> Memory.alloc ~home_core:core_of_node.(i) mem)
  in
  let finals = Array.make nodes 0 in
  let wave iters =
    for i = 0 to nodes - 1 do
      let a = lines.(i) in
      Sim.spawn sim ~core:core_of_node.(i) (fun () ->
          for _ = 1 to iters do
            let v = Sim.load a in
            Sim.store a (v + 1);
            ignore (Sim.fai a);
            Sim.pause (40 + (i * 17))
          done;
          finals.(i) <- Sim.load a)
    done
  in
  wave 150;
  let t1, h1 = Sim.run_health sim in
  wave 100;
  let t2, h2 = Sim.run_health sim in
  ((t1, h1, t2, h2), Array.to_list finals, no_wall (Sim.perf sim))

let test_window_fusing_identical () =
  let serial = two_phase ~shards:1 () in
  let fused = with_fusing true (fun () -> two_phase ~shards:4 ()) in
  let unfused = with_fusing false (fun () -> two_phase ~shards:4 ()) in
  check_bool "fused == per-call windowing" true (fused = unfused);
  check_bool "fused == serial" true (fused = serial)

let test_window_fusing_harness_identical () =
  (* harness level, fault-free and under (parkable) jitter faults: the
     A/B must not change a single fingerprint bit *)
  let go ~faults () =
    let p = Platform.get Arch.Xeon in
    fingerprint
      (Harness.run p ~threads:6 ~duration:100_000 ~faults
         ~setup:(fun mem -> Memory.alloc ~home_core:0 mem)
         ~body:(fun a _mem ~tid ~deadline ->
           let n = ref 0 in
           while Sim.now () < deadline do
             ignore (Sim.fai a);
             Sim.pause (70 + (tid * 11));
             incr n
           done;
           !n))
  in
  List.iter
    (fun faults ->
      let serial = go ~faults () in
      let fused =
        with_shards 4 (fun () ->
            with_domains true (fun () ->
                with_fusing true (fun () -> go ~faults ())))
      in
      let unfused =
        with_shards 4 (fun () ->
            with_domains true (fun () ->
                with_fusing false (fun () -> go ~faults ())))
      in
      check_bool "harness fused == unfused" true (fused = unfused);
      check_bool "harness fused == serial" true (fused = serial))
    [ Fault.none; Fault.jitter ~seed:11 0.2 ]

let suite =
  [
    Alcotest.test_case "partitioned workload: sharded == serial" `Quick
      test_partitioned_identical;
    Alcotest.test_case "partitioned workload: domain crew == serial" `Quick
      test_partitioned_identical_on_domains;
    Alcotest.test_case "contention aborts; serial_fallback recovers" `Quick
      test_conflict_aborts_and_fallback_recovers;
    Alcotest.test_case "fig3 byte-identical with --shards 4" `Quick
      test_fig3_identical;
    Alcotest.test_case "fig9 byte-identical with --shards 4" `Quick
      test_fig9_identical;
    Alcotest.test_case "fig11 (quick) byte-identical with --shards 4" `Quick
      test_fig11_identical;
    Alcotest.test_case "false-sharing byte-identical with --shards 4" `Quick
      test_false_sharing_identical;
    Alcotest.test_case "window fusing: two-phase run identical" `Quick
      test_window_fusing_identical;
    Alcotest.test_case "window fusing: harness A/B identical" `Quick
      test_window_fusing_harness_identical;
    Alcotest.test_case "crash-stop faults force serial" `Quick
      test_crash_faults_force_serial;
    Alcotest.test_case "traced chrome export byte-identical" `Quick
      test_traced_export_identical;
  ]
