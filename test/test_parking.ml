(* Tests of the event-driven waiter machinery added around the poll
   loops: the Coreset bitset backing sharer sets, the allocation-free
   event-queue pop, and — the main property — that parking spinners on
   lines and waking them event-driven reproduces, timestamp for
   timestamp, the results of literally polling. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_simlocks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --------------------------- Coreset ----------------------------- *)
(* qcheck equivalence with a reference implementation (sorted int
   lists): any sequence of add/remove over the supported core range
   leaves both structures observably identical. *)

let qcheck_coreset_vs_list =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 200)
        (pair bool (int_range 0 (Coreset.capacity - 1))))
  in
  QCheck.Test.make ~count:300 ~name:"coreset = reference sorted list"
    (QCheck.make gen) (fun ops ->
      let s = Coreset.create () in
      let reference = ref [] in
      List.iter
        (fun (add, c) ->
          if add then begin
            Coreset.add s c;
            if not (List.mem c !reference) then
              reference := List.sort compare (c :: !reference)
          end
          else begin
            Coreset.remove s c;
            reference := List.filter (fun x -> x <> c) !reference
          end)
        ops;
      let r = !reference in
      Coreset.elements s = r
      && Coreset.cardinal s = List.length r
      && Coreset.is_empty s = (r = [])
      && List.for_all (fun c -> Coreset.mem s c) r
      && Coreset.mem s (Coreset.capacity - 1)
         = List.mem (Coreset.capacity - 1) r
      && Coreset.fold (fun c acc -> acc + c) s 0 = List.fold_left ( + ) 0 r
      && (r = [] || Coreset.exists (fun c -> c = List.hd r) s))

let test_coreset_iter_ascending () =
  let s = Coreset.of_list [ 70; 3; 0; 65; 12; 63 ] in
  let seen = ref [] in
  Coreset.iter (fun c -> seen := c :: !seen) s;
  Alcotest.(check (list int)) "ascending" [ 0; 3; 12; 63; 65; 70 ]
    (List.rev !seen);
  let c = Coreset.copy s in
  Coreset.remove c 12;
  check_bool "copy is independent" true (Coreset.mem s 12);
  check_bool "equal detects the change" false (Coreset.equal s c)

(* -------------------------- Event_queue -------------------------- *)
(* qcheck: driving the heap through [pop_into] yields exactly the
   sorted-by-(time, insertion order) sequence of what was pushed,
   interleaving pushes and pops arbitrarily. *)

let qcheck_event_queue_heap_property =
  let gen =
    (* positive int = push at that time; negative = pop one *)
    QCheck.Gen.(list_size (int_range 0 300) (int_range (-1) 50))
  in
  QCheck.Test.make ~count:300 ~name:"pop_into drains in (time, seq) order"
    (QCheck.make gen) (fun script ->
      let q = Event_queue.create () in
      let p = Event_queue.make_popped () in
      let next_id = ref 0 in
      (* reference model: list of (time, id) sorted by (time, id) —
         insertion ids are assigned in push order, so (time, id) order
         is exactly the heap's (time, seq) contract *)
      let model = ref [] in
      let popped = ref [] in
      let pop_one () =
        match !model with
        | [] -> not (Event_queue.pop_into q p)
        | (mt, mid) :: rest ->
            Event_queue.pop_into q p
            && begin
                 p.Event_queue.p_run ();
                 model := rest;
                 p.Event_queue.p_time = mt
                 && (match !popped with id :: _ -> id = mid | [] -> false)
               end
      in
      let push time =
        let id = !next_id in
        incr next_id;
        Event_queue.push q ~time (fun () -> popped := id :: !popped);
        model :=
          List.merge
            (fun (t1, s1) (t2, s2) -> compare (t1, s1) (t2, s2))
            !model
            [ (time, id) ]
      in
      let ok =
        List.for_all
          (fun cmd ->
            if cmd < 0 then pop_one ()
            else begin
              push cmd;
              true
            end)
          script
      in
      (* drain the rest, still checking the model each step *)
      let rec drain () = !model = [] || (pop_one () && drain ()) in
      ok && drain ()
      && (not (Event_queue.pop_into q p))
      && Event_queue.length q = 0
      && List.length !popped = !next_id)

let test_pop_into_matches_pop () =
  let mk () =
    let q = Event_queue.create () in
    List.iter
      (fun t -> Event_queue.push q ~time:t (fun () -> ()))
      [ 9; 1; 5; 1; 7; 0; 5 ];
    q
  in
  let q1 = mk () and q2 = mk () in
  let p = Event_queue.make_popped () in
  let rec cmp () =
    match Event_queue.pop q1 with
    | None -> check_bool "both empty" false (Event_queue.pop_into q2 p)
    | Some e ->
        check_bool "pop_into has one too" true (Event_queue.pop_into q2 p);
        check_int "same time" e.Event_queue.time p.Event_queue.p_time;
        cmp ()
  in
  cmp ()

(* ------------------- parking = polling, exactly ------------------ *)
(* The heart of the tentpole: for every lock algorithm under heavy
   contention, a fixed-duration throughput run must produce the same
   per-thread operation counts whether spinners are parked event-driven
   or literally poll.  (Per-thread counts are a complete fingerprint of
   the simulated schedule for these closed-loop bodies.) *)

let lock_fingerprint ~parking p algo ~threads ~duration =
  let r =
    Harness.run ~parking p ~threads ~duration
      ~setup:(fun mem -> Simlock.create mem p ~n_threads:threads algo)
      ~body:(fun lock _mem ~tid ~deadline ->
        let ops = ref 0 in
        while Sim.now () < deadline do
          lock.Lock_type.acquire ~tid;
          Sim.pause 120;
          (* critical section *)
          lock.Lock_type.release ~tid;
          Sim.pause 40;
          (* think time *)
          incr ops
        done;
        !ops)
  in
  (Array.to_list r.Harness.ops, r.Harness.total_ops)

(* Known intentional exception: Niagara/TTAS resolves some
   same-timestamp races in a different event order when parked — the
   replayed probe is enqueued by the waking access, so it sorts after
   unrelated events at the same virtual time that a pre-scheduled poll
   probe would have preceded (the spin grid, hit 3 + poll 4, collides
   with the backoff timestamps).  The aggregate schedule is preserved —
   total throughput must still match exactly — but TTAS's unfairness
   shuffles which thread wins the tied races.  See DESIGN.md,
   "Simulator performance". *)
let tie_shuffled = [ (Arch.Niagara, Simlock.Ttas) ]

let test_parking_matches_polling () =
  List.iter
    (fun (pid, threads) ->
      let p = Platform.get pid in
      List.iter
        (fun algo ->
          let fp b = lock_fingerprint ~parking:b p algo ~threads
              ~duration:40_000
          in
          let parked = fp true and polled = fp false in
          let label =
            Printf.sprintf "%s/%s parked = polled" (Arch.platform_name pid)
              (Simlock.name algo)
          in
          if List.mem (pid, algo) tie_shuffled then
            check_int (label ^ " (total ops)") (snd polled) (snd parked)
          else
            Alcotest.(check (pair (list int) int)) label polled parked)
        (Simlock.algos_for p))
    [ (Arch.Opteron, 12); (Arch.Niagara, 16); (Arch.Xeon, 16);
      (Arch.Tilera, 16) ]

(* Same property through the message-passing layer: a ping-pong over a
   coherence channel (Xeon) and the hardware mesh (Tilera). *)
let mp_fingerprint ~parking pid ~prefetchw =
  let p = Platform.get pid in
  Sim.parking_default := parking;
  Fun.protect ~finally:(fun () -> Sim.parking_default := true) @@ fun () ->
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let ping =
    Ssync_simmp.Channel.create ~prefetchw mem p ~sender_core:0
      ~receiver_core:(Platform.place p 1)
  in
  let pong =
    Ssync_simmp.Channel.create ~prefetchw mem p
      ~sender_core:(Platform.place p 1) ~receiver_core:0
  in
  let rounds = 200 in
  let finish = ref (0, 0) in
  Sim.spawn sim ~core:0 (fun () ->
      for i = 1 to rounds do
        Ssync_simmp.Channel.send ping i;
        ignore (Ssync_simmp.Channel.recv pong)
      done;
      finish := (fst !finish, Sim.now ()));
  Sim.spawn sim ~core:(Platform.place p 1) (fun () ->
      for _ = 1 to rounds do
        let v = Ssync_simmp.Channel.recv ping in
        Ssync_simmp.Channel.send pong v
      done;
      finish := (Sim.now (), snd !finish));
  ignore (Sim.run sim);
  !finish

let test_parking_matches_polling_mp () =
  List.iter
    (fun (pid, prefetchw) ->
      let parked = mp_fingerprint ~parking:true pid ~prefetchw in
      let polled = mp_fingerprint ~parking:false pid ~prefetchw in
      Alcotest.(check (pair int int))
        (Printf.sprintf "%s%s ping-pong parked = polled"
           (Arch.platform_name pid)
           (if prefetchw then "/prefetchw" else ""))
        polled parked)
    [ (Arch.Xeon, false); (Arch.Opteron, true); (Arch.Tilera, false) ]

(* --------------------- counters and liveness --------------------- *)

let test_parking_collapses_events () =
  let p = Platform.opteron in
  let events ~parking =
    let r =
      Harness.run ~parking p ~threads:12 ~duration:40_000
        ~setup:(fun mem -> Simlock.create mem p ~n_threads:12 Simlock.Mcs)
        ~body:(fun lock _mem ~tid ~deadline ->
          let ops = ref 0 in
          while Sim.now () < deadline do
            lock.Lock_type.acquire ~tid;
            Sim.pause 500;
            lock.Lock_type.release ~tid;
            incr ops
          done;
          !ops)
    in
    r.Harness.perf
  in
  let parked = events ~parking:true and polled = events ~parking:false in
  check_bool "spinners parked" true (parked.Sim.parks > 0);
  check_bool "parked spinners woke" true
    (parked.Sim.wakeups > 0 && parked.Sim.wakeups <= parked.Sim.parks);
  check_bool "probes were elided" true (parked.Sim.elided_probes > 0);
  check_bool
    (Printf.sprintf "fewer events when parking (%d < %d)" parked.Sim.events
       polled.Sim.events)
    true
    (parked.Sim.events * 2 < polled.Sim.events);
  check_int "polling parks nothing" 0 polled.Sim.parks

(* A spinner whose wakeup can never come must not hang the run: the
   queue drains and the watchdog names it, with nothing dropped. *)
let test_parked_deadlock_drains () =
  let p = Platform.xeon in
  let sim = Sim.create ~parking:true p in
  let mem = Sim.memory sim in
  let flag = Memory.alloc mem in
  Sim.spawn sim ~core:0 (fun () ->
      ignore (Sim.spin_load flag ~while_:0 ~poll:25));
  let _, h = Sim.run_health sim ~until:1_000_000 in
  (match h.Sim.verdict with
  | Sim.Stalled { tid; _ } -> check_int "culprit tid" 0 tid
  | Sim.Completed -> Alcotest.fail "deadlocked run reported Completed");
  check_int "queue drained, nothing dropped" 0 h.Sim.dropped_events;
  check_int "the parked waiter is on the line" 1 (Memory.waiter_count mem flag)

(* Under fault injection the spin primitives fall back to literal
   stepping: same seed, same results, and nothing parks. *)
let test_faults_force_polling_fallback () =
  let p = Platform.opteron in
  let faults = Fault.preemption ~seed:7 ~cycles:(100, 2_000) 0.02 in
  let run () =
    let r =
      Harness.run ~faults ~parking:true p ~threads:8 ~duration:30_000
        ~setup:(fun mem -> Simlock.create mem p ~n_threads:8 Simlock.Ttas)
        ~body:(fun lock _mem ~tid ~deadline ->
          let ops = ref 0 in
          while Sim.now () < deadline do
            lock.Lock_type.acquire ~tid;
            Sim.pause 100;
            lock.Lock_type.release ~tid;
            incr ops
          done;
          !ops)
    in
    (Array.to_list r.Harness.ops, r.Harness.perf.Sim.parks)
  in
  let ops1, parks1 = run () in
  let ops2, parks2 = run () in
  Alcotest.(check (list int)) "same seed, same schedule" ops1 ops2;
  check_int "faults disable parking" 0 parks1;
  check_int "faults disable parking (2nd run)" 0 parks2

(* Latency jitter alone must NOT disable parking: jitter draws are
   charged per real (non-inert) memory op, parking elides only inert
   probes, so the parked and polled schedules — including every jitter
   draw — stay identical, and spinners still park. *)
let test_jitter_only_keeps_parking () =
  let p = Platform.opteron in
  let faults = Fault.jitter ~seed:11 ~cycles:(50, 400) 0.05 in
  let run ~parking =
    let r =
      Harness.run ~faults ~parking p ~threads:12 ~duration:40_000
        ~setup:(fun mem -> Simlock.create mem p ~n_threads:12 Simlock.Mcs)
        ~body:(fun lock _mem ~tid ~deadline ->
          let ops = ref 0 in
          while Sim.now () < deadline do
            lock.Lock_type.acquire ~tid;
            Sim.pause 120;
            lock.Lock_type.release ~tid;
            Sim.pause 40;
            incr ops
          done;
          !ops)
    in
    (Array.to_list r.Harness.ops, r.Harness.perf, r.Harness.health)
  in
  let ops_parked, perf_parked, health_parked = run ~parking:true in
  let ops_polled, perf_polled, health_polled = run ~parking:false in
  Alcotest.(check (list int)) "jitter-only: parked = polled" ops_polled
    ops_parked;
  check_bool "jitter fired" true (health_parked.Sim.jitter_events > 0);
  check_int "same jitter draws parked vs polled"
    health_polled.Sim.jitter_events health_parked.Sim.jitter_events;
  check_bool "spinners parked under jitter" true (perf_parked.Sim.parks > 0);
  check_int "polling still parks nothing" 0 perf_polled.Sim.parks

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_coreset_vs_list;
    Alcotest.test_case "coreset iteration and copy" `Quick
      test_coreset_iter_ascending;
    QCheck_alcotest.to_alcotest qcheck_event_queue_heap_property;
    Alcotest.test_case "pop_into agrees with pop" `Quick
      test_pop_into_matches_pop;
    Alcotest.test_case "locks: parked = polled (all algos)" `Slow
      test_parking_matches_polling;
    Alcotest.test_case "channels: parked = polled" `Quick
      test_parking_matches_polling_mp;
    Alcotest.test_case "parking collapses events" `Quick
      test_parking_collapses_events;
    Alcotest.test_case "parked deadlock drains the queue" `Quick
      test_parked_deadlock_drains;
    Alcotest.test_case "faults fall back to literal polling" `Quick
      test_faults_force_polling_fallback;
    Alcotest.test_case "jitter-only keeps parking exact" `Quick
      test_jitter_only_keeps_parking;
  ]
