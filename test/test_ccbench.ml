(* Tests of the microbenchmark layer: ccbench reproduces Table 2 through
   real protocol transitions, and the atomic/lock benches reproduce the
   paper's qualitative shapes. *)

open Ssync_platform
open Ssync_ccbench

let check_bool = Alcotest.(check bool)

(* ccbench's measured Table 2 must match the paper within tolerance for
   every reported cell (this exercises force_state + access, unlike the
   cost-model unit test). *)
let test_ccbench_table2 () =
  List.iter
    (fun pid ->
      let cells = Ccbench.table2 pid in
      check_bool
        (Printf.sprintf "%s has cells" (Arch.platform_name pid))
        true
        (List.length cells > 15);
      List.iter
        (fun (c : Ccbench.cell) ->
          match c.Ccbench.paper with
          | None -> ()
          | Some expected ->
              let actual = c.Ccbench.measured in
              let ok =
                Float.abs (float_of_int (actual - expected))
                <= Float.max 4. (0.15 *. float_of_int expected)
              in
              if not ok then
                Alcotest.failf "%s %s on %s at %s: paper %d, ccbench %d"
                  (Arch.platform_name pid)
                  (Arch.memop_name c.Ccbench.op)
                  (Arch.cstate_name c.Ccbench.state)
                  (Arch.distance_name c.Ccbench.distance)
                  expected actual)
        cells)
    Arch.paper_platform_ids

let test_opteron_worst_case_directory () =
  let lat = Ccbench.opteron_remote_directory_load () in
  (* section 5.2: ~312 cycles when both cores are 2 hops from the
     directory *)
  check_bool (Printf.sprintf "remote-directory load %d ~ 312" lat) true
    (lat >= 280 && lat <= 340)

let test_figure4_multi_socket_collapse () =
  (* Multi-sockets: fast single-thread, collapse at 2+, further drop
     across sockets.  Single-sockets: slower single-thread, plateau. *)
  let fai pid threads =
    (Atomic_bench.throughput ~duration:200_000 pid Atomic_bench.Op_fai
       ~threads)
      .Ssync_engine.Harness.mops
  in
  let o1 = fai Arch.Opteron 1 in
  let o6 = fai Arch.Opteron 6 in
  let o12 = fai Arch.Opteron 12 in
  check_bool
    (Printf.sprintf "Opteron collapse: 1t %.1f >> 6t %.1f" o1 o6)
    true
    (o1 > 3. *. o6);
  check_bool
    (Printf.sprintf "Opteron cross-die drop: 6t %.1f >= 12t %.1f" o6 o12)
    true
    (o6 >= o12 *. 0.9);
  let tas pid threads =
    (Atomic_bench.throughput ~duration:200_000 pid Atomic_bench.Op_tas
       ~threads)
      .Ssync_engine.Harness.mops
  in
  let n1 = tas Arch.Niagara 1 in
  let n16 = tas Arch.Niagara 16 in
  let n32 = tas Arch.Niagara 32 in
  check_bool
    (Printf.sprintf "Niagara rises: 1t %.1f < 16t %.1f" n1 n16)
    true (n16 > n1);
  check_bool
    (Printf.sprintf "Niagara plateau: 16t %.1f ~ 32t %.1f" n16 n32)
    true
    (n32 > 0.6 *. n16);
  (* section 5.4: the hardware TAS is the efficient Niagara atomic; the
     CAS-based FAI is much slower under contention *)
  let nfai = fai Arch.Niagara 16 in
  check_bool
    (Printf.sprintf "Niagara TAS (%.1f) > CAS-based FAI (%.1f)" n16 nfai)
    true (n16 > nfai)

(* F4: a CAS that loses keeps its request posted at the line and wins
   the next grant (pending-request arbitration), so its retry is not
   doomed by an expected value one full transfer stale.  The bands lock
   in the arbitration's moderate-contention throughput and the paper's
   extreme-contention collapse shape. *)
let test_figure4_niagara_cas_fai_band () =
  let fai threads =
    (Atomic_bench.throughput ~duration:300_000 Arch.Niagara
       Atomic_bench.Op_cas_fai ~threads)
      .Ssync_engine.Harness.mops
  in
  let t8 = fai 8 and t16 = fai 16 and t64 = fai 64 in
  check_bool
    (Printf.sprintf "8t holds with arbitration (%.2f >= 4.5)" t8)
    true (t8 >= 4.5);
  check_bool
    (Printf.sprintf "16t holds with arbitration (%.2f >= 2.2)" t16)
    true (t16 >= 2.2);
  check_bool
    (Printf.sprintf "64t degrades no harder than the paper (%.2f >= 0.45)" t64)
    true (t64 >= 0.45);
  check_bool
    (Printf.sprintf "extreme contention still collapses (%.2f < %.2f / 4)" t64
       t8)
    true
    (t64 < t8 /. 4.)

let test_figure4_single_thread_fast_on_x86 () =
  let fai pid =
    (Atomic_bench.throughput ~duration:200_000 pid Atomic_bench.Op_fai
       ~threads:1)
      .Ssync_engine.Harness.mops
  in
  let x = fai Arch.Xeon and n = fai Arch.Niagara in
  check_bool
    (Printf.sprintf "Xeon 1t (%.1f) >> Niagara 1t (%.1f)" x n)
    true
    (x > 3. *. n)

let test_figure6_distance_monotonic () =
  (* Uncontested acquisition gets dearer as the previous holder moves
     away, dramatically so on the multi-sockets (up to ~12.5x). *)
  List.iter
    (fun algo ->
      let lat d =
        Option.get (Lock_bench.uncontested_latency Arch.Opteron algo d)
      in
      let near = lat Arch.Same_die and far = lat Arch.Two_hops in
      check_bool
        (Printf.sprintf "%s: far (%.0f) > near (%.0f)"
           (Ssync_simlocks.Simlock.name algo) far near)
        true (far > near))
    [ Ssync_simlocks.Simlock.Tas; Ssync_simlocks.Simlock.Ticket;
      Ssync_simlocks.Simlock.Mcs ]

let test_figure6_single_socket_flat () =
  (* Niagara suffers no degradation as the previous holder moves. *)
  let lat d =
    Option.get
      (Lock_bench.uncontested_latency Arch.Niagara Ssync_simlocks.Simlock.Ticket d)
  in
  let same = lat Arch.Same_core and other = lat Arch.Same_die in
  check_bool
    (Printf.sprintf "niagara flat-ish (%.0f vs %.0f)" same other)
    true
    (other < 2.5 *. Float.max same 1.)

let test_figure5_queue_locks_win_extreme () =
  (* Extreme contention on Opteron: CLH/MCS sustain more than TAS. *)
  let tput algo =
    (Lock_bench.throughput ~duration:300_000 Arch.Opteron algo ~threads:18
       ~n_locks:1)
      .Ssync_engine.Harness.mops
  in
  let clh = tput Ssync_simlocks.Simlock.Clh in
  let tas = tput Ssync_simlocks.Simlock.Tas in
  check_bool
    (Printf.sprintf "CLH (%.2f) >= TAS (%.2f) under extreme contention" clh
       tas)
    true (clh >= tas)

let test_figure7_simple_locks_win_low_contention () =
  (* 512 locks: the ticket lock matches or beats the queue locks. *)
  let tput algo =
    (Lock_bench.throughput ~duration:300_000 Arch.Opteron algo ~threads:18
       ~n_locks:512)
      .Ssync_engine.Harness.mops
  in
  let ticket = tput Ssync_simlocks.Simlock.Ticket in
  let mcs = tput Ssync_simlocks.Simlock.Mcs in
  check_bool
    (Printf.sprintf "TICKET (%.2f) >= 0.9 * MCS (%.2f) at 512 locks" ticket
       mcs)
    true
    (ticket >= 0.9 *. mcs)

let test_best_of_returns_positive () =
  let b = Lock_bench.best_of ~duration:150_000 Arch.Xeon ~threads:10 ~n_locks:16 in
  check_bool "positive throughput" true (b.Lock_bench.mops > 0.);
  check_bool "positive scalability" true (b.Lock_bench.scalability > 0.)

let test_client_server_positive () =
  let t =
    Mp_bench.client_server ~duration:150_000 Arch.Tilera Mp_bench.Round_trip
      ~clients:8
  in
  check_bool (Printf.sprintf "tilera cs throughput %.2f > 0" t) true (t > 0.)

let suite =
  [
    Alcotest.test_case "ccbench reproduces Table 2" `Quick test_ccbench_table2;
    Alcotest.test_case "Opteron worst-case directory (section 5.2)" `Quick
      test_opteron_worst_case_directory;
    Alcotest.test_case "Figure 4 shapes" `Slow test_figure4_multi_socket_collapse;
    Alcotest.test_case "Figure 4: Niagara CAS-FAI arbitration band" `Slow
      test_figure4_niagara_cas_fai_band;
    Alcotest.test_case "Figure 4: x86 single-thread fast" `Slow
      test_figure4_single_thread_fast_on_x86;
    Alcotest.test_case "Figure 6: distance monotonic on Opteron" `Quick
      test_figure6_distance_monotonic;
    Alcotest.test_case "Figure 6: Niagara flat" `Quick
      test_figure6_single_socket_flat;
    Alcotest.test_case "Figure 5: queue locks win extreme contention" `Slow
      test_figure5_queue_locks_win_extreme;
    Alcotest.test_case "Figure 7: simple locks win low contention" `Slow
      test_figure7_simple_locks_win_low_contention;
    Alcotest.test_case "best_of sane" `Slow test_best_of_returns_positive;
    Alcotest.test_case "client-server throughput positive" `Quick
      test_client_server_positive;
  ]
