(* Tests of the discrete-event engine: virtual time, effects-based
   threads, barriers, determinism and the throughput harness. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_event_queue_order () =
  let q = Event_queue.create () in
  let order = ref [] in
  Event_queue.push q ~time:30 (fun () -> order := 30 :: !order);
  Event_queue.push q ~time:10 (fun () -> order := 10 :: !order);
  Event_queue.push q ~time:20 (fun () -> order := 20 :: !order);
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some e ->
        e.Event_queue.run ();
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "time order" [ 30; 20; 10 ] !order

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  let order = ref [] in
  for i = 0 to 9 do
    Event_queue.push q ~time:5 (fun () -> order := i :: !order)
  done;
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some e ->
        e.Event_queue.run ();
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo on ties" [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ]
    !order

let test_time_advances_with_ops () =
  let sim = Sim.create Platform.opteron in
  let a = Memory.alloc (Sim.memory sim) in
  let seen = ref (-1) in
  Sim.spawn sim ~core:0 (fun () ->
      Sim.store a 42;
      ignore (Sim.load a);
      seen := Sim.now ());
  let final = Sim.run sim in
  check_bool "ops consumed cycles" true (!seen > 0);
  check_int "run returns final time" final !seen

let test_pause () =
  let sim = Sim.create Platform.niagara in
  let t_after = ref 0 in
  Sim.spawn sim ~core:0 (fun () ->
      Sim.pause 500;
      t_after := Sim.now ());
  ignore (Sim.run sim);
  check_int "pause advances virtual time" 500 !t_after

let test_two_threads_communicate () =
  let sim = Sim.create Platform.xeon in
  let mem = Sim.memory sim in
  let flag = Memory.alloc mem in
  let data = Memory.alloc mem in
  let got = ref 0 in
  Sim.spawn sim ~core:0 (fun () ->
      Sim.store data 1234;
      Sim.store flag 1);
  Sim.spawn sim ~core:10 (fun () ->
      while Sim.load flag = 0 do
        Sim.pause 50
      done;
      got := Sim.load data);
  ignore (Sim.run sim ~until:1_000_000);
  check_int "message received" 1234 !got

let test_barrier_synchronizes () =
  let sim = Sim.create Platform.tilera in
  let b = Sim.make_barrier 3 in
  let times = Array.make 3 0 in
  List.iteri
    (fun i delay ->
      Sim.spawn sim ~core:i (fun () ->
          Sim.pause delay;
          Sim.await b;
          times.(i) <- Sim.now ()))
    [ 10; 200; 3000 ];
  ignore (Sim.run sim);
  check_int "all leave at the latest arrival" times.(0) times.(1);
  check_int "all leave at the latest arrival'" times.(1) times.(2);
  check_bool "left after slowest" true (times.(0) >= 3000)

let test_determinism () =
  let run_once () =
    let sim = Sim.create Platform.opteron in
    let mem = Sim.memory sim in
    let a = Memory.alloc mem in
    let acc = ref 0 in
    for tid = 0 to 7 do
      Sim.spawn sim ~core:(tid * 3) (fun () ->
          for _ = 1 to 20 do
            ignore (Sim.fai a);
            Sim.pause 30
          done;
          acc := !acc + Sim.now ())
    done;
    let t = Sim.run sim in
    (t, !acc, Memory.peek mem a)
  in
  let r1 = run_once () and r2 = run_once () in
  check_bool "identical runs" true (r1 = r2)

let test_fai_is_atomic_under_concurrency () =
  let sim = Sim.create Platform.xeon in
  let mem = Sim.memory sim in
  let a = Memory.alloc mem in
  let per_thread = 50 and threads = 16 in
  for tid = 0 to threads - 1 do
    Sim.spawn sim ~core:tid (fun () ->
        for _ = 1 to per_thread do
          ignore (Sim.fai a)
        done)
  done;
  ignore (Sim.run sim);
  check_int "all increments counted" (per_thread * threads) (Memory.peek mem a)

let test_runaway_protection () =
  let sim = Sim.create Platform.opteron in
  Sim.spawn sim ~core:0 (fun () ->
      while true do
        Sim.pause 10
      done);
  (* [until] bound stops a spinning thread *)
  let t = Sim.run sim ~until:5_000 in
  check_bool "bounded by until" true (t <= 5_100)

let test_harness_counts_ops () =
  let r =
    Harness.run Platform.opteron ~threads:4 ~duration:50_000
      ~setup:(fun mem -> Memory.alloc mem)
      ~body:(fun a _mem ~tid:_ ~deadline ->
        let n = ref 0 in
        while Sim.now () < deadline do
          ignore (Sim.fai a);
          Sim.pause 100;
          incr n
        done;
        !n)
  in
  check_int "threads" 4 (Array.length r.Harness.ops);
  check_bool "some ops on each thread" true
    (Array.for_all (fun n -> n > 10) r.Harness.ops);
  check_bool "mops positive" true (r.Harness.mops > 0.)

let test_harness_rejects_bad_args () =
  let fails f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "zero threads" true
    (fails (fun () ->
         Harness.run Platform.opteron ~threads:0 ~duration:100
           ~setup:(fun _ -> ())
           ~body:(fun () _ ~tid:_ ~deadline:_ -> 0)));
  check_bool "too many threads" true
    (fails (fun () ->
         Harness.run Platform.tilera ~threads:37 ~duration:100
           ~setup:(fun _ -> ())
           ~body:(fun () _ ~tid:_ ~deadline:_ -> 0)))

(* ------------------------------------------------------------------ *)
(* Fault injection and the progress watchdog. *)

(* A deterministic contended workload for the fault tests. *)
let fault_workload ?faults ~threads ~duration () =
  Harness.run ?faults Platform.xeon ~threads ~duration
    ~setup:(fun mem -> Memory.alloc mem)
    ~body:(fun a _mem ~tid ~deadline ->
      let n = ref 0 in
      while Sim.now () < deadline do
        ignore (Sim.fai a);
        Sim.pause (60 + (tid * 7));
        incr n
      done;
      !n)

let result_fingerprint (r : Harness.result) =
  (Array.to_list r.Harness.ops,
   Array.to_list r.Harness.completed,
   r.Harness.total_ops,
   r.Harness.health)

let test_fault_seed_determinism () =
  let faults =
    {
      Fault.none with
      Fault.seed = 7;
      preempt_prob = 0.01;
      preempt_cycles = (1_000, 8_000);
      jitter_prob = 0.2;
      jitter_cycles = (10, 200);
    }
  in
  let r1 = fault_workload ~faults ~threads:8 ~duration:80_000 () in
  let r2 = fault_workload ~faults ~threads:8 ~duration:80_000 () in
  check_bool "same fault seed, identical results" true
    (result_fingerprint r1 = result_fingerprint r2);
  check_bool "faults were actually injected" true
    (r1.Harness.health.Sim.preemptions > 0
    && r1.Harness.health.Sim.jitter_events > 0)

let test_faults_slow_the_run () =
  let faults =
    { (Fault.preemption ~seed:3 ~cycles:(2_000, 10_000) 0.02) with
      Fault.jitter_prob = 0.3; jitter_cycles = (50, 400) }
  in
  let clean = fault_workload ~threads:8 ~duration:80_000 () in
  let faulty = fault_workload ~faults ~threads:8 ~duration:80_000 () in
  check_bool
    (Printf.sprintf "preemption+jitter cost throughput (%d -> %d ops)"
       clean.Harness.total_ops faulty.Harness.total_ops)
    true
    (faulty.Harness.total_ops < clean.Harness.total_ops)

let test_faults_disabled_is_noop () =
  (* [Fault.none] must consume no draws and perturb nothing: the layer
     is strictly opt-in. *)
  let implicit = fault_workload ~threads:6 ~duration:60_000 () in
  let explicit =
    fault_workload ~faults:Fault.none ~threads:6 ~duration:60_000 ()
  in
  check_bool "Fault.none is the default" true
    (result_fingerprint implicit = result_fingerprint explicit);
  check_bool "clean run reports Completed" true
    (implicit.Harness.health.Sim.verdict = Sim.Completed);
  check_bool "clean run injected nothing" true
    (implicit.Harness.health.Sim.preemptions = 0
    && implicit.Harness.health.Sim.jitter_events = 0
    && implicit.Harness.health.Sim.crashed = []);
  check_bool "all threads completed" true (Harness.completed_all implicit)

let test_runaway_exception () =
  let sim = Sim.create Platform.opteron in
  Sim.spawn sim ~core:0 (fun () ->
      while true do
        Sim.pause 10
      done);
  let raised =
    try
      ignore (Sim.run sim ~max_events:1_000);
      false
    with Sim.Simulation_runaway n -> n > 1_000
  in
  check_bool "max_events raises Simulation_runaway" true raised

let test_watchdog_deadlock_verdict () =
  (* a barrier that never fills: the queue drains with a live thread,
     which the watchdog must report instead of claiming completion *)
  let sim = Sim.create Platform.opteron in
  let b = Sim.make_barrier 2 in
  Sim.spawn sim ~core:0 (fun () ->
      Sim.pause 10;
      Sim.await b);
  let _, h = Sim.run_health sim in
  (match h.Sim.verdict with
  | Sim.Stalled { tid = 0; core = 0; _ } -> ()
  | v -> Alcotest.failf "expected stalled tid 0, got %s" (Sim.verdict_to_string v));
  check_int "nothing dropped (deadlock, not backstop)" 0 h.Sim.dropped_events

let test_watchdog_crash_stall_verdict () =
  (* thread 0 takes a TAS "lock" and crash-stops while holding it;
     thread 1 spins forever and must be reported as stalled, with the
     crash recorded — no hang, no silent truncation *)
  let faults = Fault.crash_stop ~seed:1 [ (0, 500) ] in
  let sim = Sim.create ~faults Platform.opteron in
  let mem = Sim.memory sim in
  let flag = Memory.alloc mem in
  Sim.spawn sim ~core:0 (fun () ->
      ignore (Sim.tas flag);
      Sim.pause 5_000;
      (* crash-stops before this release runs *)
      Sim.store flag 0);
  Sim.spawn sim ~core:6 (fun () ->
      while Sim.load flag = 0 do
        Sim.pause 10
      done;
      while Sim.load flag = 1 do
        Sim.pause 40
      done);
  let _, h = Sim.run_health sim ~until:50_000 in
  check_bool "crash recorded" true (h.Sim.crashed = [ 0 ]);
  (match h.Sim.verdict with
  | Sim.Stalled { tid = 1; _ } -> ()
  | v -> Alcotest.failf "expected stalled tid 1, got %s" (Sim.verdict_to_string v));
  check_bool "backstop dropped the spin tail" true (h.Sim.dropped_events > 0)

let test_fault_spec_validation () =
  let fails f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "bad probability" true
    (fails (fun () -> Sim.create ~faults:(Fault.preemption 1.5) Platform.opteron));
  check_bool "bad cycle range" true
    (fails (fun () ->
         Sim.create
           ~faults:{ Fault.none with Fault.preempt_prob = 0.1; preempt_cycles = (10, 5) }
           Platform.opteron));
  check_bool "bad crash tid" true
    (fails (fun () ->
         Sim.create ~faults:(Fault.crash_stop [ (-1, 0) ]) Platform.opteron))

(* qcheck: counter increments across random thread/iteration mixes are
   never lost. *)
let qcheck_no_lost_updates =
  QCheck.Test.make ~count:60 ~name:"no lost updates (random mixes)"
    QCheck.(
      make
        Gen.(
          triple (oneofl Arch.paper_platform_ids) (int_range 1 12)
            (int_range 1 40)))
    (fun (pid, threads, iters) ->
      let p = Platform.get pid in
      let threads = min threads (Platform.n_cores p) in
      let sim = Sim.create p in
      let mem = Sim.memory sim in
      let a = Memory.alloc mem in
      for tid = 0 to threads - 1 do
        Sim.spawn sim ~core:(Platform.place p tid) (fun () ->
            for _ = 1 to iters do
              ignore (Sim.fai a);
              Sim.pause ((tid * 13 mod 31) + 1)
            done)
      done;
      ignore (Sim.run sim);
      Memory.peek mem a = threads * iters)

let suite =
  [
    Alcotest.test_case "event queue orders by time" `Quick
      test_event_queue_order;
    Alcotest.test_case "event queue FIFO on ties" `Quick
      test_event_queue_fifo_ties;
    Alcotest.test_case "ops advance virtual time" `Quick
      test_time_advances_with_ops;
    Alcotest.test_case "pause" `Quick test_pause;
    Alcotest.test_case "threads communicate through memory" `Quick
      test_two_threads_communicate;
    Alcotest.test_case "barrier synchronizes" `Quick test_barrier_synchronizes;
    Alcotest.test_case "simulation is deterministic" `Quick test_determinism;
    Alcotest.test_case "FAI atomic under concurrency" `Quick
      test_fai_is_atomic_under_concurrency;
    Alcotest.test_case "runaway protection" `Quick test_runaway_protection;
    Alcotest.test_case "harness counts ops" `Quick test_harness_counts_ops;
    Alcotest.test_case "harness validates arguments" `Quick
      test_harness_rejects_bad_args;
    Alcotest.test_case "fault seed determinism" `Quick
      test_fault_seed_determinism;
    Alcotest.test_case "faults slow the run" `Quick test_faults_slow_the_run;
    Alcotest.test_case "fault layer disabled is a no-op" `Quick
      test_faults_disabled_is_noop;
    Alcotest.test_case "Simulation_runaway raised at max_events" `Quick
      test_runaway_exception;
    Alcotest.test_case "watchdog reports deadlock" `Quick
      test_watchdog_deadlock_verdict;
    Alcotest.test_case "watchdog reports crash-induced stall" `Quick
      test_watchdog_crash_stall_verdict;
    Alcotest.test_case "fault spec validation" `Quick
      test_fault_spec_validation;
    QCheck_alcotest.to_alcotest qcheck_no_lost_updates;
  ]
