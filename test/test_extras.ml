(* Additional coverage: Table 1 metadata, the fetch-and-add variants the
   lock optimizations rely on, barrier reuse, simulator edge cases, and
   the ablation knobs (backoff base, cohort max_pass). *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_simlocks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------- Table 1 -------------------------------- *)

let test_table1_consistent () =
  List.iter
    (fun (m : Table1.t) ->
      check_bool
        (Printf.sprintf "%s metadata matches topology"
           (Arch.platform_name m.Table1.id))
        true
        (Table1.consistent_with_topology m);
      check_int "11 fields" 11 (List.length (Table1.rows m)))
    Table1.all

(* -------------------- fetch-and-add variants ---------------------- *)

let test_faa_semantics () =
  let sim = Sim.create Platform.xeon in
  let mem = Sim.memory sim in
  let a = Memory.alloc mem ~value:10 in
  Sim.spawn sim ~core:0 (fun () ->
      check_int "faa 5 returns old" 10 (Sim.faa a 5);
      check_int "faa 0 reads" 15 (Sim.faa a 0);
      check_int "value unchanged by faa 0" 15 (Sim.faa a 0);
      check_int "faa_store adds" 15 (Sim.faa_store a 1);
      check_int "fai adds 1" 16 (Sim.fai a));
  ignore (Sim.run sim);
  check_int "final value" 17 (Memory.peek mem a)

let test_faa_zero_leaves_modified () =
  (* the prefetchw probe: an atomic read that grabs the line exclusive *)
  let m = Memory.create Platform.opteron in
  let a = Memory.alloc m ~value:7 in
  ignore (Memory.access m ~core:5 ~now:0 Arch.Store a ~operand:7);
  ignore (Memory.access m ~core:0 ~now:100 Arch.Fai a ~operand:0);
  let l = Memory.line m a in
  check_bool "line Modified at prober" true (l.Memory.owner = Some 0);
  check_int "value untouched" 7 (Memory.peek m a)

let test_faa_zero_costs_store_class () =
  (* on the Opteron, an atomic on a Shared line costs ~272+, a store
     ~246; the probe must take the store-class path *)
  let m = Memory.create Platform.opteron in
  let a = Memory.alloc m in
  Memory.force_state m ~holder:1 ~second:2 Arch.Shared a;
  Memory.reset_busy m a;
  let probe_lat, _ = Memory.access m ~core:0 ~now:1000 Arch.Fai a ~operand:0 in
  Memory.force_state m ~holder:1 ~second:2 Arch.Shared a;
  Memory.reset_busy m a;
  let atomic_lat, _ = Memory.access m ~core:0 ~now:1000 Arch.Fai a ~operand:1 in
  check_bool
    (Printf.sprintf "probe (%d) cheaper than atomic (%d)" probe_lat atomic_lat)
    true (probe_lat < atomic_lat)

(* ------------------------ engine edges ---------------------------- *)

let test_barrier_reuse () =
  let sim = Sim.create Platform.tilera in
  let b = Sim.make_barrier 2 in
  let phases = ref [] in
  for i = 0 to 1 do
    Sim.spawn sim ~core:i (fun () ->
        Sim.await b;
        phases := (i, 1) :: !phases;
        Sim.pause (100 * (i + 1));
        Sim.await b;
        phases := (i, 2) :: !phases)
  done;
  ignore (Sim.run sim);
  check_int "both passed both phases" 4 (List.length !phases);
  (* phase 2 entries must come after every phase 1 entry *)
  let order = List.rev_map snd !phases in
  Alcotest.(check (list int)) "phased" [ 1; 1; 2; 2 ] order

let test_many_threads () =
  let p = Platform.xeon in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let a = Memory.alloc mem in
  for tid = 0 to 79 do
    Sim.spawn sim ~core:tid (fun () -> ignore (Sim.fai a))
  done;
  ignore (Sim.run sim);
  check_int "80 increments" 80 (Memory.peek mem a)

let test_spawn_rejects_bad_core () =
  let sim = Sim.create Platform.tilera in
  check_bool "core out of range rejected" true
    (try
       Sim.spawn sim ~core:36 (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_memory_rejects_bad_addr () =
  let m = Memory.create Platform.opteron in
  check_bool "bad address rejected" true
    (try
       ignore (Memory.access m ~core:0 ~now:0 Arch.Load 123);
       false
     with Invalid_argument _ -> true)

(* ----------------------- ablation knobs --------------------------- *)

let contended_ticket_latency ~base ~threads =
  let p = Platform.opteron in
  let _, mean =
    Harness.run_latency p ~threads ~duration:200_000
      ~setup:(fun mem -> Spinlocks.ticket ~backoff_base:base mem ~home_core:0 ~n_threads:threads)
      ~body:(fun lock _mem ~tid ~deadline ->
        let n = ref 0 and cy = ref 0 in
        while Sim.now () < deadline do
          let t0 = Sim.now () in
          lock.Lock_type.acquire ~tid;
          lock.Lock_type.release ~tid;
          cy := !cy + (Sim.now () - t0);
          Sim.pause 200;
          incr n
        done;
        (!n, !cy))
  in
  mean

let test_backoff_sweet_spot () =
  (* no backoff and absurd backoff must both lose against the tuned one *)
  let none = contended_ticket_latency ~base:0 ~threads:18 in
  let tuned = contended_ticket_latency ~base:1400 ~threads:18 in
  let absurd = contended_ticket_latency ~base:40_000 ~threads:18 in
  check_bool
    (Printf.sprintf "tuned (%.0f) < none (%.0f)" tuned none)
    true (tuned < none);
  check_bool
    (Printf.sprintf "tuned (%.0f) < absurd (%.0f)" tuned absurd)
    true (tuned < absurd)

let test_max_pass_monotone_region () =
  let tput max_pass =
    let p = Platform.xeon in
    let r =
      Harness.run p ~threads:20 ~duration:200_000
        ~setup:(fun mem ->
          Hierarchical.hticket ~max_pass mem p ~home_core:0 ~n_threads:20
            ~place:(Platform.place p))
        ~body:(fun lock _mem ~tid ~deadline ->
          let n = ref 0 in
          while Sim.now () < deadline do
            lock.Lock_type.acquire ~tid;
            Sim.pause 40;
            lock.Lock_type.release ~tid;
            Sim.pause 80;
            incr n
          done;
          !n)
    in
    r.Harness.mops
  in
  let p1 = tput 1 and p64 = tput 64 in
  check_bool
    (Printf.sprintf "max_pass 64 (%.2f) beats max_pass 1 (%.2f)" p64 p1)
    true (p64 > p1)

let test_ticket_backoff_base_positive () =
  List.iter
    (fun pid ->
      check_bool
        (Arch.platform_name pid)
        true
        (Simlock.ticket_backoff_base (Platform.get pid) > 0))
    Arch.all_platform_ids

(* qcheck: faa by random increments matches arithmetic. *)
let qcheck_faa_arithmetic =
  QCheck.Test.make ~count:100 ~name:"faa increments sum correctly"
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 0 50))
    (fun ks ->
      let sim = Sim.create Platform.niagara in
      let mem = Sim.memory sim in
      let a = Memory.alloc mem in
      Sim.spawn sim ~core:0 (fun () ->
          List.iter (fun k -> ignore (Sim.faa a k)) ks);
      ignore (Sim.run sim);
      Memory.peek mem a = List.fold_left ( + ) 0 ks)

let suite =
  [
    Alcotest.test_case "Table 1 metadata consistent" `Quick
      test_table1_consistent;
    Alcotest.test_case "faa semantics" `Quick test_faa_semantics;
    Alcotest.test_case "faa 0 = exclusive-prefetch probe" `Quick
      test_faa_zero_leaves_modified;
    Alcotest.test_case "faa 0 costs store-class" `Quick
      test_faa_zero_costs_store_class;
    Alcotest.test_case "barrier reuse across phases" `Quick
      test_barrier_reuse;
    Alcotest.test_case "80 threads on the Xeon" `Quick test_many_threads;
    Alcotest.test_case "spawn validates core" `Quick
      test_spawn_rejects_bad_core;
    Alcotest.test_case "memory validates addresses" `Quick
      test_memory_rejects_bad_addr;
    Alcotest.test_case "backoff sweet spot (ablation)" `Slow
      test_backoff_sweet_spot;
    Alcotest.test_case "cohort max_pass helps (ablation)" `Slow
      test_max_pass_monotone_region;
    Alcotest.test_case "per-platform backoff bases" `Quick
      test_ticket_backoff_base_positive;
    QCheck_alcotest.to_alcotest qcheck_faa_arithmetic;
  ]
