(* Tests of the platform substrate: topologies, distance classes and the
   calibrated cost models (checked against the paper's Tables 2/3). *)

open Ssync_platform

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------- topology ------------------------------ *)

let test_core_counts () =
  check_int "Opteron cores" 48 Topology.opteron.Topology.n_cores;
  check_int "Xeon cores" 80 Topology.xeon.Topology.n_cores;
  check_int "Niagara contexts" 64 Topology.niagara.Topology.n_cores;
  check_int "Tilera tiles" 36 Topology.tilera.Topology.n_cores;
  check_int "Opteron nodes" 8 Topology.opteron.Topology.n_nodes;
  check_int "Xeon sockets" 8 Topology.xeon.Topology.n_nodes

let test_hops_symmetric_and_zero () =
  List.iter
    (fun topo ->
      let n = topo.Topology.n_cores in
      for _ = 1 to 200 do
        let c1 = Random.int n and c2 = Random.int n in
        check_int
          (Printf.sprintf "%s hops sym %d %d" topo.Topology.name c1 c2)
          (Topology.hops topo c1 c2) (Topology.hops topo c2 c1);
        check_int
          (Printf.sprintf "%s hops self %d" topo.Topology.name c1)
          0
          (Topology.hops topo c1 c1)
      done)
    [ Topology.opteron; Topology.xeon; Topology.niagara; Topology.tilera ]

let test_max_distances () =
  (* Paper: max 2 hops on both multi-sockets; 10 on the Tilera mesh. *)
  let max_hops topo =
    let m = ref 0 in
    for c1 = 0 to topo.Topology.n_cores - 1 do
      for c2 = 0 to topo.Topology.n_cores - 1 do
        m := max !m (Topology.hops topo c1 c2)
      done
    done;
    !m
  in
  check_int "Opteron max 2 hops" 2 (max_hops Topology.opteron);
  check_int "Xeon max 2 hops" 2 (max_hops Topology.xeon);
  check_int "Niagara max 1" 1 (max_hops Topology.niagara);
  check_int "Tilera max 10 hops" 10 (max_hops Topology.tilera)

let test_distance_classes () =
  let t = Topology.opteron in
  Alcotest.(check string)
    "same die" "same die"
    (Arch.distance_name (Topology.distance_class t 0 5));
  Alcotest.(check string)
    "same mcm" "same mcm"
    (Arch.distance_name (Topology.distance_class t 0 6));
  Alcotest.(check string)
    "one hop" "one hop"
    (Arch.distance_name (Topology.distance_class t 0 12));
  Alcotest.(check string)
    "two hops" "two hops"
    (Arch.distance_name (Topology.distance_class t 0 18));
  let n = Topology.niagara in
  Alcotest.(check string)
    "niagara same core" "same core"
    (Arch.distance_name (Topology.distance_class n 0 8));
  Alcotest.(check string)
    "niagara other core" "same die"
    (Arch.distance_name (Topology.distance_class n 0 1))

let test_pairs_at_distance () =
  List.iter
    (fun pid ->
      let topo = Topology.of_platform pid in
      List.iter
        (fun d ->
          match Topology.pair_at_distance topo d with
          | None ->
              Alcotest.failf "%s: no pair at %s" topo.Topology.name
                (Arch.distance_name d)
          | Some (a, b) ->
              Alcotest.(check string)
                (Printf.sprintf "%s pair %s classifies back" topo.Topology.name
                   (Arch.distance_name d))
                (Arch.distance_name d)
                (Arch.distance_name (Topology.distance_class topo a b)))
        (Latencies.distance_classes pid))
    Arch.paper_platform_ids

(* ------------------------- cost model ---------------------------- *)

(* Construct the ccbench view: the line was brought into [st] by core
   [holder] (with a second sharer where the state needs one), and is then
   accessed by [requester].  Home is the holder's node: the paper's
   best-case placement. *)
let view_for topo ~holder ?(second = None) (st : Arch.cstate) :
    Cost_model.view =
  let home = topo.Topology.mem_node_of_core holder in
  match st with
  | Arch.Modified | Arch.Exclusive ->
      { state = st; owner = Some holder; sharers = Coreset.of_list []; home; llc_dirty = false }
  | Arch.Owned ->
      {
        state = st;
        owner = Some holder;
        sharers = Coreset.of_list (match second with Some s -> [ s ] | None -> []);
        home;
        llc_dirty = false;
      }
  | Arch.Shared | Arch.Forward ->
      {
        state = Arch.Shared;
        owner = None;
        sharers =
          Coreset.of_list
            (holder :: (match second with Some s -> [ s ] | None -> []));
        home;
        llc_dirty = false;
      }
  | Arch.Invalid -> { state = st; owner = None; sharers = Coreset.of_list []; home; llc_dirty = false }

let tolerance_ok ~expected ~actual =
  let e = float_of_int expected and a = float_of_int actual in
  Float.abs (a -. e) <= Float.max 3. (0.12 *. e)

(* Every (platform, op, state, distance) cell the paper reports must be
   reproduced by the cost model within 12% (or 3 cycles). *)
let test_table2_calibration () =
  let states =
    [
      Arch.Modified; Arch.Owned; Arch.Exclusive; Arch.Shared; Arch.Invalid;
    ]
  in
  let ops = [ Arch.Load; Arch.Store; Arch.Cas; Arch.Fai; Arch.Tas; Arch.Swap ] in
  let checked = ref 0 in
  List.iter
    (fun pid ->
      let topo = Topology.of_platform pid in
      List.iter
        (fun d ->
          match Topology.pair_at_distance topo d with
          | None -> ()
          | Some (requester, holder) ->
              List.iter
                (fun st ->
                    List.iter
                      (fun op ->
                        match Latencies.table2 pid op st d with
                        | None -> ()
                        | Some expected ->
                            let v = view_for topo ~holder st in
                            let actual =
                              Cost_model.op_latency topo op ~requester v
                            in
                            incr checked;
                            if not (tolerance_ok ~expected ~actual) then
                              Alcotest.failf
                                "%s %s on %s at %s: paper %d, model %d"
                                (Arch.platform_name pid) (Arch.memop_name op)
                                (Arch.cstate_name st) (Arch.distance_name d)
                                expected actual)
                      ops)
                states)
        (Latencies.distance_classes pid))
    Arch.paper_platform_ids;
  check_bool "checked many cells" true (!checked > 80)

let test_local_hits_cheap () =
  List.iter
    (fun pid ->
      let topo = Topology.of_platform pid in
      let v : Cost_model.view =
        {
          state = Arch.Modified;
          owner = Some 0;
          sharers = Coreset.of_list [];
          home = topo.Topology.mem_node_of_core 0;
          llc_dirty = false;
        }
      in
      let lat = Cost_model.op_latency topo Arch.Load ~requester:0 v in
      check_bool
        (Printf.sprintf "%s local load <= 5" (Arch.platform_name pid))
        true (lat <= 5))
    Arch.paper_platform_ids

let test_opteron_store_shared_broadcast () =
  (* Section 5.2/5.3: a store on a shared line costs ~3x a store on an
     exclusive line even when all sharers are on the same die. *)
  let topo = Topology.opteron in
  let home = 0 in
  let shared : Cost_model.view =
    { state = Arch.Shared; owner = None; sharers = Coreset.of_list [ 1; 2 ]; home; llc_dirty = false }
  in
  let excl : Cost_model.view =
    { state = Arch.Exclusive; owner = Some 1; sharers = Coreset.of_list []; home; llc_dirty = false }
  in
  let s_lat = Cost_model.op_latency topo Arch.Store ~requester:0 shared in
  let e_lat = Cost_model.op_latency topo Arch.Store ~requester:0 excl in
  check_bool "broadcast penalty" true
    (float_of_int s_lat >= 2.5 *. float_of_int e_lat)

let test_xeon_intra_socket_locality () =
  (* Xeon: shared loads within the socket are served by the inclusive
     LLC (44 cycles), 7.5x cheaper than two hops away. *)
  let topo = Topology.xeon in
  let mk holder : Cost_model.view =
    {
      state = Arch.Shared;
      owner = None;
      sharers = Coreset.of_list [ holder ];
      home = topo.Topology.mem_node_of_core holder;
      llc_dirty = false;
    }
  in
  let local = Cost_model.op_latency topo Arch.Load ~requester:0 (mk 1) in
  let remote = Cost_model.op_latency topo Arch.Load ~requester:0 (mk 30) in
  check_int "intra-socket shared load" 44 local;
  check_bool "cross-socket 7.5x" true
    (float_of_int remote >= 7. *. float_of_int local)

let test_opteron_directory_penalty () =
  (* Section 5.2: when both cores are 2 hops from the directory, a
     2-hop transfer grows from 252 toward ~312 cycles. *)
  let topo = Topology.opteron in
  let best : Cost_model.view =
    { state = Arch.Modified; owner = Some 18; sharers = Coreset.of_list []; home = 3; llc_dirty = false }
  in
  let worst : Cost_model.view =
    { state = Arch.Modified; owner = Some 18; sharers = Coreset.of_list []; home = 5; llc_dirty = false }
  in
  (* requester 0 is die 0; owner 18 is die 3; die 5 is 2 hops from die 0 *)
  let b = Cost_model.op_latency topo Arch.Load ~requester:0 best in
  let w = Cost_model.op_latency topo Arch.Load ~requester:0 worst in
  check_int "best case" 252 b;
  check_bool "remote directory costs more" true (w > b && w >= 300 && w <= 330)

let test_niagara_uniformity () =
  (* Stores cost the LLC regardless of sharers and distance. *)
  let topo = Topology.niagara in
  List.iter
    (fun sharers ->
      let v : Cost_model.view =
        { state = Arch.Shared; owner = None; sharers = Coreset.of_list sharers; home = 0; llc_dirty = false }
      in
      check_int "niagara store" 24
        (Cost_model.op_latency topo Arch.Store ~requester:3 v))
    [ [ 1 ]; [ 1; 2 ]; List.init 40 (fun i -> i + 1) ]

let test_tilera_distance_sensitivity () =
  let topo = Topology.tilera in
  let mk home : Cost_model.view =
    { state = Arch.Modified; owner = Some home; sharers = Coreset.of_list []; home; llc_dirty = false }
  in
  let near = Cost_model.op_latency topo Arch.Load ~requester:0 (mk 1) in
  let far = Cost_model.op_latency topo Arch.Load ~requester:0 (mk 35) in
  check_int "one hop" 45 near;
  check_int "max hops" 65 far

let test_small_platform_ratios () =
  (* Section 8: cross-socket ~1.6x (Opteron2) and ~2.7x (Xeon2) the
     intra-socket latency. *)
  List.iter
    (fun (pid, ratio) ->
      let topo = Topology.of_platform pid in
      let cross_core = topo.Topology.n_cores - 1 in
      let mk holder : Cost_model.view =
        {
          state = Arch.Modified;
          owner = Some holder;
          sharers = Coreset.of_list [];
          home = topo.Topology.mem_node_of_core holder;
          llc_dirty = false;
        }
      in
      let intra = Cost_model.op_latency topo Arch.Load ~requester:0 (mk 1) in
      let cross =
        Cost_model.op_latency topo Arch.Load ~requester:0 (mk cross_core)
      in
      let measured = float_of_int cross /. float_of_int intra in
      check_bool
        (Printf.sprintf "%s ratio %.2f ~ %.1f" (Arch.platform_name pid)
           measured ratio)
        true
        (Float.abs (measured -. ratio) < 0.3))
    [ (Arch.Opteron2, 1.6); (Arch.Xeon2, 2.7) ]

let test_table3_known_values () =
  check_int "Opteron LLC" 40
    (Option.get (Latencies.table3 Arch.Opteron Arch.LLC));
  check_int "Xeon LLC" 44 (Option.get (Latencies.table3 Arch.Xeon Arch.LLC));
  check_int "Niagara RAM" 176
    (Option.get (Latencies.table3 Arch.Niagara Arch.RAM));
  check_bool "Niagara has no L2 entry" true
    (Latencies.table3 Arch.Niagara Arch.L2 = None)

let test_platform_mops () =
  (* 1 op per 95 cycles at 2.1 GHz is ~22 Mops/s. *)
  let m = Platform.mops Platform.opteron ~ops:1 ~cycles:95 in
  check_bool "mops conversion" true (Float.abs (m -. 22.1) < 0.2)

let test_occupancy_bounds () =
  List.iter
    (fun p ->
      List.iter
        (fun op ->
          let occ = p.Platform.occupancy op ~state:Arch.Modified ~latency:100 in
          check_bool
            (Printf.sprintf "%s %s occupancy in (0;latency]" p.Platform.name
               (Arch.memop_name op))
            true
            (occ > 0 && occ <= 100))
        [ Arch.Load; Arch.Store; Arch.Cas; Arch.Fai; Arch.Tas; Arch.Swap ])
    Platform.all

(* qcheck: cost model total latency is positive and bounded for random
   views. *)
let qcheck_latency_positive =
  let gen =
    QCheck.Gen.(
      let* pid = oneofl Arch.paper_platform_ids in
      let topo = Topology.of_platform pid in
      let n = topo.Topology.n_cores in
      let* requester = int_range 0 (n - 1) in
      let* holder = int_range 0 (n - 1) in
      let* second = int_range 0 (n - 1) in
      let* st =
        oneofl
          (match pid with
          | Arch.Opteron -> [ Arch.Modified; Arch.Owned; Arch.Exclusive; Arch.Shared; Arch.Invalid ]
          | _ -> [ Arch.Modified; Arch.Exclusive; Arch.Shared; Arch.Invalid ])
      in
      let* op = oneofl [ Arch.Load; Arch.Store; Arch.Cas; Arch.Fai; Arch.Tas; Arch.Swap ] in
      return (pid, requester, holder, second, st, op))
  in
  QCheck.Test.make ~count:2000 ~name:"cost model positive and bounded"
    (QCheck.make gen) (fun (pid, requester, holder, second, st, op) ->
      let topo = Topology.of_platform pid in
      let v =
        view_for topo ~holder
          ~second:(if second <> holder then Some second else None)
          st
      in
      let lat = Cost_model.op_latency topo op ~requester v in
      lat >= 1 && lat < 5000)

let suite =
  [
    Alcotest.test_case "core counts" `Quick test_core_counts;
    Alcotest.test_case "hops symmetric, zero on self" `Quick
      test_hops_symmetric_and_zero;
    Alcotest.test_case "max distances" `Quick test_max_distances;
    Alcotest.test_case "distance classes" `Quick test_distance_classes;
    Alcotest.test_case "pairs at distance" `Quick test_pairs_at_distance;
    Alcotest.test_case "Table 2 calibration" `Quick test_table2_calibration;
    Alcotest.test_case "local hits are cheap" `Quick test_local_hits_cheap;
    Alcotest.test_case "Opteron store-on-shared broadcast" `Quick
      test_opteron_store_shared_broadcast;
    Alcotest.test_case "Xeon intra-socket locality" `Quick
      test_xeon_intra_socket_locality;
    Alcotest.test_case "Opteron remote-directory penalty" `Quick
      test_opteron_directory_penalty;
    Alcotest.test_case "Niagara uniformity" `Quick test_niagara_uniformity;
    Alcotest.test_case "Tilera distance sensitivity" `Quick
      test_tilera_distance_sensitivity;
    Alcotest.test_case "small-platform ratios (section 8)" `Quick
      test_small_platform_ratios;
    Alcotest.test_case "Table 3 values" `Quick test_table3_known_values;
    Alcotest.test_case "Mops conversion" `Quick test_platform_mops;
    Alcotest.test_case "occupancy bounds" `Quick test_occupancy_bounds;
    QCheck_alcotest.to_alcotest qcheck_latency_positive;
  ]
