(* Virtual-time telemetry accumulators.  See metrics.mli for the
   determinism argument; the implementation is a hash table of
   (kind, id, bucket) -> cycle sums plus an epoch base, deliberately
   order-independent so per-slot and per-shard branches can be merged
   in any order without changing a byte of the dump. *)

let requested = ref false
let bucket_cycles = ref 65536

(* Deterministic timeline kinds. *)
let k_dir_busy = 0
let k_link_busy = 1
let k_dir_queued = 2
let k_link_queued = 3
let k_line_occ = 4
let k_line_sharers = 5
let k_lock_waiters = 6
let k_runnable = 7
let k_spinning = 8
let k_parked = 9
let k_parks = 10
let k_wakes = 11

(* Strategy-dependent kinds (excluded from dumps). *)
let k_windows = 12
let k_replays = 13
let k_promoted = 14
let n_kinds = 15
let first_strategy_kind = k_windows

let kind_names =
  [|
    "dir_busy"; "link_busy"; "dir_queued"; "link_queued"; "line_occ";
    "line_sharers"; "lock_waiters"; "runnable"; "spinning"; "parked";
    "parks"; "wakes"; "windows"; "replays"; "promoted";
  |]

let kind_name k =
  if k >= 0 && k < n_kinds then kind_names.(k) else string_of_int k

type t = {
  tbl : (int * int * int, int ref) Hashtbl.t;
  w : int;  (* grid width, cycles per bucket *)
  mutable base : int;  (* epoch base, absolute cycles, grid-aligned *)
  mutable max_ts : int;  (* highest absolute cycle sampled *)
}

let create () = { tbl = Hashtbl.create 256; w = !bucket_cycles; base = 0; max_ts = 0 }
let grid t = t.w
let base t = t.base
let max_ts t = t.max_ts

let add t kind id bucket v =
  let key = (kind, id, bucket) in
  match Hashtbl.find_opt t.tbl key with
  | Some r -> r := !r + v
  | None -> Hashtbl.add t.tbl key (ref v)

let span t ~kind ~id ~t0 ~t1 ~weight =
  if t1 > t0 && weight <> 0 then begin
    let a = t.base + max 0 t0 in
    let b = t.base + max 0 t1 in
    if b > t.max_ts then t.max_ts <- b;
    let b0 = a / t.w and b1 = (b - 1) / t.w in
    if b0 = b1 then add t kind id b0 (weight * (b - a))
    else begin
      add t kind id b0 (weight * ((b0 + 1) * t.w - a));
      for bk = b0 + 1 to b1 - 1 do
        add t kind id bk (weight * t.w)
      done;
      add t kind id b1 (weight * (b - b1 * t.w))
    end
  end

let bump t ~kind ~id ~ts n =
  if n <> 0 then begin
    let a = t.base + max 0 ts in
    if a + 1 > t.max_ts then t.max_ts <- a + 1;
    add t kind id (a / t.w) n
  end

(* Strategy tallies land in bucket 0 and leave the high-water mark
   untouched: they are bumped straight into the sink (so they survive
   an aborted attempt's rollback), and advancing [max_ts] from there
   would let an aborted attempt shift the epoch base [new_epoch] hands
   to the next simulation — desynchronizing the deterministic kinds'
   buckets between a serial run and a sharded run that aborted once. *)
let tally t ~kind ~id n = if n <> 0 then add t kind id 0 n

let reset t =
  Hashtbl.reset t.tbl;
  t.base <- 0;
  t.max_ts <- 0

let merge ~into t =
  if into.w <> t.w then invalid_arg "Metrics.merge: grid mismatch";
  Hashtbl.iter (fun (k, i, b) r -> add into k i b !r) t.tbl;
  if t.max_ts > into.max_ts then into.max_ts <- t.max_ts;
  Hashtbl.reset t.tbl;
  t.max_ts <- t.base

let new_epoch t =
  if t.max_ts > t.base then t.base <- (t.max_ts / t.w + 1) * t.w

let rebase t ~like =
  if t.w <> like.w then invalid_arg "Metrics.rebase: grid mismatch";
  Hashtbl.reset t.tbl;
  t.base <- like.base;
  t.max_ts <- like.base

let copy t =
  let c = { tbl = Hashtbl.copy t.tbl; w = t.w; base = t.base; max_ts = t.max_ts } in
  (* deep-copy the cells: the live table keeps mutating its refs *)
  Hashtbl.filter_map_inplace (fun _ r -> Some (ref !r)) c.tbl;
  c

let assign dst src =
  if dst.w <> src.w then invalid_arg "Metrics.assign: grid mismatch";
  Hashtbl.reset dst.tbl;
  Hashtbl.iter (fun k r -> Hashtbl.add dst.tbl k (ref !r)) src.tbl;
  dst.base <- src.base;
  dst.max_ts <- src.max_ts

let branch t =
  { tbl = Hashtbl.create 64; w = t.w; base = t.base; max_ts = t.base }

(* ------------------------------ sinks ------------------------------ *)

let sink_key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)
let current () = !(Domain.DLS.get sink_key)

let start () =
  let t = create () in
  Domain.DLS.get sink_key := Some t;
  t

let stop () =
  let cell = Domain.DLS.get sink_key in
  let t = !cell in
  cell := None;
  t

(* ----------------------------- reading ----------------------------- *)

let total t ~kind =
  Hashtbl.fold (fun (k, _, _) r acc -> if k = kind then acc + !r else acc) t.tbl 0

let total_id t ~kind ~id =
  Hashtbl.fold
    (fun (k, i, _) r acc -> if k = kind && i = id then acc + !r else acc)
    t.tbl 0

let sorted_keys t =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] in
  List.sort compare keys

let iter_sorted t f =
  List.iter
    (fun ((k, i, b) as key) -> f ~kind:k ~id:i ~bucket:b !(Hashtbl.find t.tbl key))
    (sorted_keys t)

(* ------------------------------ dumps ------------------------------ *)

let deterministic k = k < first_strategy_kind

let dump_csv buf jobs =
  Buffer.add_string buf
    (Printf.sprintf "# ssync metrics v1 bucket_cycles=%d\n" !bucket_cycles);
  List.iter
    (fun (label, t) ->
      Buffer.add_string buf (Printf.sprintf "# job %s\n" label);
      iter_sorted t (fun ~kind ~id ~bucket v ->
          if deterministic kind then
            Buffer.add_string buf
              (Printf.sprintf "%s,%d,%d,%d\n" (kind_name kind) id bucket v)))
    jobs

let dump_json buf jobs =
  Buffer.add_string buf
    (Printf.sprintf "{\"bucket_cycles\": %d, \"jobs\": [" !bucket_cycles);
  List.iteri
    (fun j (label, t) ->
      if j > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n{\"label\": %S, \"samples\": [" label);
      let first = ref true in
      iter_sorted t (fun ~kind ~id ~bucket v ->
          if deterministic kind then begin
            if not !first then Buffer.add_char buf ',';
            first := false;
            Buffer.add_string buf
              (Printf.sprintf "\n[%S, %d, %d, %d]" (kind_name kind) id bucket v)
          end);
      Buffer.add_string buf "]}")
    jobs;
  Buffer.add_string buf "]}\n"

let dump_file path jobs =
  let buf = Buffer.create 4096 in
  if Filename.check_suffix path ".json" then dump_json buf jobs
  else dump_csv buf jobs;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc
