(** Deterministic virtual-time telemetry.

    A metrics accumulator samples typed gauges and counters onto a
    fixed virtual-cycle grid: every contribution is a [(kind, id,
    bucket) -> cycles] sum whose key derives purely from virtual
    timestamps and stable identifiers (resource ids, line ids).  Sums
    commute, so the accumulated table is independent of the order in
    which contributions arrive — the property that makes the dump
    byte-identical at any [--jobs] (per-job sinks, fresh per job) and
    any [--shards] (a sharded run either replays the serial schedule
    exactly, contributing the same spans from different slots, or
    aborts without merging).

    The discipline mirrors [Trace]: {!requested} is read once per job
    by the submitting domain; instrumentation sites cache the sink (or
    a branch of it) at creation and pay one option check when metrics
    are off; probes are time-free, so sampled runs replay the identical
    virtual-time schedule. *)

type t

val requested : bool ref
(** Should jobs sample metrics?  Set by the benchmark driver
    ([--metrics], [heatmap]) before submitting jobs; read once per job. *)

val bucket_cycles : int ref
(** Grid width in virtual cycles (default [65536]).  Fixed into an
    accumulator at {!create}; change it only between jobs. *)

(** {1 Kinds}

    Deterministic timeline kinds ([id] in brackets): *)

(** [k_dir_busy] home-directory busy cycles [node]; [k_link_busy] link
    busy cycles [lo * n_nodes + hi]; [k_dir_queued]/[k_link_queued]
    wait cycles attributed to a directory [node] / link [link];
    [k_line_occ] line-occupancy cycles [line id]; [k_line_sharers]
    sharer-count-weighted cycles [line id]; [k_lock_waiters]
    parked-waiter-weighted cycles [line id]; [k_runnable]/[k_spinning]/
    [k_parked] thread-count-weighted cycles [0]; [k_parks]/[k_wakes]
    event counters [0]. *)

val k_dir_busy : int

val k_link_busy : int

val k_dir_queued : int

val k_link_queued : int

val k_line_occ : int

val k_line_sharers : int

val k_lock_waiters : int

val k_runnable : int

val k_spinning : int

val k_parked : int

val k_parks : int

val k_wakes : int

(** Strategy-dependent kinds — zero on serial runs, dependent on shard
    count and replay luck otherwise.  Excluded from {!dump_csv} /
    {!dump_json} (which must be byte-identical across [--shards]) but
    visible to {!total}/{!iter_sorted} for the heatmap's PDES-health
    footer. *)

val k_windows : int

val k_replays : int

val k_promoted : int

val kind_name : int -> string
val n_kinds : int

val deterministic : int -> bool
(** [true] for timeline kinds that are byte-identical across [--jobs]
    and [--shards]; [false] for the PDES-health counters above. *)

(** {1 Sinks} *)

val create : unit -> t
(** Fresh accumulator at epoch base 0, grid {!bucket_cycles}. *)

val start : unit -> t
(** Install a fresh accumulator as the calling domain's sink. *)

val stop : unit -> t option
(** Uninstall and return the domain's sink. *)

val current : unit -> t option
(** The domain's sink, if one is installed. *)

(** {1 Accumulation} *)

val branch : t -> t
(** A private accumulator sharing [t]'s grid and epoch base — handed to
    a memory slot or engine shard so concurrent contributors never
    share a table; {!merge} it back when its run succeeds. *)

val span : t -> kind:int -> id:int -> t0:int -> t1:int -> weight:int -> unit
(** Add [weight] cycles-per-cycle over virtual span [\[t0, t1)]
    (epoch-relative; the accumulator's base is applied).  No-op when
    [t1 <= t0] or [weight = 0]. *)

val bump : t -> kind:int -> id:int -> ts:int -> int -> unit
(** Add a point count at virtual time [ts] (epoch-relative). *)

val tally : t -> kind:int -> id:int -> int -> unit
(** Add a count in bucket 0 without touching the epoch high-water mark.
    For the strategy-dependent kinds, which are bumped straight into
    the domain sink so they survive an aborted attempt's rollback — a
    high-water advance from an aborted attempt would shift the epoch
    base {!new_epoch} hands to the next simulation and desynchronize
    the deterministic kinds' buckets across [--shards]. *)

val merge : into:t -> t -> unit
(** Fold [t]'s samples (and high-water mark) into [into], then reset
    [t] for reuse.  Grids must match. *)

val new_epoch : t -> unit
(** Advance the epoch base past every merged sample, rounded up to the
    grid, so a new job segment on the same sink cannot collide with the
    previous one.  Aborted attempts merge nothing, so a serial re-run
    of the same job lands on the identical base. *)

val rebase : t -> like:t -> unit
(** Reset [t] and adopt [like]'s epoch base (slot/shard accumulators
    follow the sink's epoch). *)

(** {1 Checkpoint support} *)

val copy : t -> t
val assign : t -> t -> unit
(** [assign dst src] makes [dst]'s contents equal [src]'s (grid and
    base included), reusing [dst]'s table. *)

val reset : t -> unit

(** {1 Reading} *)

val max_ts : t -> int
(** Highest absolute virtual time sampled (epoch base applied). *)

val base : t -> int

val grid : t -> int

val total : t -> kind:int -> int
(** Sum over every id and bucket of [kind]. *)

val total_id : t -> kind:int -> id:int -> int

val iter_sorted : t -> (kind:int -> id:int -> bucket:int -> int -> unit) -> unit
(** Visit samples in (kind, id, bucket) order — the dump order. *)

val dump_csv : Buffer.t -> (string * t) list -> unit
(** One section per job, in the given (submission) order: a [# job
    <label>] header, then [kind,id,bucket,value] lines in
    {!iter_sorted} order.  Strategy-dependent kinds are skipped. *)

val dump_json : Buffer.t -> (string * t) list -> unit
(** Same content as {!dump_csv} as a JSON document. *)

val dump_file : string -> (string * t) list -> unit
(** Write {!dump_json} if the path ends in [.json], else {!dump_csv}. *)
