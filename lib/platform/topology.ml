(* Interconnect topologies of the four platforms (paper Figure 2 and
   Table 1).  A topology maps hardware contexts ("cores" below, numbered
   0..n_cores-1) to sockets/dies/nodes and gives the hop distance between
   the nodes of any two cores.  It also encodes the thread-placement
   policy the paper uses (section 5.4): fill a socket before moving to the
   next on the multi-sockets, round-robin over physical cores on the
   Niagara, linear tile order on the Tilera. *)

type t = {
  id : Arch.platform_id;
  name : string;
  n_cores : int;          (* usable hardware contexts *)
  n_nodes : int;          (* dies (Opteron), sockets (Xeon), cores (Niagara), tiles (Tilera) *)
  node_of_core : int -> int;
  node_hops : int -> int -> int;  (* hop distance between two nodes *)
  place : int -> int;     (* thread index -> core id *)
  mem_node_of_core : int -> int;  (* memory/home node used for first-touch allocation *)
  line_words : int;
  (* Words per cache line (64-byte lines, 8-byte words, on all four
     platforms — Table 1).  Padded allocations still place one word per
     line; packed allocations co-locate up to [line_words] words on one
     line, which is what makes false sharing expressible. *)
  clock_ghz : float;
  local_work_cycles : int;
  (* Cycles a simulated thread spends on the core-local part of a
     benchmark iteration (loop control, address computation).  Captures
     the single-thread performance differences of section 5.4: the
     in-order 1.2 GHz Niagara and Tilera do much less work per cycle than
     the x86 multi-sockets. *)
}

let check t core =
  if core < 0 || core >= t.n_cores then
    invalid_arg
      (Printf.sprintf "%s: core %d out of range [0,%d)" t.name core t.n_cores)

let node_of t core =
  check t core;
  t.node_of_core core

let hops t c1 c2 =
  check t c1;
  check t c2;
  t.node_hops (t.node_of_core c1) (t.node_of_core c2)

let same_node t c1 c2 = node_of t c1 = node_of t c2

(* ------------------------------------------------------------------ *)
(* Opteron: 4 multi-chip modules, each with two 6-core dies, i.e. 8
   nodes of 6 cores (the paper treats a die as a socket).  Dies of an
   MCM are 1 hop apart but share more bandwidth; the maximum distance is
   2 hops.  We realize Figure 2(a) with: dies of one MCM adjacent, and
   even-numbered dies fully connected among themselves (one HT link from
   each die to each other MCM), which yields max distance 2. *)

let opteron_die_hops d1 d2 =
  if d1 = d2 then 0
  else if d1 / 2 = d2 / 2 then 1 (* same MCM *)
  else if d1 mod 2 = 0 && d2 mod 2 = 0 then 1 (* direct HT link *)
  else 2

(* Whether two Opteron dies belong to the same multi-chip module. *)
let opteron_same_mcm d1 d2 = d1 <> d2 && d1 / 2 = d2 / 2

let opteron =
  {
    id = Arch.Opteron;
    name = "Opteron";
    n_cores = 48;
    n_nodes = 8;
    node_of_core = (fun c -> c / 6);
    node_hops = opteron_die_hops;
    place = (fun i -> i);  (* fill die 0 first, then die 1, ... *)
    mem_node_of_core = (fun c -> c / 6);
    line_words = 8;
    clock_ghz = 2.1;
    local_work_cycles = 40;
  }

let opteron2 =
  {
    opteron with
    id = Arch.Opteron2;
    name = "Opteron2";
    n_cores = 8;
    n_nodes = 2;
    node_of_core = (fun c -> c / 4);
    node_hops = (fun d1 d2 -> if d1 = d2 then 0 else 1);
    mem_node_of_core = (fun c -> c / 4);
  }

(* ------------------------------------------------------------------ *)
(* Xeon: 8 sockets of 10 cores forming a twisted hypercube (Figure 2b):
   max distance two hops.  Sockets differing in exactly one bit of their
   3-bit id are adjacent; every other pair is 2 hops (the twist removes
   the 3-hop diagonals of a plain hypercube). *)

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

let xeon_socket_hops s1 s2 =
  if s1 = s2 then 0 else if popcount (s1 lxor s2) = 1 then 1 else 2

let xeon =
  {
    id = Arch.Xeon;
    name = "Xeon";
    n_cores = 80;
    n_nodes = 8;
    node_of_core = (fun c -> c / 10);
    node_hops = xeon_socket_hops;
    place = (fun i -> i);
    mem_node_of_core = (fun c -> c / 10);
    line_words = 8;
    clock_ghz = 2.13;
    local_work_cycles = 40;
  }

let xeon2 =
  {
    xeon with
    id = Arch.Xeon2;
    name = "Xeon2";
    n_cores = 12;
    n_nodes = 2;
    node_of_core = (fun c -> c / 6);
    node_hops = (fun s1 s2 -> if s1 = s2 then 0 else 1);
    mem_node_of_core = (fun c -> c / 6);
  }

(* ------------------------------------------------------------------ *)
(* Niagara: 8 physical cores x 8 hardware threads behind a uniform
   crossbar to a shared LLC.  "Nodes" are the physical cores: two
   contexts of the same core share an L1; everything else is equidistant
   (crossbar), which we encode as 1 hop.  The paper divides threads
   evenly among the physical cores, i.e. round-robin placement. *)

let niagara =
  {
    id = Arch.Niagara;
    name = "Niagara";
    n_cores = 64;
    n_nodes = 8;
    node_of_core = (fun c -> c mod 8);
    node_hops = (fun n1 n2 -> if n1 = n2 then 0 else 1);
    place = (fun i -> i);  (* context i lives on physical core i mod 8 *)
    mem_node_of_core = (fun _ -> 0);  (* single memory node (Table 1) *)
    line_words = 8;
    clock_ghz = 1.2;
    local_work_cycles = 240;
  }

(* ------------------------------------------------------------------ *)
(* Tilera: 36 tiles on a 6x6 mesh; distances are Manhattan distances on
   the grid.  Every tile is a node (distributed LLC home tiles). *)

let tilera_dim = 6

let tilera_tile_hops t1 t2 =
  let x1, y1 = (t1 mod tilera_dim, t1 / tilera_dim) in
  let x2, y2 = (t2 mod tilera_dim, t2 / tilera_dim) in
  abs (x1 - x2) + abs (y1 - y2)

let tilera =
  {
    id = Arch.Tilera;
    name = "Tilera";
    n_cores = 36;
    n_nodes = 36;
    node_of_core = (fun c -> c);
    node_hops = tilera_tile_hops;
    place = (fun i -> i);
    mem_node_of_core = (fun c -> c);  (* home tile = allocating tile *)
    line_words = 8;
    clock_ghz = 1.2;
    local_work_cycles = 120;
  }

let of_platform = function
  | Arch.Opteron -> opteron
  | Arch.Xeon -> xeon
  | Arch.Niagara -> niagara
  | Arch.Tilera -> tilera
  | Arch.Opteron2 -> opteron2
  | Arch.Xeon2 -> xeon2

(* Distance classification used for reporting (Table 2 / Figure 6
   columns).  [Same_core] only exists on the Niagara, [Same_mcm] only on
   the Opteron. *)
let distance_class t c1 c2 : Arch.distance =
  check t c1;
  check t c2;
  match t.id with
  | Arch.Niagara -> if t.node_of_core c1 = t.node_of_core c2 then Same_core else Same_die
  | Arch.Opteron | Arch.Opteron2 ->
      let d1 = t.node_of_core c1 and d2 = t.node_of_core c2 in
      if d1 = d2 then Same_die
      else if opteron_same_mcm d1 d2 then Same_mcm
      else if t.node_hops d1 d2 = 1 then One_hop
      else Two_hops
  | Arch.Xeon | Arch.Xeon2 ->
      let h = t.node_hops (t.node_of_core c1) (t.node_of_core c2) in
      if h = 0 then Same_die else if h = 1 then One_hop else Two_hops
  | Arch.Tilera ->
      let h = t.node_hops (t.node_of_core c1) (t.node_of_core c2) in
      if h = 0 then Same_core
      else if h = 1 then One_hop
      else if h >= 9 then Max_hops
      else Two_hops

(* A representative pair of cores at a given distance class, used by the
   uncontested-lock and message-passing benchmarks (Figures 6 and 9).
   Returns [None] if the platform has no such class. *)
let pair_at_distance t (d : Arch.distance) : (int * int) option =
  let mk a b = if a < t.n_cores && b < t.n_cores then Some (a, b) else None in
  match (t.id, d) with
  | (Arch.Niagara, Same_core) -> mk 0 8 (* contexts 0 and 8 share core 0 *)
  | (Arch.Niagara, Same_die) -> mk 0 1 (* adjacent physical cores *)
  | (Arch.Niagara, _) -> None
  | ((Arch.Opteron | Arch.Opteron2), Same_die) -> mk 0 1
  | (Arch.Opteron, Same_mcm) -> mk 0 6
  | (Arch.Opteron, One_hop) -> mk 0 12
  | (Arch.Opteron, Two_hops) ->
      (* die 0 to an odd die of another MCM: 2 hops *)
      mk 0 18
  | (Arch.Opteron2, One_hop) -> mk 0 4
  | (Arch.Opteron2, _) -> None
  | ((Arch.Xeon | Arch.Xeon2), Same_die) -> mk 0 1
  | (Arch.Xeon, One_hop) -> mk 0 10
  | (Arch.Xeon, Two_hops) -> mk 0 30 (* socket 0 -> socket 3 (0b011) *)
  | (Arch.Xeon2, One_hop) -> mk 0 6
  | (Arch.Xeon2, _) -> None
  | (Arch.Tilera, Same_core) -> None
  | (Arch.Tilera, One_hop) -> mk 0 1
  | (Arch.Tilera, Two_hops) -> mk 0 2
  | (Arch.Tilera, Max_hops) -> mk 0 35 (* opposite mesh corners: 10 hops *)
  | (_, _) -> None
