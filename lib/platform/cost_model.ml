(* Per-platform cache-coherence cost models.

   The *logic* (who supplies the data, when a broadcast happens, what is
   local) follows each platform's protocol as described in the paper's
   sections 3 and 5; the *constants* are calibrated against the paper's
   Table 2/3 measurements (see Latencies).  The model generalizes the
   tables: it covers local hits, requester-held upgrades, atomic
   operations on states the paper does not report, sharer-count effects
   on invalidations, and the Opteron's remote-directory penalty
   (section 5.2). *)

(* What the memory model knows about a cache line when an operation is
   issued.  [owner] holds the line in Modified/Owned/Exclusive; [sharers]
   are cores with Shared/Forward copies (never including [owner]);
   [home] is the node of the line's directory / home tile / memory.
   Fields are mutable so the memory model can refill one scratch view
   per access instead of allocating a record on every operation. *)
type view = {
  mutable state : Arch.cstate;
  mutable owner : int option;
  mutable sharers : Coreset.t;
  mutable home : int;
  mutable llc_dirty : bool;
      (* the last write drained through a store buffer, so on an
         inclusive-LLC machine (Xeon) the home LLC already holds the
         dirty data: a same-die fetch is an LLC hit, not an owner-cache
         round trip.  Cleared by any non-posted write. *)
}

let uncached v = v.owner = None && Coreset.is_empty v.sharers
let n_holders v = Coreset.cardinal v.sharers + if v.owner = None then 0 else 1
let holds v core = v.owner = Some core || Coreset.mem v.sharers core

(* Distance class between two *nodes* of a topology. *)
let node_class (t : Topology.t) n1 n2 : Arch.distance =
  match t.id with
  | Arch.Niagara -> if n1 = n2 then Same_core else Same_die
  | Arch.Opteron | Arch.Opteron2 ->
      if n1 = n2 then Same_die
      else if Topology.opteron_same_mcm n1 n2 then Same_mcm
      else if t.node_hops n1 n2 = 1 then One_hop
      else Two_hops
  | Arch.Xeon | Arch.Xeon2 ->
      let h = t.node_hops n1 n2 in
      if h = 0 then Same_die else if h = 1 then One_hop else Two_hops
  | Arch.Tilera ->
      let h = t.node_hops n1 n2 in
      if h = 0 then Same_core
      else if h = 1 then One_hop
      else if h >= 9 then Max_hops
      else Two_hops

let rank_of_class : Arch.distance -> int = function
  | Same_core -> 0
  | Same_die -> 1
  | Same_mcm -> 2
  | One_hop -> 3
  | Two_hops -> 4
  | Max_hops -> 5

(* The core whose cached copy the protocol reaches for: the owner if one
   exists, otherwise the closest sharer.  [None] for uncached lines. *)
let source_core (t : Topology.t) ~requester v =
  match v.owner with
  | Some o -> Some o
  | None ->
      if Coreset.is_empty v.sharers then None
      else begin
        (* closest sharer by distance class; ties keep the lowest id —
           any same-class representative yields the same latency *)
        let rnode = t.node_of_core requester in
        let best = ref (-1) and best_rank = ref max_int in
        Coreset.iter
          (fun s ->
            let r = rank_of_class (node_class t rnode (t.node_of_core s)) in
            if r < !best_rank then begin
              best_rank := r;
              best := s
            end)
          v.sharers;
        Some !best
      end

let class_to_core t ~requester core =
  node_class t (t.node_of_core requester) (t.node_of_core core)

let class_to_home t ~requester v =
  node_class t (t.node_of_core requester) v.home

(* An exclusive request on a multi-copy line completes only when the
   farthest remote copy has acknowledged its invalidation, so the
   transaction's distance class is the worst over the data source and
   every other holder (the requester's own copy costs nothing to kill).
   This is what makes a queue lock's cross-socket handoff pay the
   remote row even when the releaser itself shares the line. *)
let invalidation_class (t : Topology.t) ~requester v (base : Arch.distance) :
    Arch.distance =
  let rnode = t.node_of_core requester in
  let worst = ref base in
  let consider c =
    if c <> requester then begin
      let d = node_class t rnode (t.node_of_core c) in
      if rank_of_class d > rank_of_class !worst then worst := d
    end
  in
  (match v.owner with Some o -> consider o | None -> ());
  Coreset.iter consider v.sharers;
  !worst

(* -------------------------------------------------------------- *)
(* Opteron: MOESI, broadcast protocol assisted by an *incomplete*
   directory (the HyperTransport-assist probe filter lives in the LLC of
   the line's home node).  Key behaviours (sections 3.1, 5.2, 5.3):
   - loads cost the same regardless of the previous state;
   - stores/atomics on Shared or Owned lines broadcast invalidations to
     all nodes, even when sharing is confined to one node;
   - when the home (directory) node is remote to both requester and
     owner, latency grows with the distance to the directory. *)

let opteron_row4 (d : Arch.distance) (v : int array) =
  match d with
  | Same_die -> v.(0)
  | Same_mcm -> v.(1)
  | One_hop -> v.(2)
  | Two_hops -> v.(3)
  | Same_core -> v.(0)
  | Max_hops -> v.(3)

(* Extra cycles when the probe-filter lookup happens on a node that is
   neither the requester's nor the owner's (section 5.2: the worst case
   raises a 252-cycle transfer to 312). *)
let opteron_directory_penalty (t : Topology.t) ~requester v =
  if uncached v then 0 (* the home node itself supplies the data *)
  else
  let rnode = t.node_of_core requester in
  let home_involved =
    v.home = rnode
    ||
    match v.owner with
    | Some o -> t.node_of_core o = v.home
    | None -> Coreset.exists (fun s -> t.node_of_core s = v.home) v.sharers
  in
  if home_involved then 0 else 30 * max 1 (t.node_hops rnode v.home)

(* Latency rows hoisted to toplevel: building a [| ... |] literal (or a
   [row] partial application) inside the function would allocate on
   every access, and op_latency is the simulator's innermost hot
   call. *)
let o_load_modified = [| 81; 161; 172; 252 |]
let o_load_owned = [| 83; 163; 175; 254 |]
let o_load_exclusive = [| 83; 163; 175; 253 |]
let o_load_shared = [| 83; 164; 176; 254 |]
let o_fill = [| 136; 237; 247; 327 |]
let o_store_me = [| 83; 172; 191; 273 |]
let o_store_owned = [| 244; 255; 286; 291 |]
let o_store_shared = [| 246; 255; 286; 296 |]
let o_atomic_me = [| 110; 197; 216; 296 |]
let o_atomic_shared = [| 272; 283; 312; 332 |]

let opteron_latency (t : Topology.t) (op : Arch.memop) ~requester v =
  let dir_pen = opteron_directory_penalty t ~requester v in
  let class_of_source =
    match source_core t ~requester v with
    | Some c -> class_to_core t ~requester c
    | None -> class_to_home t ~requester v
  in
  let load_cached st =
    match st with
    | Arch.Modified -> opteron_row4 class_of_source o_load_modified
    | Arch.Owned -> opteron_row4 class_of_source o_load_owned
    | Arch.Exclusive -> opteron_row4 class_of_source o_load_exclusive
    | Arch.Shared | Arch.Forward -> opteron_row4 class_of_source o_load_shared
    | Arch.Invalid -> opteron_row4 class_of_source o_fill
  in
  let broadcast_store st =
    (* Invalidation broadcast; grows slightly with the sharer count
       (storing on a line shared by all 48 cores costs 296). *)
    let base =
      opteron_row4
        (invalidation_class t ~requester v class_of_source)
        (match st with Arch.Owned -> o_store_owned | _ -> o_store_shared)
    in
    base + (n_holders v / 12 * 10)
  in
  match op with
  | Arch.Load ->
      if holds v requester then 3 (* L1 hit *)
      else load_cached v.state + dir_pen
  | Arch.Store -> (
      match v.state with
      | Arch.Modified | Arch.Exclusive ->
          if v.owner = Some requester then 3
          else opteron_row4 class_of_source o_store_me + dir_pen
      | Arch.Owned | Arch.Shared | Arch.Forward -> broadcast_store v.state + dir_pen
      | Arch.Invalid -> opteron_row4 class_of_source o_fill + 10 + dir_pen)
  | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap -> (
      match v.state with
      | Arch.Modified | Arch.Exclusive ->
          if v.owner = Some requester then 20
          else opteron_row4 class_of_source o_atomic_me + dir_pen
      | Arch.Owned | Arch.Shared | Arch.Forward ->
          opteron_row4
            (invalidation_class t ~requester v class_of_source)
            o_atomic_shared
          + (n_holders v / 12 * 10)
          + dir_pen
      | Arch.Invalid -> opteron_row4 class_of_source o_fill + 30 + dir_pen)

(* -------------------------------------------------------------- *)
(* Xeon: MESIF, inclusive LLC.  Within a socket the LLC tracks sharers
   and serves Shared loads directly (44 cycles); across sockets snoop
   requests are broadcast.  Operations touching only cores of one socket
   complete locally (section 5.2). *)

let xeon_row3 (d : Arch.distance) (v : int array) =
  match d with
  | Same_die | Same_core | Same_mcm -> v.(0)
  | One_hop -> v.(1)
  | Two_hops | Max_hops -> v.(2)

let x_load_modified = [| 109; 289; 400 |]

(* Same-die fetch of a Modified line whose data already drained to the
   inclusive LLC through the owner's store buffer: served as an LLC hit
   plus the back-invalidate of the owner's L1/L2 copy, not the full
   directory-mediated owner round trip.  (The Table 2 calibration path
   dirties lines with ordinary fenced stores, which never set
   [llc_dirty], so the 109-cycle cell above is untouched.) *)
let x_load_modified_llc_hit = 83
let x_load_exclusive = [| 92; 273; 383 |]
let x_load_shared = [| 44; 223; 334 |]
let x_fill = [| 355; 492; 601 |]
let x_store_modified = [| 115; 320; 431 |]
let x_store_exclusive = [| 115; 315; 425 |]
let x_store_shared = [| 116; 318; 428 |]
let x_atomic_me = [| 120; 324; 430 |]
let x_atomic_shared = [| 113; 312; 423 |]

let xeon_latency (t : Topology.t) (op : Arch.memop) ~requester v =
  let class_of_source =
    match source_core t ~requester v with
    | Some c -> class_to_core t ~requester c
    | None -> class_to_home t ~requester v
  in
  let invalidation_growth =
    (* storing on a line shared by all 80 cores costs 445 *)
    Coreset.cardinal v.sharers / 5
  in
  match op with
  | Arch.Load -> (
      if holds v requester then 5 (* L1 hit *)
      else
        match v.state with
        | Arch.Modified ->
            if v.llc_dirty && rank_of_class class_of_source <= 1 then
              x_load_modified_llc_hit
            else xeon_row3 class_of_source x_load_modified
        | Arch.Exclusive -> xeon_row3 class_of_source x_load_exclusive
        | Arch.Shared | Arch.Forward | Arch.Owned -> xeon_row3 class_of_source x_load_shared
        | Arch.Invalid -> xeon_row3 class_of_source x_fill)
  | Arch.Store -> (
      match v.state with
      | Arch.Modified ->
          if v.owner = Some requester then 5 else xeon_row3 class_of_source x_store_modified
      | Arch.Exclusive ->
          if v.owner = Some requester then 5 else xeon_row3 class_of_source x_store_exclusive
      | Arch.Shared | Arch.Forward | Arch.Owned ->
          xeon_row3 (invalidation_class t ~requester v class_of_source) x_store_shared + invalidation_growth
      | Arch.Invalid -> xeon_row3 class_of_source x_fill + 10)
  | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap -> (
      match v.state with
      | Arch.Modified | Arch.Exclusive ->
          if v.owner = Some requester then 20 else xeon_row3 class_of_source x_atomic_me
      | Arch.Shared | Arch.Forward | Arch.Owned ->
          xeon_row3 (invalidation_class t ~requester v class_of_source) x_atomic_shared + invalidation_growth
      | Arch.Invalid -> xeon_row3 class_of_source x_fill + 25)

(* -------------------------------------------------------------- *)
(* Niagara: uniform crossbar to a shared, duplicate-tag LLC.  Loads hit
   the shared L1 (3) when the previous holder is a context of the same
   physical core, the LLC (24) otherwise; stores are write-through and
   always cost the LLC; latencies do not depend on the sharer count.
   SPARC has no FAI/SWAP instruction: both are CAS-based and slower,
   while the hardware TAS is notably fast (section 5.4). *)

let niagara_pair (d : Arch.distance) (a, b) =
  match d with Same_core -> a | _ -> b

(* Atomic-operation rows hoisted like the x86 arrays above. *)
let nia_load = (3, 24)
let nia_cas = ((71, 66), (76, 66))
let nia_fai = ((108, 99), (99, 99))
let nia_tas = ((64, 55), (67, 55))
let nia_swap = ((95, 90), (93, 90))

let niagara_latency (t : Topology.t) (op : Arch.memop) ~requester v =
  match op with
  | Arch.Load ->
      if holds v requester then 3
      else if uncached v || v.state = Arch.Invalid then 176
      else
        let d =
          match source_core t ~requester v with
          | Some c -> class_to_core t ~requester c
          | None -> Same_die
        in
        niagara_pair d nia_load
  | Arch.Store -> 24
  | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap -> (
      let m_row, s_row =
        match op with
        | Arch.Cas -> nia_cas
        | Arch.Fai -> nia_fai
        | Arch.Tas -> nia_tas
        | Arch.Swap -> nia_swap
        | Arch.Load | Arch.Store -> assert false
      in
      match v.state with
      | Arch.Invalid -> 176 + 20
      | Arch.Modified | Arch.Exclusive | Arch.Owned ->
          let d =
            match source_core t ~requester v with
            | Some c -> class_to_core t ~requester c
            | None -> Same_die
          in
          niagara_pair d m_row
      | Arch.Shared | Arch.Forward ->
          let d =
            match source_core t ~requester v with
            | Some c -> class_to_core t ~requester c
            | None -> Same_die
          in
          niagara_pair d s_row)

(* -------------------------------------------------------------- *)
(* Tilera: distributed directory; each line has a home tile whose L2
   slice acts as the LLC for that line.  Latency grows with the mesh
   distance between the requester and the home tile (about 2 cycles per
   hop); stores on shared lines additionally pay per-sharer
   invalidations (up to ~200 cycles when all 36 tiles share).  FAI is
   executed at the home tile and is the fastest atomic (section 5.4). *)

let tilera_home_hops (t : Topology.t) ~requester v =
  t.node_hops (t.node_of_core requester) v.home

let tilera_scale ~at1 ~at10 h =
  (* Linear interpolation anchored at the paper's one-hop and max-hop
     (10 mesh hops) measurements. *)
  let slope = float_of_int (at10 - at1) /. 9. in
  int_of_float (Float.round (float_of_int at1 +. (slope *. float_of_int (h - 1))))

let til_cas = ((77, 98), (124, 142))
let til_fai = ((51, 71), (82, 102))
let til_tas = ((70, 89), (121, 141))
let til_swap = ((63, 84), (95, 115))

let tilera_latency (t : Topology.t) (op : Arch.memop) ~requester v =
  let h = tilera_home_hops t ~requester v in
  let inval_growth = 3 * max 0 (Coreset.cardinal v.sharers - 1) in
  match op with
  | Arch.Load ->
      if holds v requester then 2 (* local L1 *)
      else if uncached v || v.state = Arch.Invalid then
        if h = 0 then 108 else tilera_scale ~at1:118 ~at10:162 h
      else if h = 0 then 11 (* own L2 slice is the home *)
      else tilera_scale ~at1:45 ~at10:65 h
  | Arch.Store -> (
      match v.state with
      | Arch.Modified | Arch.Exclusive ->
          if v.owner = Some requester then 11
          else if h = 0 then 20
          else tilera_scale ~at1:57 ~at10:77 h
      | Arch.Shared | Arch.Forward | Arch.Owned ->
          (if h = 0 then 49 else tilera_scale ~at1:86 ~at10:106 h)
          + inval_growth
      | Arch.Invalid ->
          (if h = 0 then 108 else tilera_scale ~at1:118 ~at10:162 h) + 10)
  | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap -> (
      let (m1, m10), (s1, s10) =
        match op with
        | Arch.Cas -> til_cas
        | Arch.Fai -> til_fai
        | Arch.Tas -> til_tas
        | Arch.Swap -> til_swap
        | Arch.Load | Arch.Store -> assert false
      in
      match v.state with
      | Arch.Invalid ->
          (if h = 0 then 108 else tilera_scale ~at1:118 ~at10:162 h) + 20
      | Arch.Modified | Arch.Exclusive ->
          if h = 0 then (m1 * 2 / 3) else tilera_scale ~at1:m1 ~at10:m10 h
      | Arch.Shared | Arch.Forward | Arch.Owned ->
          (if h = 0 then (s1 * 2 / 3) else tilera_scale ~at1:s1 ~at10:s10 h)
          + inval_growth)

(* -------------------------------------------------------------- *)
(* Small-scale multi-sockets (section 8): intra-socket behaviour equals
   the large machine's; cross-socket latency is the intra-socket one
   scaled by the measured ratio (1.6x Opteron2, 2.7x Xeon2). *)

let scaled_small big_latency (t : Topology.t) ratio op ~requester v =
  (* Remap the view onto two same-socket cores (0 and 1) of the large
     sibling platform, preserving whether the requester holds a copy;
     this yields the intra-socket cost, which the measured cross/intra
     ratio then scales when the transaction crosses the socket link. *)
  let remap c = if c = requester then 0 else 1 in
  let fake_owner = Option.map remap v.owner in
  let fake_sharers = Coreset.create () in
  Coreset.iter
    (fun s ->
      let m = remap s in
      if Some m <> fake_owner then Coreset.add fake_sharers m)
    v.sharers;
  let fake =
    { state = v.state; owner = fake_owner; sharers = fake_sharers; home = 0;
      llc_dirty = v.llc_dirty }
  in
  let intra = big_latency op ~requester:0 fake in
  let rnode = t.node_of_core requester in
  let cross =
    match source_core t ~requester v with
    | Some c -> t.node_hops rnode (t.node_of_core c) > 0
    | None -> t.node_hops rnode v.home > 0
  in
  let local_hit = holds v requester && op = Arch.Load in
  if cross && not local_hit then
    int_of_float (Float.round (float_of_int intra *. ratio))
  else intra

let opteron2_latency (t : Topology.t) op ~requester v =
  let big = opteron_latency (Topology.of_platform Arch.Opteron) in
  scaled_small big t 1.6 op ~requester v

let xeon2_latency (t : Topology.t) op ~requester v =
  let big = xeon_latency (Topology.of_platform Arch.Xeon) in
  scaled_small big t 2.7 op ~requester v

(* -------------------------------------------------------------- *)

let op_latency (t : Topology.t) (op : Arch.memop) ~requester (v : view) : int =
  Topology.check t requester;
  (* Local-service fast paths.  Each constant mirrors the corresponding
     early case of the model functions above (and, for the small
     two-socket platforms, of [scaled_small], whose cross-socket ratio
     never applies when the requester itself is the data source): the
     general dispatch below would return exactly the same number, but
     only after building its per-call row closures — which dominates the
     simulator's hot path, where most accesses are cache hits. *)
  match op with
  | Arch.Load when holds v requester -> (
      match t.id with
      | Arch.Opteron | Arch.Opteron2 | Arch.Niagara -> 3
      | Arch.Xeon | Arch.Xeon2 -> 5
      | Arch.Tilera -> 2)
  | Arch.Store
    when v.owner = Some requester
         && (v.state = Arch.Modified || v.state = Arch.Exclusive) -> (
      match t.id with
      | Arch.Opteron | Arch.Opteron2 -> 3
      | Arch.Xeon | Arch.Xeon2 -> 5
      | Arch.Niagara -> 24
      | Arch.Tilera -> 11)
  | (Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap)
    when v.owner = Some requester
         && (v.state = Arch.Modified || v.state = Arch.Exclusive)
         && (match t.id with
            | Arch.Opteron | Arch.Opteron2 | Arch.Xeon | Arch.Xeon2 -> true
            | Arch.Niagara | Arch.Tilera -> false) ->
      20
  | _ -> (
      match t.id with
      | Arch.Opteron -> opteron_latency t op ~requester v
      | Arch.Xeon -> xeon_latency t op ~requester v
      | Arch.Niagara -> niagara_latency t op ~requester v
      | Arch.Tilera -> tilera_latency t op ~requester v
      | Arch.Opteron2 -> opteron2_latency t op ~requester v
      | Arch.Xeon2 -> xeon2_latency t op ~requester v)

(* How long the line (or its directory entry / home-tile slot) stays
   busy serving this operation.  A transfer has two phases: a
   serialized phase (home/directory lookup plus the ownership change,
   which must finish before the next request is accepted) and a
   data-return phase that pipelines with the next requester's own
   invalidate or fetch.  Only the serialized phase reserves the line;
   [op_latency] (what the requesting thread experiences, and what the
   Table 2/3 calibration checks read) is untouched.  Per class:
   - x86 loads that probe a dirty remote copy keep most of the
     transaction serialized — the directory forwards one owner probe
     at a time — which is the reload-storm starvation behind Figure 3's
     non-optimized ticket lock;
   - x86 stores hold the line only for the ownership change; the
     invalidation acks collect while the next reader's fetch is
     already in flight (charging the full store latency here is what
     used to double-count one-way message transfers, EXPERIMENTS.md
     gap 3);
   - atomics are locked read-modify-writes: the line is genuinely held
     for the whole transaction, which caps single-line atomic
     throughput at ~1/latency exactly as in Figure 4.
   The uniform banked LLCs of the single-sockets have small service
   times. *)
let occupancy (t : Topology.t) (op : Arch.memop) ~(state : Arch.cstate)
    ~latency : int =
  match (t.id, op) with
  | ((Arch.Opteron | Arch.Xeon | Arch.Opteron2 | Arch.Xeon2), Arch.Load) -> (
      match state with
      | Arch.Modified | Arch.Owned | Arch.Exclusive ->
          (* serialized owner probe; only the tail of the data return
             overlaps with the next request *)
          max 1 (latency * 4 / 5)
      | Arch.Shared | Arch.Forward | Arch.Invalid ->
          (* served by LLC/memory; readers overlap *)
          min latency 30)
  | ((Arch.Opteron | Arch.Xeon | Arch.Opteron2 | Arch.Xeon2), Arch.Store) ->
      (* ownership change only; the invalidation broadcast overlaps *)
      min latency (max 20 (latency * 3 / 10))
  | ((Arch.Opteron | Arch.Xeon | Arch.Opteron2 | Arch.Xeon2), _) -> latency
  | (Arch.Niagara, Arch.Load) -> min latency 8
  | (Arch.Niagara, Arch.Store) -> 12
  | (Arch.Niagara, _) -> min latency 60
  | (Arch.Tilera, Arch.Load) -> min latency 12
  | (Arch.Tilera, _) -> min latency 90

(* ------------------------------------------------------------------ *)
(* Finite-bandwidth interconnect & directory resources.

   Line occupancy above serializes requests *to one line*; these
   resources serialize the shared hardware a message crosses on the
   way: the home node's directory / memory controller (the Opteron's
   probe filter, a Xeon LLC slice + home agent, a Tilera home tile's
   L2 slice controller) and each interconnect link on the route from
   the requester to the data source (HyperTransport hops, QPI hops,
   mesh links).  A transfer holds every resource on its path for a
   platform-specific service time; a later message whose path shares a
   resource starts only once it is free.  This is pure queueing: an
   isolated access still costs exactly [op_latency], so the Table 2/3
   calibration is unchanged — what changes is pipelined traffic
   (message passing, lock handoffs, false sharing across lines with a
   common home), which now pays for bandwidth the old model treated as
   infinite.

   The Niagara has no modeled resources: its crossbar is uniform and
   its LLC is banked by address, so the per-line occupancy already is
   the shared-resource bottleneck (and with a single memory node, a
   home-directory resource would serialize the whole machine in a way
   the real part does not).

   Resource ids are dense ints so the memory model can keep busy-until
   times in flat arrays: [0, n_nodes) are home directories, the rest
   unordered node-pair links. *)

let n_resources (t : Topology.t) = t.n_nodes + (t.n_nodes * t.n_nodes)

let link_resource (t : Topology.t) a b =
  let lo = min a b and hi = max a b in
  t.n_nodes + (lo * t.n_nodes) + hi

(* A path is at most: home directory + 10 mesh links (opposite Tilera
   corners). *)
let max_path_len = 12

let has_resources (t : Topology.t) =
  match t.id with Arch.Niagara -> false | _ -> true

(* Fill [path] with the resources crossed by [requester]'s non-local
   access on a line described by [v]: the home directory plus each
   link on a deterministic route from the requester's node to the data
   source's node (the home node when the line is uncached).  Returns
   the number of entries written.  Fully node-local transfers (home
   and data source both on the requester's node) cross no finite
   resource: on-die bandwidth to the local controller is an order of
   magnitude above the cross-node fabric's, so only traffic that
   leaves the node queues.  Routes are deterministic so the same
   access always queues on the same hardware: one direct link per hop
   on the multi-sockets (2-hop pairs route through the lowest
   intermediate node minimizing the detour), dimension-ordered
   X-then-Y on the Tilera mesh. *)
let fill_path (t : Topology.t) ~requester (v : view) (path : int array) : int =
  match t.id with
  | Arch.Niagara -> 0
  | Arch.Tilera ->
      let rnode = t.node_of_core requester in
      let dst = v.home in
      if rnode = dst then 0
      else begin
      path.(0) <- dst;
      let n = ref 1 in
      let dim = Topology.tilera_dim in
      let x = ref (rnode mod dim) and y = ref (rnode / dim) in
      let dx = dst mod dim and dy = dst / dim in
      let cur = ref rnode in
      while !x <> dx do
        let nx = if dx > !x then !x + 1 else !x - 1 in
        let nxt = (!y * dim) + nx in
        path.(!n) <- link_resource t !cur nxt;
        incr n;
        cur := nxt;
        x := nx
      done;
      while !y <> dy do
        let ny = if dy > !y then !y + 1 else !y - 1 in
        let nxt = (ny * dim) + !x in
        path.(!n) <- link_resource t !cur nxt;
        incr n;
        cur := nxt;
        y := ny
      done;
      !n
      end
  | Arch.Opteron | Arch.Opteron2 | Arch.Xeon | Arch.Xeon2 ->
      let rnode = t.node_of_core requester in
      let snode =
        match source_core t ~requester v with
        | Some c -> t.node_of_core c
        | None -> v.home
      in
      if rnode = snode && rnode = v.home then 0
      else begin
      path.(0) <- v.home;
      let n = ref 1 in
      let h = t.node_hops rnode snode in
      if h = 1 then begin
        path.(1) <- link_resource t rnode snode;
        n := 2
      end
      else if h >= 2 then begin
        let best = ref rnode and best_cost = ref max_int in
        for m = 0 to t.n_nodes - 1 do
          if m <> rnode && m <> snode then begin
            let c = t.node_hops rnode m + t.node_hops m snode in
            if c < !best_cost then begin
              best_cost := c;
              best := m
            end
          end
        done;
        path.(1) <- link_resource t rnode !best;
        path.(2) <- link_resource t !best snode;
        n := 3
      end;
      !n
      end

(* How long one message holds a home directory: a lookup/update slot in
   the probe filter (Opteron), LLC slice home agent (Xeon) or home
   tile's slice controller (Tilera). *)
let dir_hold (t : Topology.t) (_op : Arch.memop) : int =
  match t.id with
  | Arch.Niagara -> 0
  | Arch.Opteron | Arch.Opteron2 | Arch.Xeon | Arch.Xeon2 | Arch.Tilera -> 1

(* How long one message holds each link it crosses.  Exclusive
   transfers (stores, atomics) carry the full line payload plus the
   invalidation/ack traffic, so they occupy the path for a large
   fraction of their service latency; read transfers pipeline their
   data return harder.  The floor is the link's per-message
   serialization cost (header + payload flits). *)
let link_hold (t : Topology.t) (op : Arch.memop) ~latency:_ : int =
  match t.id with
  | Arch.Niagara -> 0
  | Arch.Opteron | Arch.Opteron2 -> (
      match op with
      | Arch.Load -> 16
      | Arch.Store | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap -> 24)
  | Arch.Xeon | Arch.Xeon2 -> (
      match op with
      | Arch.Load -> 12
      | Arch.Store | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap -> 18)
  | Arch.Tilera -> (
      (* the DDC hashes homes across tiles on the real machine; with
         every allocation homed on one tile here, full-size mesh holds
         would overcharge the two links into that tile *)
      match op with
      | Arch.Load -> 2
      | Arch.Store | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap -> 3)

let resource_hold (t : Topology.t) (op : Arch.memop) ~latency r : int =
  if r < t.n_nodes then dir_hold t op else link_hold t op ~latency

(* Smallest positive hold any message can impose on a shared resource —
   the floor a PDES lookahead window must respect now that one shard's
   traffic can delay another's through a shared link or directory.
   [None] on platforms with no modeled resources. *)
let min_resource_hold (t : Topology.t) : int option =
  if not (has_resources t) then None
  else
    let m = ref max_int in
    List.iter
      (fun (op : Arch.memop) ->
        let d = dir_hold t op and l = link_hold t op ~latency:1 in
        if d > 0 && d < !m then m := d;
        if l > 0 && l < !m then m := l)
      [ Arch.Load; Arch.Store; Arch.Cas ];
    if !m = max_int then None else Some !m
