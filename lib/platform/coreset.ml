(* A fixed-capacity set of core ids, stored as a two-word bitset.

   Sharer sets are the hottest collection in the simulator: every
   memory access tests membership and every store-class transition
   counts and clears them.  Two OCaml ints cover 126 cores — well above
   the largest platform (the 80-core Xeon) — and keep all operations
   allocation-free, unlike the [int list] this replaces. *)

type t = { mutable w0 : int; mutable w1 : int }

let capacity = 126

let check c =
  if c < 0 || c >= capacity then
    invalid_arg (Printf.sprintf "Coreset: core %d out of range" c)

let create () = { w0 = 0; w1 = 0 }
let clear s =
  s.w0 <- 0;
  s.w1 <- 0

let is_empty s = s.w0 = 0 && s.w1 = 0

let mem s c =
  check c;
  if c < 63 then s.w0 land (1 lsl c) <> 0 else s.w1 land (1 lsl (c - 63)) <> 0

let add s c =
  check c;
  if c < 63 then s.w0 <- s.w0 lor (1 lsl c)
  else s.w1 <- s.w1 lor (1 lsl (c - 63))

let remove s c =
  check c;
  if c < 63 then s.w0 <- s.w0 land lnot (1 lsl c)
  else s.w1 <- s.w1 land lnot (1 lsl (c - 63))

(* Kernighan popcount: one iteration per set bit, and sharer sets are
   usually tiny. *)
let popcount w =
  let n = ref 0 and w = ref w in
  while !w <> 0 do
    w := !w land (!w - 1);
    incr n
  done;
  !n

let cardinal s = popcount s.w0 + popcount s.w1

let bit_index b =
  (* [b] is a one-bit word *)
  let i = ref 0 and b = ref b in
  while !b <> 1 do
    b := !b lsr 1;
    incr i
  done;
  !i

let iter_word f base w =
  let w = ref w in
  while !w <> 0 do
    let b = !w land (- !w) in
    f (base + bit_index b);
    w := !w land (!w - 1)
  done

(* Ascending core-id order. *)
let iter f s =
  iter_word f 0 s.w0;
  iter_word f 63 s.w1

let fold f s acc =
  let acc = ref acc in
  iter (fun c -> acc := f c !acc) s;
  !acc

let exists p s =
  try
    iter (fun c -> if p c then raise Exit) s;
    false
  with Exit -> true

let elements s = List.rev (fold (fun c acc -> c :: acc) s [])

let of_list l =
  let s = create () in
  List.iter (fun c -> add s c) l;
  s

let equal a b = a.w0 = b.w0 && a.w1 = b.w1
let copy s = { w0 = s.w0; w1 = s.w1 }

(* Overwrite [dst] with [src]'s members in place (rollback restore:
   the destination set is aliased by cost-model views, so it must keep
   its identity). *)
let assign dst src =
  dst.w0 <- src.w0;
  dst.w1 <- src.w1
