(* The simulated ssht, used to regenerate Figure 11.  Buckets live in
   simulated memory: a count line plus [capacity] (key, value) line
   pairs, protected by one lock per bucket.  Gets scan the key lines —
   mostly-read buckets stay Shared in the readers' caches, which is the
   prefetch/locality effect the paper credits for the multi-sockets'
   low-contention scalability (section 6.3). *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_simlocks

type bucket = {
  lock : Lock_type.t;
  count : Memory.addr;
  keys : Memory.addr array;
  vals : Memory.addr array;
}

type t = {
  platform : Platform.t;
  n_buckets : int;
  capacity : int; (* entries per bucket *)
  buckets : bucket array;
}

let hash_key ~n_buckets k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int mod n_buckets

(* Keys stored as k+1 so 0 means "empty slot". *)
let create ?(lock_algo = Simlock.Ticket) ?(home_core = 0) mem platform
    ~n_threads ~n_buckets ~capacity : t =
  if n_buckets <= 0 || capacity <= 0 then
    invalid_arg "Ssht_sim.create: sizes must be positive";
  let mk_bucket _ =
    {
      lock = Simlock.create ~home_core mem platform ~n_threads lock_algo;
      count = Memory.alloc ~home_core mem;
      keys = Array.init capacity (fun _ -> Memory.alloc ~home_core mem);
      vals = Array.init capacity (fun _ -> Memory.alloc ~home_core mem);
    }
  in
  {
    platform;
    n_buckets;
    capacity;
    buckets = Array.init n_buckets mk_bucket;
  }

let bucket_of t k = t.buckets.(hash_key ~n_buckets:t.n_buckets k)

(* Scan for the slot holding key [k]; returns the slot index or -1.
   Costs one simulated load per inspected key line. *)
let find_slot t b k =
  let n = min (Sim.load b.count) t.capacity in
  let rec scan i =
    if i >= n then -1
    else if Sim.load b.keys.(i) = k + 1 then i
    else scan (i + 1)
  in
  scan 0

let get t ~tid k : int option =
  let b = bucket_of t k in
  b.lock.Lock_type.acquire ~tid;
  let slot = find_slot t b k in
  let r = if slot < 0 then None else Some (Sim.load b.vals.(slot)) in
  b.lock.Lock_type.release ~tid;
  r

(* [get] for benchmark loops: same simulated accesses, but returns
   [default] on a miss instead of boxing every hit in an option. *)
let get_or t ~tid k ~default : int =
  let b = bucket_of t k in
  b.lock.Lock_type.acquire ~tid;
  let slot = find_slot t b k in
  let r = if slot < 0 then default else Sim.load b.vals.(slot) in
  b.lock.Lock_type.release ~tid;
  r

(* Returns [true] when freshly inserted; [false] on update or when the
   bucket is full (the paper keeps the table size constant, so inserts
   into full buckets are dropped like overflow chains would absorb). *)
let put t ~tid k v : bool =
  let b = bucket_of t k in
  b.lock.Lock_type.acquire ~tid;
  let slot = find_slot t b k in
  let inserted =
    if slot >= 0 then begin
      Sim.store b.vals.(slot) v;
      false
    end
    else begin
      let n = Sim.load b.count in
      if n >= t.capacity then false
      else begin
        Sim.store b.keys.(n) (k + 1);
        Sim.store b.vals.(n) v;
        Sim.store b.count (n + 1);
        true
      end
    end
  in
  b.lock.Lock_type.release ~tid;
  inserted

let remove t ~tid k : bool =
  let b = bucket_of t k in
  b.lock.Lock_type.acquire ~tid;
  let slot = find_slot t b k in
  let removed =
    if slot < 0 then false
    else begin
      let n = Sim.load b.count in
      (* move the last entry into the vacated slot *)
      if slot < n - 1 then begin
        Sim.store b.keys.(slot) (Sim.load b.keys.(n - 1));
        Sim.store b.vals.(slot) (Sim.load b.vals.(n - 1))
      end;
      Sim.store b.keys.(n - 1) 0;
      Sim.store b.count (n - 1);
      true
    end
  in
  b.lock.Lock_type.release ~tid;
  removed

(* Fill the table to 50% capacity so the paper's 80/10/10 mix keeps its
   size steady.  Must run inside a simulated thread. *)
let prefill t ~tid ~key_space =
  let target = t.n_buckets * t.capacity / 2 in
  let inserted = ref 0 in
  let k = ref 0 in
  while !inserted < target && !k < key_space do
    if put t ~tid !k (!k * 3) then incr inserted;
    incr k
  done

(* Total entries, read without cost (debug/test). *)
let debug_size mem t =
  Array.fold_left
    (fun acc b -> acc + min (Memory.peek mem b.count) t.capacity)
    0 t.buckets
