(* The Figure 12 model: Memcached's set path on the simulator.

   A set in Memcached 1.4 is: request parsing and item assembly
   (core-local work), the bucket lock for the hash-table insert, and the
   global cache/slab locks for the LRU and allocation bookkeeping; every
   few operations a maintenance task holds a global lock a bit longer.
   Networking and memory dominate the per-op cost (the paper's absolute
   numbers are hundreds of Kops/s, not Mops/s); synchronization decides
   how the plateau scales, which is what Figure 12 compares across lock
   algorithms (MUTEX vs TAS/TICKET/MCS: 29-50% speedups). *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_simlocks
open Ssync_workload

type config = {
  n_buckets : int;
  per_op_work : int; (* core-local cycles per request (parse, hash, copy) *)
  bucket_cs_lines : int; (* lines touched under the bucket lock *)
  global_cs_lines : int; (* lines touched under the global lock *)
  global_cs_work : int; (* extra cycles holding the global lock *)
  maintenance_every : int;
}

let default_config (p : Platform.t) =
  {
    n_buckets = 512;
    (* per-request networking/parsing/copy work, calibrated so a single
       thread serves ~30-45 Kops/s as in the paper's Figure 12 *)
    per_op_work =
      (match p.Platform.id with
      | Arch.Opteron | Arch.Opteron2 -> 48_000
      | Arch.Xeon | Arch.Xeon2 -> 46_000
      | Arch.Niagara -> 34_000
      | Arch.Tilera -> 36_000);
    bucket_cs_lines = 3;
    global_cs_lines = 6;
    (* LRU/slab/stats bookkeeping under the global locks: Memcached's
       serialized fraction, which caps the plateau at a few hundred
       Kops/s and makes the lock algorithm matter *)
    global_cs_work = 3_500;
    maintenance_every = 16;
  }

(* Throughput (Kops/s) of the set-only test with [threads] threads.
   [faults] injects deterministic preemption/jitter/crash interference
   into the run (default none). *)
let set_throughput ?faults ?(duration = 3_000_000) ?config pid lock_algo
    ~threads : float =
  let p = Platform.get pid in
  let cfg = match config with Some c -> c | None -> default_config p in
  let cfg =
    (* hardware-thread co-residency slows per-op local work (Niagara) *)
    {
      cfg with
      per_op_work =
        cfg.per_op_work * Platform.local_work_for p ~threads
        / max 1 (Platform.local_work p);
    }
  in
  let r =
    Harness.run ?faults p ~threads ~duration
      ~setup:(fun mem ->
        let home = Platform.place p 0 in
        let mk algo = Simlock.create ~home_core:home mem p ~n_threads:threads algo in
        let bucket_locks = Array.init cfg.n_buckets (fun _ -> mk lock_algo) in
        let bucket_data =
          Array.init cfg.n_buckets (fun _ ->
              Array.init cfg.bucket_cs_lines (fun _ ->
                  Memory.alloc ~home_core:home mem))
        in
        let global_lock = mk lock_algo in
        let global_data =
          Array.init cfg.global_cs_lines (fun _ -> Memory.alloc ~home_core:home mem)
        in
        (bucket_locks, bucket_data, global_lock, global_data))
      ~body:(fun (bucket_locks, bucket_data, global_lock, global_data) _mem
                 ~tid ~deadline ->
        let rng = Rng.create ~seed:(tid + 1) in
        let n = ref 0 in
        while Sim.now () < deadline do
          (* request parsing / item assembly *)
          Sim.pause cfg.per_op_work;
          let bi = Rng.int rng cfg.n_buckets in
          (* hash-table insert under the bucket lock; plain for-loops
             keep the critical sections free of per-element closure
             calls (same access order as [Array.iter]) *)
          let bl = bucket_locks.(bi) and bd = bucket_data.(bi) in
          bl.Lock_type.acquire ~tid;
          for i = 0 to Array.length bd - 1 do
            let a = bd.(i) in
            Sim.store a (Sim.load a + 1)
          done;
          bl.Lock_type.release ~tid;
          (* LRU/slab bookkeeping under the global lock; periodically a
             longer maintenance section *)
          global_lock.Lock_type.acquire ~tid;
          for i = 0 to Array.length global_data - 1 do
            let a = global_data.(i) in
            Sim.store a (Sim.load a + 1)
          done;
          Sim.pause cfg.global_cs_work;
          if !n mod cfg.maintenance_every = cfg.maintenance_every - 1 then
            Sim.pause 2500;
          global_lock.Lock_type.release ~tid;
          incr n
        done;
        !n)
  in
  (* Kops/s *)
  r.Harness.mops *. 1000.

(* The four locks of Figure 12. *)
let figure12_locks =
  [ Simlock.Mutex; Simlock.Tas; Simlock.Ticket; Simlock.Mcs ]
