(** Deterministic fault injection for the simulation engine.

    A {!spec} describes OS-style interference — thread preemption
    (including lock holders), memory-op latency jitter, crash-stop
    threads — injected into a simulation.  All faults are drawn from
    per-thread deterministic streams derived from [seed]: identical
    specs reproduce identical schedules.  {!none} (the default) injects
    nothing and leaves runs bit-identical to the fault-free engine. *)

type spec = {
  seed : int;  (** root of the per-thread fault streams *)
  preempt_prob : float;
      (** per-scheduling-point probability that the thread is
          descheduled — including while holding a lock *)
  preempt_cycles : int * int;
      (** [(lo, hi)] bounds (inclusive, exclusive) of a preemption's
          duration in cycles *)
  jitter_prob : float;
      (** per-memory-op probability of added completion latency *)
  jitter_cycles : int * int;  (** [(lo, hi)] bounds of the added latency *)
  crashes : (int * int) list;
      (** [(tid, at)]: thread [tid] crash-stops at virtual time [at] —
          it never executes at or past that time; whatever it holds is
          never released *)
}

val none : spec
(** No faults; consumes no random draws. *)

val is_none : spec -> bool

val parkable : spec -> bool
(** A spec under which event-driven parking stays exact: only latency
    jitter enabled (no preemption, no crashes).  Jitter stretches probe
    latencies but never reshapes the schedule, so elided inert probes
    are equivalent parked or polled. *)

val preemption : ?seed:int -> ?cycles:int * int -> float -> spec
(** [preemption prob] preempts at each scheduling point with
    probability [prob] for a duration drawn from [cycles]. *)

val jitter : ?seed:int -> ?cycles:int * int -> float -> spec
(** [jitter prob] adds latency drawn from [cycles] to a memory op with
    probability [prob]. *)

val crash_stop : ?seed:int -> (int * int) list -> spec
(** [crash_stop [(tid, at); ...]] crash-stops each [tid] at time [at]. *)

val validate : spec -> spec
(** Raises [Invalid_argument] on malformed probabilities/ranges. *)

(**/**)

(* Engine internals. *)
val stream : spec -> tid:int -> Ssync_workload.Rng.t
val sample : Ssync_workload.Rng.t -> int * int -> int
val crash_time : spec -> tid:int -> int
