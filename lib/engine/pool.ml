(* A fixed-size domain pool for fanning independent simulation jobs
   across cores.

   Jobs are pure thunks: each one builds its own [Sim.t] (simulations
   share no mutable state — the engine's counters are domain-local and
   everything else hangs off the per-run [Sim.t]/[Memory.t]), so any
   assignment of jobs to domains computes the same values.  [run]
   therefore returns results indexed by submission order no matter
   which domain ran what, which is what lets the benchmark driver
   render tables byte-identically at any [--jobs] count.

   Scheduling is a single atomic work counter: domains pull the next
   unclaimed job index until none remain.  That gives dynamic load
   balance (job durations vary by orders of magnitude across figure
   sections) without any ordering hazard, because ordering lives in the
   results array, not in execution time.

   Each job's engine-counter delta ([Sim.perf]) and wall time are
   captured inside the domain that executed it; callers sum the per-job
   stats into per-section totals instead of reading a global. *)

module Trace = Ssync_trace.Trace
module Metrics = Ssync_metrics.Metrics

type stats = {
  wall_ns : int;  (** wall-clock spent executing the job *)
  perf : Sim.perf;  (** engine-counter delta attributable to the job *)
  trace : Trace.t option;
      (** the job's trace, when tracing was requested ([Trace.requested]):
          one fresh sink per job, installed in the executing domain, so
          the per-job traces are independent of the job-to-domain
          assignment and merge deterministically in submission order *)
  metrics : Metrics.t option;
      (** the job's virtual-time metrics ([Metrics.requested]): like
          [trace], one fresh sink per job installed around it in the
          executing domain — samples are keyed by virtual time and
          stable ids only, so the dumps are byte-identical at any
          [--jobs] count *)
}

type 'a outcome = Ok_r of 'a | Error_r of exn | Not_run

exception Job_failures of (int * exn) list

let () =
  Printexc.register_printer (function
    | Job_failures fails ->
        Some
          (Printf.sprintf "Pool.Job_failures: %d jobs failed\n%s"
             (List.length fails)
             (String.concat "\n"
                (List.map
                   (fun (i, e) ->
                     Printf.sprintf "  job %d: %s" i (Printexc.to_string e))
                   fails)))
    | _ -> None)

let default_jobs () = Domain.recommended_domain_count ()

(* Run [thunks.(i)] capturing its result, engine-counter delta and wall
   time.  Must execute in the domain that owns the slot's work so the
   domain-local counters attribute correctly. *)
let exec_one ~traced ~sampled (thunks : (unit -> 'a) array)
    (results : 'a outcome array) (stats : stats array) i =
  let trace = if traced then Some (Trace.start ()) else None in
  let metrics = if sampled then Some (Metrics.start ()) else None in
  let before = Sim.cumulative_perf () in
  let t0 = Unix.gettimeofday () in
  (results.(i) <-
    (match thunks.(i) () with
    | v -> Ok_r v
    | exception e -> Error_r e));
  let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  if traced then ignore (Trace.stop ());
  if sampled then ignore (Metrics.stop ());
  stats.(i) <-
    {
      wall_ns;
      perf = Sim.perf_diff (Sim.cumulative_perf ()) before;
      trace;
      metrics;
    }

let finish (results : 'a outcome array) (stats : stats array) :
    ('a * stats) array =
  (* Collect every failure first: with independent jobs fanned wide, a
     single re-raised exception hides how broad the breakage was.  One
     failure re-raises the original exception unchanged (backtraces,
     matching callers); several raise [Job_failures], lowest index
     first. *)
  let fails =
    Array.to_seq results
    |> Seq.mapi (fun i r -> (i, r))
    |> Seq.filter_map (function
         | i, Error_r e -> Some (i, e)
         | _ -> None)
    |> List.of_seq
  in
  (match fails with
  | [] -> ()
  | [ (_, e) ] -> raise e
  | _ :: _ -> raise (Job_failures fails));
  Array.mapi
    (fun i r ->
      match r with
      | Ok_r v -> (v, stats.(i))
      | Error_r _ -> assert false
      | Not_run ->
          (* only reachable if a domain died without raising, which
             [Domain.join] would already have surfaced *)
          invalid_arg (Printf.sprintf "Pool.run: job %d never ran" i))
    results

let run ?jobs (thunks : (unit -> 'a) array) : ('a * stats) array =
  let n = Array.length thunks in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.run: jobs must be >= 1";
  let results = Array.make n Not_run in
  let stats =
    Array.make n
      { wall_ns = 0; perf = Sim.perf_zero; trace = None; metrics = None }
  in
  (* read once in the submitting domain; workers capture the values, so
     no domain races on the flags themselves *)
  let traced = !Trace.requested in
  let sampled = !Metrics.requested in
  if jobs = 1 || n <= 1 then
    (* Inline path: no domains, no atomics — the reference behaviour
       the parallel path must reproduce byte-for-byte. *)
    for i = 0 to n - 1 do
      exec_one ~traced ~sampled thunks results stats i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          exec_one ~traced ~sampled thunks results stats i;
          loop ()
        end
      in
      loop ()
    in
    let n_domains = min (jobs - 1) (n - 1) in
    let domains = Array.init n_domains (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  (* Re-raises the exception of the lowest-indexed failed job, so error
     reporting is as deterministic as success is. *)
  finish results stats

let total_stats (results : ('a * stats) array) : stats =
  Array.fold_left
    (fun acc (_, s) ->
      {
        wall_ns = acc.wall_ns + s.wall_ns;
        perf = Sim.perf_add acc.perf s.perf;
        trace = None;
        metrics = None;
      })
    { wall_ns = 0; perf = Sim.perf_zero; trace = None; metrics = None }
    results

(* Per-job traces in submission order (empty when tracing was off). *)
let traces (results : ('a * stats) array) : Trace.t list =
  Array.to_list results |> List.filter_map (fun (_, s) -> s.trace)

(* Per-job metrics sinks in submission order (empty when sampling was
   off). *)
let metrics (results : ('a * stats) array) : Metrics.t list =
  Array.to_list results |> List.filter_map (fun (_, s) -> s.metrics)
