(* Trace-fed invariant checker: replays a run's structured trace and
   asserts the safety/liveness properties every lock in the suite must
   preserve, including under crash-stop faults.

   All thread ids here are ENGINE tids (spawn order): that is what the
   engine, the memory model and the instrumented lock wrappers stamp on
   events, and what [Sim.tid_crashed] speaks.  Callers holding
   workload-indexed data (e.g. [Harness.result.completed]) must map
   through [Harness.spawn_order] first.

   Checked properties:

   - Mutual exclusion, strict.  At most one thread holds each lock at
     a time.  The instrumented wrapper emits [E_rel] at release ENTRY
     and every grant is produced by an effect issued inside the
     predecessor's release, so in the ring a lock's release always
     precedes its successor's [E_acq]: any grant that finds a live
     holder outstanding is a genuine double grant.  A grant past a
     crash-stopped holder is a recovery steal, counted, not flagged
     (the corpse's release will never arrive).

   - Bounded overtaking (FIFO locks only).  A thread that started
     waiting before another must not be overtaken more than [slack]
     times; queue locks grant in arrival order, so unbounded overtaking
     there is a lost queue position (e.g. a botched dead-node
     excision).  [E_wait] is emitted before the queue-entry operation
     issues, so two near-simultaneous waiters can enqueue in either
     order: the default slack (threads + 3) absorbs that and still
     catches systematic queue-jumping.  Crash-stopped threads are
     exempt (excising a corpse legitimately reorders its neighbours).

   - No lost wakeups.  A thread whose last park has no matching wake
     must have crashed or completed; otherwise a releaser forgot it
     (the blocking lock's missed-wakeup bug class).

   - Post-recovery liveness.  Every spawned thread that did not crash
     must have completed its body: survivors of a crash must not be
     left wedged on state the corpse held. *)

module Trace = Ssync_trace.Trace

type kind = Mutual_exclusion | Overtaking | Lost_wakeup | Liveness

let kind_name = function
  | Mutual_exclusion -> "mutual-exclusion"
  | Overtaking -> "bounded-overtaking"
  | Lost_wakeup -> "lost-wakeup"
  | Liveness -> "liveness"

type violation = {
  v_kind : kind;
  v_lock : string; (* "" when not about a specific lock *)
  v_tid : int;
  v_ts : int;
  v_detail : string;
}

type report = {
  violations : violation list;
  acquisitions : int;
  releases : int;
  steals : int; (* grants that recovered past a crash-stopped holder *)
  max_overtakes : int; (* worst overtaking any live FIFO waiter saw *)
  crashed : int list; (* engine tids crash-stopped during the run *)
  spawned : int list;
  truncated : bool; (* ring overflowed: early events were dropped *)
}

let ok r = r.violations = []

(* The locks whose plain protocol grants in strict arrival order.
   TAS/TTAS are competitive (no order), MUTEX's futex queue is FIFO
   per wake batch but its fast path barges, and the hierarchical
   cohorts trade global FIFO for locality by design. *)
let fifo_lock name =
  match name with
  | "TICKET" | "TICKET-SPIN" | "TICKET-PFW" | "ARRAY" | "MCS" | "CLH" -> true
  | _ -> false

type lock_state = {
  mutable outstanding : (int * int) list; (* (tid, acq ts), newest first *)
  wait_since : (int, int) Hashtbl.t; (* tid -> E_wait ts *)
  overtaken : (int, int) Hashtbl.t; (* tid -> times overtaken while waiting *)
}

let check ?slack ?(fifo = fifo_lock) ~(completed : int -> bool) (tr : Trace.t)
    : report =
  let locks : (int, lock_state) Hashtbl.t = Hashtbl.create 8 in
  let state lk =
    match Hashtbl.find_opt locks lk with
    | Some s -> s
    | None ->
        let s =
          {
            outstanding = [];
            wait_since = Hashtbl.create 16;
            overtaken = Hashtbl.create 16;
          }
        in
        Hashtbl.add locks lk s;
        s
  in
  let crash_ts : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let crashed tid = Hashtbl.mem crash_ts tid in
  let parked : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let spawned = ref [] in
  let tids = Hashtbl.create 16 in
  let violations = ref [] in
  let acqs = ref 0 and rels = ref 0 and steals = ref 0 in
  let flag v = violations := v :: !violations in
  Trace.iter tr (fun { Trace.ts; ev } ->
      match ev with
      | Trace.E_thread { tid; _ } ->
          spawned := tid :: !spawned;
          Hashtbl.replace tids tid ()
      | Trace.E_fault { tid; kind = Trace.Crash; _ } ->
          if not (Hashtbl.mem crash_ts tid) then Hashtbl.add crash_ts tid ts
      | Trace.E_fault _ -> ()
      | Trace.E_wait { tid; lock } ->
          Hashtbl.replace tids tid ();
          let s = state lock in
          Hashtbl.replace s.wait_since tid ts
      | Trace.E_acq { tid; lock; _ } ->
          Hashtbl.replace tids tid ();
          incr acqs;
          let s = state lock in
          (* grants past a crash-stopped holder are recovery steals *)
          let live, dead =
            List.partition
              (fun (h, _) ->
                match Hashtbl.find_opt crash_ts h with
                | Some ct -> ct > ts
                | None -> true)
              s.outstanding
          in
          steals := !steals + List.length dead;
          s.outstanding <- live;
          if s.outstanding <> [] then
            flag
              {
                v_kind = Mutual_exclusion;
                v_lock = Trace.lock_name tr lock;
                v_tid = tid;
                v_ts = ts;
                v_detail =
                  Printf.sprintf
                    "grant to t%d with %d live holders outstanding (%s)" tid
                    (List.length s.outstanding)
                    (String.concat ","
                       (List.map
                          (fun (h, at) -> Printf.sprintf "t%d@%d" h at)
                          s.outstanding));
              };
          s.outstanding <- (tid, ts) :: s.outstanding;
          (* everyone who started waiting before this grant's waiter and
             is still waiting has been overtaken once *)
          let my_wait =
            match Hashtbl.find_opt s.wait_since tid with
            | Some w -> w
            | None -> ts
          in
          Hashtbl.remove s.wait_since tid;
          Hashtbl.iter
            (fun w w_ts ->
              if w_ts < my_wait then
                Hashtbl.replace s.overtaken w
                  (1 + Option.value ~default:0 (Hashtbl.find_opt s.overtaken w)))
            s.wait_since;
          Hashtbl.remove s.overtaken tid
      | Trace.E_rel { tid; lock; _ } ->
          incr rels;
          let s = state lock in
          if List.mem_assoc tid s.outstanding then
            s.outstanding <- List.remove_assoc tid s.outstanding
          else
            flag
              {
                v_kind = Mutual_exclusion;
                v_lock = Trace.lock_name tr lock;
                v_tid = tid;
                v_ts = ts;
                v_detail =
                  Printf.sprintf "t%d released without holding" tid;
              }
      | Trace.E_park { tid; _ } -> Hashtbl.replace parked tid ts
      | Trace.E_wake { tid; _ } -> Hashtbl.remove parked tid
      | Trace.E_xfer _ | Trace.E_send _ | Trace.E_recv _ -> ()
      | Trace.E_window _ | Trace.E_window_done _ | Trace.E_spec_abort _
      | Trace.E_ckpt | Trace.E_restore | Trace.E_promote _ | Trace.E_replay _
      | Trace.E_escalate ->
          (* speculation-lifecycle bookkeeping: no thread semantics *)
          ());
  (* bounded overtaking, judged after the full replay so the slack can
     default to the observed thread count *)
  let n_tids = Hashtbl.length tids in
  let slack = match slack with Some s -> s | None -> n_tids + 3 in
  let max_ot = ref 0 in
  Hashtbl.iter
    (fun lk s ->
      Hashtbl.iter
        (fun tid n ->
          if not (crashed tid) then begin
            if n > !max_ot then max_ot := n;
            if fifo (Trace.lock_name tr lk) && n > slack then
              flag
                {
                  v_kind = Overtaking;
                  v_lock = Trace.lock_name tr lk;
                  v_tid = tid;
                  v_ts = Option.value ~default:0
                      (Hashtbl.find_opt s.wait_since tid);
                  v_detail =
                    Printf.sprintf "t%d overtaken %d times (slack %d)" tid n
                      slack;
                }
          end)
        s.overtaken)
    locks;
  (* lost wakeups: parked, never woken, neither crashed nor done *)
  Hashtbl.iter
    (fun tid ts ->
      if not (crashed tid) && not (completed tid) then
        flag
          {
            v_kind = Lost_wakeup;
            v_lock = "";
            v_tid = tid;
            v_ts = ts;
            v_detail =
              Printf.sprintf "t%d parked at %d and was never woken" tid ts;
          })
    parked;
  (* post-recovery liveness: non-crashed spawned threads completed *)
  List.iter
    (fun tid ->
      if not (crashed tid) && not (completed tid) then
        flag
          {
            v_kind = Liveness;
            v_lock = "";
            v_tid = tid;
            v_ts = 0;
            v_detail =
              Printf.sprintf
                "t%d survived every fault but never completed its body" tid;
          })
    !spawned;
  {
    violations = List.rev !violations;
    acquisitions = !acqs;
    releases = !rels;
    steals = !steals;
    max_overtakes = !max_ot;
    crashed =
      List.sort compare (Hashtbl.fold (fun tid _ acc -> tid :: acc) crash_ts []);
    spawned = List.sort compare !spawned;
    truncated = Trace.dropped tr > 0;
  }

let pp_violation v =
  Printf.sprintf "[%s]%s t%d @%d: %s" (kind_name v.v_kind)
    (if v.v_lock = "" then "" else " " ^ v.v_lock)
    v.v_tid v.v_ts v.v_detail
