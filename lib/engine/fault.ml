(* Deterministic fault injection for the simulation engine.

   The paper measures on dedicated machines with pinned threads; real
   deployments add OS preemption, latency jitter and dying threads —
   exactly where lock algorithms diverge hardest (a preempted ticket- or
   queue-lock holder stalls every waiter, while a preempted TAS waiter
   is harmless).  A [spec] describes such interference; the engine draws
   every fault from per-thread [Ssync_workload.Rng] streams derived from
   [seed], so identical seeds reproduce identical schedules regardless
   of how many threads run or in which order events fire.

   [none] (the default everywhere) injects nothing and consumes no
   random draws: runs without a spec are bit-identical to runs of the
   engine before this layer existed. *)

type spec = {
  seed : int;  (** root of the per-thread fault streams *)
  preempt_prob : float;
      (** per-scheduling-point probability that the thread is
          descheduled — including while holding a lock *)
  preempt_cycles : int * int;
      (** [(lo, hi)] bounds (inclusive, exclusive) of a preemption's
          duration in cycles *)
  jitter_prob : float;
      (** per-memory-op probability of added completion latency *)
  jitter_cycles : int * int;  (** [(lo, hi)] bounds of the added latency *)
  crashes : (int * int) list;
      (** [(tid, at)]: thread [tid] crash-stops at virtual time [at] —
          it never executes at or past that time; whatever it holds
          (locks, queue slots) is never released *)
}

let none =
  {
    seed = 0;
    preempt_prob = 0.;
    preempt_cycles = (0, 0);
    jitter_prob = 0.;
    jitter_cycles = (0, 0);
    crashes = [];
  }

let is_none s = s == none || s = none

(* Jitter only stretches a probe's completion latency; it never changes
   which thread runs next or removes a thread from the schedule, so a
   parked waiter misses nothing a polling waiter would have seen.
   Preemption and crash-stop do reshape the schedule, hence the
   polling fallback for those. *)
let parkable s = s.preempt_prob = 0. && s.crashes = []

let preemption ?(seed = 1) ?(cycles = (2_000, 20_000)) prob =
  if prob < 0. || prob > 1. then invalid_arg "Fault.preemption: prob in [0,1]";
  { none with seed; preempt_prob = prob; preempt_cycles = cycles }

let jitter ?(seed = 1) ?(cycles = (50, 500)) prob =
  if prob < 0. || prob > 1. then invalid_arg "Fault.jitter: prob in [0,1]";
  { none with seed; jitter_prob = prob; jitter_cycles = cycles }

let crash_stop ?(seed = 1) crashes = { none with seed; crashes }

let validate s =
  let range name (lo, hi) prob =
    if prob < 0. || prob > 1. then
      invalid_arg (Printf.sprintf "Fault: %s probability outside [0,1]" name);
    if prob > 0. && (lo < 0 || hi <= lo) then
      invalid_arg (Printf.sprintf "Fault: %s cycle range must be 0 <= lo < hi" name)
  in
  range "preempt" s.preempt_cycles s.preempt_prob;
  range "jitter" s.jitter_cycles s.jitter_prob;
  List.iter
    (fun (tid, at) ->
      if tid < 0 || at < 0 then
        invalid_arg "Fault: crash (tid, at) must be non-negative")
    s.crashes;
  s

(* Per-thread fault stream: independent of every other thread's draws,
   so adding a thread (or reordering events) never perturbs the faults
   injected into the rest of the schedule. *)
let stream s ~tid = Ssync_workload.Rng.create ~seed:((s.seed * 1_000_003) + tid)

let sample rng (lo, hi) =
  if hi <= lo then lo else lo + Ssync_workload.Rng.int rng (hi - lo)

let crash_time s ~tid =
  match List.assoc_opt tid s.crashes with Some at -> at | None -> -1
