(** Trace-fed invariant checker for lock runs, crash-aware.

    Replays a {!Ssync_trace.Trace.t} and asserts: mutual exclusion
    (recovery steals past crash-stopped holders are counted, not
    flagged), bounded overtaking for FIFO locks, no lost wakeups, and
    post-recovery liveness (every non-crashed thread completed).

    All thread ids are ENGINE tids (spawn order) — what the engine and
    the instrumented lock wrappers stamp on events.  Map
    workload-indexed data through {!Harness.spawn_order} first. *)

type kind = Mutual_exclusion | Overtaking | Lost_wakeup | Liveness

val kind_name : kind -> string

type violation = {
  v_kind : kind;
  v_lock : string;  (** [""] when not about a specific lock *)
  v_tid : int;
  v_ts : int;
  v_detail : string;
}

type report = {
  violations : violation list;
  acquisitions : int;
  releases : int;
  steals : int;  (** grants that recovered past a crash-stopped holder *)
  max_overtakes : int;  (** worst overtaking any live FIFO waiter saw *)
  crashed : int list;  (** engine tids crash-stopped during the run *)
  spawned : int list;
  truncated : bool;  (** the trace ring overflowed: checks are partial *)
}

val ok : report -> bool
(** No violations. *)

val fifo_lock : string -> bool
(** Default FIFO classification by lock name: the ticket variants,
    ARRAY, MCS and CLH grant in arrival order; TAS/TTAS/MUTEX and the
    hierarchical cohorts do not. *)

val check :
  ?slack:int ->
  ?fifo:(string -> bool) ->
  completed:(int -> bool) ->
  Ssync_trace.Trace.t ->
  report
(** [check ~completed tr] replays [tr].  [completed] maps an engine tid
    to whether that thread's body returned ({!Harness.result.completed}
    composed with {!Harness.spawn_order}).  [slack] bounds tolerated
    overtaking for FIFO locks (default: observed thread count + 3,
    absorbing the wait-announce/queue-entry race).  [fifo] overrides
    the FIFO classification. *)

val pp_violation : violation -> string
