(* A min-priority queue of timed events.  Ties are broken by insertion
   order so simulation runs are deterministic and FIFO-fair.

   The store is a 4-ary implicit min-heap in struct-of-arrays layout:
   half the levels of the binary heap it replaces, and the four
   children of a node sit in consecutive array slots, so a sift-down
   touches two cache lines per level instead of four scattered words.
   (A calendar-style near-future lane was tried here and reverted: at
   the queue sizes the simulator actually runs — tens of events —
   sift paths are 2–3 levels, and the lane's binary search per push
   plus two-lane head comparison per pop cost more than they saved.)

   The heap is popped through a caller-owned [popped] cell, so the
   simulator's main loop moves millions of events without allocating:
   no event records, no [Some] wrappers.  The earliest queued time is
   cached in [next_t] and maintained by push/pop — the engine consults
   the queue head once per resumption to decide direct-running, which
   must cost one field read, not a heap inspection. *)

type t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable runs : (unit -> unit) array;
  mutable size : int;
  mutable next_seq : int;
  mutable next_t : int; (* cached [times.(0)]; [max_int] when empty *)
}

(* Allocating view of a popped event, kept for tests and casual
   callers; the simulator uses [pop_into]. *)
type event = { time : int; seq : int; run : unit -> unit }

(* Caller-owned cell refilled by [pop_into]. *)
type popped = { mutable p_time : int; mutable p_run : unit -> unit }

let no_run () = ()
let make_popped () = { p_time = 0; p_run = no_run }

let create () =
  {
    times = Array.make 64 0;
    seqs = Array.make 64 0;
    runs = Array.make 64 no_run;
    size = 0;
    next_seq = 0;
    next_t = max_int;
  }

let is_empty t = t.size = 0
let length t = t.size

(* Reset for reuse across runs: drops every queued event and releases
   the closures, but keeps the warmed arrays.  This is also the whole
   of the queue's speculative-rollback story: checkpoints are taken
   before any thread is spawned, so a replay never restores queue
   contents — it [clear]s and re-spawns, which rebuilds the schedule
   from scratch with [next_seq] back at zero (same seq numbers, same
   FIFO tie-breaks, byte-identical replay). *)
let clear t =
  Array.fill t.runs 0 t.size no_run;
  t.size <- 0;
  t.next_seq <- 0;
  t.next_t <- max_int

let before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let rn = t.runs.(i) in
  t.runs.(i) <- t.runs.(j);
  t.runs.(j) <- rn

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let first = (4 * i) + 1 in
  if first < t.size then begin
    let last = min (first + 3) (t.size - 1) in
    let smallest = ref i in
    for c = first to last do
      if before t c !smallest then smallest := c
    done;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end
  end

(* Grow copies only the live entries — the dead tail of the old arrays
   (cleared slots from popped events) is never touched. *)
let grow t =
  let cap = Array.length t.times in
  let times = Array.make (2 * cap) 0
  and seqs = Array.make (2 * cap) 0
  and runs = Array.make (2 * cap) no_run in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.runs 0 runs 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.runs <- runs

let push t ~time run =
  if time < 0 then invalid_arg "Event_queue.push: negative time";
  if t.size = Array.length t.times then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if time < t.next_t then t.next_t <- time;
  t.times.(t.size) <- time;
  t.seqs.(t.size) <- seq;
  t.runs.(t.size) <- run;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Remove the root, assuming size > 0, and refresh the cached head. *)
let remove_root t =
  t.size <- t.size - 1;
  t.times.(0) <- t.times.(t.size);
  t.seqs.(0) <- t.seqs.(t.size);
  t.runs.(0) <- t.runs.(t.size);
  t.runs.(t.size) <- no_run;
  (* release the closure *)
  if t.size > 0 then begin
    sift_down t 0;
    t.next_t <- t.times.(0)
  end
  else t.next_t <- max_int

let pop_into t (p : popped) =
  if t.size = 0 then false
  else begin
    p.p_time <- t.times.(0);
    p.p_run <- t.runs.(0);
    remove_root t;
    true
  end

let pop t =
  if t.size = 0 then None
  else begin
    let e = { time = t.times.(0); seq = t.seqs.(0); run = t.runs.(0) } in
    remove_root t;
    Some e
  end

let min_time t = if t.size = 0 then None else Some t.next_t

(* Non-allocating variant for the simulator's hot path: one field read. *)
let next_time t = t.next_t
