(* The common measurement harness used by the paper-style benchmarks:
   spawn [threads] simulated threads placed per the platform's policy,
   synchronize them on a barrier, let each run its body until a virtual
   deadline, and report per-thread operation counts and throughput.

   The harness degrades gracefully under pathological schedules: a
   thread that never reaches its deadline (preempted holder, crash-stop
   victim spinning on a dead lock, livelock) no longer vanishes into a
   silently understated throughput number — [completed] records which
   threads returned, and [health] carries the engine's structured
   verdict ([Stalled {tid; core; last_progress}]) plus fault-injection
   counters.  Callers that care must check [completed_all].

   [run] is a pure function of its arguments: every invocation builds
   its own [Sim.t]/[Memory.t], draws from its own seeded RNG, and the
   engine's perf counters are domain-local — so concurrent runs on
   different domains (see [Pool]) compute exactly what serial runs
   would, and [result] is a plain value safe to ship across domains. *)

open Ssync_platform
open Ssync_coherence

type result = {
  platform : Platform.t;
  threads : int;
  ops : int array;       (* operations completed per thread *)
  completed : bool array; (* per thread: did the body return? *)
  duration : int;        (* measured window, cycles *)
  total_ops : int;
  mops : float;          (* total throughput in Mops/s (paper's unit) *)
  health : Sim.health;   (* engine verdict + fault counters *)
  perf : Sim.perf;       (* engine counters: events, parks, wall-clock *)
}

let total_of ops = Array.fold_left ( + ) 0 ops
let completed_all r = Array.for_all (fun c -> c) r.completed

(* Real threads leave the start barrier in arbitrary order; a
   noise-free start in tid order would freeze the tid-sorted
   (= socket-sorted) arrival order into every queue lock's wait
   list, silently giving the flat queue locks an almost perfectly
   hierarchical (same-die) handoff pattern no real machine exhibits.
   Spawning in a hashed order freezes a pseudorandom arrival order
   instead: same-time events execute in spawn order, so this permutes
   who wins the initial races without moving a single virtual
   timestamp (which would perturb park/poll tie-breaking).

   Exposed because the mapping workload tid <-> engine tid hangs off
   it: engine tid [k] (spawn order, what crash schedules and trace
   events speak) runs workload tid [(spawn_order ~threads).(k)].
   Fault/chaos tooling needs both directions. *)
let spawn_order ~threads =
  let order = Array.init threads (fun tid -> tid) in
  Array.sort
    (fun a b ->
      compare
        ((a * 2654435761) lsr 7 land 1023, a)
        ((b * 2654435761) lsr 7 land 1023, b))
    order;
  order

(* [body shared mem ~tid ~deadline] runs inside a simulated thread and
   returns the number of operations it completed; it must poll
   [Sim.now () < deadline] to terminate.  [setup] builds the shared
   state (locks, buffers...) before any thread starts; allocations
   default to the first participating thread's memory node, as in the
   paper (section 6).  [faults] (default: none) injects deterministic
   preemption/jitter/crash faults into the run. *)
let run ?(faults = Fault.none) ?parking (platform : Platform.t) ~threads
    ~duration ~(setup : Memory.t -> 'a)
    ~(body : 'a -> Memory.t -> tid:int -> deadline:int -> int) : result =
  if threads <= 0 then invalid_arg "Harness.run: threads must be positive";
  if threads > Platform.n_cores platform then
    invalid_arg
      (Printf.sprintf "Harness.run: %d threads > %d cores on %s" threads
         (Platform.n_cores platform) platform.Platform.name);
  (* The attempt is a pure function of the arguments — it builds its
     own simulation, memory, and result arrays — so a sharded attempt
     that aborts with [Shard_conflict] is simply re-run serially. *)
  Sim.serial_fallback (fun () ->
      let sim = Sim.create ~faults ?parking platform in
      let mem = Sim.memory sim in
      let shared = setup mem in
      let ops = Array.make threads 0 in
      let completed = Array.make threads false in
      let barrier = Sim.make_barrier threads in
      let spawn_order = spawn_order ~threads in
      Array.iter
        (fun tid ->
          let core = Platform.place platform tid in
          Sim.spawn sim ~core (fun () ->
              Sim.await barrier;
              let deadline = Sim.now () + duration in
              ops.(tid) <- body shared mem ~tid ~deadline;
              completed.(tid) <- true))
        spawn_order;
      let _, health = Sim.run_health sim ~until:(duration * 4) in
      let total_ops = total_of ops in
      {
        platform;
        threads;
        ops;
        completed;
        duration;
        total_ops;
        mops = Platform.mops platform ~ops:total_ops ~cycles:duration;
        health;
        perf = Sim.perf sim;
      })

(* Latency-style harness: like [run] but the body accumulates cycles of
   interest (e.g. acquire+release latency) into its return value
   together with the op count; returns mean cycles per op. *)
let run_latency ?faults ?parking platform ~threads ~duration ~setup
    ~(body : 'a -> Memory.t -> tid:int -> deadline:int -> int * int) :
    result * float =
  let cycles_acc = Array.make threads 0 in
  let r =
    run ?faults ?parking platform ~threads ~duration ~setup
      ~body:(fun shared mem ~tid ~deadline ->
        let n, cy = body shared mem ~tid ~deadline in
        cycles_acc.(tid) <- cy;
        n)
  in
  let total_cy = total_of cycles_acc in
  let mean =
    if r.total_ops = 0 then 0.
    else float_of_int total_cy /. float_of_int r.total_ops
  in
  (r, mean)
