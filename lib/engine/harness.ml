(* The common measurement harness used by the paper-style benchmarks:
   spawn [threads] simulated threads placed per the platform's policy,
   synchronize them on a barrier, let each run its body until a virtual
   deadline, and report per-thread operation counts and throughput.

   The harness degrades gracefully under pathological schedules: a
   thread that never reaches its deadline (preempted holder, crash-stop
   victim spinning on a dead lock, livelock) no longer vanishes into a
   silently understated throughput number — [completed] records which
   threads returned, and [health] carries the engine's structured
   verdict ([Stalled {tid; core; last_progress}]) plus fault-injection
   counters.  Callers that care must check [completed_all].

   [run] is a pure function of its arguments: every invocation builds
   its own [Sim.t]/[Memory.t], draws from its own seeded RNG, and the
   engine's perf counters are domain-local — so concurrent runs on
   different domains (see [Pool]) compute exactly what serial runs
   would, and [result] is a plain value safe to ship across domains. *)

open Ssync_platform
open Ssync_coherence

type result = {
  platform : Platform.t;
  threads : int;
  ops : int array;       (* operations completed per thread *)
  completed : bool array; (* per thread: did the body return? *)
  duration : int;        (* measured window, cycles *)
  total_ops : int;
  mops : float;          (* total throughput in Mops/s (paper's unit) *)
  health : Sim.health;   (* engine verdict + fault counters *)
  perf : Sim.perf;       (* engine counters: events, parks, wall-clock *)
}

let total_of ops = Array.fold_left ( + ) 0 ops
let completed_all r = Array.for_all (fun c -> c) r.completed

(* Real threads leave the start barrier in arbitrary order; a
   noise-free start in tid order would freeze the tid-sorted
   (= socket-sorted) arrival order into every queue lock's wait
   list, silently giving the flat queue locks an almost perfectly
   hierarchical (same-die) handoff pattern no real machine exhibits.
   Spawning in a hashed order freezes a pseudorandom arrival order
   instead: same-time events execute in spawn order, so this permutes
   who wins the initial races without moving a single virtual
   timestamp (which would perturb park/poll tie-breaking).

   Exposed because the mapping workload tid <-> engine tid hangs off
   it: engine tid [k] (spawn order, what crash schedules and trace
   events speak) runs workload tid [(spawn_order ~threads).(k)].
   Fault/chaos tooling needs both directions. *)
let spawn_order ~threads =
  let order = Array.init threads (fun tid -> tid) in
  Array.sort
    (fun a b ->
      compare
        ((a * 2654435761) lsr 7 land 1023, a)
        ((b * 2654435761) lsr 7 land 1023, b))
    order;
  order

(* ---------------- adaptive shard policy + speculation -------------- *)

(* How a (platform, threads, duration) job should execute, learned from
   previous runs in this domain.  [Go_serial] is sticky: a job that
   escalated once (its conflicts were unattributable or promotion did
   not converge) pays no further sharded double-runs.  [Go_sharded]
   carries the promoted-line set a previous run converged on, so the
   next run pre-promotes and skips the aborted attempts that discovered
   it — line ids are deterministic across runs of the same pure job.
   Domain-local like the engine's perf counters: [Pool] workers each
   learn their own table, trading a few duplicated discoveries for
   lock-freedom. *)
type shard_policy = Go_serial | Go_sharded of int list

let policy_key : (string * int * int, shard_policy) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let policy_of platform ~threads ~duration =
  Hashtbl.find_opt
    (Domain.DLS.get policy_key)
    (platform.Platform.name, threads, duration)

let learn_policy platform ~threads ~duration p =
  Hashtbl.replace
    (Domain.DLS.get policy_key)
    (platform.Platform.name, threads, duration)
    p

(* Shards the spawned threads would actually span under the current
   [Sim.default_shards].  A span of one (every thread on one topology
   node, or one thread total) makes sharded execution pure overhead —
   window barriers and conflict tracking with nothing to parallelize —
   so [run] forces such jobs serial without paying an attempt. *)
let shard_span (platform : Platform.t) ~threads =
  let topo = platform.Platform.topo in
  let nshards = min !Sim.default_shards topo.Topology.n_nodes in
  if nshards <= 1 then 1
  else begin
    let seen = Array.make nshards false in
    let span = ref 0 in
    for tid = 0 to threads - 1 do
      let s =
        topo.Topology.node_of_core (Platform.place platform tid) mod nshards
      in
      if not seen.(s) then begin
        seen.(s) <- true;
        incr span
      end
    done;
    !span
  end

(* Failed speculative replays before an attempt escalates to serial. *)
let max_replays = 3

(* [body shared mem ~tid ~deadline] runs inside a simulated thread and
   returns the number of operations it completed; it must poll
   [Sim.now () < deadline] to terminate.  [setup] builds the shared
   state (locks, buffers...) before any thread starts; allocations
   default to the first participating thread's memory node, as in the
   paper (section 6).  [faults] (default: none) injects deterministic
   preemption/jitter/crash faults into the run. *)
let run ?(faults = Fault.none) ?parking (platform : Platform.t) ~threads
    ~duration ~(setup : Memory.t -> 'a)
    ~(body : 'a -> Memory.t -> tid:int -> deadline:int -> int) : result =
  if threads <= 0 then invalid_arg "Harness.run: threads must be positive";
  if threads > Platform.n_cores platform then
    invalid_arg
      (Printf.sprintf "Harness.run: %d threads > %d cores on %s" threads
         (Platform.n_cores platform) platform.Platform.name);
  (* The attempt is a pure function of the arguments — it builds its
     own simulation, memory, and result arrays — so an aborted sharded
     attempt can be rolled back and replayed (with the conflicting
     lines promoted), and an attempt that escalates past the replay
     budget is simply re-run serially. *)
  Sim.serial_fallback (fun () ->
      let policy = policy_of platform ~threads ~duration in
      (* three ways a job is known-serial before paying an attempt: it
         escalated before (sticky policy), its threads span one shard
         (windows with nothing to parallelize), or the host has no
         worker domains to drain shards on ([Sim.shard_domains]
         defaults to multicore-ness; measured on a single-core host,
         sharded execution is 5-20% pure overhead) *)
      let forced_serial =
        policy = Some Go_serial
        || shard_span platform ~threads <= 1
        || not !Sim.shard_domains
      in
      let sim =
        if forced_serial then Sim.create ~faults ?parking ~shards:1 platform
        else Sim.create ~faults ?parking platform
      in
      let mem = Sim.memory sim in
      Fun.protect
        ~finally:(fun () -> Memory.dispose mem)
        (fun () ->
          let shared = setup mem in
          let speculate =
            Sim.shards_of sim > 1 && not (Memory.serial_required mem)
          in
          if speculate then begin
            (match policy with
            | Some (Go_sharded promoted) ->
                (* stale or colliding cache entries at worst promote
                   lines that never conflict (slower, still exact) or
                   name ids this run never allocated — skip those *)
                (try Sim.promote sim promoted with _ -> ())
            | _ -> ());
            Memory.checkpoint mem
          end;
          let spawn_order = spawn_order ~threads in
          let attempt () =
            let ops = Array.make threads 0 in
            let completed = Array.make threads false in
            let barrier = Sim.make_barrier threads in
            Array.iter
              (fun tid ->
                let core = Platform.place platform tid in
                Sim.spawn sim ~core (fun () ->
                    Sim.await barrier;
                    let deadline = Sim.now () + duration in
                    ops.(tid) <- body shared mem ~tid ~deadline;
                    completed.(tid) <- true))
              spawn_order;
            let _, health = Sim.run_health sim ~until:(duration * 4) in
            (ops, completed, health)
          in
          let rec attempt_loop n =
            try attempt ()
            with Sim.Shard_conflict when speculate ->
              let lines = Sim.conflict_lines sim in
              let promoted = Sim.promoted_lines sim in
              let stuck =
                lines = []
                || List.for_all (fun li -> List.mem li promoted) lines
              in
              if n >= max_replays || Sim.hard_aborted sim || stuck then begin
                (* speculation cannot fix this job: remember that and
                   hand it to [serial_fallback]'s serial re-run *)
                learn_policy platform ~threads ~duration Go_serial;
                raise Sim.Shard_conflict
              end
              else begin
                Sim.promote sim lines;
                Sim.record_replay sim;
                Sim.reset_for_replay sim;
                Memory.restore mem;
                attempt_loop (n + 1)
              end
          in
          let ops, completed, health = attempt_loop 0 in
          if speculate && Sim.promoted_lines sim <> [] then
            learn_policy platform ~threads ~duration
              (Go_sharded (Sim.promoted_lines sim));
          let total_ops = total_of ops in
          {
            platform;
            threads;
            ops;
            completed;
            duration;
            total_ops;
            mops = Platform.mops platform ~ops:total_ops ~cycles:duration;
            health;
            perf = Sim.perf sim;
          }))

(* Latency-style harness: like [run] but the body accumulates cycles of
   interest (e.g. acquire+release latency) into its return value
   together with the op count; returns mean cycles per op. *)
let run_latency ?faults ?parking platform ~threads ~duration ~setup
    ~(body : 'a -> Memory.t -> tid:int -> deadline:int -> int * int) :
    result * float =
  let cycles_acc = Array.make threads 0 in
  let r =
    run ?faults ?parking platform ~threads ~duration ~setup
      ~body:(fun shared mem ~tid ~deadline ->
        let n, cy = body shared mem ~tid ~deadline in
        cycles_acc.(tid) <- cy;
        n)
  in
  let total_cy = total_of cycles_acc in
  let mean =
    if r.total_ops = 0 then 0.
    else float_of_int total_cy /. float_of_int r.total_ops
  in
  (r, mean)
