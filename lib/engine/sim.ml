(* The discrete-event simulation engine.

   Simulated threads are ordinary OCaml functions running as coroutines
   via effect handlers: every memory operation (or explicit pause)
   performs an effect; the engine computes the operation's virtual-time
   cost against the coherent memory model and resumes the thread when it
   completes.  This lets the lock/message-passing algorithms be written
   in direct style, exactly as their native counterparts.

   Spin loops go through a dedicated effect ([E_spin], surfaced as
   {!spin_load} and friends): semantically the loop "probe; while the
   result equals [while_]: pause [poll]; probe", but executed
   event-driven — once the probes reach a steady state (inert local
   hits), the thread parks on the line's wait list inside the memory
   model and is woken, on the exact virtual-time grid the poll loop
   would have used, by the next real access to the line.  Simulated
   timestamps are preserved; only the O(poll-iterations) event churn
   collapses to O(1).  Under fault injection the same effect falls back
   to literal pause/probe stepping so every scheduling point draws from
   the per-thread fault streams in the original order.

   Two robustness layers sit on top of the pure engine:

   - Fault injection ([Fault.spec], strictly opt-in): every scheduling
     point — the completion of a memory op or pause — may be perturbed
     by deterministic, seeded preemption/jitter draws, and threads may
     crash-stop.  With [Fault.none] (the default) no draws are consumed
     and runs are bit-identical to the fault-free engine.

   - A progress watchdog: the engine records per-thread last-progress
     timestamps, so [run_health] can report *why* a run ended —
     [Completed] (all threads returned) versus [Stalled] (live threads
     remained at the [until] backstop or deadlocked on an empty queue)
     — instead of silently discarding the tail of the schedule.

   {2 Sharded (PDES) execution}

   With [create ~shards:n] (n > 1) the engine runs conservative-window
   parallel DES: simulated threads and cache lines are partitioned into
   shards along topology-node boundaries, each shard owns a private
   event queue and memory slot, and shards advance together through
   bounded time windows [w, w + lookahead) where [lookahead] is the
   minimum cross-node transfer latency of the platform's cost model.
   Inside a window a shard may touch only lines *resident* on it; any
   cross-shard interaction — a memory access to a foreign-resident
   line, a barrier arrival, a parker operation, a wakeup of a foreign
   waiter — is deferred as a timestamped entry into the shard's outbox
   and executed by a single-threaded coordinator at the window barrier,
   in global (time, per-shard FIFO) order, migrating line residency to
   the requester as it goes.

   The coherence model mutates line state at access-issue time, so the
   true lookahead on a *shared* line is zero: windows alone cannot make
   cross-shard interleavings safe.  Soundness therefore comes from
   conflict detection, not from the window width (which is only a
   batching heuristic): every access stamps its line with its (time,
   tid) key and any out-of-order service — including same-time
   different-thread pairs, whose serial tie-break order (queue
   insertion order) is unreconstructable across shards — aborts the
   entire attempt with [Shard_conflict].  Jobs are pure (they build
   their own [Sim.t]/[Memory.t]), so the serial run is the semantics,
   and a sharded run either produces byte-identical results or aborts.
   Workloads whose threads genuinely share hot lines (lock contention
   sweeps) conflict in nearly every window; partitioned workloads
   (per-node data, message passing between windows longer than the
   lookahead) keep their shards independent and scale.

   {2 Speculative replay}

   An abort no longer condemns the whole job to a serial re-run
   unconditionally.  Conflicts are *attributed*: a line-stamp failure
   records the conflicting line, a resource violation carries the
   implicated lines in its [Memory.Sharded_violation] payload, and the
   harness ([Harness.run]) rolls the memory back to a checkpoint taken
   at virtual time 0 (see [Memory.checkpoint]) and replays the attempt
   with those lines *promoted* — tagged with a residency sentinel no
   shard matches, so every access to them defers to the inter-window
   coordinator and executes in ascending global time, serial-within-
   window.  Replays are deterministic (jobs are pure, allocation order
   is fixed, the rollback restores every observable), so a replay
   either survives with the enlarged promoted set or surfaces the next
   conflict; after K failed replays — or on a conflict with no line
   attribution (cross-shard peek, same-time parker tie, mid-window
   alloc, runaway) — the attempt *escalates*: [Shard_conflict]
   propagates to [serial_fallback], which re-runs the job serially.
   [perf] reports the whole story per run: [windows],
   [speculative_replays], [promoted_lines], [serial_escalations].

   Tracing and crash-stop fault injection force [shards = 1] at
   creation: traces record engine-internal event order, and the
   crash bookkeeping mutates global state mid-run; both are defined by
   the serial engine.  The one exception is [Trace.allow_sharded]
   (speculation-lifecycle tracing): the per-access hooks stay dark on
   worker domains and only coordinator-context lifecycle events —
   window open/close, aborts, checkpoint/restore, promotion, replay,
   escalation — reach the ring, so sharding stays on.

   {2 Virtual-time metrics}

   With a [Metrics] sink installed (the [--metrics] / heatmap paths)
   the engine charges thread run-state gauges — how many simulated
   threads were runnable, spinning or parked on each virtual-time
   bucket — plus park/wake event counts into the executing shard's
   slot accumulator, alongside the coherence-level samples the memory
   model records there.  Accumulators ride [Memory]'s branch / merge /
   rollback discipline, so aborted speculative attempts leave no
   samples and totals are identical at any shard count.  The
   strategy-dependent tallies (windows, replays, promotions) go
   straight to the domain sink instead: they describe the execution
   strategy, not the simulated machine, and are excluded from
   deterministic dumps. *)

open Ssync_platform
open Ssync_coherence
module Rng = Ssync_workload.Rng
module Trace = Ssync_trace.Trace
module Metrics = Ssync_metrics.Metrics

(* Per-thread bookkeeping for faults and the watchdog.  [pend_ik] /
   [pend_uk] hold the thread's suspended continuation between the
   scheduling of its resumption and the event firing; [run_ik] /
   [run_uk] are closures allocated once per thread that continue it —
   the hot path schedules them directly instead of allocating a fresh
   closure per operation.  A coroutine has at most one pending
   resumption, so one slot of each type suffices. *)
type thread_state = {
  tid : int;
  core : int;
  sh : shard; (* the shard this thread executes on (shard 0 serially) *)
  rng : Rng.t; (* this thread's private fault stream *)
  crash_at : int; (* -1 = never *)
  mutable last_progress : int;
  mutable finished : bool;
  mutable crashed : bool;
  mutable pend_ik : (int, unit) Effect.Deep.continuation option;
  mutable pend_iv : int;
  mutable pend_uk : (unit, unit) Effect.Deep.continuation option;
  mutable run_ik : unit -> unit;
  mutable run_uk : unit -> unit;
  mutable m_state : int;
      (* metrics run-state: 0 runnable / 1 spinning / 2 parked /
         3 dead — codes chosen so [Metrics.k_runnable + m_state] is
         the gauge kind.  Maintained only while metrics are on. *)
  mutable m_since : int; (* virtual time the current run-state began *)
}

(* One shard of the simulation.  Serial execution is the one-shard
   special case: shard 0 owns the only queue and the only clock, and
   every per-shard counter below is simply the engine's counter.
   Sharded counters are summed by the (single-threaded) run loop at
   barriers and run end — each worker domain writes only its own
   shard's fields inside a window, so nothing races. *)
and shard = {
  sid : int;
  q : Event_queue.t;
  slot : Memory.slot; (* this shard's memory scratch + stats *)
  popped : Event_queue.popped; (* preallocated pop-out cell *)
  mutable s_now : int; (* this shard's virtual clock *)
  mutable s_window_end : int;
      (* inclusive bound on event times this shard may execute:
         [max_int] serially, the window end inside a window, [-1] while
         the coordinator drains outboxes (disables direct-run) *)
  mutable s_fuel : int; (* consecutive direct-run steps since last pop *)
  mutable s_events : int; (* logical resumptions: pops + direct-runs *)
  mutable s_live : int;
  mutable s_parks : int;
  mutable s_wakeups : int;
  mutable s_preempt : int;
  mutable s_jitter : int;
  mutable out : outentry list; (* deferred cross-shard work, reversed *)
  mutable s_conflicts : int list;
      (* line ids implicated in conflicts this shard detected in the
         current attempt (per-shard so worker domains never race) *)
  mutable s_hard : bool;
      (* this shard hit a non-attributable conflict (peek, alloc,
         user-code exception): the attempt must escalate to serial
         instead of replaying speculatively *)
}

(* A deferred cross-shard operation: executed by the coordinator at the
   window barrier, in ascending [o_time] with per-shard FIFO order
   preserved (the serial tie-break for same-time entries of one shard;
   same-time entries of *different* shards have no reconstructable
   serial order — harmless for commuting entries, caught by the line
   stamps or the parker-order check otherwise). *)
and outentry = {
  o_time : int;
  o_kind : int; (* kind_wake / kind_mem / kind_barrier / kind_parker *)
  o_addr : int; (* line to migrate to [o_st]'s shard, -1 = none *)
  o_st : thread_state;
  o_run : unit -> unit;
}

let kind_wake = 0
let kind_mem = 1
let kind_barrier = 2
let kind_parker = 3

(* Cumulative engine counters for the benchmark harness's perf report.
   Domain-local: each domain accumulates the simulations it ran itself,
   so concurrent sims never race on the totals and a parallel harness
   can attribute counters per job by snapshotting around it in the
   executing domain. *)
type counters = {
  mutable c_events : int;
  mutable c_parks : int;
  mutable c_wakeups : int;
  mutable c_elided : int;
  mutable c_link_queued : int;
  mutable c_sim_cycles : int;
  mutable c_wall_ns : int;
  mutable c_windows : int;
  mutable c_replays : int;
  mutable c_promoted : int;
  mutable c_escalations : int;
      (* the speculation story: windows completes only on successful
         sharded runs; replays/promotions are booked as they happen (so
         an attempt that eventually escalates still shows its cost);
         escalations are booked by [serial_fallback] *)
}

let counters_key : counters Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        c_events = 0;
        c_parks = 0;
        c_wakeups = 0;
        c_elided = 0;
        c_link_queued = 0;
        c_sim_cycles = 0;
        c_wall_ns = 0;
        c_windows = 0;
        c_replays = 0;
        c_promoted = 0;
        c_escalations = 0;
      })

let counters () = Domain.DLS.get counters_key

type t = {
  platform : Platform.t;
  mem : Memory.t;
  shards : shard array; (* at least one; serial execution = exactly one *)
  nshards : int;
  use_domains : bool; (* drain shards on worker domains (multicore)? *)
  lookahead : int; (* window width: min cross-node transfer latency *)
  mutable in_window : bool;
  mutable abort : bool; (* a conflict was detected; attempt is doomed *)
  mutable solo_run : bool;
      (* the current window runs exactly one shard (all other queues
         empty): line deferral and the resource ownership check are
         skipped — nothing runs concurrently — while all stamp checks
         stay on, so conflict detection is unchanged *)
  mutable stamps_armed : bool;
      (* window fusing: a previous [run_health] on this sim already
         cleared the stamps and derived residency; subsequent runs
         reuse both instead of re-deriving per call *)
  mutable promoted : int list;
      (* lines promoted to coordinator-mediated access (residency
         sentinel), accumulated across speculative replays *)
  mutable t_conflicts : int list; (* coordinator-detected conflict lines *)
  mutable t_hard : bool; (* coordinator-detected non-attributable abort *)
  mutable n_windows : int;
  mutable n_replays : int;
  mutable n_promoted : int;
  mutable res_hwm : int; (* lines below this have residency assigned *)
  mutable spawned : int;
  faults : Fault.spec;
  faults_active : bool;
  faults_parkable : bool;
      (* active spec is jitter-only: parking stays exact because inert
         probes draw nothing (see [event_driven] / [spin_loop]) *)
  parking : bool; (* event-driven waiter wakeup enabled? *)
  tstates : (int, thread_state) Hashtbl.t;
  mutable crashed_tids : int list; (* reversed; serial-only mutation *)
  mutable wall_ns : int;
  cum : counters; (* the creating domain's cumulative totals *)
  mutable booked_lq : int;
      (* [Stats.link_queued_cycles] already booked into
         [cum.c_link_queued]: successful runs book the delta, aborted
         attempts book nothing (their stats roll back with the
         memory), so the cumulative total never double-counts a
         replayed schedule *)
  mutable run_until : int; (* current run's [until] backstop *)
  trace : Trace.t option;
      (* the domain's trace sink, cached at creation time (zero
         overhead when off: one option match per hook site) *)
}

type barrier = {
  mutable expected : int;
  mutable arrived : int;
  mutable waiters : (thread_state * (unit, unit) Effect.Deep.continuation) list;
}

(* A single-waiter parking spot for non-memory waiting (e.g. the
   Tilera's hardware message queues): the waiter parks with its poll
   period; [unpark] wakes it at the first poll-grid point after the
   state change, exactly where the poll loop would have noticed. *)
type parker = {
  mutable seat :
    (thread_state * (unit, unit) Effect.Deep.continuation) option;
  mutable seat_at : int;
  mutable seat_poll : int;
}

type _ Effect.t +=
  | E_mem : Arch.memop * Memory.addr * int * int -> int Effect.t
  | E_casf : Memory.addr * int * int -> int Effect.t
    (* CAS returning the observed value instead of the success flag *)
  | E_spin : Arch.memop * Memory.addr * int * int * int * int -> int Effect.t
  | E_pause : int -> unit Effect.t
  | E_now : int Effect.t
  | E_self : (int * int) Effect.t (* (core, tid) *)
  | E_barrier : barrier -> unit Effect.t
  | E_park : parker * int -> unit Effect.t
  | E_unpark : parker -> unit Effect.t
  | E_evd : bool Effect.t (* is event-driven waiting active? *)
  | E_dead : int -> bool Effect.t
    (* has thread [tid] crash-stopped?  The oracle robust locks build
       their owner-death detection on: true from the moment virtual
       time reaches the victim's crash time, whether or not the crash
       event itself has fired yet *)

exception Simulation_runaway of int

exception Shard_conflict
(* a sharded attempt detected an interleaving it cannot order serially;
   the simulation object is dead — re-run the job with [serial_fallback] *)

(* Default for [create]'s [?parking] — lets tests A/B the event-driven
   path against literal polling without threading a flag through every
   harness layer. *)
let parking_default = ref true

(* Default for [create]'s [?shards] — set by the benchmark driver's
   [--shards] flag so sharding reaches every [Harness.run] without
   threading a parameter through the figure pipelines. *)
let default_shards = ref 1

(* Drain shards on worker domains?  Defaults to whether the host has
   them; tests force [true] to exercise the cross-domain machinery on
   any host (shards produce identical results either way — inside a
   window they touch disjoint state, so domain execution order cannot
   matter). *)
let shard_domains = ref (Domain.recommended_domain_count () > 1)

(* While set, [create] forces one shard whatever was requested: the
   retry arm of [serial_fallback]. *)
let force_serial_key : bool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> false)

(* Jobs that escalated once, remembered by caller-supplied key: a
   benchmark sweep re-runs the same structurally-serial job (in-window
   allocation, hardware channels) dozens of times, and without memory
   each run pays a doomed sharded attempt before its serial re-run.
   Domain-local like the perf counters, so pool workers learn
   independently rather than taking a lock. *)
let serial_jobs_key : (string, unit) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let run_forced_serial f =
  Domain.DLS.set force_serial_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set force_serial_key false) f

let serial_fallback ?policy_key f =
  let known_serial =
    match policy_key with
    | Some k -> Hashtbl.mem (Domain.DLS.get serial_jobs_key) k
    | None -> false
  in
  if known_serial then run_forced_serial f
  else
    try f ()
    with Shard_conflict ->
      (* speculative replay (if any) is exhausted: book the escalation
         and re-run the whole job serially *)
      let c = counters () in
      c.c_escalations <- c.c_escalations + 1;
      (match Trace.current () with
      | Some tr -> Trace.emit_end tr Trace.E_escalate
      | None -> ());
      (match policy_key with
      | Some k -> Hashtbl.replace (Domain.DLS.get serial_jobs_key) k ()
      | None -> ());
      run_forced_serial f

(* The window width: the smallest latency at which one shard's action
   can affect another, i.e. the platform's minimum cross-node transfer
   cost.  Sampled as a dirty-line read from core 0 against every
   foreign-node owner — on all four topologies node 0 has a
   minimum-distance neighbour, so the scan reaches the global minimum.
   Width is a *batching heuristic only*: every line and resource
   access is stamp-checked in both the window and coordinator phases,
   so a too-wide window can only raise the abort rate, never miss a
   conflict — which is why no clamp to the minimum resource hold is
   needed (earlier engines clamped the width to 1 cycle on every
   non-Niagara platform, paying a window barrier per simulated cycle).
   Cached per platform: the scan costs ~n_cores cost-model calls and
   [create] runs once per job. *)
let lookahead_cache : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let lookahead_of (platform : Platform.t) =
  let cache = Domain.DLS.get lookahead_cache in
  match Hashtbl.find_opt cache platform.Platform.name with
  | Some w -> w
  | None ->
      let topo = platform.Platform.topo in
      let v =
        {
          Cost_model.state = Arch.Modified;
          owner = None;
          sharers = Coreset.create ();
          home = 0;
          llc_dirty = false;
        }
      in
      let n0 = topo.Topology.node_of_core 0 in
      let best = ref max_int in
      for c2 = 0 to topo.Topology.n_cores - 1 do
        let n2 = topo.Topology.node_of_core c2 in
        if n2 <> n0 then begin
          v.Cost_model.owner <- Some c2;
          v.Cost_model.home <- n2;
          let l = Cost_model.op_latency topo Arch.Load ~requester:0 v in
          if l < !best then best := l
        end
      done;
      let scan = if !best = max_int then 64 else max 1 !best in
      Hashtbl.replace cache platform.Platform.name scan;
      scan

let create ?(faults = Fault.none) ?parking ?shards platform =
  let faults = Fault.validate faults in
  let parking =
    match parking with Some p -> p | None -> !parking_default
  in
  let requested =
    match shards with
    | Some s ->
        if s < 1 then invalid_arg "Sim.create: shards must be >= 1";
        s
    | None -> !default_shards
  in
  let trace = Trace.current () in
  let topo = platform.Platform.topo in
  (* Crash-stop schedules mutate global bookkeeping mid-run and traces
     record engine-internal order: both are defined by the serial
     engine, so they force one shard (identity with serial runs is then
     trivially preserved rather than checked).  A trace sink that set
     [Trace.allow_sharded] wants only the coordinator-context
     speculation-lifecycle events, which the serial engine never has —
     it keeps sharding on and the per-access hooks dark. *)
  let nshards =
    if
      requested = 1
      || Domain.DLS.get force_serial_key
      || (trace <> None && not !Trace.allow_sharded)
      || faults.Fault.crashes <> []
    then 1
    else min requested topo.Topology.n_nodes
  in
  let mem = Memory.create platform in
  Memory.set_slots mem nshards;
  let shards =
    Array.init nshards (fun sid ->
        {
          sid;
          q = Event_queue.create ();
          slot = Memory.slot mem sid;
          popped = Event_queue.make_popped ();
          s_now = 0;
          s_window_end = max_int;
          s_fuel = 0;
          s_events = 0;
          s_live = 0;
          s_parks = 0;
          s_wakeups = 0;
          s_preempt = 0;
          s_jitter = 0;
          out = [];
          s_conflicts = [];
          s_hard = false;
        })
  in
  {
    platform;
    mem;
    shards;
    nshards;
    use_domains = nshards > 1 && !shard_domains;
    lookahead = (if nshards > 1 then lookahead_of platform else 0);
    in_window = false;
    abort = false;
    solo_run = false;
    stamps_armed = false;
    promoted = [];
    t_conflicts = [];
    t_hard = false;
    n_windows = 0;
    n_replays = 0;
    n_promoted = 0;
    res_hwm = 0;
    spawned = 0;
    faults;
    faults_active = not (Fault.is_none faults);
    faults_parkable = (not (Fault.is_none faults)) && Fault.parkable faults;
    parking;
    tstates = Hashtbl.create 64;
    crashed_tids = [];
    wall_ns = 0;
    cum = counters ();
    booked_lq = 0;
    run_until = max_int;
    trace;
  }

let memory t = t.mem
let platform t = t.platform
let shards_of t = t.nshards

(* The simulation's clock: the furthest shard clock (serially, shard
   0's).  Shard clocks are only meaningfully comparable between runs /
   at barriers — which is when this is called. *)
let now_of t =
  let n = ref t.shards.(0).s_now in
  for i = 1 to t.nshards - 1 do
    if t.shards.(i).s_now > !n then n := t.shards.(i).s_now
  done;
  !n

let ev_total t =
  Array.fold_left (fun acc sh -> acc + sh.s_events) 0 t.shards

let parks_total t =
  Array.fold_left (fun acc sh -> acc + sh.s_parks) 0 t.shards

let wakeups_total t =
  Array.fold_left (fun acc sh -> acc + sh.s_wakeups) 0 t.shards

let live_total t =
  Array.fold_left (fun acc sh -> acc + sh.s_live) 0 t.shards

let shard_for t core =
  if t.nshards = 1 then t.shards.(0)
  else
    t.shards.(t.platform.Platform.topo.Topology.node_of_core core
              mod t.nshards)

(* --------------------- speculative-replay support ------------------ *)

(* Residency sentinel for promoted lines: matches no shard id, so every
   in-window access to a promoted line defers to the coordinator, which
   executes deferred work in ascending global time — serial-within-
   window semantics for exactly the lines that conflicted. *)
let promoted_residency = -2

(* Re-tag the promoted set after any [Memory.assign_residency] pass
   (which tags by home node and would otherwise reclaim them). *)
let apply_promotions t =
  List.iter
    (fun li -> Memory.set_line_residency t.mem li promoted_residency)
    t.promoted

(* Enlarge the promoted set (idempotent per line) and apply it.  Books
   each newly promoted line in the per-run and cumulative counters. *)
let promote t lines =
  List.iter
    (fun li ->
      if not (List.mem li t.promoted) then begin
        t.promoted <- li :: t.promoted;
        t.n_promoted <- t.n_promoted + 1;
        t.cum.c_promoted <- t.cum.c_promoted + 1;
        (* strategy-dependent tallies go straight to the sink: they
           must survive the rollback that precedes the replay *)
        (match Metrics.current () with
        | Some m -> Metrics.tally m ~kind:Metrics.k_promoted ~id:0 1
        | None -> ());
        match t.trace with
        | Some tr -> Trace.emit_end tr (Trace.E_promote { line = li })
        | None -> ()
      end;
      Memory.set_line_residency t.mem li promoted_residency)
    lines

let promoted_lines t = t.promoted

(* The lines implicated in the aborted attempt's conflicts (deduped,
   all shards + coordinator).  Empty means no conflict was attributable
   to a line — the attempt must escalate to serial. *)
let conflict_lines t =
  let acc = ref t.t_conflicts in
  Array.iter
    (fun sh -> List.iter (fun li -> acc := li :: !acc) sh.s_conflicts)
    t.shards;
  List.sort_uniq compare !acc

(* Did the aborted attempt hit a conflict speculation cannot fix —
   a cross-shard peek, a same-time parker tie, a mid-window alloc, an
   event-budget blowout or a user-code exception? *)
let hard_aborted t =
  t.t_hard || Array.exists (fun sh -> sh.s_hard) t.shards

let record_replay t =
  t.n_replays <- t.n_replays + 1;
  t.cum.c_replays <- t.cum.c_replays + 1;
  (match Metrics.current () with
  | Some m -> Metrics.tally m ~kind:Metrics.k_replays ~id:0 1
  | None -> ());
  match t.trace with
  | Some tr -> Trace.emit_end tr (Trace.E_replay { attempt = t.n_replays })
  | None -> ()

(* Window fusing on/off (tests A/B it): when on, repeated [run_health]
   calls on one sim reuse the stamp clear and residency derivation of
   the first call. *)
let window_fusing = ref true

(* Reset the engine (not the memory — [Memory.restore] handles that)
   for a speculative replay of the same job: every shard queue, clock
   and per-attempt counter returns to its post-[create] state, the
   thread table empties so the harness can re-spawn, and the fused
   stamp/residency state is dropped (the rollback reverted migrations,
   so residency must be re-derived).  The promoted set and the
   replay/promotion tallies survive — they are the point. *)
let reset_for_replay t =
  Array.iter
    (fun sh ->
      Event_queue.clear sh.q;
      sh.s_now <- 0;
      sh.s_window_end <- max_int;
      sh.s_fuel <- 0;
      sh.s_events <- 0;
      sh.s_live <- 0;
      sh.s_parks <- 0;
      sh.s_wakeups <- 0;
      sh.s_preempt <- 0;
      sh.s_jitter <- 0;
      sh.out <- [];
      sh.s_conflicts <- [];
      sh.s_hard <- false)
    t.shards;
  Hashtbl.reset t.tstates;
  t.spawned <- 0;
  t.crashed_tids <- [];
  t.in_window <- false;
  t.abort <- false;
  t.solo_run <- false;
  t.stamps_armed <- false;
  t.t_conflicts <- [];
  t.t_hard <- false;
  t.res_hwm <- 0

(* Book a conflict detected while draining shard [sh] (worker domain:
   only this shard's fields are written). *)
let shard_conflict t sh lines =
  (match lines with
  | [] -> sh.s_hard <- true
  | ls -> sh.s_conflicts <- ls @ sh.s_conflicts);
  t.abort <- true

(* Event-driven waiting applies without faults and under jitter-only
   specs.  Jitter draws happen per *real* memory op; an inert probe —
   exactly the kind parking elides — is made to consume no draw (see
   [spin_loop]), so the per-thread draw sequence is identical whether
   the waiter parked or polled.  Preemption and crash specs keep the
   polling fallback: their draws key off every scheduling point, which
   parking removes. *)
let event_driven t =
  t.parking && ((not t.faults_active) || t.faults_parkable)

(* ---------------------- engine-side metrics ------------------------ *)

(* Thread run-state codes: chosen so [Metrics.k_runnable + state] is
   the gauge kind for the three live states.  [m_dead] spans are never
   charged. *)
let m_runnable = 0
let m_spinning = 1
let m_parked = 2
let m_dead = 3

(* The metrics accumulator of the *executing* context: the draining
   shard's slot on a worker domain, slot 0 at the coordinator and
   serially.  Charging where the step executes (not where the thread
   lives) keeps worker domains off each other's accumulators — a
   cross-shard wake charges the waker's shard — and costs nothing:
   the sums commute, so merged totals are placement-independent. *)
let macc_here t =
  let sid = Memory.exec_sid () in
  Memory.slot_metrics t.shards.(if sid >= 0 then sid else 0).slot

(* Close the thread's current run-state span at [at] and enter state
   [s].  No-op when metrics are off. *)
let m_trans t st ~at s =
  match macc_here t with
  | None -> ()
  | Some m ->
      if st.m_state < m_dead then
        Metrics.span m
          ~kind:(Metrics.k_runnable + st.m_state)
          ~id:0 ~t0:st.m_since ~t1:at ~weight:1;
      st.m_state <- s;
      if at > st.m_since then st.m_since <- at

let m_bump t ~kind ~ts =
  match macc_here t with
  | None -> ()
  | Some m -> Metrics.bump m ~kind ~id:0 ~ts 1

(* Every engine push targets a specific shard's queue at an absolute
   time.  No clamp against the shard clock: all call sites push at or
   after the affected thread's logical now, and the coordinator
   legitimately pushes *behind* a shard's (post-window) clock — the
   queue accepts regressing pushes. *)
let sched_on sh ~at run = Event_queue.push sh.q ~time:at run

(* Append a deferred cross-shard operation for the thread's own current
   step: always called from the thread's own shard, inside a window. *)
let defer st ~kind ~addr run =
  let sh = st.sh in
  sh.out <-
    { o_time = sh.s_now; o_kind = kind; o_addr = addr; o_st = st; o_run = run }
    :: sh.out

(* ------------------------------------------------------------------ *)
(* Operations available *inside* a simulated thread.  Calling them
   outside of [spawn]ed code raises [Effect.Unhandled]. *)

let load a = Effect.perform (E_mem (Arch.Load, a, 0, 0))
let store a v = ignore (Effect.perform (E_mem (Arch.Store, a, v, 0)))

(* Store posted through the store buffer: the thread pays only the
   retire cost while the transfer (value, invalidations, occupancy)
   completes in the background — [operand2 = 1] marks it for the
   memory model. *)
let store_posted a v = ignore (Effect.perform (E_mem (Arch.Store, a, v, 1)))

let cas a ~expected ~desired =
  Effect.perform (E_mem (Arch.Cas, a, expected, desired)) = 1

(* CAS that returns the value it observed (success iff it equals
   [expected]): a retry loop built on it sees the line's value at its
   own probe time instead of re-reading a stale snapshot. *)
let cas_fetch a ~expected ~desired =
  Effect.perform (E_casf (a, expected, desired))

let fai a = Effect.perform (E_mem (Arch.Fai, a, 1, 0))

(* Atomic fetch-and-add by [k] (k >= 0); [faa a 0] is an exclusive
   atomic read: it returns the value and leaves the line Modified at the
   caller, modeling a prefetchw+load probe. *)
let faa a k =
  if k < 0 then invalid_arg "Sim.faa: negative increment";
  Effect.perform (E_mem (Arch.Fai, a, k, 0))

(* Store-class fetch-and-add: an increment of a field only this thread
   writes (e.g. a ticket lock's [current] on release).  Applied
   atomically by the model but costed as a plain store. *)
let faa_store a k =
  if k < 0 then invalid_arg "Sim.faa_store: negative increment";
  Effect.perform (E_mem (Arch.Fai, a, k, 1))

(* [tas] returns [true] when the caller won (the previous value was 0). *)
let tas a = Effect.perform (E_mem (Arch.Tas, a, 0, 0)) = 0
let swap a v = Effect.perform (E_mem (Arch.Swap, a, v, 0))
let pause cycles = if cycles > 0 then Effect.perform (E_pause cycles)
let now () = Effect.perform E_now
let self_core () = fst (Effect.perform E_self)
let self_tid () = snd (Effect.perform E_self)

(* {2 Spin primitives}

   Each is exactly the loop [let x = probe in if x = while_ then
   (pause poll; retry) else x] of the hand-written spinlocks, executed
   event-driven (see the header comment).  The first probe runs
   immediately, pauses sit between probes, and the call returns the
   first probe result that differs from [while_]. *)

let spin_check poll =
  if poll < 0 then invalid_arg "Sim.spin: negative poll interval"

let spin_load a ~while_ ~poll =
  spin_check poll;
  Effect.perform (E_spin (Arch.Load, a, 0, 0, while_, poll))

(* Spin until the test-and-set wins (previous value 0); continues while
   the probe returns 1. *)
let spin_tas a ~poll =
  spin_check poll;
  ignore (Effect.perform (E_spin (Arch.Tas, a, 0, 0, 1, poll)))

(* Spin until the CAS succeeds; continues while the probe fails. *)
let spin_cas a ~expected ~desired ~poll =
  spin_check poll;
  ignore (Effect.perform (E_spin (Arch.Cas, a, expected, desired, 0, poll)))

let spin_swap a v ~while_ ~poll =
  spin_check poll;
  Effect.perform (E_spin (Arch.Swap, a, v, 0, while_, poll))

(* Spin probing with an exclusive atomic read (prefetchw-style
   [faa a 0]). *)
let spin_faa0 a ~while_ ~poll =
  spin_check poll;
  Effect.perform (E_spin (Arch.Fai, a, 0, 0, while_, poll))

let make_barrier n : barrier = { expected = n; arrived = 0; waiters = [] }
let await b = Effect.perform (E_barrier b)

let make_parker () : parker = { seat = None; seat_at = 0; seat_poll = 1 }

let park pk ~poll =
  if poll <= 0 then invalid_arg "Sim.park: poll must be positive";
  Effect.perform (E_park (pk, poll))

let unpark pk = Effect.perform (E_unpark pk)
let event_driven_waits () = Effect.perform E_evd

(* Cost-free oracle: robust locks model the OS's exact knowledge of
   which threads died (robust-futex EOWNERDEAD bookkeeping), so the
   query itself adds no events and no latency. *)
let tid_crashed tid = Effect.perform (E_dead tid)

(* ------------------------------------------------------------------ *)
(* Fault hooks. *)

(* Extra completion delay at a scheduling point: latency jitter (memory
   ops only) plus preemption — the thread is descheduled for the drawn
   duration, whatever it holds staying held.  Draws come from the
   thread's private stream, so faults in one thread never perturb
   another thread's draws. *)
(* Per-thread trace hooks stay dark when sharding runs with a trace
   installed ([Trace.allow_sharded]): worker domains must not touch the
   shared ring. *)
let trace_fault t st kind cycles =
  match t.trace with
  | Some tr when t.nshards = 1 ->
      Trace.emit tr ~ts:st.sh.s_now
        (Trace.E_fault { tid = st.tid; kind; cycles })
  | _ -> ()

let fault_extra t st ~mem_op =
  if not t.faults_active then 0
  else begin
    let f = t.faults in
    let sh = st.sh in
    let extra = ref 0 in
    if mem_op && f.Fault.jitter_prob > 0.
       && Rng.float st.rng < f.Fault.jitter_prob
    then begin
      let cy = Fault.sample st.rng f.Fault.jitter_cycles in
      extra := !extra + cy;
      sh.s_jitter <- sh.s_jitter + 1;
      trace_fault t st Trace.Jitter cy
    end;
    if f.Fault.preempt_prob > 0. && Rng.float st.rng < f.Fault.preempt_prob
    then begin
      let cy = Fault.sample st.rng f.Fault.preempt_cycles in
      extra := !extra + cy;
      sh.s_preempt <- sh.s_preempt + 1;
      trace_fault t st Trace.Preempt cy
    end;
    !extra
  end

(* Schedule [f] at [at] on [st]'s behalf — unless the thread's crash
   time falls first, in which case [f] is dropped and the crash is
   booked at the crash time itself (so it is recorded even when the
   never-to-happen step would fall past the [until] backstop).  A
   crash-stopped thread is simply never resumed: no unwinding, no
   cleanup — whatever it holds stays held, which is what crash-stop
   means.  Crash schedules imply one shard (see [create]). *)
let crash_sched t st ~at f =
  let sh = st.sh in
  if st.crash_at >= 0 && (not st.crashed) && at >= st.crash_at then
    sched_on sh ~at:(max sh.s_now st.crash_at) (fun () ->
        if not st.crashed then begin
          st.crashed <- true;
          t.crashed_tids <- st.tid :: t.crashed_tids;
          sh.s_live <- sh.s_live - 1;
          m_trans t st ~at:sh.s_now m_dead;
          trace_fault t st Trace.Crash 0
        end)
  else
    sched_on sh ~at (fun () ->
        st.last_progress <- sh.s_now;
        f ())

let resume : type a.
    t -> thread_state -> (a, unit) Effect.Deep.continuation -> at:int -> a -> unit
    =
 fun t st k ~at v -> crash_sched t st ~at (fun () -> Effect.Deep.continue k v)

(* Direct-run: a resumption may skip the event queue entirely and
   continue the thread synchronously when nothing can observe the
   difference — no faults active (fault draws key off event shapes),
   the completion time does not cross the run's [until] backstop (the
   queue would have dropped it) nor the shard's window end, and it
   falls *strictly* before every event queued on the shard (so no
   other event could interleave, and same-time FIFO order is
   preserved).  Timestamps, access order and results are exactly those
   of the queued schedule; only the per-operation queue round trip
   disappears.  Both a queue pop and a direct-run continue count as
   one logical resumption in [s_events], so the events counter is an
   execution-strategy-independent measure — serial and sharded runs
   report identical totals even though they make different direct-run
   decisions.  [s_fuel], reset at every real event pop, bounds
   consecutive synchronous continues so an event-free stretch cannot
   grow the native stack without limit. *)
let direct_fuel_max = 1000

let can_direct t sh ~at =
  (not t.faults_active)
  && at <= t.run_until
  && at <= sh.s_window_end
  && sh.s_fuel < direct_fuel_max
  && at < Event_queue.next_time sh.q

(* Hot-path resumptions: when the thread cannot crash, either continue
   it directly (see above) or park the continuation in its [pend_*]
   slot and schedule the preallocated runner — zero closure allocations
   per operation.  With a crash time set, fall back to [resume] so the
   crash bookkeeping (and its exact event shapes) stays byte-identical.
   Direct-run applies only to completions of the thread's own
   operations (memory ops, pauses): those run from the top of the
   engine loop, never from inside another thread's access processing,
   so continuing synchronously cannot re-enter the memory model. *)
let resume_int t st (k : (int, unit) Effect.Deep.continuation) ~at v =
  if st.crash_at >= 0 then resume t st k ~at v
  else begin
    let sh = st.sh in
    if can_direct t sh ~at then begin
      sh.s_fuel <- sh.s_fuel + 1;
      sh.s_events <- sh.s_events + 1;
      sh.s_now <- at;
      st.last_progress <- at;
      Effect.Deep.continue k v
    end
    else begin
      st.pend_ik <- Some k;
      st.pend_iv <- v;
      sched_on sh ~at st.run_ik
    end
  end

(* Unit-typed completion of the thread's own step (pause): direct-run
   capable, like [resume_int]. *)
let resume_unit_direct t st (k : (unit, unit) Effect.Deep.continuation) ~at =
  if st.crash_at >= 0 then resume t st k ~at ()
  else begin
    let sh = st.sh in
    if can_direct t sh ~at then begin
      sh.s_fuel <- sh.s_fuel + 1;
      sh.s_events <- sh.s_events + 1;
      sh.s_now <- at;
      st.last_progress <- at;
      Effect.Deep.continue k ()
    end
    else begin
      st.pend_uk <- Some k;
      sched_on sh ~at st.run_uk
    end
  end

(* Wakeups issued on behalf of *other* threads (barriers, parkers):
   always scheduled, because the issuing handler may wake several
   threads at one captured timestamp — running one synchronously would
   advance the clock under the others' feet.  Sharded, these run only
   at the coordinator (the issuing operations are deferred), so pushing
   onto the target thread's shard queue never races. *)
let resume_unit t st (k : (unit, unit) Effect.Deep.continuation) ~at =
  if st.crash_at >= 0 then resume t st k ~at ()
  else begin
    st.pend_uk <- Some k;
    sched_on st.sh ~at st.run_uk
  end

(* Schedule a preallocated engine-internal step ([f] updates
   [last_progress] itself at entry) without wrapping it in a fresh
   closure unless the crash path demands it. *)
let sched_step _t st ~at f =
  if st.crash_at >= 0 then crash_sched _t st ~at f else sched_on st.sh ~at f

(* Sharded memory operation: defer to the coordinator when the line is
   foreign-resident (the coordinator migrates it here), stamp-check
   otherwise, then perform the access against this shard's slot.  Also
   the body of coordinator-run deferred accesses — the coordinator sets
   [st.sh.s_now] to the entry's captured time first, and [in_window] is
   false there, so the access executes directly. *)
let rec mem_sharded t st (k : (int, unit) Effect.Deep.continuation) op a
    ~operand ~operand2 ~fetch =
  let sh = st.sh in
  if t.in_window && (not t.solo_run) && Memory.residency t.mem a <> sh.sid
  then
    defer st ~kind:kind_mem ~addr:a (fun () ->
        mem_sharded t st k op a ~operand ~operand2 ~fetch)
  else if not (Memory.stamp t.mem a ~time:sh.s_now ~tid:st.tid) then
    (* a stamp failure names its own line: promote it on replay *)
    shard_conflict t sh [ Memory.line_id t.mem a ]
  else begin
    let latency =
      Memory.access_lat_in t.mem ~slot:sh.slot ~core:st.core ~now:sh.s_now op
        a ~operand ~operand2 ~fetch
    in
    let v = Memory.last_result_in sh.slot in
    let latency = latency + fault_extra t st ~mem_op:true in
    resume_int t st k ~at:(sh.s_now + latency) v
  end

(* The [E_spin] state machine.  Invoked with the thread suspended right
   after observing [while_]; the first probe issues at [now + poll],
   exactly like the poll loop's [pause poll; probe].  Whenever the next
   probe would be inert, the thread parks on the line and the memory
   model wakes it — via [replay], on the original probe grid — when a
   real access disturbs the line. *)
let spin_loop t st (k : (int, unit) Effect.Deep.continuation) op a ~operand
    ~operand2 ~while_ ~poll =
  let core = st.core in
  let sh = st.sh in
  (* [probe] and [continue_spin] are allocated once per spin episode and
     update [last_progress] themselves, so the per-probe steps schedule
     them directly ([sched_step]) with no wrapper closure.  Both defer
     themselves whole when the line is foreign-resident: the
     coordinator re-runs the closure with [s_now] set to the deferral
     time, so the captured [sh.s_now] reads stay correct. *)
  let rec probe () =
    if
      t.nshards > 1 && t.in_window && (not t.solo_run)
      && Memory.residency t.mem a <> sh.sid
    then defer st ~kind:kind_mem ~addr:a probe
    else begin
      (* [sh.s_now] is the probe's issue time *)
      st.last_progress <- sh.s_now;
      (match t.trace with
      | Some tr when t.nshards = 1 -> Trace.set_tid tr st.tid
      | _ -> ());
      if
        t.nshards > 1
        && not (Memory.stamp t.mem a ~time:sh.s_now ~tid:st.tid)
      then shard_conflict t sh [ Memory.line_id t.mem a ]
      else begin
        (* Under a jitter-only spec an inert probe consumes no fault
           draw: parking elides exactly the inert probes, so charging
           draws only to non-inert probes keeps the per-thread draw
           sequence — and so the whole schedule — identical parked or
           polled. *)
        let inert =
          t.faults_parkable
          && Memory.probe_would_elide t.mem ~core op a ~operand ~operand2
               ~while_
        in
        let latency =
          Memory.access_lat_in t.mem ~slot:sh.slot ~core ~now:sh.s_now op a
            ~operand ~operand2
        in
        let x = Memory.last_result_in sh.slot in
        let latency =
          if inert then latency else latency + fault_extra t st ~mem_op:true
        in
        if x <> while_ then begin
          m_trans t st ~at:(sh.s_now + latency) m_runnable;
          resume_int t st k ~at:(sh.s_now + latency) x
        end
        else sched_step t st ~at:(sh.s_now + latency) continue_spin
      end
    end
  and continue_spin () =
    if
      t.nshards > 1 && t.in_window && (not t.solo_run)
      && Memory.residency t.mem a <> sh.sid
    then defer st ~kind:kind_mem ~addr:a continue_spin
    else begin
      (* [sh.s_now] is the completion time of a probe that returned
         [while_]; emulate [pause poll; probe] — or park. *)
      st.last_progress <- sh.s_now;
      if
        t.nshards > 1
        && not (Memory.stamp t.mem a ~time:sh.s_now ~tid:st.tid)
      then shard_conflict t sh [ Memory.line_id t.mem a ]
      else if
        event_driven t
        && Memory.try_park_in t.mem ~slot:sh.slot ~core ~now:sh.s_now op a
             ~operand ~operand2 ~while_ ~poll ~replay:(fun at ->
               (* [replay] may fire from whichever shard's access
                  disturbed the line: foreign wakes are deferred into
                  the *executing* shard's outbox (its own counter takes
                  the wakeup — totals match the serial count), the
                  coordinator and same-shard wakes push directly. *)
               if t.nshards > 1 && t.in_window then begin
                 let esid = Memory.exec_sid () in
                 if esid >= 0 && esid <> sh.sid then begin
                   let esh = t.shards.(esid) in
                   esh.s_wakeups <- esh.s_wakeups + 1;
                   m_bump t ~kind:Metrics.k_wakes ~ts:at;
                   esh.out <-
                     {
                       o_time = at;
                       o_kind = kind_wake;
                       o_addr = -1;
                       o_st = st;
                       o_run =
                         (fun () ->
                           (* the parked span closes where the wake
                              executes: the coordinator, at [at] *)
                           m_trans t st ~at m_spinning;
                           sched_step t st ~at probe);
                     }
                     :: esh.out
                 end
                 else begin
                   sh.s_wakeups <- sh.s_wakeups + 1;
                   m_bump t ~kind:Metrics.k_wakes ~ts:at;
                   m_trans t st ~at m_spinning;
                   sched_step t st ~at probe
                 end
               end
               else begin
                 sh.s_wakeups <- sh.s_wakeups + 1;
                 m_bump t ~kind:Metrics.k_wakes ~ts:at;
                 m_trans t st ~at m_spinning;
                 (match t.trace with
                 | Some tr when t.nshards = 1 ->
                     Trace.emit tr ~ts:at
                       (Trace.E_wake { tid = st.tid; addr = a })
                 | _ -> ());
                 sched_step t st ~at probe
               end)
      then begin
        sh.s_parks <- sh.s_parks + 1;
        m_trans t st ~at:sh.s_now m_parked;
        m_bump t ~kind:Metrics.k_parks ~ts:sh.s_now;
        match t.trace with
        | Some tr when t.nshards = 1 ->
            Trace.emit tr ~ts:sh.s_now
              (Trace.E_park { tid = st.tid; addr = a })
        | _ -> ()
      end
      else if poll = 0 then probe ()
      else begin
        let cy = max 1 poll + fault_extra t st ~mem_op:false in
        sched_step t st ~at:(sh.s_now + cy) probe
      end
    end
  in
  m_trans t st ~at:sh.s_now m_spinning;
  continue_spin ()

(* Barrier arrival: runs in-window serially, at the coordinator when
   sharded (so the shared barrier record is never mutated
   concurrently).  The releasing arrival is the latest-timed one, so
   executing arrivals in ascending time order wakes every waiter at the
   serial release time. *)
let barrier_arrive t st (k : (unit, unit) Effect.Deep.continuation) b =
  let at = st.sh.s_now in
  st.last_progress <- at;
  b.arrived <- b.arrived + 1;
  if b.arrived >= b.expected then begin
    let to_wake = b.waiters in
    b.waiters <- [];
    b.arrived <- 0;
    List.iter (fun (wst, w) -> resume_unit t wst w ~at) to_wake;
    resume_unit t st k ~at
  end
  else b.waiters <- (st, k) :: b.waiters

(* Parker seat/wake logic, shared by the serial path and the
   coordinator-deferred one. *)
let park_seat t st (k : (unit, unit) Effect.Deep.continuation) pk poll =
  let sh = st.sh in
  if event_driven t then begin
    if pk.seat <> None then invalid_arg "Sim.park: parker already occupied";
    pk.seat <- Some (st, k);
    pk.seat_at <- sh.s_now;
    pk.seat_poll <- poll;
    sh.s_parks <- sh.s_parks + 1;
    m_trans t st ~at:sh.s_now m_parked;
    m_bump t ~kind:Metrics.k_parks ~ts:sh.s_now;
    match t.trace with
    | Some tr when t.nshards = 1 ->
        Trace.emit tr ~ts:sh.s_now (Trace.E_park { tid = st.tid; addr = -1 })
    | _ -> ()
  end
  else begin
    (* literal polling: one pause quantum, the caller's loop re-checks *)
    let cy = max 1 poll + fault_extra t st ~mem_op:false in
    resume_unit t st k ~at:(sh.s_now + cy)
  end

let unpark_wake t st pk =
  match pk.seat with
  | Some (wst, wk) ->
      pk.seat <- None;
      (* first poll-grid point after the state change *)
      let dt = st.sh.s_now - pk.seat_at in
      let steps = max 1 ((dt + pk.seat_poll - 1) / pk.seat_poll) in
      let wake_at = pk.seat_at + (steps * pk.seat_poll) in
      st.sh.s_wakeups <- st.sh.s_wakeups + 1;
      m_bump t ~kind:Metrics.k_wakes ~ts:wake_at;
      m_trans t wst ~at:wake_at m_runnable;
      (match t.trace with
      | Some tr when t.nshards = 1 ->
          Trace.emit tr ~ts:wake_at (Trace.E_wake { tid = wst.tid; addr = -1 })
      | _ -> ());
      resume_unit t wst wk ~at:wake_at
  | None -> ()

(* ------------------------------------------------------------------ *)

let spawn t ~core body =
  Topology.check t.platform.Platform.topo core;
  let tid = t.spawned in
  t.spawned <- tid + 1;
  let sh = shard_for t core in
  sh.s_live <- sh.s_live + 1;
  let st =
    {
      tid;
      core;
      sh;
      rng = Fault.stream t.faults ~tid;
      crash_at = Fault.crash_time t.faults ~tid;
      last_progress = now_of t;
      finished = false;
      crashed = false;
      pend_ik = None;
      pend_iv = 0;
      pend_uk = None;
      run_ik = ignore;
      run_uk = ignore;
      m_state = m_runnable;
      m_since = now_of t;
    }
  in
  st.run_ik <-
    (fun () ->
      st.last_progress <- sh.s_now;
      match st.pend_ik with
      | Some k ->
          st.pend_ik <- None;
          Effect.Deep.continue k st.pend_iv
      | None -> ());
  st.run_uk <-
    (fun () ->
      st.last_progress <- sh.s_now;
      match st.pend_uk with
      | Some k ->
          st.pend_uk <- None;
          Effect.Deep.continue k ()
      | None -> ());
  Hashtbl.replace t.tstates tid st;
  (match t.trace with
  | Some tr -> Trace.emit tr ~ts:sh.s_now (Trace.E_thread { tid; core })
  | None -> ());
  let open Effect.Deep in
  let handler : (unit, unit) handler =
    {
      retc =
        (fun () ->
          st.finished <- true;
          st.last_progress <- sh.s_now;
          m_trans t st ~at:sh.s_now m_dead;
          sh.s_live <- sh.s_live - 1);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_mem (op, a, op1, op2) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if t.nshards = 1 then begin
                    (match t.trace with
                    | Some tr -> Trace.set_tid tr tid
                    | None -> ());
                    let latency =
                      Memory.access_lat_in t.mem ~slot:sh.slot ~core
                        ~now:sh.s_now op a ~operand:op1 ~operand2:op2
                    in
                    let v = Memory.last_result_in sh.slot in
                    let latency = latency + fault_extra t st ~mem_op:true in
                    resume_int t st k ~at:(sh.s_now + latency) v
                  end
                  else
                    mem_sharded t st k op a ~operand:op1 ~operand2:op2
                      ~fetch:false)
          | E_casf (a, expected, desired) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if t.nshards = 1 then begin
                    (match t.trace with
                    | Some tr -> Trace.set_tid tr tid
                    | None -> ());
                    let latency =
                      Memory.access_lat_in t.mem ~slot:sh.slot ~core
                        ~now:sh.s_now Arch.Cas a ~operand:expected
                        ~operand2:desired ~fetch:true
                    in
                    let v = Memory.last_result_in sh.slot in
                    let latency = latency + fault_extra t st ~mem_op:true in
                    resume_int t st k ~at:(sh.s_now + latency) v
                  end
                  else
                    mem_sharded t st k Arch.Cas a ~operand:expected
                      ~operand2:desired ~fetch:true)
          | E_spin (op, a, op1, op2, while_, poll) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  spin_loop t st k op a ~operand:op1 ~operand2:op2 ~while_
                    ~poll)
          | E_pause cycles ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let cycles = max 1 cycles + fault_extra t st ~mem_op:false in
                  resume_unit_direct t st k ~at:(sh.s_now + cycles))
          | E_now ->
              Some (fun (k : (a, unit) continuation) -> continue k sh.s_now)
          | E_self ->
              Some (fun (k : (a, unit) continuation) -> continue k (core, tid))
          | E_barrier b ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if t.nshards > 1 && t.in_window then
                    defer st ~kind:kind_barrier ~addr:(-1) (fun () ->
                        barrier_arrive t st k b)
                  else barrier_arrive t st k b)
          | E_park (pk, poll) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if t.nshards > 1 && t.in_window then
                    defer st ~kind:kind_parker ~addr:(-1) (fun () ->
                        park_seat t st k pk poll)
                  else park_seat t st k pk poll)
          | E_unpark pk ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* the seat processing is deferred; the caller itself
                     continues immediately — unpark is costless for it
                     in either mode *)
                  if t.nshards > 1 && t.in_window then
                    defer st ~kind:kind_parker ~addr:(-1) (fun () ->
                        unpark_wake t st pk)
                  else unpark_wake t st pk;
                  continue k ())
          | E_evd ->
              Some
                (fun (k : (a, unit) continuation) ->
                  continue k (event_driven t))
          | E_dead qtid ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let dead =
                    match Hashtbl.find_opt t.tstates qtid with
                    | Some qst ->
                        qst.crashed
                        || (qst.crash_at >= 0 && sh.s_now >= qst.crash_at)
                    | None -> false
                  in
                  continue k dead)
          | _ -> None);
    }
  in
  sched_on sh ~at:(now_of t) (fun () ->
      st.last_progress <- sh.s_now;
      match_with body () handler)

(* ------------------------------------------------------------------ *)
(* Run loop and watchdog. *)

type verdict =
  | Completed
  | Stalled of { tid : int; core : int; last_progress : int }

type health = {
  verdict : verdict;
  crashed : int list; (* tids crash-stopped by fault injection *)
  preemptions : int; (* injected preemption events *)
  jitter_events : int; (* injected latency-jitter events *)
  dropped_events : int; (* events discarded past [until] *)
}

let verdict_to_string = function
  | Completed -> "completed"
  | Stalled { tid; core; last_progress } ->
      Printf.sprintf "stalled (tid %d on core %d, last progress at %d)" tid
        core last_progress

let health_to_string h =
  let base = verdict_to_string h.verdict in
  let extras =
    List.filter
      (fun s -> s <> "")
      [
        (if h.crashed = [] then ""
         else
           Printf.sprintf "crashed tids: %s"
             (String.concat "," (List.map string_of_int h.crashed)));
        (if h.preemptions = 0 then ""
         else Printf.sprintf "%d preemptions" h.preemptions);
        (if h.jitter_events = 0 then ""
         else Printf.sprintf "%d jittered ops" h.jitter_events);
        (if h.dropped_events = 0 then ""
         else Printf.sprintf "%d events dropped" h.dropped_events);
      ]
  in
  if extras = [] then base
  else Printf.sprintf "%s; %s" base (String.concat "; " extras)

(* The live thread that has gone the longest without progress — the
   watchdog's culprit.  Ties break toward the lowest tid so the verdict
   is deterministic. *)
let most_stalled t =
  let best = ref None in
  for tid = 0 to t.spawned - 1 do
    match Hashtbl.find_opt t.tstates tid with
    | Some st when (not st.finished) && not st.crashed -> (
        match !best with
        | Some b when b.last_progress <= st.last_progress -> ()
        | _ -> best := Some st)
    | _ -> ()
  done;
  !best

(* ----------------------- sharded run loop ------------------------- *)

(* Drain one shard up to its window end.  Runs on a worker domain (or
   the main one); touches only this shard's queue/clock/slot and
   resident lines, so shards never race.  Any exception — a stamp
   violation surfacing as [Memory.Sharded_violation], a mid-window
   [Memory.Sharded_alloc], or user code failing — dooms the attempt;
   the serial re-run reproduces (or avoids) it with serial
   semantics. *)
let drain_window t sh =
  let p = sh.popped in
  let continue_run = ref true in
  while !continue_run && not t.abort do
    (* an empty queue reports [next_time = max_int]: a solo window's
       end is also [max_int], so test emptiness explicitly rather than
       relying on the strict comparison *)
    let nt = Event_queue.next_time sh.q in
    if nt = max_int || nt > sh.s_window_end then continue_run := false
    else begin
      ignore (Event_queue.pop_into sh.q p);
      sh.s_fuel <- 0;
      sh.s_events <- sh.s_events + 1;
      sh.s_now <- p.Event_queue.p_time;
      p.Event_queue.p_run ()
    end
  done

let drain_window_safe t sh =
  Memory.set_exec_sid sh.sid;
  (try drain_window t sh with
  | Memory.Sharded_violation lines -> shard_conflict t sh lines
  | _ ->
      (* [Sharded_alloc], user code failing, engine bugs: not
         attributable to lines, so the serial re-run owns it *)
      sh.s_hard <- true;
      t.abort <- true);
  Memory.set_exec_sid (-1)

(* A persistent worker-domain crew, one domain per shard beyond the
   first, driven window-by-window over a mutex/condition pair (no busy
   waiting: the host may have fewer cores than shards).  Crews live in
   a process-global pool and are reused across simulations — spawning
   and joining (nshards - 1) domains per [run_health] call used to be
   a fixed tax on every sharded job — so the per-epoch work is handed
   over as data ([c_job]) rather than captured in the worker closure.
   Workers beyond [c_active] ack the epoch without working, which lets
   one crew serve runs of different shard counts. *)
type crew = {
  cm : Mutex.t;
  c_go : Condition.t;
  c_done : Condition.t;
  mutable c_epoch : int;
  mutable c_done_n : int;
  mutable c_quit : bool;
  mutable c_workers : int; (* worker loops spawned for this crew *)
  mutable c_active : int; (* workers given work this epoch *)
  mutable c_job : int -> unit; (* worker index (1-based) -> work *)
  mutable c_doms : unit Domain.t list;
}

let crew_loop cr w () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock cr.cm;
    while cr.c_epoch = !seen && not cr.c_quit do
      Condition.wait cr.c_go cr.cm
    done;
    if cr.c_quit then begin
      running := false;
      Mutex.unlock cr.cm
    end
    else begin
      seen := cr.c_epoch;
      let job = if w <= cr.c_active then Some cr.c_job else None in
      Mutex.unlock cr.cm;
      (match job with Some j -> j w | None -> ());
      Mutex.lock cr.cm;
      cr.c_done_n <- cr.c_done_n + 1;
      if cr.c_done_n = cr.c_workers then Condition.signal cr.c_done;
      Mutex.unlock cr.cm
    end
  done

let crew_pool : crew list ref = ref []
let crew_pool_mx = Mutex.create ()

(* Join every pooled (idle) crew at exit.  In-use crews are always
   returned to the pool by [run_health]'s cleanup, so by the time
   [at_exit] runs the pool holds them all. *)
let crew_exit_registered = ref false

let crew_shutdown () =
  let crews =
    Mutex.lock crew_pool_mx;
    let cs = !crew_pool in
    crew_pool := [];
    Mutex.unlock crew_pool_mx;
    cs
  in
  List.iter
    (fun cr ->
      Mutex.lock cr.cm;
      cr.c_quit <- true;
      Condition.broadcast cr.c_go;
      Mutex.unlock cr.cm;
      List.iter Domain.join cr.c_doms)
    crews

(* Take a crew with at least [n] workers out of the pool (spawning a
   fresh crew or extra workers as needed; safe — the crew is idle). *)
let crew_acquire n =
  Mutex.lock crew_pool_mx;
  if not !crew_exit_registered then begin
    crew_exit_registered := true;
    at_exit crew_shutdown
  end;
  let cr =
    match !crew_pool with
    | c :: rest ->
        crew_pool := rest;
        c
    | [] ->
        {
          cm = Mutex.create ();
          c_go = Condition.create ();
          c_done = Condition.create ();
          c_epoch = 0;
          c_done_n = 0;
          c_quit = false;
          c_workers = 0;
          c_active = 0;
          c_job = ignore;
          c_doms = [];
        }
  in
  Mutex.unlock crew_pool_mx;
  while cr.c_workers < n do
    cr.c_workers <- cr.c_workers + 1;
    cr.c_doms <- Domain.spawn (crew_loop cr cr.c_workers) :: cr.c_doms
  done;
  cr

let crew_release cr =
  Mutex.lock crew_pool_mx;
  crew_pool := cr :: !crew_pool;
  Mutex.unlock crew_pool_mx

let crew_window t cr =
  Mutex.lock cr.cm;
  cr.c_job <- (fun w -> drain_window_safe t t.shards.(w));
  cr.c_active <- t.nshards - 1;
  cr.c_epoch <- cr.c_epoch + 1;
  cr.c_done_n <- 0;
  Condition.broadcast cr.c_go;
  Mutex.unlock cr.cm;
  drain_window_safe t t.shards.(0);
  Mutex.lock cr.cm;
  while cr.c_done_n < cr.c_workers do
    Condition.wait cr.c_done cr.cm
  done;
  Mutex.unlock cr.cm

(* Drain the outboxes between windows: merge all shards' deferred
   entries into ascending time order (per-shard FIFO preserved — the
   serial tie-break for one shard's same-time entries) and execute them
   single-threaded against the full memory.  Migrates deferred-access
   lines to the requesting shard, refuses lines the window peeked at
   without an ordering key, and aborts on same-time parker operations
   from different shards (their serial order was queue insertion order,
   which no longer exists). *)
let run_coordinator t =
  let entries = ref [] in
  for i = t.nshards - 1 downto 0 do
    let sh = t.shards.(i) in
    entries := List.rev_append sh.out !entries;
    sh.out <- []
  done;
  let entries =
    List.stable_sort (fun a b -> compare a.o_time b.o_time) !entries
  in
  let last_parker_t = ref (-1) in
  let last_parker_sid = ref (-1) in
  (try
     List.iter
       (fun e ->
         if not t.abort then begin
           if e.o_kind = kind_parker then begin
             let sid = e.o_st.sh.sid in
             if e.o_time = !last_parker_t && sid <> !last_parker_sid then begin
               (* same-time parkers from different shards: their serial
                  tie-break (queue insertion order) is gone, and no set
                  of line promotions recreates it *)
               t.t_hard <- true;
               t.abort <- true
             end;
             last_parker_t := e.o_time;
             last_parker_sid := sid
           end;
           if not t.abort then begin
             if e.o_kind = kind_mem && e.o_addr >= 0 then begin
               if Memory.peeked_this_window t.mem e.o_addr then begin
                 t.t_hard <- true;
                 t.abort <- true
               end
               else if
                 Memory.line_residency t.mem (Memory.line_id t.mem e.o_addr)
                 <> promoted_residency
               then
                 (* promoted lines stay coordinator-mediated: migrating
                    one to the requester would let the next window run
                    it shard-locally again, re-creating the very race
                    the promotion was meant to serialize *)
                 Memory.set_residency t.mem e.o_addr e.o_st.sh.sid
             end;
             if not t.abort then begin
               e.o_st.sh.s_now <- e.o_time;
               e.o_run ()
             end
           end
         end)
       entries
   with
  | Memory.Sharded_violation lines ->
      (match lines with
      | [] -> t.t_hard <- true
      | ls -> t.t_conflicts <- ls @ t.t_conflicts);
      t.abort <- true
  | _ ->
      t.t_hard <- true;
      t.abort <- true)

let run_windows t cr ~until ~max_events ~ev_base ~dropped =
  let continue_run = ref true in
  while !continue_run && not t.abort do
    let mn = ref max_int in
    let busy = ref 0 in
    let solo_sid = ref 0 in
    Array.iter
      (fun sh ->
        let nt = Event_queue.next_time sh.q in
        if nt <> max_int then begin
          incr busy;
          solo_sid := sh.sid
        end;
        if nt < !mn then mn := nt)
      t.shards;
    if !mn = max_int then continue_run := false
    else if !mn > until then begin
      Array.iter
        (fun sh -> dropped := !dropped + Event_queue.length sh.q)
        t.shards;
      continue_run := false
    end
    else begin
      (* Solo window: exactly one shard holds events, so no other shard
         can race it inside this window — stretch the window to [until],
         drain on the calling domain (skipping the crew handshake), and
         run foreign-resident lines directly instead of deferring them.
         Stamp checks stay armed, so if the window surfaces work for
         another shard mid-flight (a cross-shard wake) any resulting
         mis-order aborts and replays like any other conflict. *)
      let solo = !busy = 1 in
      let wend =
        if solo || until - !mn <= t.lookahead then until
        else !mn + t.lookahead
      in
      Array.iter (fun sh -> sh.s_window_end <- wend) t.shards;
      t.n_windows <- t.n_windows + 1;
      (* booked immediately (not on run success) so aborted attempts'
         windows show up in the cumulative telemetry too *)
      t.cum.c_windows <- t.cum.c_windows + 1;
      (match Metrics.current () with
      | Some m -> Metrics.tally m ~kind:Metrics.k_windows ~id:0 1
      | None -> ());
      (match t.trace with
      | Some tr ->
          Trace.emit tr ~ts:!mn
            (Trace.E_window
               {
                 upto = (if wend = max_int then -1 else wend);
                 shards = t.nshards;
                 solo;
               })
      | None -> ());
      t.in_window <- true;
      t.solo_run <- solo;
      Memory.set_solo t.mem solo;
      Memory.freeze t.mem true;
      (if solo then drain_window_safe t t.shards.(!solo_sid)
       else
         match cr with
         | Some c -> crew_window t c
         | None -> Array.iter (fun sh -> drain_window_safe t sh) t.shards);
      t.in_window <- false;
      t.solo_run <- false;
      Memory.set_solo t.mem false;
      Memory.freeze t.mem false;
      (* [-1] disables direct-run while the coordinator executes *)
      Array.iter (fun sh -> sh.s_window_end <- -1) t.shards;
      if not t.abort then run_coordinator t;
      (match t.trace with
      | Some tr ->
          Trace.emit tr ~ts:(now_of t)
            (Trace.E_window_done { aborted = t.abort })
      | None -> ());
      if not t.abort then begin
        t.res_hwm <-
          Memory.assign_residency t.mem
            ~shard_of_node:(fun n -> n mod t.nshards)
            ~from:t.res_hwm;
        apply_promotions t;
        if ev_total t - ev_base > max_events then begin
          t.t_hard <- true;
          t.abort <- true
        end
      end
    end
  done

(* Run the simulation until no events remain.  [until] stops the run at
   that virtual time (a backstop against threads that spin forever);
   [max_events] bounds total logical resumptions.  Returns the final
   time plus a structured health record: [Completed] when every thread
   returned, [Stalled] when live threads remained — either because the
   [until] backstop dropped their pending events or because the queue
   drained with threads still blocked (a deadlock, e.g. a barrier that
   never fills, a lock whose holder crash-stopped, or a parked waiter
   no access will ever wake). *)
let run_health ?(until = max_int) ?(max_events = 200_000_000) t =
  let wall_start = Unix.gettimeofday () in
  let start_now = now_of t in
  let start_elided = (Memory.stats t.mem).Stats.elided_probes in
  let ev_base = ev_total t in
  let parks_base = parks_total t in
  let wakeups_base = wakeups_total t in
  let dropped = ref 0 in
  t.run_until <- until;
  if t.nshards = 1 then begin
    let sh = t.shards.(0) in
    let p = sh.popped in
    let continue_run = ref true in
    while !continue_run do
      if not (Event_queue.pop_into sh.q p) then continue_run := false
      else if p.Event_queue.p_time > until then begin
        (* the popped event plus everything still queued is discarded *)
        dropped := 1 + Event_queue.length sh.q;
        continue_run := false
      end
      else begin
        sh.s_events <- sh.s_events + 1;
        if sh.s_events - ev_base > max_events then
          raise (Simulation_runaway (sh.s_events - ev_base));
        sh.s_fuel <- 0;
        sh.s_now <- p.Event_queue.p_time;
        p.Event_queue.p_run ()
      end
    done
  end
  else begin
    (* workloads holding cross-thread state outside the simulated
       memory (hardware message queues) declared themselves unshardable
       at setup time — abort before doing any work *)
    if Memory.serial_required t.mem then raise Shard_conflict;
    t.abort <- false;
    (* window fusing: a second [run_health] on an already-windowed sim
       (the harness probing in slices) keeps the first call's stamps and
       residency.  Leftover stamps are only ever *higher* than a fresh
       clear would leave, so fusing can only add aborts — never hide a
       conflict — and residency is monotone under [assign_residency]. *)
    if not (t.stamps_armed && !window_fusing) then begin
      Memory.clear_stamps t.mem;
      t.res_hwm <-
        Memory.assign_residency t.mem
          ~shard_of_node:(fun n -> n mod t.nshards)
          ~from:0;
      apply_promotions t
    end;
    t.stamps_armed <- true;
    let cr = if t.use_domains then Some (crew_acquire (t.nshards - 1)) else None in
    Fun.protect
      ~finally:(fun () ->
        (match cr with Some c -> crew_release c | None -> ());
        t.in_window <- false;
        t.solo_run <- false;
        Memory.set_solo t.mem false;
        Memory.freeze t.mem false)
      (fun () -> run_windows t cr ~until ~max_events ~ev_base ~dropped);
    if t.abort then begin
      (match t.trace with
      | Some tr ->
          let line = match conflict_lines t with l :: _ -> l | [] -> -1 in
          Trace.emit_end tr
            (Trace.E_spec_abort { line; hard = hard_aborted t })
      | None -> ());
      raise Shard_conflict
    end;
    (* the run is good: merge per-shard memory statistics into slot 0
       so [Memory.stats] / [perf] report serial-identical totals *)
    Memory.merge_slots t.mem
  end;
  (* close the open run-state spans so the thread gauges cover the
     whole run, whichever state each thread ends it in *)
  if macc_here t <> None then begin
    let fin = now_of t in
    Hashtbl.iter
      (fun _ st ->
        if st.m_state < m_dead then m_trans t st ~at:fin st.m_state)
      t.tstates
  end;
  let executed = ev_total t - ev_base in
  t.cum.c_events <- t.cum.c_events + executed;
  t.cum.c_parks <- t.cum.c_parks + (parks_total t - parks_base);
  t.cum.c_wakeups <- t.cum.c_wakeups + (wakeups_total t - wakeups_base);
  t.cum.c_sim_cycles <- t.cum.c_sim_cycles + (now_of t - start_now);
  t.cum.c_elided <-
    t.cum.c_elided
    + ((Memory.stats t.mem).Stats.elided_probes - start_elided);
  (* link-queued cycles book only what this run added beyond what was
     already booked: an aborted attempt raises before reaching here and
     its stats roll back with the memory, so replays never double-count *)
  let lq = (Memory.stats t.mem).Stats.link_queued_cycles in
  t.cum.c_link_queued <- t.cum.c_link_queued + (lq - t.booked_lq);
  t.booked_lq <- lq;
  (* the run survived: its slot accumulators hold the serial-equivalent
     schedule's metric samples and may reach the domain sink.  Draining
     only here — never on the abort path above — keeps a replayed
     attempt from re-contributing samples (the abort raises first, and
     [Memory.restore] rolls the accumulators back with everything
     else); the merge empties the accumulators, so callers that step a
     simulation through several runs drain incrementally without
     overlap. *)
  Memory.drain_metrics t.mem;
  let wall_ns =
    int_of_float ((Unix.gettimeofday () -. wall_start) *. 1e9)
  in
  t.wall_ns <- t.wall_ns + wall_ns;
  t.cum.c_wall_ns <- t.cum.c_wall_ns + wall_ns;
  let verdict =
    if live_total t <= 0 then Completed
    else
      match most_stalled t with
      | Some st ->
          Stalled
            { tid = st.tid; core = st.core; last_progress = st.last_progress }
      | None -> Completed
  in
  ( now_of t,
    {
      verdict;
      crashed = List.rev t.crashed_tids;
      preemptions =
        Array.fold_left (fun acc sh -> acc + sh.s_preempt) 0 t.shards;
      jitter_events =
        Array.fold_left (fun acc sh -> acc + sh.s_jitter) 0 t.shards;
      dropped_events = !dropped;
    } )

let run ?until ?max_events t = fst (run_health ?until ?max_events t)

(* ------------------------------------------------------------------ *)
(* Engine performance counters. *)

type perf = {
  events : int; (* logical resumptions: event pops + direct-run continues *)
  parks : int; (* threads parked event-driven *)
  wakeups : int; (* parked threads woken by a real access *)
  elided_probes : int; (* inert spin probes accounted without an event *)
  link_queued_cycles : int;
      (* cycles memory ops spent queued behind busy interconnect
         resources (links and home directories); strategy-independent
         like the fields above it *)
  sim_cycles : int; (* virtual time advanced *)
  wall_ns : int; (* wall-clock spent in the run loop *)
  (* Speculation telemetry (all zero on serial runs).  These depend on
     the execution strategy — shard count, replay luck, policy — so
     identity checks between serial and sharded runs must exclude
     them. *)
  windows : int; (* PDES windows executed (including aborted ones) *)
  speculative_replays : int; (* aborted attempts replayed with promotions *)
  promoted_lines : int; (* lines promoted to coordinator-mediated access *)
  serial_escalations : int; (* runs that gave up on sharding entirely *)
}

let perf t =
  {
    events = ev_total t;
    parks = parks_total t;
    wakeups = wakeups_total t;
    elided_probes = (Memory.stats t.mem).Stats.elided_probes;
    link_queued_cycles = (Memory.stats t.mem).Stats.link_queued_cycles;
    sim_cycles = now_of t;
    wall_ns = t.wall_ns;
    windows = t.n_windows;
    speculative_replays = t.n_replays;
    promoted_lines = t.n_promoted;
    serial_escalations = 0 (* per-run escalation is booked by the harness *);
  }

(* Totals across every simulation run by the *calling domain* (the
   benchmark harness samples deltas around each job in the domain that
   executes it, then sums per-job deltas). *)
let cumulative_perf () =
  let c = counters () in
  {
    events = c.c_events;
    parks = c.c_parks;
    wakeups = c.c_wakeups;
    elided_probes = c.c_elided;
    link_queued_cycles = c.c_link_queued;
    sim_cycles = c.c_sim_cycles;
    wall_ns = c.c_wall_ns;
    windows = c.c_windows;
    speculative_replays = c.c_replays;
    promoted_lines = c.c_promoted;
    serial_escalations = c.c_escalations;
  }

(* Pure arithmetic on perf records, for aggregating per-job deltas. *)
let perf_zero =
  {
    events = 0;
    parks = 0;
    wakeups = 0;
    elided_probes = 0;
    link_queued_cycles = 0;
    sim_cycles = 0;
    wall_ns = 0;
    windows = 0;
    speculative_replays = 0;
    promoted_lines = 0;
    serial_escalations = 0;
  }

let perf_add a b =
  {
    events = a.events + b.events;
    parks = a.parks + b.parks;
    wakeups = a.wakeups + b.wakeups;
    elided_probes = a.elided_probes + b.elided_probes;
    link_queued_cycles = a.link_queued_cycles + b.link_queued_cycles;
    sim_cycles = a.sim_cycles + b.sim_cycles;
    wall_ns = a.wall_ns + b.wall_ns;
    windows = a.windows + b.windows;
    speculative_replays = a.speculative_replays + b.speculative_replays;
    promoted_lines = a.promoted_lines + b.promoted_lines;
    serial_escalations = a.serial_escalations + b.serial_escalations;
  }

let perf_diff a b =
  {
    events = a.events - b.events;
    parks = a.parks - b.parks;
    wakeups = a.wakeups - b.wakeups;
    elided_probes = a.elided_probes - b.elided_probes;
    link_queued_cycles = a.link_queued_cycles - b.link_queued_cycles;
    sim_cycles = a.sim_cycles - b.sim_cycles;
    wall_ns = a.wall_ns - b.wall_ns;
    windows = a.windows - b.windows;
    speculative_replays = a.speculative_replays - b.speculative_replays;
    promoted_lines = a.promoted_lines - b.promoted_lines;
    serial_escalations = a.serial_escalations - b.serial_escalations;
  }
