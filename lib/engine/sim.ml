(* The discrete-event simulation engine.

   Simulated threads are ordinary OCaml functions running as coroutines
   via effect handlers: every memory operation (or explicit pause)
   performs an effect; the engine computes the operation's virtual-time
   cost against the coherent memory model and resumes the thread when it
   completes.  This lets the lock/message-passing algorithms be written
   in direct style, exactly as their native counterparts.

   Spin loops go through a dedicated effect ([E_spin], surfaced as
   {!spin_load} and friends): semantically the loop "probe; while the
   result equals [while_]: pause [poll]; probe", but executed
   event-driven — once the probes reach a steady state (inert local
   hits), the thread parks on the line's wait list inside the memory
   model and is woken, on the exact virtual-time grid the poll loop
   would have used, by the next real access to the line.  Simulated
   timestamps are preserved; only the O(poll-iterations) event churn
   collapses to O(1).  Under fault injection the same effect falls back
   to literal pause/probe stepping so every scheduling point draws from
   the per-thread fault streams in the original order.

   Two robustness layers sit on top of the pure engine:

   - Fault injection ([Fault.spec], strictly opt-in): every scheduling
     point — the completion of a memory op or pause — may be perturbed
     by deterministic, seeded preemption/jitter draws, and threads may
     crash-stop.  With [Fault.none] (the default) no draws are consumed
     and runs are bit-identical to the fault-free engine.

   - A progress watchdog: the engine records per-thread last-progress
     timestamps, so [run_health] can report *why* a run ended —
     [Completed] (all threads returned) versus [Stalled] (live threads
     remained at the [until] backstop or deadlocked on an empty queue)
     — instead of silently discarding the tail of the schedule. *)

open Ssync_platform
open Ssync_coherence
module Rng = Ssync_workload.Rng
module Trace = Ssync_trace.Trace

(* Per-thread bookkeeping for faults and the watchdog.  [pend_ik] /
   [pend_uk] hold the thread's suspended continuation between the
   scheduling of its resumption and the event firing; [run_ik] /
   [run_uk] are closures allocated once per thread that continue it —
   the hot path schedules them directly instead of allocating a fresh
   closure per operation.  A coroutine has at most one pending
   resumption, so one slot of each type suffices. *)
type thread_state = {
  tid : int;
  core : int;
  rng : Rng.t; (* this thread's private fault stream *)
  crash_at : int; (* -1 = never *)
  mutable last_progress : int;
  mutable finished : bool;
  mutable crashed : bool;
  mutable pend_ik : (int, unit) Effect.Deep.continuation option;
  mutable pend_iv : int;
  mutable pend_uk : (unit, unit) Effect.Deep.continuation option;
  mutable run_ik : unit -> unit;
  mutable run_uk : unit -> unit;
}

(* Cumulative engine counters for the benchmark harness's perf report.
   Domain-local: each domain accumulates the simulations it ran itself,
   so concurrent sims never race on the totals and a parallel harness
   can attribute counters per job by snapshotting around it in the
   executing domain. *)
type counters = {
  mutable c_events : int;
  mutable c_parks : int;
  mutable c_wakeups : int;
  mutable c_elided : int;
  mutable c_sim_cycles : int;
  mutable c_wall_ns : int;
}

let counters_key : counters Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        c_events = 0;
        c_parks = 0;
        c_wakeups = 0;
        c_elided = 0;
        c_sim_cycles = 0;
        c_wall_ns = 0;
      })

let counters () = Domain.DLS.get counters_key

type t = {
  platform : Platform.t;
  mem : Memory.t;
  events : Event_queue.t;
  mutable now : int;
  mutable live_threads : int;
  mutable spawned : int;
  faults : Fault.spec;
  faults_active : bool;
  faults_parkable : bool;
      (* active spec is jitter-only: parking stays exact because inert
         probes draw nothing (see [event_driven] / [spin_loop]) *)
  parking : bool; (* event-driven waiter wakeup enabled? *)
  tstates : (int, thread_state) Hashtbl.t;
  mutable preempt_count : int;
  mutable jitter_count : int;
  mutable crashed_tids : int list; (* reversed *)
  (* engine performance counters *)
  mutable events_run : int;
  mutable parks : int;
  mutable wakeups : int;
  mutable wall_ns : int;
  cum : counters; (* the creating domain's cumulative totals *)
  (* direct-run bookkeeping (see [resume_int]): the current run's
     [until] backstop, and a bound on consecutively direct-run steps so
     long event-free stretches cannot grow the native stack without
     limit *)
  mutable run_until : int;
  mutable direct_fuel : int;
  trace : Trace.t option;
      (* the domain's trace sink, cached at creation time (zero
         overhead when off: one option match per hook site) *)
}

type barrier = {
  mutable expected : int;
  mutable arrived : int;
  mutable waiters : (thread_state * (unit, unit) Effect.Deep.continuation) list;
}

(* A single-waiter parking spot for non-memory waiting (e.g. the
   Tilera's hardware message queues): the waiter parks with its poll
   period; [unpark] wakes it at the first poll-grid point after the
   state change, exactly where the poll loop would have noticed. *)
type parker = {
  mutable seat :
    (thread_state * (unit, unit) Effect.Deep.continuation) option;
  mutable seat_at : int;
  mutable seat_poll : int;
}

type _ Effect.t +=
  | E_mem : Arch.memop * Memory.addr * int * int -> int Effect.t
  | E_casf : Memory.addr * int * int -> int Effect.t
    (* CAS returning the observed value instead of the success flag *)
  | E_spin : Arch.memop * Memory.addr * int * int * int * int -> int Effect.t
  | E_pause : int -> unit Effect.t
  | E_now : int Effect.t
  | E_self : (int * int) Effect.t (* (core, tid) *)
  | E_barrier : barrier -> unit Effect.t
  | E_park : parker * int -> unit Effect.t
  | E_unpark : parker -> unit Effect.t
  | E_evd : bool Effect.t (* is event-driven waiting active? *)
  | E_dead : int -> bool Effect.t
    (* has thread [tid] crash-stopped?  The oracle robust locks build
       their owner-death detection on: true from the moment virtual
       time reaches the victim's crash time, whether or not the crash
       event itself has fired yet *)

(* Default for [create]'s [?parking] — lets tests A/B the event-driven
   path against literal polling without threading a flag through every
   harness layer. *)
let parking_default = ref true


let create ?(faults = Fault.none) ?parking platform =
  let faults = Fault.validate faults in
  let parking =
    match parking with Some p -> p | None -> !parking_default
  in
  {
    platform;
    mem = Memory.create platform;
    events = Event_queue.create ();
    now = 0;
    live_threads = 0;
    spawned = 0;
    faults;
    faults_active = not (Fault.is_none faults);
    faults_parkable = (not (Fault.is_none faults)) && Fault.parkable faults;
    parking;
    tstates = Hashtbl.create 64;
    preempt_count = 0;
    jitter_count = 0;
    crashed_tids = [];
    events_run = 0;
    parks = 0;
    wakeups = 0;
    wall_ns = 0;
    cum = counters ();
    run_until = max_int;
    direct_fuel = 0;
    trace = Trace.current ();
  }

let memory t = t.mem
let platform t = t.platform
let now_of t = t.now

(* Event-driven waiting applies without faults and under jitter-only
   specs.  Jitter draws happen per *real* memory op; an inert probe —
   exactly the kind parking elides — is made to consume no draw (see
   [spin_loop]), so the per-thread draw sequence is identical whether
   the waiter parked or polled.  Preemption and crash specs keep the
   polling fallback: their draws key off every scheduling point, which
   parking removes. *)
let event_driven t =
  t.parking && ((not t.faults_active) || t.faults_parkable)

let schedule t ~at run =
  Event_queue.push t.events ~time:(max at t.now) run

(* ------------------------------------------------------------------ *)
(* Operations available *inside* a simulated thread.  Calling them
   outside of [spawn]ed code raises [Effect.Unhandled]. *)

let load a = Effect.perform (E_mem (Arch.Load, a, 0, 0))
let store a v = ignore (Effect.perform (E_mem (Arch.Store, a, v, 0)))

(* Store posted through the store buffer: the thread pays only the
   retire cost while the transfer (value, invalidations, occupancy)
   completes in the background — [operand2 = 1] marks it for the
   memory model. *)
let store_posted a v = ignore (Effect.perform (E_mem (Arch.Store, a, v, 1)))

let cas a ~expected ~desired =
  Effect.perform (E_mem (Arch.Cas, a, expected, desired)) = 1

(* CAS that returns the value it observed (success iff it equals
   [expected]): a retry loop built on it sees the line's value at its
   own probe time instead of re-reading a stale snapshot. *)
let cas_fetch a ~expected ~desired =
  Effect.perform (E_casf (a, expected, desired))

let fai a = Effect.perform (E_mem (Arch.Fai, a, 1, 0))

(* Atomic fetch-and-add by [k] (k >= 0); [faa a 0] is an exclusive
   atomic read: it returns the value and leaves the line Modified at the
   caller, modeling a prefetchw+load probe. *)
let faa a k =
  if k < 0 then invalid_arg "Sim.faa: negative increment";
  Effect.perform (E_mem (Arch.Fai, a, k, 0))

(* Store-class fetch-and-add: an increment of a field only this thread
   writes (e.g. a ticket lock's [current] on release).  Applied
   atomically by the model but costed as a plain store. *)
let faa_store a k =
  if k < 0 then invalid_arg "Sim.faa_store: negative increment";
  Effect.perform (E_mem (Arch.Fai, a, k, 1))

(* [tas] returns [true] when the caller won (the previous value was 0). *)
let tas a = Effect.perform (E_mem (Arch.Tas, a, 0, 0)) = 0
let swap a v = Effect.perform (E_mem (Arch.Swap, a, v, 0))
let pause cycles = if cycles > 0 then Effect.perform (E_pause cycles)
let now () = Effect.perform E_now
let self_core () = fst (Effect.perform E_self)
let self_tid () = snd (Effect.perform E_self)

(* {2 Spin primitives}

   Each is exactly the loop [let x = probe in if x = while_ then
   (pause poll; retry) else x] of the hand-written spinlocks, executed
   event-driven (see the header comment).  The first probe runs
   immediately, pauses sit between probes, and the call returns the
   first probe result that differs from [while_]. *)

let spin_check poll =
  if poll < 0 then invalid_arg "Sim.spin: negative poll interval"

let spin_load a ~while_ ~poll =
  spin_check poll;
  Effect.perform (E_spin (Arch.Load, a, 0, 0, while_, poll))

(* Spin until the test-and-set wins (previous value 0); continues while
   the probe returns 1. *)
let spin_tas a ~poll =
  spin_check poll;
  ignore (Effect.perform (E_spin (Arch.Tas, a, 0, 0, 1, poll)))

(* Spin until the CAS succeeds; continues while the probe fails. *)
let spin_cas a ~expected ~desired ~poll =
  spin_check poll;
  ignore (Effect.perform (E_spin (Arch.Cas, a, expected, desired, 0, poll)))

let spin_swap a v ~while_ ~poll =
  spin_check poll;
  Effect.perform (E_spin (Arch.Swap, a, v, 0, while_, poll))

(* Spin probing with an exclusive atomic read (prefetchw-style
   [faa a 0]). *)
let spin_faa0 a ~while_ ~poll =
  spin_check poll;
  Effect.perform (E_spin (Arch.Fai, a, 0, 0, while_, poll))

let make_barrier n : barrier = { expected = n; arrived = 0; waiters = [] }
let await b = Effect.perform (E_barrier b)

let make_parker () : parker = { seat = None; seat_at = 0; seat_poll = 1 }

let park pk ~poll =
  if poll <= 0 then invalid_arg "Sim.park: poll must be positive";
  Effect.perform (E_park (pk, poll))

let unpark pk = Effect.perform (E_unpark pk)
let event_driven_waits () = Effect.perform E_evd

(* Cost-free oracle: robust locks model the OS's exact knowledge of
   which threads died (robust-futex EOWNERDEAD bookkeeping), so the
   query itself adds no events and no latency. *)
let tid_crashed tid = Effect.perform (E_dead tid)

(* ------------------------------------------------------------------ *)
(* Fault hooks. *)

(* Extra completion delay at a scheduling point: latency jitter (memory
   ops only) plus preemption — the thread is descheduled for the drawn
   duration, whatever it holds staying held.  Draws come from the
   thread's private stream, so faults in one thread never perturb
   another thread's draws. *)
let trace_fault t st kind cycles =
  match t.trace with
  | Some tr ->
      Trace.emit tr ~ts:t.now
        (Trace.E_fault { tid = st.tid; kind; cycles })
  | None -> ()

let fault_extra t st ~mem_op =
  if not t.faults_active then 0
  else begin
    let f = t.faults in
    let extra = ref 0 in
    if mem_op && f.Fault.jitter_prob > 0.
       && Rng.float st.rng < f.Fault.jitter_prob
    then begin
      let cy = Fault.sample st.rng f.Fault.jitter_cycles in
      extra := !extra + cy;
      t.jitter_count <- t.jitter_count + 1;
      trace_fault t st Trace.Jitter cy
    end;
    if f.Fault.preempt_prob > 0. && Rng.float st.rng < f.Fault.preempt_prob
    then begin
      let cy = Fault.sample st.rng f.Fault.preempt_cycles in
      extra := !extra + cy;
      t.preempt_count <- t.preempt_count + 1;
      trace_fault t st Trace.Preempt cy
    end;
    !extra
  end

(* Schedule [f] at [at] on [st]'s behalf — unless the thread's crash
   time falls first, in which case [f] is dropped and the crash is
   booked at the crash time itself (so it is recorded even when the
   never-to-happen step would fall past the [until] backstop).  A
   crash-stopped thread is simply never resumed: no unwinding, no
   cleanup — whatever it holds stays held, which is what crash-stop
   means. *)
let crash_sched t st ~at f =
  if st.crash_at >= 0 && (not st.crashed) && at >= st.crash_at then
    schedule t ~at:(max t.now st.crash_at) (fun () ->
        if not st.crashed then begin
          st.crashed <- true;
          t.crashed_tids <- st.tid :: t.crashed_tids;
          t.live_threads <- t.live_threads - 1;
          trace_fault t st Trace.Crash 0
        end)
  else
    schedule t ~at (fun () ->
        st.last_progress <- t.now;
        f ())

let resume : type a.
    t -> thread_state -> (a, unit) Effect.Deep.continuation -> at:int -> a -> unit
    =
 fun t st k ~at v -> crash_sched t st ~at (fun () -> Effect.Deep.continue k v)

(* Direct-run: a resumption may skip the event queue entirely and
   continue the thread synchronously when nothing can observe the
   difference — no faults active (fault draws key off event shapes), the
   completion time does not cross the run's [until] backstop (the queue
   would have dropped it), and it falls *strictly* before every queued
   event (so no other event could interleave, and same-time FIFO order
   is preserved).  Timestamps, access order and results are exactly
   those of the queued schedule; only the per-operation queue round
   trip — and its event count — disappears.  [direct_fuel], reset at
   every real event pop, bounds consecutive synchronous continues so an
   event-free stretch cannot grow the native stack without limit. *)
let direct_fuel_max = 1000

let can_direct t ~at =
  (not t.faults_active)
  && at <= t.run_until
  && t.direct_fuel < direct_fuel_max
  && at < Event_queue.next_time t.events

(* Hot-path resumptions: when the thread cannot crash, either continue
   it directly (see above) or park the continuation in its [pend_*]
   slot and schedule the preallocated runner — zero closure allocations
   per operation.  With a crash time set, fall back to [resume] so the
   crash bookkeeping (and its exact event shapes) stays byte-identical.
   Direct-run applies only to completions of the thread's own
   operations (memory ops, pauses): those run from the top of the
   engine loop, never from inside another thread's access processing,
   so continuing synchronously cannot re-enter the memory model. *)
let resume_int t st (k : (int, unit) Effect.Deep.continuation) ~at v =
  if st.crash_at >= 0 then resume t st k ~at v
  else if can_direct t ~at then begin
    t.direct_fuel <- t.direct_fuel + 1;
    t.now <- at;
    st.last_progress <- at;
    Effect.Deep.continue k v
  end
  else begin
    st.pend_ik <- Some k;
    st.pend_iv <- v;
    schedule t ~at st.run_ik
  end

(* Unit-typed completion of the thread's own step (pause): direct-run
   capable, like [resume_int]. *)
let resume_unit_direct t st (k : (unit, unit) Effect.Deep.continuation) ~at =
  if st.crash_at >= 0 then resume t st k ~at ()
  else if can_direct t ~at then begin
    t.direct_fuel <- t.direct_fuel + 1;
    t.now <- at;
    st.last_progress <- at;
    Effect.Deep.continue k ()
  end
  else begin
    st.pend_uk <- Some k;
    schedule t ~at st.run_uk
  end

(* Wakeups issued on behalf of *other* threads (barriers, parkers):
   always scheduled, because the issuing handler may wake several
   threads at one captured timestamp — running one synchronously would
   advance the clock under the others' feet. *)
let resume_unit t st (k : (unit, unit) Effect.Deep.continuation) ~at =
  if st.crash_at >= 0 then resume t st k ~at ()
  else begin
    st.pend_uk <- Some k;
    schedule t ~at st.run_uk
  end

(* Schedule a preallocated engine-internal step ([f] updates
   [last_progress] itself at entry) without wrapping it in a fresh
   closure unless the crash path demands it. *)
let sched_step t st ~at f =
  if st.crash_at >= 0 then crash_sched t st ~at f else schedule t ~at f

(* The [E_spin] state machine.  Invoked with the thread suspended right
   after observing [while_]; the first probe issues at [now + poll],
   exactly like the poll loop's [pause poll; probe].  Whenever the next
   probe would be inert, the thread parks on the line and the memory
   model wakes it — via [replay], on the original probe grid — when a
   real access disturbs the line. *)
let spin_loop t st (k : (int, unit) Effect.Deep.continuation) op a ~operand
    ~operand2 ~while_ ~poll =
  let core = st.core in
  (* [probe] and [continue_spin] are allocated once per spin episode and
     update [last_progress] themselves, so the per-probe steps schedule
     them directly ([sched_step]) with no wrapper closure. *)
  let rec probe () =
    (* [t.now] is the probe's issue time *)
    st.last_progress <- t.now;
    (match t.trace with Some tr -> Trace.set_tid tr st.tid | None -> ());
    (* Under a jitter-only spec an inert probe consumes no fault draw:
       parking elides exactly the inert probes, so charging draws only
       to non-inert probes keeps the per-thread draw sequence — and so
       the whole schedule — identical parked or polled. *)
    let inert =
      t.faults_parkable
      && Memory.probe_would_elide t.mem ~core op a ~operand ~operand2
           ~while_
    in
    let latency =
      Memory.access_lat t.mem ~core ~now:t.now op a ~operand ~operand2
    in
    let x = Memory.last_result t.mem in
    let latency =
      if inert then latency else latency + fault_extra t st ~mem_op:true
    in
    if x <> while_ then resume_int t st k ~at:(t.now + latency) x
    else sched_step t st ~at:(t.now + latency) continue_spin
  and continue_spin () =
    (* [t.now] is the completion time of a probe that returned
       [while_]; emulate [pause poll; probe] — or park. *)
    st.last_progress <- t.now;
    if
      event_driven t
      && Memory.try_park t.mem ~core ~now:t.now op a ~operand ~operand2
           ~while_ ~poll ~replay:(fun at ->
             t.wakeups <- t.wakeups + 1;
             t.cum.c_wakeups <- t.cum.c_wakeups + 1;
             (match t.trace with
             | Some tr ->
                 Trace.emit tr ~ts:at (Trace.E_wake { tid = st.tid; addr = a })
             | None -> ());
             sched_step t st ~at probe)
    then begin
      t.parks <- t.parks + 1;
      t.cum.c_parks <- t.cum.c_parks + 1;
      match t.trace with
      | Some tr ->
          Trace.emit tr ~ts:t.now (Trace.E_park { tid = st.tid; addr = a })
      | None -> ()
    end
    else if poll = 0 then probe ()
    else begin
      let cy = max 1 poll + fault_extra t st ~mem_op:false in
      sched_step t st ~at:(t.now + cy) probe
    end
  in
  continue_spin ()

(* ------------------------------------------------------------------ *)

let spawn t ~core body =
  Topology.check t.platform.Platform.topo core;
  let tid = t.spawned in
  t.spawned <- tid + 1;
  t.live_threads <- t.live_threads + 1;
  let st =
    {
      tid;
      core;
      rng = Fault.stream t.faults ~tid;
      crash_at = Fault.crash_time t.faults ~tid;
      last_progress = t.now;
      finished = false;
      crashed = false;
      pend_ik = None;
      pend_iv = 0;
      pend_uk = None;
      run_ik = ignore;
      run_uk = ignore;
    }
  in
  st.run_ik <-
    (fun () ->
      st.last_progress <- t.now;
      match st.pend_ik with
      | Some k ->
          st.pend_ik <- None;
          Effect.Deep.continue k st.pend_iv
      | None -> ());
  st.run_uk <-
    (fun () ->
      st.last_progress <- t.now;
      match st.pend_uk with
      | Some k ->
          st.pend_uk <- None;
          Effect.Deep.continue k ()
      | None -> ());
  Hashtbl.replace t.tstates tid st;
  (match t.trace with
  | Some tr -> Trace.emit tr ~ts:t.now (Trace.E_thread { tid; core })
  | None -> ());
  let open Effect.Deep in
  let handler : (unit, unit) handler =
    {
      retc =
        (fun () ->
          st.finished <- true;
          st.last_progress <- t.now;
          t.live_threads <- t.live_threads - 1);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_mem (op, a, op1, op2) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (match t.trace with
                  | Some tr -> Trace.set_tid tr tid
                  | None -> ());
                  let latency =
                    Memory.access_lat t.mem ~core ~now:t.now op a ~operand:op1
                      ~operand2:op2
                  in
                  let v = Memory.last_result t.mem in
                  let latency = latency + fault_extra t st ~mem_op:true in
                  resume_int t st k ~at:(t.now + latency) v)
          | E_casf (a, expected, desired) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (match t.trace with
                  | Some tr -> Trace.set_tid tr tid
                  | None -> ());
                  let latency =
                    Memory.access_lat t.mem ~core ~now:t.now Arch.Cas a
                      ~operand:expected ~operand2:desired ~fetch:true
                  in
                  let v = Memory.last_result t.mem in
                  let latency = latency + fault_extra t st ~mem_op:true in
                  resume_int t st k ~at:(t.now + latency) v)
          | E_spin (op, a, op1, op2, while_, poll) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  spin_loop t st k op a ~operand:op1 ~operand2:op2 ~while_
                    ~poll)
          | E_pause cycles ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let cycles = max 1 cycles + fault_extra t st ~mem_op:false in
                  resume_unit_direct t st k ~at:(t.now + cycles))
          | E_now ->
              Some (fun (k : (a, unit) continuation) -> continue k t.now)
          | E_self ->
              Some (fun (k : (a, unit) continuation) -> continue k (core, tid))
          | E_barrier b ->
              Some
                (fun (k : (a, unit) continuation) ->
                  st.last_progress <- t.now;
                  b.arrived <- b.arrived + 1;
                  if b.arrived >= b.expected then begin
                    let to_wake = b.waiters in
                    b.waiters <- [];
                    b.arrived <- 0;
                    List.iter
                      (fun (wst, w) -> resume_unit t wst w ~at:t.now)
                      to_wake;
                    resume_unit t st k ~at:t.now
                  end
                  else b.waiters <- (st, k) :: b.waiters)
          | E_park (pk, poll) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if event_driven t then begin
                    if pk.seat <> None then
                      invalid_arg "Sim.park: parker already occupied";
                    pk.seat <- Some (st, k);
                    pk.seat_at <- t.now;
                    pk.seat_poll <- poll;
                    t.parks <- t.parks + 1;
                    t.cum.c_parks <- t.cum.c_parks + 1;
                    match t.trace with
                    | Some tr ->
                        Trace.emit tr ~ts:t.now
                          (Trace.E_park { tid = st.tid; addr = -1 })
                    | None -> ()
                  end
                  else begin
                    (* literal polling: one pause quantum, the caller's
                       loop re-checks *)
                    let cy = max 1 poll + fault_extra t st ~mem_op:false in
                    resume_unit t st k ~at:(t.now + cy)
                  end)
          | E_unpark pk ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (match pk.seat with
                  | Some (wst, wk) ->
                      pk.seat <- None;
                      (* first poll-grid point after the state change *)
                      let dt = t.now - pk.seat_at in
                      let steps =
                        max 1 ((dt + pk.seat_poll - 1) / pk.seat_poll)
                      in
                      t.wakeups <- t.wakeups + 1;
                      t.cum.c_wakeups <- t.cum.c_wakeups + 1;
                      (match t.trace with
                      | Some tr ->
                          Trace.emit tr
                            ~ts:(pk.seat_at + (steps * pk.seat_poll))
                            (Trace.E_wake { tid = wst.tid; addr = -1 })
                      | None -> ());
                      resume_unit t wst wk
                        ~at:(pk.seat_at + (steps * pk.seat_poll))
                  | None -> ());
                  continue k ())
          | E_evd ->
              Some
                (fun (k : (a, unit) continuation) ->
                  continue k (event_driven t))
          | E_dead qtid ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let dead =
                    match Hashtbl.find_opt t.tstates qtid with
                    | Some qst ->
                        qst.crashed
                        || (qst.crash_at >= 0 && t.now >= qst.crash_at)
                    | None -> false
                  in
                  continue k dead)
          | _ -> None);
    }
  in
  schedule t ~at:t.now (fun () ->
      st.last_progress <- t.now;
      match_with body () handler)

exception Simulation_runaway of int

(* ------------------------------------------------------------------ *)
(* Run loop and watchdog. *)

type verdict =
  | Completed
  | Stalled of { tid : int; core : int; last_progress : int }

type health = {
  verdict : verdict;
  crashed : int list; (* tids crash-stopped by fault injection *)
  preemptions : int; (* injected preemption events *)
  jitter_events : int; (* injected latency-jitter events *)
  dropped_events : int; (* events discarded past [until] *)
}

let verdict_to_string = function
  | Completed -> "completed"
  | Stalled { tid; core; last_progress } ->
      Printf.sprintf "stalled (tid %d on core %d, last progress at %d)" tid
        core last_progress

let health_to_string h =
  let base = verdict_to_string h.verdict in
  let extras =
    List.filter
      (fun s -> s <> "")
      [
        (if h.crashed = [] then ""
         else
           Printf.sprintf "crashed tids: %s"
             (String.concat "," (List.map string_of_int h.crashed)));
        (if h.preemptions = 0 then ""
         else Printf.sprintf "%d preemptions" h.preemptions);
        (if h.jitter_events = 0 then ""
         else Printf.sprintf "%d jittered ops" h.jitter_events);
        (if h.dropped_events = 0 then ""
         else Printf.sprintf "%d events dropped" h.dropped_events);
      ]
  in
  if extras = [] then base
  else Printf.sprintf "%s; %s" base (String.concat "; " extras)

(* The live thread that has gone the longest without progress — the
   watchdog's culprit.  Ties break toward the lowest tid so the verdict
   is deterministic. *)
let most_stalled t =
  let best = ref None in
  for tid = 0 to t.spawned - 1 do
    match Hashtbl.find_opt t.tstates tid with
    | Some st when (not st.finished) && not st.crashed -> (
        match !best with
        | Some b when b.last_progress <= st.last_progress -> ()
        | _ -> best := Some st)
    | _ -> ()
  done;
  !best

(* Run the simulation until no events remain.  [until] stops the run at
   that virtual time (a backstop against threads that spin forever);
   [max_events] bounds total event count.  Returns the final time plus a
   structured health record: [Completed] when every thread returned,
   [Stalled] when live threads remained — either because the [until]
   backstop dropped their pending events or because the queue drained
   with threads still blocked (a deadlock, e.g. a barrier that never
   fills, a lock whose holder crash-stopped, or a parked waiter no
   access will ever wake). *)
let run_health ?(until = max_int) ?(max_events = 200_000_000) t =
  let wall_start = Unix.gettimeofday () in
  let start_now = t.now in
  let start_elided = (Memory.stats t.mem).Stats.elided_probes in
  let executed = ref 0 in
  let dropped = ref 0 in
  let continue_run = ref true in
  let p = Event_queue.make_popped () in
  t.run_until <- until;
  while !continue_run do
    if not (Event_queue.pop_into t.events p) then continue_run := false
    else if p.Event_queue.p_time > until then begin
      (* the popped event plus everything still queued is discarded *)
      dropped := 1 + Event_queue.length t.events;
      continue_run := false
    end
    else begin
      incr executed;
      if !executed > max_events then raise (Simulation_runaway !executed);
      t.direct_fuel <- 0;
      t.now <- p.Event_queue.p_time;
      p.Event_queue.p_run ()
    end
  done;
  t.events_run <- t.events_run + !executed;
  t.cum.c_events <- t.cum.c_events + !executed;
  t.cum.c_sim_cycles <- t.cum.c_sim_cycles + (t.now - start_now);
  t.cum.c_elided <-
    t.cum.c_elided
    + ((Memory.stats t.mem).Stats.elided_probes - start_elided);
  let wall_ns =
    int_of_float ((Unix.gettimeofday () -. wall_start) *. 1e9)
  in
  t.wall_ns <- t.wall_ns + wall_ns;
  t.cum.c_wall_ns <- t.cum.c_wall_ns + wall_ns;
  let verdict =
    if t.live_threads <= 0 then Completed
    else
      match most_stalled t with
      | Some st ->
          Stalled
            { tid = st.tid; core = st.core; last_progress = st.last_progress }
      | None -> Completed
  in
  ( t.now,
    {
      verdict;
      crashed = List.rev t.crashed_tids;
      preemptions = t.preempt_count;
      jitter_events = t.jitter_count;
      dropped_events = !dropped;
    } )

let run ?until ?max_events t = fst (run_health ?until ?max_events t)

(* ------------------------------------------------------------------ *)
(* Engine performance counters. *)

type perf = {
  events : int; (* events executed by the run loop *)
  parks : int; (* threads parked event-driven *)
  wakeups : int; (* parked threads woken by a real access *)
  elided_probes : int; (* inert spin probes accounted without an event *)
  sim_cycles : int; (* virtual time advanced *)
  wall_ns : int; (* wall-clock spent in the run loop *)
}

let perf t =
  {
    events = t.events_run;
    parks = t.parks;
    wakeups = t.wakeups;
    elided_probes = (Memory.stats t.mem).Stats.elided_probes;
    sim_cycles = t.now;
    wall_ns = t.wall_ns;
  }

(* Totals across every simulation run by the *calling domain* (the
   benchmark harness samples deltas around each job in the domain that
   executes it, then sums per-job deltas). *)
let cumulative_perf () =
  let c = counters () in
  {
    events = c.c_events;
    parks = c.c_parks;
    wakeups = c.c_wakeups;
    elided_probes = c.c_elided;
    sim_cycles = c.c_sim_cycles;
    wall_ns = c.c_wall_ns;
  }

(* Pure arithmetic on perf records, for aggregating per-job deltas. *)
let perf_zero =
  {
    events = 0;
    parks = 0;
    wakeups = 0;
    elided_probes = 0;
    sim_cycles = 0;
    wall_ns = 0;
  }

let perf_add a b =
  {
    events = a.events + b.events;
    parks = a.parks + b.parks;
    wakeups = a.wakeups + b.wakeups;
    elided_probes = a.elided_probes + b.elided_probes;
    sim_cycles = a.sim_cycles + b.sim_cycles;
    wall_ns = a.wall_ns + b.wall_ns;
  }

let perf_diff a b =
  {
    events = a.events - b.events;
    parks = a.parks - b.parks;
    wakeups = a.wakeups - b.wakeups;
    elided_probes = a.elided_probes - b.elided_probes;
    sim_cycles = a.sim_cycles - b.sim_cycles;
    wall_ns = a.wall_ns - b.wall_ns;
  }
