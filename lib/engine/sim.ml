(* The discrete-event simulation engine.

   Simulated threads are ordinary OCaml functions running as coroutines
   via effect handlers: every memory operation (or explicit pause)
   performs an effect; the engine computes the operation's virtual-time
   cost against the coherent memory model and resumes the thread when it
   completes.  This lets the lock/message-passing algorithms be written
   in direct style, exactly as their native counterparts.

   Two robustness layers sit on top of the pure engine:

   - Fault injection ([Fault.spec], strictly opt-in): every scheduling
     point — the completion of a memory op or pause — may be perturbed
     by deterministic, seeded preemption/jitter draws, and threads may
     crash-stop.  With [Fault.none] (the default) no draws are consumed
     and runs are bit-identical to the fault-free engine.

   - A progress watchdog: the engine records per-thread last-progress
     timestamps, so [run_health] can report *why* a run ended —
     [Completed] (all threads returned) versus [Stalled] (live threads
     remained at the [until] backstop or deadlocked on an empty queue)
     — instead of silently discarding the tail of the schedule. *)

open Ssync_platform
open Ssync_coherence
module Rng = Ssync_workload.Rng

(* Per-thread bookkeeping for faults and the watchdog. *)
type thread_state = {
  tid : int;
  core : int;
  rng : Rng.t; (* this thread's private fault stream *)
  crash_at : int; (* -1 = never *)
  mutable last_progress : int;
  mutable finished : bool;
  mutable crashed : bool;
}

type t = {
  platform : Platform.t;
  mem : Memory.t;
  events : Event_queue.t;
  mutable now : int;
  mutable live_threads : int;
  mutable spawned : int;
  faults : Fault.spec;
  faults_active : bool;
  tstates : (int, thread_state) Hashtbl.t;
  mutable preempt_count : int;
  mutable jitter_count : int;
  mutable crashed_tids : int list; (* reversed *)
}

type barrier = {
  mutable expected : int;
  mutable arrived : int;
  mutable waiters : (thread_state * (unit, unit) Effect.Deep.continuation) list;
}

type _ Effect.t +=
  | E_mem : Arch.memop * Memory.addr * int * int -> int Effect.t
  | E_pause : int -> unit Effect.t
  | E_now : int Effect.t
  | E_self : (int * int) Effect.t (* (core, tid) *)
  | E_barrier : barrier -> unit Effect.t

let create ?(faults = Fault.none) platform =
  let faults = Fault.validate faults in
  {
    platform;
    mem = Memory.create platform;
    events = Event_queue.create ();
    now = 0;
    live_threads = 0;
    spawned = 0;
    faults;
    faults_active = not (Fault.is_none faults);
    tstates = Hashtbl.create 64;
    preempt_count = 0;
    jitter_count = 0;
    crashed_tids = [];
  }

let memory t = t.mem
let platform t = t.platform
let now_of t = t.now

let schedule t ~at run =
  Event_queue.push t.events ~time:(max at t.now) run

(* ------------------------------------------------------------------ *)
(* Operations available *inside* a simulated thread.  Calling them
   outside of [spawn]ed code raises [Effect.Unhandled]. *)

let load a = Effect.perform (E_mem (Arch.Load, a, 0, 0))
let store a v = ignore (Effect.perform (E_mem (Arch.Store, a, v, 0)))

let cas a ~expected ~desired =
  Effect.perform (E_mem (Arch.Cas, a, expected, desired)) = 1

let fai a = Effect.perform (E_mem (Arch.Fai, a, 1, 0))

(* Atomic fetch-and-add by [k] (k >= 0); [faa a 0] is an exclusive
   atomic read: it returns the value and leaves the line Modified at the
   caller, modeling a prefetchw+load probe. *)
let faa a k =
  if k < 0 then invalid_arg "Sim.faa: negative increment";
  Effect.perform (E_mem (Arch.Fai, a, k, 0))

(* Store-class fetch-and-add: an increment of a field only this thread
   writes (e.g. a ticket lock's [current] on release).  Applied
   atomically by the model but costed as a plain store. *)
let faa_store a k =
  if k < 0 then invalid_arg "Sim.faa_store: negative increment";
  Effect.perform (E_mem (Arch.Fai, a, k, 1))

(* [tas] returns [true] when the caller won (the previous value was 0). *)
let tas a = Effect.perform (E_mem (Arch.Tas, a, 0, 0)) = 0
let swap a v = Effect.perform (E_mem (Arch.Swap, a, v, 0))
let pause cycles = if cycles > 0 then Effect.perform (E_pause cycles)
let now () = Effect.perform E_now
let self_core () = fst (Effect.perform E_self)
let self_tid () = snd (Effect.perform E_self)

let make_barrier n : barrier = { expected = n; arrived = 0; waiters = [] }
let await b = Effect.perform (E_barrier b)

(* ------------------------------------------------------------------ *)
(* Fault hooks. *)

(* Extra completion delay at a scheduling point: latency jitter (memory
   ops only) plus preemption — the thread is descheduled for the drawn
   duration, whatever it holds staying held.  Draws come from the
   thread's private stream, so faults in one thread never perturb
   another thread's draws. *)
let fault_extra t st ~mem_op =
  if not t.faults_active then 0
  else begin
    let f = t.faults in
    let extra = ref 0 in
    if mem_op && f.Fault.jitter_prob > 0.
       && Rng.float st.rng < f.Fault.jitter_prob
    then begin
      extra := !extra + Fault.sample st.rng f.Fault.jitter_cycles;
      t.jitter_count <- t.jitter_count + 1
    end;
    if f.Fault.preempt_prob > 0. && Rng.float st.rng < f.Fault.preempt_prob
    then begin
      extra := !extra + Fault.sample st.rng f.Fault.preempt_cycles;
      t.preempt_count <- t.preempt_count + 1
    end;
    !extra
  end

(* Resume [k] at [at] — unless the thread's crash time falls first, in
   which case the continuation is dropped and the crash is booked at the
   crash time itself (so it is recorded even when the never-to-happen
   resume would fall past the [until] backstop).  A crash-stopped thread
   is simply never resumed: no unwinding, no cleanup — whatever it holds
   stays held, which is what crash-stop means. *)
let resume : type a.
    t -> thread_state -> (a, unit) Effect.Deep.continuation -> at:int -> a -> unit
    =
 fun t st k ~at v ->
  if st.crash_at >= 0 && (not st.crashed) && at >= st.crash_at then
    schedule t ~at:(max t.now st.crash_at) (fun () ->
        if not st.crashed then begin
          st.crashed <- true;
          t.crashed_tids <- st.tid :: t.crashed_tids;
          t.live_threads <- t.live_threads - 1
        end)
  else
    schedule t ~at (fun () ->
        st.last_progress <- t.now;
        Effect.Deep.continue k v)

(* ------------------------------------------------------------------ *)

let spawn t ~core body =
  Topology.check t.platform.Platform.topo core;
  let tid = t.spawned in
  t.spawned <- tid + 1;
  t.live_threads <- t.live_threads + 1;
  let st =
    {
      tid;
      core;
      rng = Fault.stream t.faults ~tid;
      crash_at = Fault.crash_time t.faults ~tid;
      last_progress = t.now;
      finished = false;
      crashed = false;
    }
  in
  Hashtbl.replace t.tstates tid st;
  let open Effect.Deep in
  let handler : (unit, unit) handler =
    {
      retc =
        (fun () ->
          st.finished <- true;
          st.last_progress <- t.now;
          t.live_threads <- t.live_threads - 1);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_mem (op, a, op1, op2) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let latency, v =
                    Memory.access t.mem ~core ~now:t.now op a ~operand:op1
                      ~operand2:op2
                  in
                  let latency = latency + fault_extra t st ~mem_op:true in
                  resume t st k ~at:(t.now + latency) v)
          | E_pause cycles ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let cycles = max 1 cycles + fault_extra t st ~mem_op:false in
                  resume t st k ~at:(t.now + cycles) ())
          | E_now ->
              Some (fun (k : (a, unit) continuation) -> continue k t.now)
          | E_self ->
              Some (fun (k : (a, unit) continuation) -> continue k (core, tid))
          | E_barrier b ->
              Some
                (fun (k : (a, unit) continuation) ->
                  st.last_progress <- t.now;
                  b.arrived <- b.arrived + 1;
                  if b.arrived >= b.expected then begin
                    let to_wake = b.waiters in
                    b.waiters <- [];
                    b.arrived <- 0;
                    List.iter
                      (fun (wst, w) -> resume t wst w ~at:t.now ())
                      to_wake;
                    resume t st k ~at:t.now ()
                  end
                  else b.waiters <- (st, k) :: b.waiters)
          | _ -> None);
    }
  in
  schedule t ~at:t.now (fun () ->
      st.last_progress <- t.now;
      match_with body () handler)

exception Simulation_runaway of int

(* ------------------------------------------------------------------ *)
(* Run loop and watchdog. *)

type verdict =
  | Completed
  | Stalled of { tid : int; core : int; last_progress : int }

type health = {
  verdict : verdict;
  crashed : int list; (* tids crash-stopped by fault injection *)
  preemptions : int; (* injected preemption events *)
  jitter_events : int; (* injected latency-jitter events *)
  dropped_events : int; (* events discarded past [until] *)
}

let verdict_to_string = function
  | Completed -> "completed"
  | Stalled { tid; core; last_progress } ->
      Printf.sprintf "stalled (tid %d on core %d, last progress at %d)" tid
        core last_progress

let health_to_string h =
  let base = verdict_to_string h.verdict in
  let extras =
    List.filter
      (fun s -> s <> "")
      [
        (if h.crashed = [] then ""
         else
           Printf.sprintf "crashed tids: %s"
             (String.concat "," (List.map string_of_int h.crashed)));
        (if h.preemptions = 0 then ""
         else Printf.sprintf "%d preemptions" h.preemptions);
        (if h.jitter_events = 0 then ""
         else Printf.sprintf "%d jittered ops" h.jitter_events);
        (if h.dropped_events = 0 then ""
         else Printf.sprintf "%d events dropped" h.dropped_events);
      ]
  in
  if extras = [] then base
  else Printf.sprintf "%s; %s" base (String.concat "; " extras)

(* The live thread that has gone the longest without progress — the
   watchdog's culprit.  Ties break toward the lowest tid so the verdict
   is deterministic. *)
let most_stalled t =
  let best = ref None in
  for tid = 0 to t.spawned - 1 do
    match Hashtbl.find_opt t.tstates tid with
    | Some st when (not st.finished) && not st.crashed -> (
        match !best with
        | Some b when b.last_progress <= st.last_progress -> ()
        | _ -> best := Some st)
    | _ -> ()
  done;
  !best

(* Run the simulation until no events remain.  [until] stops the run at
   that virtual time (a backstop against threads that spin forever);
   [max_events] bounds total event count.  Returns the final time plus a
   structured health record: [Completed] when every thread returned,
   [Stalled] when live threads remained — either because the [until]
   backstop dropped their pending events or because the queue drained
   with threads still blocked (a deadlock, e.g. a barrier that never
   fills or a lock whose holder crash-stopped). *)
let run_health ?(until = max_int) ?(max_events = 200_000_000) t =
  let executed = ref 0 in
  let dropped = ref 0 in
  let continue_run = ref true in
  while !continue_run do
    match Event_queue.pop t.events with
    | None -> continue_run := false
    | Some ev ->
        if ev.Event_queue.time > until then begin
          (* the popped event plus everything still queued is discarded *)
          dropped := 1 + Event_queue.length t.events;
          continue_run := false
        end
        else begin
          incr executed;
          if !executed > max_events then raise (Simulation_runaway !executed);
          t.now <- ev.Event_queue.time;
          ev.Event_queue.run ()
        end
  done;
  let verdict =
    if t.live_threads <= 0 then Completed
    else
      match most_stalled t with
      | Some st ->
          Stalled
            { tid = st.tid; core = st.core; last_progress = st.last_progress }
      | None -> Completed
  in
  ( t.now,
    {
      verdict;
      crashed = List.rev t.crashed_tids;
      preemptions = t.preempt_count;
      jitter_events = t.jitter_count;
      dropped_events = !dropped;
    } )

let run ?until ?max_events t = fst (run_health ?until ?max_events t)
