(** A fixed-size domain pool with deterministic job-to-result ordering.

    Submit independent simulation jobs as pure thunks; [run] fans them
    across up to [jobs] domains (the calling domain included) and
    returns results in submission order, so downstream rendering is
    byte-identical whatever the parallelism.  Each result carries the
    wall time and the engine-counter delta ({!Sim.perf}) measured
    inside the domain that executed the job — the counters are
    domain-local, so concurrent jobs never race on them. *)

type stats = {
  wall_ns : int;  (** wall-clock spent executing the job *)
  perf : Sim.perf;  (** engine-counter delta attributable to the job *)
  trace : Ssync_trace.Trace.t option;
      (** the job's trace when [Ssync_trace.Trace.requested] was set at
          submission time: a fresh sink installed around the job in
          whatever domain executed it, so per-job traces are
          independent of scheduling and merge deterministically in
          submission order *)
  metrics : Ssync_metrics.Metrics.t option;
      (** the job's virtual-time metrics when
          [Ssync_metrics.Metrics.requested] was set at submission time;
          per-job sinks like [trace], so dumps are byte-identical at
          any [jobs] count *)
}

exception Job_failures of (int * exn) list
(** Raised by {!run} when two or more jobs failed: every
    [(job index, exception)] pair, lowest index first.  A registered
    printer renders all of them.  A single failing job re-raises its
    original exception unchanged instead. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

val run : ?jobs:int -> (unit -> 'a) array -> ('a * stats) array
(** [run ~jobs thunks] executes every thunk and returns
    [(value, stats)] per job, indexed like [thunks].  [jobs] defaults
    to {!default_jobs}; [jobs = 1] (or a single job) executes inline on
    the calling domain with no domains or atomics involved.  Domains
    pull jobs off a shared counter, so long and short jobs balance
    dynamically.  If exactly one job raises, its exception is re-raised
    after all jobs finish; if several fail, {!Job_failures} reports
    them all.  Raises [Invalid_argument] when [jobs < 1]. *)

val total_stats : ('a * stats) array -> stats
(** Sum of the per-job stats (field-wise; [trace] is [None] — merge
    traces with {!traces} instead). *)

val traces : ('a * stats) array -> Ssync_trace.Trace.t list
(** The per-job traces in submission order; empty when tracing was
    off. *)

val metrics : ('a * stats) array -> Ssync_metrics.Metrics.t list
(** The per-job metrics sinks in submission order; empty when sampling
    was off. *)
