(** The discrete-event simulation engine.

    Simulated threads are ordinary OCaml functions running as
    effects-based coroutines: every memory operation (or explicit
    pause) suspends the thread, the engine charges its virtual-time
    cost against the coherent memory model, and resumes the thread at
    completion time.  Lock and message-passing algorithms are written
    in direct style, exactly like their native counterparts.

    The engine optionally injects deterministic faults ({!Fault.spec}:
    preemption, latency jitter, crash-stop threads) and always tracks
    per-thread progress, so {!run_health} reports a structured verdict
    — finished versus stalled/deadlocked — instead of silently
    dropping the tail of a pathological schedule. *)

type t

exception Simulation_runaway of int

val create : ?faults:Fault.spec -> Ssync_platform.Platform.t -> t
(** [create ?faults p] builds a simulation on platform [p].  [faults]
    defaults to {!Fault.none}, which injects nothing and consumes no
    random draws — fault-free runs are bit-identical to the engine
    without the fault layer.  Raises [Invalid_argument] on a malformed
    spec. *)

val memory : t -> Ssync_coherence.Memory.t
val platform : t -> Ssync_platform.Platform.t

val now_of : t -> int
(** Current virtual time (cycles); callable from outside the simulation. *)

val spawn : t -> core:int -> (unit -> unit) -> unit
(** [spawn t ~core body] schedules a simulated thread pinned to [core].
    [body] may use every operation below. *)

(** {1 Run loop and progress watchdog} *)

type verdict =
  | Completed  (** every spawned thread returned *)
  | Stalled of { tid : int; core : int; last_progress : int }
      (** live threads remained when the run ended — the [until]
          backstop dropped their pending events, or the event queue
          drained with threads still blocked (deadlock).  The reported
          thread is the live one that has gone longest without
          progress. *)

type health = {
  verdict : verdict;
  crashed : int list;  (** tids crash-stopped by fault injection *)
  preemptions : int;  (** injected preemption events *)
  jitter_events : int;  (** injected latency-jitter events *)
  dropped_events : int;  (** events discarded past [until] *)
}

val verdict_to_string : verdict -> string
val health_to_string : health -> string

val run_health : ?until:int -> ?max_events:int -> t -> int * health
(** Run until no events remain; returns the final virtual time and the
    health record.  [until] stops the run at that virtual time (a
    backstop against threads that spin forever); [max_events] bounds
    the total event count and raises [Simulation_runaway] beyond it. *)

val run : ?until:int -> ?max_events:int -> t -> int
(** [run t] is [fst (run_health t)] — the original interface, for
    callers that do not inspect health. *)

(** {1 Operations available inside a simulated thread}

    Calling these outside [spawn]ed code raises [Effect.Unhandled]. *)

val load : Ssync_coherence.Memory.addr -> int
val store : Ssync_coherence.Memory.addr -> int -> unit
val cas : Ssync_coherence.Memory.addr -> expected:int -> desired:int -> bool

val fai : Ssync_coherence.Memory.addr -> int
(** Atomic fetch-and-increment; returns the previous value. *)

val faa : Ssync_coherence.Memory.addr -> int -> int
(** Atomic fetch-and-add by [k >= 0].  [faa a 0] is an exclusive atomic
    read: it returns the value and leaves the line Modified at the
    caller — the model of a prefetchw+load probe (costed store-class). *)

val faa_store : Ssync_coherence.Memory.addr -> int -> int
(** Store-class fetch-and-add: an increment of a field only this thread
    writes (e.g. a ticket lock's [current] on release); applied
    atomically but costed as a plain store. *)

val tas : Ssync_coherence.Memory.addr -> bool
(** Test-and-set; [true] when the caller won (previous value was 0). *)

val swap : Ssync_coherence.Memory.addr -> int -> int
val pause : int -> unit
(** Spend the given core-local cycles (backoff, computation). *)

val now : unit -> int
val self_core : unit -> int
val self_tid : unit -> int

(** {1 Barriers} *)

type barrier

val make_barrier : int -> barrier
(** A reusable barrier for [n] simulated threads (no memory traffic). *)

val await : barrier -> unit
