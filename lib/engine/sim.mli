(** The discrete-event simulation engine.

    Simulated threads are ordinary OCaml functions running as
    effects-based coroutines: every memory operation (or explicit
    pause) suspends the thread, the engine charges its virtual-time
    cost against the coherent memory model, and resumes the thread at
    completion time.  Lock and message-passing algorithms are written
    in direct style, exactly like their native counterparts.

    Spin-wait loops use the dedicated primitives ({!spin_load} and
    friends): semantically identical to the hand-written
    probe/pause/retry loops — same probes, same virtual timestamps —
    but executed event-driven.  Once a spinner's probes become inert
    local hits the thread parks on the line inside the memory model and
    is woken, on its original poll grid, by the next real access;
    O(poll iterations) of simulation events collapse to O(1).

    The engine optionally injects deterministic faults ({!Fault.spec}:
    preemption, latency jitter, crash-stop threads) and always tracks
    per-thread progress, so {!run_health} reports a structured verdict
    — finished versus stalled/deadlocked — instead of silently
    dropping the tail of a pathological schedule.  Under
    schedule-reshaping fault injection (preemption, crash-stop) the
    spin primitives fall back to literal pause/probe stepping so every
    scheduling point draws from the per-thread fault streams in the
    original order; jitter-only specs keep the event-driven path, whose
    elided inert probes consume no draws in either mode.

    {2 Sharded (PDES) execution}

    [create ~shards:n] with [n > 1] runs conservative-window parallel
    DES: threads and cache lines are partitioned into shards along
    topology-node boundaries, each shard owns a private event queue,
    and shards advance in lockstep through bounded time windows whose
    width is the platform's minimum cross-node transfer latency.
    Cross-shard interactions are deferred as timestamped messages and
    executed by a single-threaded coordinator at window barriers.
    Because the coherence model has zero true lookahead on shared
    lines, soundness comes from conflict detection: every access
    stamps its line with its (time, tid) key, and any ordering the
    serial engine could not have produced aborts the whole attempt
    with {!Shard_conflict}.  A sharded run therefore either produces
    results byte-identical to the serial engine — same timestamps,
    same access results, same perf counters — or aborts, in which case
    {!serial_fallback} re-runs the (pure) job serially.  Tracing and
    crash-stop fault schedules force one shard at creation.

    {2 Speculative replay}

    Instead of paying the full serial re-run on every conflict, a
    harness can checkpoint the memory ({!Ssync_coherence.Memory.checkpoint})
    before spawning, and on {!Shard_conflict} inspect
    {!conflict_lines}/{!hard_aborted}, {!promote} the offending lines
    to coordinator-mediated access, roll the memory back and
    {!reset_for_replay} the engine, then re-spawn and re-run the same
    attempt.  Promoted lines carry a residency sentinel that matches no
    shard, so every in-window access to them defers to the
    single-threaded coordinator — serial semantics for exactly the
    lines that conflicted, parallel windows for everything else.
    Conflicts with no attributable line ({!hard_aborted}) and attempts
    that keep conflicting after promotion escalate to the serial
    engine. *)

type t

exception Simulation_runaway of int

exception Shard_conflict
(** A sharded run detected an interleaving it cannot order serially.
    The simulation object is dead; re-run the job under
    {!serial_fallback}. *)

val parking_default : bool ref
(** Default for [create]'s [?parking] (initially [true]); lets tests
    and benchmarks A/B event-driven waiting against literal polling
    without threading a flag through every harness layer. *)

val default_shards : int ref
(** Default for [create]'s [?shards] (initially [1]); set by the
    benchmark driver's [--shards] flag so sharding reaches every
    harness-built simulation without threading a parameter through the
    figure pipelines. *)

val shard_domains : bool ref
(** Drain shards on worker domains (default: whether the host is
    multicore)?  With [false], shards are drained sequentially on the
    calling domain — byte-identical results, no parallelism; tests use
    [true] to exercise the cross-domain machinery on any host. *)

val serial_fallback : ?policy_key:string -> (unit -> 'a) -> 'a
(** [serial_fallback job] runs [job ()]; if it raises {!Shard_conflict}
    the job is re-run once with sharding forced off.  [job] must be
    pure in the sense that it builds its own simulation/memory — true
    of all harness-built workloads.  [policy_key] names the job for the
    domain-local escalation memory: a job whose key escalated before is
    run serially up front, skipping the doomed sharded attempt — pass
    it from benchmark sweeps that re-run structurally serial jobs
    (in-window allocation, hardware channels) many times. *)

val create :
  ?faults:Fault.spec -> ?parking:bool -> ?shards:int ->
  Ssync_platform.Platform.t -> t
(** [create ?faults ?parking ?shards p] builds a simulation on platform
    [p].  [faults] defaults to {!Fault.none}, which injects nothing and
    consumes no random draws — fault-free runs are bit-identical to the
    engine without the fault layer.  [parking] (default
    [!parking_default]) enables event-driven waiter wakeup; it is
    automatically disabled while schedule-reshaping faults (preemption,
    crash-stop) are active, but stays on under jitter-only specs, where
    parking remains exact (see {!Fault.parkable}).  [shards] (default
    [!default_shards]) requests sharded execution; the effective count
    is capped at the platform's node count and forced to 1 while a
    trace collector is installed, while the fault spec schedules
    crash-stops, or inside the retry arm of {!serial_fallback}.  Raises
    [Invalid_argument] on a malformed spec or [shards < 1]. *)

val shards_of : t -> int
(** Effective shard count (1 = serial). *)

val memory : t -> Ssync_coherence.Memory.t
val platform : t -> Ssync_platform.Platform.t

val now_of : t -> int
(** Current virtual time (cycles); callable from outside the simulation. *)

val spawn : t -> core:int -> (unit -> unit) -> unit
(** [spawn t ~core body] schedules a simulated thread pinned to [core].
    [body] may use every operation below. *)

(** {1 Run loop and progress watchdog} *)

type verdict =
  | Completed  (** every spawned thread returned *)
  | Stalled of { tid : int; core : int; last_progress : int }
      (** live threads remained when the run ended — the [until]
          backstop dropped their pending events, or the event queue
          drained with threads still blocked (deadlock).  The reported
          thread is the live one that has gone longest without
          progress. *)

type health = {
  verdict : verdict;
  crashed : int list;  (** tids crash-stopped by fault injection *)
  preemptions : int;  (** injected preemption events *)
  jitter_events : int;  (** injected latency-jitter events *)
  dropped_events : int;  (** events discarded past [until] *)
}

val verdict_to_string : verdict -> string
val health_to_string : health -> string

val run_health : ?until:int -> ?max_events:int -> t -> int * health
(** Run until no events remain; returns the final virtual time and the
    health record.  [until] stops the run at that virtual time (a
    backstop against threads that spin forever); [max_events] bounds
    the total event count and raises [Simulation_runaway] beyond it.
    With event-driven waiting, a deadlocked run (e.g. parked spinners
    whose wakeup will never come) drains the queue and reports
    [Stalled] with [dropped_events = 0] rather than polling until the
    backstop. *)

val run : ?until:int -> ?max_events:int -> t -> int
(** [run t] is [fst (run_health t)] — the original interface, for
    callers that do not inspect health. *)

(** {1 Speculative replay}

    The replay driver lives in the harness; these are the engine-side
    hooks it composes with {!Ssync_coherence.Memory.checkpoint} /
    [restore]. *)

val conflict_lines : t -> int list
(** After an aborted attempt: the line ids implicated in its conflicts
    (all shards plus the coordinator, deduplicated, sorted).  Empty
    when no conflict was attributable to a specific line. *)

val hard_aborted : t -> bool
(** Did the aborted attempt hit a conflict promotion cannot fix — a
    cross-shard unordered peek, a same-time parker tie from different
    shards, a mid-window allocation, an event-budget blowout or a
    user-code exception?  Such attempts must escalate to serial. *)

val promote : t -> int list -> unit
(** Promote the given lines to coordinator-mediated access for every
    subsequent window of this simulation (idempotent per line).  Books
    each newly promoted line in {!perf}[.promoted_lines]. *)

val promoted_lines : t -> int list
(** The current promoted set (most recently promoted first). *)

val record_replay : t -> unit
(** Book one speculative replay in {!perf}[.speculative_replays]. *)

val reset_for_replay : t -> unit
(** Return the engine to its post-[create] state for a replay of the
    same job: queues, clocks, thread table and per-attempt counters are
    cleared; the promoted set and the replay/promotion tallies survive.
    The caller rolls the memory back separately
    ({!Ssync_coherence.Memory.restore}) and re-spawns the workload. *)

val window_fusing : bool ref
(** Reuse the first [run_health]'s shard stamps and line residency on
    subsequent calls to the same simulation (default [true]).  Leftover
    stamps are only ever higher than a fresh clear would leave them, so
    fusing can only add aborts, never hide a conflict; tests A/B this
    flag to check result identity. *)

(** {1 Engine performance counters} *)

type perf = {
  events : int;
      (** logical thread resumptions: event-queue pops plus direct-run
          continues.  Counting both makes the metric independent of the
          engine's execution strategy — serial and sharded runs of the
          same workload report identical totals even though they make
          different direct-run decisions. *)
  parks : int;  (** threads parked event-driven *)
  wakeups : int;  (** parked threads woken by a real access *)
  elided_probes : int;
      (** inert spin probes accounted in bulk, without an event each *)
  link_queued_cycles : int;
      (** cycles memory operations spent queued behind busy finite-
          bandwidth interconnect resources (links and home
          directories); strategy-independent like the fields above —
          it sums [Stats.link_queued_cycles], which sharded runs merge
          to serial-identical totals *)
  sim_cycles : int;  (** virtual time advanced *)
  wall_ns : int;  (** wall-clock nanoseconds spent in the run loop *)
  windows : int;
      (** PDES windows executed, including windows of aborted attempts
          (0 on serial runs).  Like the remaining fields this depends on
          the execution strategy — shard count, replay luck, policy —
          so serial/sharded identity checks must exclude it. *)
  speculative_replays : int;
      (** aborted sharded attempts replayed with promoted lines instead
          of escalating to the serial engine *)
  promoted_lines : int;  (** lines promoted to coordinator-mediated access *)
  serial_escalations : int;
      (** sharded runs that gave up and re-ran on the serial engine *)
}

val perf : t -> perf
(** Counters for this simulation (cumulative over its [run_health]
    calls). *)

val cumulative_perf : unit -> perf
(** Totals across every simulation created and run by the calling
    domain (the counters are domain-local, so concurrent simulations in
    other domains never race on them).  The benchmark harness samples
    deltas around each job inside the domain that executes it and sums
    the per-job deltas into per-section totals. *)

val perf_zero : perf
val perf_add : perf -> perf -> perf
val perf_diff : perf -> perf -> perf
(** Pure arithmetic on perf records ([perf_diff a b] is [a - b]
    field-wise), for aggregating per-job counter deltas. *)

(** {1 Operations available inside a simulated thread}

    Calling these outside [spawn]ed code raises [Effect.Unhandled]. *)

val load : Ssync_coherence.Memory.addr -> int
val store : Ssync_coherence.Memory.addr -> int -> unit

val store_posted : Ssync_coherence.Memory.addr -> int -> unit
(** Store posted through the store buffer: the thread pays only the
    retire cost while the coherence transfer (ownership change,
    invalidations, line occupancy) completes in the background — the
    overlapped-transfer model of an ordinary x86 store with no fence
    before the next dependent access. *)

val cas : Ssync_coherence.Memory.addr -> expected:int -> desired:int -> bool

val cas_fetch : Ssync_coherence.Memory.addr -> expected:int -> desired:int -> int
(** Compare-and-swap returning the observed pre-operation value (the
    hardware CAS interface): succeeded iff the result equals
    [expected].  A failed [cas_fetch] hands the retry loop its next
    expected value from the same coherence transaction, where
    [cas]+re-[load] would pay — and serialize on — a second transfer. *)

val fai : Ssync_coherence.Memory.addr -> int
(** Atomic fetch-and-increment; returns the previous value. *)

val faa : Ssync_coherence.Memory.addr -> int -> int
(** Atomic fetch-and-add by [k >= 0].  [faa a 0] is an exclusive atomic
    read: it returns the value and leaves the line Modified at the
    caller — the model of a prefetchw+load probe (costed store-class). *)

val faa_store : Ssync_coherence.Memory.addr -> int -> int
(** Store-class fetch-and-add: an increment of a field only this thread
    writes (e.g. a ticket lock's [current] on release); applied
    atomically but costed as a plain store. *)

val tas : Ssync_coherence.Memory.addr -> bool
(** Test-and-set; [true] when the caller won (previous value was 0). *)

val swap : Ssync_coherence.Memory.addr -> int -> int
val pause : int -> unit
(** Spend the given core-local cycles (backoff, computation). *)

val now : unit -> int
val self_core : unit -> int
val self_tid : unit -> int

(** {1 Spin primitives}

    Each is exactly the loop
    [let x = probe in if x = while_ then (pause poll; retry) else x]:
    the first probe issues immediately, pauses of [poll] cycles sit
    between probes, and the call returns the first probe result that
    differs from [while_].  [poll = 0] probes back-to-back.  Raise
    [Invalid_argument] on a negative [poll]. *)

val spin_load : Ssync_coherence.Memory.addr -> while_:int -> poll:int -> int
(** Spin on plain loads while they return [while_]. *)

val spin_tas : Ssync_coherence.Memory.addr -> poll:int -> unit
(** Spin on test-and-set until it wins (previous value 0). *)

val spin_cas :
  Ssync_coherence.Memory.addr -> expected:int -> desired:int -> poll:int -> unit
(** Spin on compare-and-swap until it succeeds. *)

val spin_swap :
  Ssync_coherence.Memory.addr -> int -> while_:int -> poll:int -> int
(** Spin on [swap a v] while it returns [while_]. *)

val spin_faa0 : Ssync_coherence.Memory.addr -> while_:int -> poll:int -> int
(** Spin on the exclusive atomic read [faa a 0] (prefetchw-style probe)
    while it returns [while_]. *)

(** {1 Barriers} *)

type barrier

val make_barrier : int -> barrier
(** A reusable barrier for [n] simulated threads (no memory traffic). *)

val await : barrier -> unit

(** {1 Parkers}

    A single-waiter parking spot for waits on state the memory model
    cannot see (e.g. the Tilera's hardware message queues).  The waiter
    declares its poll period; {!unpark} wakes it at the first poll-grid
    point after the state change — exactly when the literal poll loop
    would have noticed.  Under faults (or with parking disabled),
    {!park} degrades to one [pause poll] quantum and the caller's loop
    re-checks. *)

type parker

val make_parker : unit -> parker

val park : parker -> poll:int -> unit
(** Park until {!unpark}, or pause one poll quantum in fallback mode;
    callers must re-check their condition in a loop.  [poll] must be
    positive.  Raises [Invalid_argument] if the parker is occupied. *)

val unpark : parker -> unit
(** Wake the parked waiter, if any, on its poll grid; costless for the
    caller. *)

val event_driven_waits : unit -> bool
(** Whether event-driven waiting is active in the enclosing simulation
    (parking enabled; faults off or jitter-only) — lets wait loops
    choose between grid-arithmetic shortcuts and literal polling. *)

val tid_crashed : int -> bool
(** Has thread [tid] crash-stopped?  True from the moment virtual time
    reaches the victim's crash time — the oracle robust locks build
    owner-death detection on, modeling the OS's exact knowledge of dead
    lock holders (robust-futex EOWNERDEAD bookkeeping).  Cost-free: the
    query adds no events and no latency.  Unknown tids are alive. *)
