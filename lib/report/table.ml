(* Fixed-width ASCII tables for the bench harness: every paper table and
   figure is printed as rows of aligned columns, optionally with the
   paper's reference value alongside the measured one. *)

type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns/headers length mismatch";
        a
    | None -> List.map (fun _ -> Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- cells :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

(* Build a table from precomputed rows in one call — the natural shape
   for renders that print results a planning phase already computed. *)
let of_rows ?aligns headers rows =
  let t = create ?aligns headers in
  List.iter (add_row t) rows;
  t

let render t : string =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let widths =
    List.mapi
      (fun i _ ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all)
      t.headers
  in
  let line row =
    String.concat "  "
      (List.map2 (fun (a, w) c -> pad a w c) (List.combine t.aligns widths) row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line t.headers :: sep :: List.map line rows)

let print t = print_endline (render t)

(* Format helpers used throughout the bench harness. *)
let fcell f = Printf.sprintf "%.2f" f
let fcell1 f = Printf.sprintf "%.1f" f
let icell i = string_of_int i
let opt_icell = function None -> "-" | Some i -> string_of_int i

(* "measured (paper)" comparison cell. *)
let vs_paper ~measured ~paper =
  match paper with
  | None -> string_of_int measured
  | Some p -> Printf.sprintf "%d (%d)" measured p
