(* Simple ASCII rendering of (x, y) series — the bench harness prints
   every figure both as a table of numbers and as a quick sparkline-like
   chart so trends are visible in the terminal output. *)

type t = { name : string; points : (int * float) list }

let make name points = { name; points }

(* [of_fn name xs f] samples [f] at each x — handy when the ys come
   from a result cursor rather than a literal list. *)
let of_fn name xs f = { name; points = List.map (fun x -> (x, f x)) xs }

(* Render several series sharing an x axis as a table with one column
   per series. *)
let table ?(x_label = "x") (series : t list) : string =
  let xs =
    List.sort_uniq compare (List.concat_map (fun s -> List.map fst s.points) series)
  in
  let tbl =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) series)
      (x_label :: List.map (fun s -> s.name) series)
  in
  List.iter
    (fun x ->
      let cells =
        List.map
          (fun s ->
            match List.assoc_opt x s.points with
            | Some y -> Printf.sprintf "%.2f" y
            | None -> "-")
          series
      in
      Table.add_row tbl (string_of_int x :: cells))
    xs;
  Table.render tbl

(* A one-line bar chart of a single series, scaled to [width] chars. *)
let bars ?(width = 50) (s : t) : string =
  let ymax = List.fold_left (fun m (_, y) -> Float.max m y) 0. s.points in
  let bar y =
    let n =
      if ymax <= 0. then 0
      else int_of_float (Float.round (y /. ymax *. float_of_int width))
    in
    String.make (max 0 n) '#'
  in
  String.concat "\n"
    (List.map
       (fun (x, y) -> Printf.sprintf "%6d | %8.2f | %s" x y (bar y))
       s.points)
