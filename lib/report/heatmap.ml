(* ASCII heatmaps for the virtual-time telemetry: a 10-step intensity
   ramp over matrices (interconnect utilization by node pair, tile
   grids) and per-bucket timeline strips.  Pure rendering — callers
   normalise their samples to [0, 1] and choose the layout, so the
   module needs no platform or metrics dependency and the output is a
   deterministic function of the numbers alone. *)

(* The ramp, dimmest to brightest.  Index 0 is reserved for exact zero
   so "never used" reads differently from "barely used". *)
let ramp = " .:-=+*#%@"

let shade v =
  if v <= 0. then ramp.[0]
  else begin
    let n = String.length ramp in
    (* values in (0, 1] map over the non-blank steps; clamp overdrive *)
    let i = 1 + int_of_float (v *. float_of_int (n - 2)) in
    ramp.[min i (n - 1)]
  end

let legend =
  Printf.sprintf "intensity: '%s' = 0%% .. '%c' = 100%%" (String.make 1 ramp.[0])
    ramp.[String.length ramp - 1]

(* Render an [n x m] matrix of [0, 1] intensities, one character per
   cell (columns separated by a space for squarer aspect).  Row/column
   labels default to indices. *)
let matrix ?(row_label = string_of_int) ?(col_label = string_of_int)
    ~title (cells : float array array) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b title;
  Buffer.add_char b '\n';
  let rows = Array.length cells in
  let cols = if rows = 0 then 0 else Array.length cells.(0) in
  let label_w =
    let w = ref 0 in
    for i = 0 to rows - 1 do
      w := max !w (String.length (row_label i))
    done;
    !w
  in
  (* column header: one labelled tick per column, vertical-ish *)
  Buffer.add_string b (String.make label_w ' ');
  for j = 0 to cols - 1 do
    let l = col_label j in
    Buffer.add_char b ' ';
    Buffer.add_char b l.[String.length l - 1]
  done;
  Buffer.add_char b '\n';
  for i = 0 to rows - 1 do
    let l = row_label i in
    Buffer.add_string b (String.make (label_w - String.length l) ' ');
    Buffer.add_string b l;
    for j = 0 to cols - 1 do
      Buffer.add_char b ' ';
      Buffer.add_char b (shade cells.(i).(j))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

(* Render a timeline strip: one character per bucket, downsampled by
   averaging when more buckets than [width].  The caller's [label]
   prefixes the strip. *)
let timeline ?(width = 72) ~label (buckets : float array) : string =
  let n = Array.length buckets in
  let b = Buffer.create (width + String.length label + 4) in
  Buffer.add_string b label;
  Buffer.add_char b ' ';
  if n <= width then
    Array.iter (fun v -> Buffer.add_char b (shade v)) buckets
  else begin
    (* average [n] buckets into [width] cells; integer split keeps the
       rendering independent of float iteration order *)
    for c = 0 to width - 1 do
      let lo = c * n / width and hi = max (c * n / width + 1) ((c + 1) * n / width) in
      let s = ref 0. in
      for k = lo to hi - 1 do
        s := !s +. buckets.(k)
      done;
      Buffer.add_char b (shade (!s /. float_of_int (hi - lo)))
    done
  end;
  Buffer.contents b
