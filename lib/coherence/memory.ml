(* A simulated coherent memory: the machine-wide state of every cache
   line, the protocol transitions applied by loads/stores/atomics, and
   the virtual-time cost of each access.

   Addresses are *word*-granular; coherence is *line*-granular.  A
   cache line holds up to [Topology.line_words] words: its protocol
   state, occupancy, parked waiters, conflict stamps and PDES residency
   all belong to the line, while each word keeps its own value.  The
   default allocator ([alloc]) still pads every word to its own line —
   the paper's benchmarks pad shared words to a line each, so every
   paper-derived workload is unchanged — but [alloc_packed] co-locates
   consecutive words on shared lines, which makes false sharing
   expressible: a store to one word invalidates every other word's
   holders on the same line.

   Costs come from the platform's calibrated cost model; contention is
   modeled by two kinds of occupancy:
   - *line* occupancy: an exclusive transaction keeps the line (its
     directory entry / home-tile slot) busy for its serialized phase,
     so concurrent requests to one line serialize — the mechanism
     behind the paper's Figures 4 and 5;
   - *resource* occupancy: the transfer also holds the home node's
     directory/memory controller and every interconnect link it
     crosses ([Cost_model.fill_path]) for a service time, so pipelined
     traffic between the same nodes queues even across different lines
     — the interconnect-bandwidth term the paper's two-hop
     message-passing latencies exhibit.

   Lines additionally carry a wait list of parked spinners (see
   [try_park]): a thread whose spin loop has reached a steady state —
   every probe a local cache hit that changes nothing — is suspended
   here instead of burning one simulation event per probe.  Any real
   access to the line revalidates the parked waiters: probes that the
   poll loop would have issued before the access are bulk-accounted,
   and waiters whose next probe would no longer be inert are woken to
   replay it for real, on the exact virtual-time grid the poll loop
   would have used.  Waiters park on the line but spin on their own
   word, so a real access to a *different* word of a packed line
   disturbs them exactly like the false sharing it models.

   For sharded (PDES) execution the mutable per-access scratch state —
   the cost-model view, the [last_result] out-parameter and the running
   [Stats.t] — lives in *slots*, one per shard, so concurrent shards
   never race on it; lines themselves are partitioned by a residency
   tag and cross-shard accesses are deferred by the engine (see
   [Sim]).  Interconnect resources are not partitioned by residency,
   so under sharded execution each is owned by the shard of its
   (lowest) node and any in-window access whose path crosses a foreign
   shard's resource aborts to the serial path; resource busy-times are
   additionally stamped like lines so coordinator-run accesses detect
   out-of-order use.  Serial execution uses slot 0 throughout and pays
   none of this. *)

open Ssync_platform
module Trace = Ssync_trace.Trace
module Metrics = Ssync_metrics.Metrics

type addr = int

type line = {
  mutable state : Arch.cstate;
  mutable owner : int option;   (* core holding Modified/Owned/Exclusive *)
  sharers : Coreset.t;          (* cores holding Shared copies *)
  mutable home : int;           (* home node (directory / home tile / memory);
                                   mutable only so disposed memories can
                                   recycle line records in place *)
  mutable busy_until : int;     (* virtual time the line is occupied until *)
  mutable pfw_owner : int option;
      (* core holding an exclusive-prefetch reservation (section 5.3):
         set by a prefetchw probe, cleared by any other real access.
         While a foreign reservation holds, other prefetchw probes
         degrade to directed read snoops that steal nothing. *)
  mutable cas_pending : int;
      (* core whose CAS just lost on this line (-1 = none): its request
         stays posted at the line and wins the next grant, so its retry
         skips the queue instead of observing a value one full transfer
         stale (hardware pending-request arbitration, the fix for
         CAS-based FAI over-degrading in Figure 4).  Replaced by later
         losers; consumed by the pending core's next access. *)
  mutable llc_dirty : bool;
      (* the last write drained through the store buffer into the
         inclusive LLC (posted store): a same-die fetch of this
         Modified line is an LLC hit, not an owner round trip (Xeon) *)
  mutable waiters : waiter list; (* parked spinners, FIFO *)
}
(* Sharded-execution bookkeeping (residency tags, conflict stamps,
   peek generations) lives in side arrays on [t], not in the line
   record: serial runs never touch it, and growing every line by four
   words measurably hurts the serial hot path's cache footprint. *)

(* A parked spinner: the spin loop [probe; while result = w_while:
   pause w_poll; probe] whose probes are currently inert.  [w_next] is
   the virtual time its next probe would issue; successive probes sit
   on the grid [w_next + i * w_step] (probe latency + poll pause).
   [w_replay] hands the wake time back to the engine, which re-issues
   the probe for real. *)
and waiter = {
  w_core : int;
  w_addr : addr;                (* the word the spin loop polls *)
  w_op : Arch.memop;
  w_operand : int;
  w_operand2 : int;
  w_while : int;
  w_poll : int;
  w_hit : int;                  (* service latency of one inert probe *)
  w_local : bool;               (* inert probes are local hits (false for
                                   foreign-reservation directed reads) *)
  w_step : int;                 (* w_hit + w_poll *)
  w_parked : int;               (* virtual time the spinner parked (waiter-
                                   depth telemetry, charged at wake) *)
  mutable w_next : int;
  w_replay : int -> unit;
}

(* Per-shard mutable scratch: reused cost-model view, the
   [last_result] out-parameter, the resource-path scratch and this
   shard's share of the access statistics.  Serial code uses slot 0; a
   sharded engine gives each shard its own slot and merges the stats at
   the end of the run. *)
type slot = {
  scratch : Cost_model.view;    (* reused for every op_latency call *)
  path : int array;             (* reused resource-path scratch *)
  mutable last_result : int;
      (* result value of the most recent [access_lat] — an out-parameter
         that spares the engine's hot path one tuple allocation per
         memory operation *)
  stats : Stats.t;
  mutable macc : Metrics.t option;
      (* this slot's metrics accumulator, a [Metrics.branch] of the
         domain sink cached at creation like [trace]: [None] when
         metrics are off, so the sampled hot path costs one option
         match.  Drained into the sink by [drain_metrics] when the run
         succeeds; aborted sharded attempts never drain, keeping the
         dump strategy-independent. *)
}

(* Undo-journal checkpoint for speculative replay ([Sim]): the engine
   checkpoints once at virtual time 0 (after workload setup, before any
   thread is spawned) and, when a sharded attempt aborts on a conflict,
   [restore]s and replays instead of rebuilding the whole job serially.
   The journal records the *pre-image* of every line and word first
   touched since the checkpoint (first-touch epochs in [jline_gen]/
   [jword_gen] keep it O(dirty set)); the small resource arrays and the
   slot-0 stats are snapshotted wholesale.  Lines/words allocated after
   the checkpoint are simply truncated away on restore — replays
   re-execute the same deterministic bodies, so they re-allocate the
   same ids. *)
type jline = {
  jl_li : int;
  jl_state : Arch.cstate;
  jl_owner : int option;
  jl_sharers : Coreset.t;       (* private copy *)
  jl_busy : int;
  jl_pfw : int option;
  jl_casp : int;
  jl_llc : bool;
  jl_stamp_t : int;
  jl_stamp_tid : int;
  jl_msince : int;              (* sharer-gauge sample time pre-image *)
}

type checkpoint = {
  c_n_lines : int;
  c_n_words : int;
  mutable c_jlines : jline list;        (* pre-images, newest first *)
  mutable c_jwords : (int * int) list;  (* (addr, pre-image value) *)
  c_rbusy : int array;
  c_rstamp_t : int array;
  c_rstamp_core : int array;
  c_rstamp_line : int array;
  c_stats : Stats.t;                    (* slot-0 stats at checkpoint *)
  c_macc : Metrics.t option;            (* slot-0 metrics at checkpoint *)
}

type t = {
  platform : Platform.t;
  mutable lines : line array;   (* indexed by line id *)
  mutable n_lines : int;
  mutable values : int array;   (* indexed by word address *)
  mutable word2line : int array; (* word address -> line id *)
  mutable n_words : int;
  (* per-line sharding tags, indexed by line id alongside [lines] *)
  mutable res : int array;      (* resident shard, -1 = unassigned/serial *)
  mutable stamp_t : int array;  (* latest access key on the line: time... *)
  mutable stamp_tid : int array; (* ...and the accessing thread *)
  mutable peek_gens : int array; (* window generation of the last in-window
                                    peek/poke (cost-free debug access) *)
  (* finite-bandwidth interconnect resources, indexed by resource id
     (home directories then links, see [Cost_model.fill_path]) *)
  rbusy : int array;            (* virtual time each resource is held until *)
  rstamp_t : int array;         (* sharded-run conflict stamps: time... *)
  rstamp_core : int array;      (* ...and core (resources are touched by at
                                   most one thread per core in a window) *)
  rstamp_line : int array;      (* ...and the line whose transfer last
                                   stamped it (-1 = none): lets a resource
                                   conflict name the lines to promote on
                                   speculative replay *)
  mutable sharding : bool;
      (* a sharded run is in progress on this memory: resource accesses
         must be ownership-checked and stamped (serial runs skip both) *)
  mutable slots : slot array;   (* slots.(0) always exists *)
  mutable frozen : bool;
      (* a sharded window is executing: structural mutation (alloc)
         must abort to the serial path instead of racing *)
  mutable gen : int;
      (* window generation, bumped by [freeze t true]; lines record the
         generation of their last in-window [peek]/[poke] so the
         coordinator can detect unstamped value reads it would race *)
  mutable serial_only : bool;
      (* a workload component declared state the memory model cannot
         see (e.g. a hardware message queue held in native OCaml data):
         the line stamps cannot order it, so sharded runs must abort *)
  mutable solo : bool;
      (* the current window runs on exactly one shard (solo fast path):
         no concurrent shard exists, so the resource *ownership* check
         is moot and skipped — the monotonic stamp check still runs,
         keeping conflict detection identical *)
  mutable ckpt : checkpoint option;
  mutable jepoch : int;
      (* journal epoch, bumped by [checkpoint] and [restore]; an entry
         of [jline_gen]/[jword_gen] equal to [jepoch] means the
         pre-image is already journaled this epoch *)
  mutable jline_gen : int array;  (* indexed by line id *)
  mutable jword_gen : int array;  (* indexed by word address *)
  mutable trace : Trace.t option;
      (* the domain's trace sink, cached at creation time so the
         untraced hot path pays exactly one option match per access.
         Cleared by [set_slots n > 1] ([Trace.allow_sharded]): worker
         domains must never touch the coordinator's ring *)
  strace : Trace.t option;
      (* the same sink, kept across [set_slots] for coordinator-context
         speculation-lifecycle events (checkpoint/restore) *)
  mutable msince : int array;
      (* per-line virtual time the sharer-count gauge last sampled,
         indexed alongside [lines]; [[||]] when metrics are off (side
         array, like the sharding tags, to protect the serial cache
         footprint) *)
}

exception Sharded_alloc
(* raised by [alloc] while [frozen]: the engine catches it, aborts the
   sharded attempt and re-runs serially *)

exception Sharded_violation of int list
(* raised by [peek]/[poke] from inside a sharded window when the line
   is resident on another shard, and by any access whose interconnect
   path crosses a foreign shard's resource (or uses one out of stamp
   order): neither can be deferred through the engine's residency
   routing, so the attempt aborts — the engine replays speculatively
   with the payload's lines promoted to coordinator-mediated access, or
   re-runs serially when the payload is empty (conflict not
   attributable to lines) *)

(* Which shard the calling domain is currently draining (-1 = none:
   serial execution, or the coordinator between windows).  Domain-local
   because shard drains run on worker domains. *)
let exec_sid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)
let set_exec_sid s = Domain.DLS.set exec_sid_key s
let exec_sid () = Domain.DLS.get exec_sid_key

let dummy_line =
  { state = Arch.Invalid; owner = None; sharers = Coreset.create (); home = 0;
    busy_until = 0; pfw_owner = None; cas_pending = -1; llc_dirty = false;
    waiters = [] }

let make_slot () =
  {
    scratch =
      { Cost_model.state = Arch.Invalid; owner = None;
        sharers = Coreset.create (); home = 0; llc_dirty = false };
    path = Array.make Cost_model.max_path_len 0;
    last_result = 0;
    stats = Stats.create ();
    macc = None;
  }

(* Domain-local recycling pool.  A benchmark harness creates one memory
   per job and thousands of jobs per section; the line records and the
   line/word-indexed side arrays dominate each job's setup allocation
   (and the minor-GC promotion traffic that goes with it), so
   [dispose]d memories donate them to the next [create] on the same
   domain.  [new_line]/[new_word] initialise every recycled cell
   explicitly, so a pooled array needs no cleaning here.  Domain-local
   (no lock): job fan-out runs whole jobs per domain, and the engine's
   shard crew never allocates memories. *)
type recycled = {
  r_lines : line array;
  r_values : int array;
  r_word2line : int array;
  r_res : int array;
  r_stamp_t : int array;
  r_stamp_tid : int array;
  r_peek_gens : int array;
  r_jline_gen : int array;
  r_jword_gen : int array;
}

let pool_key : recycled list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let pool_max = 4

let create platform =
  let trace = Trace.current () in
  (match trace with
  | Some tr ->
      (* successive simulations in one traced job map onto a single
         forward timeline; see [Trace.new_epoch] *)
      Trace.new_epoch tr;
      Trace.set_platform tr platform.Platform.name
  | None -> ());
  let metrics = Metrics.current () in
  (* like the trace, successive simulations in one sampled job map onto
     disjoint grid segments; the sink's high-water mark only advances
     when a run drains, so an aborted sharded attempt's serial re-run
     lands on the identical epoch base *)
  (match metrics with Some m -> Metrics.new_epoch m | None -> ());
  let n_res = Cost_model.n_resources platform.Platform.topo in
  let pool = Domain.DLS.get pool_key in
  let lines, values, word2line, res, stamp_t, stamp_tid, peek_gens,
      jline_gen, jword_gen =
    match !pool with
    | r :: rest ->
        pool := rest;
        ( r.r_lines, r.r_values, r.r_word2line, r.r_res, r.r_stamp_t,
          r.r_stamp_tid, r.r_peek_gens, r.r_jline_gen, r.r_jword_gen )
    | [] ->
        ( Array.make 1024 dummy_line, Array.make 1024 0, Array.make 1024 0,
          Array.make 1024 (-1), Array.make 1024 (-1), Array.make 1024 (-1),
          Array.make 1024 (-1), Array.make 1024 0, Array.make 1024 0 )
  in
  let slot0 = make_slot () in
  slot0.macc <- Option.map Metrics.branch metrics;
  {
    platform;
    lines;
    n_lines = 0;
    values;
    word2line;
    n_words = 0;
    res;
    stamp_t;
    stamp_tid;
    peek_gens;
    rbusy = Array.make n_res 0;
    rstamp_t = Array.make n_res (-1);
    rstamp_core = Array.make n_res (-1);
    rstamp_line = Array.make n_res (-1);
    sharding = false;
    slots = [| slot0 |];
    frozen = false;
    gen = 0;
    serial_only = false;
    solo = false;
    ckpt = None;
    jepoch = 0;
    jline_gen;
    jword_gen;
    trace;
    strace = trace;
    msince = (if metrics = None then [||] else Array.make (Array.length lines) 0);
  }

(* Return the memory's recyclable arrays to the domain pool.  The
   caller promises no live simulation references [t] any more; [t]
   itself becomes unusable (word/line counts are zeroed so any stale
   access trips the bounds checks).  Waiter lists are cleared eagerly —
   parked-probe replay closures can retain an entire dead simulation. *)
let dispose t =
  for li = 0 to t.n_lines - 1 do
    let l = t.lines.(li) in
    l.waiters <- [];
    l.owner <- None;
    l.pfw_owner <- None
  done;
  t.ckpt <- None;
  t.n_lines <- 0;
  t.n_words <- 0;
  let pool = Domain.DLS.get pool_key in
  if List.length !pool < pool_max then
    pool :=
      {
        r_lines = t.lines;
        r_values = t.values;
        r_word2line = t.word2line;
        r_res = t.res;
        r_stamp_t = t.stamp_t;
        r_stamp_tid = t.stamp_tid;
        r_peek_gens = t.peek_gens;
        r_jline_gen = t.jline_gen;
        r_jword_gen = t.jword_gen;
      }
      :: !pool

let require_serial t = t.serial_only <- true
let serial_required t = t.serial_only

let platform t = t.platform
let stats t = t.slots.(0).stats
let n_lines t = t.n_lines
let n_words t = t.n_words
let line_words t = t.platform.Platform.topo.Topology.line_words

(* ------------------------- sharding support ------------------------ *)

let slot t i = t.slots.(i)
let n_slots t = Array.length t.slots
let slot_metrics sl = sl.macc

(* Ensure [n] slots exist (fresh stats in slots >= 1 each call, so a
   sharded run's per-shard tallies start from zero). *)
let set_slots t n =
  let n = max 1 n in
  let old = Array.length t.slots in
  if n <> old then begin
    let slots =
      Array.init n (fun i -> if i = 0 then t.slots.(0) else make_slot ())
    in
    t.slots <- slots
  end
  else
    for i = 1 to n - 1 do
      t.slots.(i) <- make_slot ()
    done;
  for i = 1 to n - 1 do
    t.slots.(i).macc <- Option.map Metrics.branch t.slots.(0).macc
  done;
  (* worker domains must never touch the coordinator's trace ring:
     under [Trace.allow_sharded] the per-access hooks go dark and only
     the coordinator-emitted speculation events remain ([strace]) *)
  if n > 1 then t.trace <- None

(* Fold every shard slot's stats into slot 0 and zero the shard slots:
   after a sharded run, [stats] reports the same merged totals a serial
   run accumulates directly.  The slot records themselves stay put, so
   an engine that cached them per shard can keep using them across
   runs. *)
let merge_slots t =
  let s0 = t.slots.(0).stats in
  for i = 1 to Array.length t.slots - 1 do
    Stats.add s0 t.slots.(i).stats;
    Stats.reset t.slots.(i).stats
  done

(* Fold every slot's metrics accumulator into the domain sink — called
   by the engine when a run completes (serial, or a sharded attempt
   that survived its conflict checks and merged).  Aborted attempts
   never drain, so the sink only ever holds samples from the surviving
   schedule — which PDES guarantees is the serial one — keeping the
   dump byte-identical at any shard count. *)
let drain_metrics t =
  match Metrics.current () with
  | None -> ()
  | Some sink ->
      Array.iter
        (fun sl ->
          match sl.macc with
          | Some m -> Metrics.merge ~into:sink m
          | None -> ())
        t.slots

let freeze t b =
  if b then t.gen <- t.gen + 1;
  t.frozen <- b

(* Append one line homed at node [home]; returns its line id.  Every
   per-line cell — the record and each side-array entry — is
   initialised explicitly: the arrays may be recycled from a disposed
   memory ([dispose]) or hold truncated-away state after a checkpoint
   [restore], so nothing may rely on allocation-time fills. *)
let new_line t ~home =
  if t.n_lines = Array.length t.lines then begin
    let cap = 2 * Array.length t.lines in
    let bigger = Array.make cap dummy_line in
    Array.blit t.lines 0 bigger 0 t.n_lines;
    t.lines <- bigger;
    let grow_tags src =
      let b = Array.make cap (-1) in
      Array.blit src 0 b 0 t.n_lines;
      b
    in
    t.res <- grow_tags t.res;
    t.stamp_t <- grow_tags t.stamp_t;
    t.stamp_tid <- grow_tags t.stamp_tid;
    t.peek_gens <- grow_tags t.peek_gens;
    t.jline_gen <- grow_tags t.jline_gen;
    if t.msince <> [||] then t.msince <- grow_tags t.msince
  end;
  let li = t.n_lines in
  let l = t.lines.(li) in
  if l == dummy_line then
    t.lines.(li) <-
      { state = Arch.Invalid; owner = None; sharers = Coreset.create (); home;
        busy_until = 0; pfw_owner = None; cas_pending = -1; llc_dirty = false;
        waiters = [] }
  else begin
    (* recycled record: reset in place, sparing the allocation *)
    l.state <- Arch.Invalid;
    l.owner <- None;
    Coreset.clear l.sharers;
    l.home <- home;
    l.busy_until <- 0;
    l.pfw_owner <- None;
    l.cas_pending <- -1;
    l.llc_dirty <- false;
    l.waiters <- []
  end;
  t.res.(li) <- -1;
  t.stamp_t.(li) <- -1;
  t.stamp_tid.(li) <- -1;
  t.peek_gens.(li) <- -1;
  t.jline_gen.(li) <- 0;
  if t.msince <> [||] then t.msince.(li) <- 0;
  t.n_lines <- li + 1;
  li

(* Append one word on line [li]; returns its (word) address. *)
let new_word t ~line:li ~value =
  if t.n_words = Array.length t.values then begin
    let cap = 2 * Array.length t.values in
    let grow src init =
      let b = Array.make cap init in
      Array.blit src 0 b 0 t.n_words;
      b
    in
    t.values <- grow t.values 0;
    t.word2line <- grow t.word2line 0;
    t.jword_gen <- grow t.jword_gen 0
  end;
  let a = t.n_words in
  t.values.(a) <- value;
  t.word2line.(a) <- li;
  t.jword_gen.(a) <- 0;
  t.n_words <- a + 1;
  a

let alloc ?(home_core = 0) ?(value = 0) t : addr =
  if t.frozen then raise Sharded_alloc;
  Topology.check t.platform.Platform.topo home_core;
  let home = t.platform.Platform.topo.Topology.mem_node_of_core home_core in
  let li = new_line t ~home in
  new_word t ~line:li ~value

let alloc_n ?(home_core = 0) ?(value = 0) t n : addr =
  if n <= 0 then invalid_arg "Memory.alloc_n: n must be positive";
  let base = alloc ~home_core ~value t in
  for _ = 2 to n do
    ignore (alloc ~home_core ~value t)
  done;
  base

(* Allocate [n] consecutive words *packed* onto as few lines as the
   platform's line size allows (ceil(n / line_words) lines, all homed
   at [home_core]'s node); returns the first address.  Words of one
   line share coherence state, occupancy and waiters — this is the
   allocator that makes false sharing happen. *)
let alloc_packed ?(home_core = 0) ?(value = 0) t n : addr =
  if n <= 0 then invalid_arg "Memory.alloc_packed: n must be positive";
  if t.frozen then raise Sharded_alloc;
  Topology.check t.platform.Platform.topo home_core;
  let home = t.platform.Platform.topo.Topology.mem_node_of_core home_core in
  let wpl = t.platform.Platform.topo.Topology.line_words in
  let base = ref (-1) in
  let remaining = ref n in
  while !remaining > 0 do
    let li = new_line t ~home in
    let k = min wpl !remaining in
    for _ = 1 to k do
      let a = new_word t ~line:li ~value in
      if !base < 0 then base := a
    done;
    remaining := !remaining - k
  done;
  !base

let line_id t a =
  if a < 0 || a >= t.n_words then
    invalid_arg (Printf.sprintf "Memory.line: address %d out of range" a);
  t.word2line.(a)

let line t a = t.lines.(line_id t a)

(* Do two addresses share a cache line? (tests/metrics) *)
let same_line t a b = line_id t a = line_id t b

(* Shard residency: every line belongs to one shard; only that shard's
   threads may touch it inside a window (the engine defers everything
   else to the inter-window coordinator, which may migrate the line to
   the requester). *)
(* Engine-internal callers pass addresses straight out of [alloc], so
   these rely on the array bounds check alone. *)
let residency t a = t.res.(t.word2line.(a))
let set_residency t a s = t.res.(t.word2line.(a)) <- s

(* Promotion entry point: tag a line (by id, as carried in conflict
   payloads) with an arbitrary residency — the engine uses a sentinel
   no shard matches, so every access to the line defers to the
   coordinator. *)
let set_line_residency t li s = t.res.(li) <- s
let line_residency t li = t.res.(li)

let set_solo t b = t.solo <- b

(* --------------- checkpoint / rollback (speculative replay) -------- *)

let journal_line_slow t (c : checkpoint) li =
  t.jline_gen.(li) <- t.jepoch;
  if li < c.c_n_lines then begin
    let l = t.lines.(li) in
    c.c_jlines <-
      {
        jl_li = li;
        jl_state = l.state;
        jl_owner = l.owner;
        jl_sharers = Coreset.copy l.sharers;
        jl_busy = l.busy_until;
        jl_pfw = l.pfw_owner;
        jl_casp = l.cas_pending;
        jl_llc = l.llc_dirty;
        jl_stamp_t = t.stamp_t.(li);
        jl_stamp_tid = t.stamp_tid.(li);
        jl_msince = (if t.msince = [||] then 0 else t.msince.(li));
      }
      :: c.c_jlines
  end
  (* lines allocated after the checkpoint need no pre-image: restore
     truncates them away *)

let[@inline] journal_line t li =
  match t.ckpt with
  | None -> ()
  | Some c -> if t.jline_gen.(li) <> t.jepoch then journal_line_slow t c li

let journal_word_slow t (c : checkpoint) a =
  t.jword_gen.(a) <- t.jepoch;
  if a < c.c_n_words then c.c_jwords <- (a, t.values.(a)) :: c.c_jwords

let[@inline] journal_word t a =
  match t.ckpt with
  | None -> ()
  | Some c -> if t.jword_gen.(a) <> t.jepoch then journal_word_slow t c a

(* Arm (or re-arm) the rollback point.  Precondition: no parked waiters
   — the engine checkpoints at virtual time 0, after workload setup and
   before any thread is spawned, so nothing is mid-spin and the
   replay's re-spawn rebuilds all queued work from scratch (which is
   also why the shard event queues need no snapshot: they are empty
   here and fully reconstructed by the replay). *)
let checkpoint t =
  for li = 0 to t.n_lines - 1 do
    if t.lines.(li).waiters <> [] then
      invalid_arg "Memory.checkpoint: parked waiters present"
  done;
  t.ckpt <-
    Some
      {
        c_n_lines = t.n_lines;
        c_n_words = t.n_words;
        c_jlines = [];
        c_jwords = [];
        c_rbusy = Array.copy t.rbusy;
        c_rstamp_t = Array.copy t.rstamp_t;
        c_rstamp_core = Array.copy t.rstamp_core;
        c_rstamp_line = Array.copy t.rstamp_line;
        c_stats = Stats.copy t.slots.(0).stats;
        c_macc = Option.map Metrics.copy t.slots.(0).macc;
      };
  t.jepoch <- t.jepoch + 1;
  match t.strace with
  | Some tr -> Trace.emit_end tr Trace.E_ckpt
  | None -> ()

(* Roll every observable back to the checkpoint: journaled pre-images
   for lines/words, wholesale blits for the (small) resource arrays and
   slot-0 stats, truncation for post-checkpoint allocations.  The
   checkpoint stays armed (journals emptied, epoch bumped), so a replay
   that conflicts again can restore again. *)
let restore t =
  match t.ckpt with
  | None -> invalid_arg "Memory.restore: no checkpoint"
  | Some c ->
      List.iter
        (fun j ->
          let l = t.lines.(j.jl_li) in
          l.state <- j.jl_state;
          l.owner <- j.jl_owner;
          Coreset.assign l.sharers j.jl_sharers;
          l.busy_until <- j.jl_busy;
          l.pfw_owner <- j.jl_pfw;
          l.cas_pending <- j.jl_casp;
          l.llc_dirty <- j.jl_llc;
          l.waiters <- [];
          t.stamp_t.(j.jl_li) <- j.jl_stamp_t;
          t.stamp_tid.(j.jl_li) <- j.jl_stamp_tid;
          if t.msince <> [||] then t.msince.(j.jl_li) <- j.jl_msince)
        c.c_jlines;
      List.iter (fun (a, v) -> t.values.(a) <- v) c.c_jwords;
      c.c_jlines <- [];
      c.c_jwords <- [];
      (* drop post-checkpoint allocations; clear their waiter lists so
         truncated records don't retain dead replay closures *)
      for li = c.c_n_lines to t.n_lines - 1 do
        t.lines.(li).waiters <- []
      done;
      t.n_lines <- c.c_n_lines;
      t.n_words <- c.c_n_words;
      Array.blit c.c_rbusy 0 t.rbusy 0 (Array.length c.c_rbusy);
      Array.blit c.c_rstamp_t 0 t.rstamp_t 0 (Array.length c.c_rstamp_t);
      Array.blit c.c_rstamp_core 0 t.rstamp_core 0
        (Array.length c.c_rstamp_core);
      Array.blit c.c_rstamp_line 0 t.rstamp_line 0
        (Array.length c.c_rstamp_line);
      Stats.assign t.slots.(0).stats c.c_stats;
      (match (t.slots.(0).macc, c.c_macc) with
      | Some m, Some cm -> Metrics.assign m cm
      | _ -> ());
      for i = 1 to Array.length t.slots - 1 do
        Stats.reset t.slots.(i).stats;
        match (t.slots.(i).macc, t.slots.(0).macc) with
        | Some mi, Some m0 -> Metrics.rebase mi ~like:m0
        | _ -> ()
      done;
      Array.fill t.peek_gens 0 t.n_lines (-1);
      t.solo <- false;
      t.frozen <- false;
      t.jepoch <- t.jepoch + 1;
      (match t.strace with
      | Some tr -> Trace.emit_end tr Trace.E_restore
      | None -> ())

let has_checkpoint t = t.ckpt <> None

(* Assign residency for lines [from, n_lines) by their home node;
   returns the new high-water mark.  Called by the coordinator between
   windows, so lines allocated by deferred (coordinator-run) code get
   tagged before the next window starts. *)
let assign_residency t ~shard_of_node ~from =
  for li = from to t.n_lines - 1 do
    t.res.(li) <- shard_of_node t.lines.(li).home
  done;
  t.n_lines

(* Conflict check + stamp for sharded execution: an access with key
   [(time, tid)] is serial-order sound only if every access this line
   has already served has a key at most [(time, tid)] — same-time
   accesses by *different* threads are ambiguous (their serial order
   was insertion order, which sharded execution cannot reconstruct), so
   they conservatively fail.  Returns [false] on violation; the engine
   aborts the sharded attempt and re-runs serially.  Stamps are
   line-granular: two packed words on one line conflict exactly like
   one shared word. *)
let stamp t a ~time ~tid =
  let li = t.word2line.(a) in
  let st = t.stamp_t.(li) in
  if st > time || (st = time && t.stamp_tid.(li) <> tid) then false
  else begin
    (* journal before the write: the stamp is part of the line's
       rollback image, and this is the line's first touch on most
       access paths *)
    journal_line t li;
    t.stamp_t.(li) <- time;
    t.stamp_tid.(li) <- tid;
    true
  end

let clear_stamps t =
  Array.fill t.stamp_t 0 t.n_lines (-1);
  Array.fill t.stamp_tid 0 t.n_lines (-1);
  let nr = Array.length t.rstamp_t in
  Array.fill t.rstamp_t 0 nr (-1);
  Array.fill t.rstamp_core 0 nr (-1);
  Array.fill t.rstamp_line 0 nr (-1);
  (* a sharded run is starting: from here on, resource accesses must be
     ownership-checked and stamped.  The flag stays set for the memory's
     lifetime — an aborted attempt is re-run on a fresh serial memory
     ([Sim.serial_fallback]), never on this one. *)
  t.sharding <- true

(* ------------------------------------------------------------------ *)

(* Debug/test access that costs nothing and moves no state.  Simulated
   bodies use these for cost-free algorithmic reads (e.g. a queue
   lock's uncontended fast-path check), so under sharded execution they
   are guarded like real accesses: a cross-shard peek inside a window
   aborts ([Sharded_violation]), and a resident one marks the line's
   window generation so the coordinator refuses to touch the line in
   the same window ([peeked_this_window]) — a peek carries no (time,
   tid) key, so the ordinary stamp check cannot order it against
   deferred cross-shard work. *)
let guard_debug_access t li =
  if t.frozen then begin
    let s = Domain.DLS.get exec_sid_key in
    if s >= 0 then
      if t.res.(li) <> s then
        (* empty payload: a peek carries no ordering key, so promoting
           the line cannot legalise it — the engine must not retry
           speculatively on this conflict *)
        raise (Sharded_violation [])
      else t.peek_gens.(li) <- t.gen
  end

let peek t a =
  let li = line_id t a in
  guard_debug_access t li;
  t.values.(a)

let poke t a v =
  let li = line_id t a in
  guard_debug_access t li;
  journal_word t a;
  t.values.(a) <- v

(* Was the line peeked/poked during the current (just-finished) window?
   Checked by the coordinator before executing a deferred access on the
   line. *)
let peeked_this_window t a = t.peek_gens.(line_id t a) = t.gen

(* Refill the slot's scratch view from [l]; [sharers] aliases the
   line's set, which the cost model only reads. *)
let view_of_line (sl : slot) (l : line) : Cost_model.view =
  let v = sl.scratch in
  v.Cost_model.state <- l.state;
  v.Cost_model.owner <- l.owner;
  v.Cost_model.sharers <- l.sharers;
  v.Cost_model.home <- l.home;
  v.Cost_model.llc_dirty <- l.llc_dirty;
  v

let holds l core = l.owner = Some core || Coreset.mem l.sharers core

(* Is this access served entirely from the requester's own cache (no
   global transaction, no serialization)? *)
let is_local_hit (l : line) core (op : Arch.memop) =
  match op with
  | Arch.Load -> holds l core
  | Arch.Store -> l.owner = Some core
  | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap -> l.owner = Some core

(* A fetch-and-add of 0 is an exclusive-prefetch probe (prefetchw +
   load, section 5.3): it costs a store-intent transfer, not a locked
   read-modify-write; [operand2 = 1] marks a store-class single-writer
   update. *)
let cost_op_of (op : Arch.memop) ~operand ~operand2 =
  match op with
  | Arch.Fai when operand = 0 || operand2 = 1 -> Arch.Store
  | _ -> op

let is_pfw_probe (op : Arch.memop) ~operand ~operand2 =
  op = Arch.Fai && operand = 0 && operand2 = 0

(* Does another core hold the line's exclusive-prefetch reservation
   against this probe? *)
let foreign_reservation (l : line) ~core op ~operand ~operand2 =
  is_pfw_probe op ~operand ~operand2
  && (match l.pfw_owner with Some o -> o <> core | None -> false)

(* Cycles a [Store] retires in when it drains through the store buffer
   instead of stalling the thread (the transfer itself still runs in
   the background: transition, invalidations, occupancy). *)
let store_buffer_retire = 12


(* What the next probe of this spin would cost, and whether it is a
   foreign-reservation directed read.  Shared between [access],
   [try_park] (the parked poll grid must charge the same per-probe cost
   the literal loop would) and [wake_disturbed] (a parked waiter whose
   probe cost changed must replay for real to stay on the polled
   schedule). *)
let probe_cost t (sl : slot) (l : line) ~core (op : Arch.memop) ~operand
    ~operand2 =
  let foreign = foreign_reservation l ~core op ~operand ~operand2 in
  let cost_op =
    if foreign then Arch.Load else cost_op_of op ~operand ~operand2
  in
  ( foreign,
    t.platform.Platform.op_latency cost_op ~requester:core (view_of_line sl l)
  )

(* Protocol state transition after [core] performs [op].  MOESI
   (Opteron) keeps a dirty line in the previous owner's cache in Owned
   state when another core loads it; the MESI variants downgrade both
   copies to Shared.  Any store/atomic invalidates all other copies and
   leaves the line Modified at [core].  Returns the number of remote
   copies invalidated. *)
let transition t (l : line) core (op : Arch.memop) =
  let moesi =
    match t.platform.Platform.id with
    | Arch.Opteron | Arch.Opteron2 -> true
    | Arch.Xeon | Arch.Xeon2 | Arch.Niagara | Arch.Tilera -> false
  in
  match op with
  | Arch.Load ->
      if holds l core then 0
      else begin
        (match (l.state, l.owner) with
        | (Arch.Modified, Some o) when moesi ->
            (* owner keeps its dirty copy in Owned state *)
            l.state <- Arch.Owned;
            l.owner <- Some o;
            Coreset.add l.sharers core
        | ((Arch.Modified | Arch.Exclusive), Some o) ->
            l.state <- Arch.Shared;
            l.owner <- None;
            Coreset.add l.sharers core;
            Coreset.add l.sharers o
        | (Arch.Owned, Some _) -> Coreset.add l.sharers core
        | ((Arch.Shared | Arch.Forward), _) -> Coreset.add l.sharers core
        | (Arch.Invalid, _) ->
            l.state <- Arch.Exclusive;
            l.owner <- Some core;
            Coreset.clear l.sharers
        | ((Arch.Modified | Arch.Exclusive), None)
        | (Arch.Owned, None) ->
            (* inconsistent: repair as a fresh exclusive fill *)
            l.state <- Arch.Exclusive;
            l.owner <- Some core;
            Coreset.clear l.sharers)
        ;
        0
      end
  | Arch.Store | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap ->
      let killed =
        Coreset.cardinal l.sharers
        - (if Coreset.mem l.sharers core then 1 else 0)
        + (match l.owner with Some o when o <> core -> 1 | _ -> 0)
      in
      l.state <- Arch.Modified;
      l.owner <- Some core;
      Coreset.clear l.sharers;
      killed

(* Apply the operation's data semantics to word [a]; returns the result
   value delivered to the requester. *)
let apply_data t (a : addr) (op : Arch.memop) ~operand ~operand2 =
  match op with
  | Arch.Load -> t.values.(a)
  | Arch.Store ->
      t.values.(a) <- operand;
      0
  | Arch.Cas ->
      if t.values.(a) = operand then begin
        t.values.(a) <- operand2;
        1
      end
      else 0
  | Arch.Fai ->
      (* fetch-and-add: [operand] is the increment; 0 turns it into an
         atomic read that still acquires the line exclusively (the
         building block of the prefetchw-style probes) *)
      let old = t.values.(a) in
      t.values.(a) <- old + operand;
      old
  | Arch.Tas ->
      let old = t.values.(a) in
      t.values.(a) <- 1;
      old
  | Arch.Swap ->
      let old = t.values.(a) in
      t.values.(a) <- operand;
      old

(* ---------------------------- parking ---------------------------- *)

(* Would a probe of [op] by [core] observing word [value] on this line
   be *inert* — a local cache hit whose transition and data update
   change nothing and whose result keeps the spin loop going?  Such a
   probe affects nothing but the prober's own schedule, so it can be
   elided and bulk-accounted later. *)
let probe_inert (l : line) ~value ~core (op : Arch.memop) ~operand ~operand2
    ~while_ =
  (match op with
  | Arch.Load -> value = while_
  | Arch.Tas -> while_ = 1 && value = 1
  | Arch.Cas -> while_ = 0 && value <> operand
  | Arch.Fai -> operand = 0 && value = while_
  | Arch.Swap -> value = operand && value = while_
  | Arch.Store -> false)
  &&
  match op with
  | Arch.Load -> holds l core
  | Arch.Store -> false
  | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap ->
      (* the transition must also be a no-op: already Modified at the
         prober with no sharer left to invalidate — or a prefetchw
         probe under another waiter's reservation, which degrades to a
         directed read that changes neither state nor value *)
      (l.state = Arch.Modified && l.owner = Some core
       && Coreset.is_empty l.sharers)
      || foreign_reservation l ~core op ~operand ~operand2

(* Park a spinner whose next probe (issuing at [now + poll]) would be
   inert.  Returns [false] — and parks nothing — when the probe must
   run for real.  [replay] receives the issue time of the first
   non-elided probe once a real access disturbs the line. *)
let try_park_in t ~slot:sl ~core ~now (op : Arch.memop) (a : addr) ~operand
    ~operand2 ~while_ ~poll ~replay : bool =
  let li = line_id t a in
  let l = t.lines.(li) in
  if not (probe_inert l ~value:t.values.(a) ~core op ~operand ~operand2
            ~while_)
  then false
  else begin
    (* parking mutates the waiter list: journal so a rollback drops the
       parked spinner with the rest of the attempt *)
    journal_line t li;
    let foreign, hit = probe_cost t sl l ~core op ~operand ~operand2 in
    let w =
      {
        w_core = core;
        w_addr = a;
        w_op = op;
        w_operand = operand;
        w_operand2 = operand2;
        w_while = while_;
        w_poll = poll;
        w_hit = hit;
        w_local = not foreign;
        w_step = hit + poll;
        w_parked = now;
        w_next = now + poll;
        w_replay = replay;
      }
    in
    l.waiters <- l.waiters @ [ w ];
    true
  end

let try_park t ~core ~now op a ~operand ~operand2 ~while_ ~poll ~replay =
  try_park_in t ~slot:t.slots.(0) ~core ~now op a ~operand ~operand2 ~while_
    ~poll ~replay

let waiter_count t a = List.length (line t a).waiters

let probe_would_elide t ~core (op : Arch.memop) (a : addr) ~operand ~operand2
    ~while_ =
  probe_inert (line t a) ~value:t.values.(a) ~core op ~operand ~operand2
    ~while_

(* Phase 1, before the access mutates the line: account every elided
   probe that would have issued strictly before [now] under the state
   the line held since the last real access. *)
let settle_elided t (sl : slot) (l : line) ~now =
  List.iter
    (fun w ->
      if w.w_next < now then begin
        let k = 1 + ((now - 1 - w.w_next) / w.w_step) in
        Stats.record_elided sl.stats w.w_op ~count:k ~latency:w.w_hit
          ~local:w.w_local;
        (match t.trace with
        | Some tr -> Trace.note_elided tr ~count:k ~cycles:(k * w.w_hit)
        | None -> ());
        w.w_next <- w.w_next + (k * w.w_step)
      end)
    l.waiters

(* Phase 2, after the mutation: wake every waiter whose next probe is
   no longer inert — or whose probe cost changed (e.g. a parked
   reservation holder that lost the line and is now a foreign-reader:
   its poll grid must switch to the directed-read latency, so it
   replays one probe for real and re-parks).  [w_next] is now the first
   grid point >= [now]; a probe landing exactly on the access time
   observes the post-access state (the access wins the tie).  Wake
   order is park order, so same-time replays are deterministic.  A
   waiter parked on one word of a packed line is revalidated by an
   access to *any* word of the line: its own value may be untouched
   (the probe stays inert and it stays parked), but the line state the
   probe relies on may have changed under it — false sharing hits
   parked spinners too. *)
let wake_disturbed t (sl : slot) ~line:li (l : line) =
  match l.waiters with
  | [] -> ()
  | ws ->
      let still, woken =
        List.partition
          (fun w ->
            probe_inert l ~value:t.values.(w.w_addr) ~core:w.w_core w.w_op
              ~operand:w.w_operand ~operand2:w.w_operand2 ~while_:w.w_while
            && snd
                 (probe_cost t sl l ~core:w.w_core w.w_op ~operand:w.w_operand
                    ~operand2:w.w_operand2)
               = w.w_hit)
          ws
      in
      l.waiters <- still;
      List.iter
        (fun w ->
          (* waiter-depth gauge, charged at wake: the whole parked span
             is known only now, and an aborted attempt's charges vanish
             with the undrained slot accumulator *)
          (match sl.macc with
          | Some m ->
              Metrics.span m ~kind:Metrics.k_lock_waiters ~id:li ~t0:w.w_parked
                ~t1:w.w_next ~weight:1
          | None -> ());
          w.w_replay w.w_next)
        woken

(* Distance class of the transfer serving [core]'s request on [l] in
   its *pre-access* state: to the data source when a cached copy
   exists, to the line's home otherwise.  Trace-only; must run before
   [transition] mutates the line (and its aliased sharer set). *)
let dist_of t (sl : slot) ~core (l : line) : Arch.distance =
  let topo = t.platform.Platform.topo in
  match Cost_model.source_core topo ~requester:core (view_of_line sl l) with
  | Some src -> Cost_model.class_to_core topo ~requester:core src
  | None -> Cost_model.class_to_home topo ~requester:core (view_of_line sl l)

(* Sharded-execution guard for the resource path in [sl.path]:
   - inside a window, only the shard owning a resource (the shard of
     its lowest node, matching the engine's node-to-shard map) may
     touch it — one owner per window means the stamp and busy arrays
     are never raced;
   - any toucher (in-window or coordinator) must use resources in
     non-decreasing time order, same-time reuse by a different core
     being ambiguous exactly like line stamps.  Keys are cores, not
     tids: every sharded workload runs at most one thread per core, and
     the engine's line stamps (tid-keyed) already guard the lines
     themselves.
   Violations raise [Sharded_violation] carrying the implicated line
   ids — the line whose transfer tripped the guard plus the previous
   stamper's line — so the engine can roll back and replay with those
   lines promoted to coordinator-mediated access (or abort to the
   serial path), discarding the doomed attempt's partial mutations
   either way.  A solo window (exactly one shard active, see
   [set_solo]) skips the ownership check — there is no concurrent
   shard to race — but keeps the stamp monotonicity check, so
   conflict detection is unchanged. *)
let guard_resources t (sl : slot) ~core ~now ~line:li npath =
  let n_nodes = t.platform.Platform.topo.Topology.n_nodes in
  let nslots = Array.length t.slots in
  let sid = Domain.DLS.get exec_sid_key in
  let conflict r =
    let prev = t.rstamp_line.(r) in
    raise
      (Sharded_violation (if prev >= 0 && prev <> li then [ li; prev ]
                          else [ li ]))
  in
  for i = 0 to npath - 1 do
    let r = sl.path.(i) in
    if t.frozen && sid >= 0 && not t.solo then begin
      let owner_node = if r < n_nodes then r else (r - n_nodes) / n_nodes in
      if owner_node mod nslots <> sid then conflict r
    end;
    let st = t.rstamp_t.(r) in
    if st > now || (st = now && t.rstamp_core.(r) <> core) then conflict r;
    t.rstamp_t.(r) <- now;
    t.rstamp_core.(r) <- core;
    t.rstamp_line.(r) <- li
  done

(* Perform [op] on [a] from [core] at virtual time [now]; returns
   (completion latency in cycles, result value).  For [Cas], [operand]
   is the expected value and [operand2] the desired one ([fetch]
   changes its result from the 1/0 success flag to the observed
   pre-operation value); for [Store] and [Swap], [operand] is the value
   written ([operand2 = 1] posts the store through the store buffer:
   the thread pays only the retire cost while the transfer completes in
   the background).  A prefetchw probe ([Fai], operand 0) either takes
   the line exclusively and reserves it, or — under another core's
   reservation — degrades to a directed read snoop.  [slot] selects the
   shard's scratch/stats slot; serial callers use the [access_lat]
   wrapper on slot 0. *)
let access_lat_in ?(operand = 0) ?(operand2 = 0) ?(fetch = false) t
    ~slot:(sl : slot) ~core ~now (op : Arch.memop) (a : addr) : int =
  Topology.check t.platform.Platform.topo core;
  let li = line_id t a in
  let l = t.lines.(li) in
  if foreign_reservation l ~core op ~operand ~operand2 then begin
    (* Directed read under another waiter's exclusive-prefetch
       reservation: a non-binding snoop of the current copy that rides
       the line's data-return path — no transition, no occupancy, no
       queueing — so concurrent prefetchw pollers neither steal the
       reservation nor serialize on the line (section 5.3's directed
       handoff).  Nothing mutates, so parked waiters are untouched. *)
    let service =
      t.platform.Platform.op_latency Arch.Load ~requester:core
        (view_of_line sl l)
    in
    Stats.record sl.stats op ~latency:service ~queued:0 ~rqueued:0
      ~local:false ~invalidated:0;
    (match t.trace with
    | Some tr ->
        Trace.emit tr ~ts:now
          (Trace.E_xfer
             { tid = Trace.cur_tid tr; core; op; addr = a; pre = l.state;
               post = l.state; dist = dist_of t sl ~core l; lat = service;
               service; queued = 0; rq = 0; rq_dir = false })
    | None -> ());
    sl.last_result <- t.values.(a);
    service
  end
  else begin
    (* rollback pre-images before any mutation below (the directed-read
       branch above mutates nothing but stats, which the checkpoint
       snapshots wholesale) *)
    journal_line t li;
    journal_word t a;
    if l.waiters <> [] then settle_elided t sl l ~now;
    let is_pfw = is_pfw_probe op ~operand ~operand2 in
    let posted = op = Arch.Store && operand2 = 1 in
    let cost_op = cost_op_of op ~operand ~operand2 in
    let local = is_local_hit l core op in
    (* a favored CAS retry's request is still posted at the line from
       the attempt it just lost: it wins the next grant without
       re-queueing (pending-request arbitration) *)
    let favored = op = Arch.Cas && l.cas_pending = core && not local in
    (* an exclusive-prefetch probe rides the in-flight transfer's data
       return instead of queueing behind its serialized phase *)
    let bypass = local || is_pfw || favored in
    let start_line = if bypass then now else max now l.busy_until in
    let service =
      t.platform.Platform.op_latency cost_op ~requester:core
        (view_of_line sl l)
    in
    (* the interconnect resources this transfer crosses: queue behind
       them (unless bypassing) and hold them for the transfer's service
       below *)
    let topo = t.platform.Platform.topo in
    let n_nodes = topo.Topology.n_nodes in
    let npath =
      if local then 0
      else Cost_model.fill_path topo ~requester:core (view_of_line sl l)
          sl.path
    in
    if t.sharding && npath > 0 then
      guard_resources t sl ~core ~now ~line:li npath;
    (* the resource that delayed this transfer the longest (the argmax
       of the loop below): the one the resource-queued wait is
       attributed to, telemetry- and trace-side *)
    let qres = ref (-1) in
    let start =
      if bypass then now
      else begin
        let s = ref start_line in
        for i = 0 to npath - 1 do
          let b = t.rbusy.(sl.path.(i)) in
          if b > !s then begin
            s := b;
            qres := sl.path.(i)
          end
        done;
        !s
      end
    in
    let queued = start - now in
    let rqueued = start - start_line in
    let pre_state = l.state in
    (* pre-transition: the source/sharer set the request actually hit *)
    let tr_dist =
      match t.trace with
      | Some _ when not local -> dist_of t sl ~core l
      | _ -> Arch.Same_core
    in
    (* telemetry (time-free probes: nothing below reads them back).
       Resource-queued wait is charged to the argmax resource over its
       wait span, gated exactly like [Stats.record]'s [rqueued]; the
       sharer gauge closes the span since the line's last sample under
       the pre-transition population. *)
    (match sl.macc with
    | Some m ->
        if rqueued > 0 && not posted then begin
          let r = !qres in
          let kind, id =
            if r < n_nodes then (Metrics.k_dir_queued, r)
            else (Metrics.k_link_queued, r - n_nodes)
          in
          Metrics.span m ~kind ~id ~t0:start_line ~t1:start ~weight:1
        end;
        let pop =
          Coreset.cardinal l.sharers
          + (match l.owner with Some _ -> 1 | None -> 0)
        in
        if start > t.msince.(li) then begin
          Metrics.span m ~kind:Metrics.k_line_sharers ~id:li
            ~t0:t.msince.(li) ~t1:start ~weight:pop;
          t.msince.(li) <- start
        end
    | None -> ());
    if not local then begin
      let nb =
        start
        + t.platform.Platform.occupancy cost_op ~state:pre_state
            ~latency:service
      in
      (match sl.macc with
      | Some m when nb > l.busy_until ->
          Metrics.span m ~kind:Metrics.k_line_occ ~id:li
            ~t0:(max start l.busy_until) ~t1:nb ~weight:1
      | _ -> ());
      l.busy_until <- max l.busy_until nb;
      for i = 0 to npath - 1 do
        let r = sl.path.(i) in
        let held =
          start + Cost_model.resource_hold topo cost_op ~latency:service r
        in
        let prev = t.rbusy.(r) in
        if held > prev then begin
          (match sl.macc with
          | Some m ->
              let kind, id =
                if r < n_nodes then (Metrics.k_dir_busy, r)
                else (Metrics.k_link_busy, r - n_nodes)
              in
              Metrics.span m ~kind ~id ~t0:(max start prev) ~t1:held ~weight:1
          | None -> ());
          t.rbusy.(r) <- held
        end
      done
    end;
    let invalidated = transition t l core op in
    let observed = t.values.(a) in
    let result = apply_data t a op ~operand ~operand2 in
    let result = if fetch && op = Arch.Cas then observed else result in
    l.pfw_owner <- (if is_pfw then Some core else None);
    (* pending-request arbitration: this access satisfies any request
       [core] had posted; a CAS that just lost (non-locally) posts its
       requester for the next grant.  The first posted loser keeps the
       slot until consumed — its request is already sitting in the
       line's MSHR, so later losers queue behind it. *)
    if l.cas_pending = core then l.cas_pending <- -1;
    if op = Arch.Cas && observed <> operand && not local && l.cas_pending < 0
    then l.cas_pending <- core;
    (* store-buffer writes drain through the inclusive LLC; any other
       write leaves the only valid data in the owner's cache *)
    (match op with
    | Arch.Store -> l.llc_dirty <- posted
    | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap -> l.llc_dirty <- false
    | Arch.Load -> ());
    let latency =
      if posted then min service store_buffer_retire else queued + service
    in
    Stats.record sl.stats op ~latency
      ~queued:(if posted then 0 else queued)
      ~rqueued:(if posted then 0 else rqueued)
      ~local ~invalidated;
    (match t.trace with
    | Some tr ->
        if local then Trace.note_local tr ~cycles:latency
        else
          Trace.emit tr ~ts:now
            (Trace.E_xfer
               { tid = Trace.cur_tid tr; core; op; addr = a; pre = pre_state;
                 post = l.state; dist = tr_dist; lat = latency; service;
                 queued = (if posted then 0 else queued);
                 rq = (if posted then 0 else rqueued);
                 rq_dir = (!qres >= 0 && !qres < n_nodes) })
    | None -> ());
    if l.waiters <> [] then wake_disturbed t sl ~line:li l;
    sl.last_result <- result;
    latency
  end

let access_lat ?operand ?operand2 ?fetch t ~core ~now op a =
  access_lat_in ?operand ?operand2 ?fetch t ~slot:t.slots.(0) ~core ~now op a

let last_result t = t.slots.(0).last_result
let last_result_in (sl : slot) = sl.last_result

let access ?operand ?operand2 ?fetch t ~core ~now (op : Arch.memop) (a : addr)
    : int * int =
  let latency = access_lat ?operand ?operand2 ?fetch t ~core ~now op a in
  (latency, last_result t)

(* Expected latency of [op] issued by [core] right now, without doing
   it — used by ccbench to report best-case protocol latencies. *)
let probe_latency t ~core (op : Arch.memop) (a : addr) : int =
  let l = line t a in
  t.platform.Platform.op_latency op ~requester:core
    (view_of_line t.slots.(0) l)

(* Time resource [r] (a [Cost_model] resource id) is held until
   (tests/metrics). *)
let resource_busy t r = t.rbusy.(r)

(* Drop all interconnect-resource occupancy (benchmark setup, mirrors
   [reset_busy] for lines). *)
let reset_resources t = Array.fill t.rbusy 0 (Array.length t.rbusy) 0

(* Test/bench helper: drive a line into a wanted state via real protocol
   transitions, like the real ccbench does ("brings the cache line in
   the desired state and then accesses it").  [holder] is the core that
   ends up holding the line. *)
let force_state t ~holder ?(second = -1) (st : Arch.cstate) (a : addr) =
  journal_line t (line_id t a);
  let l = line t a in
  (* wipe: back to invalid *)
  l.state <- Arch.Invalid;
  l.owner <- None;
  Coreset.clear l.sharers;
  l.busy_until <- 0;
  l.pfw_owner <- None;
  l.cas_pending <- -1;
  l.llc_dirty <- false;
  reset_resources t;
  let second =
    if second >= 0 then second
    else (holder + 1) mod t.platform.Platform.topo.Topology.n_cores
  in
  (match st with
  | Arch.Invalid -> ()
  | Arch.Exclusive ->
      ignore (access t ~core:holder ~now:0 Arch.Load a)
  | Arch.Modified ->
      ignore (access t ~core:holder ~now:0 Arch.Store a ~operand:t.values.(a))
  | Arch.Shared | Arch.Forward ->
      ignore (access t ~core:holder ~now:0 Arch.Load a);
      ignore (access t ~core:second ~now:0 Arch.Load a);
      l.state <- Arch.Shared
  | Arch.Owned ->
      (* dirty at holder, then loaded by another core (MOESI only) *)
      ignore (access t ~core:holder ~now:0 Arch.Store a ~operand:t.values.(a));
      ignore (access t ~core:second ~now:0 Arch.Load a);
      (match t.platform.Platform.id with
      | Arch.Opteron | Arch.Opteron2 -> ()
      | _ -> invalid_arg "Memory.force_state: Owned requires MOESI");
      l.busy_until <- 0);
  reset_resources t

let reset_busy t a =
  journal_line t (line_id t a);
  (line t a).busy_until <- 0;
  reset_resources t
