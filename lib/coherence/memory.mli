(** The simulated coherent memory: machine-wide cache-line state, the
    protocol transitions applied by loads/stores/atomics, and the
    virtual-time cost of each access.

    Granularity is one word per cache line (the paper's benchmarks pad
    shared words to a line each).  Contention is modeled by line
    occupancy: an exclusive transaction keeps the line's directory
    entry / home-tile slot busy for its duration, so concurrent
    requests serialize — the mechanism behind the paper's contention
    results.

    Lines also carry a wait list of parked spinners ({!try_park}):
    threads whose spin probes have become inert local hits are
    suspended on the line and woken — on the exact poll grid — by the
    next real access, collapsing O(poll iterations) simulation events
    into O(1) without changing any simulated timestamp. *)

open Ssync_platform

type addr = int

type line = {
  mutable state : Arch.cstate;
  mutable owner : int option;  (** core holding Modified/Owned/Exclusive *)
  sharers : Coreset.t;  (** cores holding Shared copies *)
  home : int;  (** home node (directory / home tile / memory) *)
  mutable value : int;
  mutable busy_until : int;  (** virtual time the line is occupied until *)
  mutable pfw_owner : int option;
      (** core holding the exclusive-prefetch reservation: set by a
          prefetchw probe, cleared by any other real access; foreign
          prefetchw probes degrade to directed read snoops meanwhile *)
  mutable waiters : waiter list;  (** parked spinners, FIFO *)
}

(** A parked spinner of the loop [probe; while result = w_while: pause
    w_poll; probe]: elided probes sit on the virtual-time grid
    [w_next + i * w_step]; [w_replay] receives the issue time of the
    first probe that must run for real. *)
and waiter = {
  w_core : int;
  w_op : Arch.memop;
  w_operand : int;
  w_operand2 : int;
  w_while : int;
  w_poll : int;
  w_hit : int;  (** service latency of one inert probe *)
  w_local : bool;
      (** inert probes are local hits (false for foreign-reservation
          directed reads) *)
  w_step : int;  (** [w_hit + w_poll] *)
  mutable w_next : int;
  w_replay : int -> unit;
}

type t

val create : Platform.t -> t
val platform : t -> Platform.t
val stats : t -> Stats.t
val n_lines : t -> int

val alloc : ?home_core:int -> ?value:int -> t -> addr
(** Allocate one line homed at [home_core]'s memory node (first-touch). *)

val alloc_n : ?home_core:int -> ?value:int -> t -> int -> addr
(** Allocate [n] consecutive lines; returns the first address. *)

val access :
  ?operand:int -> ?operand2:int -> ?fetch:bool -> t -> core:int -> now:int ->
  Arch.memop -> addr -> int * int
(** [access t ~core ~now op a] performs [op] at virtual time [now];
    returns [(latency, result)].  For [Cas], [operand]/[operand2] are
    expected/desired (result 1 on success; [fetch] makes the result the
    observed pre-operation value instead); for [Store]/[Swap],
    [operand] is the value written — [Store] with [operand2 = 1] posts
    through the store buffer: the thread pays only the retire cost
    while the transfer (transition, invalidations, occupancy) completes
    in the background; for [Fai], [operand] is the increment — 0 makes
    it an exclusive-prefetch probe that reserves the line
    ({!line.pfw_owner}) or, under a foreign reservation, degrades to a
    directed read snoop; [Fai] with [operand2 = 1] marks a store-class
    single-writer update.  A real access additionally settles and
    revalidates the line's parked waiters. *)

val access_lat :
  ?operand:int -> ?operand2:int -> ?fetch:bool -> t -> core:int -> now:int ->
  Arch.memop -> addr -> int
(** Exactly {!access}, but returns only the latency and leaves the
    result value in {!last_result} — the engine's per-operation hot
    path, which would otherwise allocate one [(latency, result)] tuple
    per simulated memory access. *)

val last_result : t -> int
(** Result value of the most recent {!access_lat} on this memory. *)

val try_park :
  t -> core:int -> now:int -> Arch.memop -> addr ->
  operand:int -> operand2:int -> while_:int -> poll:int ->
  replay:(int -> unit) -> bool
(** Park the calling spinner on the line iff its next probe (issuing
    at [now + poll]) would be inert: a local hit that changes neither
    the protocol state nor the value, returning [while_].  When it
    returns [false] the probe must be performed with {!access}.
    [replay] is called with the first non-elided probe's issue time
    once a real access disturbs the line. *)

val waiter_count : t -> addr -> int
(** Number of spinners currently parked on the line (tests/metrics). *)

val probe_would_elide :
  t -> core:int -> Arch.memop -> addr ->
  operand:int -> operand2:int -> while_:int -> bool
(** Would a probe of the line be inert right now (same predicate as
    {!try_park})?  Used by the engine to decide whether a probe can
    skip per-op fault draws under jitter-only specs: an inert probe is
    exactly one that parking would have elided. *)

val probe_latency : t -> core:int -> Arch.memop -> addr -> int
(** Expected service latency of [op] right now, without performing it. *)

val line : t -> addr -> line
(** Raw line state (tests/debug). *)

val peek : t -> addr -> int
(** Read a value with no cost and no protocol transition. *)

val poke : t -> addr -> int -> unit
(** Write a value with no cost and no protocol transition. *)

val force_state :
  t -> holder:int -> ?second:int -> Arch.cstate -> addr -> unit
(** Drive a line into a state via real protocol transitions, as the
    original ccbench does; [holder] ends up holding the line, [second]
    is the extra sharer used for [Shared]/[Owned]. *)

val reset_busy : t -> addr -> unit
(** Clear the line's occupancy (benchmark setup). *)
