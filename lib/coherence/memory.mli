(** The simulated coherent memory: machine-wide cache-line state, the
    protocol transitions applied by loads/stores/atomics, and the
    virtual-time cost of each access.

    Addresses are word-granular; coherence is line-granular.  A line
    holds up to [Topology.line_words] words: protocol state, occupancy,
    parked waiters, conflict stamps and PDES residency belong to the
    line, values to the words.  {!alloc} pads every word to its own
    line (the paper's benchmarks pad shared words to a line each, so
    all paper-derived workloads are unchanged); {!alloc_packed}
    co-locates consecutive words on shared lines, which makes false
    sharing expressible.

    Contention is modeled by two kinds of occupancy: *line* occupancy
    (an exclusive transaction keeps the line's directory entry /
    home-tile slot busy for its serialized phase, so concurrent
    requests to one line serialize — the paper's contention results)
    and *resource* occupancy (the transfer also holds the home node's
    directory and every interconnect link it crosses, so pipelined
    traffic between the same nodes queues even across different lines —
    the interconnect-bandwidth term of the two-hop message-passing
    latencies).

    Lines also carry a wait list of parked spinners ({!try_park}):
    threads whose spin probes have become inert local hits are
    suspended on the line and woken — on the exact poll grid — by the
    next real access, collapsing O(poll iterations) simulation events
    into O(1) without changing any simulated timestamp. *)

open Ssync_platform

type addr = int

type line = {
  mutable state : Arch.cstate;
  mutable owner : int option;  (** core holding Modified/Owned/Exclusive *)
  sharers : Coreset.t;  (** cores holding Shared copies *)
  mutable home : int;
      (** home node (directory / home tile / memory); mutable only so
          disposed memories can recycle line records in place *)
  mutable busy_until : int;  (** virtual time the line is occupied until *)
  mutable pfw_owner : int option;
      (** core holding the exclusive-prefetch reservation: set by a
          prefetchw probe, cleared by any other real access; foreign
          prefetchw probes degrade to directed read snoops meanwhile *)
  mutable cas_pending : int;
      (** core whose CAS just lost on this line ([-1] = none): its
          request stays posted at the line and wins the next grant
          (hardware pending-request arbitration), so its retry skips
          the queue instead of observing a value one transfer stale *)
  mutable llc_dirty : bool;
      (** the last write drained through the store buffer into the
          inclusive LLC: a same-die fetch of this Modified line is an
          LLC hit, not an owner round trip (Xeon) *)
  mutable waiters : waiter list;  (** parked spinners, FIFO *)
}
(** Sharded-execution bookkeeping (residency, conflict stamps, peek
    generations) is held in side arrays indexed by line — see
    {!residency}, {!stamp}, {!peeked_this_window} — so serial runs pay
    nothing for it in line-record size. *)

(** A parked spinner of the loop [probe; while result = w_while: pause
    w_poll; probe]: elided probes sit on the virtual-time grid
    [w_next + i * w_step]; [w_replay] receives the issue time of the
    first probe that must run for real.  A waiter parks on the line but
    polls one word ([w_addr]); an access to any word of the line
    revalidates it. *)
and waiter = {
  w_core : int;
  w_addr : addr;  (** the word the spin loop polls *)
  w_op : Arch.memop;
  w_operand : int;
  w_operand2 : int;
  w_while : int;
  w_poll : int;
  w_hit : int;  (** service latency of one inert probe *)
  w_local : bool;
      (** inert probes are local hits (false for foreign-reservation
          directed reads) *)
  w_step : int;  (** [w_hit + w_poll] *)
  w_parked : int;
      (** virtual time the spinner parked — the waiter-depth telemetry
          gauge charges the whole span at wake *)
  mutable w_next : int;
  w_replay : int -> unit;
}

type t

val create : Platform.t -> t
val platform : t -> Platform.t

val stats : t -> Stats.t
(** Slot-0 statistics.  After a sharded run the engine calls
    {!merge_slots}, so this reports the same merged totals a serial run
    accumulates directly. *)

val n_lines : t -> int
val n_words : t -> int

val line_words : t -> int
(** Words per cache line on this memory's platform. *)

(** {1 Sharded (PDES) execution support}

    A sharded engine partitions lines across shards by a residency tag
    and gives each shard its own {!slot} — the mutable per-access
    scratch (cost-model view, {!last_result} out-parameter,
    resource-path scratch, running stats) that concurrent shards must
    not share.  Serial execution uses slot 0 throughout.  See [Sim] for
    the execution model. *)

type slot
(** Per-shard scratch + stats; obtained from {!slot}. *)

exception Sharded_alloc
(** Raised by {!alloc} while the memory is {!freeze}-frozen (a sharded
    window is executing): allocation mutates the line table, which
    shards cannot do concurrently, so the engine aborts the sharded
    attempt and re-runs serially. *)

exception Sharded_violation of int list
(** Raised by {!peek}/{!poke} from inside a sharded window when the
    line is resident on another shard, and by any access whose
    interconnect path crosses a foreign shard's resource or uses one
    out of stamp order — neither can be deferred through the engine's
    residency routing, so the attempt aborts.  The payload names the
    implicated line ids (the conflicting transfer's line and the
    previous stamper's): the engine rolls back to its {!checkpoint}
    and replays with those lines promoted to coordinator-mediated
    access.  An empty payload means the conflict is not attributable
    to lines (e.g. a cross-shard peek, which carries no ordering key)
    and the attempt must fall back to the serial path instead. *)

val require_serial : t -> unit
(** Declare that the workload holds cross-thread state the memory model
    cannot see (e.g. a hardware message queue in native OCaml data) —
    the conflict stamps cannot order it, so sharded runs of this memory
    must abort to the serial path.  Called by workload constructors
    (channel setup) before the run starts. *)

val serial_required : t -> bool

val set_exec_sid : int -> unit
(** Declare which shard the calling domain is currently draining
    ([-1] = none).  Domain-local. *)

val exec_sid : unit -> int

val peeked_this_window : t -> addr -> bool
(** Was the line {!peek}ed/{!poke}d during the current window?  The
    coordinator refuses to run deferred accesses against such a line
    (the peek carries no ordering key to conflict-check against). *)

val slot : t -> int -> slot
val n_slots : t -> int

val slot_metrics : slot -> Ssync_metrics.Metrics.t option
(** The slot's metrics accumulator ([None] when metrics are off).  The
    engine charges its own virtual-time gauges — thread run-state
    spans, park/wake counts — into the executing shard's accumulator
    so they ride the same branch/merge/rollback discipline as the
    coherence-level samples. *)

val set_slots : t -> int -> unit
(** Ensure [n] slots exist; slots >= 1 restart with fresh stats. *)

val merge_slots : t -> unit
(** Fold every shard slot's stats into slot 0 and zero the shard
    slots (which stay usable for the next run).  Statistics are sums,
    so the merged totals equal a serial run's regardless of how
    accesses were distributed over shards. *)

val drain_metrics : t -> unit
(** Fold every slot's metrics accumulator into the domain's [Metrics]
    sink (no-op when metrics are off).  The engine calls it only when a
    run completes — aborted sharded attempts never drain, so the sink
    holds samples from the surviving (serial-equivalent) schedule
    only. *)

val freeze : t -> bool -> unit
(** Toggle the window-in-progress flag checked by {!alloc} and the
    debug accessors; freezing bumps the window generation used by
    {!peeked_this_window}. *)

val residency : t -> addr -> int
val set_residency : t -> addr -> int -> unit

val line_id : t -> addr -> int
(** The id of the line holding word [a] — the currency of
    {!Sharded_violation} payloads and {!set_line_residency}. *)

val line_residency : t -> int -> int
(** Residency tag of a line, by line id. *)

val set_line_residency : t -> int -> int -> unit
(** Set a line's residency tag by line id.  The engine promotes
    conflicting lines by tagging them with a sentinel no shard
    matches, so every access defers to the inter-window coordinator
    (serial-within-window execution). *)

val set_solo : t -> bool -> unit
(** Declare that the current window runs on exactly one shard: the
    resource *ownership* guard is skipped (no concurrent shard can
    race it) while the stamp-monotonicity guard still runs, so
    conflict detection is unchanged.  Cleared automatically by
    {!restore}; the engine clears it at each window boundary. *)

(** {2 Checkpoint / rollback (speculative replay)}

    The engine checkpoints once per job at virtual time 0 — after
    workload setup, before any thread is spawned — and, when a sharded
    attempt aborts on a conflict, restores and replays with the
    conflicting lines promoted instead of rebuilding the job serially.
    The checkpoint is an undo journal: the first post-checkpoint touch
    of a line or word records its pre-image (O(dirty set) space and
    restore time); the small interconnect-resource arrays and slot-0
    stats are snapshotted wholesale; lines/words allocated after the
    checkpoint are truncated away on restore. *)

val checkpoint : t -> unit
(** Arm (or re-arm) the rollback point.  Precondition: no parked
    waiters (raises [Invalid_argument] otherwise) — nothing may be
    mid-spin, which also makes event-queue snapshots unnecessary: the
    replay's re-spawn rebuilds all queued work. *)

val restore : t -> unit
(** Roll all observable state back to the checkpoint: line protocol
    state, owners/sharers, busy-untils, pfw/cas-pending/llc flags,
    word values, line and resource conflict stamps, resource
    busy-times and slot-0 stats (shard-slot stats are zeroed).  The
    checkpoint stays armed for further restores.  Raises
    [Invalid_argument] if no checkpoint is armed. *)

val has_checkpoint : t -> bool

val dispose : t -> unit
(** Return the memory's line records and side arrays to a domain-local
    recycling pool and invalidate [t] (subsequent accesses trip bounds
    checks).  Call once no live simulation references the memory; the
    next {!create} on this domain reuses the arrays, sparing the
    per-job setup allocation churn. *)

val assign_residency : t -> shard_of_node:(int -> int) -> from:int -> int
(** Tag lines [\[from, n_lines)] with the shard of their home node;
    returns the new high-water mark (a line count). *)

val stamp : t -> addr -> time:int -> tid:int -> bool
(** Conflict check + stamp: record that [addr]'s line served an access
    with key [(time, tid)].  Returns [false] — without stamping — when
    the line has already served a later-keyed access (or a same-time
    access by a different thread, whose serial order is
    unreconstructable): the sharded schedule has diverged from the
    serial one and the engine must abort and re-run serially.  Stamps
    are line-granular: packed words on one line conflict exactly like
    one shared word. *)

val clear_stamps : t -> unit
(** Reset every line and resource stamp (start of a sharded run); also
    arms the resource ownership/stamp guards for this memory. *)

val access_lat_in :
  ?operand:int -> ?operand2:int -> ?fetch:bool -> t -> slot:slot ->
  core:int -> now:int -> Arch.memop -> addr -> int
(** {!access_lat} against an explicit shard slot. *)

val last_result_in : slot -> int

val try_park_in :
  t -> slot:slot -> core:int -> now:int -> Arch.memop -> addr ->
  operand:int -> operand2:int -> while_:int -> poll:int ->
  replay:(int -> unit) -> bool
(** {!try_park} against an explicit shard slot. *)

val alloc : ?home_core:int -> ?value:int -> t -> addr
(** Allocate one word padded to its own line, homed at [home_core]'s
    memory node (first-touch). *)

val alloc_n : ?home_core:int -> ?value:int -> t -> int -> addr
(** Allocate [n] consecutive padded words (one line each); returns the
    first address. *)

val alloc_packed : ?home_core:int -> ?value:int -> t -> int -> addr
(** Allocate [n] consecutive words packed onto as few lines as the
    platform's line size allows (ceil(n / {!line_words}) lines, all
    homed at [home_core]'s node); returns the first address.  Words of
    one line share coherence state, occupancy and waiters — the
    allocator that makes false sharing happen. *)

val access :
  ?operand:int -> ?operand2:int -> ?fetch:bool -> t -> core:int -> now:int ->
  Arch.memop -> addr -> int * int
(** [access t ~core ~now op a] performs [op] at virtual time [now];
    returns [(latency, result)].  For [Cas], [operand]/[operand2] are
    expected/desired (result 1 on success; [fetch] makes the result the
    observed pre-operation value instead); for [Store]/[Swap],
    [operand] is the value written — [Store] with [operand2 = 1] posts
    through the store buffer: the thread pays only the retire cost
    while the transfer (transition, invalidations, occupancy) completes
    in the background; for [Fai], [operand] is the increment — 0 makes
    it an exclusive-prefetch probe that reserves the line
    ({!line.pfw_owner}) or, under a foreign reservation, degrades to a
    directed read snoop; [Fai] with [operand2 = 1] marks a store-class
    single-writer update.  A real access additionally settles and
    revalidates the line's parked waiters. *)

val access_lat :
  ?operand:int -> ?operand2:int -> ?fetch:bool -> t -> core:int -> now:int ->
  Arch.memop -> addr -> int
(** Exactly {!access}, but returns only the latency and leaves the
    result value in {!last_result} — the engine's per-operation hot
    path, which would otherwise allocate one [(latency, result)] tuple
    per simulated memory access. *)

val last_result : t -> int
(** Result value of the most recent {!access_lat} on this memory. *)

val try_park :
  t -> core:int -> now:int -> Arch.memop -> addr ->
  operand:int -> operand2:int -> while_:int -> poll:int ->
  replay:(int -> unit) -> bool
(** Park the calling spinner on the line iff its next probe (issuing
    at [now + poll]) would be inert: a local hit that changes neither
    the protocol state nor the value, returning [while_].  When it
    returns [false] the probe must be performed with {!access}.
    [replay] is called with the first non-elided probe's issue time
    once a real access disturbs the line. *)

val waiter_count : t -> addr -> int
(** Number of spinners currently parked on the line (tests/metrics). *)

val probe_would_elide :
  t -> core:int -> Arch.memop -> addr ->
  operand:int -> operand2:int -> while_:int -> bool
(** Would a probe of the line be inert right now (same predicate as
    {!try_park})?  Used by the engine to decide whether a probe can
    skip per-op fault draws under jitter-only specs: an inert probe is
    exactly one that parking would have elided. *)

val probe_latency : t -> core:int -> Arch.memop -> addr -> int
(** Expected service latency of [op] right now, without performing it. *)

val line : t -> addr -> line
(** The line holding word [a] (tests/debug).  Two addresses alias the
    same line iff [line t a == line t b]; see also {!same_line}. *)

val same_line : t -> addr -> addr -> bool
(** Do two addresses share a cache line? (tests/metrics) *)

val resource_busy : t -> int -> int
(** Virtual time interconnect resource [r] (a [Cost_model] resource id)
    is held until (tests/metrics). *)

val reset_resources : t -> unit
(** Drop all interconnect-resource occupancy (benchmark setup). *)

val peek : t -> addr -> int
(** Read a value with no cost and no protocol transition. *)

val poke : t -> addr -> int -> unit
(** Write a value with no cost and no protocol transition. *)

val force_state :
  t -> holder:int -> ?second:int -> Arch.cstate -> addr -> unit
(** Drive a line into a state via real protocol transitions, as the
    original ccbench does; [holder] ends up holding the line, [second]
    is the extra sharer used for [Shared]/[Owned].  Also clears all
    interconnect-resource occupancy so isolated latency probes see an
    idle machine. *)

val reset_busy : t -> addr -> unit
(** Clear the line's occupancy and all interconnect-resource occupancy
    (benchmark setup). *)
