(* Aggregate statistics of a simulated memory: operation counts and
   cycle totals, split by operation kind. *)

type counter = { mutable count : int; mutable cycles : int }

let make_counter () = { count = 0; cycles = 0 }

type t = {
  loads : counter;
  stores : counter;
  atomics : counter;
  mutable local_hits : int;
  mutable invalidations : int; (* copies killed by exclusive requests *)
  mutable queued_cycles : int; (* cycles spent waiting on busy lines,
                                  including the resource wait below *)
  mutable link_queued_cycles : int;
      (* the part of [queued_cycles] spent waiting on busy interconnect
         links / home directories rather than the target line itself *)
  mutable elided_probes : int; (* inert spin probes accounted in bulk *)
}

let create () =
  {
    loads = make_counter ();
    stores = make_counter ();
    atomics = make_counter ();
    local_hits = 0;
    invalidations = 0;
    queued_cycles = 0;
    link_queued_cycles = 0;
    elided_probes = 0;
  }

let counter_for t (op : Ssync_platform.Arch.memop) =
  match op with
  | Load -> t.loads
  | Store -> t.stores
  | Cas | Fai | Tas | Swap -> t.atomics

let record t op ~latency ~queued ~rqueued ~local ~invalidated =
  let c = counter_for t op in
  c.count <- c.count + 1;
  c.cycles <- c.cycles + latency;
  if local then t.local_hits <- t.local_hits + 1;
  t.invalidations <- t.invalidations + invalidated;
  t.queued_cycles <- t.queued_cycles + queued;
  t.link_queued_cycles <- t.link_queued_cycles + rqueued

(* Bulk accounting for [count] elided spin probes of [latency] cycles
   each — exactly what [count] calls of [record] with [~queued:0
   ~invalidated:0] would have recorded.  [local] is false only for
   foreign-reservation directed reads. *)
let record_elided t op ~count ~latency ~local =
  let c = counter_for t op in
  c.count <- c.count + count;
  c.cycles <- c.cycles + (count * latency);
  if local then t.local_hits <- t.local_hits + count;
  t.elided_probes <- t.elided_probes + count

(* Accumulate [src] into [dst] field-wise.  Used to aggregate the
   per-simulation statistics of independent jobs (each owning its own
   [Memory.t]) into one per-section total after a parallel fan-out —
   merging values beats sharing a global that domains would race on. *)
let add dst src =
  let add_counter d s =
    d.count <- d.count + s.count;
    d.cycles <- d.cycles + s.cycles
  in
  add_counter dst.loads src.loads;
  add_counter dst.stores src.stores;
  add_counter dst.atomics src.atomics;
  dst.local_hits <- dst.local_hits + src.local_hits;
  dst.invalidations <- dst.invalidations + src.invalidations;
  dst.queued_cycles <- dst.queued_cycles + src.queued_cycles;
  dst.link_queued_cycles <- dst.link_queued_cycles + src.link_queued_cycles;
  dst.elided_probes <- dst.elided_probes + src.elided_probes

(* Zero every field in place — used to reset a shard slot's stats after
   they have been merged into the run total. *)
let reset t =
  let zero c =
    c.count <- 0;
    c.cycles <- 0
  in
  zero t.loads;
  zero t.stores;
  zero t.atomics;
  t.local_hits <- 0;
  t.invalidations <- 0;
  t.queued_cycles <- 0;
  t.link_queued_cycles <- 0;
  t.elided_probes <- 0

(* Snapshot/restore pair used by [Memory]'s speculative-replay
   checkpoint: [copy] captures an independent snapshot, [assign]
   overwrites [dst] with [src]'s fields (leaving [src] intact, so one
   snapshot can be restored repeatedly). *)
let copy t =
  let c = create () in
  add c t;
  c

let assign dst src =
  reset dst;
  add dst src

let total_ops t = t.loads.count + t.stores.count + t.atomics.count
let total_cycles t = t.loads.cycles + t.stores.cycles + t.atomics.cycles

let mean_latency c =
  if c.count = 0 then 0. else float_of_int c.cycles /. float_of_int c.count

let pp ppf t =
  Format.fprintf ppf
    "loads=%d (avg %.1f cy) stores=%d (avg %.1f cy) atomics=%d (avg %.1f cy) \
     local-hits=%d invalidations=%d queued=%d cy (links/dirs %d cy)"
    t.loads.count (mean_latency t.loads) t.stores.count (mean_latency t.stores)
    t.atomics.count (mean_latency t.atomics) t.local_hits t.invalidations
    t.queued_cycles t.link_queued_cycles
