(* A small deterministic PRNG (splitmix64-style) so that workloads are
   reproducible across runs and independent of the global [Random]
   state.

   The 64-bit state lives as two untagged 32-bit halves rather than a
   boxed [int64]: every [int64] below is a function-local temporary the
   compiler keeps unboxed, so drawing a number allocates nothing — this
   was the last per-operation allocation in the ssht/kvs benchmark hot
   loops.  The generated sequence is bit-identical to the boxed
   implementation it replaces, so no workload schedule moves. *)

type t = { mutable hi : int; mutable lo : int } (* state bits 63–32 / 31–0 *)

let golden = 0x9E3779B97F4A7C15L
let mask32 = 0xFFFFFFFFL

let create ~seed =
  let s = Int64.of_int ((seed * 2654435761) lor 1) in
  {
    hi = Int64.to_int (Int64.shift_right_logical s 32);
    lo = Int64.to_int (Int64.logand s mask32);
  }

(* Advance the state and mix out the next raw 64-bit draw.  Inlined into
   each entry point so the state round-trips through unboxed locals. *)
let[@inline always] next_int64 t =
  let s =
    Int64.add
      (Int64.logor
         (Int64.shift_left (Int64.of_int t.hi) 32)
         (Int64.of_int t.lo))
      golden
  in
  t.hi <- Int64.to_int (Int64.shift_right_logical s 32);
  t.lo <- Int64.to_int (Int64.logand s mask32);
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next_int64 t) Int64.max_int) (Int64.of_int bound))

(* Uniform float in [0, 1). *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L
