(* libssmp: message passing over cache coherence (paper section 4.1).

   A channel is one-directional and single-writer/single-reader.  Its
   buffer is a single cache line holding flag+payload in one word
   (0 = empty, v+1 = message v), so a message transmission is completed
   with single cache-line transfers: the receiver's read misses once per
   message and the sender's write re-acquires the line once — a one-way
   message costs roughly two line transfers and a round trip four
   (Figure 9).

   On the Tilera the channel uses the hardware mesh network instead
   (iMesh): messages bypass the coherence protocol and arrive with a
   fixed small latency, modeled by the platform's [hw_mp_latency].

   The [prefetchw] variant implements section 5.3's optimization on the
   Opteron: probing with an exclusive prefetch keeps the buffer line
   Modified at the prober, so the counterpart's store pays a directed
   transfer instead of the shared-store broadcast (up to 2.5x faster). *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
module Trace = Ssync_trace.Trace

type impl =
  | Coherence of { buf : Memory.addr; prefetchw : bool }
  | Hardware of {
      queue : (int * int) Queue.t; (* (deliver_at, payload) *)
      one_way : int; (* wire latency across the mesh *)
      recv_parker : Sim.parker; (* receiver waiting on an empty queue *)
      send_parker : Sim.parker; (* sender waiting on a full queue *)
    }

type t = {
  sender_core : int;
  receiver_core : int;
  impl : impl;
  sw_pause : int;
      (* per-message software overhead (flag checks, fences, buffer
         management), calibrated per platform against Figure 9 *)
  trace : (Trace.t * int) option;
      (* trace sink + this channel's registered id, cached at creation *)
}

(* The T2's fences/atomics make its libssmp path comparatively heavy
   (Figure 9: 181 cycles one-way for two contexts of one core whose raw
   line transfer costs ~24).  The overhead is distance-classed: two
   contexts of one physical core share the L1 and the pipeline's store
   path, so the flag checks and fences around each message resolve
   faster than when the endpoints cross the crossbar. *)
let platform_sw_pause (p : Platform.t) ~sender_core ~receiver_core =
  match p.Platform.id with
  | Arch.Niagara ->
      if Topology.same_node p.Platform.topo sender_core receiver_core then 75
      else 85
  | Arch.Tilera -> 20
  | Arch.Opteron | Arch.Xeon | Arch.Opteron2 | Arch.Xeon2 -> 0

let create ?(prefetchw = false) ?(use_hw = true) mem (platform : Platform.t)
    ~sender_core ~receiver_core : t =
  Topology.check platform.Platform.topo sender_core;
  Topology.check platform.Platform.topo receiver_core;
  let impl =
    match platform.Platform.hw_mp_latency with
    | Some lat when use_hw ->
        (* the NIC queue lives in native OCaml state the coherence
           stamps cannot see: sharded runs of this memory must abort *)
        Memory.require_serial mem;
        Hardware
          {
            queue = Queue.create ();
            one_way = lat sender_core receiver_core;
            recv_parker = Sim.make_parker ();
            send_parker = Sim.make_parker ();
          }
    | Some _ | None ->
        (* the buffer lives on the receiver's node *)
        Coherence { buf = Memory.alloc ~home_core:receiver_core mem; prefetchw }
  in
  let sw_pause =
    match impl with
    | Hardware _ -> 0
    | Coherence _ -> platform_sw_pause platform ~sender_core ~receiver_core
  in
  let trace =
    match Trace.current () with
    | None -> None
    | Some tr ->
        let kind =
          match impl with
          | Hardware _ -> "hw"
          | Coherence { prefetchw = true; _ } -> "pfw"
          | Coherence _ -> "coh"
        in
        let id =
          Trace.new_chan tr
            (Printf.sprintf "%s %d->%d" kind sender_core receiver_core)
        in
        Some (tr, id)
  in
  { sender_core; receiver_core; impl; sw_pause; trace }

(* Message-boundary instants on the acting thread's track; the line
   transfers they ride are already traced by the memory model. *)
let trace_send t =
  match t.trace with
  | Some (tr, id) ->
      Trace.emit tr ~ts:(Sim.now ())
        (Trace.E_send { tid = Sim.self_tid (); chan = id })
  | None -> ()

let trace_recv t =
  match t.trace with
  | Some (tr, id) ->
      Trace.emit tr ~ts:(Sim.now ())
        (Trace.E_recv { tid = Sim.self_tid (); chan = id })
  | None -> ()

(* Blocking send of [payload] (>= 0).  Must be called from the sending
   simulated thread. *)
let send t payload =
  if payload < 0 then invalid_arg "Channel.send: payload must be >= 0";
  (match t.impl with
  | Hardware h ->
      (* the NIC queue is small: block while the receiver lags *)
      let rec wait_space () =
        if Queue.length h.queue >= 4 then begin
          Sim.park h.send_parker ~poll:20;
          wait_space ()
        end
      in
      wait_space ();
      Sim.pause 20; (* feed the message into the mesh NIC *)
      Queue.push (Sim.now () + h.one_way, payload) h.queue;
      Sim.unpark h.recv_parker
  | Coherence { buf; prefetchw } ->
      Sim.pause t.sw_pause;
      if prefetchw then begin
        (* single atomic: probe and write in one exclusive transaction,
           so the buffer line is transferred exactly once per message;
           retries are back-to-back, like libssmp's tight CAS loop *)
        if not (Sim.cas buf ~expected:0 ~desired:(payload + 1)) then
          Sim.spin_cas buf ~expected:0 ~desired:(payload + 1) ~poll:0
      end
      else begin
        (* tight-spin until the receiver drains the previous message;
           the re-reads are local hits while we stay a sharer *)
        let rec wait_empty v =
          if v <> 0 then wait_empty (Sim.spin_load buf ~while_:v ~poll:0)
        in
        wait_empty (Sim.load buf);
        (* the flag store retires into the store buffer; the line
           transfer to the receiver overlaps with the sender's next
           message preparation (no fence before it) *)
        Sim.store_posted buf (payload + 1)
      end);
  trace_send t

(* Non-blocking receive. *)
let try_recv t =
  match t.impl with
  | Hardware h ->
      if Queue.is_empty h.queue then None
      else begin
        let deliver_at, payload = Queue.peek h.queue in
        if deliver_at <= Sim.now () then begin
          ignore (Queue.pop h.queue);
          Sim.pause 20; (* drain the message from the NIC *)
          Sim.unpark h.send_parker; (* the NIC queue has space again *)
          trace_recv t;
          Some payload
        end
        else None
      end
  | Coherence { buf; prefetchw } ->
      let consumed =
        if prefetchw then begin
          (* exclusive-prefetch probe: reads the flag and keeps the
             line reserved Modified here, so the sender's store pays a
             directed transfer; the clear retires through the store
             buffer *)
          let v = Sim.faa buf 0 in
          if v = 0 then None
          else begin
            Sim.store_posted buf 0;
            Some (v - 1)
          end
        end
        else begin
          let v = Sim.load buf in
          if v = 0 then None
          else begin
            Sim.store_posted buf 0;
            Some (v - 1)
          end
        end
      in
      (match consumed with
      | Some _ ->
          Sim.pause t.sw_pause;
          trace_recv t
      | None -> ());
      consumed

(* Blocking receive. *)
let recv t =
  match t.impl with
  | Hardware h ->
      (* poll the NIC every 10 cycles; event-driven, the empty-queue
         wait parks (the sender's push unparks us on the same 10-cycle
         grid) and the in-flight wait jumps straight to the grid point
         at/after delivery *)
      let rec loop () =
        match try_recv t with
        | Some v -> v
        | None ->
            if Queue.is_empty h.queue then Sim.park h.recv_parker ~poll:10
            else if Sim.event_driven_waits () then begin
              let deliver_at, _ = Queue.peek h.queue in
              let gap = deliver_at - Sim.now () in
              Sim.pause (10 * ((gap + 9) / 10))
            end
            else Sim.pause 10;
            loop ()
      in
      loop ()
  | Coherence { buf; prefetchw } ->
      (* tight-spin on the buffer, like libssmp: re-reads are local hits
         while the line stays cached, and the first probe after the
         sender's store pays the line transfer *)
      let v =
        if prefetchw then begin
          (* exclusive-prefetch probes: each reserves the line Modified
             here, so the sender's CAS pays a single directed transfer
             instead of a broadcast (section 5.3); the clear retires
             through the store buffer, overlapped with the next probe *)
          let v0 = Sim.faa buf 0 in
          let v =
            if v0 <> 0 then v0 else Sim.spin_faa0 buf ~while_:0 ~poll:0
          in
          Sim.store_posted buf 0;
          v
        end
        else begin
          let v0 = Sim.load buf in
          let v =
            if v0 <> 0 then v0 else Sim.spin_load buf ~while_:0 ~poll:0
          in
          Sim.store_posted buf 0;
          v
        end
      in
      Sim.pause t.sw_pause;
      trace_recv t;
      v - 1
