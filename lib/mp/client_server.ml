(* Native client-server messaging: one server, N clients, one channel
   pair per client; the server scans its receive slots round-robin
   (identical structure to the simulated Client_server). *)

type ('req, 'resp) t = {
  to_server : 'req Channel.t array;
  to_client : 'resp Channel.t array;
  mutable scan_from : int;
}

let create ~clients : ('req, 'resp) t =
  if clients <= 0 then invalid_arg "Client_server.create: no clients";
  {
    to_server = Array.init clients (fun _ -> Channel.create ());
    to_client = Array.init clients (fun _ -> Channel.create ());
    scan_from = 0;
  }

let n_clients t = Array.length t.to_server

let try_recv_any t =
  let n = n_clients t in
  let rec scan k =
    if k = n then None
    else
      let i = (t.scan_from + k) mod n in
      match Channel.try_recv t.to_server.(i) with
      | Some v ->
          t.scan_from <- (i + 1) mod n;
          Some (i, v)
      | None -> scan (k + 1)
  in
  scan 0

let rec recv_any t =
  match try_recv_any t with
  | Some r -> r
  | None ->
      Domain.cpu_relax ();
      recv_any t

let respond t i v = Channel.send t.to_client.(i) v
let send_request t ~client v = Channel.send t.to_server.(client) v

let request t ~client v =
  Channel.send t.to_server.(client) v;
  Channel.recv t.to_client.(client)
