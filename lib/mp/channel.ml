(* Native libssmp: single-slot single-producer/single-consumer channels,
   mirroring the cache-line-buffer design of the simulated version — one
   slot whose full/empty flag is the Option constructor, so a message is
   transmitted with a single atomic publication. *)

type 'a t = { slot : 'a option Atomic.t }

let create () = { slot = Atomic.make None }

(* Spin-retry loops live at top level so the hot paths allocate
   nothing beyond the message itself — a per-call [let rec] closure
   would box its environment on every send/recv. *)
let rec wait_empty slot =
  if Atomic.get slot <> None then begin
    Domain.cpu_relax ();
    wait_empty slot
  end

(* Blocking send; spins while the previous message is unconsumed.  Only
   one producer may use a channel. *)
let send t v =
  let m = Some v in
  wait_empty t.slot;
  Atomic.set t.slot m

(* Non-blocking receive.  Only one consumer may use a channel. *)
let try_recv t =
  match Atomic.get t.slot with
  | None -> None
  | Some _ as m ->
      Atomic.set t.slot None;
      (match m with Some v -> Some v | None -> assert false)

(* Blocking receive. *)
let rec recv t =
  match try_recv t with
  | Some v -> v
  | None ->
      Domain.cpu_relax ();
      recv t
