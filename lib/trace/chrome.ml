(* Chrome/Perfetto trace-event JSON exporter.

   One exported process per job (pid = 1 + submission index, named
   after the job's label) and one track per simulated thread (tid),
   so a figure's whole fan-out opens as side-by-side timelines in
   ui.perfetto.dev or chrome://tracing.

   Mapping:
   - lock wait      -> "B"/"E" slice "wait NAME"
   - lock hold      -> "B"/"E" slice "hold NAME" (args: wait, handoff
                       distance class)
   - parked spinner -> "B"/"E" slice "parked"
   - coherence
     transfer       -> "X" complete event, dur = cycles charged to the
                       thread (args: addr, pre/post state, distance,
                       service, queued)
   - fault / msg
     send / recv    -> "i" instant events
   - spawn,
     process names  -> "M" metadata events

   Timestamps are virtual cycles written into the [ts]/[dur]
   microsecond fields (the viewer's "us" then reads as cycles); they
   are emitted in per-track monotone order, and contain nothing
   host-dependent, so the same seeds produce byte-identical files at
   any [--jobs] count.

   The ring buffer may have dropped a slice's opening event; the
   per-track slice stack below drops the matching close instead of
   emitting an unbalanced "E", so the output always parses. *)

open Ssync_platform
module Metrics = Ssync_metrics.Metrics

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Track id for events issued outside any simulated thread (memory
   setup, ccbench drivers). *)
let setup_track = 9999

(* Dedicated tracks: sampled metric counter tracks and the PDES
   speculation-lifecycle timeline (both engine-global, not per
   thread). *)
let counter_track = 9998
let spec_track = 9997
let track tid = if tid < 0 then setup_track else tid

(* What a track currently has open, innermost first. *)
type slice = Wait of int | Hold of int | Parked

let obj b ~name ~ph ~ts ~pid ~tid rest =
  Buffer.add_string b ",\n{\"name\":\"";
  add_escaped b name;
  Buffer.add_string b
    (Printf.sprintf "\",\"ph\":\"%s\",\"ts\":%d,\"pid\":%d,\"tid\":%d%s}" ph ts
       pid tid rest)

let meta b ~name ~pid ~tid ~value =
  Buffer.add_string b
    (Printf.sprintf ",\n{\"name\":\"%s\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"" name pid tid);
  add_escaped b value;
  Buffer.add_string b "\"}}"

let dist_arg d = Arch.distance_name d

let export_job b ~pid ~label ?metrics (tr : Trace.t) =
  meta b ~name:"process_name" ~pid ~tid:0 ~value:label;
  Buffer.add_string b
    (Printf.sprintf
       ",\n{\"name\":\"process_sort_index\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":0,\"args\":{\"sort_index\":%d}}"
       pid pid);
  (* thread tracks: one per E_thread (re-spawns across epochs reuse the
     tid's track), plus the setup track if anything ran outside a
     simulated thread, plus the speculation / counter tracks when used *)
  let named = Hashtbl.create 32 in
  let uses_setup = ref false in
  let uses_spec = ref false in
  Trace.iter tr (fun e ->
      match e.Trace.ev with
      | Trace.E_thread { tid; core } ->
          if not (Hashtbl.mem named tid) then begin
            Hashtbl.replace named tid ();
            meta b ~name:"thread_name" ~pid ~tid
              ~value:(Printf.sprintf "tid %d @ core %d" tid core)
          end
      | Trace.E_xfer { tid; _ } -> if tid < 0 then uses_setup := true
      | Trace.E_window _ | Trace.E_window_done _ | Trace.E_spec_abort _
      | Trace.E_ckpt | Trace.E_restore | Trace.E_promote _ | Trace.E_replay _
      | Trace.E_escalate ->
          uses_spec := true
      | _ -> ());
  if !uses_setup then
    meta b ~name:"thread_name" ~pid ~tid:setup_track ~value:"(setup)";
  if !uses_spec then
    meta b ~name:"thread_name" ~pid ~tid:spec_track ~value:"(speculation)";
  if metrics <> None then
    meta b ~name:"thread_name" ~pid ~tid:counter_track ~value:"(metrics)";
  let stacks : (int, slice list ref) Hashtbl.t = Hashtbl.create 32 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks tid s;
        s
  in
  let close b ~ts ~tid name = obj b ~name ~ph:"E" ~ts ~pid ~tid "" in
  (* The speculation track clamps its timestamps to a running maximum:
     a window opens at the minimum pending event time, which can sit
     before the previous window's closing timestamp, and the viewer
     (and test_chrome_schema) require per-track monotonicity. *)
  let spec_ts = ref 0 in
  let sts ts =
    if ts > !spec_ts then spec_ts := ts;
    !spec_ts
  in
  Trace.iter tr (fun { Trace.ts; ev } ->
      match ev with
      | Trace.E_thread { tid; _ } ->
          obj b ~name:"spawn" ~ph:"i" ~ts ~pid ~tid:(track tid) ",\"s\":\"t\""
      | Trace.E_wait { tid; lock } ->
          let s = stack tid in
          s := Wait lock :: !s;
          obj b
            ~name:("wait " ^ Trace.lock_name tr lock)
            ~ph:"B" ~ts ~pid ~tid:(track tid) ""
      | Trace.E_acq { tid; lock; wait; dist } ->
          let s = stack tid in
          (match !s with
          | Wait l :: rest when l = lock ->
              s := rest;
              close b ~ts ~tid:(track tid) ("wait " ^ Trace.lock_name tr lock)
          | _ -> ());
          s := Hold lock :: !s;
          let args =
            match dist with
            | None -> Printf.sprintf ",\"args\":{\"wait\":%d}" wait
            | Some d ->
                Printf.sprintf ",\"args\":{\"wait\":%d,\"handoff\":\"%s\"}"
                  wait (dist_arg d)
          in
          obj b
            ~name:("hold " ^ Trace.lock_name tr lock)
            ~ph:"B" ~ts ~pid ~tid:(track tid) args
      | Trace.E_rel { tid; lock; held } ->
          let s = stack tid in
          (match !s with
          | Hold l :: rest when l = lock ->
              s := rest;
              close b ~ts ~tid:(track tid) ("hold " ^ Trace.lock_name tr lock)
          | _ ->
              obj b
                ~name:("release " ^ Trace.lock_name tr lock)
                ~ph:"i" ~ts ~pid ~tid:(track tid)
                (Printf.sprintf ",\"s\":\"t\",\"args\":{\"held\":%d}" held))
      | Trace.E_xfer
          { tid; core; op; addr; pre; post; dist; lat; service; queued; rq; _ }
        ->
          let name =
            Printf.sprintf "%s %c>%c %s" (Arch.memop_name op)
              (Arch.cstate_letter pre) (Arch.cstate_letter post) (dist_arg dist)
          in
          obj b ~name ~ph:"X" ~ts ~pid ~tid:(track tid)
            (Printf.sprintf
               ",\"dur\":%d,\"args\":{\"addr\":%d,\"core\":%d,\"service\":%d,\"queued\":%d,\"rqueued\":%d}"
               lat addr core service queued rq)
      | Trace.E_park { tid; addr } ->
          let s = stack tid in
          s := Parked :: !s;
          obj b ~name:"parked" ~ph:"B" ~ts ~pid ~tid:(track tid)
            (Printf.sprintf ",\"args\":{\"addr\":%d}" addr)
      | Trace.E_wake { tid; _ } ->
          let s = stack tid in
          (match !s with
          | Parked :: rest ->
              s := rest;
              close b ~ts ~tid:(track tid) "parked"
          | _ ->
              obj b ~name:"wake" ~ph:"i" ~ts ~pid ~tid:(track tid)
                ",\"s\":\"t\"")
      | Trace.E_fault { tid; kind; cycles } ->
          let name =
            match kind with
            | Trace.Jitter -> "jitter"
            | Trace.Preempt -> "preempt"
            | Trace.Crash -> "crash"
          in
          obj b ~name ~ph:"i" ~ts ~pid ~tid:(track tid)
            (Printf.sprintf ",\"s\":\"t\",\"args\":{\"cycles\":%d}" cycles)
      | Trace.E_send { tid; chan } ->
          obj b ~name:"send" ~ph:"i" ~ts ~pid ~tid:(track tid)
            (Printf.sprintf ",\"s\":\"t\",\"args\":{\"chan\":\"%s\"}"
               (Trace.chan_name tr chan))
      | Trace.E_recv { tid; chan } ->
          obj b ~name:"recv" ~ph:"i" ~ts ~pid ~tid:(track tid)
            (Printf.sprintf ",\"s\":\"t\",\"args\":{\"chan\":\"%s\"}"
               (Trace.chan_name tr chan))
      | Trace.E_window { upto; shards; solo } ->
          obj b ~name:"window" ~ph:"B" ~ts:(sts ts) ~pid ~tid:spec_track
            (Printf.sprintf ",\"args\":{\"upto\":%d,\"shards\":%d,\"solo\":%b}"
               upto shards solo)
      | Trace.E_window_done { aborted } ->
          ignore aborted;
          close b ~ts:(sts ts) ~tid:spec_track "window"
      | Trace.E_spec_abort { line; hard } ->
          obj b ~name:"abort" ~ph:"i" ~ts:(sts ts) ~pid ~tid:spec_track
            (Printf.sprintf ",\"s\":\"t\",\"args\":{\"line\":%d,\"hard\":%b}"
               line hard)
      | Trace.E_ckpt ->
          obj b ~name:"checkpoint" ~ph:"i" ~ts:(sts ts) ~pid ~tid:spec_track
            ",\"s\":\"t\""
      | Trace.E_restore ->
          obj b ~name:"restore" ~ph:"i" ~ts:(sts ts) ~pid ~tid:spec_track
            ",\"s\":\"t\""
      | Trace.E_promote { line } ->
          obj b ~name:"promote" ~ph:"i" ~ts:(sts ts) ~pid ~tid:spec_track
            (Printf.sprintf ",\"s\":\"t\",\"args\":{\"line\":%d}" line)
      | Trace.E_replay { attempt } ->
          obj b ~name:"replay" ~ph:"i" ~ts:(sts ts) ~pid ~tid:spec_track
            (Printf.sprintf ",\"s\":\"t\",\"args\":{\"attempt\":%d}" attempt)
      | Trace.E_escalate ->
          obj b ~name:"escalate" ~ph:"i" ~ts:(sts ts) ~pid ~tid:spec_track
            ",\"s\":\"t\"");
  (* Sampled metric timelines as Perfetto counter tracks: one counter
     per kind (ids aggregated), bucket-major so the shared tid's
     timestamps stay monotone; a zero sample after each run of activity
     stops the viewer's step function from holding the last value
     forever.  Strategy-dependent kinds are skipped, like the dumps. *)
  match metrics with
  | None -> ()
  | Some m ->
      let w = Metrics.grid m in
      let samples = ref [] in
      Metrics.iter_sorted m (fun ~kind ~id:_ ~bucket v ->
          if Metrics.deterministic kind then
            samples := (kind, bucket, v) :: !samples);
      (* aggregate ids: iter_sorted visits (kind, id, bucket) sorted, so
         equal (kind, bucket) pairs are not adjacent; fold via a table *)
      let agg = Hashtbl.create 256 in
      List.iter
        (fun (k, bk, v) ->
          let key = (k, bk) in
          match Hashtbl.find_opt agg key with
          | Some r -> r := !r + v
          | None -> Hashtbl.add agg key (ref v))
        !samples;
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) agg [] in
      (* zero terminators where the next bucket of a kind is absent *)
      let zeros =
        List.filter_map
          (fun (k, bk) ->
            if Hashtbl.mem agg (k, bk + 1) then None else Some (k, bk + 1))
          keys
      in
      List.iter (fun key -> Hashtbl.replace agg key (ref 0)) zeros;
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) agg [] in
      let keys = List.sort (fun (k1, b1) (k2, b2) -> compare (b1, k1) (b2, k2)) keys in
      List.iter
        (fun ((k, bk) as key) ->
          obj b ~name:(Metrics.kind_name k) ~ph:"C" ~ts:(bk * w) ~pid
            ~tid:counter_track
            (Printf.sprintf ",\"args\":{\"value\":%d}" !(Hashtbl.find agg key)))
        keys

(* [export_buffer b jobs] writes the merged trace of [(label, trace)]
   jobs, pid-ordered by their position in the list (= pool submission
   order).  [metrics] associates job labels with sampled metric
   accumulators to render as counter tracks. *)
let export_buffer ?(metrics : (string * Metrics.t) list = []) b
    (jobs : (string * Trace.t) list) =
  Buffer.add_string b "{\"traceEvents\":[";
  (* dummy first element so every real event can emit ",\n" uniformly *)
  Buffer.add_string b
    "{\"name\":\"trace\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"exporter\":\"ssync\",\"ts_unit\":\"cycles\"}}";
  List.iteri
    (fun i (label, tr) ->
      export_job b ~pid:(i + 1) ~label ?metrics:(List.assoc_opt label metrics)
        tr)
    jobs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n"

let export_string ?metrics jobs =
  let b = Buffer.create 65536 in
  export_buffer ?metrics b jobs;
  Buffer.contents b

let export_file ?metrics path jobs =
  let oc = open_out path in
  let b = Buffer.create 65536 in
  export_buffer ?metrics b jobs;
  Buffer.output_buffer oc b;
  close_out oc
