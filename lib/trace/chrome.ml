(* Chrome/Perfetto trace-event JSON exporter.

   One exported process per job (pid = 1 + submission index, named
   after the job's label) and one track per simulated thread (tid),
   so a figure's whole fan-out opens as side-by-side timelines in
   ui.perfetto.dev or chrome://tracing.

   Mapping:
   - lock wait      -> "B"/"E" slice "wait NAME"
   - lock hold      -> "B"/"E" slice "hold NAME" (args: wait, handoff
                       distance class)
   - parked spinner -> "B"/"E" slice "parked"
   - coherence
     transfer       -> "X" complete event, dur = cycles charged to the
                       thread (args: addr, pre/post state, distance,
                       service, queued)
   - fault / msg
     send / recv    -> "i" instant events
   - spawn,
     process names  -> "M" metadata events

   Timestamps are virtual cycles written into the [ts]/[dur]
   microsecond fields (the viewer's "us" then reads as cycles); they
   are emitted in per-track monotone order, and contain nothing
   host-dependent, so the same seeds produce byte-identical files at
   any [--jobs] count.

   The ring buffer may have dropped a slice's opening event; the
   per-track slice stack below drops the matching close instead of
   emitting an unbalanced "E", so the output always parses. *)

open Ssync_platform

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Track id for events issued outside any simulated thread (memory
   setup, ccbench drivers). *)
let setup_track = 9999
let track tid = if tid < 0 then setup_track else tid

(* What a track currently has open, innermost first. *)
type slice = Wait of int | Hold of int | Parked

let obj b ~name ~ph ~ts ~pid ~tid rest =
  Buffer.add_string b ",\n{\"name\":\"";
  add_escaped b name;
  Buffer.add_string b
    (Printf.sprintf "\",\"ph\":\"%s\",\"ts\":%d,\"pid\":%d,\"tid\":%d%s}" ph ts
       pid tid rest)

let meta b ~name ~pid ~tid ~value =
  Buffer.add_string b
    (Printf.sprintf ",\n{\"name\":\"%s\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"" name pid tid);
  add_escaped b value;
  Buffer.add_string b "\"}}"

let dist_arg d = Arch.distance_name d

let export_job b ~pid ~label (tr : Trace.t) =
  meta b ~name:"process_name" ~pid ~tid:0 ~value:label;
  Buffer.add_string b
    (Printf.sprintf
       ",\n{\"name\":\"process_sort_index\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":0,\"args\":{\"sort_index\":%d}}"
       pid pid);
  (* thread tracks: one per E_thread (re-spawns across epochs reuse the
     tid's track), plus the setup track if anything ran outside a
     simulated thread *)
  let named = Hashtbl.create 32 in
  let uses_setup = ref false in
  Trace.iter tr (fun e ->
      match e.Trace.ev with
      | Trace.E_thread { tid; core } ->
          if not (Hashtbl.mem named tid) then begin
            Hashtbl.replace named tid ();
            meta b ~name:"thread_name" ~pid ~tid
              ~value:(Printf.sprintf "tid %d @ core %d" tid core)
          end
      | Trace.E_xfer { tid; _ } -> if tid < 0 then uses_setup := true
      | _ -> ());
  if !uses_setup then
    meta b ~name:"thread_name" ~pid ~tid:setup_track ~value:"(setup)";
  let stacks : (int, slice list ref) Hashtbl.t = Hashtbl.create 32 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks tid s;
        s
  in
  let close b ~ts ~tid name = obj b ~name ~ph:"E" ~ts ~pid ~tid "" in
  Trace.iter tr (fun { Trace.ts; ev } ->
      match ev with
      | Trace.E_thread { tid; _ } ->
          obj b ~name:"spawn" ~ph:"i" ~ts ~pid ~tid:(track tid) ",\"s\":\"t\""
      | Trace.E_wait { tid; lock } ->
          let s = stack tid in
          s := Wait lock :: !s;
          obj b
            ~name:("wait " ^ Trace.lock_name tr lock)
            ~ph:"B" ~ts ~pid ~tid:(track tid) ""
      | Trace.E_acq { tid; lock; wait; dist } ->
          let s = stack tid in
          (match !s with
          | Wait l :: rest when l = lock ->
              s := rest;
              close b ~ts ~tid:(track tid) ("wait " ^ Trace.lock_name tr lock)
          | _ -> ());
          s := Hold lock :: !s;
          let args =
            match dist with
            | None -> Printf.sprintf ",\"args\":{\"wait\":%d}" wait
            | Some d ->
                Printf.sprintf ",\"args\":{\"wait\":%d,\"handoff\":\"%s\"}"
                  wait (dist_arg d)
          in
          obj b
            ~name:("hold " ^ Trace.lock_name tr lock)
            ~ph:"B" ~ts ~pid ~tid:(track tid) args
      | Trace.E_rel { tid; lock; held } ->
          let s = stack tid in
          (match !s with
          | Hold l :: rest when l = lock ->
              s := rest;
              close b ~ts ~tid:(track tid) ("hold " ^ Trace.lock_name tr lock)
          | _ ->
              obj b
                ~name:("release " ^ Trace.lock_name tr lock)
                ~ph:"i" ~ts ~pid ~tid:(track tid)
                (Printf.sprintf ",\"s\":\"t\",\"args\":{\"held\":%d}" held))
      | Trace.E_xfer { tid; core; op; addr; pre; post; dist; lat; service; queued }
        ->
          let name =
            Printf.sprintf "%s %c>%c %s" (Arch.memop_name op)
              (Arch.cstate_letter pre) (Arch.cstate_letter post) (dist_arg dist)
          in
          obj b ~name ~ph:"X" ~ts ~pid ~tid:(track tid)
            (Printf.sprintf
               ",\"dur\":%d,\"args\":{\"addr\":%d,\"core\":%d,\"service\":%d,\"queued\":%d}"
               lat addr core service queued)
      | Trace.E_park { tid; addr } ->
          let s = stack tid in
          s := Parked :: !s;
          obj b ~name:"parked" ~ph:"B" ~ts ~pid ~tid:(track tid)
            (Printf.sprintf ",\"args\":{\"addr\":%d}" addr)
      | Trace.E_wake { tid; _ } ->
          let s = stack tid in
          (match !s with
          | Parked :: rest ->
              s := rest;
              close b ~ts ~tid:(track tid) "parked"
          | _ ->
              obj b ~name:"wake" ~ph:"i" ~ts ~pid ~tid:(track tid)
                ",\"s\":\"t\"")
      | Trace.E_fault { tid; kind; cycles } ->
          let name =
            match kind with
            | Trace.Jitter -> "jitter"
            | Trace.Preempt -> "preempt"
            | Trace.Crash -> "crash"
          in
          obj b ~name ~ph:"i" ~ts ~pid ~tid:(track tid)
            (Printf.sprintf ",\"s\":\"t\",\"args\":{\"cycles\":%d}" cycles)
      | Trace.E_send { tid; chan } ->
          obj b ~name:"send" ~ph:"i" ~ts ~pid ~tid:(track tid)
            (Printf.sprintf ",\"s\":\"t\",\"args\":{\"chan\":\"%s\"}"
               (Trace.chan_name tr chan))
      | Trace.E_recv { tid; chan } ->
          obj b ~name:"recv" ~ph:"i" ~ts ~pid ~tid:(track tid)
            (Printf.sprintf ",\"s\":\"t\",\"args\":{\"chan\":\"%s\"}"
               (Trace.chan_name tr chan)))

(* [export_buffer b jobs] writes the merged trace of [(label, trace)]
   jobs, pid-ordered by their position in the list (= pool submission
   order). *)
let export_buffer b (jobs : (string * Trace.t) list) =
  Buffer.add_string b "{\"traceEvents\":[";
  (* dummy first element so every real event can emit ",\n" uniformly *)
  Buffer.add_string b
    "{\"name\":\"trace\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"exporter\":\"ssync\",\"ts_unit\":\"cycles\"}}";
  List.iteri
    (fun i (label, tr) -> export_job b ~pid:(i + 1) ~label tr)
    jobs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n"

let export_string jobs =
  let b = Buffer.create 65536 in
  export_buffer b jobs;
  Buffer.contents b

let export_file path jobs =
  let oc = open_out path in
  let b = Buffer.create 65536 in
  export_buffer b jobs;
  Buffer.output_buffer oc b;
  close_out oc
