(** Structured trace recorder for the simulation engine.

    A trace is a per-domain sink of typed events — lock
    acquire/release/handoff, coherence transfers with protocol state
    and distance class, park/wake, fault injections, message send/recv
    — emitted by the engine, the memory model, the lock factory and
    the MP channel at the virtual time each event occurs.

    The contract is zero overhead when off: producers cache
    {!current} at creation time ([Sim.create] / [Memory.create] /
    [Simlock.create] / [Channel.create]), so with no trace installed
    the instrumentation costs one [option] match per hook site and the
    lock wrappers are never even built.  Install a sink with {!start}
    before creating the simulation.

    Storage is a ring buffer: once [capacity] events have been
    recorded the oldest are overwritten ({!dropped} counts them), but
    the {!totals} aggregates keep counting, so profile reconciliation
    against [Sim.perf] never degrades.  Successive simulations in one
    job are mapped onto a single forward timeline ({!new_epoch}), so
    per-track timestamps are monotone across a whole job. *)

open Ssync_platform

type fault_kind = Jitter | Preempt | Crash

type event =
  | E_thread of { tid : int; core : int }  (** thread spawned *)
  | E_wait of { tid : int; lock : int }  (** blocking acquire started *)
  | E_acq of { tid : int; lock : int; wait : int; dist : Arch.distance option }
      (** lock acquired after [wait] cycles; [dist] is the handoff
          distance class from the previous holder's core ([None] for
          the lock's first acquisition) *)
  | E_rel of { tid : int; lock : int; held : int }
  | E_xfer of {
      tid : int;  (** -1 when issued outside a simulated thread *)
      core : int;
      op : Arch.memop;
      addr : int;
      pre : Arch.cstate;  (** line state when the request was issued *)
      post : Arch.cstate;
      dist : Arch.distance;  (** class to the data source (or home) *)
      lat : int;  (** cycles charged to the requesting thread *)
      service : int;  (** raw transfer service latency *)
      queued : int;  (** occupancy-queueing share of [lat] *)
      rq : int;
          (** interconnect-resource share of [queued]: cycles spent
              behind a busy link or home directory rather than the
              line itself (equals [Stats.link_queued_cycles]'s
              per-access contribution) *)
      rq_dir : bool;
          (** [rq] was charged to the transfer's home directory; [false]
              = charged to an interconnect link *)
    }  (** a non-local coherence transaction *)
  | E_park of { tid : int; addr : int }  (** addr -1 = [Sim.parker] *)
  | E_wake of { tid : int; addr : int }
  | E_fault of { tid : int; kind : fault_kind; cycles : int }
  | E_send of { tid : int; chan : int }
  | E_recv of { tid : int; chan : int }
  | E_window of { upto : int; shards : int; solo : bool }
      (** a PDES window opened, running until virtual time [upto] *)
  | E_window_done of { aborted : bool }
  | E_spec_abort of { line : int; hard : bool }
      (** a sharded attempt aborted; [line] names a conflicting line
          (-1 when unattributable), [hard] = promotion cannot fix it *)
  | E_ckpt  (** memory checkpoint armed (speculative replay) *)
  | E_restore  (** rollback to the checkpoint *)
  | E_promote of { line : int }  (** line promoted to coordinator access *)
  | E_replay of { attempt : int }  (** speculative replay number [attempt] *)
  | E_escalate  (** the job gave up on sharding and re-ran serially *)

type entry = { ts : int; ev : event }

type t

val requested : bool ref
(** Set by the CLI ([--trace] / [profile]); [Pool] reads it once per
    run and installs a fresh sink around every job when set. *)

val allow_sharded : bool ref
(** Keep sharding on while a trace is installed ([Sim.create] normally
    forces one shard).  Per-thread events are suppressed inside sharded
    windows (worker domains never touch the sink); only the
    coordinator-emitted speculation-lifecycle events are recorded.  Set
    by [--trace-spec]; default [false]. *)

val create : ?capacity:int -> unit -> t
(** A fresh sink (default capacity [2^16] events). *)

val start : ?capacity:int -> unit -> t
(** Create a sink and install it as the calling domain's current
    trace. *)

val stop : unit -> t option
(** Uninstall and return the domain's current trace, if any. *)

val current : unit -> t option

(* {2 Producer hooks} *)

val emit : t -> ts:int -> event -> unit

val emit_end : t -> event -> unit
(** Emit at the trace's current high-water timestamp — for bookkeeping
    events raised outside any simulation clock (serial escalation). *)

val set_tid : t -> int -> unit
(** Thread on whose behalf the next memory accesses run (-1 outside
    simulated threads). *)

val cur_tid : t -> int
val set_platform : t -> string -> unit
val platform : t -> string

val new_epoch : t -> unit
(** Start a new simulation on this sink: subsequent timestamps are
    offset past everything already recorded, keeping one forward
    timeline per job. *)

val new_lock : t -> string -> int
(** Register a lock; the returned id keys {!E_wait}/{!E_acq}/{!E_rel}. *)

val lock_name : t -> int -> string
val new_chan : t -> string -> int
val chan_name : t -> int -> string

val note_local : t -> cycles:int -> unit
(** A local cache hit (no event recorded, aggregate only). *)

val note_elided : t -> count:int -> cycles:int -> unit
(** Bulk-accounted inert spin probes (see [Memory.try_park]). *)

(* {2 Consumers} *)

val length : t -> int
(** Events currently held in the ring. *)

val dropped : t -> int
(** Events overwritten after the ring filled. *)

val iter : t -> (entry -> unit) -> unit
(** Chronological (= emission) order over the retained events. *)

(** Aggregate counters over the whole run — never dropped, so they
    reconcile with [Sim.perf] even when the ring wrapped. *)
type totals = {
  t_emitted : int;  (** events emitted, including overwritten ones *)
  t_acquires : int;
  t_releases : int;
  t_xfers : int;
  t_xfer_cy : int;  (** cycles charged to threads by transfers *)
  t_queued_cy : int;
  t_local : int;
  t_local_cy : int;
  t_elided : int;
  t_elided_cy : int;
  t_parks : int;
  t_wakes : int;
  t_faults : int;
  t_sends : int;
  t_recvs : int;
}

val totals : t -> totals

val rq_by_rank : t -> int array * int array
(** Resource-queued wait cycles by [Cost_model.rank_of_class] of the
    transfer's distance class: [(links, home_directories)].  Aggregate
    counters like {!totals} — their sum equals the engine's
    [Stats.link_queued_cycles] exactly. *)
