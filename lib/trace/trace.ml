(* Ring-buffer trace recorder.  See trace.mli for the contract.

   The sink lives in domain-local storage, like the engine's perf
   counters: each pool domain traces the job it is currently executing
   into its own buffer, so concurrent jobs never interleave events and
   per-job traces merge deterministically in submission order.

   Two stores per trace:

   - the ring of typed events, capped at [cap] (grown geometrically up
     to it): enough to reconstruct timelines and per-lock profiles,
     cheap enough to leave on for whole figure sections;

   - aggregate counters bumped on every emission (plus local-hit and
     elided-probe notes that record no event at all): these never
     drop, so totals reconcile exactly with [Sim.perf] whatever the
     ring did. *)

open Ssync_platform

type fault_kind = Jitter | Preempt | Crash

type event =
  | E_thread of { tid : int; core : int }
  | E_wait of { tid : int; lock : int }
  | E_acq of { tid : int; lock : int; wait : int; dist : Arch.distance option }
  | E_rel of { tid : int; lock : int; held : int }
  | E_xfer of {
      tid : int;
      core : int;
      op : Arch.memop;
      addr : int;
      pre : Arch.cstate;
      post : Arch.cstate;
      dist : Arch.distance;
      lat : int;
      service : int;
      queued : int;
      rq : int;  (* interconnect-resource share of [queued] *)
      rq_dir : bool;  (* [rq] charged to the home directory, not a link *)
    }
  | E_park of { tid : int; addr : int }
  | E_wake of { tid : int; addr : int }
  | E_fault of { tid : int; kind : fault_kind; cycles : int }
  | E_send of { tid : int; chan : int }
  | E_recv of { tid : int; chan : int }
  (* PDES speculation lifecycle (coordinator-emitted; see [allow_sharded]) *)
  | E_window of { upto : int; shards : int; solo : bool }
  | E_window_done of { aborted : bool }
  | E_spec_abort of { line : int; hard : bool }
  | E_ckpt
  | E_restore
  | E_promote of { line : int }
  | E_replay of { attempt : int }
  | E_escalate

type entry = { ts : int; ev : event }

type totals = {
  t_emitted : int;
  t_acquires : int;
  t_releases : int;
  t_xfers : int;
  t_xfer_cy : int;
  t_queued_cy : int;
  t_local : int;
  t_local_cy : int;
  t_elided : int;
  t_elided_cy : int;
  t_parks : int;
  t_wakes : int;
  t_faults : int;
  t_sends : int;
  t_recvs : int;
}

type t = {
  cap : int;
  mutable buf : entry array;
  mutable n : int; (* total emitted since creation *)
  mutable base : int; (* timestamp offset of the current epoch *)
  mutable max_ts : int;
  mutable cur_tid : int;
  mutable plat : string;
  mutable lock_names : string array;
  mutable n_locks : int;
  mutable chan_names : string array;
  mutable n_chans : int;
  (* aggregates *)
  mutable a_acq : int;
  mutable a_rel : int;
  mutable a_xfer : int;
  mutable a_xfer_cy : int;
  mutable a_queued_cy : int;
  mutable a_local : int;
  mutable a_local_cy : int;
  mutable a_elided : int;
  mutable a_elided_cy : int;
  mutable a_park : int;
  mutable a_wake : int;
  mutable a_fault : int;
  mutable a_send : int;
  mutable a_recv : int;
  a_rq_link : int array; (* resource-queued cycles charged to links, by
                            Cost_model.rank_of_class of the transfer *)
  a_rq_dir : int array; (* same, charged to home directories *)
}

let requested = ref false

(* Let [Sim.create] keep sharding on while a trace collector is
   installed (normally tracing forces one shard).  Per-thread events
   are then suppressed inside windows (worker domains must not touch
   the sink) and only the coordinator-emitted speculation-lifecycle
   events above are recorded — an opt-in debugging view
   ([--trace-spec]) whose content is strategy-dependent, unlike every
   other trace. *)
let allow_sharded = ref false
let dummy = { ts = 0; ev = E_thread { tid = 0; core = 0 } }
let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    cap = capacity;
    buf = Array.make (min capacity 1024) dummy;
    n = 0;
    base = 0;
    max_ts = 0;
    cur_tid = -1;
    plat = "";
    lock_names = [||];
    n_locks = 0;
    chan_names = [||];
    n_chans = 0;
    a_acq = 0;
    a_rel = 0;
    a_xfer = 0;
    a_xfer_cy = 0;
    a_queued_cy = 0;
    a_local = 0;
    a_local_cy = 0;
    a_elided = 0;
    a_elided_cy = 0;
    a_park = 0;
    a_wake = 0;
    a_fault = 0;
    a_send = 0;
    a_recv = 0;
    a_rq_link = Array.make 6 0;
    a_rq_dir = Array.make 6 0;
  }

let sink_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current () = Domain.DLS.get sink_key

let start ?capacity () =
  let tr = create ?capacity () in
  Domain.DLS.set sink_key (Some tr);
  tr

let stop () =
  let c = current () in
  Domain.DLS.set sink_key None;
  c

let set_tid t tid = t.cur_tid <- tid
let cur_tid t = t.cur_tid
let set_platform t name = t.plat <- name
let platform t = t.plat

(* Successive simulations in one job each restart virtual time at 0;
   offsetting every epoch past the previous one keeps each (job,
   thread) track monotone, which the Chrome exporter relies on. *)
let new_epoch t =
  t.base <- t.max_ts;
  t.cur_tid <- -1

let register names n name =
  let arr = !names in
  let len = Array.length arr in
  if !n = len then begin
    let bigger = Array.make (max 8 (2 * len)) "" in
    Array.blit arr 0 bigger 0 len;
    names := bigger
  end;
  !names.(!n) <- name;
  let id = !n in
  n := id + 1;
  id

let new_lock t name =
  let names = ref t.lock_names and n = ref t.n_locks in
  let id = register names n name in
  t.lock_names <- !names;
  t.n_locks <- !n;
  id

let lock_name t id =
  if id < 0 || id >= t.n_locks then Printf.sprintf "lock#%d" id
  else t.lock_names.(id)

let new_chan t name =
  let names = ref t.chan_names and n = ref t.n_chans in
  let id = register names n name in
  t.chan_names <- !names;
  t.n_chans <- !n;
  id

let chan_name t id =
  if id < 0 || id >= t.n_chans then Printf.sprintf "chan#%d" id
  else t.chan_names.(id)

let note_local t ~cycles =
  t.a_local <- t.a_local + 1;
  t.a_local_cy <- t.a_local_cy + cycles

let note_elided t ~count ~cycles =
  t.a_elided <- t.a_elided + count;
  t.a_elided_cy <- t.a_elided_cy + cycles

let emit t ~ts ev =
  let ts = t.base + max 0 ts in
  if ts > t.max_ts then t.max_ts <- ts;
  (match ev with
  | E_thread _ | E_wait _ -> ()
  | E_acq _ -> t.a_acq <- t.a_acq + 1
  | E_rel _ -> t.a_rel <- t.a_rel + 1
  | E_xfer x ->
      t.a_xfer <- t.a_xfer + 1;
      t.a_xfer_cy <- t.a_xfer_cy + x.lat;
      t.a_queued_cy <- t.a_queued_cy + x.queued;
      if x.rq > 0 then begin
        let r = Cost_model.rank_of_class x.dist in
        let arr = if x.rq_dir then t.a_rq_dir else t.a_rq_link in
        arr.(r) <- arr.(r) + x.rq
      end
  | E_park _ -> t.a_park <- t.a_park + 1
  | E_wake _ -> t.a_wake <- t.a_wake + 1
  | E_fault _ -> t.a_fault <- t.a_fault + 1
  | E_send _ -> t.a_send <- t.a_send + 1
  | E_recv _ -> t.a_recv <- t.a_recv + 1
  | E_window _ | E_window_done _ | E_spec_abort _ | E_ckpt | E_restore
  | E_promote _ | E_replay _ | E_escalate ->
      ());
  let len = Array.length t.buf in
  if t.n = len && len < t.cap then begin
    let bigger = Array.make (min t.cap (2 * len)) dummy in
    Array.blit t.buf 0 bigger 0 len;
    t.buf <- bigger
  end;
  t.buf.(t.n mod Array.length t.buf) <- { ts; ev };
  t.n <- t.n + 1

let length t = min t.n (Array.length t.buf)
let dropped t = max 0 (t.n - Array.length t.buf)

let iter t f =
  let len = Array.length t.buf in
  let first = max 0 (t.n - len) in
  for i = first to t.n - 1 do
    f t.buf.(i mod len)
  done

(* Resource-queued wait cycles by distance rank: [(links, dirs)].
   Aggregate counters (never drop with the ring), so the profiler's
   interconnect table reconciles exactly against
   [Stats.link_queued_cycles] whatever the ring capacity did. *)
let rq_by_rank t = (t.a_rq_link, t.a_rq_dir)

(* Emit [ev] at the trace's current high-water timestamp — for
   bookkeeping events raised outside any simulation clock (e.g. a
   serial escalation, which fires after its aborted attempt's last
   event), keeping every track's timestamps monotone. *)
let emit_end t ev = emit t ~ts:(t.max_ts - t.base) ev

let totals t =
  {
    t_emitted = t.n;
    t_acquires = t.a_acq;
    t_releases = t.a_rel;
    t_xfers = t.a_xfer;
    t_xfer_cy = t.a_xfer_cy;
    t_queued_cy = t.a_queued_cy;
    t_local = t.a_local;
    t_local_cy = t.a_local_cy;
    t_elided = t.a_elided;
    t_elided_cy = t.a_elided_cy;
    t_parks = t.a_park;
    t_wakes = t.a_wake;
    t_faults = t.a_fault;
    t_sends = t.a_send;
    t_recvs = t.a_recv;
  }
