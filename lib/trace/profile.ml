(* Aggregation passes over recorded traces: per-lock contention
   profiles (acquisition-latency histogram, hold/wait split, handoff
   distance-class matrix mirroring Table 2's same-die/one-hop/two-hops
   structure, fairness), per-cache-line coherence-traffic accounting
   and a MOESI/MESIF state-pair transition matrix.

   Locks are merged *by name* across jobs: a figure section that runs
   the same algorithm at eight thread counts profiles as one row per
   algorithm, and the [profile] subcommand's one-job-per-algorithm
   layout profiles each algorithm exactly.  Jobs are folded in
   submission order and every table sorts its rows explicitly, so the
   report is deterministic at any [--jobs] count.

   The ring buffer may have dropped early events; [dropped] is carried
   into the summary so a truncated profile is never mistaken for a
   complete one.  (Totals-level reconciliation against [Sim.perf] uses
   [Trace.totals], which never drops.) *)

open Ssync_platform
module Table = Ssync_report.Table

type agg = { mutable cnt : int; mutable cy : int; mutable q : int }

let agg_zero () = { cnt = 0; cy = 0; q = 0 }

let bump a ~cy ~q =
  a.cnt <- a.cnt + 1;
  a.cy <- a.cy + cy;
  a.q <- a.q + q

(* log2 histogram: bucket 0 = wait 0, bucket k >= 1 = [2^(k-1), 2^k) *)
let n_buckets = 32

let bucket_of w =
  if w <= 0 then 0
  else begin
    let b = ref 0 and w = ref w in
    while !w > 0 do
      incr b;
      w := !w lsr 1
    done;
    min !b (n_buckets - 1)
  end

let bucket_label = function
  | 0 -> "0"
  | k -> Printf.sprintf "<%d" (1 lsl k)

type lock_prof = {
  lp_name : string;
  mutable acqs : int;
  mutable first_acqs : int; (* acquisitions with no previous holder *)
  mutable wait_cy : int;
  mutable max_wait : int;
  mutable hold_cy : int;
  mutable rels : int;
  wait_hist : int array;
  handoff : int array; (* by Cost_model.rank_of_class *)
  mutable by_tid : int array; (* acquisitions per thread id *)
}

let n_states = 6

let state_index = function
  | Arch.Modified -> 0
  | Arch.Owned -> 1
  | Arch.Exclusive -> 2
  | Arch.Shared -> 3
  | Arch.Forward -> 4
  | Arch.Invalid -> 5

let state_of_index = function
  | 0 -> Arch.Modified
  | 1 -> Arch.Owned
  | 2 -> Arch.Exclusive
  | 3 -> Arch.Shared
  | 4 -> Arch.Forward
  | _ -> Arch.Invalid

let ranked_classes =
  [|
    Arch.Same_core; Arch.Same_die; Arch.Same_mcm; Arch.One_hop; Arch.Two_hops;
    Arch.Max_hops;
  |]

type xfer_key = {
  xk_platform : string;
  xk_op : Arch.memop;
  xk_pre : Arch.cstate;
  xk_dist : Arch.distance;
}

type t = {
  mutable lock_order : string list; (* reversed first-seen order *)
  locks : (string, lock_prof) Hashtbl.t;
  xfers : (xfer_key, agg) Hashtbl.t;
  trans : int array array; (* pre-state x post-state transfer counts *)
  lines : (int, agg) Hashtbl.t; (* per-address traffic *)
  rq_link : int array; (* resource-queued cycles behind links, by rank *)
  rq_dir : int array; (* same, behind home directories *)
      (* both fed from [Trace.rq_by_rank]'s drop-proof aggregates, so
         [rq_total] reconciles exactly against
         [Stats.link_queued_cycles] even when the ring truncated *)
  mutable totals : Trace.totals;
  mutable dropped : int;
  mutable n_jobs : int;
}

let totals_zero =
  {
    Trace.t_emitted = 0;
    t_acquires = 0;
    t_releases = 0;
    t_xfers = 0;
    t_xfer_cy = 0;
    t_queued_cy = 0;
    t_local = 0;
    t_local_cy = 0;
    t_elided = 0;
    t_elided_cy = 0;
    t_parks = 0;
    t_wakes = 0;
    t_faults = 0;
    t_sends = 0;
    t_recvs = 0;
  }

let totals_add (a : Trace.totals) (b : Trace.totals) =
  {
    Trace.t_emitted = a.Trace.t_emitted + b.Trace.t_emitted;
    t_acquires = a.t_acquires + b.t_acquires;
    t_releases = a.t_releases + b.t_releases;
    t_xfers = a.t_xfers + b.t_xfers;
    t_xfer_cy = a.t_xfer_cy + b.t_xfer_cy;
    t_queued_cy = a.t_queued_cy + b.t_queued_cy;
    t_local = a.t_local + b.t_local;
    t_local_cy = a.t_local_cy + b.t_local_cy;
    t_elided = a.t_elided + b.t_elided;
    t_elided_cy = a.t_elided_cy + b.t_elided_cy;
    t_parks = a.t_parks + b.t_parks;
    t_wakes = a.t_wakes + b.t_wakes;
    t_faults = a.t_faults + b.t_faults;
    t_sends = a.t_sends + b.t_sends;
    t_recvs = a.t_recvs + b.t_recvs;
  }

let create () =
  {
    lock_order = [];
    locks = Hashtbl.create 16;
    xfers = Hashtbl.create 64;
    trans = Array.make_matrix n_states n_states 0;
    lines = Hashtbl.create 64;
    rq_link = Array.make (Array.length ranked_classes) 0;
    rq_dir = Array.make (Array.length ranked_classes) 0;
    totals = totals_zero;
    dropped = 0;
    n_jobs = 0;
  }

let lock_prof t name =
  match Hashtbl.find_opt t.locks name with
  | Some lp -> lp
  | None ->
      let lp =
        {
          lp_name = name;
          acqs = 0;
          first_acqs = 0;
          wait_cy = 0;
          max_wait = 0;
          hold_cy = 0;
          rels = 0;
          wait_hist = Array.make n_buckets 0;
          handoff = Array.make (Array.length ranked_classes) 0;
          by_tid = [||];
        }
      in
      Hashtbl.replace t.locks name lp;
      t.lock_order <- name :: t.lock_order;
      lp

let count_tid lp tid =
  if tid >= 0 then begin
    let len = Array.length lp.by_tid in
    if tid >= len then begin
      let bigger = Array.make (max (tid + 1) (max 8 (2 * len))) 0 in
      Array.blit lp.by_tid 0 bigger 0 len;
      lp.by_tid <- bigger
    end;
    lp.by_tid.(tid) <- lp.by_tid.(tid) + 1
  end

let add_trace t (tr : Trace.t) =
  t.n_jobs <- t.n_jobs + 1;
  t.totals <- totals_add t.totals (Trace.totals tr);
  t.dropped <- t.dropped + Trace.dropped tr;
  let rql, rqd = Trace.rq_by_rank tr in
  Array.iteri (fun r v -> t.rq_link.(r) <- t.rq_link.(r) + v) rql;
  Array.iteri (fun r v -> t.rq_dir.(r) <- t.rq_dir.(r) + v) rqd;
  let plat = Trace.platform tr in
  Trace.iter tr (fun { Trace.ev; _ } ->
      match ev with
      | Trace.E_acq { tid; lock; wait; dist } ->
          let lp = lock_prof t (Trace.lock_name tr lock) in
          lp.acqs <- lp.acqs + 1;
          lp.wait_cy <- lp.wait_cy + wait;
          if wait > lp.max_wait then lp.max_wait <- wait;
          lp.wait_hist.(bucket_of wait) <- lp.wait_hist.(bucket_of wait) + 1;
          (match dist with
          | None -> lp.first_acqs <- lp.first_acqs + 1
          | Some d ->
              let r = Cost_model.rank_of_class d in
              lp.handoff.(r) <- lp.handoff.(r) + 1);
          count_tid lp tid
      | Trace.E_rel { lock; held; _ } ->
          let lp = lock_prof t (Trace.lock_name tr lock) in
          lp.rels <- lp.rels + 1;
          lp.hold_cy <- lp.hold_cy + held
      | Trace.E_xfer { op; addr; pre; post; dist; lat; queued; _ } ->
          let key =
            { xk_platform = plat; xk_op = op; xk_pre = pre; xk_dist = dist }
          in
          let a =
            match Hashtbl.find_opt t.xfers key with
            | Some a -> a
            | None ->
                let a = agg_zero () in
                Hashtbl.replace t.xfers key a;
                a
          in
          bump a ~cy:lat ~q:queued;
          t.trans.(state_index pre).(state_index post) <-
            t.trans.(state_index pre).(state_index post) + 1;
          let la =
            match Hashtbl.find_opt t.lines addr with
            | Some a -> a
            | None ->
                let a = agg_zero () in
                Hashtbl.replace t.lines addr a;
                a
          in
          bump la ~cy:lat ~q:queued
      | _ -> ())

let of_traces (trs : Trace.t list) =
  let t = create () in
  List.iter (add_trace t) trs;
  t

let locks_in_order t = List.rev t.lock_order
let mean num den = if den = 0 then 0. else float_of_int num /. float_of_int den

(* ------------------------------- tables ------------------------------- *)

(* Per-lock contention: acquisition counts, wait/hold split, fairness
   (min/max acquisitions over participating threads) and the handoff
   distance-class distribution — only classes some lock actually used
   get a column, in Table 2's rank order. *)
let lock_table t : Table.t =
  let names = locks_in_order t in
  let used_ranks =
    List.filter
      (fun r ->
        List.exists (fun n -> (Hashtbl.find t.locks n).handoff.(r) > 0) names)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let headers =
    [ "lock"; "acqs"; "wait avg"; "wait max"; "hold avg"; "fair min/max" ]
    @ List.map (fun r -> Arch.distance_name ranked_classes.(r)) used_ranks
  in
  let aligns = Table.Left :: List.map (fun _ -> Table.Right) (List.tl headers) in
  let rows =
    List.map
      (fun n ->
        let lp = Hashtbl.find t.locks n in
        let fair =
          match Array.to_list lp.by_tid with
          | [] -> "-"
          | c0 :: cs ->
              let mn = List.fold_left min c0 cs
              and mx = List.fold_left max c0 cs in
              Printf.sprintf "%d/%d" mn mx
        in
        let handoffs = Array.fold_left ( + ) 0 lp.handoff in
        [
          lp.lp_name;
          string_of_int lp.acqs;
          Table.fcell1 (mean lp.wait_cy lp.acqs);
          string_of_int lp.max_wait;
          Table.fcell1 (mean lp.hold_cy lp.rels);
          fair;
        ]
        @ List.map
            (fun r ->
              if handoffs = 0 then "-"
              else
                Printf.sprintf "%.1f%%"
                  (100. *. mean lp.handoff.(r) handoffs))
            used_ranks)
      names
  in
  Table.of_rows ~aligns headers rows

(* Acquisition-latency histogram: log2 buckets as rows, one column per
   lock. *)
let wait_hist_table t : Table.t =
  let names = locks_in_order t in
  let max_bucket =
    List.fold_left
      (fun m n ->
        let h = (Hashtbl.find t.locks n).wait_hist in
        let rec last i = if i < 0 then -1 else if h.(i) > 0 then i else last (i - 1) in
        max m (last (n_buckets - 1)))
      0 names
  in
  let headers = "wait cy" :: names in
  let aligns = Table.Left :: List.map (fun _ -> Table.Right) names in
  let rows =
    List.init (max_bucket + 1) (fun b ->
        bucket_label b
        :: List.map
             (fun n ->
               let c = (Hashtbl.find t.locks n).wait_hist.(b) in
               if c = 0 then "." else string_of_int c)
             names)
  in
  Table.of_rows ~aligns headers rows

let xfer_rows t =
  Hashtbl.fold (fun k a acc -> (k, a) :: acc) t.xfers []
  |> List.sort (fun ((k1 : xfer_key), a1) (k2, a2) ->
         match compare a2.cy a1.cy with
         | 0 ->
             compare
               (k1.xk_platform, Arch.memop_name k1.xk_op,
                state_index k1.xk_pre, Cost_model.rank_of_class k1.xk_dist)
               (k2.xk_platform, Arch.memop_name k2.xk_op,
                state_index k2.xk_pre, Cost_model.rank_of_class k2.xk_dist)
         | c -> c)

(* Coherence traffic by (platform, op, pre-access state, distance
   class) — the profile's mirror of the paper's Table 2 rows — sorted
   by total cycles so the most expensive traffic reads first. *)
let coherence_table ?(top = 0) t : Table.t =
  let rows = xfer_rows t in
  let rows = if top > 0 && List.length rows > top then List.filteri (fun i _ -> i < top) rows else rows in
  let total_cy = max 1 t.totals.Trace.t_xfer_cy in
  let headers =
    [ "platform"; "op"; "state"; "distance"; "transfers"; "avg cy";
      "avg queued"; "total cy"; "share" ]
  in
  let aligns =
    [ Table.Left; Table.Left; Table.Left; Table.Left; Table.Right;
      Table.Right; Table.Right; Table.Right; Table.Right ]
  in
  Table.of_rows ~aligns headers
    (List.map
       (fun (k, a) ->
         [
           k.xk_platform;
           Arch.memop_name k.xk_op;
           Arch.cstate_name k.xk_pre;
           Arch.distance_name k.xk_dist;
           string_of_int a.cnt;
           Table.fcell1 (mean a.cy a.cnt);
           Table.fcell1 (mean a.q a.cnt);
           string_of_int a.cy;
           Printf.sprintf "%.1f%%" (100. *. mean a.cy total_cy);
         ])
       rows)

(* Transfer counts by (pre, post) protocol state pair.  Only states
   that appear get a row/column. *)
let transitions_table t : Table.t =
  let used i =
    Array.exists (fun r -> r.(i) > 0) t.trans
    || Array.exists (fun c -> c > 0) t.trans.(i)
  in
  let states = List.filter used [ 0; 1; 2; 3; 4; 5 ] in
  let headers =
    "from\\to"
    :: List.map (fun j -> String.make 1 (Arch.cstate_letter (state_of_index j))) states
  in
  let aligns = Table.Left :: List.map (fun _ -> Table.Right) states in
  let rows =
    List.filter_map
      (fun i ->
        if Array.exists (fun c -> c > 0) t.trans.(i) then
          Some
            (String.make 1 (Arch.cstate_letter (state_of_index i))
            :: List.map
                 (fun j ->
                   if t.trans.(i).(j) = 0 then "." else string_of_int t.trans.(i).(j))
                 states)
        else None)
      states
  in
  Table.of_rows ~aligns headers rows

(* Hottest cache lines by transfer cycles.  Addresses are per-job
   simulated-memory indices; across a merged section they identify the
   same allocation-order line in each job. *)
let lines_table ?(top = 10) t : Table.t =
  let rows =
    Hashtbl.fold (fun a v acc -> (a, v) :: acc) t.lines []
    |> List.sort (fun (a1, v1) (a2, v2) ->
           match compare v2.cy v1.cy with 0 -> compare a1 a2 | c -> c)
  in
  let rows = List.filteri (fun i _ -> i < top) rows in
  let headers = [ "line"; "transfers"; "avg cy"; "total cy" ] in
  let aligns = [ Table.Right; Table.Right; Table.Right; Table.Right ] in
  Table.of_rows ~aligns headers
    (List.map
       (fun (a, v) ->
         [
           string_of_int a;
           string_of_int v.cnt;
           Table.fcell1 (mean v.cy v.cnt);
           string_of_int v.cy;
         ])
       rows)

(* Total resource-queued cycles the profile attributed, for
   reconciliation against [Sim.perf.link_queued_cycles]: both sides sum
   the same per-access [rqueued] charges, so equality is exact. *)
let rq_total t =
  Array.fold_left ( + ) 0 t.rq_link + Array.fold_left ( + ) 0 t.rq_dir

(* Interconnect wait attribution: resource-queued cycles split between
   links and home directories per distance class of the transfer that
   paid them.  Fed from the per-trace aggregates (never the droppable
   ring), so the table's grand total reconciles exactly against the
   finite-bandwidth model's [Stats.link_queued_cycles]. *)
let interconnect_table t : Table.t =
  let used =
    List.filter
      (fun r -> t.rq_link.(r) > 0 || t.rq_dir.(r) > 0)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let total = max 1 (rq_total t) in
  let headers =
    [ "distance"; "link queued cy"; "dir queued cy"; "total"; "share" ]
  in
  let aligns =
    [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
  in
  let rows =
    List.map
      (fun r ->
        let l = t.rq_link.(r) and d = t.rq_dir.(r) in
        [
          Arch.distance_name ranked_classes.(r);
          string_of_int l;
          string_of_int d;
          string_of_int (l + d);
          Printf.sprintf "%.1f%%" (100. *. mean (l + d) total);
        ])
      used
  in
  let rows =
    if List.length used > 1 then
      rows
      @ [
          [
            "total";
            string_of_int (Array.fold_left ( + ) 0 t.rq_link);
            string_of_int (Array.fold_left ( + ) 0 t.rq_dir);
            string_of_int (rq_total t);
            "100.0%";
          ];
        ]
    else rows
  in
  Table.of_rows ~aligns headers rows

(* Where every memory cycle went: transfers (split into service and
   occupancy queueing), local hits, bulk-accounted elided probes. *)
let summary_table t : Table.t =
  let tt = t.totals in
  let headers = [ "metric"; "count"; "cycles" ] in
  let aligns = [ Table.Left; Table.Right; Table.Right ] in
  let row name cnt cy = [ name; string_of_int cnt; string_of_int cy ] in
  Table.of_rows ~aligns headers
    [
      row "coherence transfers" tt.Trace.t_xfers tt.Trace.t_xfer_cy;
      [ "  of which queued on occupancy"; "-"; string_of_int tt.Trace.t_queued_cy ];
      row "local cache hits" tt.Trace.t_local tt.Trace.t_local_cy;
      row "elided spin probes" tt.Trace.t_elided tt.Trace.t_elided_cy;
      [ "lock acquisitions"; string_of_int tt.Trace.t_acquires; "-" ];
      [ "lock releases"; string_of_int tt.Trace.t_releases; "-" ];
      [ "parks / wakes";
        Printf.sprintf "%d / %d" tt.Trace.t_parks tt.Trace.t_wakes; "-" ];
      [ "messages sent / received";
        Printf.sprintf "%d / %d" tt.Trace.t_sends tt.Trace.t_recvs; "-" ];
      [ "faults injected"; string_of_int tt.Trace.t_faults; "-" ];
      [ "events emitted (jobs)";
        Printf.sprintf "%d (%d)" tt.Trace.t_emitted t.n_jobs; "-" ];
      [ "events dropped by ring"; string_of_int t.dropped; "-" ];
    ]
