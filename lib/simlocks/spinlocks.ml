(* The simple spin locks of libslock: test-and-set, test-and-test-and-set
   with exponential backoff, the ticket lock (three variants, Figure 3),
   the array-based lock, and a futex-style Pthread-Mutex model. *)

open Ssync_coherence
open Ssync_engine

(* ------------------------------ TAS ------------------------------ *)
(* Spin directly on the atomic: every probe is an exclusive transaction
   on the lock line, the classic non-scalable spin lock. *)
let tas mem ~home_core : Lock_type.t =
  let lock = Memory.alloc ~home_core mem in
  {
    name = "TAS";
    acquire = (fun ~tid:_ -> Sim.spin_tas lock ~poll:0);
    release = (fun ~tid:_ -> Sim.store lock 0);
    try_acquire = (fun ~tid:_ -> Sim.tas lock);
  }

(* ------------------------------ TTAS ----------------------------- *)
(* Spin with plain loads (served from the local cache while the holder
   keeps the line) and only attempt the TAS when the lock looks free;
   back off exponentially after a lost race. *)
let ttas mem ~home_core : Lock_type.t =
  let lock = Memory.alloc ~home_core mem in
  (* one backoff per thread, reset at each acquire — state identical to
     a fresh one, without allocating on the lock's hot path *)
  let backoffs = Hashtbl.create 16 in
  let backoff_for tid =
    match Hashtbl.find_opt backoffs tid with
    | Some b ->
        Backoff.reset b;
        b
    | None ->
        let b = Backoff.create ~seed:tid () in
        Hashtbl.add backoffs tid b;
        b
  in
  {
    name = "TTAS";
    acquire =
      (fun ~tid ->
        let b = backoff_for tid in
        let rec loop v =
          if v = 0 then begin
            if not (Sim.tas lock) then begin
              Sim.pause (Backoff.once b);
              loop (Sim.load lock)
            end
          end
          else
            (* re-read every 4 cycles; local while cached *)
            loop (Sim.spin_load lock ~while_:v ~poll:4)
        in
        loop (Sim.load lock));
    release = (fun ~tid:_ -> Sim.store lock 0);
    (* probe first so a failed try costs one local load, not a TAS miss *)
    try_acquire = (fun ~tid:_ -> Sim.load lock = 0 && Sim.tas lock);
  }

(* ----------------------------- TICKET ---------------------------- *)

type ticket_variant =
  | Ticket_spin          (* non-optimized: spin on current with raw loads *)
  | Ticket_backoff       (* back-off proportional to the queue position *)
  | Ticket_prefetchw
      (* back-off + keep the line Modified at the prober (the Opteron
         prefetchw optimization of section 5.3): the probe is an atomic
         read (faa 0) that acquires the line exclusively, so the
         releaser's update finds a Modified line instead of paying the
         shared-store broadcast. *)

let ticket_variant_name = function
  | Ticket_spin -> "TICKET-SPIN"
  | Ticket_backoff -> "TICKET"
  | Ticket_prefetchw -> "TICKET-PFW"

(* Both counters live in ONE cache line, as in libslock: acquiring the
   ticket (fetch-and-add on the next half) brings the whole line to the
   core, so the subsequent read of [current] is a local hit and an
   uncontested release stays local.  Layout: next counter in the high
   bits, current in the low 24 bits. *)
let ticket_shift = 1 lsl 24
let ticket_mask = ticket_shift - 1

(* Returns the lock plus a [waiters] probe (does anybody queue behind
   the current holder?), needed by the hierarchical cohort locks. *)
let ticket_ext ?(variant = Ticket_backoff) ?(backoff_base = 1500) mem
    ~home_core : Lock_type.t * (unit -> bool) =
  let line = Memory.alloc ~home_core mem in
  let wait_turn my =
    let probe () =
      match variant with
      | Ticket_spin | Ticket_backoff -> Sim.load line
      | Ticket_prefetchw ->
          (* exclusive-prefetch probe: atomic read leaving the line
             Modified here *)
          Sim.faa line 0
    in
    let spin v ~poll =
      match variant with
      | Ticket_spin | Ticket_backoff -> Sim.spin_load line ~while_:v ~poll
      | Ticket_prefetchw -> Sim.spin_faa0 line ~while_:v ~poll
    in
    (* spin while the whole line is unchanged; any change (a new ticket
       drawn, a release) re-derives the position and its backoff *)
    let rec loop v =
      let cur = v land ticket_mask in
      if cur <> my then begin
        let poll =
          match variant with
          | Ticket_spin -> 0
          | Ticket_backoff -> max 1 ((my - cur) * backoff_base)
          | Ticket_prefetchw ->
              (* the reservation makes over-eager probes harmless (a
                 foreign probe degrades to a directed read that does not
                 occupy the line), so poll twice as tightly: the next
                 holder notices its turn sooner without slowing the
                 releaser down *)
              max 1 ((my - cur) * backoff_base / 2)
        in
        loop (spin v ~poll)
      end
    in
    loop (probe ())
  in
  let lock : Lock_type.t =
    {
      name = ticket_variant_name variant;
      acquire =
        (fun ~tid:_ ->
          let old = Sim.faa line ticket_shift in
          let my = (old lsr 24) land ticket_mask in
          if old land ticket_mask <> my then wait_turn my);
      release = (fun ~tid:_ -> ignore (Sim.faa_store line 1));
      (* a drawn ticket cannot be abandoned, so the trylock only draws
         one when it wins on the spot: CAS the whole line from
         "next = current" to "next+1 = current" *)
      try_acquire =
        (fun ~tid:_ ->
          let v = Sim.load line in
          let cur = v land ticket_mask in
          let nxt = (v lsr 24) land ticket_mask in
          nxt = cur && Sim.cas line ~expected:v ~desired:(v + ticket_shift));
    }
  in
  let waiters () =
    let v = Sim.load line in
    (v lsr 24) land ticket_mask > (v land ticket_mask) + 1
  in
  (lock, waiters)

let ticket ?variant ?backoff_base mem ~home_core : Lock_type.t =
  fst (ticket_ext ?variant ?backoff_base mem ~home_core)

(* ----------------------------- ARRAY ----------------------------- *)
(* Anderson's array lock: waiters spin each on their own slot (line);
   release flips the next slot. *)
let array_lock mem ~home_core ~n_slots : Lock_type.t =
  if n_slots <= 0 then invalid_arg "array_lock: n_slots must be positive";
  let tail = Memory.alloc ~home_core mem in
  let slots = Array.init n_slots (fun _ -> Memory.alloc ~home_core mem) in
  Memory.poke mem slots.(0) 1;
  (* remembers which slot each thread owns between acquire and release *)
  let my_slot = Array.make 1024 0 in
  {
    name = "ARRAY";
    acquire =
      (fun ~tid ->
        let idx = Sim.fai tail mod n_slots in
        my_slot.(tid) <- idx;
        if Sim.load slots.(idx) = 0 then
          ignore (Sim.spin_load slots.(idx) ~while_:0 ~poll:6));
    release =
      (fun ~tid ->
        let idx = my_slot.(tid) in
        Sim.store slots.(idx) 0;
        Sim.store slots.((idx + 1) mod n_slots) 1);
    (* a taken slot cannot be abandoned, so only claim one whose grant
       flag is already set: CAS the tail forward iff its slot is free *)
    try_acquire =
      (fun ~tid ->
        let tl = Sim.load tail in
        let idx = tl mod n_slots in
        Sim.load slots.(idx) = 1
        && Sim.cas tail ~expected:tl ~desired:(tl + 1)
        &&
        (my_slot.(tid) <- idx;
         true));
  }

(* ----------------------------- MUTEX ----------------------------- *)
(* A Pthread-Mutex model: fast path is a CAS; the slow path queues in
   the kernel (a futex wait: syscall overhead plus a sleep the releaser
   ends).  The kernel's wait queue is FIFO, so a contended release
   hands the mutex directly to the longest-sleeping waiter — the holder
   cannot barge back in past threads already asleep, which is what
   keeps pthread throughput flat (not collapsing) at high contention.

   The wait queue and queue membership are kernel state, invisible to
   the coherence protocol, so they live in plain OCaml; each sleeper
   has its own grant-flag line, stored by the releaser, which is how
   the wake-up travels through the memory model.  Lock word: 0 free,
   1 held, 2 held with (possible) waiters. *)
let mutex ?(syscall_cycles = 900) ?(sleep_cycles = 1800) mem ~home_core :
    Lock_type.t =
  let lock = Memory.alloc ~home_core mem in
  let sleepers : int list ref = ref [] in
  let flags : (int, Memory.addr) Hashtbl.t = Hashtbl.create 16 in
  let flag_for tid =
    match Hashtbl.find_opt flags tid with
    | Some a -> a
    | None ->
        let a = Memory.alloc ~home_core mem in
        Hashtbl.add flags tid a;
        a
  in
  let wait_flag flag =
    if Sim.load flag = 0 then
      ignore (Sim.spin_load flag ~while_:0 ~poll:(syscall_cycles + sleep_cycles))
  in
  let rec slow tid flag =
    if Sim.swap lock 2 <> 0 then begin
      Sim.store flag 0;
      sleepers := !sleepers @ [ tid ];
      Sim.pause syscall_cycles; (* futex_wait entry *)
      wait_granted tid flag
    end
  and wait_granted tid flag =
    if not (List.mem tid !sleepers) then
      (* a releaser dequeued us: the mutex is ours once the grant flag
         lands (direct handoff; the lock word never went through 0) *)
      wait_flag flag
    else if Sim.load lock = 0 then begin
      (* a release raced past our enqueue and saw an empty queue *)
      if List.mem tid !sleepers then begin
        sleepers := List.filter (fun t -> t <> tid) !sleepers;
        slow tid flag
      end
      else wait_granted tid flag
    end
    else wait_flag flag
  in
  {
    name = "MUTEX";
    acquire =
      (fun ~tid ->
        Sim.pause 20; (* library call overhead *)
        if not (Sim.cas lock ~expected:0 ~desired:1) then
          slow tid (flag_for tid));
    release =
      (fun ~tid:_ ->
        match !sleepers with
        | [] -> ignore (Sim.swap lock 0)
        | t :: rest ->
            (* direct handoff to the longest sleeper: dequeue, pay the
               futex_wake syscall, store its grant flag; the lock word
               stays 2 so nobody barges in between *)
            sleepers := rest;
            Sim.pause syscall_cycles;
            Sim.store (flag_for t) 1);
    try_acquire =
      (fun ~tid:_ ->
        Sim.pause 20; (* library call overhead *)
        Sim.cas lock ~expected:0 ~desired:1);
  }
