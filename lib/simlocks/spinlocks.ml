(* The simple spin locks of libslock: test-and-set, test-and-test-and-set
   with exponential backoff, the ticket lock (three variants, Figure 3),
   the array-based lock, and a futex-style Pthread-Mutex model.

   Every lock carries two disjoint code paths: the plain path (exactly
   the paper's algorithm, untouched by the robust layer) and a robust
   path modeled on robust futexes — see [Rshadow] for the shadow
   discipline that keeps owner/queue bookkeeping exact with zero extra
   simulated memory traffic.  Robust waiters use honest costed probes
   plus explicit pauses (literal polling: under crash-stop faults the
   engine polls anyway), then peek-and-issue atomically to recover. *)

open Ssync_coherence
open Ssync_engine

(* ------------------------- TAS / TTAS ---------------------------- *)
(* Robust owner-word path shared by TAS and TTAS: the word encodes the
   owner as tid+2 (0 free, 1 a plain-path holder), the way a robust
   futex stores the owner's TID — any waiter can match the word against
   the dead-thread oracle and steal from a dead owner.  The steal is
   crash-safe because crash-stop is permanent: a value naming a dead
   owner stays naming a dead owner until somebody overwrites it, and
   the peek-predicted CAS overwrites exactly the value it peeked. *)
let robust_word_paths mem sh lock ~mk_backoff =
  let acquire_robust ~tid =
    Rshadow.register sh tid;
    let det = ref (-1) in
    let backoff = mk_backoff tid in
    let rec loop () =
      ignore (Sim.load lock);
      (* honest probe above for the traffic; exact decision below *)
      let v = Memory.peek mem lock in
      if v = 0 then begin
        sh.Rshadow.phase.(tid) <- Rshadow.Holder;
        ignore (Sim.cas lock ~expected:0 ~desired:(tid + 2));
        Rshadow.grant sh det
      end
      else if v >= 2 && Rshadow.dead sh (v - 2) then begin
        Rshadow.detect det;
        Rshadow.claim_holder sh (v - 2);
        sh.Rshadow.phase.(tid) <- Rshadow.Holder;
        ignore (Sim.cas lock ~expected:v ~desired:(tid + 2));
        Rshadow.grant sh det
      end
      else begin
        Sim.pause (backoff ());
        loop ()
      end
    in
    loop ()
  in
  let release_robust ~tid =
    sh.Rshadow.phase.(tid) <- Rshadow.Out;
    Sim.store lock 0
  in
  (acquire_robust, release_robust)

(* ------------------------------ TAS ------------------------------ *)
(* Spin directly on the atomic: every probe is an exclusive transaction
   on the lock line, the classic non-scalable spin lock. *)
let tas mem ~home_core ~n_threads : Lock_type.t =
  let lock = Memory.alloc ~home_core mem in
  let sh = Rshadow.create n_threads in
  let acquire_robust, release_robust =
    (* the plain TAS hammers with poll 0; the robust path's probe pair
       (load + peek-gated CAS) needs a short gap to stay comparable *)
    robust_word_paths mem sh lock ~mk_backoff:(fun _tid () -> 16)
  in
  {
    name = "TAS";
    acquire = (fun ~tid:_ -> Sim.spin_tas lock ~poll:0);
    release = (fun ~tid:_ -> Sim.store lock 0);
    try_acquire = (fun ~tid:_ -> Sim.tas lock);
    acquire_robust;
    release_robust;
    rstats = sh.Rshadow.stats;
  }

(* ------------------------------ TTAS ----------------------------- *)
(* Spin with plain loads (served from the local cache while the holder
   keeps the line) and only attempt the TAS when the lock looks free;
   back off exponentially after a lost race. *)
let ttas mem ~home_core ~n_threads : Lock_type.t =
  let lock = Memory.alloc ~home_core mem in
  (* one backoff per thread, reset at each acquire — state identical to
     a fresh one, without allocating on the lock's hot path *)
  let backoffs = Hashtbl.create 16 in
  let backoff_for tid =
    match Hashtbl.find_opt backoffs tid with
    | Some b ->
        Backoff.reset b;
        b
    | None ->
        let b = Backoff.create ~seed:tid () in
        Hashtbl.add backoffs tid b;
        b
  in
  let sh = Rshadow.create n_threads in
  let acquire_robust, release_robust =
    robust_word_paths mem sh lock ~mk_backoff:(fun tid ->
        let b = backoff_for tid in
        fun () -> Backoff.once b)
  in
  {
    name = "TTAS";
    acquire =
      (fun ~tid ->
        let b = backoff_for tid in
        let rec loop v =
          if v = 0 then begin
            if not (Sim.tas lock) then begin
              Sim.pause (Backoff.once b);
              loop (Sim.load lock)
            end
          end
          else
            (* re-read every 4 cycles; local while cached *)
            loop (Sim.spin_load lock ~while_:v ~poll:4)
        in
        loop (Sim.load lock));
    release = (fun ~tid:_ -> Sim.store lock 0);
    (* probe first so a failed try costs one local load, not a TAS miss *)
    try_acquire = (fun ~tid:_ -> Sim.load lock = 0 && Sim.tas lock);
    acquire_robust;
    release_robust;
    rstats = sh.Rshadow.stats;
  }

(* ----------------------------- TICKET ---------------------------- *)

type ticket_variant =
  | Ticket_spin          (* non-optimized: spin on current with raw loads *)
  | Ticket_backoff       (* back-off proportional to the queue position *)
  | Ticket_prefetchw
      (* back-off + keep the line Modified at the prober (the Opteron
         prefetchw optimization of section 5.3): the probe is an atomic
         read (faa 0) that acquires the line exclusively, so the
         releaser's update finds a Modified line instead of paying the
         shared-store broadcast. *)

let ticket_variant_name = function
  | Ticket_spin -> "TICKET-SPIN"
  | Ticket_backoff -> "TICKET"
  | Ticket_prefetchw -> "TICKET-PFW"

(* Both counters live in ONE cache line, as in libslock: acquiring the
   ticket (fetch-and-add on the next half) brings the whole line to the
   core, so the subsequent read of [current] is a local hit and an
   uncontested release stays local.  Layout: next counter in the high
   bits, current in the low 24 bits. *)
let ticket_shift = 1 lsl 24
let ticket_mask = ticket_shift - 1

(* Returns the lock plus a [waiters] probe (does anybody queue behind
   the current holder?) and the robust extension, both needed by the
   hierarchical cohort locks.  [n_ids] bounds the id space of the
   robust path (thread ids, or cluster ids when this is a cohort's
   global lock — then [is_dead]/[dead_of]/[on_removed] translate
   cluster ids to thread liveness). *)
let ticket_ext ?(variant = Ticket_backoff) ?(backoff_base = 1500) ?rstats
    ?is_dead ?dead_of ?on_removed mem ~home_core ~n_ids :
    Lock_type.t * (unit -> bool) * Rshadow.ext =
  let line = Memory.alloc ~home_core mem in
  let wait_turn my =
    let probe () =
      match variant with
      | Ticket_spin | Ticket_backoff -> Sim.load line
      | Ticket_prefetchw ->
          (* exclusive-prefetch probe: atomic read leaving the line
             Modified here *)
          Sim.faa line 0
    in
    let spin v ~poll =
      match variant with
      | Ticket_spin | Ticket_backoff -> Sim.spin_load line ~while_:v ~poll
      | Ticket_prefetchw -> Sim.spin_faa0 line ~while_:v ~poll
    in
    (* spin while the whole line is unchanged; any change (a new ticket
       drawn, a release) re-derives the position and its backoff *)
    let rec loop v =
      let cur = v land ticket_mask in
      if cur <> my then begin
        let poll =
          match variant with
          | Ticket_spin -> 0
          | Ticket_backoff -> max 1 ((my - cur) * backoff_base)
          | Ticket_prefetchw ->
              (* the reservation makes over-eager probes harmless (a
                 foreign probe degrades to a directed read that does not
                 occupy the line), so poll twice as tightly: the next
                 holder notices its turn sooner without slowing the
                 releaser down *)
              max 1 ((my - cur) * backoff_base / 2)
        in
        loop (spin v ~poll)
      end
    in
    loop (probe ())
  in
  (* Robust path.  Shadow: which raw ticket each id drew ([tick], -1
     none) — set in the same plain block as the faa that draws it, via
     a peek of the line, so the mapping turn -> owner is exact.  A
     waiter whose turn is held up by a dead owner advances [current]
     past the dead turn with a peek-predicted CAS (the robust "skip"):
     a dead waiter's turn is simply consumed, a dead holder's turn
     additionally queues the EOWNERDEAD witness. *)
  let sh = Rshadow.create ?stats:rstats ?is_dead ?dead_of ?on_removed n_ids in
  let tick = Array.make (max 1 n_ids) (-1) in
  let owner_of turn =
    let rec go i =
      if i >= n_ids then None
      else if tick.(i) = turn then Some i
      else go (i + 1)
    in
    go 0
  in
  let rec wait_robust ~id ~my det =
    ignore (Sim.load line);
    let v = Memory.peek mem line in
    let cur = v land ticket_mask in
    if cur = my then begin
      sh.Rshadow.phase.(id) <- Rshadow.Holder;
      Rshadow.grant sh det
    end
    else begin
      (match owner_of cur with
      | Some d when Rshadow.dead sh d ->
          Rshadow.detect det;
          (if sh.Rshadow.phase.(d) = Rshadow.Holder then
             Rshadow.claim_holder sh d
           else Rshadow.excise sh d);
          tick.(d) <- -1;
          (* skip the dead turn: advance current past it (guaranteed:
             [v] was peeked in this same plain block) *)
          ignore (Sim.cas line ~expected:v ~desired:(v + 1))
      | _ ->
          let dist = (my - cur + ticket_shift) land ticket_mask in
          Sim.pause (max 1 (dist * max 1 (backoff_base / 2))));
      wait_robust ~id ~my det
    end
  in
  let acquire_robust ~tid =
    Rshadow.register sh tid;
    let det = ref (-1) in
    (* predict the drawn ticket in the same plain block as the faa *)
    let v0 = Memory.peek mem line in
    let my = (v0 lsr 24) land ticket_mask in
    tick.(tid) <- my;
    if v0 land ticket_mask = my then begin
      (* uncontended: granted at the draw itself *)
      sh.Rshadow.phase.(tid) <- Rshadow.Holder;
      ignore (Sim.faa line ticket_shift);
      Rshadow.grant sh det
    end
    else begin
      sh.Rshadow.phase.(tid) <- Rshadow.Waiting;
      ignore (Sim.faa line ticket_shift);
      wait_robust ~id:tid ~my det
    end
  in
  let release_robust ~tid =
    tick.(tid) <- -1;
    sh.Rshadow.phase.(tid) <- Rshadow.Out;
    ignore (Sim.faa_store line 1)
  in
  let lock : Lock_type.t =
    {
      name = ticket_variant_name variant;
      acquire =
        (fun ~tid:_ ->
          let old = Sim.faa line ticket_shift in
          let my = (old lsr 24) land ticket_mask in
          if old land ticket_mask <> my then wait_turn my);
      release = (fun ~tid:_ -> ignore (Sim.faa_store line 1));
      (* a drawn ticket cannot be abandoned, so the trylock only draws
         one when it wins on the spot: CAS the whole line from
         "next = current" to "next+1 = current" *)
      try_acquire =
        (fun ~tid:_ ->
          let v = Sim.load line in
          let cur = v land ticket_mask in
          let nxt = (v lsr 24) land ticket_mask in
          nxt = cur && Sim.cas line ~expected:v ~desired:(v + ticket_shift));
      acquire_robust;
      release_robust;
      rstats = sh.Rshadow.stats;
    }
  in
  let waiters () =
    let v = Sim.load line in
    (v lsr 24) land ticket_mask > (v land ticket_mask) + 1
  in
  let ext =
    {
      Rshadow.x_phase = (fun id -> sh.Rshadow.phase.(id));
      x_adopt =
        (fun id ->
          let det = ref (Sim.now ()) in
          if sh.Rshadow.phase.(id) = Rshadow.Holder then Rshadow.grant sh det
          else wait_robust ~id ~my:tick.(id) det);
      x_waiting_live = (fun () -> Rshadow.waiting_live sh);
      x_engaged_live = (fun () -> Rshadow.engaged_live sh);
      x_harvest = (fun () -> Rshadow.harvest_dead_holders sh);
    }
  in
  (lock, waiters, ext)

let ticket ?variant ?backoff_base mem ~home_core ~n_threads : Lock_type.t =
  let lock, _, _ =
    ticket_ext ?variant ?backoff_base mem ~home_core ~n_ids:n_threads
  in
  lock

(* ----------------------------- ARRAY ----------------------------- *)
(* Anderson's array lock: waiters spin each on their own slot (line);
   release flips the next slot.

   Robust path: mutual exclusion rests on a shadow [turn] (the absolute
   position currently granted) advanced atomically with each release or
   excision; the slot flags remain the wake-up vehicle, so a stale flag
   left by a dead thread is harmless (the turn check rejects it) and a
   missing flag whose writer died is compensated by a self-grant. *)
let array_lock mem ~home_core ~n_slots ~n_threads : Lock_type.t =
  if n_slots <= 0 then invalid_arg "array_lock: n_slots must be positive";
  let tail = Memory.alloc ~home_core mem in
  let slots = Array.init n_slots (fun _ -> Memory.alloc ~home_core mem) in
  Memory.poke mem slots.(0) 1;
  (* remembers which slot each thread owns between acquire and release *)
  let my_slot = Array.make 1024 0 in
  let sh = Rshadow.create n_threads in
  let pos_of = Array.make (max 1 n_threads) (-1) in
  (* absolute position drawn by each id *)
  let turn = ref 0 in
  let flag_writer = ref (-1) in
  (* who owes the current turn its grant flag; -1 = initial setup (the
     poked slots.(0)), always "already written" *)
  let owner_at pos =
    let rec go i =
      if i >= n_threads then None
      else if pos_of.(i) = pos then Some i
      else go (i + 1)
    in
    go 0
  in
  let acquire_robust ~tid =
    Rshadow.register sh tid;
    let det = ref (-1) in
    let t0 = Memory.peek mem tail in
    pos_of.(tid) <- t0;
    sh.Rshadow.phase.(tid) <- Rshadow.Waiting;
    ignore (Sim.fai tail);
    let idx = t0 mod n_slots in
    let rec wait () =
      ignore (Sim.load slots.(idx));
      let flag = Memory.peek mem slots.(idx) in
      if
        !turn = t0
        && (flag = 1
           ||
           let w = !flag_writer in
           w = tid || (w >= 0 && Rshadow.dead sh w))
      then begin
        (* granted: the turn is ours and the flag either arrived, or
           its writer is this thread (we advanced the turn to our own
           position during an excision), or its writer died before
           writing (a dead writer's store can never land later: the
           model applies stores at issue) *)
        sh.Rshadow.phase.(tid) <- Rshadow.Holder;
        Rshadow.grant sh det
      end
      else begin
        (if !turn <> t0 then begin
           let g = !turn in
           match owner_at g with
           | Some d when Rshadow.dead sh d ->
               Rshadow.detect det;
               (if sh.Rshadow.phase.(d) = Rshadow.Holder then
                  Rshadow.claim_holder sh d
                else Rshadow.excise sh d);
               pos_of.(d) <- -1;
               turn := g + 1;
               flag_writer := tid;
               (* retire the dead turn's stale flag, then wake the next
                  turn; [turn] already advanced, so a crash between
                  these stores leaves only stale/missing flags, both
                  harmless under the turn check *)
               let gslot = slots.(g mod n_slots) in
               if Memory.peek mem gslot = 1 then Sim.store gslot 0;
               if !turn <> t0 then Sim.store slots.(!turn mod n_slots) 1
           | _ -> Sim.pause 24
         end
         else Sim.pause 24);
        wait ()
      end
    in
    wait ()
  in
  let release_robust ~tid =
    let p = pos_of.(tid) in
    let idx = p mod n_slots in
    pos_of.(tid) <- -1;
    sh.Rshadow.phase.(tid) <- Rshadow.Out;
    turn := p + 1;
    flag_writer := tid;
    Sim.store slots.(idx) 0;
    Sim.store slots.((idx + 1) mod n_slots) 1
  in
  {
    name = "ARRAY";
    acquire =
      (fun ~tid ->
        let idx = Sim.fai tail mod n_slots in
        my_slot.(tid) <- idx;
        if Sim.load slots.(idx) = 0 then
          ignore (Sim.spin_load slots.(idx) ~while_:0 ~poll:6));
    release =
      (fun ~tid ->
        let idx = my_slot.(tid) in
        Sim.store slots.(idx) 0;
        Sim.store slots.((idx + 1) mod n_slots) 1);
    (* a taken slot cannot be abandoned, so only claim one whose grant
       flag is already set: CAS the tail forward iff its slot is free *)
    try_acquire =
      (fun ~tid ->
        let tl = Sim.load tail in
        let idx = tl mod n_slots in
        Sim.load slots.(idx) = 1
        && Sim.cas tail ~expected:tl ~desired:(tl + 1)
        &&
        (my_slot.(tid) <- idx;
         true));
    acquire_robust;
    release_robust;
    rstats = sh.Rshadow.stats;
  }

(* ----------------------------- MUTEX ----------------------------- *)
(* A Pthread-Mutex model: fast path is a CAS; the slow path queues in
   the kernel (a futex wait: syscall overhead plus a sleep the releaser
   ends).  The kernel's wait queue is FIFO, so a contended release
   hands the mutex directly to the longest-sleeping waiter — the holder
   cannot barge back in past threads already asleep, which is what
   keeps pthread throughput flat (not collapsing) at high contention.

   The wait queue and queue membership are kernel state, invisible to
   the coherence protocol, so they live in plain OCaml; each sleeper
   has its own grant-flag line, stored by the releaser, which is how
   the wake-up travels through the memory model.  Lock word: 0 free,
   1 held, 2 held with (possible) waiters.

   Robust path: the closest to the real thing — the shadow *is* the
   kernel's robust bookkeeping.  The owner is recorded with the
   acquiring CAS/swap; a releaser requeues past dead sleepers; when the
   owner dies, the head live sleeper claims the mutex with EOWNERDEAD
   (after pruning dead sleepers ahead of it). *)
let mutex ?(syscall_cycles = 900) ?(sleep_cycles = 1800) mem ~home_core
    ~n_threads : Lock_type.t =
  let lock = Memory.alloc ~home_core mem in
  let sleepers : int list ref = ref [] in
  let flags : (int, Memory.addr) Hashtbl.t = Hashtbl.create 16 in
  let flag_for tid =
    match Hashtbl.find_opt flags tid with
    | Some a -> a
    | None ->
        let a = Memory.alloc ~home_core mem in
        Hashtbl.add flags tid a;
        a
  in
  let wait_flag flag =
    if Sim.load flag = 0 then
      ignore (Sim.spin_load flag ~while_:0 ~poll:(syscall_cycles + sleep_cycles))
  in
  let rec slow tid flag =
    if Sim.swap lock 2 <> 0 then begin
      Sim.store flag 0;
      sleepers := !sleepers @ [ tid ];
      Sim.pause syscall_cycles; (* futex_wait entry *)
      wait_granted tid flag
    end
  and wait_granted tid flag =
    if not (List.mem tid !sleepers) then
      (* a releaser dequeued us: the mutex is ours once the grant flag
         lands (direct handoff; the lock word never went through 0) *)
      wait_flag flag
    else if Sim.load lock = 0 then begin
      (* a release raced past our enqueue and saw an empty queue *)
      if List.mem tid !sleepers then begin
        sleepers := List.filter (fun t -> t <> tid) !sleepers;
        slow tid flag
      end
      else wait_granted tid flag
    end
    else wait_flag flag
  in
  let sh = Rshadow.create n_threads in
  let owner = ref (-1) in
  let prune_dead_sleepers () =
    sleepers :=
      List.filter
        (fun t ->
          if Rshadow.dead sh t then begin
            Rshadow.excise sh t;
            false
          end
          else true)
        !sleepers
  in
  let acquire_robust ~tid =
    Rshadow.register sh tid;
    let det = ref (-1) in
    Sim.pause 20; (* library call overhead *)
    let flag = flag_for tid in
    let fast () =
      let v = Memory.peek mem lock in
      v = 0
      &&
      (owner := tid;
       sh.Rshadow.phase.(tid) <- Rshadow.Holder;
       ignore (Sim.cas lock ~expected:0 ~desired:1);
       true)
    in
    if fast () then Rshadow.grant sh det
    else begin
      Sim.store flag 0;
      let rec enter () =
        (* the peek decides holder-vs-sleeper in the same plain block
           the swap issues, so the shadow matches the swap's outcome *)
        let v = Memory.peek mem lock in
        if v = 0 then begin
          owner := tid;
          sh.Rshadow.phase.(tid) <- Rshadow.Holder;
          ignore (Sim.swap lock 2);
          Rshadow.grant sh det
        end
        else begin
          sh.Rshadow.phase.(tid) <- Rshadow.Waiting;
          sleepers := !sleepers @ [ tid ];
          ignore (Sim.swap lock 2);
          Sim.pause syscall_cycles; (* futex_wait entry *)
          sleep ()
        end
      and sleep () =
        if sh.Rshadow.phase.(tid) = Rshadow.Holder then
          (* a releaser handed the mutex over while we slept; the flag
             store may still be in flight (or its writer dead), but the
             grant itself landed with the releaser's dequeue *)
          Rshadow.grant sh det
        else begin
          ignore (Sim.load flag);
          if sh.Rshadow.phase.(tid) = Rshadow.Holder then Rshadow.grant sh det
          else begin
            let ow = !owner in
            if
              ow >= 0 && ow <> tid
              && Rshadow.dead sh ow
              && (sh.Rshadow.phase.(ow) = Rshadow.Holder
                 || sh.Rshadow.phase.(ow) = Rshadow.Releasing)
            then begin
              Rshadow.detect det;
              prune_dead_sleepers ();
              match !sleepers with
              | t :: rest when t = tid ->
                  (* head live sleeper claims the dead owner's mutex *)
                  sleepers := rest;
                  Rshadow.claim_holder sh ow;
                  owner := tid;
                  sh.Rshadow.phase.(tid) <- Rshadow.Holder;
                  Sim.store lock 2; (* re-assert HELD|WAITERS *)
                  Rshadow.grant sh det
              | _ ->
                  Sim.pause (syscall_cycles + sleep_cycles);
                  sleep ()
            end
            else begin
              Sim.pause (syscall_cycles + sleep_cycles);
              sleep ()
            end
          end
        end
      in
      enter ()
    end
  in
  let release_robust ~tid =
    sh.Rshadow.phase.(tid) <- Rshadow.Releasing;
    prune_dead_sleepers ();
    match !sleepers with
    | [] ->
        owner := -1;
        sh.Rshadow.phase.(tid) <- Rshadow.Out;
        ignore (Sim.swap lock 0)
    | t :: rest ->
        (* direct handoff, requeued past any dead sleepers: the grant
           is effective at this block (shadow owner + phase), the flag
           store is only the wake-up; a crash before the flag lands is
           recovered by the grantee's own poll loop *)
        sleepers := rest;
        owner := t;
        sh.Rshadow.phase.(t) <- Rshadow.Holder;
        sh.Rshadow.phase.(tid) <- Rshadow.Out;
        Sim.pause syscall_cycles; (* futex_wake *)
        Sim.store (flag_for t) 1
  in
  {
    name = "MUTEX";
    acquire =
      (fun ~tid ->
        Sim.pause 20; (* library call overhead *)
        if not (Sim.cas lock ~expected:0 ~desired:1) then
          slow tid (flag_for tid));
    release =
      (fun ~tid:_ ->
        match !sleepers with
        | [] -> ignore (Sim.swap lock 0)
        | t :: rest ->
            (* direct handoff to the longest sleeper: dequeue, pay the
               futex_wake syscall, store its grant flag; the lock word
               stays 2 so nobody barges in between *)
            sleepers := rest;
            Sim.pause syscall_cycles;
            Sim.store (flag_for t) 1);
    try_acquire =
      (fun ~tid:_ ->
        Sim.pause 20; (* library call overhead *)
        Sim.cas lock ~expected:0 ~desired:1);
    acquire_robust;
    release_robust;
    rstats = sh.Rshadow.stats;
  }
