(* Factory over the whole simulated libslock: the nine algorithms the
   paper evaluates plus the two extra ticket variants of Figure 3. *)

open Ssync_platform

type algo =
  | Tas
  | Ttas
  | Ticket
  | Array_lock
  | Mutex
  | Mcs
  | Clh
  | Hclh
  | Hticket
  | Ticket_spin      (* Figure 3: non-optimized ticket *)
  | Ticket_prefetchw (* Figure 3: backoff + prefetchw *)

(* The nine algorithms of Figures 5-8, in the paper's legend order. *)
let paper_algos =
  [ Tas; Ttas; Ticket; Array_lock; Mutex; Mcs; Clh; Hclh; Hticket ]

(* Hierarchical locks are only meaningful on the multi-sockets; the
   paper omits them on the single-sockets ("given the uniform structure
   of the platforms, we do not use hierarchical locks on the
   single-socket machines"). *)
let algos_for (p : Platform.t) =
  match p.Platform.id with
  | Arch.Opteron | Arch.Xeon | Arch.Opteron2 | Arch.Xeon2 -> paper_algos
  | Arch.Niagara | Arch.Tilera ->
      List.filter (fun a -> a <> Hclh && a <> Hticket) paper_algos

let name = function
  | Tas -> "TAS"
  | Ttas -> "TTAS"
  | Ticket -> "TICKET"
  | Array_lock -> "ARRAY"
  | Mutex -> "MUTEX"
  | Mcs -> "MCS"
  | Clh -> "CLH"
  | Hclh -> "HCLH"
  | Hticket -> "HTICKET"
  | Ticket_spin -> "TICKET-SPIN"
  | Ticket_prefetchw -> "TICKET-PFW"

let of_string s =
  match String.uppercase_ascii s with
  | "TAS" -> Some Tas
  | "TTAS" -> Some Ttas
  | "TICKET" -> Some Ticket
  | "ARRAY" -> Some Array_lock
  | "MUTEX" -> Some Mutex
  | "MCS" -> Some Mcs
  | "CLH" -> Some Clh
  | "HCLH" -> Some Hclh
  | "HTICKET" -> Some Hticket
  | "TICKET-SPIN" -> Some Ticket_spin
  | "TICKET-PFW" -> Some Ticket_prefetchw
  | _ -> None

(* Proportional-backoff base of the ticket lock, tuned per platform to
   the typical lock-handoff time (the paper tunes its spin loops per
   platform the same way, section 4.1). *)
let ticket_backoff_base (p : Platform.t) =
  match p.Platform.id with
  | Arch.Opteron | Arch.Opteron2 -> 1400
  | Arch.Xeon | Arch.Xeon2 -> 1200
  | Arch.Niagara -> 90
  | Arch.Tilera -> 220

(* Wrap a lock with trace instrumentation: wait/acquire/release events
   timed from inside the acquiring thread, with each acquisition's
   handoff classified by the distance from the previous holder's core
   (the profiler's Table 2 mirror).  Only built when a trace sink is
   installed at creation time, so untraced runs never see the
   indirection.  The extra [Sim.now]/[Sim.self_core] calls are pure
   effects that advance no virtual time and consume no draws, so a
   traced run's timestamps are identical to an untraced one. *)
let instrumented tr (platform : Platform.t) ~n_threads (l : Lock_type.t) :
    Lock_type.t =
  let module Trace = Ssync_trace.Trace in
  let open Ssync_engine in
  let id = Trace.new_lock tr l.Lock_type.name in
  let topo = platform.Platform.topo in
  let holder_core = ref (-1) in
  let acquired_at = Array.make (max 1 n_threads) 0 in
  (* Events carry the ENGINE thread id ([Sim.self_tid], spawn order),
     not the wrapper's [~tid] argument (the workload's own numbering,
     which the harness's hashed spawn order permutes): the memory model
     and the parking sites tag their events with the engine id, and a
     Chrome track must hold ONE thread's events or its timestamps stop
     being monotone. *)
  let note_acquire ~t0 =
    let t1 = Sim.now () in
    let tid = Sim.self_tid () in
    let core = Sim.self_core () in
    let dist =
      if !holder_core < 0 then None
      else Some (Topology.distance_class topo !holder_core core)
    in
    holder_core := core;
    if tid >= 0 && tid < Array.length acquired_at then acquired_at.(tid) <- t1;
    Trace.emit tr ~ts:t1 (Trace.E_acq { tid; lock = id; wait = t1 - t0; dist })
  in
  (* [E_rel] is emitted at release ENTRY, before the underlying release
     runs: the critical section ends here ([held] is pure CS time, not
     release-protocol time), and any successor's grant is produced by an
     effect issued inside the release — so in the trace ring a lock's
     E_rel always precedes the next E_acq, which is what lets the
     invariant checker assert strict mutual exclusion.  (Emitting on
     return breaks that order for handoff protocols with post-grant
     work, e.g. MUTEX's wake syscall.) *)
  let note_release () =
    let t1 = Sim.now () in
    let etid = Sim.self_tid () in
    let held =
      if etid >= 0 && etid < Array.length acquired_at then
        t1 - acquired_at.(etid)
      else 0
    in
    Trace.emit tr ~ts:t1 (Trace.E_rel { tid = etid; lock = id; held })
  in
  {
    Lock_type.name = l.Lock_type.name;
    acquire =
      (fun ~tid ->
        let t0 = Sim.now () in
        Trace.emit tr ~ts:t0
          (Trace.E_wait { tid = Sim.self_tid (); lock = id });
        l.Lock_type.acquire ~tid;
        note_acquire ~t0);
    release =
      (fun ~tid ->
        note_release ();
        l.Lock_type.release ~tid);
    try_acquire =
      (fun ~tid ->
        let t0 = Sim.now () in
        if l.Lock_type.try_acquire ~tid then begin
          note_acquire ~t0;
          true
        end
        else false);
    acquire_robust =
      (fun ~tid ->
        let t0 = Sim.now () in
        Trace.emit tr ~ts:t0
          (Trace.E_wait { tid = Sim.self_tid (); lock = id });
        let g = l.Lock_type.acquire_robust ~tid in
        note_acquire ~t0;
        g);
    release_robust =
      (fun ~tid ->
        note_release ();
        l.Lock_type.release_robust ~tid);
    rstats = l.Lock_type.rstats;
  }

(* Instantiate [algo] in simulated memory.  [n_threads] bounds the
   thread ids that will use the lock; [home_core] places the lock's
   global lines (defaults to the first participating thread's core, the
   paper's allocation policy). *)
let create ?(home_core = 0) mem (platform : Platform.t) ~n_threads algo :
    Lock_type.t =
  let place tid = Platform.place platform tid in
  let base = ticket_backoff_base platform in
  let lock =
    match algo with
    | Tas -> Spinlocks.tas mem ~home_core ~n_threads
    | Ttas -> Spinlocks.ttas mem ~home_core ~n_threads
    | Ticket -> Spinlocks.ticket ~backoff_base:base mem ~home_core ~n_threads
    | Ticket_spin ->
        Spinlocks.ticket ~variant:Spinlocks.Ticket_spin mem ~home_core
          ~n_threads
    | Ticket_prefetchw ->
        Spinlocks.ticket ~variant:Spinlocks.Ticket_prefetchw
          ~backoff_base:base mem ~home_core ~n_threads
    | Array_lock ->
        Spinlocks.array_lock mem ~home_core ~n_slots:(max 2 n_threads)
          ~n_threads
    | Mutex -> Spinlocks.mutex mem ~home_core ~n_threads
    | Mcs -> Queue_locks.mcs mem ~home_core ~n_threads ~place
    | Clh -> Queue_locks.clh mem ~home_core ~n_threads ~place
    | Hclh -> Hierarchical.hclh mem platform ~home_core ~n_threads ~place
    | Hticket -> Hierarchical.hticket mem platform ~home_core ~n_threads ~place
  in
  match Ssync_trace.Trace.current () with
  | None -> lock
  | Some tr -> instrumented tr platform ~n_threads lock
