(* Hierarchical locks: hticket (hierarchical ticket, Dice et al.'s lock
   cohorting applied to ticket locks — the paper's footnote 3 notes the
   two are the same construction) and HCLH (its CLH counterpart,
   realized as a CLH-of-CLH cohort; the splice-based HCLH of Luchangco
   et al. has the same performance signature: waiters spin node-locally
   and the lock is handed over within a socket whenever possible).

   Structure: one global lock plus one local lock per cluster (die on
   the Opteron, socket on the Xeon).  The first thread of a cluster to
   win its local lock also takes the global lock; on release the holder
   hands over locally while local waiters exist (bounded by [max_pass]
   to preserve long-term fairness), and only then releases the global
   lock.

   Robust composition: the global lock's robust id space is the
   cluster ids, with liveness delegated to the local locks' shadows —
   a cluster is dead exactly when no live thread is engaged with its
   local lock (nobody is left to drive the cluster's global handle).
   Intra-cluster owner death recovers locally and the global lock never
   notices.  When the cluster's global *driver* dies but live local
   threads remain, the next local winner adopts the cluster's global
   handle mid-queue ([Rshadow.x_adopt]).  When a whole cluster dies,
   the other clusters excise it from the global queue; the excision
   harvests the cluster's dead in-CS holders for the EOWNERDEAD witness
   and resets the cluster's ownership flags. *)

open Ssync_platform

type inner = {
  lock : Lock_type.t;
  waiters : tid:int -> bool; (* is someone queued behind the holder? *)
  rext : Rshadow.ext; (* robust shadow probes of the local lock *)
}

let default_max_pass = 64

(* Cluster = node of the core the thread is placed on. *)
let cluster_of platform ~place tid =
  platform.Platform.topo.Topology.node_of_core (place tid)

(* First core of each cluster under the platform's placement, used to
   home each cluster's local lock on its own node. *)
let cluster_home platform cluster =
  let topo = platform.Platform.topo in
  let rec find c =
    if c >= topo.Topology.n_cores then 0
    else if topo.Topology.node_of_core c = cluster then c
    else find (c + 1)
  in
  find 0

(* [global_owned]/[passes] are created by the lock constructors (the
   global lock's removal hook must reset them, and it is built before
   the cohort record exists).  They are only read and written by the
   thread currently holding the cluster's local lock — or excising the
   cluster after its death — so plain OCaml state models node-local
   flags with no extra coherence traffic. *)
let cohort ~name ~platform ~place ?(max_pass = default_max_pass)
    ~(global : Lock_type.t) ~(global_ext : Rshadow.ext)
    ~(global_owned : bool array) ~(passes : int array)
    ~(locals : inner array) ~rstats () : Lock_type.t =
  let n_clusters = Array.length locals in
  if n_clusters = 0 then invalid_arg "cohort: no clusters";
  {
    name;
    acquire =
      (fun ~tid ->
        let c = cluster_of platform ~place tid in
        locals.(c).lock.Lock_type.acquire ~tid;
        if not global_owned.(c) then begin
          (* the global lock is acquired on behalf of the cluster *)
          global.Lock_type.acquire ~tid:c;
          global_owned.(c) <- true
        end);
    release =
      (fun ~tid ->
        let c = cluster_of platform ~place tid in
        if passes.(c) < max_pass && locals.(c).waiters ~tid then begin
          passes.(c) <- passes.(c) + 1;
          (* hand over within the cluster: the global lock stays owned *)
          locals.(c).lock.Lock_type.release ~tid
        end
        else begin
          passes.(c) <- 0;
          global_owned.(c) <- false;
          global.Lock_type.release ~tid:c;
          locals.(c).lock.Lock_type.release ~tid
        end);
    (* trylock both levels; back out of the local lock if the global one
       is taken, so a failed try leaves the cohort state untouched *)
    try_acquire =
      (fun ~tid ->
        let c = cluster_of platform ~place tid in
        if not (locals.(c).lock.Lock_type.try_acquire ~tid) then false
        else if global_owned.(c) then true
        else if global.Lock_type.try_acquire ~tid:c then begin
          global_owned.(c) <- true;
          true
        end
        else begin
          locals.(c).lock.Lock_type.release ~tid;
          false
        end);
    acquire_robust =
      (fun ~tid ->
        let c = cluster_of platform ~place tid in
        let gl = locals.(c).lock.Lock_type.acquire_robust ~tid in
        let gg =
          if global_owned.(c) then Lock_type.Clean
          else begin
            let g =
              match global_ext.Rshadow.x_phase c with
              | Rshadow.Waiting | Rshadow.Holder ->
                  (* the cluster is already in the global queue (or its
                     grant landed) but its driver died: adopt the
                     handle and keep waiting in its place *)
                  global_ext.Rshadow.x_adopt c
              | Rshadow.Out | Rshadow.Releasing ->
                  (* [Releasing] is unreachable for the ticket/CLH
                     globals (their release is atomic with its store),
                     so both mean: no outstanding handle *)
                  global.Lock_type.acquire_robust ~tid:c
            in
            global_owned.(c) <- true;
            g
          end
        in
        Lock_type.merge_grant gl gg);
    release_robust =
      (fun ~tid ->
        let c = cluster_of platform ~place tid in
        if
          passes.(c) < max_pass
          && locals.(c).rext.Rshadow.x_waiting_live ()
        then begin
          passes.(c) <- passes.(c) + 1;
          (* hand over within the cluster — but only to a live waiter:
             passing to a queue of corpses would just delay the
             inter-cluster recovery *)
          locals.(c).lock.Lock_type.release_robust ~tid
        end
        else begin
          passes.(c) <- 0;
          global_owned.(c) <- false;
          global.Lock_type.release_robust ~tid:c;
          locals.(c).lock.Lock_type.release_robust ~tid
        end);
    rstats;
  }

(* Wire a cohort's robust delegation: the global lock judges cluster
   [c] dead when no live thread is engaged with [c]'s local lock, its
   EOWNERDEAD witness for [c] is the harvest of [c]'s dead in-CS
   holders, and removing [c] from the global queue resets [c]'s
   ownership flags. *)
let cluster_hooks (locals : inner array) ~global_owned ~passes =
  let is_dead c = not (locals.(c).rext.Rshadow.x_engaged_live ()) in
  let dead_of c = locals.(c).rext.Rshadow.x_harvest () in
  let on_removed c =
    global_owned.(c) <- false;
    passes.(c) <- 0
  in
  (is_dead, dead_of, on_removed)

let hticket ?max_pass mem platform ~home_core ~n_threads ~place : Lock_type.t =
  let n_clusters = platform.Platform.topo.Topology.n_nodes in
  let stats = Lock_type.rstats_zero () in
  let locals =
    Array.init n_clusters (fun c ->
        (* intra-socket handoffs are short: spin with a small backoff *)
        let lk, waiters, rext =
          Spinlocks.ticket_ext ~backoff_base:180 ~rstats:stats mem
            ~home_core:(cluster_home platform c) ~n_ids:n_threads
        in
        { lock = lk; waiters = (fun ~tid:_ -> waiters ()); rext })
  in
  let global_owned = Array.make n_clusters false in
  let passes = Array.make n_clusters 0 in
  let is_dead, dead_of, on_removed =
    cluster_hooks locals ~global_owned ~passes
  in
  let global, _, global_ext =
    Spinlocks.ticket_ext ~rstats:stats ~is_dead ~dead_of ~on_removed mem
      ~home_core ~n_ids:n_clusters
  in
  cohort ~name:"HTICKET" ~platform ~place ?max_pass ~global ~global_ext
    ~global_owned ~passes ~locals ~rstats:stats ()

let hclh ?max_pass mem platform ~home_core ~n_threads ~place : Lock_type.t =
  let n_clusters = platform.Platform.topo.Topology.n_nodes in
  let stats = Lock_type.rstats_zero () in
  let locals =
    Array.init n_clusters (fun c ->
        let home = cluster_home platform c in
        let lk, waiters, rext =
          Queue_locks.clh_ext ~rstats:stats mem ~home_core:home ~n_threads
            ~place
        in
        { lock = lk; waiters; rext })
  in
  let global_owned = Array.make n_clusters false in
  let passes = Array.make n_clusters 0 in
  let is_dead, dead_of, on_removed =
    cluster_hooks locals ~global_owned ~passes
  in
  (* the global CLH queue is entered per-cluster, so cluster ids act as
     its thread ids *)
  let global, _, global_ext =
    Queue_locks.clh_ext ~rstats:stats ~is_dead ~dead_of ~on_removed mem
      ~home_core ~n_threads:n_clusters ~place:(fun c ->
        cluster_home platform c)
  in
  cohort ~name:"HCLH" ~platform ~place ?max_pass ~global ~global_ext
    ~global_owned ~passes ~locals ~rstats:stats ()
