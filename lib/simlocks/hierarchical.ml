(* Hierarchical locks: hticket (hierarchical ticket, Dice et al.'s lock
   cohorting applied to ticket locks — the paper's footnote 3 notes the
   two are the same construction) and HCLH (its CLH counterpart,
   realized as a CLH-of-CLH cohort; the splice-based HCLH of Luchangco
   et al. has the same performance signature: waiters spin node-locally
   and the lock is handed over within a socket whenever possible).

   Structure: one global lock plus one local lock per cluster (die on
   the Opteron, socket on the Xeon).  The first thread of a cluster to
   win its local lock also takes the global lock; on release the holder
   hands over locally while local waiters exist (bounded by [max_pass]
   to preserve long-term fairness), and only then releases the global
   lock. *)

open Ssync_platform

type inner = {
  lock : Lock_type.t;
  waiters : tid:int -> bool; (* is someone queued behind the holder? *)
}

let default_max_pass = 64

(* Cluster = node of the core the thread is placed on. *)
let cluster_of platform ~place tid =
  platform.Platform.topo.Topology.node_of_core (place tid)

(* First core of each cluster under the platform's placement, used to
   home each cluster's local lock on its own node. *)
let cluster_home platform cluster =
  let topo = platform.Platform.topo in
  let rec find c =
    if c >= topo.Topology.n_cores then 0
    else if topo.Topology.node_of_core c = cluster then c
    else find (c + 1)
  in
  find 0

let cohort ~name ~platform ~place ?(max_pass = default_max_pass)
    ~(global : Lock_type.t) ~(locals : inner array) () : Lock_type.t =
  let n_clusters = Array.length locals in
  if n_clusters = 0 then invalid_arg "cohort: no clusters";
  (* Owned/pass-count flags are only read and written by the thread
     currently holding the cluster's local lock, so plain OCaml state
     models node-local flags with no extra coherence traffic. *)
  let global_owned = Array.make n_clusters false in
  let passes = Array.make n_clusters 0 in
  {
    name;
    acquire =
      (fun ~tid ->
        let c = cluster_of platform ~place tid in
        locals.(c).lock.Lock_type.acquire ~tid;
        if not global_owned.(c) then begin
          (* the global lock is acquired on behalf of the cluster *)
          global.Lock_type.acquire ~tid:c;
          global_owned.(c) <- true
        end);
    release =
      (fun ~tid ->
        let c = cluster_of platform ~place tid in
        if passes.(c) < max_pass && locals.(c).waiters ~tid then begin
          passes.(c) <- passes.(c) + 1;
          (* hand over within the cluster: the global lock stays owned *)
          locals.(c).lock.Lock_type.release ~tid
        end
        else begin
          passes.(c) <- 0;
          global_owned.(c) <- false;
          global.Lock_type.release ~tid:c;
          locals.(c).lock.Lock_type.release ~tid
        end);
    (* trylock both levels; back out of the local lock if the global one
       is taken, so a failed try leaves the cohort state untouched *)
    try_acquire =
      (fun ~tid ->
        let c = cluster_of platform ~place tid in
        if not (locals.(c).lock.Lock_type.try_acquire ~tid) then false
        else if global_owned.(c) then true
        else if global.Lock_type.try_acquire ~tid:c then begin
          global_owned.(c) <- true;
          true
        end
        else begin
          locals.(c).lock.Lock_type.release ~tid;
          false
        end);
  }

let hticket ?max_pass mem platform ~home_core ~n_threads:_ ~place :
    Lock_type.t =
  let n_clusters = platform.Platform.topo.Topology.n_nodes in
  let global = Spinlocks.ticket mem ~home_core in
  let locals =
    Array.init n_clusters (fun c ->
        (* intra-socket handoffs are short: spin with a small backoff *)
        let lk, waiters =
          Spinlocks.ticket_ext ~backoff_base:180 mem
            ~home_core:(cluster_home platform c)
        in
        { lock = lk; waiters = (fun ~tid:_ -> waiters ()) })
  in
  cohort ~name:"HTICKET" ~platform ~place ?max_pass ~global ~locals ()

let hclh ?max_pass mem platform ~home_core ~n_threads ~place : Lock_type.t =
  let n_clusters = platform.Platform.topo.Topology.n_nodes in
  (* the global CLH queue is entered per-cluster, so cluster ids act as
     its thread ids *)
  let global =
    Queue_locks.clh mem ~home_core ~n_threads:n_clusters ~place:(fun c ->
        cluster_home platform c)
  in
  let locals =
    Array.init n_clusters (fun c ->
        let home = cluster_home platform c in
        let lk, waiters =
          Queue_locks.clh_ext mem ~home_core:home ~n_threads ~place
        in
        { lock = lk; waiters })
  in
  cohort ~name:"HCLH" ~platform ~place ?max_pass ~global ~locals ()
