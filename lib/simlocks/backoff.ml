(* Deterministic exponential backoff for simulated spin loops.  A small
   per-thread LCG de-synchronizes contenders without making simulation
   runs non-reproducible. *)

type t = {
  min_delay : int;
  max_delay : int;
  rng0 : int; (* initial LCG state, for [reset] *)
  mutable delay : int;
  mutable rng : int;
}

let create ?(min_delay = 64) ?(max_delay = 8192) ~seed () =
  let rng0 = (seed * 2654435761) land 0x3FFFFFFF in
  { min_delay; max_delay; rng0; delay = min_delay; rng = rng0 }

let next_rand t =
  t.rng <- ((t.rng * 1103515245) + 12345) land 0x3FFFFFFF;
  t.rng

(* Restore the freshly-created state (delay *and* jitter stream), so a
   reused per-thread backoff behaves exactly like a new one. *)
let reset t =
  t.delay <- t.min_delay;
  t.rng <- t.rng0

(* Next delay: current bound, jittered to [bound/2, bound), then the
   bound doubles up to [max_delay]. *)
let once t =
  let bound = t.delay in
  t.delay <- min t.max_delay (t.delay * 2);
  let half = max 1 (bound / 2) in
  half + (next_rand t mod half)
