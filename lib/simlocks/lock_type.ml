(* The common lock interface of the simulated libslock: every algorithm
   is reduced to acquire/release closures usable from inside simulated
   threads.  [tid] identifies the calling thread (0..n_threads-1) for
   algorithms that keep per-thread queue nodes or slots.

   [try_acquire] is the non-blocking entry: it succeeds only when the
   lock can be taken *immediately* and otherwise leaves no trace in the
   lock's shared state (no ticket drawn, no queue node published) — the
   spin_trylock discipline.  That makes it safe to give up: a waiter
   bounded by [acquire_timeout] never wedges the lock for later
   acquirers, even on the queue locks, whose blocking acquire cannot
   abandon a published node. *)

open Ssync_engine

type t = {
  name : string;
  acquire : tid:int -> unit;
  release : tid:int -> unit;
  try_acquire : tid:int -> bool;
      (* immediate, non-blocking; on failure the shared state is as if
         the call never happened *)
}

(* Run [f] under the lock. *)
let with_lock t ~tid f =
  t.acquire ~tid;
  let r = f () in
  t.release ~tid;
  r

(* Timed acquisition: retry [try_acquire] under capped exponential
   backoff until it succeeds or [timeout] virtual cycles elapse.
   Returns [false] on timeout, with the lock state untouched.  Bounded
   progress even when the holder is preempted or crash-stopped — the
   escape hatch the blocking [acquire] of a queue lock cannot offer. *)
let acquire_timeout t ~tid ~timeout =
  if timeout <= 0 then invalid_arg "acquire_timeout: timeout must be positive";
  if t.try_acquire ~tid then true
  else begin
    let deadline = Sim.now () + timeout in
    let b = Backoff.create ~min_delay:32 ~max_delay:4096 ~seed:(tid + 1) () in
    let rec loop () =
      if Sim.now () >= deadline then false
      else begin
        Sim.pause (min (Backoff.once b) (max 1 (deadline - Sim.now ())));
        if t.try_acquire ~tid then true else loop ()
      end
    in
    loop ()
  end

(* [with_lock_timeout t ~tid ~timeout f] runs [f] under the lock when it
   can be acquired within [timeout] cycles; [None] otherwise. *)
let with_lock_timeout t ~tid ~timeout f =
  if acquire_timeout t ~tid ~timeout then begin
    let r = f () in
    t.release ~tid;
    Some r
  end
  else None
