(* The common lock interface of the simulated libslock: every algorithm
   is reduced to acquire/release closures usable from inside simulated
   threads.  [tid] identifies the calling thread (0..n_threads-1) for
   algorithms that keep per-thread queue nodes or slots.

   [try_acquire] is the non-blocking entry: it succeeds only when the
   lock can be taken *immediately* and otherwise leaves no trace in the
   lock's shared state (no ticket drawn, no queue node published) — the
   spin_trylock discipline.  That makes it safe to give up: a waiter
   bounded by [acquire_timeout] never wedges the lock for later
   acquirers, even on the queue locks, whose blocking acquire cannot
   abandon a published node.

   [acquire_robust]/[release_robust] are the owner-death-tolerant
   entries, modeled on robust futexes: an acquisition that had to
   recover past one or more crash-stopped threads returns an
   [Owner_died] witness naming every dead thread that held the lock
   inside its critical section, so the caller can repair the protected
   state (EOWNERDEAD / mutex-consistency marking) before relying on it.
   The robust paths keep their own owner/queue shadow — the simulated
   analogue of the kernel's robust list — and are entirely separate
   code from the plain paths: a lock used only through [acquire] /
   [release] issues exactly the memory operations it did before the
   robust layer existed.  Plain and robust acquisitions must not be
   mixed on one lock instance (the plain paths do not maintain the
   shadow, just as a non-robust futex acquisition is invisible to the
   kernel's robust list). *)

open Ssync_engine

(* Outcome of a robust acquisition.  [dead] lists every crash-stopped
   thread that died while holding this lock (in its critical section or
   mid-release) and whose death this grant is the first to observe —
   each dead holder is witnessed exactly once across the lock's
   lifetime, by the acquisition that recovered past it. *)
type grant = Clean | Owner_died of { dead : int list }

let merge_grant a b =
  match (a, b) with
  | Clean, g | g, Clean -> g
  | Owner_died { dead = d1 }, Owner_died { dead = d2 } ->
      Owner_died { dead = d1 @ d2 }

(* Robustness counters, accumulated over the lock's lifetime (for the
   chaos scorecard).  Hierarchical locks share one record across the
   global and local levels, so a grant there may count once per level
   acquired. *)
type rstats = {
  mutable r_grants : int;  (* robust acquisitions granted *)
  mutable r_owner_deaths : int;  (* grants carrying an Owner_died witness *)
  mutable r_dead_holders : int;  (* dead in-CS holders recovered past *)
  mutable r_excised : int;  (* dead waiters excised from wait queues *)
  mutable r_recoveries : int;  (* recovery episodes (detection -> grant) *)
  mutable r_recovery_cycles : int;  (* total detection -> grant latency *)
}

let rstats_zero () =
  {
    r_grants = 0;
    r_owner_deaths = 0;
    r_dead_holders = 0;
    r_excised = 0;
    r_recoveries = 0;
    r_recovery_cycles = 0;
  }

type t = {
  name : string;
  acquire : tid:int -> unit;
  release : tid:int -> unit;
  try_acquire : tid:int -> bool;
      (* immediate, non-blocking; on failure the shared state is as if
         the call never happened *)
  acquire_robust : tid:int -> grant;
  release_robust : tid:int -> unit;
  rstats : rstats;
}

(* Run [f] under the lock. *)
let with_lock t ~tid f =
  t.acquire ~tid;
  let r = f () in
  t.release ~tid;
  r

(* Run [f] under the robust lock; when the grant carries an
   [Owner_died] witness, [recover] runs first — still under the lock —
   to repair the protected state the dead holders may have left
   inconsistent. *)
let with_lock_robust t ~tid ~recover f =
  (match t.acquire_robust ~tid with
  | Clean -> ()
  | Owner_died { dead } -> recover dead);
  let r = f () in
  t.release_robust ~tid;
  r

(* Timed acquisition: retry [try_acquire] under capped exponential
   backoff until it succeeds or [timeout] virtual cycles elapse.
   Returns [false] on timeout, with the lock state untouched.  Bounded
   progress even when the holder is preempted or crash-stopped — the
   escape hatch the blocking [acquire] of a queue lock cannot offer. *)
let acquire_timeout t ~tid ~timeout =
  if timeout <= 0 then invalid_arg "acquire_timeout: timeout must be positive";
  if t.try_acquire ~tid then true
  else begin
    let deadline = Sim.now () + timeout in
    let b = Backoff.create ~min_delay:32 ~max_delay:4096 ~seed:(tid + 1) () in
    let rec loop () =
      if Sim.now () >= deadline then false
      else begin
        Sim.pause (min (Backoff.once b) (max 1 (deadline - Sim.now ())));
        if t.try_acquire ~tid then true else loop ()
      end
    in
    loop ()
  end

(* [with_lock_timeout t ~tid ~timeout f] runs [f] under the lock when it
   can be acquired within [timeout] cycles; [None] otherwise. *)
let with_lock_timeout t ~tid ~timeout f =
  if acquire_timeout t ~tid ~timeout then begin
    let r = f () in
    t.release ~tid;
    Some r
  end
  else None
