(* Shadow registry for the robust lock paths: the simulated analogue of
   the kernel-side bookkeeping robust futexes rely on (the robust list
   plus the owner TID stored in the futex word), which is what lets the
   OS hand EOWNERDEAD to the next acquirer instead of wedging the lock.

   Correctness rests on two properties of the engine:

   - The engine is serial and a crash only *drops a resumption*: plain
     OCaml code between two simulated-memory effects runs atomically
     with respect to crashes and other threads.  Shadow state written
     in the same plain block as an operation's issue is therefore
     exactly consistent with that operation having taken effect (the
     memory model applies mutations at issue time), even if the issuing
     thread crashes before it resumes.

   - [Memory.peek] is a zero-cost debug read, so a value peeked in the
     same plain block as a subsequent CAS/swap/faa issue exactly
     predicts what that operation observes.  Robust paths use an honest
     costed probe ([Sim.load] etc.) for the memory traffic, then peek
     to *decide and issue* atomically — which is how the shadow stays
     in lockstep with the simulated lock words without adding a single
     line of simulated memory.

   Crash-stop is permanent ([Sim.tid_crashed] is monotone), so "owner
   is dead" is a stable property: once a recovery decision is made in a
   plain block, no later event can invalidate it. *)

open Ssync_engine

(* Where an id stands with respect to this lock.  [Releasing] covers
   release protocols with internal waits (MCS); single-operation
   releases go Holder -> Out atomically with the releasing store. *)
type phase = Out | Waiting | Holder | Releasing

type t = {
  n : int;
  eng : int array;  (* id -> engine tid (spawn order), -1 unknown *)
  phase : phase array;
  mutable pending : int list;
      (* dead holders recovered past but not yet witnessed by a grant *)
  stats : Lock_type.rstats;
  is_dead : (int -> bool) option;
      (* override for ids that are not thread ids (cluster ids) *)
  dead_of : int -> int list;
      (* id -> the real dead tids an [Owner_died] witness should name *)
  on_removed : int -> unit;
      (* fired when an id is excised or its death claimed — lets a
         cohort reset per-cluster ownership flags *)
}

let create ?stats ?is_dead ?(dead_of = fun i -> [ i ])
    ?(on_removed = fun _ -> ()) n =
  let stats = match stats with Some s -> s | None -> Lock_type.rstats_zero () in
  {
    n;
    eng = Array.make (max 1 n) (-1);
    phase = Array.make (max 1 n) Out;
    pending = [];
    stats;
    is_dead;
    dead_of;
    on_removed;
  }

(* Record the calling thread's engine tid for [id]: crash schedules are
   keyed by spawn order ([Sim.tid_crashed]), while locks speak the
   workload's thread numbering.  First robust call wins; ids never
   migrate between engine threads. *)
let register sh id = if sh.eng.(id) < 0 then sh.eng.(id) <- Sim.self_tid ()

(* Is [id] crash-stopped?  Ids that never made a robust call own
   nothing and report alive.  Cost-free (oracle query). *)
let dead sh id =
  id >= 0 && id < sh.n
  &&
  match sh.is_dead with
  | Some f -> f id
  | None ->
      let e = sh.eng.(id) in
      e >= 0 && Sim.tid_crashed e

(* First observation of a recovery condition: start the episode's
   detection -> grant latency clock. *)
let detect det = if !det < 0 then det := Sim.now ()

(* Remove a dead *waiter* from the wait structure's shadow. *)
let excise sh id =
  sh.phase.(id) <- Out;
  sh.stats.r_excised <- sh.stats.r_excised + 1;
  sh.on_removed id

(* Claim a dead *holder*: mark it gone and queue its identity for the
   next grant's [Owner_died] witness. *)
let claim_holder sh id =
  sh.phase.(id) <- Out;
  sh.pending <- sh.pending @ sh.dead_of id;
  sh.stats.r_dead_holders <- sh.stats.r_dead_holders + 1;
  sh.on_removed id

(* Claim every dead in-CS holder this shadow currently knows of,
   returning their witness tids without queueing them — the hook a
   hierarchical global lock uses as [dead_of] for a whole cluster. *)
let harvest_dead_holders sh =
  let out = ref [] in
  for id = 0 to sh.n - 1 do
    (match sh.phase.(id) with
    | Holder | Releasing ->
        if dead sh id then begin
          sh.phase.(id) <- Out;
          sh.stats.r_dead_holders <- sh.stats.r_dead_holders + 1;
          out := !out @ sh.dead_of id;
          sh.on_removed id
        end
    | Out | Waiting -> ());
  done;
  !out

(* Finalize a robust acquisition: count it, close the recovery episode
   if one was opened, and surface any pending dead holders as the
   grant's witness. *)
let grant sh det =
  sh.stats.r_grants <- sh.stats.r_grants + 1;
  if !det >= 0 then begin
    sh.stats.r_recoveries <- sh.stats.r_recoveries + 1;
    sh.stats.r_recovery_cycles <-
      sh.stats.r_recovery_cycles + (Sim.now () - !det)
  end;
  match sh.pending with
  | [] -> Lock_type.Clean
  | dead ->
      sh.pending <- [];
      sh.stats.r_owner_deaths <- sh.stats.r_owner_deaths + 1;
      Lock_type.Owner_died { dead }

(* Is any live id still queued?  (The cohort release's "hand over
   locally?" probe: passing to a queue of corpses only delays the
   inter-cluster recovery.) *)
let waiting_live sh =
  let rec go i =
    i < sh.n && ((sh.phase.(i) = Waiting && not (dead sh i)) || go (i + 1))
  in
  go 0

(* Is any live id engaged with the lock at all (waiting, holding or
   releasing)?  A cluster with no live engaged thread is dead as far as
   the global lock is concerned: nobody is left to drive its global
   handle. *)
let engaged_live sh =
  let rec go i =
    i < sh.n && ((sh.phase.(i) <> Out && not (dead sh i)) || go (i + 1))
  in
  go 0

(* Capabilities a robust lock exposes beyond [Lock_type.t], needed by
   the hierarchical cohorts: query an id's shadow phase, resume the
   wait for an id that is already enqueued (a new cluster
   representative adopting the global handle of a dead one), and the
   liveness probes above. *)
type ext = {
  x_phase : int -> phase;
  x_adopt : int -> Lock_type.grant;
      (* resume waiting for an id already in the wait structure (phase
         [Waiting]), or consume a grant that already landed (phase
         [Holder]); counts as a recovery episode *)
  x_waiting_live : unit -> bool;
  x_engaged_live : unit -> bool;
  x_harvest : unit -> int list;
}
