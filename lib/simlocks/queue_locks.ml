(* The queue locks of libslock: MCS and CLH.  Each waiter spins on its
   own cache line; the globally shared line (the tail pointer) is only
   touched once per acquisition, which is what makes these locks
   resilient to extreme contention (section 6.1.2).

   Robust paths (the genuinely hard part of owner-death recovery): a
   dead thread can die *anywhere* in the queue — holding the lock, in
   the middle of the wait list, at the tail, or half-enqueued — and the
   survivors must excise it hand-over-hand without breaking the chain.
   The shadow ([Rshadow] plus per-lock predecessor maps) mirrors the
   queue exactly because every link mutation is recorded in the same
   plain block as the memory operation that publishes it. *)

open Ssync_coherence
open Ssync_engine

(* ------------------------------ MCS ------------------------------ *)
(* Per-thread queue node = (next, locked), each on its own line homed at
   the thread's core so the spin is node-local.  The tail word holds
   tid+1 (0 = nil).

   Robust queue discipline: [pred_of] mirrors each waiter's
   predecessor (recorded with the tail swap), [ready] flips when the
   waiter's [locked] flag store has issued (so a granter never has its
   grant overwritten by the grantee's own initialization).  Waiters
   walk their predecessor chain: dead waiting middles are excised and
   the chain spliced past them; a dead holder (or a thread dead
   mid-release) is claimed, making the first live waiter behind the
   corpse prefix the new holder.  The releaser walks forward: dead
   successors are excised (fixing the tail when the corpse was last),
   and the grant goes to the first live one. *)
let mcs mem ~home_core ~n_threads ~place : Lock_type.t =
  if n_threads <= 0 then invalid_arg "mcs: n_threads must be positive";
  let tail = Memory.alloc ~home_core mem in
  let next = Array.init n_threads (fun i -> Memory.alloc ~home_core:(place i) mem) in
  let locked = Array.init n_threads (fun i -> Memory.alloc ~home_core:(place i) mem) in
  let sh = Rshadow.create n_threads in
  let pred_of = Array.make n_threads (-1) in
  let ready = Array.make n_threads false in
  (* the unique still-queued successor of [t], if any *)
  let succ_of t =
    let rec go i =
      if i >= n_threads then None
      else if pred_of.(i) = t && sh.Rshadow.phase.(i) = Rshadow.Waiting then
        Some i
      else go (i + 1)
    in
    go 0
  in
  (* Hand-over-hand walk of [tid]'s predecessor chain: excise dead
     waiting middles (splicing the chain and the simulated next-link
     past them), claim a dead holder.  All shadow mutations happen in
     one plain block, atomically with the splice store's issue. *)
  let scan_preds ~tid det =
    let rec walk p acc =
      if p < 0 then ()
      else if not (Rshadow.dead sh p) then splice acc p
      else
        match sh.Rshadow.phase.(p) with
        | Rshadow.Waiting -> walk pred_of.(p) (p :: acc)
        | Rshadow.Holder | Rshadow.Releasing ->
            (* the holder (or a mid-release holder whose grant never
               issued) died: the first live waiter behind the corpse
               prefix becomes the holder *)
            Rshadow.detect det;
            List.iter
              (fun d ->
                Rshadow.excise sh d;
                pred_of.(d) <- -1)
              acc;
            Rshadow.claim_holder sh p;
            pred_of.(tid) <- -1;
            sh.Rshadow.phase.(tid) <- Rshadow.Holder
        | Rshadow.Out -> () (* transient: its grant is being handed on *)
    and splice acc p =
      match acc with
      | [] -> ()
      | dead ->
          Rshadow.detect det;
          List.iter
            (fun d ->
              Rshadow.excise sh d;
              pred_of.(d) <- -1)
            dead;
          pred_of.(tid) <- p;
          (* publish the spliced link so [p]'s release finds us *)
          Sim.store next.(p) (tid + 1)
    in
    walk pred_of.(tid) []
  in
  let acquire_robust ~tid =
    Rshadow.register sh tid;
    let det = ref (-1) in
    Sim.store next.(tid) 0;
    ready.(tid) <- false;
    (* the peek decides empty-vs-queued in the same block the tail swap
       issues, so the shadow matches the swap's outcome exactly *)
    let pv = Memory.peek mem tail in
    if pv = 0 then begin
      pred_of.(tid) <- -1;
      sh.Rshadow.phase.(tid) <- Rshadow.Holder;
      ignore (Sim.swap tail (tid + 1));
      Rshadow.grant sh det
    end
    else begin
      pred_of.(tid) <- pv - 1;
      sh.Rshadow.phase.(tid) <- Rshadow.Waiting;
      ignore (Sim.swap tail (tid + 1));
      ready.(tid) <- true;
      Sim.store locked.(tid) 1;
      Sim.store next.(pv - 1) (tid + 1);
      let rec wait () =
        ignore (Sim.load locked.(tid));
        if sh.Rshadow.phase.(tid) = Rshadow.Holder then Rshadow.grant sh det
        else begin
          scan_preds ~tid det;
          if sh.Rshadow.phase.(tid) = Rshadow.Holder then Rshadow.grant sh det
          else begin
            Sim.pause 6;
            wait ()
          end
        end
      in
      wait ()
    end
  in
  let release_robust ~tid =
    sh.Rshadow.phase.(tid) <- Rshadow.Releasing;
    ignore (Sim.load next.(tid));
    (* honest successor read above; the shadow below is exact *)
    let rec handoff () =
      match succ_of tid with
      | Some u when Rshadow.dead sh u ->
          Rshadow.excise sh u;
          (match succ_of u with
          | Some x -> pred_of.(x) <- tid
          | None ->
              (* the corpse was the tail: pull the tail back to us so
                 the queue can close (guaranteed: peeked same block) *)
              let tv = Memory.peek mem tail in
              if tv = u + 1 then
                ignore (Sim.cas tail ~expected:tv ~desired:(tid + 1)));
          pred_of.(u) <- -1;
          handoff ()
      | Some u ->
          if not ready.(u) then begin
            (* successor still initializing its node: wait for its
               locked store, as the plain lock's ordering does *)
            ignore (Sim.load next.(tid));
            Sim.pause 6;
            handoff ()
          end
          else begin
            sh.Rshadow.phase.(u) <- Rshadow.Holder;
            pred_of.(u) <- -1;
            sh.Rshadow.phase.(tid) <- Rshadow.Out;
            Sim.store locked.(u) 0
          end
      | None ->
          let tv = Memory.peek mem tail in
          if tv = tid + 1 then begin
            sh.Rshadow.phase.(tid) <- Rshadow.Out;
            ignore (Sim.cas tail ~expected:tv ~desired:0)
          end
          else begin
            (* someone is mid-enqueue: its shadow link appears with its
               tail swap; poll until it shows *)
            ignore (Sim.load next.(tid));
            Sim.pause 6;
            handoff ()
          end
    in
    handoff ()
  in
  {
    name = "MCS";
    acquire =
      (fun ~tid ->
        Sim.store next.(tid) 0;
        let prev = Sim.swap tail (tid + 1) in
        if prev <> 0 then begin
          Sim.store locked.(tid) 1;
          Sim.store next.(prev - 1) (tid + 1);
          if Sim.load locked.(tid) = 1 then
            ignore (Sim.spin_load locked.(tid) ~while_:1 ~poll:6)
        end);
    release =
      (fun ~tid ->
        let successor = Sim.load next.(tid) in
        if successor = 0 then begin
          if not (Sim.cas tail ~expected:(tid + 1) ~desired:0) then begin
            (* someone is in the middle of enqueuing: wait for the link *)
            let rec wait s =
              if s = 0 then wait (Sim.spin_load next.(tid) ~while_:0 ~poll:6)
              else Sim.store locked.(s - 1) 0
            in
            wait (Sim.load next.(tid))
          end
        end
        else Sim.store locked.(successor - 1) 0);
    (* a published queue node cannot be abandoned, so only enqueue when
       the queue is empty: CAS nil -> our node *)
    try_acquire =
      (fun ~tid ->
        Sim.store next.(tid) 0;
        Sim.cas tail ~expected:0 ~desired:(tid + 1));
    acquire_robust;
    release_robust;
    rstats = sh.Rshadow.stats;
  }

(* ------------------------------ CLH ------------------------------ *)
(* Implicit queue: each thread enqueues a node whose single word means
   "busy"; it spins on its *predecessor's* node and recycles that node
   for its next acquisition.  The tail word holds node_addr+1 (0 would
   be a valid address).

   Robust queue discipline: [node_owner] maps a node address to the id
   that last enqueued it and [pred_tid] mirrors each waiter's
   predecessor id (captured with the tail swap).  A waiter whose
   predecessor died waiting adopts the predecessor's own predecessor
   (hand-over-hand; the corpse's node is abandoned).  A waiter whose
   predecessor died holding claims the lock — the dead holder's node
   stays busy but is recycled by the claimant's release exactly as the
   plain protocol would recycle a released one. *)

type clh_state = { mutable mine : Memory.addr; mutable pred : Memory.addr }

(* Returns the lock, a [waiters] probe for the cohort locks (while
   [tid] holds the lock, someone queues behind it iff the tail moved
   past its node), and the robust extension.  [is_dead] / [dead_of] /
   [on_removed] retarget the robust id space when the ids are not
   thread ids (a cohort's global lock over cluster ids). *)
let clh_ext ?rstats ?is_dead ?dead_of ?on_removed mem ~home_core ~n_threads
    ~place : Lock_type.t * (tid:int -> bool) * Rshadow.ext =
  if n_threads <= 0 then invalid_arg "clh: n_threads must be positive";
  let dummy = Memory.alloc ~home_core mem in
  (* dummy starts "free" (0) *)
  let tail = Memory.alloc ~home_core ~value:(dummy + 1) mem in
  let states =
    Array.init n_threads (fun i ->
        { mine = Memory.alloc ~home_core:(place i) mem; pred = -1 })
  in
  let sh = Rshadow.create ?stats:rstats ?is_dead ?dead_of ?on_removed n_threads in
  let node_owner : (Memory.addr, int) Hashtbl.t = Hashtbl.create 16 in
  let pred_tid = Array.make n_threads (-1) in
  let rec wait_robust ~id det =
    let st = states.(id) in
    ignore (Sim.load st.pred);
    if Memory.peek mem st.pred = 0 then begin
      sh.Rshadow.phase.(id) <- Rshadow.Holder;
      Rshadow.grant sh det
    end
    else begin
      let p = pred_tid.(id) in
      if p >= 0 && Rshadow.dead sh p then begin
        Rshadow.detect det;
        match sh.Rshadow.phase.(p) with
        | Rshadow.Holder | Rshadow.Releasing ->
            (* dead holder: treat its busy node as released; it is
               recycled by our own release, like any released node *)
            Rshadow.claim_holder sh p;
            sh.Rshadow.phase.(id) <- Rshadow.Holder;
            Rshadow.grant sh det
        | Rshadow.Waiting ->
            (* dead waiting predecessor: adopt its predecessor; the
               corpse's node is abandoned (never freed) *)
            Rshadow.excise sh p;
            st.pred <- states.(p).pred;
            pred_tid.(id) <- pred_tid.(p);
            wait_robust ~id det
        | Rshadow.Out ->
            (* released just now: the 0 shows on the next probe *)
            Sim.pause 6;
            wait_robust ~id det
      end
      else begin
        Sim.pause 6;
        wait_robust ~id det
      end
    end
  in
  let acquire_robust ~tid =
    Rshadow.register sh tid;
    let det = ref (-1) in
    let st = states.(tid) in
    Hashtbl.replace node_owner st.mine tid;
    Sim.store st.mine 1;
    (* the peek predicts the swap's result, so the predecessor shadow
       is recorded atomically with the enqueue *)
    let pv = Memory.peek mem tail in
    let prev = pv - 1 in
    st.pred <- prev;
    pred_tid.(tid) <-
      (match Hashtbl.find_opt node_owner prev with Some o -> o | None -> -1);
    sh.Rshadow.phase.(tid) <- Rshadow.Waiting;
    ignore (Sim.swap tail (st.mine + 1));
    wait_robust ~id:tid det
  in
  let release_robust ~tid =
    let st = states.(tid) in
    sh.Rshadow.phase.(tid) <- Rshadow.Out;
    Sim.store st.mine 0;
    (* recycle the predecessor's node *)
    st.mine <- st.pred;
    st.pred <- -1;
    pred_tid.(tid) <- -1
  in
  let lock : Lock_type.t =
    {
      name = "CLH";
      acquire =
        (fun ~tid ->
          let st = states.(tid) in
          Sim.store st.mine 1;
          let prev = Sim.swap tail (st.mine + 1) - 1 in
          st.pred <- prev;
          if Sim.load prev = 1 then
            ignore (Sim.spin_load prev ~while_:1 ~poll:6));
      release =
        (fun ~tid ->
          let st = states.(tid) in
          Sim.store st.mine 0;
          (* recycle the predecessor's node *)
          st.mine <- st.pred;
          st.pred <- -1);
      (* enqueue only behind a node already free (lock idle, no queue):
         the node stays private until the tail CAS succeeds, so a failed
         try leaves nothing for later acquirers to spin on *)
      try_acquire =
        (fun ~tid ->
          let st = states.(tid) in
          Sim.store st.mine 1;
          let cur = Sim.load tail in
          let prev = cur - 1 in
          if Sim.load prev = 0
             && Sim.cas tail ~expected:cur ~desired:(st.mine + 1)
          then begin
            st.pred <- prev;
            true
          end
          else begin
            (* unpublished: reset our node and walk away *)
            Sim.store st.mine 0;
            false
          end);
      acquire_robust;
      release_robust;
      rstats = sh.Rshadow.stats;
    }
  in
  let waiters ~tid = Sim.load tail <> states.(tid).mine + 1 in
  let ext =
    {
      Rshadow.x_phase = (fun id -> sh.Rshadow.phase.(id));
      x_adopt =
        (fun id ->
          let det = ref (Sim.now ()) in
          if sh.Rshadow.phase.(id) = Rshadow.Holder then Rshadow.grant sh det
          else wait_robust ~id det);
      x_waiting_live = (fun () -> Rshadow.waiting_live sh);
      x_engaged_live = (fun () -> Rshadow.engaged_live sh);
      x_harvest = (fun () -> Rshadow.harvest_dead_holders sh);
    }
  in
  (lock, waiters, ext)

let clh mem ~home_core ~n_threads ~place : Lock_type.t =
  let lock, _, _ = clh_ext mem ~home_core ~n_threads ~place in
  lock
