(* The queue locks of libslock: MCS and CLH.  Each waiter spins on its
   own cache line; the globally shared line (the tail pointer) is only
   touched once per acquisition, which is what makes these locks
   resilient to extreme contention (section 6.1.2). *)

open Ssync_coherence
open Ssync_engine

(* ------------------------------ MCS ------------------------------ *)
(* Per-thread queue node = (next, locked), each on its own line homed at
   the thread's core so the spin is node-local.  The tail word holds
   tid+1 (0 = nil). *)
let mcs mem ~home_core ~n_threads ~place : Lock_type.t =
  if n_threads <= 0 then invalid_arg "mcs: n_threads must be positive";
  let tail = Memory.alloc ~home_core mem in
  let next = Array.init n_threads (fun i -> Memory.alloc ~home_core:(place i) mem) in
  let locked = Array.init n_threads (fun i -> Memory.alloc ~home_core:(place i) mem) in
  {
    name = "MCS";
    acquire =
      (fun ~tid ->
        Sim.store next.(tid) 0;
        let prev = Sim.swap tail (tid + 1) in
        if prev <> 0 then begin
          Sim.store locked.(tid) 1;
          Sim.store next.(prev - 1) (tid + 1);
          if Sim.load locked.(tid) = 1 then
            ignore (Sim.spin_load locked.(tid) ~while_:1 ~poll:6)
        end);
    release =
      (fun ~tid ->
        let successor = Sim.load next.(tid) in
        if successor = 0 then begin
          if not (Sim.cas tail ~expected:(tid + 1) ~desired:0) then begin
            (* someone is in the middle of enqueuing: wait for the link *)
            let rec wait s =
              if s = 0 then wait (Sim.spin_load next.(tid) ~while_:0 ~poll:6)
              else Sim.store locked.(s - 1) 0
            in
            wait (Sim.load next.(tid))
          end
        end
        else Sim.store locked.(successor - 1) 0);
    (* a published queue node cannot be abandoned, so only enqueue when
       the queue is empty: CAS nil -> our node *)
    try_acquire =
      (fun ~tid ->
        Sim.store next.(tid) 0;
        Sim.cas tail ~expected:0 ~desired:(tid + 1));
  }

(* ------------------------------ CLH ------------------------------ *)
(* Implicit queue: each thread enqueues a node whose single word means
   "busy"; it spins on its *predecessor's* node and recycles that node
   for its next acquisition.  The tail word holds node_addr+1 (0 would
   be a valid address). *)

type clh_state = { mutable mine : Memory.addr; mutable pred : Memory.addr }

(* Returns the lock plus a [waiters] probe for the cohort locks: while
   [tid] holds the lock, someone queues behind it iff the tail moved
   past its node. *)
let clh_ext mem ~home_core ~n_threads ~place : Lock_type.t * (tid:int -> bool)
    =
  if n_threads <= 0 then invalid_arg "clh: n_threads must be positive";
  let dummy = Memory.alloc ~home_core mem in
  (* dummy starts "free" (0) *)
  let tail = Memory.alloc ~home_core ~value:(dummy + 1) mem in
  let states =
    Array.init n_threads (fun i ->
        { mine = Memory.alloc ~home_core:(place i) mem; pred = -1 })
  in
  let lock : Lock_type.t =
    {
      name = "CLH";
      acquire =
        (fun ~tid ->
          let st = states.(tid) in
          Sim.store st.mine 1;
          let prev = Sim.swap tail (st.mine + 1) - 1 in
          st.pred <- prev;
          if Sim.load prev = 1 then
            ignore (Sim.spin_load prev ~while_:1 ~poll:6));
      release =
        (fun ~tid ->
          let st = states.(tid) in
          Sim.store st.mine 0;
          (* recycle the predecessor's node *)
          st.mine <- st.pred;
          st.pred <- -1);
      (* enqueue only behind a node already free (lock idle, no queue):
         the node stays private until the tail CAS succeeds, so a failed
         try leaves nothing for later acquirers to spin on *)
      try_acquire =
        (fun ~tid ->
          let st = states.(tid) in
          Sim.store st.mine 1;
          let cur = Sim.load tail in
          let prev = cur - 1 in
          if Sim.load prev = 0
             && Sim.cas tail ~expected:cur ~desired:(st.mine + 1)
          then begin
            st.pred <- prev;
            true
          end
          else begin
            (* unpublished: reset our node and walk away *)
            Sim.store st.mine 0;
            false
          end);
    }
  in
  let waiters ~tid = Sim.load tail <> states.(tid).mine + 1 in
  (lock, waiters)

let clh mem ~home_core ~n_threads ~place : Lock_type.t =
  fst (clh_ext mem ~home_core ~n_threads ~place)
