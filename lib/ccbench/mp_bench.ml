(* Message-passing benchmarks of section 6.2: one-to-one latency by
   distance (Figure 9) and client-server throughput (Figure 10). *)

open Ssync_platform
open Ssync_engine
open Ssync_simmp

type one_to_one = { one_way : float; round_trip : float }

(* Figure 9: two cores exchange messages; one-way latency is the mean
   send-to-receive delay, round-trip the full ping-pong cycle. *)
let one_to_one ?(rounds = 100) ?prefetchw pid (distance : Arch.distance) :
    one_to_one option =
  let p = Platform.get pid in
  match Topology.pair_at_distance p.Platform.topo distance with
  | None -> None
  | Some (a_core, b_core) ->
      Sim.serial_fallback ~policy_key:("mp-one:" ^ Arch.platform_name pid)
      @@ fun () ->
      let sim = Sim.create p in
      let mem = Sim.memory sim in
      let ab = Channel.create ?prefetchw mem p ~sender_core:a_core ~receiver_core:b_core in
      let ba = Channel.create ?prefetchw mem p ~sender_core:b_core ~receiver_core:a_core in
      let send_times = Array.make rounds 0 in
      let recv_times = Array.make rounds 0 in
      let rt_total = ref 0 in
      Sim.spawn sim ~core:a_core (fun () ->
          for i = 0 to rounds - 1 do
            let t0 = Sim.now () in
            send_times.(i) <- t0;
            Channel.send ab i;
            ignore (Channel.recv ba);
            rt_total := !rt_total + (Sim.now () - t0)
          done);
      Sim.spawn sim ~core:b_core (fun () ->
          for i = 0 to rounds - 1 do
            let v = Channel.recv ab in
            recv_times.(i) <- Sim.now ();
            Channel.send ba v
          done);
      ignore (Sim.run sim);
      let ow_total = ref 0 in
      for i = 0 to rounds - 1 do
        ow_total := !ow_total + (recv_times.(i) - send_times.(i))
      done;
      Some
        {
          one_way = float_of_int !ow_total /. float_of_int rounds;
          round_trip = float_of_int !rt_total /. float_of_int rounds;
        }

type cs_mode = One_way | Round_trip

(* Figure 10: total messages served per second by a single server as the
   client count grows.  In one-way mode clients stream requests; in
   round-trip mode each client blocks for the response. *)
let client_server ?(duration = 400_000) pid mode ~clients : float =
  let p = Platform.get pid in
  if clients + 1 > Platform.n_cores p then
    invalid_arg "Mp_bench.client_server: too many clients";
  Sim.serial_fallback ~policy_key:("mp-cs:" ^ Arch.platform_name pid)
  @@ fun () ->
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let server_core = Platform.place p 0 in
  let client_cores = Array.init clients (fun i -> Platform.place p (i + 1)) in
  let cs = Client_server.create mem p ~server_core ~client_cores in
  let served = ref 0 in
  let b = Sim.make_barrier (clients + 1) in
  Sim.spawn sim ~core:server_core (fun () ->
      Sim.await b;
      let deadline = Sim.now () + duration in
      while Sim.now () < deadline do
        match Client_server.try_recv_any cs with
        | Some (i, v) ->
            incr served;
            if mode = Round_trip then Client_server.respond cs i v
        | None -> Sim.pause 30
      done);
  for i = 0 to clients - 1 do
    Sim.spawn sim ~core:client_cores.(i) (fun () ->
        Sim.await b;
        let deadline = Sim.now () + duration in
        while Sim.now () < deadline do
          match mode with
          | One_way -> Client_server.send_request cs ~client:i 42
          | Round_trip -> ignore (Client_server.request cs ~client:i 42)
        done)
  done;
  (* clients may block sending to a stopped server: bound the run *)
  ignore (Sim.run sim ~until:(duration * 4));
  Platform.mops p ~ops:!served ~cycles:duration

(* Section 5.3's claim: prefetchw makes Opteron message passing up to
   2.5x faster.  Returns (plain round-trip, prefetchw round-trip). *)
let opteron_prefetchw_speedup () : float * float =
  let get pfw =
    match one_to_one ~prefetchw:pfw Arch.Opteron Arch.Two_hops with
    | Some r -> r.round_trip
    | None -> nan
  in
  (get false, get true)
