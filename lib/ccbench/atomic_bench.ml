(* The atomic-operation stress test of section 5.4 (Figure 4): every
   thread repeatedly performs one atomic operation on a single shared
   location, pausing after each call long enough to prevent local "long
   runs" (the pause is proportional to the operation's own latency, as
   in the paper's footnote). *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine

type op_kind =
  | Op_cas      (* raw CAS, usually failing under contention *)
  | Op_tas      (* raw TAS, not eventually-successful *)
  | Op_cas_fai  (* fetch-and-increment built from a CAS retry loop *)
  | Op_swap
  | Op_fai

let op_kind_name = function
  | Op_cas -> "CAS"
  | Op_tas -> "TAS"
  | Op_cas_fai -> "CAS based FAI"
  | Op_swap -> "SWAP"
  | Op_fai -> "FAI"

let all_op_kinds = [ Op_cas; Op_tas; Op_cas_fai; Op_swap; Op_fai ]

(* On the Niagara, FAI and SWAP have no hardware implementation and are
   CAS-based (section 5.4); their latency is the CAS-loop's. *)
let effective_kind pid kind =
  match (pid, kind) with
  | (Arch.Niagara, Op_swap) -> Op_cas_fai
  | (Arch.Niagara, Op_fai) -> Op_cas_fai
  | _ -> kind

(* One completed call of [kind] on [a]; returns when the call (and any
   internal CAS retries) finished. *)
let perform kind a =
  match kind with
  | Op_cas ->
      (* expected value deliberately stale: mostly failing, like the
         paper's CAS row *)
      ignore (Sim.cas a ~expected:1 ~desired:1)
  | Op_tas -> ignore (Sim.tas a)
  | Op_swap -> ignore (Sim.swap a 1)
  | Op_fai -> ignore (Sim.fai a)
  | Op_cas_fai ->
      (* the CAS returns the observed value, so a failed attempt seeds
         the next expected value from its own coherence transaction —
         re-loading would observe the line at the load's probe time and
         pay (and serialize on) a second transfer per retry *)
      let rec retry old =
        let seen = Sim.cas_fetch a ~expected:old ~desired:(old + 1) in
        if seen <> old then retry seen
      in
      retry (Sim.load a)

(* Throughput of [kind] with [threads] threads on one location. *)
let throughput pid kind ~threads ~duration : Harness.result =
  let p = Platform.get pid in
  let kind = effective_kind pid kind in
  let local_work = Platform.local_work_for p ~threads in
  Harness.run p ~threads ~duration
    ~setup:(fun mem -> Memory.alloc ~home_core:(Platform.place p 0) mem)
    ~body:(fun a _mem ~tid:_ ~deadline ->
      let n = ref 0 in
      let frame = max 2 (local_work / 8) in
      while Sim.now () < deadline do
        let t0 = Sim.now () in
        perform kind a;
        let dt = Sim.now () - t0 in
        (* loop overhead plus the anti-long-run pause, proportional to
           the operation's own latency (paper footnote 8) *)
        Sim.pause (frame + (dt / 2));
        incr n
      done;
      !n)

(* The full Figure 4 sweep: throughput (Mops/s) for each op kind at each
   thread count. *)
let figure4 ?(duration = 400_000) pid ~thread_counts :
    (op_kind * (int * float) list) list =
  List.map
    (fun kind ->
      ( kind,
        List.map
          (fun threads ->
            let r = throughput pid kind ~threads ~duration in
            (threads, r.Harness.mops))
          thread_counts ))
    all_op_kinds
