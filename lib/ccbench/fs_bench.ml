(* False-sharing microbenchmark (the layout experiment the multi-word
   memory model exists for): every thread hammers a word that no other
   thread ever touches, under two layouts of the same word array.

   - [Padded]: one word per cache line ({!Memory.alloc_n}) — the layout
     every paper benchmark uses.  After the first exclusive acquisition
     each thread's line stays Modified in its own cache, so the steady
     state is all local hits whatever the thread count.

   - [Packed]: [Topology.line_words] words per line
     ({!Memory.alloc_packed}).  The data is still thread-private, but
     the *lines* are shared: every update invalidates the other
     residents of the line and queues on the line's occupancy and the
     interconnect, so logically contention-free code degrades exactly
     like a contended shared counter — false sharing.

   Two per-thread workloads, both write-only on their own word:
   [Counter] is one atomic increment per iteration (a CAS retry loop on
   the Niagara, which has no hardware FAI — the loop resolves in one
   attempt since nobody else writes the word); [Spinlock] is a private
   TAS lock's acquire/release pair, the classic victim of a lock table
   packed without padding. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine

type layout = Padded | Packed

let layout_name = function Padded -> "padded" | Packed -> "packed"
let all_layouts = [ Padded; Packed ]

type workload = Counter | Spinlock

let workload_name = function Counter -> "counter" | Spinlock -> "lock"
let all_workloads = [ Counter; Spinlock ]

(* One increment of the thread's own counter: hardware FAI where it
   exists, the CAS loop where it does not (section 5.4). *)
let increment pid a =
  match pid with
  | Arch.Niagara ->
      let rec retry old =
        let seen = Sim.cas_fetch a ~expected:old ~desired:(old + 1) in
        if seen <> old then retry seen
      in
      retry (Sim.load a)
  | _ -> ignore (Sim.fai a)

let throughput pid workload layout ~threads ~duration : Harness.result =
  let p = Platform.get pid in
  let local_work = Platform.local_work_for p ~threads in
  Harness.run p ~threads ~duration
    ~setup:(fun mem ->
      let home_core = Platform.place p 0 in
      match layout with
      | Padded -> Memory.alloc_n ~home_core mem threads
      | Packed -> Memory.alloc_packed ~home_core mem threads)
    ~body:(fun base _mem ~tid ~deadline ->
      let a = base + tid in
      let n = ref 0 in
      let frame = max 2 (local_work / 8) in
      while Sim.now () < deadline do
        (match workload with
        | Counter -> increment pid a
        | Spinlock ->
            (* private lock: the TAS wins unless a false-sharing
               transfer is in flight, but under [Packed] winning still
               costs the line round trip *)
            while not (Sim.tas a) do
              Sim.pause 2
            done;
            Sim.pause 5;
            Sim.store a 0);
        Sim.pause frame;
        incr n
      done;
      !n)

(* The full sweep: for each workload, padded-vs-packed throughput
   (Mops/s) at each thread count. *)
let sweep ?(duration = 200_000) pid ~thread_counts :
    (workload * layout * (int * float) list) list =
  List.concat_map
    (fun workload ->
      List.map
        (fun layout ->
          ( workload,
            layout,
            List.map
              (fun threads ->
                let r = throughput pid workload layout ~threads ~duration in
                (threads, r.Harness.mops))
              thread_counts ))
        all_layouts)
    all_workloads
