(* The lock stress tests of section 6.1: throughput under extreme to
   very low contention (Figures 5, 7, 8), uncontested acquisition
   latency by previous-holder distance (Figure 6), and the ticket-lock
   variant comparison on the Opteron (Figure 3). *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_simlocks

(* Deterministic per-thread PRNG for lock selection. *)
let lcg_next s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

(* Throughput of [algo]: each thread acquires a random one of [n_locks]
   locks, reads and writes the corresponding data line, releases, then
   pauses so the release is visible before it retries (section 6.1.2).
   [faults] injects deterministic preemption/jitter/crash interference
   (the lock-holder-preemption experiment); default none. *)
let throughput ?faults ?(duration = 400_000) ?(cs_extra = 0) pid algo ~threads
    ~n_locks : Harness.result =
  let p = Platform.get pid in
  let local_work = Platform.local_work_for p ~threads in
  Harness.run ?faults p ~threads ~duration
    ~setup:(fun mem ->
      let home = Platform.place p 0 in
      let locks =
        Array.init n_locks (fun _ ->
            Simlock.create ~home_core:home mem p ~n_threads:threads algo)
      in
      let data = Array.init n_locks (fun _ -> Memory.alloc ~home_core:home mem) in
      (locks, data))
    ~body:(fun (locks, data) _mem ~tid ~deadline ->
      let n = ref 0 in
      let seed = ref (lcg_next (tid + 7)) in
      while Sim.now () < deadline do
        seed := lcg_next !seed;
        let i = !seed mod n_locks in
        let lock = locks.(i) in
        lock.Lock_type.acquire ~tid;
        (* the protected data: one read and one write *)
        let v = Sim.load data.(i) in
        Sim.store data.(i) (v + 1);
        if cs_extra > 0 then Sim.pause cs_extra;
        lock.Lock_type.release ~tid;
        Sim.pause local_work;
        incr n
      done;
      !n)

(* Best algorithm at a configuration: (name, Mops, scalability vs the
   best single-thread run of the same workload) — the "X : Y" labels of
   Figures 8 and 11. *)
type best = { algo : Simlock.algo; mops : float; scalability : float }

let best_of ?duration ?cs_extra pid ~threads ~n_locks : best =
  let p = Platform.get pid in
  let algos = Simlock.algos_for p in
  let results =
    List.map
      (fun a ->
        (a, (throughput ?duration ?cs_extra pid a ~threads ~n_locks).Harness.mops))
      algos
  in
  let best_algo, best_mops =
    List.fold_left
      (fun (ba, bm) (a, m) -> if m > bm then (a, m) else (ba, bm))
      (List.hd results) (List.tl results)
  in
  let single =
    List.fold_left
      (fun acc a ->
        Float.max acc
          (throughput ?duration ?cs_extra pid a ~threads:1 ~n_locks)
            .Harness.mops)
      0. algos
  in
  {
    algo = best_algo;
    mops = best_mops;
    scalability = (if single > 0. then best_mops /. single else 0.);
  }

(* ------------------------------------------------------------------ *)
(* Figure 6: uncontested lock acquisition latency depending on the
   location of the previous holder.  Two threads alternate: the partner
   acquires and releases, then hands control to the measuring thread
   through a separate flag line; only the measuring thread's
   acquire+release is timed. *)
let uncontested_latency ?(rounds = 60) pid algo (distance : Arch.distance) :
    float option =
  let p = Platform.get pid in
  let topo = p.Platform.topo in
  match Topology.pair_at_distance topo distance with
  | None -> None
  | Some (measurer, partner) ->
      Sim.serial_fallback ~policy_key:("lock-latency:" ^ Arch.platform_name pid)
      @@ fun () ->
      let sim = Sim.create p in
      let mem = Sim.memory sim in
      let lock = Simlock.create ~home_core:partner mem p ~n_threads:2 algo in
      let turn = Memory.alloc ~home_core:partner mem in
      let total = ref 0 in
      Sim.spawn sim ~core:partner (fun () ->
          for _ = 1 to rounds do
            while Sim.load turn <> 0 do
              Sim.pause 25
            done;
            lock.Lock_type.acquire ~tid:1;
            lock.Lock_type.release ~tid:1;
            Sim.store turn 1
          done);
      Sim.spawn sim ~core:measurer (fun () ->
          for _ = 1 to rounds do
            while Sim.load turn <> 1 do
              Sim.pause 25
            done;
            let t0 = Sim.now () in
            lock.Lock_type.acquire ~tid:0;
            lock.Lock_type.release ~tid:0;
            total := !total + (Sim.now () - t0);
            Sim.store turn 0
          done);
      ignore (Sim.run sim);
      Some (float_of_int !total /. float_of_int rounds)

(* Single-thread acquisition latency (Figure 6's "single thread" bar):
   the same core re-acquires a lock it just released. *)
let single_thread_latency ?(rounds = 60) pid algo : float =
  Sim.serial_fallback ~policy_key:("lock-single:" ^ Arch.platform_name pid)
  @@ fun () ->
  let p = Platform.get pid in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let lock = Simlock.create ~home_core:0 mem p ~n_threads:1 algo in
  let total = ref 0 in
  Sim.spawn sim ~core:0 (fun () ->
      (* warm up *)
      lock.Lock_type.acquire ~tid:0;
      lock.Lock_type.release ~tid:0;
      for _ = 1 to rounds do
        let t0 = Sim.now () in
        lock.Lock_type.acquire ~tid:0;
        lock.Lock_type.release ~tid:0;
        total := !total + (Sim.now () - t0)
      done);
  ignore (Sim.run sim);
  float_of_int !total /. float_of_int rounds

(* ------------------------------------------------------------------ *)
(* Figure 3: mean acquire+release latency of the three ticket-lock
   variants on the Opteron as the thread count grows. *)
let figure3_latency ?(duration = 500_000) variant ~threads : float =
  let p = Platform.opteron in
  let _, mean =
    Harness.run_latency p ~threads ~duration
      ~setup:(fun mem ->
        Simlock.create ~home_core:0 mem p ~n_threads:threads variant)
      ~body:(fun lock _mem ~tid ~deadline ->
        let n = ref 0 and cy = ref 0 in
        while Sim.now () < deadline do
          let t0 = Sim.now () in
          lock.Lock_type.acquire ~tid;
          lock.Lock_type.release ~tid;
          cy := !cy + (Sim.now () - t0);
          Sim.pause 200;
          incr n
        done;
        (!n, !cy))
  in
  mean
