(* Native queue locks: MCS and CLH.  Queue nodes are per-domain
   (Domain.DLS), following the one-thread-per-core model. *)

(* ------------------------------ MCS ------------------------------ *)

type mcs_node = {
  locked : bool Atomic.t;
  next : mcs_node option Atomic.t;
}

(* Each domain keeps its node AND the unique [Some node] block: CAS on
   an [option] Atomic compares physically, so the block swapped into the
   tail must be the very block later passed to compare_and_set. *)
type mcs_slot = { node : mcs_node; some_node : mcs_node option }

let mcs () : Lock.t =
  let tail : mcs_node option Atomic.t = Atomic.make None in
  let my_slot =
    Domain.DLS.new_key (fun () ->
        let node = { locked = Atomic.make false; next = Atomic.make None } in
        { node; some_node = Some node })
  in
  let acquire () =
    let s = Domain.DLS.get my_slot in
    let n = s.node in
    Atomic.set n.next None;
    Atomic.set n.locked true;
    match Atomic.exchange tail s.some_node with
    | None -> () (* lock was free *)
    | Some prev ->
        Atomic.set prev.next s.some_node;
        while Atomic.get n.locked do
          Domain.cpu_relax ()
        done
  in
  let release () =
    let s = Domain.DLS.get my_slot in
    let n = s.node in
    match Atomic.get n.next with
    | Some succ -> Atomic.set succ.locked false
    | None ->
        if not (Atomic.compare_and_set tail s.some_node None) then begin
          (* a successor is in the middle of enqueuing *)
          let rec wait () =
            match Atomic.get n.next with
            | Some succ -> Atomic.set succ.locked false
            | None ->
                Domain.cpu_relax ();
                wait ()
          in
          wait ()
        end
  in
  { name = "MCS"; acquire; release; try_acquire = None }

(* ------------------------------ CLH ------------------------------ *)

type clh_state = {
  mutable mine : bool Atomic.t; (* node we enqueue; true = busy *)
  mutable pred : bool Atomic.t; (* node we spin on, recycled after release *)
}

let clh () : Lock.t =
  let dummy = Atomic.make false in
  let tail = Atomic.make dummy in
  let st =
    Domain.DLS.new_key (fun () ->
        { mine = Atomic.make false; pred = Atomic.make false })
  in
  let acquire () =
    let s = Domain.DLS.get st in
    Atomic.set s.mine true;
    let prev = Atomic.exchange tail s.mine in
    s.pred <- prev;
    while Atomic.get prev do
      Domain.cpu_relax ()
    done
  in
  let release () =
    let s = Domain.DLS.get st in
    let released = s.mine in
    Atomic.set released false;
    (* recycle the predecessor's node as ours *)
    s.mine <- s.pred;
    s.pred <- released
  in
  { name = "CLH"; acquire; release; try_acquire = None }
