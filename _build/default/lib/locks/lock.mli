(** The native libslock interface: every algorithm packaged as a
    first-class lock value usable from any OCaml 5 domain.

    Locks with per-acquirer queue nodes (MCS, CLH, hierarchical) keep
    them in domain-local storage: use one lock user per domain and pair
    each [acquire] with a [release] from the same domain. *)

type t = {
  name : string;  (** algorithm name, e.g. ["TICKET"] *)
  acquire : unit -> unit;  (** blocks (spins or sleeps) until held *)
  release : unit -> unit;
  try_acquire : (unit -> bool) option;
      (** non-blocking attempt, for the algorithms that support one
          cheaply; [None] otherwise *)
}

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f] with the lock held, releasing it on normal
    return and on exception. *)
