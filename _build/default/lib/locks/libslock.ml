(* Factory over the native lock suite — the OCaml libslock.  All nine of
   the paper's algorithms behind one interface. *)

type algo =
  | Tas
  | Ttas
  | Ticket
  | Array_lock
  | Mutex
  | Mcs
  | Clh
  | Hclh
  | Hticket

let all = [ Tas; Ttas; Ticket; Array_lock; Mutex; Mcs; Clh; Hclh; Hticket ]

let name = function
  | Tas -> "TAS"
  | Ttas -> "TTAS"
  | Ticket -> "TICKET"
  | Array_lock -> "ARRAY"
  | Mutex -> "MUTEX"
  | Mcs -> "MCS"
  | Clh -> "CLH"
  | Hclh -> "HCLH"
  | Hticket -> "HTICKET"

let of_string s =
  match String.uppercase_ascii s with
  | "TAS" -> Some Tas
  | "TTAS" -> Some Ttas
  | "TICKET" -> Some Ticket
  | "ARRAY" -> Some Array_lock
  | "MUTEX" -> Some Mutex
  | "MCS" -> Some Mcs
  | "CLH" -> Some Clh
  | "HCLH" -> Some Hclh
  | "HTICKET" -> Some Hticket
  | _ -> None

(* [max_threads] bounds concurrent acquirers (array-lock slots);
   [n_clusters]/[cluster_of] configure the hierarchical locks. *)
let create ?(max_threads = 64) ?(n_clusters = 2) ?cluster_of (algo : algo) :
    Lock.t =
  match algo with
  | Tas -> Spin.tas ()
  | Ttas -> Spin.ttas ()
  | Ticket -> Spin.ticket ()
  | Array_lock -> Spin.array_lock ~slots:(max 2 max_threads) ()
  | Mutex -> Spin.mutex ()
  | Mcs -> Queue_lock.mcs ()
  | Clh -> Queue_lock.clh ()
  | Hclh -> Hier.hclh ~n_clusters ?cluster_of ()
  | Hticket -> Hier.hticket ~n_clusters ?cluster_of ()
