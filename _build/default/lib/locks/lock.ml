(* The native libslock interface: every algorithm is packaged as a
   first-class lock value usable from any OCaml 5 domain.

   Locks with per-acquirer queue nodes (MCS, CLH and the hierarchical
   locks) keep them in domain-local storage, so the intended usage is
   one lock user per domain (the usual one-thread-per-core deployment of
   the paper).  Acquire/release pairs must be executed by the same
   domain. *)

type t = {
  name : string;
  acquire : unit -> unit;
  release : unit -> unit;
  try_acquire : (unit -> bool) option;
      (* non-blocking attempt, for algorithms that support one cheaply *)
}

(* Run [f] with the lock held; releases on exception. *)
let with_lock t f =
  t.acquire ();
  match f () with
  | v ->
      t.release ();
      v
  | exception e ->
      t.release ();
      raise e
