(* Exponential backoff for native spin loops.  [Domain.cpu_relax] both
   emits the architectural pause hint and polls safepoints, so spinning
   domains stay preemptible (essential on machines with fewer cores than
   domains). *)

type t = { mutable spins : int; max_spins : int }

let create ?(initial = 8) ?(max_spins = 2048) () =
  { spins = max 1 initial; max_spins }

let once t =
  for _ = 1 to t.spins do
    Domain.cpu_relax ()
  done;
  t.spins <- min t.max_spins (t.spins * 2)

let reset t ?(initial = 8) () = t.spins <- max 1 initial
