(* Native hierarchical locks (hticket / HCLH) as cohort locks: a local
   lock per cluster plus one global lock; the lock is handed over inside
   a cluster while local waiters exist (bounded by [max_pass]).

   The global lock must be releasable by a thread other than its
   acquirer (cohort detaching), so it is a ticket lock — which is also
   what the paper's hticket uses.  [cluster_of] maps the calling thread
   to its cluster (defaults to a round-robin over domain ids, standing
   in for the socket id that sched_getcpu would give on real NUMA
   hardware). *)

let default_max_pass = 64

type inner = { lock : Lock.t; waiters : unit -> bool }

let cohort ~name ~n_clusters ?(max_pass = default_max_pass) ?cluster_of
    ~(mk_local : unit -> inner) () : Lock.t =
  if n_clusters < 1 then invalid_arg "cohort: need at least one cluster";
  let cluster_of =
    match cluster_of with
    | Some f -> f
    | None -> fun () -> (Domain.self () :> int) mod n_clusters
  in
  let global = Spin.ticket () in
  let locals = Array.init n_clusters (fun _ -> mk_local ()) in
  (* Owned flags / pass counters are only touched while holding the
     cluster's local lock. *)
  let owned = Array.make n_clusters false in
  let passes = Array.make n_clusters 0 in
  let acquire () =
    let c = cluster_of () in
    locals.(c).lock.Lock.acquire ();
    if not owned.(c) then begin
      global.Lock.acquire ();
      owned.(c) <- true
    end
  in
  let release () =
    let c = cluster_of () in
    if passes.(c) < max_pass && locals.(c).waiters () then begin
      passes.(c) <- passes.(c) + 1;
      locals.(c).lock.Lock.release ()
    end
    else begin
      passes.(c) <- 0;
      owned.(c) <- false;
      global.Lock.release ();
      locals.(c).lock.Lock.release ()
    end
  in
  { name; acquire; release; try_acquire = None }

(* A ticket lock exposing a local-waiters probe. *)
let ticket_inner () : inner =
  let next = Atomic.make 0 in
  let current = Atomic.make 0 in
  let lock : Lock.t =
    {
      name = "TICKET";
      acquire =
        (fun () ->
          let my = Atomic.fetch_and_add next 1 in
          while Atomic.get current <> my do
            Domain.cpu_relax ()
          done);
      release = (fun () -> Atomic.set current (Atomic.get current + 1));
      try_acquire = None;
    }
  in
  { lock; waiters = (fun () -> Atomic.get next > Atomic.get current + 1) }

(* A CLH lock exposing a local-waiters probe (tail moved past the
   holder's node). *)
let clh_inner () : inner =
  let dummy = Atomic.make false in
  let tail = Atomic.make dummy in
  let st =
    Domain.DLS.new_key (fun () ->
        ref (Atomic.make false, Atomic.make false) (* (mine, pred) *))
  in
  let lock : Lock.t =
    {
      name = "CLH";
      acquire =
        (fun () ->
          let s = Domain.DLS.get st in
          let mine, _ = !s in
          Atomic.set mine true;
          let prev = Atomic.exchange tail mine in
          s := (mine, prev);
          while Atomic.get prev do
            Domain.cpu_relax ()
          done);
      release =
        (fun () ->
          let s = Domain.DLS.get st in
          let mine, pred = !s in
          Atomic.set mine false;
          s := (pred, mine));
      try_acquire = None;
    }
  in
  let waiters () =
    (* probe used by the holder: the tail moved past its node iff
       someone enqueued behind it *)
    let s = Domain.DLS.get st in
    let mine, _ = !s in
    not (Atomic.get tail == mine)
  in
  { lock; waiters }

let hticket ?max_pass ?cluster_of ~n_clusters () : Lock.t =
  cohort ~name:"HTICKET" ~n_clusters ?max_pass ?cluster_of
    ~mk_local:ticket_inner ()

let hclh ?max_pass ?cluster_of ~n_clusters () : Lock.t =
  cohort ~name:"HCLH" ~n_clusters ?max_pass ?cluster_of ~mk_local:clh_inner ()
