(* The simple native spin locks: TAS, TTAS with exponential backoff, the
   ticket lock with proportional backoff, the array lock, and the
   Pthread-Mutex equivalent (Stdlib.Mutex, which parks the thread in the
   kernel under contention). *)

(* test-and-set on an int Atomic; true = we won *)
let tas_word (w : int Atomic.t) = Atomic.exchange w 1 = 0

let tas () : Lock.t =
  let word = Atomic.make 0 in
  {
    name = "TAS";
    acquire =
      (fun () ->
        while not (tas_word word) do
          Domain.cpu_relax ()
        done);
    release = (fun () -> Atomic.set word 0);
    try_acquire = Some (fun () -> tas_word word);
  }

let ttas () : Lock.t =
  let word = Atomic.make 0 in
  {
    name = "TTAS";
    acquire =
      (fun () ->
        let b = Backoff.create () in
        let rec loop () =
          if Atomic.get word = 0 then begin
            if not (tas_word word) then begin
              Backoff.once b;
              loop ()
            end
          end
          else begin
            Domain.cpu_relax ();
            loop ()
          end
        in
        loop ());
    release = (fun () -> Atomic.set word 0);
    try_acquire = Some (fun () -> Atomic.get word = 0 && tas_word word);
  }

let ticket () : Lock.t =
  let next = Atomic.make 0 in
  let current = Atomic.make 0 in
  {
    name = "TICKET";
    acquire =
      (fun () ->
        let my = Atomic.fetch_and_add next 1 in
        let rec wait () =
          let cur = Atomic.get current in
          if cur <> my then begin
            (* back-off proportional to the queue position (section 5.3) *)
            for _ = 1 to (my - cur) * 16 do
              Domain.cpu_relax ()
            done;
            wait ()
          end
        in
        wait ());
    release = (fun () -> Atomic.set current (Atomic.get current + 1));
    try_acquire =
      Some
        (fun () ->
          let cur = Atomic.get current in
          (* only take a ticket when it would be served immediately *)
          Atomic.get next = cur
          && Atomic.compare_and_set next cur (cur + 1));
  }

let array_lock ~slots () : Lock.t =
  if slots < 2 then invalid_arg "array_lock: need at least 2 slots";
  let flags = Array.init slots (fun i -> Atomic.make (if i = 0 then 1 else 0)) in
  let tail = Atomic.make 0 in
  let my_slot = Domain.DLS.new_key (fun () -> ref 0) in
  {
    name = "ARRAY";
    acquire =
      (fun () ->
        let idx = Atomic.fetch_and_add tail 1 mod slots in
        (Domain.DLS.get my_slot) := idx;
        while Atomic.get flags.(idx) = 0 do
          Domain.cpu_relax ()
        done);
    release =
      (fun () ->
        let idx = !(Domain.DLS.get my_slot) in
        Atomic.set flags.(idx) 0;
        Atomic.set flags.((idx + 1) mod slots) 1);
    try_acquire = None;
  }

let mutex () : Lock.t =
  let m = Mutex.create () in
  {
    name = "MUTEX";
    acquire = (fun () -> Mutex.lock m);
    release = (fun () -> Mutex.unlock m);
    try_acquire = Some (fun () -> Mutex.try_lock m);
  }
