(** Factory over the native lock suite — the nine algorithms of the
    paper behind one interface. *)

type algo =
  | Tas  (** test-and-set spin lock *)
  | Ttas  (** test-and-test-and-set with exponential backoff *)
  | Ticket  (** FIFO ticket lock with proportional backoff *)
  | Array_lock  (** Anderson's array lock (per-slot spinning) *)
  | Mutex  (** Stdlib.Mutex, the Pthread-Mutex equivalent *)
  | Mcs  (** MCS queue lock *)
  | Clh  (** CLH queue lock *)
  | Hclh  (** hierarchical CLH (cohort of CLH locks) *)
  | Hticket  (** hierarchical ticket (cohort of ticket locks) *)

val all : algo list
(** The nine algorithms, in the paper's legend order. *)

val name : algo -> string
val of_string : string -> algo option

val create :
  ?max_threads:int -> ?n_clusters:int -> ?cluster_of:(unit -> int) ->
  algo -> Lock.t
(** [create algo] instantiates a fresh lock.  [max_threads] bounds
    concurrent acquirers (array-lock slots, default 64); [n_clusters]
    and [cluster_of] configure the hierarchical locks ([cluster_of]
    defaults to a round-robin over domain ids, standing in for the
    socket id that [sched_getcpu] would provide on NUMA hardware). *)
