lib/locks/spin.ml: Array Atomic Backoff Domain Lock Mutex
