lib/locks/libslock.mli: Lock
