lib/locks/libslock.ml: Hier Lock Queue_lock Spin String
