lib/locks/backoff.ml: Domain
