lib/locks/lock.ml:
