lib/locks/lock.mli:
