lib/locks/queue_lock.ml: Atomic Domain Lock
