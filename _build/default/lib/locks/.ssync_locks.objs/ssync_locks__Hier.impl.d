lib/locks/hier.ml: Array Atomic Domain Lock Spin
