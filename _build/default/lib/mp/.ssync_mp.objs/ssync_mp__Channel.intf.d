lib/mp/channel.mli:
