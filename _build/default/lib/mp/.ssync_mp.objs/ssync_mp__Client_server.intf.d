lib/mp/client_server.mli:
