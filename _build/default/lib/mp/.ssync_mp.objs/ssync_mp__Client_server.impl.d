lib/mp/client_server.ml: Array Channel Domain
