lib/mp/channel.ml: Atomic Domain
