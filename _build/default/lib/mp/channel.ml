(* Native libssmp: single-slot single-producer/single-consumer channels,
   mirroring the cache-line-buffer design of the simulated version — one
   slot whose full/empty flag is the Option constructor, so a message is
   transmitted with a single atomic publication. *)

type 'a t = { slot : 'a option Atomic.t }

let create () = { slot = Atomic.make None }

(* Blocking send; spins while the previous message is unconsumed.  Only
   one producer may use a channel. *)
let send t v =
  let m = Some v in
  let rec wait () =
    if Atomic.get t.slot <> None then begin
      Domain.cpu_relax ();
      wait ()
    end
  in
  wait ();
  Atomic.set t.slot m

(* Non-blocking receive.  Only one consumer may use a channel. *)
let try_recv t =
  match Atomic.get t.slot with
  | None -> None
  | Some _ as m ->
      Atomic.set t.slot None;
      (match m with Some v -> Some v | None -> assert false)

(* Blocking receive. *)
let recv t =
  let rec loop () =
    match try_recv t with
    | Some v -> v
    | None ->
        Domain.cpu_relax ();
        loop ()
  in
  loop ()
