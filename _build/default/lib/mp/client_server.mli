(** Native client-server messaging: one server, N clients, a channel
    pair per client; the server scans its receive slots round-robin. *)

type ('req, 'resp) t

val create : clients:int -> ('req, 'resp) t
val n_clients : ('req, 'resp) t -> int

val try_recv_any : ('req, 'resp) t -> (int * 'req) option
(** Server side: the next pending request as [(client, request)], if
    any; scanning is round-robin fair. *)

val recv_any : ('req, 'resp) t -> int * 'req
(** Server side: blocking receive from any client. *)

val respond : ('req, 'resp) t -> int -> 'resp -> unit
(** [respond t client r] sends [r] back to [client]. *)

val send_request : ('req, 'resp) t -> client:int -> 'req -> unit
(** Client side: one-way request. *)

val request : ('req, 'resp) t -> client:int -> 'req -> 'resp
(** Client side: round-trip request (blocks for the response). *)
