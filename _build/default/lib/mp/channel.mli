(** Native libssmp: single-slot single-producer/single-consumer
    channels, mirroring the one-cache-line buffers of the paper's
    message-passing library.  A message is transmitted with a single
    atomic publication. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Blocking send; spins while the previous message is unconsumed.
    Only one producer may use a channel. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive.  Only one consumer may use a channel. *)

val recv : 'a t -> 'a
(** Blocking receive. *)
