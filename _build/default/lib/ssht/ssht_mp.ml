(* The message-passing ssht (Figure 11's "mp" bars): buckets are
   partitioned across dedicated server threads (one server per three
   cores in the paper's best configuration); clients send their
   operation to the owning server over libssmp channels and block for
   the response.  Servers access only their own locally-homed buckets,
   so no locks are needed — contention is traded for messaging. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine

(* Request encoding in one message word:
   op (2 bits) | key (24 bits) | value (24 bits). *)
let op_get = 0
let op_put = 1
let op_remove = 2
let op_stop = 3

let encode ~op ~key ~value =
  if key < 0 || key >= 1 lsl 24 then invalid_arg "Ssht_mp: key out of range";
  if value < 0 || value >= 1 lsl 24 then
    invalid_arg "Ssht_mp: value out of range";
  (op lsl 48) lor (key lsl 24) lor value

let decode m = ((m lsr 48) land 3, (m lsr 24) land 0xFFFFFF, m land 0xFFFFFF)

(* Responses: 0 = miss/false, v+1 = found value v / true. *)

type server_state = {
  server_core : int;
  (* plain OCaml storage: the server's partition is single-threaded, and
     its lines are local to its node — the messaging is the cost that
     matters (the paper's servers likewise keep their partition in
     node-local memory) *)
  table : (int, int) Hashtbl.t;
  (* simulated lines standing in for the server's working set: the
     server touches [touch_lines] local lines per op to model the
     bucket scan *)
  touch : Memory.addr array;
}

type t = {
  platform : Platform.t;
  servers : server_state array;
  channels : Ssync_simmp.Client_server.t array; (* one per server *)
  server_work : int; (* core-local cycles per request served *)
}

let n_servers t = Array.length t.servers

let create ?(server_work = 0) mem platform ~server_cores ~client_cores
    ~touch_lines : t =
  let servers =
    Array.map
      (fun core ->
        {
          server_core = core;
          table = Hashtbl.create 256;
          touch =
            Array.init (max 1 touch_lines) (fun _ ->
                Memory.alloc ~home_core:core mem);
        })
      server_cores
  in
  let channels =
    Array.map
      (fun s ->
        Ssync_simmp.Client_server.create mem platform ~server_core:s.server_core
          ~client_cores)
      servers
  in
  { platform; servers; channels; server_work }

let server_of t key = key mod n_servers t

(* Body of server [i]; runs as a simulated thread until it has received
   [op_stop] from every client. *)
let run_server t i =
  let s = t.servers.(i) in
  let cs = t.channels.(i) in
  let stops = ref 0 in
  let n_clients = Ssync_simmp.Client_server.n_clients cs in
  while !stops < n_clients do
    let client, msg = Ssync_simmp.Client_server.recv_any cs in
    let op, key, value = decode msg in
    if op = op_stop then incr stops
    else begin
      (* request parsing / hashing, then the bucket scan: a handful of
         node-local line accesses *)
      Sim.pause t.server_work;
      Array.iter (fun a -> ignore (Sim.load a)) s.touch;
      let resp =
        if op = op_get then
          match Hashtbl.find_opt s.table key with
          | Some v -> v + 1
          | None -> 0
        else if op = op_put then begin
          let existed = Hashtbl.mem s.table key in
          Hashtbl.replace s.table key value;
          Sim.store s.touch.(0) value;
          if existed then 0 else 1
        end
        else begin
          let existed = Hashtbl.mem s.table key in
          if existed then begin
            Hashtbl.remove s.table key;
            Sim.store s.touch.(0) 0
          end;
          if existed then 1 else 0
        end
      in
      Ssync_simmp.Client_server.respond cs client resp
    end
  done

(* Client-side operations (round-trip, as in the paper's configuration). *)
let get t ~client key : int option =
  let i = server_of t key in
  let r =
    Ssync_simmp.Client_server.request t.channels.(i) ~client
      (encode ~op:op_get ~key ~value:0)
  in
  if r = 0 then None else Some (r - 1)

let put t ~client key value : bool =
  let i = server_of t key in
  Ssync_simmp.Client_server.request t.channels.(i) ~client
    (encode ~op:op_put ~key ~value)
  = 1

let remove t ~client key : bool =
  let i = server_of t key in
  Ssync_simmp.Client_server.request t.channels.(i) ~client
    (encode ~op:op_remove ~key ~value:0)
  = 1

(* Tell every server this client is done (servers exit after hearing
   from all clients). *)
let stop t ~client =
  for i = 0 to n_servers t - 1 do
    Ssync_simmp.Client_server.send_request t.channels.(i) ~client
      (encode ~op:op_stop ~key:0 ~value:0)
  done
