(* ssht — the native concurrent hash table (paper section 4.3): put, get
   and remove over fixed buckets, one lock per bucket, configurable with
   any lock of the native libslock.  Keys and values are 64-bit integers
   as in the paper's evaluation. *)

open Ssync_locks

type bucket = {
  lock : Lock.t;
  mutable entries : (int * int) list; (* assoc list, newest first *)
  mutable size : int;
}

type t = {
  n_buckets : int;
  buckets : bucket array;
}

(* Fibonacci hashing of the key into a bucket index. *)
let hash_key ~n_buckets k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int mod n_buckets

let create ?(lock_algo = Libslock.Ticket) ?max_threads ~n_buckets () : t =
  if n_buckets <= 0 then invalid_arg "Ssht.create: n_buckets must be positive";
  {
    n_buckets;
    buckets =
      Array.init n_buckets (fun _ ->
          {
            lock = Libslock.create ?max_threads lock_algo;
            entries = [];
            size = 0;
          });
  }

let bucket_of t k = t.buckets.(hash_key ~n_buckets:t.n_buckets k)

(* [get t k] returns the value bound to [k], if any. *)
let get t k =
  let b = bucket_of t k in
  Lock.with_lock b.lock (fun () -> List.assoc_opt k b.entries)

(* [put t k v] inserts or updates; returns [true] when the key was
   freshly inserted. *)
let put t k v =
  let b = bucket_of t k in
  Lock.with_lock b.lock (fun () ->
      if List.mem_assoc k b.entries then begin
        b.entries <- (k, v) :: List.remove_assoc k b.entries;
        false
      end
      else begin
        b.entries <- (k, v) :: b.entries;
        b.size <- b.size + 1;
        true
      end)

(* [remove t k] deletes the binding; returns [true] when it existed. *)
let remove t k =
  let b = bucket_of t k in
  Lock.with_lock b.lock (fun () ->
      if List.mem_assoc k b.entries then begin
        b.entries <- List.remove_assoc k b.entries;
        b.size <- b.size - 1;
        true
      end
      else false)

(* Number of entries (takes all bucket locks one at a time; a snapshot,
   not linearizable with concurrent updates). *)
let size t =
  Array.fold_left
    (fun acc b -> acc + Lock.with_lock b.lock (fun () -> b.size))
    0 t.buckets

let mem t k = get t k <> None
