lib/ssht/ssht_mp.ml: Array Hashtbl Memory Platform Sim Ssync_coherence Ssync_engine Ssync_platform Ssync_simmp
