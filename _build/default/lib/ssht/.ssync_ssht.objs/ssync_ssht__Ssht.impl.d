lib/ssht/ssht.ml: Array Libslock List Lock Ssync_locks
