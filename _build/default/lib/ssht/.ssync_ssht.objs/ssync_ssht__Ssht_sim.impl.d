lib/ssht/ssht_sim.ml: Array Lock_type Memory Platform Sim Simlock Ssync_coherence Ssync_engine Ssync_platform Ssync_simlocks
