lib/ssht/ssht.mli: Ssync_locks
