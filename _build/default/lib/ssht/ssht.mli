(** ssht — the native concurrent hash table (paper section 4.3): put,
    get and remove over fixed buckets, one lock per bucket, configurable
    with any native libslock algorithm.  Keys and values are integers,
    as in the paper's evaluation. *)

type t

val create :
  ?lock_algo:Ssync_locks.Libslock.algo ->
  ?max_threads:int ->
  n_buckets:int ->
  unit ->
  t
(** [create ~n_buckets ()] builds an empty table.  [lock_algo] defaults
    to the ticket lock (the paper's recommendation for low-contention
    fine-grained locking). *)

val get : t -> int -> int option
val mem : t -> int -> bool

val put : t -> int -> int -> bool
(** [put t k v] inserts or updates; [true] iff the key was freshly
    inserted. *)

val remove : t -> int -> bool
(** [remove t k] deletes the binding; [true] iff it existed. *)

val size : t -> int
(** Number of entries (a snapshot, not linearizable with concurrent
    updates). *)
