(* The paper's published latency measurements (Tables 2 and 3), kept
   verbatim as the calibration reference.  [Cost_model] composes its
   protocol logic out of these constants; the test suite and the bench
   harness use them as the "paper says" column. *)

(* ------------------------- Table 3 ------------------------------- *)
(* Local caches and memory latencies (cycles). *)

let table3 (p : Arch.platform_id) (lvl : Arch.cache_level) : int option =
  match (p, lvl) with
  | ((Arch.Opteron | Arch.Opteron2), Arch.L1) -> Some 3
  | ((Arch.Opteron | Arch.Opteron2), Arch.L2) -> Some 15
  | ((Arch.Opteron | Arch.Opteron2), Arch.LLC) -> Some 40
  | ((Arch.Opteron | Arch.Opteron2), Arch.RAM) -> Some 136
  | ((Arch.Xeon | Arch.Xeon2), Arch.L1) -> Some 5
  | ((Arch.Xeon | Arch.Xeon2), Arch.L2) -> Some 11
  | ((Arch.Xeon | Arch.Xeon2), Arch.LLC) -> Some 44
  | ((Arch.Xeon | Arch.Xeon2), Arch.RAM) -> Some 355
  | (Arch.Niagara, Arch.L1) -> Some 3
  | (Arch.Niagara, Arch.L2) -> None
  | (Arch.Niagara, Arch.LLC) -> Some 24
  | (Arch.Niagara, Arch.RAM) -> Some 176
  | (Arch.Tilera, Arch.L1) -> Some 2
  | (Arch.Tilera, Arch.L2) -> Some 11
  | (Arch.Tilera, Arch.LLC) -> Some 45
  | (Arch.Tilera, Arch.RAM) -> Some 118

(* ------------------------- Table 2 ------------------------------- *)
(* Latencies (cycles) of the cache coherence to load/store/CAS/FAI/TAS/
   SWAP a cache line depending on the MESI state and the distance.
   Rows are indexed by the platform's distance classes.  [None] marks
   combinations the paper does not report (e.g. Owned outside the
   Opteron). *)

type op_class = CLoad | CStore | CCas | CFai | CTas | CSwap

let op_class_of_memop : Arch.memop -> op_class = function
  | Arch.Load -> CLoad
  | Arch.Store -> CStore
  | Arch.Cas -> CCas
  | Arch.Fai -> CFai
  | Arch.Tas -> CTas
  | Arch.Swap -> CSwap

(* Opteron distance rows: same die / same MCM / one hop / two hops. *)
let opteron_table (op : op_class) (st : Arch.cstate) (d : Arch.distance) :
    int option =
  let row v =
    match d with
    | Arch.Same_die -> Some v.(0)
    | Arch.Same_mcm -> Some v.(1)
    | Arch.One_hop -> Some v.(2)
    | Arch.Two_hops -> Some v.(3)
    | Arch.Same_core | Arch.Max_hops -> None
  in
  match (op, st) with
  | (CLoad, Arch.Modified) -> row [| 81; 161; 172; 252 |]
  | (CLoad, Arch.Owned) -> row [| 83; 163; 175; 254 |]
  | (CLoad, Arch.Exclusive) -> row [| 83; 163; 175; 253 |]
  | (CLoad, (Arch.Shared | Arch.Forward)) -> row [| 83; 164; 176; 254 |]
  | (CLoad, Arch.Invalid) -> row [| 136; 237; 247; 327 |]
  | (CStore, Arch.Modified) -> row [| 83; 172; 191; 273 |]
  | (CStore, Arch.Owned) -> row [| 244; 255; 286; 291 |]
  | (CStore, Arch.Exclusive) -> row [| 83; 171; 191; 271 |]
  | (CStore, (Arch.Shared | Arch.Forward)) -> row [| 246; 255; 286; 296 |]
  | (CStore, Arch.Invalid) -> None
  | ((CCas | CFai | CTas | CSwap), Arch.Modified) -> row [| 110; 197; 216; 296 |]
  | ((CCas | CFai | CTas | CSwap), (Arch.Shared | Arch.Forward | Arch.Owned))
    ->
      row [| 272; 283; 312; 332 |]
  | ((CCas | CFai | CTas | CSwap), (Arch.Exclusive | Arch.Invalid)) -> None

(* Xeon distance rows: same die / one hop / two hops. *)
let xeon_table (op : op_class) (st : Arch.cstate) (d : Arch.distance) :
    int option =
  let row v =
    match d with
    | Arch.Same_die -> Some v.(0)
    | Arch.One_hop -> Some v.(1)
    | Arch.Two_hops -> Some v.(2)
    | Arch.Same_core | Arch.Same_mcm | Arch.Max_hops -> None
  in
  match (op, st) with
  | (CLoad, Arch.Modified) -> row [| 109; 289; 400 |]
  | (CLoad, Arch.Exclusive) -> row [| 92; 273; 383 |]
  | (CLoad, (Arch.Shared | Arch.Forward)) -> row [| 44; 223; 334 |]
  | (CLoad, Arch.Invalid) -> row [| 355; 492; 601 |]
  | (CLoad, Arch.Owned) -> None
  | (CStore, Arch.Modified) -> row [| 115; 320; 431 |]
  | (CStore, Arch.Exclusive) -> row [| 115; 315; 425 |]
  | (CStore, (Arch.Shared | Arch.Forward)) -> row [| 116; 318; 428 |]
  | (CStore, (Arch.Owned | Arch.Invalid)) -> None
  | ((CCas | CFai | CTas | CSwap), Arch.Modified) -> row [| 120; 324; 430 |]
  | ((CCas | CFai | CTas | CSwap), (Arch.Shared | Arch.Forward)) ->
      row [| 113; 312; 423 |]
  | ((CCas | CFai | CTas | CSwap), (Arch.Owned | Arch.Exclusive | Arch.Invalid))
    ->
      None

(* Niagara distance rows: same core / other core. *)
let niagara_table (op : op_class) (st : Arch.cstate) (d : Arch.distance) :
    int option =
  let row (a, b) =
    match d with
    | Arch.Same_core -> Some a
    | Arch.Same_die -> Some b
    | _ -> None
  in
  match (op, st) with
  | (CLoad, (Arch.Modified | Arch.Exclusive | Arch.Shared | Arch.Forward)) ->
      row (3, 24)
  | (CLoad, Arch.Invalid) -> row (176, 176)
  | (CLoad, Arch.Owned) -> None
  | (CStore, (Arch.Modified | Arch.Exclusive | Arch.Shared | Arch.Forward)) ->
      row (24, 24)
  | (CStore, (Arch.Owned | Arch.Invalid)) -> None
  | (CCas, Arch.Modified) -> row (71, 66)
  | (CFai, Arch.Modified) -> row (108, 99)
  | (CTas, Arch.Modified) -> row (64, 55)
  | (CSwap, Arch.Modified) -> row (95, 90)
  | (CCas, (Arch.Shared | Arch.Forward)) -> row (76, 66)
  | (CFai, (Arch.Shared | Arch.Forward)) -> row (99, 99)
  | (CTas, (Arch.Shared | Arch.Forward)) -> row (67, 55)
  | (CSwap, (Arch.Shared | Arch.Forward)) -> row (93, 90)
  | ((CCas | CFai | CTas | CSwap), (Arch.Owned | Arch.Exclusive | Arch.Invalid))
    ->
      None

(* Tilera distance rows: one hop / max hops (10 mesh hops). *)
let tilera_table (op : op_class) (st : Arch.cstate) (d : Arch.distance) :
    int option =
  let row (a, b) =
    match d with
    | Arch.One_hop -> Some a
    | Arch.Max_hops -> Some b
    | _ -> None
  in
  match (op, st) with
  | (CLoad, (Arch.Modified | Arch.Exclusive | Arch.Shared | Arch.Forward)) ->
      row (45, 65)
  | (CLoad, Arch.Invalid) -> row (118, 162)
  | (CLoad, Arch.Owned) -> None
  | (CStore, (Arch.Modified | Arch.Exclusive)) -> row (57, 77)
  | (CStore, (Arch.Shared | Arch.Forward)) -> row (86, 106)
  | (CStore, (Arch.Owned | Arch.Invalid)) -> None
  | (CCas, Arch.Modified) -> row (77, 98)
  | (CFai, Arch.Modified) -> row (51, 71)
  | (CTas, Arch.Modified) -> row (70, 89)
  | (CSwap, Arch.Modified) -> row (63, 84)
  | (CCas, (Arch.Shared | Arch.Forward)) -> row (124, 142)
  | (CFai, (Arch.Shared | Arch.Forward)) -> row (82, 102)
  | (CTas, (Arch.Shared | Arch.Forward)) -> row (121, 141)
  | (CSwap, (Arch.Shared | Arch.Forward)) -> row (95, 115)
  | ((CCas | CFai | CTas | CSwap), (Arch.Owned | Arch.Exclusive | Arch.Invalid))
    ->
      None

(* Paper Table 2 lookup: latency of [op] on a line previously in state
   [st] held at distance class [d] from the requester. *)
let table2 (p : Arch.platform_id) (op : Arch.memop) (st : Arch.cstate)
    (d : Arch.distance) : int option =
  let oc = op_class_of_memop op in
  match p with
  | Arch.Opteron -> opteron_table oc st d
  | Arch.Xeon -> xeon_table oc st d
  | Arch.Niagara -> niagara_table oc st d
  | Arch.Tilera -> tilera_table oc st d
  | Arch.Opteron2 | Arch.Xeon2 -> None (* not reported by the paper *)

(* Section 8: cross-socket/intra-socket latency ratios measured on the
   small-scale multi-sockets. *)
let small_platform_cross_intra_ratio = function
  | Arch.Opteron2 -> Some 1.6
  | Arch.Xeon2 -> Some 2.7
  | Arch.Opteron | Arch.Xeon | Arch.Niagara | Arch.Tilera -> None

(* The distance classes each platform's Table 2 rows use, in paper
   column order. *)
let distance_classes = function
  | Arch.Opteron ->
      [ Arch.Same_die; Arch.Same_mcm; Arch.One_hop; Arch.Two_hops ]
  | Arch.Xeon -> [ Arch.Same_die; Arch.One_hop; Arch.Two_hops ]
  | Arch.Niagara -> [ Arch.Same_core; Arch.Same_die ]
  | Arch.Tilera -> [ Arch.One_hop; Arch.Max_hops ]
  | Arch.Opteron2 -> [ Arch.Same_die; Arch.One_hop ]
  | Arch.Xeon2 -> [ Arch.Same_die; Arch.One_hop ]
