(* Shared architectural vocabulary for the four target platforms of the
   paper (Table 1).  Everything downstream — the coherence simulator, the
   lock suite, the benchmarks — speaks in these types. *)

type platform_id =
  | Opteron   (* 4-socket (8-die) AMD Magny-Cours, 48 cores, MOESI + probe filter *)
  | Xeon      (* 8-socket Intel Westmere-EX, 80 cores, MESIF, inclusive LLC *)
  | Niagara   (* Sun UltraSPARC-T2, 8 cores x 8 hw threads, uniform crossbar *)
  | Tilera    (* Tilera TILE-Gx36, 6x6 mesh, distributed LLC home tiles *)
  | Opteron2  (* 2-socket AMD Opteron 2384 (paper section 8) *)
  | Xeon2     (* 2-socket Intel Xeon X5660 (paper section 8) *)

let all_platform_ids = [ Opteron; Xeon; Niagara; Tilera; Opteron2; Xeon2 ]
let paper_platform_ids = [ Opteron; Xeon; Niagara; Tilera ]

let platform_name = function
  | Opteron -> "Opteron"
  | Xeon -> "Xeon"
  | Niagara -> "Niagara"
  | Tilera -> "Tilera"
  | Opteron2 -> "Opteron2"
  | Xeon2 -> "Xeon2"

let platform_of_string s =
  match String.lowercase_ascii s with
  | "opteron" -> Some Opteron
  | "xeon" -> Some Xeon
  | "niagara" -> Some Niagara
  | "tilera" -> Some Tilera
  | "opteron2" -> Some Opteron2
  | "xeon2" -> Some Xeon2
  | _ -> None

(* The memory operations whose latencies Table 2 reports.  [Cas_fai]
   (a fetch-and-increment built from a CAS retry loop, section 5.4) is a
   software construct and is expressed by the benchmarks, not here. *)
type memop =
  | Load
  | Store
  | Cas   (* compare-and-swap *)
  | Fai   (* fetch-and-increment *)
  | Tas   (* test-and-set *)
  | Swap  (* atomic exchange *)

let memop_name = function
  | Load -> "load"
  | Store -> "store"
  | Cas -> "CAS"
  | Fai -> "FAI"
  | Tas -> "TAS"
  | Swap -> "SWAP"

let is_atomic = function
  | Load | Store -> false
  | Cas | Fai | Tas | Swap -> true

(* Cache-line states across the protocol variants used by the four
   platforms: MOESI (Opteron), MESIF (Xeon), MESI with a duplicate-tag
   directory (Niagara) or a distributed directory (Tilera).  [Forward] is
   folded into [Shared] for costing, as the paper does ("its effects are
   included in the load from shared case"). *)
type cstate =
  | Modified
  | Owned      (* MOESI only *)
  | Exclusive
  | Shared
  | Forward    (* MESIF only *)
  | Invalid

let cstate_name = function
  | Modified -> "Modified"
  | Owned -> "Owned"
  | Exclusive -> "Exclusive"
  | Shared -> "Shared"
  | Forward -> "Forward"
  | Invalid -> "Invalid"

let cstate_letter = function
  | Modified -> 'M'
  | Owned -> 'O'
  | Exclusive -> 'E'
  | Shared -> 'S'
  | Forward -> 'F'
  | Invalid -> 'I'

(* Local cache levels of Table 3. *)
type cache_level = L1 | L2 | LLC | RAM

let cache_level_name = function
  | L1 -> "L1"
  | L2 -> "L2"
  | LLC -> "LLC"
  | RAM -> "RAM"

(* Distance classes used by the paper's Tables 2 and Figure 6/9 columns.
   Each platform uses a subset. *)
type distance =
  | Same_core  (* two hw contexts of one physical core (Niagara) *)
  | Same_die   (* same die / same socket *)
  | Same_mcm   (* the two dies of one Opteron multi-chip module *)
  | One_hop
  | Two_hops
  | Max_hops   (* Tilera: the two most remote tiles *)

let distance_name = function
  | Same_core -> "same core"
  | Same_die -> "same die"
  | Same_mcm -> "same mcm"
  | One_hop -> "one hop"
  | Two_hops -> "two hops"
  | Max_hops -> "max hops"
