lib/platform/cost_model.ml: Arch Array Float List Option Topology
