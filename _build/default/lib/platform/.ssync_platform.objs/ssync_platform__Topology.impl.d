lib/platform/topology.ml: Arch Printf
