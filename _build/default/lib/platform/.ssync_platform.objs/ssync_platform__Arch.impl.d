lib/platform/arch.ml: String
