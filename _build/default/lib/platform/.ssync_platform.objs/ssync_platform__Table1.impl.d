lib/platform/table1.ml: Arch Topology
