lib/platform/platform.ml: Arch Cost_model Float Latencies Topology
