lib/platform/latencies.ml: Arch Array
