(* Umbrella: everything the rest of the suite needs to know about one
   target platform. *)

type t = {
  id : Arch.platform_id;
  name : string;
  topo : Topology.t;
  local : Arch.cache_level -> int option;
      (* Table 3: local cache / memory latencies *)
  op_latency : Arch.memop -> requester:int -> Cost_model.view -> int;
  occupancy : Arch.memop -> state:Arch.cstate -> latency:int -> int;
  hw_mp_latency : (int -> int -> int) option;
      (* Tilera only: hardware message-passing one-way latency between
         two cores (Figure 9: ~61 cycles, nearly distance-insensitive) *)
}

let tilera_hw_mp topo c1 c2 = 18 + (Topology.hops topo c1 c2 / 3)

let make id =
  let topo = Topology.of_platform id in
  {
    id;
    name = topo.Topology.name;
    topo;
    local = Latencies.table3 id;
    op_latency = (fun op ~requester v -> Cost_model.op_latency topo op ~requester v);
    occupancy = (fun op ~state ~latency -> Cost_model.occupancy topo op ~state ~latency);
    hw_mp_latency =
      (match id with
      | Arch.Tilera -> Some (tilera_hw_mp topo)
      | _ -> None);
  }

let opteron = make Arch.Opteron
let xeon = make Arch.Xeon
let niagara = make Arch.Niagara
let tilera = make Arch.Tilera
let opteron2 = make Arch.Opteron2
let xeon2 = make Arch.Xeon2

let get = function
  | Arch.Opteron -> opteron
  | Arch.Xeon -> xeon
  | Arch.Niagara -> niagara
  | Arch.Tilera -> tilera
  | Arch.Opteron2 -> opteron2
  | Arch.Xeon2 -> xeon2

let all = [ opteron; xeon; niagara; tilera ]
let all_with_small = all @ [ opteron2; xeon2 ]

let n_cores t = t.topo.Topology.n_cores
let clock_ghz t = t.topo.Topology.clock_ghz

(* Convert a simulated (ops, cycles) measurement into the paper's
   throughput unit, Mops/s, using the platform clock. *)
let mops t ~ops ~cycles =
  if cycles <= 0 then 0.
  else float_of_int ops *. clock_ghz t *. 1000. /. float_of_int cycles

(* Thread placement (paper section 5.4): thread index -> core. *)
let place t i = t.topo.Topology.place i

(* Cycles of core-local work per benchmark iteration; captures the
   platforms' single-thread performance differences. *)
let local_work t = t.topo.Topology.local_work_cycles

(* Like [local_work] but accounting for hardware-thread co-residency:
   on the Niagara, [threads] contexts share 8 physical cores (and each
   core's two integer pipelines), so per-thread local work slows down
   as contexts pile onto the cores. *)
let local_work_for t ~threads =
  match t.id with
  | Arch.Niagara ->
      let per_core = float_of_int threads /. 8. in
      let slowdown = Float.max 1.0 (0.7 *. per_core) in
      int_of_float (float_of_int (local_work t) *. slowdown)
  | _ -> local_work t
