lib/report/series.ml: Float List Printf String Table
