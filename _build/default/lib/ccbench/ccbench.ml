(* ccbench (paper section 4.2): measures the cost of an operation on a
   cache line depending on the line's MESI state and placement.  The
   line is brought into the desired state through real protocol
   transitions and then accessed from the chosen core, exactly like the
   original tool's 30 cases.  Regenerates Tables 2 and 3. *)

open Ssync_platform
open Ssync_coherence

type cell = {
  op : Arch.memop;
  state : Arch.cstate;
  distance : Arch.distance;
  paper : int option; (* the paper's Table 2 value, when reported *)
  measured : int;
}

(* One measured cell: bring a fresh line to [state] held by a core at
   [distance] from the requester, then access it. *)
let measure_cell pid (op : Arch.memop) (state : Arch.cstate)
    (distance : Arch.distance) : cell option =
  let p = Platform.get pid in
  let topo = p.Platform.topo in
  match Topology.pair_at_distance topo distance with
  | None -> None
  | Some (requester, holder) ->
      let mem = Memory.create p in
      (* the model is deterministic: one shot equals the paper's
         10000-repetition mean *)
      let a = Memory.alloc ~home_core:holder mem in
      (* second sharer (for Shared/Owned) must differ from the requester *)
      let second =
        let n = Platform.n_cores p in
        let cand = (holder + 1) mod n in
        if cand = requester then (holder + 2) mod n else cand
      in
      (match state with
      | Arch.Owned when not (pid = Arch.Opteron || pid = Arch.Opteron2) ->
          ()
      | _ -> Memory.force_state mem ~holder ~second state a);
      if
        state = Arch.Owned && not (pid = Arch.Opteron || pid = Arch.Opteron2)
      then None
      else begin
        Memory.reset_busy mem a;
        (* operands chosen per op: a CAS that succeeds in place, a FAI
           incrementing by 1, a store/swap writing the current value *)
        let operand, operand2 =
          let v = Memory.peek mem a in
          match op with
          | Arch.Cas -> (v, v)
          | Arch.Fai -> (1, 0)
          | Arch.Load | Arch.Store | Arch.Tas | Arch.Swap -> (v, 0)
        in
        let latency, _ =
          Memory.access mem ~core:requester ~now:1_000 op a ~operand ~operand2
        in
        Some
          { op; state; distance; paper = Latencies.table2 pid op state distance;
            measured = latency }
      end

let states_for pid =
  match pid with
  | Arch.Opteron | Arch.Opteron2 ->
      [ Arch.Modified; Arch.Owned; Arch.Exclusive; Arch.Shared; Arch.Invalid ]
  | _ -> [ Arch.Modified; Arch.Exclusive; Arch.Shared; Arch.Invalid ]

let load_store_ops = [ Arch.Load; Arch.Store ]
let atomic_ops = [ Arch.Cas; Arch.Fai; Arch.Tas; Arch.Swap ]

(* All Table 2 cells for one platform, in paper row order. *)
let table2 pid : cell list =
  let distances = Latencies.distance_classes pid in
  List.concat_map
    (fun op ->
      List.concat_map
        (fun state ->
          List.filter_map (fun d -> measure_cell pid op state d) distances)
        (states_for pid))
    (load_store_ops @ atomic_ops)

(* Table 3: local cache and memory latencies. *)
let table3 pid : (Arch.cache_level * int option) list =
  let p = Platform.get pid in
  List.map (fun lvl -> (lvl, p.Platform.local lvl)) [ Arch.L1; Arch.L2; Arch.LLC; Arch.RAM ]

(* Worst-case Opteron directory placement (section 5.2): both cores two
   hops from the directory. *)
let opteron_remote_directory_load () : int =
  let p = Platform.opteron in
  let mem = Memory.create p in
  (* home on die 5; requester die 0, owner die 3: everybody remote *)
  let a = Memory.alloc ~home_core:(5 * 6) mem in
  ignore (Memory.access mem ~core:18 ~now:0 Arch.Store a ~operand:1);
  Memory.reset_busy mem a;
  let lat, _ = Memory.access mem ~core:0 ~now:1000 Arch.Load a in
  lat
