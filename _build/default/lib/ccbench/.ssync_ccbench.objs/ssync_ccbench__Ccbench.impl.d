lib/ccbench/ccbench.ml: Arch Latencies List Memory Platform Ssync_coherence Ssync_platform Topology
