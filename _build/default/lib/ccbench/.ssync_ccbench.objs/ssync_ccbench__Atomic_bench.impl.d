lib/ccbench/atomic_bench.ml: Arch Harness List Memory Platform Sim Ssync_coherence Ssync_engine Ssync_platform
