lib/ccbench/mp_bench.ml: Arch Array Channel Client_server Platform Sim Ssync_engine Ssync_platform Ssync_simmp Topology
