lib/ccbench/lock_bench.ml: Arch Array Float Harness List Lock_type Memory Platform Sim Simlock Ssync_coherence Ssync_engine Ssync_platform Ssync_simlocks Topology
