lib/engine/harness.ml: Array Memory Platform Printf Sim Ssync_coherence Ssync_platform
