lib/engine/sim.ml: Arch Effect Event_queue List Memory Platform Ssync_coherence Ssync_platform Topology
