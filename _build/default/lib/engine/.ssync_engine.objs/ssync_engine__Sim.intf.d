lib/engine/sim.mli: Ssync_coherence Ssync_platform
