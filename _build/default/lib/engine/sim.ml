(* The discrete-event simulation engine.

   Simulated threads are ordinary OCaml functions running as coroutines
   via effect handlers: every memory operation (or explicit pause)
   performs an effect; the engine computes the operation's virtual-time
   cost against the coherent memory model and resumes the thread when it
   completes.  This lets the lock/message-passing algorithms be written
   in direct style, exactly as their native counterparts. *)

open Ssync_platform
open Ssync_coherence

type t = {
  platform : Platform.t;
  mem : Memory.t;
  events : Event_queue.t;
  mutable now : int;
  mutable live_threads : int;
  mutable spawned : int;
}

type barrier = {
  mutable expected : int;
  mutable arrived : int;
  mutable waiters : (unit, unit) Effect.Deep.continuation list;
}

type _ Effect.t +=
  | E_mem : Arch.memop * Memory.addr * int * int -> int Effect.t
  | E_pause : int -> unit Effect.t
  | E_now : int Effect.t
  | E_self : (int * int) Effect.t (* (core, tid) *)
  | E_barrier : barrier -> unit Effect.t

let create platform =
  {
    platform;
    mem = Memory.create platform;
    events = Event_queue.create ();
    now = 0;
    live_threads = 0;
    spawned = 0;
  }

let memory t = t.mem
let platform t = t.platform
let now_of t = t.now

let schedule t ~at run =
  Event_queue.push t.events ~time:(max at t.now) run

(* ------------------------------------------------------------------ *)
(* Operations available *inside* a simulated thread.  Calling them
   outside of [spawn]ed code raises [Effect.Unhandled]. *)

let load a = Effect.perform (E_mem (Arch.Load, a, 0, 0))
let store a v = ignore (Effect.perform (E_mem (Arch.Store, a, v, 0)))

let cas a ~expected ~desired =
  Effect.perform (E_mem (Arch.Cas, a, expected, desired)) = 1

let fai a = Effect.perform (E_mem (Arch.Fai, a, 1, 0))

(* Atomic fetch-and-add by [k] (k >= 0); [faa a 0] is an exclusive
   atomic read: it returns the value and leaves the line Modified at the
   caller, modeling a prefetchw+load probe. *)
let faa a k =
  if k < 0 then invalid_arg "Sim.faa: negative increment";
  Effect.perform (E_mem (Arch.Fai, a, k, 0))

(* Store-class fetch-and-add: an increment of a field only this thread
   writes (e.g. a ticket lock's [current] on release).  Applied
   atomically by the model but costed as a plain store. *)
let faa_store a k =
  if k < 0 then invalid_arg "Sim.faa_store: negative increment";
  Effect.perform (E_mem (Arch.Fai, a, k, 1))

(* [tas] returns [true] when the caller won (the previous value was 0). *)
let tas a = Effect.perform (E_mem (Arch.Tas, a, 0, 0)) = 0
let swap a v = Effect.perform (E_mem (Arch.Swap, a, v, 0))
let pause cycles = if cycles > 0 then Effect.perform (E_pause cycles)
let now () = Effect.perform E_now
let self_core () = fst (Effect.perform E_self)
let self_tid () = snd (Effect.perform E_self)

let make_barrier n : barrier = { expected = n; arrived = 0; waiters = [] }
let await b = Effect.perform (E_barrier b)

(* ------------------------------------------------------------------ *)

let spawn t ~core body =
  Topology.check t.platform.Platform.topo core;
  let tid = t.spawned in
  t.spawned <- tid + 1;
  t.live_threads <- t.live_threads + 1;
  let open Effect.Deep in
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> t.live_threads <- t.live_threads - 1);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_mem (op, a, op1, op2) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let latency, v =
                    Memory.access t.mem ~core ~now:t.now op a ~operand:op1
                      ~operand2:op2
                  in
                  schedule t ~at:(t.now + latency) (fun () -> continue k v))
          | E_pause cycles ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule t ~at:(t.now + max 1 cycles) (fun () ->
                      continue k ()))
          | E_now ->
              Some (fun (k : (a, unit) continuation) -> continue k t.now)
          | E_self ->
              Some (fun (k : (a, unit) continuation) -> continue k (core, tid))
          | E_barrier b ->
              Some
                (fun (k : (a, unit) continuation) ->
                  b.arrived <- b.arrived + 1;
                  if b.arrived >= b.expected then begin
                    let to_wake = b.waiters in
                    b.waiters <- [];
                    b.arrived <- 0;
                    List.iter
                      (fun w -> schedule t ~at:t.now (fun () -> continue w ()))
                      to_wake;
                    schedule t ~at:t.now (fun () -> continue k ())
                  end
                  else b.waiters <- k :: b.waiters)
          | _ -> None);
    }
  in
  schedule t ~at:t.now (fun () -> match_with body () handler)

exception Simulation_runaway of int

(* Run the simulation until no events remain.  [until] drops any events
   scheduled after that time (a backstop against threads that spin
   forever); [max_events] bounds total event count. *)
let run ?(until = max_int) ?(max_events = 200_000_000) t =
  let executed = ref 0 in
  let continue_run = ref true in
  while !continue_run do
    match Event_queue.pop t.events with
    | None -> continue_run := false
    | Some ev ->
        if ev.Event_queue.time > until then continue_run := false
        else begin
          incr executed;
          if !executed > max_events then raise (Simulation_runaway !executed);
          t.now <- ev.Event_queue.time;
          ev.Event_queue.run ()
        end
  done;
  t.now
