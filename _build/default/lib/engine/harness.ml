(* The common measurement harness used by the paper-style benchmarks:
   spawn [threads] simulated threads placed per the platform's policy,
   synchronize them on a barrier, let each run its body until a virtual
   deadline, and report per-thread operation counts and throughput. *)

open Ssync_platform
open Ssync_coherence

type result = {
  platform : Platform.t;
  threads : int;
  ops : int array;       (* operations completed per thread *)
  duration : int;        (* measured window, cycles *)
  total_ops : int;
  mops : float;          (* total throughput in Mops/s (paper's unit) *)
}

let total_of ops = Array.fold_left ( + ) 0 ops

(* [body shared mem ~tid ~deadline] runs inside a simulated thread and
   returns the number of operations it completed; it must poll
   [Sim.now () < deadline] to terminate.  [setup] builds the shared
   state (locks, buffers...) before any thread starts; allocations
   default to the first participating thread's memory node, as in the
   paper (section 6). *)
let run (platform : Platform.t) ~threads ~duration
    ~(setup : Memory.t -> 'a)
    ~(body : 'a -> Memory.t -> tid:int -> deadline:int -> int) : result =
  if threads <= 0 then invalid_arg "Harness.run: threads must be positive";
  if threads > Platform.n_cores platform then
    invalid_arg
      (Printf.sprintf "Harness.run: %d threads > %d cores on %s" threads
         (Platform.n_cores platform) platform.Platform.name);
  let sim = Sim.create platform in
  let mem = Sim.memory sim in
  let shared = setup mem in
  let ops = Array.make threads 0 in
  let barrier = Sim.make_barrier threads in
  for tid = 0 to threads - 1 do
    let core = Platform.place platform tid in
    Sim.spawn sim ~core (fun () ->
        Sim.await barrier;
        let deadline = Sim.now () + duration in
        ops.(tid) <- body shared mem ~tid ~deadline)
  done;
  ignore (Sim.run sim ~until:(duration * 4));
  let total_ops = total_of ops in
  {
    platform;
    threads;
    ops;
    duration;
    total_ops;
    mops = Platform.mops platform ~ops:total_ops ~cycles:duration;
  }

(* Latency-style harness: like [run] but the body accumulates cycles of
   interest (e.g. acquire+release latency) into its return value
   together with the op count; returns mean cycles per op. *)
let run_latency platform ~threads ~duration ~setup
    ~(body : 'a -> Memory.t -> tid:int -> deadline:int -> int * int) :
    result * float =
  let cycles_acc = Array.make threads 0 in
  let r =
    run platform ~threads ~duration ~setup
      ~body:(fun shared mem ~tid ~deadline ->
        let n, cy = body shared mem ~tid ~deadline in
        cycles_acc.(tid) <- cy;
        n)
  in
  let total_cy = total_of cycles_acc in
  let mean =
    if r.total_ops = 0 then 0.
    else float_of_int total_cy /. float_of_int r.total_ops
  in
  (r, mean)
