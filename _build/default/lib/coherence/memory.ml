(* A simulated coherent memory: the machine-wide state of every cache
   line, the protocol transitions applied by loads/stores/atomics, and
   the virtual-time cost of each access.

   Granularity is one word per cache line — the paper's benchmarks pad
   shared words to a cache line each, so this loses nothing relevant.
   Costs come from the platform's calibrated cost model; contention is
   modeled by line occupancy: an exclusive transaction keeps the line
   (its directory entry / home-tile slot) busy for its duration, so
   concurrent writers serialize and latencies grow under contention,
   exactly the mechanism behind the paper's Figures 4 and 5. *)

open Ssync_platform

type addr = int

type line = {
  mutable state : Arch.cstate;
  mutable owner : int option;   (* core holding Modified/Owned/Exclusive *)
  mutable sharers : int list;   (* cores holding Shared copies *)
  home : int;                   (* home node (directory / home tile / memory) *)
  mutable value : int;
  mutable busy_until : int;     (* virtual time the line is occupied until *)
}

type t = {
  platform : Platform.t;
  mutable lines : line array;
  mutable n_lines : int;
  stats : Stats.t;
}

let dummy_line =
  { state = Arch.Invalid; owner = None; sharers = []; home = 0; value = 0; busy_until = 0 }

let create platform =
  { platform; lines = Array.make 1024 dummy_line; n_lines = 0; stats = Stats.create () }

let platform t = t.platform
let stats t = t.stats
let n_lines t = t.n_lines

let alloc ?(home_core = 0) ?(value = 0) t : addr =
  Topology.check t.platform.Platform.topo home_core;
  let home = t.platform.Platform.topo.Topology.mem_node_of_core home_core in
  if t.n_lines = Array.length t.lines then begin
    let bigger = Array.make (2 * Array.length t.lines) dummy_line in
    Array.blit t.lines 0 bigger 0 t.n_lines;
    t.lines <- bigger
  end;
  let a = t.n_lines in
  t.lines.(a) <-
    { state = Arch.Invalid; owner = None; sharers = []; home; value; busy_until = 0 };
  t.n_lines <- a + 1;
  a

let alloc_n ?(home_core = 0) ?(value = 0) t n : addr =
  if n <= 0 then invalid_arg "Memory.alloc_n: n must be positive";
  let base = alloc ~home_core ~value t in
  for _ = 2 to n do
    ignore (alloc ~home_core ~value t)
  done;
  base

let line t a =
  if a < 0 || a >= t.n_lines then
    invalid_arg (Printf.sprintf "Memory.line: address %d out of range" a);
  t.lines.(a)

(* Debug/test access that costs nothing and moves no state. *)
let peek t a = (line t a).value
let poke t a v = (line t a).value <- v

let view_of_line (l : line) : Cost_model.view =
  { state = l.state; owner = l.owner; sharers = l.sharers; home = l.home }

let holds l core = l.owner = Some core || List.mem core l.sharers

(* Is this access served entirely from the requester's own cache (no
   global transaction, no serialization)? *)
let is_local_hit (l : line) core (op : Arch.memop) =
  match op with
  | Arch.Load -> holds l core
  | Arch.Store -> l.owner = Some core
  | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap -> l.owner = Some core

(* Protocol state transition after [core] performs [op].  MOESI
   (Opteron) keeps a dirty line in the previous owner's cache in Owned
   state when another core loads it; the MESI variants downgrade both
   copies to Shared.  Any store/atomic invalidates all other copies and
   leaves the line Modified at [core].  Returns the number of remote
   copies invalidated. *)
let transition t (l : line) core (op : Arch.memop) =
  let moesi =
    match t.platform.Platform.id with
    | Arch.Opteron | Arch.Opteron2 -> true
    | Arch.Xeon | Arch.Xeon2 | Arch.Niagara | Arch.Tilera -> false
  in
  match op with
  | Arch.Load ->
      if holds l core then 0
      else begin
        (match (l.state, l.owner) with
        | (Arch.Modified, Some o) when moesi ->
            (* owner keeps its dirty copy in Owned state *)
            l.state <- Arch.Owned;
            l.owner <- Some o;
            l.sharers <- core :: l.sharers
        | ((Arch.Modified | Arch.Exclusive), Some o) ->
            l.state <- Arch.Shared;
            l.owner <- None;
            l.sharers <- core :: o :: l.sharers
        | (Arch.Owned, Some _) -> l.sharers <- core :: l.sharers
        | ((Arch.Shared | Arch.Forward), _) -> l.sharers <- core :: l.sharers
        | (Arch.Invalid, _) ->
            l.state <- Arch.Exclusive;
            l.owner <- Some core;
            l.sharers <- []
        | ((Arch.Modified | Arch.Exclusive), None)
        | (Arch.Owned, None) ->
            (* inconsistent: repair as a fresh exclusive fill *)
            l.state <- Arch.Exclusive;
            l.owner <- Some core;
            l.sharers <- [])
        ;
        0
      end
  | Arch.Store | Arch.Cas | Arch.Fai | Arch.Tas | Arch.Swap ->
      let killed =
        List.length (List.filter (fun c -> c <> core) l.sharers)
        + (match l.owner with Some o when o <> core -> 1 | _ -> 0)
      in
      l.state <- Arch.Modified;
      l.owner <- Some core;
      l.sharers <- [];
      killed

(* Apply the operation's data semantics; returns the result value
   delivered to the requester. *)
let apply_data (l : line) (op : Arch.memop) ~operand ~operand2 =
  match op with
  | Arch.Load -> l.value
  | Arch.Store ->
      l.value <- operand;
      0
  | Arch.Cas ->
      if l.value = operand then begin
        l.value <- operand2;
        1
      end
      else 0
  | Arch.Fai ->
      (* fetch-and-add: [operand] is the increment; 0 turns it into an
         atomic read that still acquires the line exclusively (the
         building block of the prefetchw-style probes) *)
      let old = l.value in
      l.value <- old + operand;
      old
  | Arch.Tas ->
      let old = l.value in
      l.value <- 1;
      old
  | Arch.Swap ->
      let old = l.value in
      l.value <- operand;
      old

(* Perform [op] on [a] from [core] at virtual time [now]; returns
   (completion latency in cycles, result value).  For [Cas], [operand]
   is the expected value and [operand2] the desired one; for [Store] and
   [Swap], [operand] is the value written. *)
let access ?(operand = 0) ?(operand2 = 0) t ~core ~now (op : Arch.memop) (a : addr)
    : int * int =
  Topology.check t.platform.Platform.topo core;
  let l = line t a in
  (* A fetch-and-add of 0 is an exclusive-prefetch probe (prefetchw +
     load, section 5.3): it costs a store-intent transfer, not a locked
     read-modify-write. *)
  let cost_op =
    match op with
    | Arch.Fai when operand = 0 || operand2 = 1 -> Arch.Store
    | _ -> op
  in
  let local = is_local_hit l core op in
  let start = if local then now else max now l.busy_until in
  let queued = start - now in
  let service =
    t.platform.Platform.op_latency cost_op ~requester:core (view_of_line l)
  in
  let pre_state = l.state in
  if not local then
    l.busy_until <-
      start
      + t.platform.Platform.occupancy cost_op ~state:pre_state ~latency:service;
  let invalidated = transition t l core op in
  let result = apply_data l op ~operand ~operand2 in
  let latency = queued + service in
  Stats.record t.stats op ~latency ~queued ~local ~invalidated;
  (latency, result)

(* Expected latency of [op] issued by [core] right now, without doing
   it — used by ccbench to report best-case protocol latencies. *)
let probe_latency t ~core (op : Arch.memop) (a : addr) : int =
  let l = line t a in
  t.platform.Platform.op_latency op ~requester:core (view_of_line l)

(* Test/bench helper: drive a line into a wanted state via real protocol
   transitions, like the real ccbench does ("brings the cache line in
   the desired state and then accesses it").  [holder] is the core that
   ends up holding the line. *)
let force_state t ~holder ?(second = -1) (st : Arch.cstate) (a : addr) =
  let l = line t a in
  (* wipe: back to invalid *)
  l.state <- Arch.Invalid;
  l.owner <- None;
  l.sharers <- [];
  l.busy_until <- 0;
  let second =
    if second >= 0 then second
    else (holder + 1) mod t.platform.Platform.topo.Topology.n_cores
  in
  match st with
  | Arch.Invalid -> ()
  | Arch.Exclusive ->
      ignore (access t ~core:holder ~now:0 Arch.Load a)
  | Arch.Modified ->
      ignore (access t ~core:holder ~now:0 Arch.Store a ~operand:l.value)
  | Arch.Shared | Arch.Forward ->
      ignore (access t ~core:holder ~now:0 Arch.Load a);
      ignore (access t ~core:second ~now:0 Arch.Load a);
      l.state <- Arch.Shared
  | Arch.Owned ->
      (* dirty at holder, then loaded by another core (MOESI only) *)
      ignore (access t ~core:holder ~now:0 Arch.Store a ~operand:l.value);
      ignore (access t ~core:second ~now:0 Arch.Load a);
      (match t.platform.Platform.id with
      | Arch.Opteron | Arch.Opteron2 -> ()
      | _ -> invalid_arg "Memory.force_state: Owned requires MOESI");
      l.busy_until <- 0

let reset_busy t a = (line t a).busy_until <- 0
