lib/coherence/memory.mli: Arch Platform Ssync_platform Stats
