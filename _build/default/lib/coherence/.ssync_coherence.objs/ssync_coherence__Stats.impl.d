lib/coherence/stats.ml: Format Ssync_platform
