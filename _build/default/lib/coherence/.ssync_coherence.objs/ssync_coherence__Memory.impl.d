lib/coherence/memory.ml: Arch Array Cost_model List Platform Printf Ssync_platform Stats Topology
