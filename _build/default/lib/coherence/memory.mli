(** The simulated coherent memory: machine-wide cache-line state, the
    protocol transitions applied by loads/stores/atomics, and the
    virtual-time cost of each access.

    Granularity is one word per cache line (the paper's benchmarks pad
    shared words to a line each).  Contention is modeled by line
    occupancy: an exclusive transaction keeps the line's directory
    entry / home-tile slot busy for its duration, so concurrent
    requests serialize — the mechanism behind the paper's contention
    results. *)

open Ssync_platform

type addr = int

type line = {
  mutable state : Arch.cstate;
  mutable owner : int option;  (** core holding Modified/Owned/Exclusive *)
  mutable sharers : int list;  (** cores holding Shared copies *)
  home : int;  (** home node (directory / home tile / memory) *)
  mutable value : int;
  mutable busy_until : int;  (** virtual time the line is occupied until *)
}

type t

val create : Platform.t -> t
val platform : t -> Platform.t
val stats : t -> Stats.t
val n_lines : t -> int

val alloc : ?home_core:int -> ?value:int -> t -> addr
(** Allocate one line homed at [home_core]'s memory node (first-touch). *)

val alloc_n : ?home_core:int -> ?value:int -> t -> int -> addr
(** Allocate [n] consecutive lines; returns the first address. *)

val access :
  ?operand:int -> ?operand2:int -> t -> core:int -> now:int ->
  Arch.memop -> addr -> int * int
(** [access t ~core ~now op a] performs [op] at virtual time [now];
    returns [(latency, result)].  For [Cas], [operand]/[operand2] are
    expected/desired (result 1 on success); for [Store]/[Swap],
    [operand] is the value written; for [Fai], [operand] is the
    increment — 0 makes it an exclusive-prefetch probe and
    [operand2 = 1] marks a store-class single-writer update (both
    costed as stores). *)

val probe_latency : t -> core:int -> Arch.memop -> addr -> int
(** Expected service latency of [op] right now, without performing it. *)

val line : t -> addr -> line
(** Raw line state (tests/debug). *)

val peek : t -> addr -> int
(** Read a value with no cost and no protocol transition. *)

val poke : t -> addr -> int -> unit
(** Write a value with no cost and no protocol transition. *)

val force_state :
  t -> holder:int -> ?second:int -> Arch.cstate -> addr -> unit
(** Drive a line into a state via real protocol transitions, as the
    original ccbench does; [holder] ends up holding the line, [second]
    is the extra sharer used for [Shared]/[Owned]. *)

val reset_busy : t -> addr -> unit
(** Clear the line's occupancy (benchmark setup). *)
