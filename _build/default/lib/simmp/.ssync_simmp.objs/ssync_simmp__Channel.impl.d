lib/simmp/channel.ml: Arch Memory Platform Queue Sim Ssync_coherence Ssync_engine Ssync_platform Topology
