lib/simmp/client_server.ml: Array Channel Ssync_engine
