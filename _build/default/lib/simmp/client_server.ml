(* Client-server communication over libssmp channels (paper sections 4.1
   and 6.2): one server, N clients, a request and a response channel per
   client.  The server scans its receive buffers round-robin — while a
   buffer is empty and cached the scan probe is a local load, so polling
   many idle clients is cheap; a client's write invalidates its buffer
   line and the next probe misses, which is how "receive from any" works
   over cache coherence. *)


type t = {
  server_core : int;
  client_cores : int array;
  to_server : Channel.t array;
  to_client : Channel.t array;
  mutable scan_from : int; (* round-robin fairness cursor *)
}

let create ?prefetchw ?use_hw mem platform ~server_core ~client_cores : t =
  let n = Array.length client_cores in
  if n = 0 then invalid_arg "Client_server.create: no clients";
  {
    server_core;
    client_cores;
    to_server =
      Array.init n (fun i ->
          Channel.create ?prefetchw ?use_hw mem platform
            ~sender_core:client_cores.(i) ~receiver_core:server_core);
    to_client =
      Array.init n (fun i ->
          Channel.create ?prefetchw ?use_hw mem platform
            ~sender_core:server_core ~receiver_core:client_cores.(i));
    scan_from = 0;
  }

let n_clients t = Array.length t.to_server

(* Server side: non-blocking scan for the next pending request. *)
let try_recv_any t : (int * int) option =
  let n = n_clients t in
  let rec scan k =
    if k = n then None
    else
      let i = (t.scan_from + k) mod n in
      match Channel.try_recv t.to_server.(i) with
      | Some v ->
          t.scan_from <- (i + 1) mod n;
          Some (i, v)
      | None -> scan (k + 1)
  in
  scan 0

(* Server side: blocking receive from any client. *)
let recv_any t : int * int =
  let rec loop () =
    match try_recv_any t with
    | Some r -> r
    | None ->
        Ssync_engine.Sim.pause 40;
        loop ()
  in
  loop ()

(* Server side: respond to client [i]. *)
let respond t i v = Channel.send t.to_client.(i) v

(* Client side: one-way request (no response expected). *)
let send_request t ~client v = Channel.send t.to_server.(client) v

(* Client side: round-trip request. *)
let request t ~client v =
  Channel.send t.to_server.(client) v;
  Channel.recv t.to_client.(client)

(* The paper's best hash-table configuration dedicates one server per
   three cores (section 6.3); exposed for the Figure 11 harness. *)
let default_server_share = 3
