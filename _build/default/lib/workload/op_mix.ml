(* Operation mixes, e.g. the paper's hash-table workload: 80% get,
   10% put, 10% remove (section 6.3). *)

type op = Get | Put | Remove

let op_name = function Get -> "get" | Put -> "put" | Remove -> "remove"

type t = { get : int; put : int; remove : int (* percentages *) }

let make ~get ~put ~remove =
  if get < 0 || put < 0 || remove < 0 || get + put + remove <> 100 then
    invalid_arg "Op_mix.make: percentages must be >= 0 and sum to 100";
  { get; put; remove }

(* The paper's standard mix, which keeps the table size constant. *)
let paper = make ~get:80 ~put:10 ~remove:10
let get_only = make ~get:100 ~put:0 ~remove:0
let put_only = make ~get:0 ~put:100 ~remove:0

let sample t rng =
  let r = Rng.int rng 100 in
  if r < t.get then Get else if r < t.get + t.put then Put else Remove
