(* Key distributions for the hash-table / key-value-store workloads:
   uniform and Zipfian over a finite key space. *)

type t =
  | Uniform of { n : int }
  | Zipf of { n : int; cdf : float array }

let uniform ~n =
  if n <= 0 then invalid_arg "Key_dist.uniform: n must be positive";
  Uniform { n }

(* Zipf with exponent [theta]: P(k) proportional to 1/(k+1)^theta.  The
   CDF is precomputed; sampling is a binary search. *)
let zipf ?(theta = 0.99) ~n () =
  if n <= 0 then invalid_arg "Key_dist.zipf: n must be positive";
  if theta <= 0. then invalid_arg "Key_dist.zipf: theta must be positive";
  let weights = Array.init n (fun k -> 1. /. Float.pow (float_of_int (k + 1)) theta) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.;
  Zipf { n; cdf }

let size = function Uniform { n } -> n | Zipf { n; _ } -> n

let sample t rng =
  match t with
  | Uniform { n } -> Rng.int rng n
  | Zipf { n; cdf } ->
      let u = Rng.float rng in
      (* first index whose cdf >= u *)
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
      in
      search 0 (n - 1)
