lib/workload/key_dist.ml: Array Float Rng
