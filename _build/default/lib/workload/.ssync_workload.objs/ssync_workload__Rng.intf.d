lib/workload/rng.mli:
