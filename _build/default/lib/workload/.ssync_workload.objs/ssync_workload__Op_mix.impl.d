lib/workload/op_mix.ml: Rng
