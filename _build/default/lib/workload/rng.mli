(** A small deterministic PRNG (splitmix64-style): workloads are
    reproducible across runs and independent of the global [Random]
    state. *)

type t

val create : seed:int -> t
val int : t -> int -> int
(** Uniform in [\[0, bound)]; [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
