(** Factory over the simulated libslock: the nine lock algorithms the
    paper evaluates (Figures 5-8) plus the two extra ticket variants of
    Figure 3, all running against the simulated coherent memory. *)

type algo =
  | Tas
  | Ttas
  | Ticket
  | Array_lock
  | Mutex  (** futex model: sleeps in the "kernel" under contention *)
  | Mcs
  | Clh
  | Hclh
  | Hticket
  | Ticket_spin  (** Figure 3: non-optimized ticket (no backoff) *)
  | Ticket_prefetchw  (** Figure 3: backoff + prefetchw probes *)

val paper_algos : algo list
(** The nine algorithms of Figures 5-8, in the paper's legend order. *)

val algos_for : Ssync_platform.Platform.t -> algo list
(** [paper_algos] minus the hierarchical locks on the single-socket
    platforms (as in the paper). *)

val name : algo -> string
val of_string : string -> algo option

val ticket_backoff_base : Ssync_platform.Platform.t -> int
(** The ticket lock's proportional-backoff base, tuned per platform to
    the typical lock-handoff time. *)

val create :
  ?home_core:int ->
  Ssync_coherence.Memory.t ->
  Ssync_platform.Platform.t ->
  n_threads:int ->
  algo ->
  Lock_type.t
(** [create mem p ~n_threads algo] instantiates [algo] in simulated
    memory.  [n_threads] bounds the thread ids that will use the lock
    (queue nodes, array slots); [home_core] places the lock's global
    lines (defaults to core 0, the paper's first-participant policy). *)
