(* The common lock interface of the simulated libslock: every algorithm
   is reduced to acquire/release closures usable from inside simulated
   threads.  [tid] identifies the calling thread (0..n_threads-1) for
   algorithms that keep per-thread queue nodes or slots. *)

type t = {
  name : string;
  acquire : tid:int -> unit;
  release : tid:int -> unit;
}

(* Run [f] under the lock. *)
let with_lock t ~tid f =
  t.acquire ~tid;
  let r = f () in
  t.release ~tid;
  r
