lib/simlocks/lock_type.ml:
