lib/simlocks/spinlocks.ml: Array Backoff Lock_type Memory Sim Ssync_coherence Ssync_engine
