lib/simlocks/simlock.ml: Arch Hierarchical List Lock_type Platform Queue_locks Spinlocks Ssync_platform String
