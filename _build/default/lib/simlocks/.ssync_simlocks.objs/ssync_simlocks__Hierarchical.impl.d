lib/simlocks/hierarchical.ml: Array Lock_type Platform Queue_locks Spinlocks Ssync_platform Topology
