lib/simlocks/simlock.mli: Lock_type Ssync_coherence Ssync_platform
