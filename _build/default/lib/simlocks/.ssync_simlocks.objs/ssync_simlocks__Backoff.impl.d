lib/simlocks/backoff.ml:
