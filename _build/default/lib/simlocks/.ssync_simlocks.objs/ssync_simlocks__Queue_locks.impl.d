lib/simlocks/queue_locks.ml: Array Lock_type Memory Sim Ssync_coherence Ssync_engine
