(* SSYNC — the umbrella public API of the suite.

   The paper's components map onto these modules:

   {2 Platform substrate (sections 3 and 5)}
   - {!Arch}, {!Topology}, {!Platform}: the four target platforms'
     topologies and calibrated cache-coherence cost models.
   - {!Latencies}: the paper's Tables 2/3 as reference data.
   - {!Memory}, {!Mem_stats}: the simulated coherent memory.
   - {!Sim}, {!Harness}: the discrete-event engine and the measurement
     harness (simulated threads are effects-based coroutines).

   {2 libslock (section 4.1)}
   - {!Simlock} and friends: the nine lock algorithms running on the
     simulator, used by every cross-platform figure.
   - {!Lock}, {!Libslock}: the same nine algorithms implemented natively
     over OCaml 5 [Atomic] for real multicore use.

   {2 libssmp (section 4.1)}
   - {!Sim_channel}, {!Sim_client_server}: message passing over simulated
     cache coherence (and Tilera hardware MP).
   - {!Channel}, {!Client_server}: native SPSC channels.

   {2 Microbenchmarks (section 4.2)}
   - {!Ccbench}, {!Atomic_bench}, {!Lock_bench}, {!Mp_bench}.

   {2 Concurrent software (section 4.3)}
   - {!Ssht}, {!Ssht_sim}, {!Ssht_mp}: the concurrent hash table.
   - {!Tm}, {!Tm_sim}: the TM2C-style software transactional memory.
   - {!Kvs}, {!Kvs_sim}, {!Kvs_driver}: the Memcached-like store.

   {2 Workloads and reporting}
   - {!Rng}, {!Key_dist}, {!Op_mix}, {!Table}, {!Series}. *)

module Arch = Ssync_platform.Arch
module Topology = Ssync_platform.Topology
module Latencies = Ssync_platform.Latencies
module Cost_model = Ssync_platform.Cost_model
module Platform = Ssync_platform.Platform
module Memory = Ssync_coherence.Memory
module Mem_stats = Ssync_coherence.Stats
module Sim = Ssync_engine.Sim
module Harness = Ssync_engine.Harness
module Simlock = Ssync_simlocks.Simlock
module Sim_lock = Ssync_simlocks.Lock_type
module Sim_channel = Ssync_simmp.Channel
module Sim_client_server = Ssync_simmp.Client_server
module Ccbench = Ssync_ccbench.Ccbench
module Atomic_bench = Ssync_ccbench.Atomic_bench
module Lock_bench = Ssync_ccbench.Lock_bench
module Mp_bench = Ssync_ccbench.Mp_bench
module Lock = Ssync_locks.Lock
module Libslock = Ssync_locks.Libslock
module Channel = Ssync_mp.Channel
module Client_server = Ssync_mp.Client_server
module Ssht = Ssync_ssht.Ssht
module Ssht_sim = Ssync_ssht.Ssht_sim
module Ssht_mp = Ssync_ssht.Ssht_mp
module Tm = Ssync_tm.Tm
module Tm_sim = Ssync_tm.Tm_sim
module Kvs = Ssync_kvs.Kvs
module Kvs_sim = Ssync_kvs.Kvs_sim
module Kvs_driver = Ssync_kvs.Driver
module Rng = Ssync_workload.Rng
module Key_dist = Ssync_workload.Key_dist
module Op_mix = Ssync_workload.Op_mix
module Table = Ssync_report.Table
module Series = Ssync_report.Series
