(* TM2C's shared-memory sibling: a portable word-based software
   transactional memory over a fixed array of cells, with lazy writes,
   per-cell versioned spinlock words and commit-time validation (the
   TL2 recipe).  Usable from any OCaml 5 domain.

   Cell metadata word: even = unlocked, value is 2*version;
                       odd  = locked by a committer. *)

type t = {
  clock : int Atomic.t;
  meta : int Atomic.t array;
  cells : int Atomic.t array;
}

exception Conflict (* internal: abort and retry *)
exception Too_many_retries of int

let create ~size : t =
  if size <= 0 then invalid_arg "Tm.create: size must be positive";
  {
    clock = Atomic.make 0;
    meta = Array.init size (fun _ -> Atomic.make 0);
    cells = Array.init size (fun _ -> Atomic.make 0);
  }

let size t = Array.length t.cells

(* Direct (non-transactional) accessors, for initialization and tests. *)
let unsafe_get t i = Atomic.get t.cells.(i)
let unsafe_set t i v = Atomic.set t.cells.(i) v

type tx = {
  tm : t;
  rv : int; (* read version: clock at txn start *)
  mutable reads : (int * int) list; (* (cell, version seen) *)
  writes : (int, int) Hashtbl.t; (* redo log *)
}

let read tx i =
  match Hashtbl.find_opt tx.writes i with
  | Some v -> v
  | None ->
      let m1 = Atomic.get tx.tm.meta.(i) in
      if m1 land 1 = 1 then raise Conflict;
      let v = Atomic.get tx.tm.cells.(i) in
      let m2 = Atomic.get tx.tm.meta.(i) in
      (* consistent, unlocked, and not newer than our snapshot *)
      if m1 <> m2 || m2 / 2 > tx.rv then raise Conflict;
      tx.reads <- (i, m1) :: tx.reads;
      v

let write tx i v = Hashtbl.replace tx.writes i v

(* Commit: lock the write set in index order (deadlock-free), take a
   write version, validate the read set, publish the redo log, release
   each cell with the new version. *)
let commit tx =
  let tm = tx.tm in
  let ws = List.sort compare (Hashtbl.fold (fun i _ acc -> i :: acc) tx.writes []) in
  let locked = ref [] in
  let unlock_all () =
    List.iter (fun (i, m) -> Atomic.set tm.meta.(i) m) !locked
  in
  let lock_cell i =
    let m = Atomic.get tm.meta.(i) in
    if m land 1 = 1 || m / 2 > tx.rv then begin
      unlock_all ();
      raise Conflict
    end;
    if Atomic.compare_and_set tm.meta.(i) m (m lor 1) then
      locked := (i, m) :: !locked
    else begin
      unlock_all ();
      raise Conflict
    end
  in
  List.iter lock_cell ws;
  let wv = Atomic.fetch_and_add tm.clock 1 + 1 in
  let check (i, seen) =
    let m = Atomic.get tm.meta.(i) in
    let ours = List.mem_assoc i !locked in
    if (m land 1 = 1 && not ours) || m lsr 1 <> seen lsr 1 then begin
      unlock_all ();
      raise Conflict
    end
  in
  List.iter check tx.reads;
  Hashtbl.iter (fun i v -> Atomic.set tm.cells.(i) v) tx.writes;
  List.iter (fun (i, _) -> Atomic.set tm.meta.(i) (wv * 2)) !locked

type stats = { mutable commits : int; mutable aborts : int }

let global_stats = { commits = 0; aborts = 0 }

(* Run [f] transactionally, retrying on conflicts (bounded by
   [max_retries], default effectively unbounded). *)
let atomically ?(max_retries = max_int) ?(stats = global_stats) t f =
  let rec attempt n backoff =
    if n > max_retries then raise (Too_many_retries n);
    let tx =
      { tm = t; rv = Atomic.get t.clock; reads = []; writes = Hashtbl.create 8 }
    in
    match
      let r = f tx in
      commit tx;
      r
    with
    | r ->
        stats.commits <- stats.commits + 1;
        r
    | exception Conflict ->
        stats.aborts <- stats.aborts + 1;
        for _ = 1 to backoff do
          Domain.cpu_relax ()
        done;
        attempt (n + 1) (min 4096 (backoff * 2))
  in
  attempt 1 8
