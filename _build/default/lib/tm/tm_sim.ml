(* The two TM2C backends on the simulator, for the paper's section 8
   remark that the STM results mirror the hash table's: under low
   contention the lock-based (shared-memory) version wins; under extreme
   contention the message-passing version scales better.

   - [Lock_based]: two-phase locking over per-cell spinlock lines with
     sorted acquisition, then in-place writes (the "shared memory
     version built with the spin locks of libslock").
   - [Mp_based]: TM2C proper — distributed lock-service (DSL) threads
     own partitions of the cells; transactions acquire each cell's lock
     by messaging its server and commit by sending the writes back. *)


open Ssync_coherence
open Ssync_engine

(* A transaction reads a set of cells, computes, and writes some of
   them atomically: [f] receives the values of [cells] (in order) and
   returns the (cell, value) writes, which must target cells in the
   read set (2PL: everything touched is locked up front). *)

(* ----------------------- lock-based backend ---------------------- *)

type lock_based = {
  locks : Memory.addr array; (* TAS word per cell *)
  values : Memory.addr array;
}

let create_lock_based ?(home_core = 0) mem ~n_cells : lock_based =
  {
    locks = Array.init n_cells (fun _ -> Memory.alloc ~home_core mem);
    values = Array.init n_cells (fun _ -> Memory.alloc ~home_core mem);
  }

(* Execute one transaction over [cells]; 2PL with sorted lock
   acquisition: no deadlock, no aborts.  Returns the values read. *)
let transaction_lock_based (t : lock_based) ~cells
    (f : int array -> (int * int) list) : int array =
  let cells = List.sort_uniq compare cells in
  List.iter
    (fun c ->
      while not (Sim.tas t.locks.(c)) do
        Sim.pause 120
      done)
    cells;
  let values = Array.of_list (List.map (fun c -> Sim.load t.values.(c)) cells) in
  let writes = f values in
  List.iter
    (fun (c, v) ->
      if not (List.mem c cells) then
        invalid_arg "Tm_sim: write outside the locked set";
      Sim.store t.values.(c) v)
    writes;
  List.iter (fun c -> Sim.store t.locks.(c) 0) cells;
  values

(* ------------------------- MP backend ---------------------------- *)

(* Message encoding: op (2 bits) | cell (24 bits) | value (24 bits,
   biased by 2^23 so cell values in [-2^23, 2^23) — e.g. overdrafted
   bank balances — stay encodable). *)
let op_lock = 0 (* lock cell; reply = current value + grant bit *)
let op_commit = 1 (* write value and unlock *)
let op_release = 2 (* unlock without writing *)
let op_stop = 3

let value_bias = 1 lsl 23

let encode ~op ~cell ~value =
  if value < -value_bias || value >= value_bias then
    invalid_arg "Tm_sim: value out of the 24-bit encodable range";
  (op lsl 48) lor (cell lsl 24) lor (value + value_bias)

let decode m =
  ( (m lsr 48) land 3,
    (m lsr 24) land 0xFFFFFF,
    (m land 0xFFFFFF) - value_bias )

type mp_based = {
  n_cells : int;
  n_servers : int;
  channels : Ssync_simmp.Client_server.t array; (* per server *)
  tables : int array array; (* per server: cell values *)
  owners : int array array; (* per server: -1 free, else client id *)
}

let create_mp_based mem platform ~n_cells ~server_cores ~client_cores :
    mp_based =
  let n_servers = Array.length server_cores in
  {
    n_cells;
    n_servers;
    channels =
      Array.map
        (fun sc ->
          Ssync_simmp.Client_server.create mem platform ~server_core:sc
            ~client_cores)
        server_cores;
    tables = Array.init n_servers (fun _ -> Array.make n_cells 0);
    owners = Array.init n_servers (fun _ -> Array.make n_cells (-1));
  }

let server_of t cell = cell mod t.n_servers

(* DSL server [i]: grants cell locks, applies committed writes. *)
let run_mp_server (t : mp_based) i =
  let cs = t.channels.(i) in
  let table = t.tables.(i) and owners = t.owners.(i) in
  let stops = ref 0 in
  let n_clients = Ssync_simmp.Client_server.n_clients cs in
  while !stops < n_clients do
    let client, msg = Ssync_simmp.Client_server.recv_any cs in
    let op, cell, value = decode msg in
    if op = op_stop then incr stops
    else if op = op_lock then begin
      if owners.(cell) = -1 || owners.(cell) = client then begin
        owners.(cell) <- client;
        (* grant: bit 24 set, biased value in the low bits *)
        Ssync_simmp.Client_server.respond cs client
          ((1 lsl 24) lor ((table.(cell) + value_bias) land 0xFFFFFF))
      end
      else Ssync_simmp.Client_server.respond cs client 0 (* deny *)
    end
    else begin
      (if op = op_commit then table.(cell) <- value);
      if owners.(cell) = client then owners.(cell) <- -1;
      Ssync_simmp.Client_server.respond cs client 1
    end
  done

exception Denied of int list (* cells locked so far *)

(* Execute one transaction from [client]: visible 2PL over the DSL
   servers with abort-and-retry on denial (TM2C's contention policy).
   [f] receives the granted values of [cells] (sorted order) and returns
   the writes. *)
let transaction_mp (t : mp_based) ~client ~cells
    (f : int array -> (int * int) list) : int array =
  let cells = List.sort_uniq compare cells in
  let rec attempt backoff =
    let values = Hashtbl.create 8 in
    match
      List.iter
        (fun c ->
          let s = server_of t c in
          let r =
            Ssync_simmp.Client_server.request t.channels.(s) ~client
              (encode ~op:op_lock ~cell:c ~value:0)
          in
          if r land (1 lsl 24) = 0 then
            raise (Denied (List.filter (fun c' -> c' < c) cells))
          else Hashtbl.replace values c ((r land 0xFFFFFF) - value_bias))
        cells
    with
    | () ->
        let varr = Array.of_list (List.map (fun c -> Hashtbl.find values c) cells) in
        let writes = f varr in
        List.iter
          (fun (c, _) ->
            if not (List.mem c cells) then
              invalid_arg "Tm_sim: write outside the locked set")
          writes;
        (* commit: send writes, release pure reads *)
        List.iter
          (fun c ->
            let s = server_of t c in
            match List.assoc_opt c writes with
            | Some v ->
                ignore
                  (Ssync_simmp.Client_server.request t.channels.(s) ~client
                     (encode ~op:op_commit ~cell:c ~value:v))
            | None ->
                ignore
                  (Ssync_simmp.Client_server.request t.channels.(s) ~client
                     (encode ~op:op_release ~cell:c ~value:0)))
          cells;
        varr
    | exception Denied held ->
        List.iter
          (fun c ->
            let s = server_of t c in
            ignore
              (Ssync_simmp.Client_server.request t.channels.(s) ~client
                 (encode ~op:op_release ~cell:c ~value:0)))
          held;
        Sim.pause backoff;
        attempt (min 8000 (backoff * 2))
  in
  attempt 200

let stop_mp (t : mp_based) ~client =
  for i = 0 to t.n_servers - 1 do
    Ssync_simmp.Client_server.send_request t.channels.(i) ~client
      (encode ~op:op_stop ~cell:0 ~value:0)
  done

