(** TM2C's shared-memory sibling: a portable word-based software
    transactional memory over a fixed array of cells, with lazy writes,
    per-cell versioned lock words and commit-time validation (the TL2
    recipe).  Usable from any OCaml 5 domain. *)

type t
type tx

exception Too_many_retries of int

val create : size:int -> t
val size : t -> int

val unsafe_get : t -> int -> int
(** Non-transactional read, for initialization and testing. *)

val unsafe_set : t -> int -> int -> unit
(** Non-transactional write, for initialization and testing. *)

val read : tx -> int -> int
(** Transactional read; sees the transaction's own buffered writes. *)

val write : tx -> int -> int -> unit
(** Transactional write, buffered until commit. *)

type stats = { mutable commits : int; mutable aborts : int }

val global_stats : stats

val atomically : ?max_retries:int -> ?stats:stats -> t -> (tx -> 'a) -> 'a
(** [atomically t f] runs [f] as a transaction, retrying on conflicts
    with exponential backoff.  Raises [Too_many_retries] beyond
    [max_retries] (default: effectively unbounded).  [f] must not
    perform irrevocable side effects: it may run several times. *)
