lib/tm/tm_sim.ml: Array Hashtbl List Memory Sim Ssync_coherence Ssync_engine Ssync_simmp
