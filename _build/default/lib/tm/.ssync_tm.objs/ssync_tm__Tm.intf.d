lib/tm/tm.mli:
