lib/tm/tm.ml: Array Atomic Domain Hashtbl List
