lib/kvs/kvs.mli: Ssync_locks
