lib/kvs/kvs.ml: Array Atomic Hashtbl Libslock List Lock Ssync_locks Unix
