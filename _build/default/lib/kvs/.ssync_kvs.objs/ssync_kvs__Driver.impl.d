lib/kvs/driver.ml: Atomic Domain Key_dist Kvs List Rng Ssync_workload String Unix
