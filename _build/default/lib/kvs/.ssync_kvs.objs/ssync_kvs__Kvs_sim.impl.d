lib/kvs/kvs_sim.ml: Arch Array Harness Lock_type Memory Platform Rng Sim Simlock Ssync_coherence Ssync_engine Ssync_platform Ssync_simlocks Ssync_workload
