(* An in-memory key-value store in the style of Memcached 1.4 (paper
   section 6.4): a fixed-bucket hash table under fine-grained bucket
   locks, a global LRU list and a global maintenance path — the global
   locks are what the paper's set-only test stresses.  All locks come
   from the native libslock, so the store can be run with MUTEX, TAS,
   TICKET, MCS, ... exactly like the paper's modified Memcached.

   Keys are strings, values are strings; expiry is against an injectable
   clock so tests are deterministic. *)

open Ssync_locks

type item = {
  key : string;
  mutable value : string;
  mutable flags : int;
  mutable expires_at : float; (* 0. = never *)
  mutable cas_id : int;
  (* intrusive global LRU list *)
  mutable lru_prev : item option;
  mutable lru_next : item option;
  mutable live : bool; (* false once deleted/evicted *)
}

type bucket = { lock : Lock.t; tbl : (string, item) Hashtbl.t }

type stats = {
  mutable gets : int;
  mutable get_hits : int;
  mutable sets : int;
  mutable deletes : int;
  mutable evictions : int;
  mutable expired_reaped : int;
  mutable global_lock_acquisitions : int;
}

type t = {
  n_buckets : int;
  buckets : bucket array;
  capacity : int; (* max live items before LRU eviction *)
  lru_lock : Lock.t; (* the cache_lock equivalent *)
  mutable lru_head : item option; (* least recently used *)
  mutable lru_tail : item option; (* most recently used *)
  mutable n_items : int;
  cas_counter : int Atomic.t;
  now : unit -> float;
  maintenance_every : int; (* sets between global maintenance sweeps *)
  set_count : int Atomic.t;
  stats : stats;
  stats_lock : Lock.t;
}

let default_now () = Unix.gettimeofday ()

let create ?(lock_algo = Libslock.Mutex) ?max_threads ?(n_buckets = 1024)
    ?(capacity = 100_000) ?(maintenance_every = 64) ?(now = default_now) () :
    t =
  if n_buckets <= 0 || capacity <= 0 then
    invalid_arg "Kvs.create: sizes must be positive";
  let mk_lock () = Libslock.create ?max_threads lock_algo in
  {
    n_buckets;
    buckets =
      Array.init n_buckets (fun _ ->
          { lock = mk_lock (); tbl = Hashtbl.create 16 });
    capacity;
    lru_lock = mk_lock ();
    lru_head = None;
    lru_tail = None;
    n_items = 0;
    cas_counter = Atomic.make 1;
    now;
    maintenance_every;
    set_count = Atomic.make 0;
    stats =
      {
        gets = 0;
        get_hits = 0;
        sets = 0;
        deletes = 0;
        evictions = 0;
        expired_reaped = 0;
        global_lock_acquisitions = 0;
      };
    stats_lock = mk_lock ();
  }

let bucket_of t key = t.buckets.(Hashtbl.hash key mod t.n_buckets)
let expired t it = it.expires_at > 0. && it.expires_at <= t.now ()

(* ---------------------- LRU list management ---------------------- *)
(* All of these require [t.lru_lock] held. *)

(* NOTE: the LRU list is cyclic through prev/next options, so only
   physical equality may be used on items. *)
let is_head t it = match t.lru_head with Some h -> h == it | None -> false
let is_tail t it = match t.lru_tail with Some tl -> tl == it | None -> false

let lru_unlink t it =
  (match it.lru_prev with
  | Some p -> p.lru_next <- it.lru_next
  | None -> if is_head t it then t.lru_head <- it.lru_next);
  (match it.lru_next with
  | Some n -> n.lru_prev <- it.lru_prev
  | None -> if is_tail t it then t.lru_tail <- it.lru_prev);
  it.lru_prev <- None;
  it.lru_next <- None

let lru_append t it =
  it.lru_prev <- t.lru_tail;
  it.lru_next <- None;
  (match t.lru_tail with Some tl -> tl.lru_next <- Some it | None -> ());
  t.lru_tail <- Some it;
  if t.lru_head = None then t.lru_head <- Some it

let lru_touch t it =
  lru_unlink t it;
  lru_append t it

(* ------------------------- operations ---------------------------- *)

let bump_stat t f =
  Lock.with_lock t.stats_lock (fun () -> f t.stats)

(* [get t key] — [None] on miss or expired. *)
let get t key : string option =
  let b = bucket_of t key in
  let r =
    Lock.with_lock b.lock (fun () ->
        match Hashtbl.find_opt b.tbl key with
        | Some it when it.live && not (expired t it) -> Some it
        | _ -> None)
  in
  bump_stat t (fun s ->
      s.gets <- s.gets + 1;
      if r <> None then s.get_hits <- s.get_hits + 1);
  match r with
  | None -> None
  | Some it ->
      (* the paper's point: even reads take the global cache lock to
         maintain the LRU *)
      Lock.with_lock t.lru_lock (fun () -> if it.live then lru_touch t it);
      Some it.value

(* Evict the least-recently-used live item; called without bucket locks
   held (lock order: bucket -> lru is never reversed). *)
let evict_one t =
  let victim =
    Lock.with_lock t.lru_lock (fun () ->
        match t.lru_head with
        | Some it ->
            lru_unlink t it;
            t.n_items <- t.n_items - 1;
            Some it
        | None -> None)
  in
  match victim with
  | None -> ()
  | Some it ->
      let b = bucket_of t it.key in
      Lock.with_lock b.lock (fun () ->
          if it.live then begin
            it.live <- false;
            Hashtbl.remove b.tbl it.key
          end);
      bump_stat t (fun s -> s.evictions <- s.evictions + 1)

(* Global maintenance: sweep the LRU list for expired items under the
   global lock (the rebalancing/maintenance path that "dynamically
   switches to a global lock for short periods"). *)
let maintenance t =
  bump_stat t (fun s ->
      s.global_lock_acquisitions <- s.global_lock_acquisitions + 1);
  let reaped =
    Lock.with_lock t.lru_lock (fun () ->
        let rec collect acc = function
          | None -> acc
          | Some it ->
              let next = it.lru_next in
              let acc = if expired t it then it :: acc else acc in
              collect acc next
        in
        let dead = collect [] t.lru_head in
        List.iter
          (fun it ->
            lru_unlink t it;
            t.n_items <- t.n_items - 1)
          dead;
        dead)
  in
  List.iter
    (fun it ->
      let b = bucket_of t it.key in
      Lock.with_lock b.lock (fun () ->
          if it.live then begin
            it.live <- false;
            Hashtbl.remove b.tbl it.key
          end))
    reaped;
  bump_stat t (fun s ->
      s.expired_reaped <- s.expired_reaped + List.length reaped)

type set_policy = Set | Add | Replace

(* [set t key value] stores unconditionally; [Add] only if absent,
   [Replace] only if present.  Returns [true] when stored. *)
let set_with t policy ?(flags = 0) ?(ttl = 0.) key value : bool =
  let b = bucket_of t key in
  let stored, fresh_item =
    Lock.with_lock b.lock (fun () ->
        let existing =
          match Hashtbl.find_opt b.tbl key with
          | Some it when it.live && not (expired t it) -> Some it
          | _ -> None
        in
        match (policy, existing) with
        | (Add, Some _) -> (false, None)
        | (Replace, None) -> (false, None)
        | ((Set | Add | Replace), _) -> (
            let expires_at = if ttl <= 0. then 0. else t.now () +. ttl in
            match existing with
            | Some it ->
                it.value <- value;
                it.flags <- flags;
                it.expires_at <- expires_at;
                it.cas_id <- Atomic.fetch_and_add t.cas_counter 1;
                (true, None)
            | None ->
                let it =
                  {
                    key;
                    value;
                    flags;
                    expires_at;
                    cas_id = Atomic.fetch_and_add t.cas_counter 1;
                    lru_prev = None;
                    lru_next = None;
                    live = true;
                  }
                in
                Hashtbl.replace b.tbl key it;
                (true, Some it)))
  in
  if stored then begin
    (match fresh_item with
    | Some it ->
        Lock.with_lock t.lru_lock (fun () ->
            lru_append t it;
            t.n_items <- t.n_items + 1)
    | None -> ());
    if t.n_items > t.capacity then evict_one t;
    bump_stat t (fun s -> s.sets <- s.sets + 1);
    let c = Atomic.fetch_and_add t.set_count 1 in
    if (c + 1) mod t.maintenance_every = 0 then maintenance t
  end;
  stored

let set t ?flags ?ttl key value = ignore (set_with t Set ?flags ?ttl key value)
let add t ?flags ?ttl key value = set_with t Add ?flags ?ttl key value
let replace t ?flags ?ttl key value = set_with t Replace ?flags ?ttl key value

(* Compare-and-swap in the Memcached sense: store only if the item's
   cas token is unchanged.  [gets] returns the token. *)
let gets t key : (string * int) option =
  let b = bucket_of t key in
  Lock.with_lock b.lock (fun () ->
      match Hashtbl.find_opt b.tbl key with
      | Some it when it.live && not (expired t it) -> Some (it.value, it.cas_id)
      | _ -> None)

let cas t key value ~token : bool =
  let b = bucket_of t key in
  Lock.with_lock b.lock (fun () ->
      match Hashtbl.find_opt b.tbl key with
      | Some it when it.live && not (expired t it) && it.cas_id = token ->
          it.value <- value;
          it.cas_id <- Atomic.fetch_and_add t.cas_counter 1;
          true
      | _ -> false)

let delete t key : bool =
  let b = bucket_of t key in
  let deleted =
    Lock.with_lock b.lock (fun () ->
        match Hashtbl.find_opt b.tbl key with
        | Some it when it.live ->
            it.live <- false;
            Hashtbl.remove b.tbl key;
            Some it
        | _ -> None)
  in
  match deleted with
  | None -> false
  | Some it ->
      Lock.with_lock t.lru_lock (fun () ->
          let in_lru =
            it.lru_prev <> None || it.lru_next <> None || is_head t it
          in
          if in_lru then begin
            lru_unlink t it;
            t.n_items <- t.n_items - 1
          end);
      bump_stat t (fun s -> s.deletes <- s.deletes + 1);
      true

(* Numeric increment (Memcached incr); [None] if absent or non-numeric. *)
let incr t key by : int option =
  let b = bucket_of t key in
  Lock.with_lock b.lock (fun () ->
      match Hashtbl.find_opt b.tbl key with
      | Some it when it.live && not (expired t it) -> (
          match int_of_string_opt it.value with
          | Some n ->
              let n' = n + by in
              it.value <- string_of_int n';
              Some n'
          | None -> None)
      | _ -> None)

let flush_all t =
  Array.iter
    (fun b ->
      Lock.with_lock b.lock (fun () ->
          Hashtbl.iter (fun _ it -> it.live <- false) b.tbl;
          Hashtbl.reset b.tbl))
    t.buckets;
  Lock.with_lock t.lru_lock (fun () ->
      t.lru_head <- None;
      t.lru_tail <- None;
      t.n_items <- 0)

let size t = Lock.with_lock t.lru_lock (fun () -> t.n_items)

let stats t : stats =
  Lock.with_lock t.stats_lock (fun () ->
      {
        gets = t.stats.gets;
        get_hits = t.stats.get_hits;
        sets = t.stats.sets;
        deletes = t.stats.deletes;
        evictions = t.stats.evictions;
        expired_reaped = t.stats.expired_reaped;
        global_lock_acquisitions = t.stats.global_lock_acquisitions;
      })
