(** An in-memory key-value store in the style of Memcached 1.4 (paper
    section 6.4): a fixed-bucket hash table under fine-grained bucket
    locks, a global LRU list and a global maintenance path.  All locks
    come from the native libslock, so the store runs with MUTEX, TAS,
    TICKET, MCS, ... exactly like the paper's modified Memcached. *)

type t

type stats = {
  mutable gets : int;
  mutable get_hits : int;
  mutable sets : int;
  mutable deletes : int;
  mutable evictions : int;
  mutable expired_reaped : int;
  mutable global_lock_acquisitions : int;
}

val create :
  ?lock_algo:Ssync_locks.Libslock.algo ->
  ?max_threads:int ->
  ?n_buckets:int ->
  ?capacity:int ->
  ?maintenance_every:int ->
  ?now:(unit -> float) ->
  unit ->
  t
(** [create ()] builds an empty store.  [capacity] bounds live items
    before LRU eviction; [maintenance_every] is the number of sets
    between global maintenance sweeps (the paper's "switches to a
    global lock" path); [now] injects the clock (for deterministic
    expiry in tests). *)

val get : t -> string -> string option
(** [None] on miss or expired.  Hits touch the global LRU. *)

val set : t -> ?flags:int -> ?ttl:float -> string -> string -> unit
val add : t -> ?flags:int -> ?ttl:float -> string -> string -> bool
(** Store only if absent; [true] when stored. *)

val replace : t -> ?flags:int -> ?ttl:float -> string -> string -> bool
(** Store only if present; [true] when stored. *)

val gets : t -> string -> (string * int) option
(** Value plus its cas token. *)

val cas : t -> string -> string -> token:int -> bool
(** Memcached-style compare-and-swap: store only if the item's cas
    token is unchanged. *)

val delete : t -> string -> bool
val incr : t -> string -> int -> int option
(** Numeric increment; [None] if absent or non-numeric. *)

val flush_all : t -> unit
val size : t -> int
val stats : t -> stats

val maintenance : t -> unit
(** Run the global maintenance sweep now (normally triggered every
    [maintenance_every] sets): reaps expired items under the global
    lock. *)
