(* A memslap-like load generator for the native store: N domains issue a
   get/set mix over a keyspace for a fixed number of operations and
   report per-thread counts.  (On this container real parallelism is
   limited by the core count; the driver is used for correctness under
   preemptive interleaving and for uncontended Bechamel baselines.) *)

open Ssync_workload

type result = {
  ops : int;
  get_hits : int;
  get_misses : int;
  elapsed_s : float;
  kops : float;
}

type mix = { set_pct : int (* 0..100; rest are gets *) }

let set_only = { set_pct = 100 }
let get_only = { set_pct = 0 }
let mixed pct =
  if pct < 0 || pct > 100 then invalid_arg "Driver.mixed: pct out of range";
  { set_pct = pct }

let key_of i = "key:" ^ string_of_int i

(* Preload [n_keys] items so gets can hit. *)
let preload kvs ~n_keys =
  for i = 0 to n_keys - 1 do
    Kvs.set kvs (key_of i) (String.make 32 'v')
  done

let run kvs ~threads ~ops_per_thread ~n_keys ~(mix : mix) : result =
  if threads <= 0 || ops_per_thread <= 0 || n_keys <= 0 then
    invalid_arg "Driver.run: all parameters must be positive";
  let hits = Atomic.make 0 and misses = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker seed () =
    let rng = Rng.create ~seed in
    let dist = Key_dist.uniform ~n:n_keys in
    for _ = 1 to ops_per_thread do
      let k = key_of (Key_dist.sample dist rng) in
      if Rng.int rng 100 < mix.set_pct then Kvs.set kvs k (String.make 32 'x')
      else
        match Kvs.get kvs k with
        | Some _ -> ignore (Atomic.fetch_and_add hits 1)
        | None -> ignore (Atomic.fetch_and_add misses 1)
    done
  in
  let domains =
    List.init threads (fun i -> Domain.spawn (worker (i + 1)))
  in
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = threads * ops_per_thread in
  {
    ops = total;
    get_hits = Atomic.get hits;
    get_misses = Atomic.get misses;
    elapsed_s = elapsed;
    kops = (if elapsed > 0. then float_of_int total /. elapsed /. 1000. else 0.);
  }
