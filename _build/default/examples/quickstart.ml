(* Quickstart: the three faces of SSYNC in one file.

   1. Native locks: protect a shared counter from multiple domains.
   2. Native message passing: a tiny client-server exchange.
   3. The simulator: ask "how would a ticket lock behave on a 48-core
      Opteron?" without owning one.

   Run with:  dune exec examples/quickstart.exe *)

open Ssync

let native_locks () =
  print_endline "-- native locks --";
  let lock = Libslock.create Libslock.Ticket in
  let counter = ref 0 in
  let worker () =
    for _ = 1 to 10_000 do
      Lock.with_lock lock (fun () -> incr counter)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Printf.printf "4 domains x 10000 increments under %s = %d\n"
    lock.Lock.name !counter

let native_message_passing () =
  print_endline "-- native message passing --";
  let cs : (int, int) Client_server.t = Client_server.create ~clients:2 in
  let server =
    Domain.spawn (fun () ->
        for _ = 1 to 10 do
          let client, v = Client_server.recv_any cs in
          Client_server.respond cs client (v * v)
        done)
  in
  let client i =
    Domain.spawn (fun () ->
        for k = 1 to 5 do
          let r = Client_server.request cs ~client:i k in
          Printf.printf "client %d: %d^2 = %d\n" i k r
        done)
  in
  let c0 = client 0 and c1 = client 1 in
  Domain.join c0;
  Domain.join c1;
  Domain.join server

let simulated_lock_on_opteron () =
  print_endline "-- simulated: ticket lock on the 48-core Opteron --";
  List.iter
    (fun threads ->
      let r =
        Lock_bench.throughput ~duration:200_000 Arch.Opteron Simlock.Ticket
          ~threads ~n_locks:1
      in
      Printf.printf "  %2d threads -> %6.2f Mops/s\n" threads
        r.Harness.mops)
    [ 1; 6; 18; 48 ];
  print_endline
    "  (single-lock throughput collapses across sockets — the paper's
   headline observation)"

let () =
  native_locks ();
  native_message_passing ();
  simulated_lock_on_opteron ()
