(* A session against the Memcached-like store: the classic protocol
   operations (set/get/add/replace/cas/incr/delete, TTLs, LRU eviction),
   then a small memslap-like load from several domains.

   Run with:  dune exec examples/kvs_session.exe *)

open Ssync

let show label v =
  Printf.printf "%-34s %s\n" label
    (match v with Some s -> Printf.sprintf "%S" s | None -> "(miss)")

let () =
  (* small capacity so eviction is observable.  MUTEX, not a spin lock:
     with more domains than cores, blocking locks are the right choice
     (the paper's own conclusion about Pthread mutexes) *)
  let kvs = Kvs.create ~lock_algo:Libslock.Mutex ~capacity:1000 () in

  print_endline "-- protocol walkthrough --";
  Kvs.set kvs "user:1" "tudor";
  Kvs.set kvs "user:2" "rachid";
  show "get user:1" (Kvs.get kvs "user:1");
  Printf.printf "add user:1 (should fail): %b\n" (Kvs.add kvs "user:1" "x");
  Printf.printf "replace user:2: %b\n" (Kvs.replace kvs "user:2" "vasileios");
  show "get user:2" (Kvs.get kvs "user:2");

  (* cas round *)
  (match Kvs.gets kvs "user:1" with
  | Some (v, token) ->
      Printf.printf "gets user:1 -> %S (token %d)\n" v token;
      Printf.printf "cas with token: %b\n" (Kvs.cas kvs "user:1" "tudor2" ~token);
      Printf.printf "cas with stale token: %b\n"
        (Kvs.cas kvs "user:1" "tudor3" ~token)
  | None -> ());

  Kvs.set kvs "hits" "0";
  ignore (Kvs.incr kvs "hits" 5);
  show "incr hits by 5" (Kvs.get kvs "hits");

  Kvs.set kvs ~ttl:0.05 "ephemeral" "gone soon";
  show "ephemeral before expiry" (Kvs.get kvs "ephemeral");
  Unix.sleepf 0.06;
  show "ephemeral after expiry" (Kvs.get kvs "ephemeral");

  print_endline "\n-- memslap-like load (3 domains, 30% sets) --";
  Kvs_driver.preload kvs ~n_keys:500;
  let r =
    Kvs_driver.run kvs ~threads:3 ~ops_per_thread:5_000 ~n_keys:500
      ~mix:(Kvs_driver.mixed 30)
  in
  Printf.printf "%d ops in %.2fs -> %.1f Kops/s (hits %d, misses %d)\n"
    r.Kvs_driver.ops r.Kvs_driver.elapsed_s r.Kvs_driver.kops
    r.Kvs_driver.get_hits r.Kvs_driver.get_misses;
  let s = Kvs.stats kvs in
  Printf.printf
    "stats: sets=%d gets=%d evictions=%d maintenance-sweeps=%d\n"
    s.Kvs.sets s.Kvs.gets s.Kvs.evictions s.Kvs.global_lock_acquisitions
