(* Lock advisor: the paper's practical takeaway as a program.

   Given a platform and an expected contention level, run the simulated
   lock suite and report which algorithm wins — reproducing the paper's
   "every lock has its fifteen minutes of fame" observation and its
   guidance (ticket under low contention, queue/hierarchical locks under
   extreme contention, never Mutex with one thread per core).

   Run with:  dune exec examples/lock_advisor.exe -- [platform] *)

open Ssync

let advise pid =
  let p = Platform.get pid in
  Printf.printf "\n=== %s (%d hardware contexts) ===\n" (Arch.platform_name pid)
    (Platform.n_cores p);
  let threads = min 36 (Platform.n_cores p) in
  List.iter
    (fun (label, n_locks) ->
      let ranked =
        List.map
          (fun algo ->
            let r =
              Lock_bench.throughput ~duration:150_000 pid algo ~threads
                ~n_locks
            in
            (algo, r.Harness.mops))
          (Simlock.algos_for p)
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      Printf.printf "%-28s" label;
      List.iteri
        (fun i (algo, mops) ->
          if i < 3 then
            Printf.printf "  %d. %s (%.1f Mops/s)" (i + 1)
              (Simlock.name algo) mops)
        ranked;
      print_newline ())
    [
      ("extreme contention (1 lock):", 1);
      ("high contention (4 locks):", 4);
      ("medium contention (32):", 32);
      ("low contention (512):", 512);
    ]

let () =
  let pids =
    match Array.to_list Sys.argv with
    | _ :: names when names <> [] ->
        List.filter_map Arch.platform_of_string names
    | _ -> Arch.paper_platform_ids
  in
  Printf.printf
    "Lock advisor: ranking the nine libslock algorithms per workload\n\
     (threads = min(36, cores), measured on the calibrated simulator)\n";
  List.iter advise pids
