examples/quickstart.ml: Arch Client_server Domain Harness Libslock List Lock Lock_bench Printf Simlock Ssync
