examples/lock_advisor.ml: Arch Array Harness List Lock_bench Platform Printf Simlock Ssync Sys
