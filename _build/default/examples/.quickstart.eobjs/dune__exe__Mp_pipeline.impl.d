examples/mp_pipeline.ml: Channel Domain Hashtbl List Option Printf Ssync String
