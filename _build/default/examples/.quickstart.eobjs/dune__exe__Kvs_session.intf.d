examples/kvs_session.mli:
