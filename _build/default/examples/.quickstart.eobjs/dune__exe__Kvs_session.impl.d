examples/kvs_session.ml: Kvs Kvs_driver Libslock Printf Ssync Unix
