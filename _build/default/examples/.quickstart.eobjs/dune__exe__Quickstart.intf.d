examples/quickstart.mli:
