examples/lock_advisor.mli:
