examples/stm_bank.mli:
