examples/mp_pipeline.mli:
