examples/stm_bank.ml: Domain List Printf Rng Ssync Tm
