(* A message-passing pipeline over native SSYNC channels: three stages
   (tokenize -> filter -> aggregate) connected by single-slot SPSC
   channels, each stage its own domain — the "structure an application
   with message passing to reduce sharing" pattern the paper evaluates.

   Run with:  dune exec examples/mp_pipeline.exe *)

open Ssync

type token = Word of string | Done

let () =
  let text =
    "synchronization is the act of coordinating the timeline of a set of \
     processes and synchronization basically translates into cores slowing \
     each other down"
  in
  let stage1_out : token Channel.t = Channel.create () in
  let stage2_out : token Channel.t = Channel.create () in

  (* stage 1: tokenize *)
  let tokenizer =
    Domain.spawn (fun () ->
        String.split_on_char ' ' text
        |> List.iter (fun w -> if w <> "" then Channel.send stage1_out (Word w));
        Channel.send stage1_out Done)
  in
  (* stage 2: drop short words *)
  let filter =
    Domain.spawn (fun () ->
        let rec loop () =
          match Channel.recv stage1_out with
          | Word w ->
              if String.length w > 3 then Channel.send stage2_out (Word w);
              loop ()
          | Done -> Channel.send stage2_out Done
        in
        loop ())
  in
  (* stage 3: aggregate counts *)
  let counts = Hashtbl.create 32 in
  let rec drain () =
    match Channel.recv stage2_out with
    | Word w ->
        Hashtbl.replace counts w (1 + Option.value ~default:0 (Hashtbl.find_opt counts w));
        drain ()
    | Done -> ()
  in
  drain ();
  Domain.join tokenizer;
  Domain.join filter;
  let sorted =
    Hashtbl.fold (fun w c acc -> (c, w) :: acc) counts []
    |> List.sort compare |> List.rev
  in
  print_endline "word counts from the 3-stage message-passing pipeline:";
  List.iteri
    (fun i (c, w) -> if i < 5 then Printf.printf "  %-16s %d\n" w c)
    sorted
