(* A concurrent bank on the TM2C-style software transactional memory:
   domains transfer money between random accounts; transactions make
   each transfer atomic, so the total balance is invariant.

   Run with:  dune exec examples/stm_bank.exe *)

open Ssync

let accounts = 32
let initial = 1_000
let domains = 4
let transfers_per_domain = 5_000

let () =
  let bank = Tm.create ~size:accounts in
  for i = 0 to accounts - 1 do
    Tm.unsafe_set bank i initial
  done;
  let stats = Tm.{ commits = 0; aborts = 0 } in
  let worker seed () =
    let rng = Rng.create ~seed in
    for _ = 1 to transfers_per_domain do
      let from_acc = Rng.int rng accounts in
      let to_acc = Rng.int rng accounts in
      let amount = 1 + Rng.int rng 20 in
      if from_acc <> to_acc then
        Tm.atomically ~stats bank (fun tx ->
            let a = Tm.read tx from_acc in
            let b = Tm.read tx to_acc in
            (* allow overdrafts; the invariant is conservation *)
            Tm.write tx from_acc (a - amount);
            Tm.write tx to_acc (b + amount))
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join ds;
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    total := !total + Tm.unsafe_get bank i
  done;
  Printf.printf "%d domains x %d transfers: total = %d (expected %d)\n" domains
    transfers_per_domain !total (accounts * initial);
  Printf.printf "commits: %d, aborts: %d (%.1f%% abort rate)\n"
    stats.Tm.commits stats.Tm.aborts
    (100. *. float_of_int stats.Tm.aborts
    /. float_of_int (max 1 (stats.Tm.commits + stats.Tm.aborts)));
  if !total <> accounts * initial then begin
    print_endline "INVARIANT VIOLATED";
    exit 1
  end
