(* Tests of the discrete-event engine: virtual time, effects-based
   threads, barriers, determinism and the throughput harness. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_event_queue_order () =
  let q = Event_queue.create () in
  let order = ref [] in
  Event_queue.push q ~time:30 (fun () -> order := 30 :: !order);
  Event_queue.push q ~time:10 (fun () -> order := 10 :: !order);
  Event_queue.push q ~time:20 (fun () -> order := 20 :: !order);
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some e ->
        e.Event_queue.run ();
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "time order" [ 30; 20; 10 ] !order

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  let order = ref [] in
  for i = 0 to 9 do
    Event_queue.push q ~time:5 (fun () -> order := i :: !order)
  done;
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some e ->
        e.Event_queue.run ();
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo on ties" [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ]
    !order

let test_time_advances_with_ops () =
  let sim = Sim.create Platform.opteron in
  let a = Memory.alloc (Sim.memory sim) in
  let seen = ref (-1) in
  Sim.spawn sim ~core:0 (fun () ->
      Sim.store a 42;
      ignore (Sim.load a);
      seen := Sim.now ());
  let final = Sim.run sim in
  check_bool "ops consumed cycles" true (!seen > 0);
  check_int "run returns final time" final !seen

let test_pause () =
  let sim = Sim.create Platform.niagara in
  let t_after = ref 0 in
  Sim.spawn sim ~core:0 (fun () ->
      Sim.pause 500;
      t_after := Sim.now ());
  ignore (Sim.run sim);
  check_int "pause advances virtual time" 500 !t_after

let test_two_threads_communicate () =
  let sim = Sim.create Platform.xeon in
  let mem = Sim.memory sim in
  let flag = Memory.alloc mem in
  let data = Memory.alloc mem in
  let got = ref 0 in
  Sim.spawn sim ~core:0 (fun () ->
      Sim.store data 1234;
      Sim.store flag 1);
  Sim.spawn sim ~core:10 (fun () ->
      while Sim.load flag = 0 do
        Sim.pause 50
      done;
      got := Sim.load data);
  ignore (Sim.run sim ~until:1_000_000);
  check_int "message received" 1234 !got

let test_barrier_synchronizes () =
  let sim = Sim.create Platform.tilera in
  let b = Sim.make_barrier 3 in
  let times = Array.make 3 0 in
  List.iteri
    (fun i delay ->
      Sim.spawn sim ~core:i (fun () ->
          Sim.pause delay;
          Sim.await b;
          times.(i) <- Sim.now ()))
    [ 10; 200; 3000 ];
  ignore (Sim.run sim);
  check_int "all leave at the latest arrival" times.(0) times.(1);
  check_int "all leave at the latest arrival'" times.(1) times.(2);
  check_bool "left after slowest" true (times.(0) >= 3000)

let test_determinism () =
  let run_once () =
    let sim = Sim.create Platform.opteron in
    let mem = Sim.memory sim in
    let a = Memory.alloc mem in
    let acc = ref 0 in
    for tid = 0 to 7 do
      Sim.spawn sim ~core:(tid * 3) (fun () ->
          for _ = 1 to 20 do
            ignore (Sim.fai a);
            Sim.pause 30
          done;
          acc := !acc + Sim.now ())
    done;
    let t = Sim.run sim in
    (t, !acc, Memory.peek mem a)
  in
  let r1 = run_once () and r2 = run_once () in
  check_bool "identical runs" true (r1 = r2)

let test_fai_is_atomic_under_concurrency () =
  let sim = Sim.create Platform.xeon in
  let mem = Sim.memory sim in
  let a = Memory.alloc mem in
  let per_thread = 50 and threads = 16 in
  for tid = 0 to threads - 1 do
    Sim.spawn sim ~core:tid (fun () ->
        for _ = 1 to per_thread do
          ignore (Sim.fai a)
        done)
  done;
  ignore (Sim.run sim);
  check_int "all increments counted" (per_thread * threads) (Memory.peek mem a)

let test_runaway_protection () =
  let sim = Sim.create Platform.opteron in
  Sim.spawn sim ~core:0 (fun () ->
      while true do
        Sim.pause 10
      done);
  (* [until] bound stops a spinning thread *)
  let t = Sim.run sim ~until:5_000 in
  check_bool "bounded by until" true (t <= 5_100)

let test_harness_counts_ops () =
  let r =
    Harness.run Platform.opteron ~threads:4 ~duration:50_000
      ~setup:(fun mem -> Memory.alloc mem)
      ~body:(fun a _mem ~tid:_ ~deadline ->
        let n = ref 0 in
        while Sim.now () < deadline do
          ignore (Sim.fai a);
          Sim.pause 100;
          incr n
        done;
        !n)
  in
  check_int "threads" 4 (Array.length r.Harness.ops);
  check_bool "some ops on each thread" true
    (Array.for_all (fun n -> n > 10) r.Harness.ops);
  check_bool "mops positive" true (r.Harness.mops > 0.)

let test_harness_rejects_bad_args () =
  let fails f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "zero threads" true
    (fails (fun () ->
         Harness.run Platform.opteron ~threads:0 ~duration:100
           ~setup:(fun _ -> ())
           ~body:(fun () _ ~tid:_ ~deadline:_ -> 0)));
  check_bool "too many threads" true
    (fails (fun () ->
         Harness.run Platform.tilera ~threads:37 ~duration:100
           ~setup:(fun _ -> ())
           ~body:(fun () _ ~tid:_ ~deadline:_ -> 0)))

(* qcheck: counter increments across random thread/iteration mixes are
   never lost. *)
let qcheck_no_lost_updates =
  QCheck.Test.make ~count:60 ~name:"no lost updates (random mixes)"
    QCheck.(
      make
        Gen.(
          triple (oneofl Arch.paper_platform_ids) (int_range 1 12)
            (int_range 1 40)))
    (fun (pid, threads, iters) ->
      let p = Platform.get pid in
      let threads = min threads (Platform.n_cores p) in
      let sim = Sim.create p in
      let mem = Sim.memory sim in
      let a = Memory.alloc mem in
      for tid = 0 to threads - 1 do
        Sim.spawn sim ~core:(Platform.place p tid) (fun () ->
            for _ = 1 to iters do
              ignore (Sim.fai a);
              Sim.pause ((tid * 13 mod 31) + 1)
            done)
      done;
      ignore (Sim.run sim);
      Memory.peek mem a = threads * iters)

let suite =
  [
    Alcotest.test_case "event queue orders by time" `Quick
      test_event_queue_order;
    Alcotest.test_case "event queue FIFO on ties" `Quick
      test_event_queue_fifo_ties;
    Alcotest.test_case "ops advance virtual time" `Quick
      test_time_advances_with_ops;
    Alcotest.test_case "pause" `Quick test_pause;
    Alcotest.test_case "threads communicate through memory" `Quick
      test_two_threads_communicate;
    Alcotest.test_case "barrier synchronizes" `Quick test_barrier_synchronizes;
    Alcotest.test_case "simulation is deterministic" `Quick test_determinism;
    Alcotest.test_case "FAI atomic under concurrency" `Quick
      test_fai_is_atomic_under_concurrency;
    Alcotest.test_case "runaway protection" `Quick test_runaway_protection;
    Alcotest.test_case "harness counts ops" `Quick test_harness_counts_ops;
    Alcotest.test_case "harness validates arguments" `Quick
      test_harness_rejects_bad_args;
    QCheck_alcotest.to_alcotest qcheck_no_lost_updates;
  ]
