(* Tests of the software transactional memory: the native TL2-style TM
   (atomicity, isolation, bank invariant under domains) and the two
   simulated TM2C backends. *)

open Ssync_platform
open Ssync_engine
open Ssync_tm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------- native TM ----------------------------- *)

let test_read_write_commit () =
  let tm = Tm.create ~size:8 in
  Tm.unsafe_set tm 0 5;
  let r =
    Tm.atomically tm (fun tx ->
        let v = Tm.read tx 0 in
        Tm.write tx 1 (v + 1);
        v)
  in
  check_int "read value" 5 r;
  check_int "write committed" 6 (Tm.unsafe_get tm 1)

let test_buffered_writes_invisible_before_commit () =
  let tm = Tm.create ~size:4 in
  ignore
    (Tm.atomically tm (fun tx ->
         Tm.write tx 0 99;
         (* our own write is visible to us *)
         check_int "read-own-write" 99 (Tm.read tx 0);
         (* but not yet published *)
         check_int "not yet committed" 0 (Tm.unsafe_get tm 0)));
  check_int "committed after" 99 (Tm.unsafe_get tm 0)

let test_bank_invariant_concurrent () =
  (* classic STM test: random transfers preserve the total balance *)
  let accounts = 16 and domains = 3 and transfers = 600 in
  let tm = Tm.create ~size:accounts in
  for i = 0 to accounts - 1 do
    Tm.unsafe_set tm i 100
  done;
  let worker seed () =
    let rng = Ssync_workload.Rng.create ~seed in
    for _ = 1 to transfers do
      let a = Ssync_workload.Rng.int rng accounts in
      let b = Ssync_workload.Rng.int rng accounts in
      if a <> b then
        Tm.atomically tm (fun tx ->
            let va = Tm.read tx a and vb = Tm.read tx b in
            Tm.write tx a (va - 1);
            Tm.write tx b (vb + 1))
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join ds;
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    total := !total + Tm.unsafe_get tm i
  done;
  check_int "total conserved" (accounts * 100) !total

let test_concurrent_counter () =
  (* increments through transactions are never lost *)
  let tm = Tm.create ~size:1 in
  let domains = 3 and per = 400 in
  let worker () =
    for _ = 1 to per do
      Tm.atomically tm (fun tx -> Tm.write tx 0 (Tm.read tx 0 + 1))
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check_int "counter exact" (domains * per) (Tm.unsafe_get tm 0)

let test_abort_stats () =
  let tm = Tm.create ~size:1 in
  let stats = Tm.{ commits = 0; aborts = 0 } in
  let domains = 3 and per = 200 in
  let worker () =
    for _ = 1 to per do
      Tm.atomically ~stats tm (fun tx -> Tm.write tx 0 (Tm.read tx 0 + 1))
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check_int "commits counted" (domains * per) stats.Tm.commits;
  check_bool "stats non-negative" true (stats.Tm.aborts >= 0)

let qcheck_sequential_tm_is_plain_memory =
  QCheck.Test.make ~count:80 ~name:"sequential TM behaves like an array"
    QCheck.(
      list_of_size (Gen.int_range 1 60)
        (triple (int_range 0 7) (int_range 0 7) small_int))
    (fun ops ->
      let tm = Tm.create ~size:8 in
      let model = Array.make 8 0 in
      List.for_all
        (fun (i, j, v) ->
          let ok =
            Tm.atomically tm (fun tx ->
                let got = Tm.read tx i in
                Tm.write tx j v;
                got = model.(i))
          in
          model.(j) <- v;
          ok)
        ops)

(* ------------------------ simulated TM2C ------------------------- *)

(* Bank transfers as single atomic transactions on each backend; the
   total balance must be conserved. *)
let run_sim_bank ~backend ~threads ~transfers : int =
  let p = Platform.opteron in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let accounts = 12 in
  let transfer_writes cells values =
    (* cells = [a; c] sorted; move 1 from the first to the second *)
    match (cells, values) with
    | ([ a; c ], [| va; vc |]) -> [ (a, va - 1); (c, vc + 1) ]
    | _ -> failwith "unexpected transaction shape"
  in
  match backend with
  | `Lock ->
      let t = Tm_sim.create_lock_based mem ~n_cells:accounts in
      Array.iter
        (fun a -> Ssync_coherence.Memory.poke mem a 100)
        t.Tm_sim.values;
      let b = Sim.make_barrier threads in
      for tid = 0 to threads - 1 do
        Sim.spawn sim ~core:(Platform.place p tid) (fun () ->
            Sim.await b;
            let rng = Ssync_workload.Rng.create ~seed:(tid + 1) in
            for _ = 1 to transfers do
              let a = Ssync_workload.Rng.int rng accounts in
              let c = Ssync_workload.Rng.int rng accounts in
              if a <> c then begin
                let cells = List.sort_uniq compare [ a; c ] in
                ignore
                  (Tm_sim.transaction_lock_based t ~cells
                     (transfer_writes cells))
              end
            done)
      done;
      ignore (Sim.run sim ~until:2_000_000_000);
      Array.fold_left
        (fun acc a -> acc + Ssync_coherence.Memory.peek mem a)
        0 t.Tm_sim.values
  | `Mp ->
      let n_servers = 2 in
      let server_cores = Array.init n_servers (fun i -> i) in
      let client_cores = Array.init threads (fun i -> n_servers + i) in
      let t =
        Tm_sim.create_mp_based mem p ~n_cells:accounts ~server_cores
          ~client_cores
      in
      for c = 0 to accounts - 1 do
        t.Tm_sim.tables.(Tm_sim.server_of t c).(c) <- 100
      done;
      for i = 0 to n_servers - 1 do
        Sim.spawn sim ~core:server_cores.(i) (fun () ->
            Tm_sim.run_mp_server t i)
      done;
      for tid = 0 to threads - 1 do
        Sim.spawn sim ~core:client_cores.(tid) (fun () ->
            let rng = Ssync_workload.Rng.create ~seed:(tid + 1) in
            for _ = 1 to transfers do
              let a = Ssync_workload.Rng.int rng accounts in
              let c = Ssync_workload.Rng.int rng accounts in
              if a <> c then begin
                let cells = List.sort_uniq compare [ a; c ] in
                ignore
                  (Tm_sim.transaction_mp t ~client:tid ~cells
                     (transfer_writes cells))
              end
            done;
            Tm_sim.stop_mp t ~client:tid)
      done;
      ignore (Sim.run sim ~until:2_000_000_000);
      let total = ref 0 in
      for c = 0 to accounts - 1 do
        total := !total + t.Tm_sim.tables.(Tm_sim.server_of t c).(c)
      done;
      !total

let test_sim_lock_bank () =
  check_int "lock backend conserves total" 1200
    (run_sim_bank ~backend:`Lock ~threads:8 ~transfers:50)

let test_sim_mp_bank () =
  check_int "mp backend conserves total" 1200
    (run_sim_bank ~backend:`Mp ~threads:8 ~transfers:50)

let test_sim_write_outside_set_rejected () =
  let p = Platform.opteron in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let t = Tm_sim.create_lock_based mem ~n_cells:4 in
  let raised = ref false in
  Sim.spawn sim ~core:0 (fun () ->
      try
        ignore
          (Tm_sim.transaction_lock_based t ~cells:[ 0 ] (fun _ -> [ (3, 1) ]))
      with Invalid_argument _ -> raised := true);
  ignore (Sim.run sim);
  check_bool "rejected" true !raised

let suite =
  [
    Alcotest.test_case "read/write/commit" `Quick test_read_write_commit;
    Alcotest.test_case "writes buffered until commit" `Quick
      test_buffered_writes_invisible_before_commit;
    Alcotest.test_case "bank invariant (4 domains)" `Slow
      test_bank_invariant_concurrent;
    Alcotest.test_case "transactional counter exact" `Slow
      test_concurrent_counter;
    Alcotest.test_case "abort/commit stats" `Slow test_abort_stats;
    QCheck_alcotest.to_alcotest qcheck_sequential_tm_is_plain_memory;
    Alcotest.test_case "sim lock backend: bank invariant" `Quick
      test_sim_lock_bank;
    Alcotest.test_case "sim mp backend: bank invariant" `Quick
      test_sim_mp_bank;
    Alcotest.test_case "sim: write outside locked set rejected" `Quick
      test_sim_write_outside_set_rejected;
  ]
