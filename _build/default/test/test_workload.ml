(* Tests of the workload generators: determinism, distribution shape. *)

open Ssync_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create ~seed:43 in
  let diff = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then diff := true
  done;
  check_bool "different seeds differ" true !diff

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check_bool "float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_uniform_covers () =
  let r = Rng.create ~seed:3 in
  let d = Key_dist.uniform ~n:10 in
  let seen = Array.make 10 0 in
  for _ = 1 to 2000 do
    seen.(Key_dist.sample d r) <- 1
  done;
  check_int "all keys seen" 10 (Array.fold_left ( + ) 0 seen)

let test_zipf_skew () =
  let r = Rng.create ~seed:5 in
  let d = Key_dist.zipf ~theta:0.99 ~n:1000 () in
  let counts = Array.make 1000 0 in
  let samples = 20_000 in
  for _ = 1 to samples do
    let k = Key_dist.sample d r in
    counts.(k) <- counts.(k) + 1
  done;
  (* key 0 should be far more popular than key 500 *)
  check_bool
    (Printf.sprintf "zipf skew (%d vs %d)" counts.(0) counts.(500))
    true
    (counts.(0) > 10 * (counts.(500) + 1));
  (* all samples in range and head-heavy overall *)
  let head = Array.sub counts 0 100 |> Array.fold_left ( + ) 0 in
  check_bool "head-heavy" true (head > samples / 2)

let test_op_mix () =
  let r = Rng.create ~seed:11 in
  let m = Op_mix.paper in
  let g = ref 0 and p = ref 0 and d = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    match Op_mix.sample m r with
    | Op_mix.Get -> incr g
    | Op_mix.Put -> incr p
    | Op_mix.Remove -> incr d
  done;
  check_int "all sampled" n (!g + !p + !d);
  check_bool
    (Printf.sprintf "~80%% gets (%d)" !g)
    true
    (abs (!g - (n * 80 / 100)) < n / 20);
  check_bool "puts ~ removes" true (abs (!p - !d) < n / 20)

let test_op_mix_validation () =
  let fails f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "bad sum rejected" true
    (fails (fun () -> Op_mix.make ~get:50 ~put:10 ~remove:10));
  check_bool "negative rejected" true
    (fails (fun () -> Op_mix.make ~get:110 ~put:(-10) ~remove:0))

let qcheck_zipf_in_range =
  QCheck.Test.make ~count:100 ~name:"zipf samples in range"
    QCheck.(pair (int_range 1 500) small_int)
    (fun (n, seed) ->
      let r = Rng.create ~seed in
      let d = Key_dist.zipf ~n () in
      let ok = ref true in
      for _ = 1 to 50 do
        let k = Key_dist.sample d r in
        if k < 0 || k >= n then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "uniform covers keyspace" `Quick test_uniform_covers;
    Alcotest.test_case "zipf is skewed" `Quick test_zipf_skew;
    Alcotest.test_case "op mix proportions" `Quick test_op_mix;
    Alcotest.test_case "op mix validation" `Quick test_op_mix_validation;
    QCheck_alcotest.to_alcotest qcheck_zipf_in_range;
  ]
