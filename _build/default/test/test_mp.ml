(* Tests of the native message-passing library. *)

open Ssync_mp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_channel_fifo () =
  let ch = Channel.create () in
  let n = 800 in
  let producer = Domain.spawn (fun () -> for i = 1 to n do Channel.send ch i done) in
  let got = ref [] in
  for _ = 1 to n do
    got := Channel.recv ch :: !got
  done;
  Domain.join producer;
  let ok = ref true in
  List.iteri
    (fun i v -> if v <> n - i then ok := false)
    !got;
  check_bool "FIFO and lossless" true !ok

let test_try_recv () =
  let ch = Channel.create () in
  check_bool "empty" true (Channel.try_recv ch = None);
  Channel.send ch 42;
  check_bool "full" true (Channel.try_recv ch = Some 42);
  check_bool "drained" true (Channel.try_recv ch = None)

let test_polymorphic_payloads () =
  let ch = Channel.create () in
  Channel.send ch ("hello", [ 1; 2; 3 ]);
  let s, l = Channel.recv ch in
  Alcotest.(check string) "string payload" "hello" s;
  Alcotest.(check (list int)) "list payload" [ 1; 2; 3 ] l

let test_client_server_roundtrips () =
  let clients = 3 in
  let cs : (int, int) Client_server.t = Client_server.create ~clients in
  let per_client = 60 in
  let server =
    Domain.spawn (fun () ->
        for _ = 1 to clients * per_client do
          let i, v = Client_server.recv_any cs in
          Client_server.respond cs i (v * 2)
        done)
  in
  let mk_client i =
    Domain.spawn (fun () ->
        let ok = ref true in
        for k = 1 to per_client do
          if Client_server.request cs ~client:i k <> 2 * k then ok := false
        done;
        !ok)
  in
  let cs_domains = List.init clients mk_client in
  let oks = List.map Domain.join cs_domains in
  Domain.join server;
  check_bool "all responses correct" true (List.for_all Fun.id oks)

let test_round_robin_fairness () =
  (* with all slots full, repeated try_recv_any must drain every client *)
  let clients = 4 in
  let cs : (int, int) Client_server.t = Client_server.create ~clients in
  for i = 0 to clients - 1 do
    Client_server.send_request cs ~client:i i
  done;
  let seen = Array.make clients false in
  for _ = 1 to clients do
    match Client_server.try_recv_any cs with
    | Some (i, _) -> seen.(i) <- true
    | None -> Alcotest.fail "missing message"
  done;
  check_int "all clients drained" clients
    (Array.fold_left (fun a b -> a + if b then 1 else 0) 0 seen)

let qcheck_channel_sequences =
  QCheck.Test.make ~count:15 ~name:"native channel preserves sequences"
    QCheck.(list_of_size (Gen.int_range 1 60) small_int)
    (fun xs ->
      let ch = Channel.create () in
      let producer = Domain.spawn (fun () -> List.iter (Channel.send ch) xs) in
      let got = List.rev (List.fold_left (fun acc _ -> Channel.recv ch :: acc) [] xs) in
      Domain.join producer;
      got = xs)

let suite =
  [
    Alcotest.test_case "channel FIFO" `Slow test_channel_fifo;
    Alcotest.test_case "try_recv" `Quick test_try_recv;
    Alcotest.test_case "polymorphic payloads" `Quick test_polymorphic_payloads;
    Alcotest.test_case "client-server roundtrips" `Slow
      test_client_server_roundtrips;
    Alcotest.test_case "round-robin fairness" `Quick test_round_robin_fairness;
    QCheck_alcotest.to_alcotest qcheck_channel_sequences;
  ]
