(* Tests of the native lock library under real Domain-based concurrency.
   The container has few cores, so domain counts stay small; preemptive
   OS scheduling still interleaves critical sections aggressively. *)

open Ssync_locks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let n_domains = 3
let iters = 250
(* modest volumes: domains outnumber the host's cores, so every lock
   handoff can cost an OS timeslice *)

(* Increment a plain (non-atomic) counter under the lock from several
   domains; lost updates reveal mutual-exclusion bugs. *)
let hammer (lock : Lock.t) =
  let counter = ref 0 in
  let worker () =
    for _ = 1 to iters do
      Lock.with_lock lock (fun () ->
          let v = !counter in
          (* widen the race window across preemption points *)
          if v land 63 = 63 then Domain.cpu_relax ();
          counter := v + 1)
    done
  in
  let ds = List.init n_domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  !counter

let test_mutual_exclusion () =
  List.iter
    (fun algo ->
      let lock = Libslock.create ~max_threads:n_domains ~n_clusters:2 algo in
      check_int
        (Printf.sprintf "%s no lost updates" (Libslock.name algo))
        (n_domains * iters) (hammer lock))
    Libslock.all

let test_try_acquire () =
  List.iter
    (fun algo ->
      let lock = Libslock.create algo in
      match lock.Lock.try_acquire with
      | None -> ()
      | Some try_acquire ->
          check_bool
            (Printf.sprintf "%s trylock on free" (Libslock.name algo))
            true (try_acquire ());
          check_bool
            (Printf.sprintf "%s trylock on held" (Libslock.name algo))
            false (try_acquire ());
          lock.Lock.release ();
          check_bool
            (Printf.sprintf "%s trylock after release" (Libslock.name algo))
            true (try_acquire ());
          lock.Lock.release ())
    Libslock.all

let test_with_lock_releases_on_exception () =
  let lock = Libslock.create Libslock.Ticket in
  (try Lock.with_lock lock (fun () -> failwith "boom") with Failure _ -> ());
  (* if the exception leaked the lock, this would deadlock *)
  let ok = ref false in
  Lock.with_lock lock (fun () -> ok := true);
  check_bool "reacquirable after exception" true !ok

let test_reentrant_sequences () =
  (* a single domain acquiring/releasing many times (queue-node reuse) *)
  List.iter
    (fun algo ->
      let lock = Libslock.create ~max_threads:2 algo in
      for i = 0 to 999 do
        Lock.with_lock lock (fun () -> ignore i)
      done)
    Libslock.all;
  check_bool "sequences fine" true true

let test_handoff_between_domains () =
  (* strict alternation through a lock plus a shared flag: exercises
     cross-domain handoff paths (MCS successor links, CLH recycling) *)
  List.iter
    (fun algo ->
      let lock = Libslock.create ~max_threads:2 algo in
      let turn = Atomic.make 0 in
      let log = ref [] in
      let log_lock = Libslock.create Libslock.Tas in
      let player me rounds () =
        for r = 1 to rounds do
          while Atomic.get turn <> me do
            Domain.cpu_relax ()
          done;
          Lock.with_lock lock (fun () ->
              Lock.with_lock log_lock (fun () -> log := (me, r) :: !log));
          Atomic.set turn (1 - me)
        done
      in
      let d0 = Domain.spawn (player 0 25) in
      let d1 = Domain.spawn (player 1 25) in
      Domain.join d0;
      Domain.join d1;
      check_int
        (Printf.sprintf "%s handoff count" (Libslock.name algo))
        50 (List.length !log))
    [ Libslock.Mcs; Libslock.Clh; Libslock.Hticket; Libslock.Hclh ]

let qcheck_mutual_exclusion_random =
  QCheck.Test.make ~count:5 ~name:"native locks: random algo/domain mixes"
    QCheck.(
      pair
        (oneofl Libslock.all)
        (int_range 2 4))
    (fun (algo, domains) ->
      let lock = Libslock.create ~max_threads:domains algo in
      let counter = ref 0 in
      let per = 100 in
      let worker () =
        for _ = 1 to per do
          Lock.with_lock lock (fun () -> incr counter)
        done
      in
      let ds = List.init domains (fun _ -> Domain.spawn worker) in
      List.iter Domain.join ds;
      !counter = domains * per)

let suite =
  [
    Alcotest.test_case "mutual exclusion (all 9 algos)" `Slow
      test_mutual_exclusion;
    Alcotest.test_case "try_acquire semantics" `Quick test_try_acquire;
    Alcotest.test_case "with_lock releases on exception" `Quick
      test_with_lock_releases_on_exception;
    Alcotest.test_case "long acquire/release sequences" `Quick
      test_reentrant_sequences;
    Alcotest.test_case "cross-domain handoff" `Slow
      test_handoff_between_domains;
    QCheck_alcotest.to_alcotest qcheck_mutual_exclusion_random;
  ]
