(* Tests of the hash table: the native ssht against a model and under
   domains; the simulated ssht against a model inside the engine; and
   the message-passing version end to end. *)

open Ssync_platform
open Ssync_engine
open Ssync_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------- native ssht --------------------------- *)

let test_native_basic () =
  let t = Ssync_ssht.Ssht.create ~n_buckets:16 () in
  check_bool "fresh insert" true (Ssync_ssht.Ssht.put t 1 10);
  check_bool "update" false (Ssync_ssht.Ssht.put t 1 11);
  check_bool "get" true (Ssync_ssht.Ssht.get t 1 = Some 11);
  check_bool "miss" true (Ssync_ssht.Ssht.get t 2 = None);
  check_bool "remove" true (Ssync_ssht.Ssht.remove t 1);
  check_bool "remove missing" false (Ssync_ssht.Ssht.remove t 1);
  check_int "empty" 0 (Ssync_ssht.Ssht.size t)

(* Model-based sequential test against Hashtbl. *)
let test_native_model () =
  let rng = Rng.create ~seed:9 in
  let t = Ssync_ssht.Ssht.create ~n_buckets:8 () in
  let model = Hashtbl.create 64 in
  for _ = 1 to 3000 do
    let k = Rng.int rng 50 in
    match Rng.int rng 3 with
    | 0 ->
        let expected = Hashtbl.find_opt model k in
        check_bool "get agrees" true (Ssync_ssht.Ssht.get t k = expected)
    | 1 ->
        let v = Rng.int rng 1000 in
        let fresh = not (Hashtbl.mem model k) in
        Hashtbl.replace model k v;
        check_bool "put agrees" true (Ssync_ssht.Ssht.put t k v = fresh)
    | _ ->
        let existed = Hashtbl.mem model k in
        Hashtbl.remove model k;
        check_bool "remove agrees" true (Ssync_ssht.Ssht.remove t k = existed)
  done;
  check_int "sizes agree" (Hashtbl.length model) (Ssync_ssht.Ssht.size t)

(* Concurrent: disjoint key ranges per domain — every insert must
   survive; then a shared-range smoke test for crash-freedom. *)
let test_native_concurrent () =
  let t = Ssync_ssht.Ssht.create ~n_buckets:64 ~lock_algo:Ssync_locks.Libslock.Mcs () in
  let domains = 3 and per = 250 in
  let worker d () =
    for i = 0 to per - 1 do
      ignore (Ssync_ssht.Ssht.put t ((d * per) + i) i)
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  check_int "all inserts live" (domains * per) (Ssync_ssht.Ssht.size t);
  let ok = ref true in
  for d = 0 to domains - 1 do
    for i = 0 to per - 1 do
      if Ssync_ssht.Ssht.get t ((d * per) + i) <> Some i then ok := false
    done
  done;
  check_bool "all readable" true !ok

let test_native_concurrent_mixed () =
  let t = Ssync_ssht.Ssht.create ~n_buckets:32 () in
  let stop = Atomic.make false in
  let worker seed () =
    let rng = Rng.create ~seed in
    let n = ref 0 in
    while not (Atomic.get stop) do
      let k = Rng.int rng 40 in
      (match Rng.int rng 3 with
      | 0 -> ignore (Ssync_ssht.Ssht.get t k)
      | 1 -> ignore (Ssync_ssht.Ssht.put t k !n)
      | _ -> ignore (Ssync_ssht.Ssht.remove t k));
      incr n
    done;
    !n
  in
  let ds = List.init 3 (fun i -> Domain.spawn (worker (i + 1))) in
  Unix.sleepf 0.2;
  Atomic.set stop true;
  let counts = List.map Domain.join ds in
  check_bool "all domains progressed" true (List.for_all (fun n -> n > 0) counts);
  (* table is still consistent: size equals live key count *)
  let live = ref 0 in
  for k = 0 to 39 do
    if Ssync_ssht.Ssht.get t k <> None then incr live
  done;
  check_int "size consistent" !live (Ssync_ssht.Ssht.size t)

(* ------------------------ simulated ssht ------------------------- *)

let test_sim_model () =
  let p = Platform.opteron in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let t = Ssync_ssht.Ssht_sim.create mem p ~n_threads:1 ~n_buckets:4 ~capacity:8 in
  let passed = ref false in
  Sim.spawn sim ~core:0 (fun () ->
      let model = Hashtbl.create 32 in
      let rng = Rng.create ~seed:17 in
      let ok = ref true in
      for _ = 1 to 400 do
        let k = Rng.int rng 24 in
        match Rng.int rng 3 with
        | 0 ->
            if Ssync_ssht.Ssht_sim.get t ~tid:0 k <> Hashtbl.find_opt model k
            then ok := false
        | 1 ->
            let v = Rng.int rng 100 in
            let inserted = Ssync_ssht.Ssht_sim.put t ~tid:0 k v in
            if inserted || Hashtbl.mem model k then Hashtbl.replace model k v
        | _ ->
            let removed = Ssync_ssht.Ssht_sim.remove t ~tid:0 k in
            if removed <> Hashtbl.mem model k then ok := false;
            Hashtbl.remove model k
      done;
      passed := !ok);
  ignore (Sim.run sim ~until:500_000_000);
  check_bool "sim table agrees with model" true !passed

let test_sim_concurrent_counts () =
  (* concurrent puts of disjoint keys must all be present *)
  let p = Platform.xeon in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let threads = 8 and per = 12 in
  let t =
    Ssync_ssht.Ssht_sim.create mem p ~n_threads:threads ~n_buckets:64
      ~capacity:8
  in
  let b = Sim.make_barrier threads in
  for tid = 0 to threads - 1 do
    Sim.spawn sim ~core:(Platform.place p tid) (fun () ->
        Sim.await b;
        for i = 0 to per - 1 do
          ignore (Ssync_ssht.Ssht_sim.put t ~tid ((tid * per) + i) i)
        done)
  done;
  ignore (Sim.run sim ~until:500_000_000);
  check_int "all present" (threads * per) (Ssync_ssht.Ssht_sim.debug_size mem t)

(* --------------------------- mp ssht ----------------------------- *)

let test_mp_end_to_end () =
  let p = Platform.tilera in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let n_servers = 2 and n_clients = 4 in
  let server_cores = Array.init n_servers (fun i -> i) in
  let client_cores = Array.init n_clients (fun i -> n_servers + i) in
  let t =
    Ssync_ssht.Ssht_mp.create mem p ~server_cores ~client_cores ~touch_lines:3
  in
  for i = 0 to n_servers - 1 do
    Sim.spawn sim ~core:server_cores.(i) (fun () ->
        Ssync_ssht.Ssht_mp.run_server t i)
  done;
  let oks = Array.make n_clients false in
  for c = 0 to n_clients - 1 do
    Sim.spawn sim ~core:client_cores.(c) (fun () ->
        let ok = ref true in
        let base = c * 100 in
        for i = 0 to 19 do
          if not (Ssync_ssht.Ssht_mp.put t ~client:c (base + i) i) then
            ok := false
        done;
        for i = 0 to 19 do
          if Ssync_ssht.Ssht_mp.get t ~client:c (base + i) <> Some i then
            ok := false
        done;
        if not (Ssync_ssht.Ssht_mp.remove t ~client:c base) then ok := false;
        if Ssync_ssht.Ssht_mp.get t ~client:c base <> None then ok := false;
        oks.(c) <- !ok;
        Ssync_ssht.Ssht_mp.stop t ~client:c)
  done;
  ignore (Sim.run sim ~until:500_000_000);
  Array.iteri
    (fun c ok -> check_bool (Printf.sprintf "client %d ok" c) true ok)
    oks

(* qcheck: native ssht vs Hashtbl over random op sequences. *)
let qcheck_native_vs_model =
  QCheck.Test.make ~count:60 ~name:"native ssht = Hashtbl (sequential)"
    QCheck.(
      list_of_size (Gen.int_range 1 150)
        (pair (int_range 0 30) (int_range 0 2)))
    (fun ops ->
      let t = Ssync_ssht.Ssht.create ~n_buckets:4 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (k, op) ->
          match op with
          | 0 -> Ssync_ssht.Ssht.get t k = Hashtbl.find_opt model k
          | 1 ->
              let fresh = not (Hashtbl.mem model k) in
              Hashtbl.replace model k (k * 2);
              Ssync_ssht.Ssht.put t k (k * 2) = fresh
          | _ ->
              let existed = Hashtbl.mem model k in
              Hashtbl.remove model k;
              Ssync_ssht.Ssht.remove t k = existed)
        ops)

let suite =
  [
    Alcotest.test_case "native basic ops" `Quick test_native_basic;
    Alcotest.test_case "native vs model (3000 ops)" `Quick test_native_model;
    Alcotest.test_case "native concurrent inserts" `Slow
      test_native_concurrent;
    Alcotest.test_case "native concurrent mixed smoke" `Slow
      test_native_concurrent_mixed;
    Alcotest.test_case "simulated vs model" `Quick test_sim_model;
    Alcotest.test_case "simulated concurrent puts" `Quick
      test_sim_concurrent_counts;
    Alcotest.test_case "mp version end-to-end" `Quick test_mp_end_to_end;
    QCheck_alcotest.to_alcotest qcheck_native_vs_model;
  ]
