(* Tests of the reporting helpers. *)

open Ssync_report

let check_bool = Alcotest.(check bool)

let test_table_renders () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + sep + 2 rows" 4 (List.length lines);
  check_bool "contains alpha" true
    (List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "alpha") lines);
  (* all lines same width *)
  let widths = List.map String.length lines in
  check_bool "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_arity_check () =
  let t = Table.create [ "a"; "b" ] in
  check_bool "wrong arity rejected" true
    (try
       Table.add_row t [ "only-one" ];
       false
     with Invalid_argument _ -> true)

let test_vs_paper () =
  Alcotest.(check string) "with paper" "81 (83)"
    (Table.vs_paper ~measured:81 ~paper:(Some 83));
  Alcotest.(check string) "without paper" "81"
    (Table.vs_paper ~measured:81 ~paper:None)

let test_series_table () =
  let s1 = Series.make "a" [ (1, 1.0); (2, 2.0) ] in
  let s2 = Series.make "b" [ (1, 3.0); (4, 4.0) ] in
  let out = Series.table ~x_label:"threads" [ s1; s2 ] in
  check_bool "mentions both series" true
    (String.length out > 0
    && String.index_opt out 'a' <> None
    && String.index_opt out 'b' <> None);
  (* x=4 row exists with '-' for the missing series *)
  let lines = String.split_on_char '\n' out in
  check_bool "hole rendered as dash" true
    (List.exists
       (fun l ->
         String.length l > 0
         && String.trim l <> ""
         && String.length l >= 1
         && String.contains l '-'
         && String.contains l '4')
       lines)

let test_series_bars () =
  let s = Series.make "x" [ (1, 10.0); (2, 20.0) ] in
  let out = Series.bars ~width:10 s in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "two bars" 2 (List.length lines);
  let count_hash l =
    String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 l
  in
  check_bool "proportional" true
    (count_hash (List.nth lines 1) > count_hash (List.nth lines 0))

let suite =
  [
    Alcotest.test_case "table renders aligned" `Quick test_table_renders;
    Alcotest.test_case "table arity check" `Quick test_table_arity_check;
    Alcotest.test_case "vs_paper cells" `Quick test_vs_paper;
    Alcotest.test_case "series table" `Quick test_series_table;
    Alcotest.test_case "series bars" `Quick test_series_bars;
  ]
