test/test_kvs.ml: Alcotest Arch Domain Driver Gen Hashtbl Kvs Kvs_sim List Printf QCheck QCheck_alcotest Ssync_kvs Ssync_platform Ssync_simlocks
