test/test_tm.ml: Alcotest Array Domain Gen List Platform QCheck QCheck_alcotest Sim Ssync_coherence Ssync_engine Ssync_platform Ssync_tm Ssync_workload Tm Tm_sim
