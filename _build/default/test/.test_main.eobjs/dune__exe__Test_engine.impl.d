test/test_engine.ml: Alcotest Arch Array Event_queue Gen Harness List Memory Platform QCheck QCheck_alcotest Sim Ssync_coherence Ssync_engine Ssync_platform
