test/test_mp.ml: Alcotest Array Channel Client_server Domain Fun Gen List QCheck QCheck_alcotest Ssync_mp
