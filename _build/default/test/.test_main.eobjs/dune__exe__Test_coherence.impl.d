test/test_coherence.ml: Alcotest Arch Array Gen List Memory Platform Printf QCheck QCheck_alcotest Ssync_coherence Ssync_platform Topology
