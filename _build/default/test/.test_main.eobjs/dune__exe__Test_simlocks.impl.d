test/test_simlocks.ml: Alcotest Arch Harness List Lock_type Memory Platform Printf QCheck QCheck_alcotest Sim Simlock Ssync_coherence Ssync_engine Ssync_platform Ssync_simlocks
