test/test_report.ml: Alcotest List Series Ssync_report String Table
