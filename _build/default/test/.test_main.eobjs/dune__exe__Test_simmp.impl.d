test/test_simmp.ml: Alcotest Arch Array Channel Client_server Gen List Option Platform Printf QCheck QCheck_alcotest Sim Ssync_ccbench Ssync_engine Ssync_platform Ssync_simmp Topology
