test/test_ssht.ml: Alcotest Array Atomic Domain Gen Hashtbl List Platform Printf QCheck QCheck_alcotest Rng Sim Ssync_engine Ssync_locks Ssync_platform Ssync_ssht Ssync_workload Unix
