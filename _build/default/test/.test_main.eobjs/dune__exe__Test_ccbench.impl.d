test/test_ccbench.ml: Alcotest Arch Atomic_bench Ccbench Float List Lock_bench Mp_bench Option Printf Ssync_ccbench Ssync_engine Ssync_platform Ssync_simlocks
