test/test_platform.ml: Alcotest Arch Cost_model Float Latencies List Option Platform Printf QCheck QCheck_alcotest Random Ssync_platform Topology
