test/test_workload.ml: Alcotest Array Key_dist Op_mix Printf QCheck QCheck_alcotest Rng Ssync_workload
