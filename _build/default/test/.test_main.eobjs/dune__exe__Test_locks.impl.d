test/test_locks.ml: Alcotest Atomic Domain Libslock List Lock Printf QCheck QCheck_alcotest Ssync_locks
