(* Tests of the Memcached-like store: full native API with a controlled
   clock, LRU/eviction/expiry behavior, concurrency smoke tests, the
   driver, and the Figure 12 simulation model. *)

open Ssync_kvs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let check_str_opt msg expected got =
  Alcotest.(check (option string)) msg expected got

(* A manually-advanced clock for deterministic expiry. *)
let make_clock () =
  let t = ref 1000. in
  ((fun () -> !t), fun dt -> t := !t +. dt)

let fresh ?(capacity = 100_000) ?(maintenance_every = 1_000_000) () =
  let now, advance = make_clock () in
  (Kvs.create ~now ~capacity ~maintenance_every (), advance)

let test_set_get_delete () =
  let kvs, _ = fresh () in
  Kvs.set kvs "a" "1";
  check_str_opt "get hit" (Some "1") (Kvs.get kvs "a");
  check_str_opt "get miss" None (Kvs.get kvs "b");
  Kvs.set kvs "a" "2";
  check_str_opt "overwrite" (Some "2") (Kvs.get kvs "a");
  check_bool "delete" true (Kvs.delete kvs "a");
  check_bool "delete missing" false (Kvs.delete kvs "a");
  check_str_opt "gone" None (Kvs.get kvs "a")

let test_add_replace () =
  let kvs, _ = fresh () in
  check_bool "add new" true (Kvs.add kvs "k" "v1");
  check_bool "add existing fails" false (Kvs.add kvs "k" "v2");
  check_str_opt "unchanged" (Some "v1") (Kvs.get kvs "k");
  check_bool "replace existing" true (Kvs.replace kvs "k" "v3");
  check_str_opt "replaced" (Some "v3") (Kvs.get kvs "k");
  check_bool "replace missing fails" false (Kvs.replace kvs "nope" "x")

let test_expiry () =
  let kvs, advance = fresh () in
  Kvs.set kvs ~ttl:10. "t" "v";
  check_str_opt "alive" (Some "v") (Kvs.get kvs "t");
  advance 11.;
  check_str_opt "expired" None (Kvs.get kvs "t");
  (* a set over an expired item is a fresh insert *)
  check_bool "re-add" true (Kvs.add kvs "t" "v2");
  check_str_opt "new value" (Some "v2") (Kvs.get kvs "t")

let test_memcached_cas () =
  let kvs, _ = fresh () in
  Kvs.set kvs "c" "1";
  match Kvs.gets kvs "c" with
  | None -> Alcotest.fail "gets missed"
  | Some (v, token) ->
      check_bool "value" true (v = "1");
      check_bool "cas ok" true (Kvs.cas kvs "c" "2" ~token);
      check_bool "stale token fails" false (Kvs.cas kvs "c" "3" ~token);
      check_str_opt "cas stored" (Some "2") (Kvs.get kvs "c")

let test_incr () =
  let kvs, _ = fresh () in
  Kvs.set kvs "n" "41";
  check_bool "incr" true (Kvs.incr kvs "n" 1 = Some 42);
  check_str_opt "stored" (Some "42") (Kvs.get kvs "n");
  Kvs.set kvs "s" "abc";
  check_bool "non-numeric" true (Kvs.incr kvs "s" 1 = None);
  check_bool "missing" true (Kvs.incr kvs "zz" 1 = None)

let test_lru_eviction () =
  let now, _ = make_clock () in
  let kvs = Kvs.create ~now ~capacity:3 ~maintenance_every:1_000_000 () in
  Kvs.set kvs "a" "1";
  Kvs.set kvs "b" "2";
  Kvs.set kvs "c" "3";
  (* touch a so b becomes LRU *)
  ignore (Kvs.get kvs "a");
  Kvs.set kvs "d" "4";
  check_int "capacity respected" 3 (Kvs.size kvs);
  check_str_opt "LRU victim evicted" None (Kvs.get kvs "b");
  check_str_opt "recently used kept" (Some "1") (Kvs.get kvs "a");
  check_int "evictions counted" 1 (Kvs.stats kvs).Kvs.evictions

let test_maintenance_reaps_expired () =
  let now, advance = make_clock () in
  let kvs = Kvs.create ~now ~maintenance_every:4 () in
  Kvs.set kvs ~ttl:5. "x" "1";
  Kvs.set kvs ~ttl:5. "y" "2";
  advance 10.;
  (* these sets cross the maintenance threshold and trigger the sweep *)
  Kvs.set kvs "p" "3";
  Kvs.set kvs "q" "4";
  Kvs.set kvs "r" "5";
  let s = Kvs.stats kvs in
  check_bool "maintenance ran" true (s.Kvs.global_lock_acquisitions >= 1);
  check_bool "expired reaped" true (s.Kvs.expired_reaped >= 2);
  check_int "only live items remain" 3 (Kvs.size kvs)

let test_flush_all () =
  let kvs, _ = fresh () in
  for i = 0 to 20 do
    Kvs.set kvs (string_of_int i) "v"
  done;
  Kvs.flush_all kvs;
  check_int "emptied" 0 (Kvs.size kvs);
  check_str_opt "gone" None (Kvs.get kvs "5")

let test_stats_counters () =
  let kvs, _ = fresh () in
  Kvs.set kvs "a" "1";
  ignore (Kvs.get kvs "a");
  ignore (Kvs.get kvs "zz");
  let s = Kvs.stats kvs in
  check_int "sets" 1 s.Kvs.sets;
  check_int "gets" 2 s.Kvs.gets;
  check_int "hits" 1 s.Kvs.get_hits

let test_concurrent_smoke () =
  let kvs, _ = fresh () in
  let domains = 3 and per = 200 in
  let worker d () =
    for i = 0 to per - 1 do
      let k = Printf.sprintf "d%d:%d" d i in
      Kvs.set kvs k (string_of_int i);
      if Kvs.get kvs k = None then failwith "lost own write"
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  check_int "all items live" (domains * per) (Kvs.size kvs)

let test_driver () =
  let kvs, _ = fresh () in
  Driver.preload kvs ~n_keys:100;
  let r =
    Driver.run kvs ~threads:2 ~ops_per_thread:500 ~n_keys:100
      ~mix:(Driver.mixed 30)
  in
  check_int "all ops ran" 1000 r.Driver.ops;
  check_bool "gets hit the preload" true (r.Driver.get_hits > 0);
  check_int "no misses on preloaded keys" 0 r.Driver.get_misses

(* -------------------------- Figure 12 ---------------------------- *)

let test_fig12_model_shapes () =
  let open Ssync_platform in
  let tput pid algo threads =
    Kvs_sim.set_throughput ~duration:1_500_000 pid algo ~threads
  in
  (* single thread lands in the tens of Kops/s, like the paper *)
  let x1 = tput Arch.Xeon Ssync_simlocks.Simlock.Ticket 1 in
  check_bool (Printf.sprintf "Xeon 1t %.0f in [20;90] Kops" x1) true
    (x1 > 20. && x1 < 90.);
  (* throughput grows from 1 to 10 threads *)
  let x10 = tput Arch.Xeon Ssync_simlocks.Simlock.Ticket 10 in
  check_bool (Printf.sprintf "scales 1t %.0f -> 10t %.0f" x1 x10) true
    (x10 > 3. *. x1);
  (* spin locks beat MUTEX at high thread counts (the paper's 29-50%) *)
  let mutex18 = tput Arch.Xeon Ssync_simlocks.Simlock.Mutex 18 in
  let ticket18 = tput Arch.Xeon Ssync_simlocks.Simlock.Ticket 18 in
  let mcs18 = tput Arch.Xeon Ssync_simlocks.Simlock.Mcs 18 in
  check_bool
    (Printf.sprintf "TICKET (%.0f) >= MUTEX (%.0f) at 18t" ticket18 mutex18)
    true
    (ticket18 >= 1.02 *. mutex18);
  check_bool
    (Printf.sprintf "MCS (%.0f) > MUTEX (%.0f) at 18t" mcs18 mutex18)
    true
    (mcs18 > 1.08 *. mutex18)

let qcheck_kvs_vs_model =
  QCheck.Test.make ~count:40 ~name:"kvs = model (sequential, no expiry)"
    QCheck.(
      list_of_size (Gen.int_range 1 100)
        (pair (int_range 0 15) (int_range 0 2)))
    (fun ops ->
      let kvs, _ = fresh () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (k, op) ->
          let key = string_of_int k in
          match op with
          | 0 -> Kvs.get kvs key = Hashtbl.find_opt model key
          | 1 ->
              Kvs.set kvs key key;
              Hashtbl.replace model key key;
              true
          | _ ->
              let existed = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Kvs.delete kvs key = existed)
        ops)

let suite =
  [
    Alcotest.test_case "set/get/delete" `Quick test_set_get_delete;
    Alcotest.test_case "add/replace" `Quick test_add_replace;
    Alcotest.test_case "expiry" `Quick test_expiry;
    Alcotest.test_case "memcached cas tokens" `Quick test_memcached_cas;
    Alcotest.test_case "incr" `Quick test_incr;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "maintenance reaps expired" `Quick
      test_maintenance_reaps_expired;
    Alcotest.test_case "flush_all" `Quick test_flush_all;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "concurrent smoke (4 domains)" `Slow
      test_concurrent_smoke;
    Alcotest.test_case "memslap-like driver" `Slow test_driver;
    Alcotest.test_case "Figure 12 model shapes" `Slow test_fig12_model_shapes;
    QCheck_alcotest.to_alcotest qcheck_kvs_vs_model;
  ]
