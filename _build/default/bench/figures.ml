(* One generator per paper table/figure.  Each prints the measured
   result (with paper reference values where the paper reports numbers)
   using the Report library.  Durations are chosen so the full harness
   runs in minutes on one host CPU; shapes, not absolute precision, are
   the target (see EXPERIMENTS.md). *)

open Ssync_platform
open Ssync_report

let hr title =
  Printf.printf "\n==== %s ====\n%!" title

let paper_platforms = Arch.paper_platform_ids

(* Thread counts: the paper's x axes, scaled down to a small set of
   sample points per platform. *)
let thread_points pid =
  match pid with
  | Arch.Opteron -> [ 1; 2; 6; 12; 18; 24; 36; 48 ]
  | Arch.Xeon -> [ 1; 2; 10; 20; 40; 60; 80 ]
  | Arch.Niagara -> [ 1; 2; 8; 16; 32; 48; 64 ]
  | Arch.Tilera -> [ 1; 2; 6; 12; 18; 24; 36 ]
  | Arch.Opteron2 -> [ 1; 2; 4; 8 ]
  | Arch.Xeon2 -> [ 1; 2; 6; 12 ]

(* --------------------------- Table 1 ------------------------------ *)

let table1 () =
  hr "Table 1: hardware and OS characteristics of the target platforms";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left; Table.Left ]
      ("" :: List.map (fun (m : Table1.t) -> Arch.platform_name m.Table1.id)
               Table1.all)
  in
  let field_names = List.map fst (Table1.rows Table1.opteron) in
  List.iteri
    (fun i name ->
      Table.add_row t
        (name
        :: List.map
             (fun m -> snd (List.nth (Table1.rows m) i))
             Table1.all))
    field_names;
  Table.print t

(* --------------------------- Table 3 ------------------------------ *)

let table3 () =
  hr "Table 3: local caches and memory latencies (cycles) [paper values in ()]";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "level"; "Opteron"; "Xeon"; "Niagara"; "Tilera" ]
  in
  List.iter
    (fun lvl ->
      let cell pid =
        match List.assoc lvl (Ssync_ccbench.Ccbench.table3 pid) with
        | Some v -> (
            match Latencies.table3 pid lvl with
            | Some p -> Table.vs_paper ~measured:v ~paper:(Some p)
            | None -> string_of_int v)
        | None -> "-"
      in
      Table.add_row t
        (Arch.cache_level_name lvl :: List.map cell paper_platforms))
    [ Arch.L1; Arch.L2; Arch.LLC; Arch.RAM ];
  Table.print t

(* --------------------------- Table 2 ------------------------------ *)

let table2 () =
  hr "Table 2: coherence latencies by state and distance [measured (paper)]";
  List.iter
    (fun pid ->
      Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
      let cells = Ssync_ccbench.Ccbench.table2 pid in
      let t =
        Table.create
          ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Right ]
          [ "op"; "state"; "distance"; "cycles" ]
      in
      List.iter
        (fun (c : Ssync_ccbench.Ccbench.cell) ->
          Table.add_row t
            [
              Arch.memop_name c.Ssync_ccbench.Ccbench.op;
              Arch.cstate_name c.Ssync_ccbench.Ccbench.state;
              Arch.distance_name c.Ssync_ccbench.Ccbench.distance;
              Table.vs_paper ~measured:c.Ssync_ccbench.Ccbench.measured
                ~paper:c.Ssync_ccbench.Ccbench.paper;
            ])
        cells;
      Table.print t)
    paper_platforms;
  Printf.printf
    "\nOpteron worst-case remote directory load (section 5.2, paper ~312): %d\n"
    (Ssync_ccbench.Ccbench.opteron_remote_directory_load ())

(* --------------------------- Figure 3 ----------------------------- *)

let fig3 ?(duration = 300_000) () =
  hr
    "Figure 3: ticket lock acquire+release latency on the Opteron (cycles, \
     lower is better)";
  let threads = [ 1; 2; 6; 12; 18; 24; 36; 48 ] in
  let series =
    List.map
      (fun (name, variant) ->
        Series.make name
          (List.map
             (fun n ->
               (n, Ssync_ccbench.Lock_bench.figure3_latency ~duration variant ~threads:n))
             threads))
      [
        ("non-optimized", Ssync_simlocks.Simlock.Ticket_spin);
        ("back-off", Ssync_simlocks.Simlock.Ticket);
        ("back-off+prefetchw", Ssync_simlocks.Simlock.Ticket_prefetchw);
      ]
  in
  print_endline (Series.table ~x_label:"threads" series)

(* --------------------------- Figure 4 ----------------------------- *)

let fig4 ?(duration = 250_000) () =
  hr "Figure 4: throughput of atomic operations on one location (Mops/s)";
  List.iter
    (fun pid ->
      Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
      let results =
        Ssync_ccbench.Atomic_bench.figure4 ~duration pid
          ~thread_counts:(thread_points pid)
      in
      let series =
        List.map
          (fun (kind, points) ->
            Series.make
              (Ssync_ccbench.Atomic_bench.op_kind_name kind)
              (List.map (fun (n, m) -> (n, m)) points))
          results
      in
      print_endline (Series.table ~x_label:"threads" series))
    paper_platforms

(* ------------------------- Figures 5 and 7 ------------------------ *)

let lock_throughput_figure ~title ~n_locks ?(duration = 200_000) () =
  hr title;
  List.iter
    (fun pid ->
      let p = Platform.get pid in
      Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
      let algos = Ssync_simlocks.Simlock.algos_for p in
      let series =
        List.map
          (fun algo ->
            Series.make
              (Ssync_simlocks.Simlock.name algo)
              (List.map
                 (fun n ->
                   ( n,
                     (Ssync_ccbench.Lock_bench.throughput ~duration pid algo
                        ~threads:n ~n_locks)
                       .Ssync_engine.Harness.mops ))
                 (thread_points pid)))
          algos
      in
      print_endline (Series.table ~x_label:"threads" series))
    paper_platforms

let fig5 ?duration () =
  lock_throughput_figure
    ~title:
      "Figure 5: lock throughput, single lock / extreme contention (Mops/s)"
    ~n_locks:1 ?duration ()

let fig7 ?duration () =
  lock_throughput_figure
    ~title:"Figure 7: lock throughput, 512 locks / very low contention (Mops/s)"
    ~n_locks:512 ?duration ()

(* --------------------------- Figure 6 ----------------------------- *)

let fig6 () =
  hr
    "Figure 6: uncontested lock acquisition latency by previous holder \
     location (cycles)";
  List.iter
    (fun pid ->
      let p = Platform.get pid in
      Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
      let algos = Ssync_simlocks.Simlock.algos_for p in
      let distances = Latencies.distance_classes pid in
      let t =
        Table.create
          ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) ("s" :: List.map Arch.distance_name distances))
          ("lock" :: "single thread" :: List.map Arch.distance_name distances)
      in
      List.iter
        (fun algo ->
          let single =
            Printf.sprintf "%.0f"
              (Ssync_ccbench.Lock_bench.single_thread_latency pid algo)
          in
          let cells =
            List.map
              (fun d ->
                match Ssync_ccbench.Lock_bench.uncontested_latency pid algo d with
                | Some l -> Printf.sprintf "%.0f" l
                | None -> "-")
              distances
          in
          Table.add_row t
            (Ssync_simlocks.Simlock.name algo :: single :: cells))
        algos;
      Table.print t)
    paper_platforms

(* --------------------------- Figure 8 ----------------------------- *)

let fig8 ?(duration = 200_000) () =
  hr
    "Figure 8: best lock and scalability by number of locks (\"X : Y\" = \
     scalability vs single thread : best lock)";
  let thread_samples pid =
    match pid with
    | Arch.Opteron -> [ 1; 6; 18; 36 ]
    | Arch.Xeon -> [ 1; 10; 18; 36 ]
    | Arch.Niagara -> [ 1; 8; 18; 36 ]
    | Arch.Tilera -> [ 1; 8; 18; 36 ]
    | _ -> [ 1 ]
  in
  List.iter
    (fun n_locks ->
      Printf.printf "\n-- %d locks --\n" n_locks;
      let t =
        Table.create
          ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left ]
          [ "platform"; "threads"; "Mops/s"; "X : best lock" ]
      in
      List.iter
        (fun pid ->
          List.iter
            (fun threads ->
              let b =
                Ssync_ccbench.Lock_bench.best_of ~duration pid ~threads
                  ~n_locks
              in
              Table.add_row t
                [
                  Arch.platform_name pid;
                  string_of_int threads;
                  Printf.sprintf "%.1f" b.Ssync_ccbench.Lock_bench.mops;
                  Printf.sprintf "%.1fx : %s"
                    b.Ssync_ccbench.Lock_bench.scalability
                    (Ssync_simlocks.Simlock.name
                       b.Ssync_ccbench.Lock_bench.algo);
                ])
            (thread_samples pid))
        paper_platforms;
      Table.print t)
    [ 4; 16; 32; 128 ]

(* --------------------------- Figure 9 ----------------------------- *)

let fig9 () =
  hr
    "Figure 9: one-to-one message passing latency by distance (cycles; \
     paper: e.g. Opteron one-way 262..660, Tilera hw 61..64)";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "platform"; "distance"; "one-way"; "round-trip" ]
  in
  List.iter
    (fun pid ->
      List.iter
        (fun d ->
          match Ssync_ccbench.Mp_bench.one_to_one pid d with
          | None -> ()
          | Some r ->
              Table.add_row t
                [
                  Arch.platform_name pid;
                  Arch.distance_name d;
                  Printf.sprintf "%.0f" r.Ssync_ccbench.Mp_bench.one_way;
                  Printf.sprintf "%.0f" r.Ssync_ccbench.Mp_bench.round_trip;
                ])
        (Latencies.distance_classes pid))
    paper_platforms;
  Table.print t

(* --------------------------- Figure 10 ---------------------------- *)

let fig10 ?(duration = 250_000) () =
  hr "Figure 10: client-server message passing throughput (Mops/s)";
  let client_counts pid =
    let n = Platform.n_cores (Platform.get pid) - 1 in
    List.filter (fun c -> c <= n) [ 1; 2; 6; 12; 18; 24; 35 ]
  in
  List.iter
    (fun pid ->
      Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
      let series =
        List.map
          (fun (name, mode) ->
            Series.make name
              (List.map
                 (fun c ->
                   (c, Ssync_ccbench.Mp_bench.client_server ~duration pid mode ~clients:c))
                 (client_counts pid)))
          [
            ("one-way", Ssync_ccbench.Mp_bench.One_way);
            ("round-trip", Ssync_ccbench.Mp_bench.Round_trip);
          ]
      in
      print_endline (Series.table ~x_label:"clients" series))
    paper_platforms
