bench/ablations.ml: Arch Array Float Harness Hierarchical List Lock_type Platform Printf Sim Simlock Spinlocks Ssync_engine Ssync_platform Ssync_report Ssync_simlocks Table Topology
