bench/native_bench.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Printf Ssync_locks Ssync_mp Ssync_ssht Ssync_tm Staged String Test Time Toolkit
