bench/figures.ml: Arch Latencies List Platform Printf Series Ssync_ccbench Ssync_engine Ssync_platform Ssync_report Ssync_simlocks Table Table1
