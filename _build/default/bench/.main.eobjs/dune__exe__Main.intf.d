bench/main.mli:
