bench/main.ml: Ablations Array Figures Figures_app List Native_bench Printf Sys Unix
