(* ccbench CLI: query the cache-coherence cost of an operation by
   platform, state and distance — the command-line face of the paper's
   section 4.2 microbenchmark.

   Examples:
     ccbench --platform opteron
     ccbench --platform xeon --op store --state shared
     ccbench --platform tilera --local *)

open Cmdliner
open Ssync_platform

let platform_conv =
  let parse s =
    match Arch.platform_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown platform %S" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Arch.platform_name p))

let op_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "load" -> Ok Arch.Load
    | "store" -> Ok Arch.Store
    | "cas" -> Ok Arch.Cas
    | "fai" -> Ok Arch.Fai
    | "tas" -> Ok Arch.Tas
    | "swap" -> Ok Arch.Swap
    | _ -> Error (`Msg (Printf.sprintf "unknown op %S" s))
  in
  Arg.conv (parse, fun ppf o -> Format.pp_print_string ppf (Arch.memop_name o))

let state_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "modified" | "m" -> Ok Arch.Modified
    | "owned" | "o" -> Ok Arch.Owned
    | "exclusive" | "e" -> Ok Arch.Exclusive
    | "shared" | "s" -> Ok Arch.Shared
    | "invalid" | "i" -> Ok Arch.Invalid
    | _ -> Error (`Msg (Printf.sprintf "unknown state %S" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Arch.cstate_name s))

let run platform ops states local =
  if local then begin
    Printf.printf "%s local latencies (cycles):\n" (Arch.platform_name platform);
    List.iter
      (fun (lvl, v) ->
        Printf.printf "  %-4s %s\n" (Arch.cache_level_name lvl)
          (match v with Some c -> string_of_int c | None -> "-"))
      (Ssync_ccbench.Ccbench.table3 platform)
  end
  else begin
    let cells = Ssync_ccbench.Ccbench.table2 platform in
    let cells =
      List.filter
        (fun (c : Ssync_ccbench.Ccbench.cell) ->
          (ops = [] || List.mem c.Ssync_ccbench.Ccbench.op ops)
          && (states = [] || List.mem c.Ssync_ccbench.Ccbench.state states))
        cells
    in
    let t =
      Ssync_report.Table.create
        ~aligns:
          [ Ssync_report.Table.Left; Ssync_report.Table.Left;
            Ssync_report.Table.Left; Ssync_report.Table.Right ]
        [ "op"; "state"; "distance"; "cycles (paper)" ]
    in
    List.iter
      (fun (c : Ssync_ccbench.Ccbench.cell) ->
        Ssync_report.Table.add_row t
          [
            Arch.memop_name c.Ssync_ccbench.Ccbench.op;
            Arch.cstate_name c.Ssync_ccbench.Ccbench.state;
            Arch.distance_name c.Ssync_ccbench.Ccbench.distance;
            Ssync_report.Table.vs_paper
              ~measured:c.Ssync_ccbench.Ccbench.measured
              ~paper:c.Ssync_ccbench.Ccbench.paper;
          ])
      cells;
    Ssync_report.Table.print t
  end

let cmd =
  let platform =
    Arg.(
      value
      & opt platform_conv Arch.Opteron
      & info [ "p"; "platform" ] ~docv:"PLATFORM"
          ~doc:"Target platform: opteron, xeon, niagara, tilera, opteron2, xeon2.")
  in
  let ops =
    Arg.(
      value & opt_all op_conv []
      & info [ "o"; "op" ] ~docv:"OP" ~doc:"Filter by operation (repeatable).")
  in
  let states =
    Arg.(
      value & opt_all state_conv []
      & info [ "s"; "state" ] ~docv:"STATE" ~doc:"Filter by MESI state (repeatable).")
  in
  let local =
    Arg.(value & flag & info [ "local" ] ~doc:"Print Table 3 local latencies instead.")
  in
  Cmd.v
    (Cmd.info "ccbench" ~doc:"cache-coherence latency microbenchmark (SSYNC)")
    Term.(const run $ platform $ ops $ states $ local)

let () = exit (Cmd.eval cmd)
