(* The stress-test CLI of the suite (paper section 4.2): lock throughput
   and latency under a chosen platform, algorithm, thread count and
   contention level.

   Examples:
     ssync_stress --platform xeon --lock hticket --threads 20 --locks 1
     ssync_stress --platform niagara --lock ticket --threads 32 --locks 128 *)

open Cmdliner
open Ssync_platform

let platform_conv =
  let parse s =
    match Arch.platform_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown platform %S" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Arch.platform_name p))

let lock_conv =
  let parse s =
    match Ssync_simlocks.Simlock.of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown lock %S" s))
  in
  Arg.conv
    (parse, fun ppf a -> Format.pp_print_string ppf (Ssync_simlocks.Simlock.name a))

let run pid algo threads n_locks duration =
  let p = Platform.get pid in
  if threads > Platform.n_cores p then begin
    Printf.eprintf "%s has only %d hardware contexts\n"
      (Arch.platform_name pid) (Platform.n_cores p);
    exit 1
  end;
  let r =
    Ssync_ccbench.Lock_bench.throughput ~duration pid algo ~threads ~n_locks
  in
  Printf.printf
    "%s / %s: %d threads, %d lock(s), %d simulated cycles\n"
    (Arch.platform_name pid)
    (Ssync_simlocks.Simlock.name algo)
    threads n_locks duration;
  Printf.printf "  total ops:   %d\n" r.Ssync_engine.Harness.total_ops;
  Printf.printf "  throughput:  %.2f Mops/s\n" r.Ssync_engine.Harness.mops;
  let ops = r.Ssync_engine.Harness.ops in
  let mn = Array.fold_left min max_int ops
  and mx = Array.fold_left max 0 ops in
  Printf.printf "  fairness:    min %d / max %d ops per thread\n" mn mx

let cmd =
  let platform =
    Arg.(
      value
      & opt platform_conv Arch.Opteron
      & info [ "p"; "platform" ] ~docv:"PLATFORM" ~doc:"Target platform.")
  in
  let lock =
    Arg.(
      value
      & opt lock_conv Ssync_simlocks.Simlock.Ticket
      & info [ "l"; "lock" ] ~docv:"LOCK"
          ~doc:"Lock algorithm: TAS, TTAS, TICKET, ARRAY, MUTEX, MCS, CLH, \
                HCLH, HTICKET.")
  in
  let threads =
    Arg.(value & opt int 8 & info [ "t"; "threads" ] ~docv:"N" ~doc:"Threads.")
  in
  let locks =
    Arg.(value & opt int 1 & info [ "locks" ] ~docv:"N" ~doc:"Number of locks.")
  in
  let duration =
    Arg.(
      value & opt int 400_000
      & info [ "d"; "duration" ] ~docv:"CYCLES" ~doc:"Simulated cycles.")
  in
  Cmd.v
    (Cmd.info "ssync_stress" ~doc:"lock stress test on the simulator (SSYNC)")
    Term.(const run $ platform $ lock $ threads $ locks $ duration)

let () = exit (Cmd.eval cmd)
