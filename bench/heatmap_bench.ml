(* [heatmap] subcommand: render the engine's sampled virtual-time
   telemetry as ASCII heatmaps.

   One saturating job per paper platform: every core hammers a single
   word homed on the last core's node, so the traffic converges on one
   home directory and the links toward it — exactly the asymmetric
   pressure the utilization heatmaps exist to make visible at a
   glance.  Each job runs with a fresh metrics sink
   ([Metrics.requested]), and every render below is a pure function of
   the sampled grids, so stdout is byte-identical at any --jobs and
   --shards count.

   The closing reconciliation proves the samples are the engine's own
   truth rather than a parallel bookkeeping free to drift: the summed
   queued-cycle samples must equal [Sim.perf.link_queued_cycles]
   (which sums [Stats.link_queued_cycles]) and the park/wake counters
   must equal [Sim.perf.parks]/[wakeups] exactly.  Exits 1 on any
   drift. *)

open Ssync_platform
module Memory = Ssync_coherence.Memory
module Sim = Ssync_engine.Sim
module Harness = Ssync_engine.Harness
module Pool = Ssync_engine.Pool
module Metrics = Ssync_metrics.Metrics
module Heatmap = Ssync_report.Heatmap

(* The workload: thread [t] alternates increments of word [t] and word
   [t + threads/2 mod threads], every word homed on the last core's
   node.  Each line therefore ping-pongs between two far-apart cores —
   so the traffic keeps leaving the node — while the lines stay
   distinct — so the transfers pipeline into the home directory and
   the links toward it until the finite bandwidth itself queues.  The
   rest of the fabric stays visibly idle for contrast.  A private
   local word is touched in between. *)
let job (p : Platform.t) ~duration =
  let threads = Platform.n_cores p in
  Harness.run p ~threads ~duration
    ~setup:(fun mem ->
      let hot =
        Array.init threads (fun _ ->
            Memory.alloc ~home_core:(threads - 1) mem)
      in
      let locals =
        Array.init threads (fun t ->
            Memory.alloc ~home_core:(Platform.place p t) mem)
      in
      (hot, locals))
    ~body:(fun (hot, locals) _mem ~tid ~deadline ->
      let own = hot.(tid)
      and far = hot.((tid + (Array.length hot / 2)) mod Array.length hot)
      and mine = locals.(tid) in
      let n = ref 0 in
      while Sim.now () < deadline do
        ignore (Sim.fai own);
        ignore (Sim.fai far);
        ignore (Sim.load mine);
        incr n
      done;
      !n)

(* Sum a kind's samples per id across all buckets. *)
let by_id m ~kind =
  let tbl = Hashtbl.create 64 in
  Metrics.iter_sorted m (fun ~kind:k ~id ~bucket:_ v ->
      if k = kind then
        match Hashtbl.find_opt tbl id with
        | Some r -> r := !r + v
        | None -> Hashtbl.add tbl id (ref v));
  tbl

let get tbl id = match Hashtbl.find_opt tbl id with Some r -> !r | None -> 0

(* One id's per-bucket series for a kind. *)
let series m ~kind ~id ~n_buckets =
  let a = Array.make n_buckets 0 in
  Metrics.iter_sorted m (fun ~kind:k ~id:i ~bucket v ->
      if k = kind && i = id && bucket < n_buckets then
        a.(bucket) <- a.(bucket) + v);
  a

(* Ids of a kind sorted hottest-first, ties to the lowest id so the
   report never depends on hash order. *)
let ranked tbl =
  Hashtbl.fold (fun id v acc -> (id, !v) :: acc) tbl []
  |> List.sort (fun (i1, v1) (i2, v2) -> compare (-v1, i1) (-v2, i2))

let render (p : Platform.t) (r : Harness.result) (m : Metrics.t) =
  let topo = p.Platform.topo in
  let n = topo.Topology.n_nodes in
  let fin = max 1 (Metrics.max_ts m) in
  let grid = Metrics.grid m in
  let n_buckets = (fin / grid) + 1 in
  Printf.printf
    "\n== %s — %d threads, %d ops, %d virtual cycles on a %d-cycle grid ==\n"
    p.Platform.name r.Harness.threads r.Harness.total_ops fin grid;
  let frac v = float_of_int v /. float_of_int fin in
  if Cost_model.has_resources topo then begin
    let dir = by_id m ~kind:Metrics.k_dir_busy in
    let lnk = by_id m ~kind:Metrics.k_link_busy in
    let link_of i j = (min i j * n) + max i j in
    if n <= 8 then
      print_string
        (Heatmap.matrix
           ~title:
             "interconnect utilization by node pair (diagonal: home \
              directory busy, off-diagonal: link busy)"
           (Array.init n (fun i ->
                Array.init n (fun j ->
                    if i = j then frac (get dir i)
                    else frac (get lnk (link_of i j))))))
    else begin
      (* mesh: 36 node-pair rows would dwarf a terminal; show the tile
         grid instead — per-tile directory busy, then each tile's
         incident-link pressure *)
      let dim = Topology.tilera_dim in
      print_string
        (Heatmap.matrix ~title:"home-directory utilization by tile"
           (Array.init dim (fun y ->
                Array.init dim (fun x -> frac (get dir ((y * dim) + x))))));
      let pressure t =
        Hashtbl.fold
          (fun id v acc ->
            if id / n = t || id mod n = t then acc + !v else acc)
          lnk 0
      in
      let lmax = ref 1 in
      for t = 0 to n - 1 do
        lmax := max !lmax (pressure t)
      done;
      print_string
        (Heatmap.matrix
           ~title:
             "mesh-link pressure by tile (relative: brightest tile has \
              the most incident-link busy cycles)"
           (Array.init dim (fun y ->
                Array.init dim (fun x ->
                    float_of_int (pressure ((y * dim) + x))
                    /. float_of_int !lmax))))
    end;
    (* queueing is unbounded (cycles spent waiting, not a fraction of
       anything), so its heat is relative to the worst cell *)
    let dq = by_id m ~kind:Metrics.k_dir_queued in
    let lq = by_id m ~kind:Metrics.k_link_queued in
    let qcell i j = if i = j then get dq i else get lq (link_of i j) in
    let qmax = ref 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        qmax := max !qmax (qcell i j)
      done
    done;
    if !qmax > 0 && n <= 8 then
      print_string
        (Heatmap.matrix
           ~title:
             (Printf.sprintf
                "wait-cycle attribution by node pair (relative: brightest \
                 cell = %d queued cycles)"
                !qmax)
           (Array.init n (fun i ->
                Array.init n (fun j ->
                    float_of_int (qcell i j) /. float_of_int !qmax))));
    (* the busiest link over time *)
    match ranked lnk with
    | (id, v) :: _ when v > 0 ->
        let s = series m ~kind:Metrics.k_link_busy ~id ~n_buckets in
        Printf.printf "%s\n"
          (Heatmap.timeline
             ~label:(Printf.sprintf "link %d-%d busy " (id / n) (id mod n))
             (Array.map (fun c -> float_of_int c /. float_of_int grid) s))
    | _ -> ()
  end
  else
    Printf.printf
      "(no finite interconnect resources modeled: uniform crossbar, \
       address-banked LLC)\n";
  (* thread run-state strips: fraction of the thread population in each
     state per bucket *)
  let threads = r.Harness.threads in
  let strip kind label =
    let s = series m ~kind ~id:0 ~n_buckets in
    Printf.printf "%s\n"
      (Heatmap.timeline ~label
         (Array.map
            (fun c -> float_of_int c /. float_of_int (grid * threads))
            s))
  in
  strip Metrics.k_runnable "threads runnable";
  strip Metrics.k_spinning "threads spinning";
  strip Metrics.k_parked "threads parked  ";
  (* hottest cache lines by sampled occupancy; sharer-weighted cycles
     over the whole span give the line's average cache footprint *)
  let sh = by_id m ~kind:Metrics.k_line_sharers in
  List.iteri
    (fun i (id, v) ->
      if i < 3 && v > 0 then
        Printf.printf
          "line %-4d occupied %9d cy (%4.1f%%), mean sharers %.2f\n" id v
          (100. *. frac v)
          (frac (get sh id)))
    (ranked (by_id m ~kind:Metrics.k_line_occ))

let run ~quick ~jobs () =
  Metrics.requested := true;
  (* a finer grid than the dump default: these windows are short and
     the strips should resolve the barrier ramp and the steady state *)
  Metrics.bucket_cycles := 4096;
  let duration = if quick then 50_000 else 150_000 in
  let platforms = Platform.all in
  let thunks =
    Array.of_list (List.map (fun p () -> job p ~duration) platforms)
  in
  let t0 = Unix.gettimeofday () in
  let results = Pool.run ~jobs thunks in
  let sinks = Pool.metrics results in
  Printf.printf
    "Virtual-time utilization heatmaps — every core hammering one word \
     homed on the last node (%d-cycle window)\n%s\n"
    duration Heatmap.legend;
  if List.length sinks <> List.length platforms then begin
    (* every job gets a sink when sampling is on, so this is
       unreachable short of an engine bug *)
    Printf.eprintf "heatmap: %d sinks for %d jobs\n" (List.length sinks)
      (List.length platforms);
    exit 2
  end;
  List.iteri
    (fun i p ->
      let r, _ = results.(i) in
      render p r (List.nth sinks i))
    platforms;
  Printf.eprintf "\n(heatmap wall time: %.1fs, %d jobs)\n"
    (Unix.gettimeofday () -. t0)
    jobs;
  (* PDES health from the strategy-dependent kinds (all zero on serial
     runs; excluded from the deterministic dumps, shown here) *)
  let tot k =
    List.fold_left (fun a m -> a + Metrics.total m ~kind:k) 0 sinks
  in
  let p = (Pool.total_stats results).Pool.perf in
  Printf.printf
    "\nPDES health: %d windows, %d speculative replays, %d promoted \
     lines, %d serial escalations\n"
    (tot Metrics.k_windows) (tot Metrics.k_replays)
    (tot Metrics.k_promoted) p.Sim.serial_escalations;
  (* the samples must be the engine's truth, not a parallel count *)
  let ok = ref true in
  let check name sampled engine =
    if sampled = engine then
      Printf.printf "reconcile %-13s %12d  OK\n" name sampled
    else begin
      Printf.printf "reconcile %-13s metrics %d vs Sim.perf %d  MISMATCH\n"
        name sampled engine;
      ok := false
    end
  in
  Printf.printf "\n";
  check "queued cycles"
    (tot Metrics.k_dir_queued + tot Metrics.k_link_queued)
    p.Sim.link_queued_cycles;
  check "parks" (tot Metrics.k_parks) p.Sim.parks;
  check "wakeups" (tot Metrics.k_wakes) p.Sim.wakeups;
  if not !ok then exit 1
