(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Tables 2-3, Figures 3-12) plus the prose results
   of sections 5.3 and 8, and runs Bechamel microbenchmarks of the
   native library.

   Usage:
     bench/main.exe            run everything
     bench/main.exe SECTIONS   run a subset, e.g. `main.exe fig5 fig11`
     bench/main.exe --quick    shorter simulated windows
     bench/main.exe --list     list section names *)

let sections : (string * string * (quick:bool -> unit)) list =
  [
    ("table3", "Table 3: local cache/memory latencies",
     fun ~quick:_ -> Figures.table3 ());
    ("table2", "Table 2: coherence latencies by state and distance",
     fun ~quick:_ -> Figures.table2 ());
    ("fig3", "Figure 3: ticket lock variants on the Opteron",
     fun ~quick ->
       Figures.fig3 ~duration:(if quick then 120_000 else 400_000) ());
    ("fig4", "Figure 4: atomic operation throughput",
     fun ~quick ->
       Figures.fig4 ~duration:(if quick then 100_000 else 300_000) ());
    ("fig5", "Figure 5: locks under extreme contention",
     fun ~quick ->
       Figures.fig5 ~duration:(if quick then 80_000 else 250_000) ());
    ("fig6", "Figure 6: uncontested lock acquisition latency",
     fun ~quick:_ -> Figures.fig6 ());
    ("fig7", "Figure 7: locks under very low contention",
     fun ~quick ->
       Figures.fig7 ~duration:(if quick then 80_000 else 250_000) ());
    ("fig8", "Figure 8: best lock by contention level",
     fun ~quick ->
       Figures.fig8 ~duration:(if quick then 60_000 else 200_000) ());
    ("fig9", "Figure 9: one-to-one message passing latency",
     fun ~quick:_ -> Figures.fig9 ());
    ("fig10", "Figure 10: client-server message passing throughput",
     fun ~quick ->
       Figures.fig10 ~duration:(if quick then 100_000 else 300_000) ());
    ("fig11", "Figure 11: hash table (ssht) throughput",
     fun ~quick ->
       Figures_app.fig11 ~duration:(if quick then 60_000 else 150_000) ());
    ("fig12", "Figure 12: Memcached set-only throughput",
     fun ~quick ->
       Figures_app.fig12 ~duration:(if quick then 800_000 else 2_500_000) ());
    ("extra_prefetchw_mp", "Section 5.3: prefetchw message passing",
     fun ~quick:_ -> Figures_app.extra_prefetchw_mp ());
    ("extra_small_platforms", "Section 8: 2-socket platforms",
     fun ~quick:_ -> Figures_app.extra_small_platforms ());
    ("extra_stm", "Section 8: TM2C lock-based vs message-passing",
     fun ~quick ->
       Figures_app.extra_stm ~duration:(if quick then 60_000 else 150_000) ());
    ("table1", "Table 1: platform characteristics",
     fun ~quick:_ -> Figures.table1 ());
    ("preemption", "Fault injection: lock throughput vs preemption rate",
     fun ~quick -> Faults_bench.run ~quick ());
    ("ablations", "Ablations: backoff base, max_pass, placement, occupancy",
     fun ~quick -> Ablations.run ~quick ());
    ("native_bechamel", "Native library microbenchmarks (Bechamel)",
     fun ~quick:_ -> Native_bench.run ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let args = List.filter (fun a -> a <> "--quick") args in
  if List.mem "--list" args then
    List.iter (fun (name, desc, _) -> Printf.printf "%-22s %s\n" name desc) sections
  else begin
    let wanted =
      match args with
      | [] -> List.map (fun (n, _, _) -> n) sections
      | names ->
          List.iter
            (fun n ->
              if not (List.exists (fun (s, _, _) -> s = n) sections) then begin
                Printf.eprintf
                  "unknown section %S (use --list to see the choices)\n" n;
                exit 1
              end)
            names;
          names
    in
    Printf.printf
      "SSYNC benchmark harness — reproduction of David, Guerraoui, \
       Trigonakis, SOSP'13.\nAll cross-platform numbers come from the \
       calibrated simulator; see EXPERIMENTS.md.\n%!";
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (name, _, f) -> if List.mem name wanted then f ~quick)
      sections;
    Printf.printf "\n(total wall time: %.1fs)\n" (Unix.gettimeofday () -. t0)
  end
