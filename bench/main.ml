(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Tables 2-3, Figures 3-12) plus the prose results
   of sections 5.3 and 8, and runs Bechamel microbenchmarks of the
   native library.

   Usage:
     bench/main.exe            run everything
     bench/main.exe SECTIONS   run a subset, e.g. `main.exe fig5 fig11`
     bench/main.exe --quick    shorter simulated windows
     bench/main.exe --list     list section names
     bench/main.exe --json     also write per-section engine counters
                               (wall time, events, parked waiters,
                               simulated cycles/s) to BENCH_PERF.json
     bench/main.exe --compare-perf BASELINE FRESH
                               perf guardrail: exit 1 if FRESH shows the
                               simulator regressing vs BASELINE (>25%
                               drop in simulated cycles per wall second,
                               or >25% growth in events executed) *)

let sections : (string * string * (quick:bool -> unit)) list =
  [
    ("table3", "Table 3: local cache/memory latencies",
     fun ~quick:_ -> Figures.table3 ());
    ("table2", "Table 2: coherence latencies by state and distance",
     fun ~quick:_ -> Figures.table2 ());
    ("fig3", "Figure 3: ticket lock variants on the Opteron",
     fun ~quick ->
       Figures.fig3 ~duration:(if quick then 120_000 else 400_000) ());
    ("fig4", "Figure 4: atomic operation throughput",
     fun ~quick ->
       Figures.fig4 ~duration:(if quick then 100_000 else 300_000) ());
    ("fig5", "Figure 5: locks under extreme contention",
     fun ~quick ->
       Figures.fig5 ~duration:(if quick then 80_000 else 250_000) ());
    ("fig6", "Figure 6: uncontested lock acquisition latency",
     fun ~quick:_ -> Figures.fig6 ());
    ("fig7", "Figure 7: locks under very low contention",
     fun ~quick ->
       Figures.fig7 ~duration:(if quick then 80_000 else 250_000) ());
    ("fig8", "Figure 8: best lock by contention level",
     fun ~quick ->
       Figures.fig8 ~duration:(if quick then 60_000 else 200_000) ());
    ("fig9", "Figure 9: one-to-one message passing latency",
     fun ~quick:_ -> Figures.fig9 ());
    ("fig10", "Figure 10: client-server message passing throughput",
     fun ~quick ->
       Figures.fig10 ~duration:(if quick then 100_000 else 300_000) ());
    ("fig11", "Figure 11: hash table (ssht) throughput",
     fun ~quick ->
       Figures_app.fig11 ~duration:(if quick then 60_000 else 150_000) ());
    ("fig12", "Figure 12: Memcached set-only throughput",
     fun ~quick ->
       Figures_app.fig12 ~duration:(if quick then 800_000 else 2_500_000) ());
    ("extra_prefetchw_mp", "Section 5.3: prefetchw message passing",
     fun ~quick:_ -> Figures_app.extra_prefetchw_mp ());
    ("extra_small_platforms", "Section 8: 2-socket platforms",
     fun ~quick:_ -> Figures_app.extra_small_platforms ());
    ("extra_stm", "Section 8: TM2C lock-based vs message-passing",
     fun ~quick ->
       Figures_app.extra_stm ~duration:(if quick then 60_000 else 150_000) ());
    ("table1", "Table 1: platform characteristics",
     fun ~quick:_ -> Figures.table1 ());
    ("preemption", "Fault injection: lock throughput vs preemption rate",
     fun ~quick -> Faults_bench.run ~quick ());
    ("ablations", "Ablations: backoff base, max_pass, placement, occupancy",
     fun ~quick -> Ablations.run ~quick ());
    ("native_bechamel", "Native library microbenchmarks (Bechamel)",
     fun ~quick:_ -> Native_bench.run ());
  ]

(* One machine-readable line per section: the engine-counter deltas
   around its run.  [sim_mcps] is simulated cycles per wall second — the
   simulator's own throughput. *)
type section_perf = {
  sp_name : string;
  sp_wall_s : float;
  sp_events : int;
  sp_parks : int;
  sp_wakeups : int;
  sp_elided : int;
  sp_sim_cycles : int;
}

let perf_json_line sp =
  let sim_mcps =
    if sp.sp_wall_s <= 0. then 0.
    else float_of_int sp.sp_sim_cycles /. sp.sp_wall_s /. 1e6
  in
  Printf.sprintf
    "{\"section\":%S,\"wall_s\":%.3f,\"events\":%d,\"parks\":%d,\
     \"wakeups\":%d,\"elided_probes\":%d,\"sim_cycles\":%d,\
     \"sim_mcycles_per_s\":%.1f}"
    sp.sp_name sp.sp_wall_s sp.sp_events sp.sp_parks sp.sp_wakeups
    sp.sp_elided sp.sp_sim_cycles sim_mcps

let write_perf_json ~quick ~total_wall sps =
  let oc = open_out "BENCH_PERF.json" in
  let total =
    List.fold_left
      (fun acc sp ->
        {
          acc with
          sp_events = acc.sp_events + sp.sp_events;
          sp_parks = acc.sp_parks + sp.sp_parks;
          sp_wakeups = acc.sp_wakeups + sp.sp_wakeups;
          sp_elided = acc.sp_elided + sp.sp_elided;
          sp_sim_cycles = acc.sp_sim_cycles + sp.sp_sim_cycles;
        })
      {
        sp_name = "total";
        sp_wall_s = total_wall;
        sp_events = 0;
        sp_parks = 0;
        sp_wakeups = 0;
        sp_elided = 0;
        sp_sim_cycles = 0;
      }
      sps
  in
  output_string oc "[\n";
  Printf.fprintf oc "{\"mode\":%S},\n" (if quick then "quick" else "full");
  List.iter (fun sp -> Printf.fprintf oc "%s,\n" (perf_json_line sp)) sps;
  Printf.fprintf oc "%s\n]\n" (perf_json_line total);
  close_out oc;
  Printf.printf "(engine counters written to BENCH_PERF.json)\n"

(* ------------------------------------------------------------------ *)
(* Perf guardrail: compare two BENCH_PERF.json files and fail loudly if
   the fresh run shows the simulator regressing against the committed
   baseline.  The files are the harness's own line-per-section output,
   so a tiny hand parser suffices — no JSON library needed (or
   available) in this environment. *)

let find_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and n = String.length line in
  let rec scan i =
    if i + plen > n then None
    else if String.sub line i plen = pat then Some (i + plen)
    else scan (i + 1)
  in
  scan 0

let field_num line key =
  match find_field line key with
  | None -> None
  | Some j ->
      let n = String.length line in
      let k = ref j in
      while
        !k < n
        && (match line.[!k] with '0' .. '9' | '.' | '-' -> true | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.sub line j (!k - j))

let field_str line key =
  match find_field line key with
  | None -> None
  | Some j when j < String.length line && line.[j] = '"' -> (
      match String.index_from_opt line (j + 1) '"' with
      | Some e -> Some (String.sub line (j + 1) (e - j - 1))
      | None -> None)
  | Some _ -> None

(* (mode, total events, total simulated Mcycles per wall second) *)
let perf_summary path =
  let ic =
    try open_in path
    with Sys_error e ->
      Printf.eprintf "--compare-perf: cannot open %s: %s\n" path e;
      exit 2
  in
  let rec lines acc =
    match input_line ic with
    | l -> lines (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  let lines = lines [] in
  let mode = List.find_map (fun l -> field_str l "mode") lines in
  let total =
    List.find_opt (fun l -> field_str l "section" = Some "total") lines
  in
  match (mode, total) with
  | Some m, Some t -> (
      match (field_num t "events", field_num t "sim_mcycles_per_s") with
      | Some ev, Some mcps -> (m, ev, mcps)
      | _ ->
          Printf.eprintf "--compare-perf: %s: malformed total line\n" path;
          exit 2)
  | _ ->
      Printf.eprintf "--compare-perf: %s: missing mode or total entry\n" path;
      exit 2

let compare_perf baseline_path fresh_path =
  let b_mode, b_events, b_mcps = perf_summary baseline_path in
  let f_mode, f_events, f_mcps = perf_summary fresh_path in
  if b_mode <> f_mode then begin
    Printf.eprintf
      "--compare-perf: mode mismatch (baseline %s, fresh %s) — comparing \
       different workloads proves nothing\n"
      b_mode f_mode;
    exit 2
  end;
  Printf.printf
    "perf guardrail (%s mode):\n\
    \  events       %12.0f -> %12.0f  (%+.1f%%, limit +25%%)\n\
    \  sim Mcy/s    %12.1f -> %12.1f  (%+.1f%%, limit -25%%)\n"
    b_mode b_events f_events
    (100. *. ((f_events /. b_events) -. 1.))
    b_mcps f_mcps
    (100. *. ((f_mcps /. b_mcps) -. 1.));
  let events_ok = f_events <= 1.25 *. b_events in
  let mcps_ok = f_mcps >= 0.75 *. b_mcps in
  if not events_ok then
    Printf.printf
      "FAIL: the simulator now executes >25%% more events for the same \
       workload (lost elision/parking coverage?)\n";
  if not mcps_ok then
    Printf.printf
      "FAIL: simulated cycles per wall second dropped >25%% (hot-path \
       slowdown?)\n";
  if events_ok && mcps_ok then Printf.printf "OK: within budget\n"
  else exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (match args with
  | "--compare-perf" :: rest -> (
      match rest with
      | [ baseline; fresh ] ->
          compare_perf baseline fresh;
          exit 0
      | _ ->
          Printf.eprintf "usage: --compare-perf BASELINE.json FRESH.json\n";
          exit 2)
  | _ -> ());
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let args =
    List.filter (fun a -> a <> "--quick" && a <> "--json") args
  in
  if List.mem "--list" args then
    List.iter (fun (name, desc, _) -> Printf.printf "%-22s %s\n" name desc) sections
  else begin
    let wanted =
      match args with
      | [] -> List.map (fun (n, _, _) -> n) sections
      | names ->
          List.iter
            (fun n ->
              if not (List.exists (fun (s, _, _) -> s = n) sections) then begin
                Printf.eprintf
                  "unknown section %S (use --list to see the choices)\n" n;
                exit 1
              end)
            names;
          names
    in
    Printf.printf
      "SSYNC benchmark harness — reproduction of David, Guerraoui, \
       Trigonakis, SOSP'13.\nAll cross-platform numbers come from the \
       calibrated simulator; see EXPERIMENTS.md.\n%!";
    let t0 = Unix.gettimeofday () in
    let perfs = ref [] in
    List.iter
      (fun (name, _, f) ->
        if List.mem name wanted then begin
          let w0 = Unix.gettimeofday () in
          let p0 = Ssync_engine.Sim.cumulative_perf () in
          f ~quick;
          let w1 = Unix.gettimeofday () in
          let p1 = Ssync_engine.Sim.cumulative_perf () in
          perfs :=
            {
              sp_name = name;
              sp_wall_s = w1 -. w0;
              sp_events = p1.Ssync_engine.Sim.events - p0.Ssync_engine.Sim.events;
              sp_parks = p1.Ssync_engine.Sim.parks - p0.Ssync_engine.Sim.parks;
              sp_wakeups =
                p1.Ssync_engine.Sim.wakeups - p0.Ssync_engine.Sim.wakeups;
              sp_elided =
                p1.Ssync_engine.Sim.elided_probes
                - p0.Ssync_engine.Sim.elided_probes;
              sp_sim_cycles =
                p1.Ssync_engine.Sim.sim_cycles - p0.Ssync_engine.Sim.sim_cycles;
            }
            :: !perfs
        end)
      sections;
    let total_wall = Unix.gettimeofday () -. t0 in
    Printf.printf "\n(total wall time: %.1fs)\n" total_wall;
    if json then write_perf_json ~quick ~total_wall (List.rev !perfs)
  end
