(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Tables 2-3, Figures 3-12) plus the prose results
   of sections 5.3 and 8, and runs Bechamel microbenchmarks of the
   native library.

   Every section describes its simulations as independent pure jobs
   (Section.t); the driver fans the jobs of all selected sections
   across a domain pool and renders the tables afterwards, in section
   declaration order.  Because each job builds its own simulation and
   every simulation is seeded-deterministic, stdout is byte-identical
   whatever --jobs says (the Bechamel section excepted: it measures
   host wall-clock, which no amount of determinism machinery can pin).

   Usage:
     bench/main.exe            run everything
     bench/main.exe SECTIONS   run a subset, e.g. `main.exe fig5 fig11`
     bench/main.exe --quick    shorter simulated windows
     bench/main.exe --jobs N   fan simulation jobs across N domains
                               (default: the machine's recommended
                               domain count; --jobs 1 is fully serial)
     bench/main.exe --shards N run every simulation sharded (PDES)
                               across N shards (default 1 = serial).
                               Output is byte-identical to --shards 1:
                               workloads the conservative windows
                               cannot order abort and re-run serially
     bench/main.exe --list     list section names
     bench/main.exe --json     also write per-section engine counters
                               (cpu time, events, parked waiters,
                               simulated cycles/s) to BENCH_PERF.json
     bench/main.exe --trace FILE
                               record every job of the selected sections
                               into a Chrome/Perfetto trace-event JSON
                               (one process per job, one track per
                               simulated thread; byte-identical at any
                               --jobs count).  When --metrics is also
                               given, the sampled timelines ride along
                               as Perfetto counter tracks
     bench/main.exe --trace-spec FILE
                               like --trace, but keeps sharded (PDES)
                               execution enabled and records the
                               speculation lifecycle — window open/
                               close, conflict aborts, checkpoint/
                               restore, line promotions, replays,
                               serial escalations — instead of
                               per-thread events.  Combine with
                               --shards N
     bench/main.exe --metrics FILE
                               sample every job's virtual-time metric
                               timelines (interconnect busy/queued,
                               line occupancy and sharers, lock waiter
                               depth, thread run states) onto a
                               virtual-cycle grid and dump them to FILE
                               (JSON if it ends in .json, else CSV);
                               byte-identical at any --jobs and any
                               --shards count
     bench/main.exe heatmap    per-platform saturation workload rendered
                               as ASCII heatmaps from the sampled
                               metrics: interconnect utilization and
                               wait-cycle attribution by node pair,
                               thread run-state strips over virtual
                               time, hottest lines, PDES health; the
                               samples are reconciled exactly against
                               Sim.perf (exit 1 on drift).  Combines
                               with --quick/--jobs/--shards
     bench/main.exe profile [SECTIONS]
                               run the sections traced (default fig3;
                               tables are not rendered) and print the
                               contention/coherence profile: per-lock
                               wait/hold split, handoff distance-class
                               matrix, acquisition-latency histogram,
                               transfer accounting by (op, state,
                               distance), state-transition matrix, and
                               a reconciliation against Sim.perf.
                               Combines with --quick/--jobs/--trace.
     bench/main.exe chaos      deterministic crash-sweep over the robust
                               lock paths: every (platform, lock, seed,
                               crash schedule) runs as a pure job, its
                               trace is replayed through the invariant
                               checker, violations are shrunk to minimal
                               repro keys (chaos --repro KEY replays one
                               verbosely).  Prints a per-lock robustness
                               scorecard; exits 1 on any violation.
                               Combines with --quick/--jobs.
     bench/main.exe --compare-perf BASELINE FRESH
                               perf guardrail: exit 1 if FRESH shows the
                               simulator regressing vs BASELINE (>25%
                               drop in simulated cycles per cpu second
                               globally or in a non-trivial section,
                               >25% growth in events executed globally
                               or per section, or a section's cpu time
                               blowing up >1.75x and >0.5s); all failing
                               checks are reported before exiting *)

open Ssync_bench

let sections : (string * string * (quick:bool -> Section.t)) list =
  [
    ("table3", "Table 3: local cache/memory latencies",
     fun ~quick:_ -> Figures.table3 ());
    ("table2", "Table 2: coherence latencies by state and distance",
     fun ~quick:_ -> Figures.table2 ());
    ("fig3", "Figure 3: ticket lock variants on the Opteron",
     fun ~quick ->
       Figures.fig3 ~duration:(if quick then 120_000 else 400_000) ());
    ("fig4", "Figure 4: atomic operation throughput",
     fun ~quick ->
       Figures.fig4 ~duration:(if quick then 100_000 else 300_000) ());
    ("fig5", "Figure 5: locks under extreme contention",
     fun ~quick ->
       Figures.fig5 ~duration:(if quick then 80_000 else 250_000) ());
    ("fig6", "Figure 6: uncontested lock acquisition latency",
     fun ~quick:_ -> Figures.fig6 ());
    ("fig7", "Figure 7: locks under very low contention",
     fun ~quick ->
       Figures.fig7 ~duration:(if quick then 80_000 else 250_000) ());
    ("fig8", "Figure 8: best lock by contention level",
     fun ~quick ->
       Figures.fig8 ~duration:(if quick then 60_000 else 200_000) ());
    ("fig9", "Figure 9: one-to-one message passing latency",
     fun ~quick:_ -> Figures.fig9 ());
    ("fig10", "Figure 10: client-server message passing throughput",
     fun ~quick ->
       Figures.fig10 ~duration:(if quick then 100_000 else 300_000) ());
    ("fig11", "Figure 11: hash table (ssht) throughput",
     fun ~quick ->
       Figures_app.fig11 ~duration:(if quick then 60_000 else 150_000) ());
    ("fig12", "Figure 12: Memcached set-only throughput",
     fun ~quick ->
       Figures_app.fig12 ~duration:(if quick then 800_000 else 2_500_000) ());
    ("extra_prefetchw_mp", "Section 5.3: prefetchw message passing",
     fun ~quick:_ -> Figures_app.extra_prefetchw_mp ());
    ("extra_small_platforms", "Section 8: 2-socket platforms",
     fun ~quick:_ -> Figures_app.extra_small_platforms ());
    ("extra_stm", "Section 8: TM2C lock-based vs message-passing",
     fun ~quick ->
       Figures_app.extra_stm ~duration:(if quick then 60_000 else 150_000) ());
    ("false-sharing", "False sharing: padded vs packed per-thread words",
     fun ~quick ->
       Figures.false_sharing ~duration:(if quick then 60_000 else 200_000) ());
    ("table1", "Table 1: platform characteristics",
     fun ~quick:_ -> Figures.table1 ());
    ("preemption", "Fault injection: lock throughput vs preemption rate",
     fun ~quick -> Faults_bench.run ~quick ());
    ("ablations", "Ablations: backoff base, max_pass, placement, occupancy",
     fun ~quick -> Ablations.run ~quick ());
    ("native_bechamel", "Native library microbenchmarks (Bechamel)",
     fun ~quick:_ -> Native_bench.run ());
  ]

(* One machine-readable line per section: the engine-counter deltas of
   its jobs (captured per job inside the executing domain and summed)
   plus the time spent computing it.  [sp_cpu_s] is job cpu time plus
   the serial render time, so it approximates the old serial wall_s and
   stays comparable across --jobs counts; [sim_mcycles_per_s] is
   simulated cycles per cpu second — the simulator's own throughput,
   independent of how many domains ran the jobs. *)
type section_perf = {
  sp_name : string;
  sp_cpu_s : float;
  sp_perf : Ssync_engine.Sim.perf;
}

let sim_mcps ~cpu_s ~sim_cycles =
  if cpu_s <= 0. then 0. else float_of_int sim_cycles /. cpu_s /. 1e6

let perf_json_fields sp =
  let p = sp.sp_perf in
  Printf.sprintf
    "\"cpu_s\":%.3f,\"events\":%d,\"parks\":%d,\"wakeups\":%d,\
     \"elided_probes\":%d,\"link_queued_cycles\":%d,\"sim_cycles\":%d,\
     \"sim_mcycles_per_s\":%.1f,\"speculative_replays\":%d,\
     \"serial_escalations\":%d"
    sp.sp_cpu_s p.Ssync_engine.Sim.events p.Ssync_engine.Sim.parks
    p.Ssync_engine.Sim.wakeups p.Ssync_engine.Sim.elided_probes
    p.Ssync_engine.Sim.link_queued_cycles p.Ssync_engine.Sim.sim_cycles
    (sim_mcps ~cpu_s:sp.sp_cpu_s ~sim_cycles:p.Ssync_engine.Sim.sim_cycles)
    p.Ssync_engine.Sim.speculative_replays
    p.Ssync_engine.Sim.serial_escalations

let write_perf_json ~quick ~jobs ~shards ~total_wall sps =
  let oc = open_out "BENCH_PERF.json" in
  let total =
    List.fold_left
      (fun acc sp ->
        {
          acc with
          sp_cpu_s = acc.sp_cpu_s +. sp.sp_cpu_s;
          sp_perf = Ssync_engine.Sim.perf_add acc.sp_perf sp.sp_perf;
        })
      { sp_name = "total"; sp_cpu_s = 0.; sp_perf = Ssync_engine.Sim.perf_zero }
      sps
  in
  output_string oc "[\n";
  Printf.fprintf oc "{\"mode\":%S,\"jobs\":%d,\"shards\":%d},\n"
    (if quick then "quick" else "full")
    jobs shards;
  List.iter
    (fun sp ->
      Printf.fprintf oc "{\"section\":%S,%s},\n" sp.sp_name
        (perf_json_fields sp))
    sps;
  Printf.fprintf oc "{\"section\":\"total\",\"wall_s\":%.3f,%s}\n]\n" total_wall
    (perf_json_fields total);
  close_out oc;
  Printf.printf "(engine counters written to BENCH_PERF.json)\n"

(* ------------------------------------------------------------------ *)
(* Perf guardrail: compare two BENCH_PERF.json files and fail loudly if
   the fresh run shows the simulator regressing against the committed
   baseline.  The files are the harness's own line-per-section output,
   so a tiny hand parser suffices — no JSON library needed (or
   available) in this environment. *)

let find_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and n = String.length line in
  let rec scan i =
    if i + plen > n then None
    else if String.sub line i plen = pat then Some (i + plen)
    else scan (i + 1)
  in
  scan 0

let field_num line key =
  match find_field line key with
  | None -> None
  | Some j ->
      let n = String.length line in
      let k = ref j in
      while
        !k < n
        && (match line.[!k] with '0' .. '9' | '.' | '-' -> true | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.sub line j (!k - j))

let field_str line key =
  match find_field line key with
  | None -> None
  | Some j when j < String.length line && line.[j] = '"' -> (
      match String.index_from_opt line (j + 1) '"' with
      | Some e -> Some (String.sub line (j + 1) (e - j - 1))
      | None -> None)
  | Some _ -> None

(* Per-section cpu seconds: [cpu_s] in the current format, falling back
   to [wall_s] for baselines written by the serial harness (where the
   two were the same thing). *)
let section_time line =
  match field_num line "cpu_s" with
  | Some t -> Some t
  | None -> field_num line "wall_s"

type file_perf = {
  fp_mode : string;
  fp_sections :
    (string * float * float option * float option * float option) list;
      (* section -> cpu_s (or wall_s), then events, sim Mcy/s and
         sim_cycles when the format has them *)
  fp_events : float;
  fp_mcps : float; (* simulated Mcycles per cpu second *)
}

let perf_summary path =
  let ic =
    try open_in path
    with Sys_error e ->
      Printf.eprintf "--compare-perf: cannot open %s: %s\n" path e;
      exit 2
  in
  let rec lines acc =
    match input_line ic with
    | l -> lines (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  let lines = lines [] in
  let mode = List.find_map (fun l -> field_str l "mode") lines in
  let total =
    List.find_opt (fun l -> field_str l "section" = Some "total") lines
  in
  let sections =
    List.filter_map
      (fun l ->
        match field_str l "section" with
        | Some name when name <> "total" -> (
            match section_time l with
            | Some t ->
                Some
                  ( name,
                    t,
                    field_num l "events",
                    field_num l "sim_mcycles_per_s",
                    field_num l "sim_cycles" )
            | None -> None)
        | _ -> None)
      lines
  in
  match (mode, total) with
  | Some m, Some t -> (
      match (field_num t "events", field_num t "sim_mcycles_per_s") with
      | Some ev, Some mcps ->
          { fp_mode = m; fp_sections = sections; fp_events = ev; fp_mcps = mcps }
      | _ ->
          Printf.eprintf "--compare-perf: %s: malformed total line\n" path;
          exit 2)
  | _ ->
      Printf.eprintf "--compare-perf: %s: missing mode or total entry\n" path;
      exit 2

let compare_perf baseline_path fresh_path =
  let b = perf_summary baseline_path in
  let f = perf_summary fresh_path in
  if b.fp_mode <> f.fp_mode then begin
    Printf.eprintf
      "--compare-perf: mode mismatch (baseline %s, fresh %s) — comparing \
       different workloads proves nothing\n"
      b.fp_mode f.fp_mode;
    exit 2
  end;
  Printf.printf
    "perf guardrail (%s mode):\n\
    \  events       %12.0f -> %12.0f  (%+.1f%%, limit +25%%)\n\
    \  sim Mcy/s    %12.1f -> %12.1f  (%+.1f%%, limit -25%%)\n"
    b.fp_mode b.fp_events f.fp_events
    (100. *. ((f.fp_events /. b.fp_events) -. 1.))
    b.fp_mcps f.fp_mcps
    (100. *. ((f.fp_mcps /. b.fp_mcps) -. 1.));
  (* Every check runs and every failure is reported before the non-zero
     exit, so one CI run shows the full damage instead of the first
     mismatch.  The failure list keeps file order, so the report is
     deterministic. *)
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if f.fp_events > 1.25 *. b.fp_events then
    fail
      "the simulator now executes >25%% more events for the same workload \
       (lost elision/parking coverage?)";
  if f.fp_mcps < 0.75 *. b.fp_mcps then
    fail "simulated cycles per cpu second dropped >25%% (hot-path slowdown?)";
  List.iter
    (fun (name, ft, fev, fmcps, fscy) ->
      match
        List.find_opt (fun (n, _, _, _, _) -> n = name) b.fp_sections
      with
      | None -> ()
      | Some (_, bt, bev, bmcps, _) ->
          (* Per-section cpu time, with a deliberately generous
             threshold: the numbers are one-shot wall measurements on a
             possibly noisy host, so only flag a section that both blew
             its budget by 75% and lost more than half a second in
             absolute terms. *)
          if ft > 1.75 *. bt && ft -. bt > 0.5 then begin
            Printf.printf
              "  section %-22s %8.2fs -> %8.2fs  (limit 1.75x and +0.5s)\n"
              name bt ft;
            fail "section %s: cpu time %.2fs -> %.2fs (limit 1.75x and +0.5s)"
              name bt ft
          end;
          (* Per-section event counts are exact, not host-noisy, so they
             localize an events regression to the section that caused
             it; the absolute floor keeps tiny sections from tripping on
             legitimate small changes. *)
          (match (bev, fev) with
          | Some be, Some fe when fe > 1.25 *. be && fe -. be > 1e6 ->
              Printf.printf
                "  section %-22s %8.0f -> %8.0f events  (limit 1.25x and \
                 +1e6)\n"
                name be fe;
              fail "section %s: events %.0f -> %.0f (limit 1.25x and +1e6)"
                name be fe
          | _ -> ());
          (* Per-section simulator throughput (simulated Mcycles per
             cpu second): localizes a hot-path slowdown to the section
             that pays it.  Only sections with a non-trivial baseline
             cpu budget are judged — tiny sections' one-shot timings
             are mostly noise. *)
          (* Sections that run no simulated cycles (native-execution
             tables, render-only extras) have no simulator throughput
             to judge — cpu time there is dominated by host execution,
             so a Mcy/s ratio would be 0/0 noise.  Say so out loud
             rather than leaving a silent hole in the report. *)
          match fscy with
          | Some 0. ->
              Printf.printf
                "  section %-22s (sim_cycles 0: native section, throughput \
                 check skipped)\n"
                name
          | _ -> (
              match (bmcps, fmcps) with
              | Some bm, Some fm when bt >= 0.5 && bm > 0. && fm < 0.75 *. bm
                ->
                  Printf.printf
                    "  section %-22s %8.1f -> %8.1f sim Mcy/s  (limit -25%%)\n"
                    name bm fm;
                  fail "section %s: sim Mcy/s %.1f -> %.1f (limit -25%%)" name
                    bm fm
              | _ -> ()))
    f.fp_sections;
  match List.rev !failures with
  | [] -> Printf.printf "OK: within budget\n"
  | fs ->
      List.iter (fun s -> Printf.printf "FAIL: %s\n" s) fs;
      exit 1

(* ------------------------------------------------------------------ *)
(* Tracing: label every job "[section]/[index]" in submission order and
   export the merged Chrome trace.  The per-job sinks are filled inside
   whatever domain ran the job and merged here in submission order, so
   the file is byte-identical at any --jobs count.  All chatter goes to
   stderr: stdout (the rendered tables) must stay byte-identical with
   and without --trace. *)
let job_labels planned =
  List.concat_map
    (fun (name, s) ->
      List.init (Array.length s.Section.jobs) (fun j ->
          Printf.sprintf "%s/%d" name j))
    planned

let export_trace path planned results =
  let labels = job_labels planned in
  let traces = Ssync_engine.Pool.traces results in
  if List.length labels <> List.length traces then
    (* every job gets a sink when tracing is on, so this is unreachable
       short of an engine bug — don't write a mislabeled file *)
    Printf.eprintf "(trace: label/trace count mismatch — %s not written)\n" path
  else begin
    (* when --metrics is also on, the sampled timelines ride along as
       Perfetto counter tracks under each job's process *)
    let msinks = Ssync_engine.Pool.metrics results in
    let metrics =
      if List.length msinks = List.length labels then
        List.combine labels msinks
      else []
    in
    Ssync_trace.Chrome.export_file ~metrics path (List.combine labels traces);
    let sum f = List.fold_left (fun a tr -> a + f tr) 0 traces in
    let events = sum Ssync_trace.Trace.length in
    let dropped = sum Ssync_trace.Trace.dropped in
    Printf.eprintf
      "(trace: %d jobs, %d events%s written to %s — load it at \
       https://ui.perfetto.dev)\n"
      (List.length traces) events
      (if dropped > 0 then
         Printf.sprintf " retained (oldest %d overwritten)" dropped
       else "")
      path
  end

(* --metrics: dump every job's sampled metric grid, labeled like the
   trace.  The dump is byte-identical at any --jobs (per-job sinks in
   submission order) and any --shards (samples are keyed by virtual
   time and stable ids; strategy-dependent kinds are excluded by the
   dump itself), so CI can diff two runs directly. *)
let export_metrics path planned results =
  let labels = job_labels planned in
  let sinks = Ssync_engine.Pool.metrics results in
  if List.length labels <> List.length sinks then
    Printf.eprintf "(metrics: label/sink count mismatch — %s not written)\n"
      path
  else begin
    Ssync_metrics.Metrics.dump_file path (List.combine labels sinks);
    Printf.eprintf "(metrics: %d jobs written to %s)\n" (List.length sinks)
      path
  end

(* ------------------------------------------------------------------ *)
(* [profile] subcommand: run the selected sections traced, skip their
   renders, and print the contention/coherence report.  Every table is
   explicitly sorted, so the report is byte-identical at any --jobs
   count.  The closing reconciliation compares the trace aggregates
   (which survive ring wrap-around) against the engine's own cumulative
   counters; any drift means an instrumentation hook went missing, so
   it exits non-zero. *)
let run_profile ~quick ~jobs ~trace_file ~metrics_file names =
  let module Trace = Ssync_trace.Trace in
  let module Profile = Ssync_trace.Profile in
  let module Table = Ssync_report.Table in
  if !Trace.allow_sharded then begin
    (* --trace-spec suppresses the per-thread events every profile
       table and reconciliation is built from *)
    Printf.eprintf
      "profile: --trace-spec records lifecycle events only; use --trace\n";
    exit 2
  end;
  let names = if names = [] then [ "fig3" ] else names in
  List.iter
    (fun n ->
      if not (List.exists (fun (s, _, _) -> s = n) sections) then begin
        Printf.eprintf "unknown section %S (use --list to see the choices)\n" n;
        exit 1
      end)
    names;
  Trace.requested := true;
  let planned =
    List.filter_map
      (fun (name, _, mk) ->
        if List.mem name names then Some (name, mk ~quick) else None)
      sections
  in
  let all_jobs =
    Array.concat (List.map (fun (_, s) -> s.Section.jobs) planned)
  in
  let t0 = Unix.gettimeofday () in
  let results = Ssync_engine.Pool.run ~jobs all_jobs in
  let prof = Profile.of_traces (Ssync_engine.Pool.traces results) in
  Printf.printf "Contention & coherence profile — sections: %s (%d jobs)\n"
    (String.concat " " (List.map (fun (n, _) -> n) planned))
    (Array.length all_jobs);
  let section title tbl =
    Printf.printf "\n%s\n" title;
    Table.print tbl
  in
  let tt = prof.Profile.totals in
  if tt.Trace.t_acquires > 0 then begin
    section "Per-lock contention (wait/hold split, handoff distance mix)"
      (Profile.lock_table prof);
    section "Acquisition-wait histogram (cycles, log2 buckets)"
      (Profile.wait_hist_table prof)
  end;
  if tt.Trace.t_xfers > 0 then begin
    section "Coherence transfers by (platform, op, state, distance)"
      (Profile.coherence_table ~top:24 prof);
    section "State transitions (requests by pre/post line state)"
      (Profile.transitions_table prof);
    section "Hottest cache lines" (Profile.lines_table ~top:10 prof)
  end;
  if Profile.rq_total prof > 0 then
    section "Interconnect wait attribution (queued cycles by distance)"
      (Profile.interconnect_table prof);
  section "Run summary" (Profile.summary_table prof);
  (match trace_file with
  | Some path -> export_trace path planned results
  | None -> ());
  (match metrics_file with
  | Some path -> export_metrics path planned results
  | None -> ());
  Printf.eprintf "\n(profile wall time: %.1fs, %d jobs)\n"
    (Unix.gettimeofday () -. t0) jobs;
  let p = (Ssync_engine.Pool.total_stats results).Ssync_engine.Pool.perf in
  let ok = ref true in
  let check name traced engine =
    if traced = engine then
      Printf.printf "reconcile %-13s %12d  OK\n" name traced
    else begin
      Printf.printf "reconcile %-13s trace %d vs Sim.perf %d  MISMATCH\n" name
        traced engine;
      ok := false
    end
  in
  Printf.printf "\n";
  check "parks" tt.Trace.t_parks p.Ssync_engine.Sim.parks;
  check "wakeups" tt.Trace.t_wakes p.Ssync_engine.Sim.wakeups;
  check "elided probes" tt.Trace.t_elided p.Ssync_engine.Sim.elided_probes;
  check "link queued cy" (Profile.rq_total prof)
    p.Ssync_engine.Sim.link_queued_cycles;
  if not !ok then exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (match args with
  | "--compare-perf" :: rest -> (
      match rest with
      | [ baseline; fresh ] ->
          compare_perf baseline fresh;
          exit 0
      | _ ->
          Printf.eprintf "usage: --compare-perf BASELINE.json FRESH.json\n";
          exit 2)
  | _ -> ());
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let jobs = ref (Ssync_engine.Pool.default_jobs ()) in
  let rec strip_jobs = function
    | [] -> []
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := j;
            strip_jobs rest
        | _ ->
            Printf.eprintf "--jobs: expected a positive integer, got %S\n" n;
            exit 2)
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs: missing domain count\n";
        exit 2
    | a :: rest -> a :: strip_jobs rest
  in
  let args = strip_jobs args in
  let shards = ref 1 in
  let rec strip_shards = function
    | [] -> []
    | "--shards" :: n :: rest -> (
        match int_of_string_opt n with
        | Some s when s >= 1 ->
            shards := s;
            strip_shards rest
        | _ ->
            Printf.eprintf "--shards: expected a positive integer, got %S\n" n;
            exit 2)
    | [ "--shards" ] ->
        Printf.eprintf "--shards: missing shard count\n";
        exit 2
    | a :: rest -> a :: strip_shards rest
  in
  let args = strip_shards args in
  Ssync_engine.Sim.default_shards := !shards;
  (* an explicit --shards request overrides the host-capability default:
     on a single-core host sharded execution is pure overhead, but when
     the user asks for it (identity checks, speculation traces) it must
     actually engage *)
  if !shards > 1 then Ssync_engine.Sim.shard_domains := true;
  let trace_file = ref None in
  let rec strip_trace = function
    | [] -> []
    | "--trace" :: f :: rest when f <> "--trace" ->
        trace_file := Some f;
        strip_trace rest
    | [ "--trace" ] | "--trace" :: _ ->
        Printf.eprintf "--trace: missing output file\n";
        exit 2
    | a :: rest -> a :: strip_trace rest
  in
  let args = strip_trace args in
  (* --trace-spec: same sink as --trace, but tell the engine to keep
     sharded execution (the speculation lifecycle is the point) *)
  let rec strip_trace_spec = function
    | [] -> []
    | "--trace-spec" :: f :: rest when f <> "--trace-spec" ->
        trace_file := Some f;
        Ssync_trace.Trace.allow_sharded := true;
        strip_trace_spec rest
    | [ "--trace-spec" ] | "--trace-spec" :: _ ->
        Printf.eprintf "--trace-spec: missing output file\n";
        exit 2
    | a :: rest -> a :: strip_trace_spec rest
  in
  let args = strip_trace_spec args in
  let metrics_file = ref None in
  let rec strip_metrics = function
    | [] -> []
    | "--metrics" :: f :: rest when f <> "--metrics" ->
        metrics_file := Some f;
        Ssync_metrics.Metrics.requested := true;
        strip_metrics rest
    | [ "--metrics" ] | "--metrics" :: _ ->
        Printf.eprintf "--metrics: missing output file\n";
        exit 2
    | a :: rest -> a :: strip_metrics rest
  in
  let args = strip_metrics args in
  let args =
    List.filter (fun a -> a <> "--quick" && a <> "--json") args
  in
  (match args with
  | "profile" :: names ->
      run_profile ~quick ~jobs:!jobs ~trace_file:!trace_file
        ~metrics_file:!metrics_file names;
      exit 0
  | "chaos" :: rest ->
      Chaos.run ~quick ~jobs:!jobs rest;
      exit 0
  | "heatmap" :: rest ->
      if rest <> [] then begin
        Printf.eprintf "heatmap: unexpected arguments: %s\n"
          (String.concat " " rest);
        exit 2
      end;
      Heatmap_bench.run ~quick ~jobs:!jobs ();
      exit 0
  | _ -> ());
  if List.mem "--list" args then
    List.iter (fun (name, desc, _) -> Printf.printf "%-22s %s\n" name desc) sections
  else begin
    let wanted =
      match args with
      | [] -> List.map (fun (n, _, _) -> n) sections
      | names ->
          List.iter
            (fun n ->
              if not (List.exists (fun (s, _, _) -> s = n) sections) then begin
                Printf.eprintf
                  "unknown section %S (use --list to see the choices)\n" n;
                exit 1
              end)
            names;
          names
    in
    Printf.printf
      "SSYNC benchmark harness — reproduction of David, Guerraoui, \
       Trigonakis, SOSP'13.\nAll cross-platform numbers come from the \
       calibrated simulator; see EXPERIMENTS.md.\n%!";
    if !trace_file <> None then Ssync_trace.Trace.requested := true;
    let t0 = Unix.gettimeofday () in
    (* Plan every selected section, fan all their jobs across the pool,
       then render in declaration order. *)
    let planned =
      List.filter_map
        (fun (name, _, mk) ->
          if List.mem name wanted then Some (name, mk ~quick) else None)
        sections
    in
    let all_jobs =
      Array.concat (List.map (fun (_, s) -> s.Section.jobs) planned)
    in
    let results = Ssync_engine.Pool.run ~jobs:!jobs all_jobs in
    let perfs = ref [] in
    let start = ref 0 in
    List.iter
      (fun (name, s) ->
        let n = Array.length s.Section.jobs in
        let r0 = Unix.gettimeofday () in
        s.Section.render ();
        let render_s = Unix.gettimeofday () -. r0 in
        let stats =
          Ssync_engine.Pool.total_stats (Array.sub results !start n)
        in
        start := !start + n;
        perfs :=
          {
            sp_name = name;
            sp_cpu_s =
              (float_of_int stats.Ssync_engine.Pool.wall_ns /. 1e9) +. render_s;
            sp_perf = stats.Ssync_engine.Pool.perf;
          }
          :: !perfs)
      planned;
    (match !trace_file with
    | Some path -> export_trace path planned results
    | None -> ());
    (match !metrics_file with
    | Some path -> export_metrics path planned results
    | None -> ());
    let total_wall = Unix.gettimeofday () -. t0 in
    (* stderr, so stdout stays byte-identical across runs and --jobs *)
    Printf.eprintf "\n(total wall time: %.1fs, %d jobs)\n" total_wall !jobs;
    if json then
      write_perf_json ~quick ~jobs:!jobs ~shards:!shards ~total_wall
        (List.rev !perfs)
  end
