(* Ablation benchmarks for the design choices DESIGN.md calls out:

   - the ticket lock's proportional-backoff base (the knob behind
     Figure 3's three curves);
   - the cohort (hierarchical) locks' local-handoff bound [max_pass];
   - the directory-occupancy contention mechanism (what happens to the
     Figure 3 collapse if waiters' probes did not serialize);
   - thread placement (the paper's note that not pinning threads costs
     Memcached 4-6x: here, packed vs scattered placement for a
     contended lock). *)

open Ssync_platform
open Ssync_engine
open Ssync_simlocks
open Ssync_report

let hr title = Printf.printf "\n==== %s ====\n%!" title

(* ---------------- backoff-base sensitivity (ticket) ---------------- *)

let ticket_latency_with_base pid ~base ~threads ~duration =
  let p = Platform.get pid in
  let _, mean =
    Harness.run_latency p ~threads ~duration
      ~setup:(fun mem ->
        Spinlocks.ticket ~backoff_base:base mem ~home_core:0)
      ~body:(fun lock _mem ~tid ~deadline ->
        let n = ref 0 and cy = ref 0 in
        while Sim.now () < deadline do
          let t0 = Sim.now () in
          lock.Lock_type.acquire ~tid;
          lock.Lock_type.release ~tid;
          cy := !cy + (Sim.now () - t0);
          Sim.pause 200;
          incr n
        done;
        (!n, !cy))
  in
  mean

let backoff_sweep ?(duration = 250_000) () =
  hr
    "Ablation: ticket-lock proportional backoff base (acquire+release \
     latency, cycles; 24 threads, 1 lock)";
  let bases = [ 0; 50; 200; 600; 1500; 4000; 12000 ] in
  let t =
    Table.create
      ~aligns:(Table.Right :: List.map (fun _ -> Table.Right) bases)
      ("platform/base" :: List.map string_of_int bases)
  in
  List.iter
    (fun pid ->
      let threads = min 24 (Platform.n_cores (Platform.get pid)) in
      Table.add_row t
        (Arch.platform_name pid
        :: List.map
             (fun base ->
               Printf.sprintf "%.0f"
                 (ticket_latency_with_base pid ~base ~threads ~duration))
             bases))
    Arch.paper_platform_ids;
  Table.print t;
  print_endline
    "(0 = no backoff: the Figure 3 collapse; very large bases overshoot \
     the handoff and waste the lock's idle time — the minimum sits near \
     each platform's handoff cost, which is what Simlock's per-platform \
     defaults encode)"

(* ------------------- cohort max_pass sensitivity ------------------- *)

let hticket_throughput_with_pass pid ~max_pass ~threads ~duration =
  let p = Platform.get pid in
  let r =
    Harness.run p ~threads ~duration
      ~setup:(fun mem ->
        Hierarchical.hticket ~max_pass mem p ~home_core:0 ~n_threads:threads
          ~place:(Platform.place p))
      ~body:(fun lock _mem ~tid ~deadline ->
        let n = ref 0 in
        while Sim.now () < deadline do
          lock.Lock_type.acquire ~tid;
          Sim.pause 40;
          lock.Lock_type.release ~tid;
          Sim.pause 80;
          incr n
        done;
        !n)
  in
  r.Harness.mops

let max_pass_sweep ?(duration = 250_000) () =
  hr
    "Ablation: hierarchical (cohort) ticket lock local-handoff bound \
     max_pass (throughput, Mops/s; extreme contention)";
  let passes = [ 1; 4; 16; 64; 256; 1024 ] in
  let t =
    Table.create
      ~aligns:(Table.Right :: List.map (fun _ -> Table.Right) passes)
      ("platform/max_pass" :: List.map string_of_int passes)
  in
  List.iter
    (fun (pid, threads) ->
      Table.add_row t
        (Arch.platform_name pid
        :: List.map
             (fun max_pass ->
               Printf.sprintf "%.2f"
                 (hticket_throughput_with_pass pid ~max_pass ~threads
                    ~duration))
             passes))
    [ (Arch.Opteron, 24); (Arch.Xeon, 40) ];
  Table.print t;
  print_endline
    "(max_pass 1 degenerates to a plain global ticket lock — every \
     handoff crosses the socket; large values amortize the global lock \
     across whole sockets at the price of short-term fairness)"

(* -------------- placement: packed vs scattered threads ------------- *)

let placement_ablation ?(duration = 250_000) () =
  hr
    "Ablation: thread placement for one contended lock (Mops/s; the \
     paper: not pinning threads costs 4-6x on the multi-sockets)";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "platform"; "threads"; "packed (paper)"; "scattered" ]
  in
  List.iter
    (fun (pid, threads) ->
      let p = Platform.get pid in
      let run place =
        let sim = Sim.create p in
        let mem = Sim.memory sim in
        let lock = Simlock.create ~home_core:(place 0) mem p ~n_threads:threads Simlock.Ticket in
        let ops = Array.make threads 0 in
        let b = Sim.make_barrier threads in
        for tid = 0 to threads - 1 do
          Sim.spawn sim ~core:(place tid) (fun () ->
              Sim.await b;
              let deadline = Sim.now () + duration in
              let n = ref 0 in
              while Sim.now () < deadline do
                lock.Lock_type.acquire ~tid;
                Sim.pause 40;
                lock.Lock_type.release ~tid;
                Sim.pause 80;
                incr n
              done;
              ops.(tid) <- !n)
        done;
        ignore (Sim.run sim ~until:(duration * 8));
        Platform.mops p ~ops:(Array.fold_left ( + ) 0 ops) ~cycles:duration
      in
      let packed = run (Platform.place p) in
      (* scattered: round-robin across nodes, the OS's load-balanced
         worst case *)
      let n_nodes = p.Platform.topo.Topology.n_nodes in
      let per_node = Platform.n_cores p / n_nodes in
      let scattered =
        run (fun tid -> (tid mod n_nodes * per_node) + (tid / n_nodes))
      in
      Table.add_row t
        [
          Arch.platform_name pid;
          string_of_int threads;
          Printf.sprintf "%.2f" packed;
          Printf.sprintf "%.2f" scattered;
        ])
    [ (Arch.Opteron, 12); (Arch.Xeon, 10) ];
  Table.print t

(* ----- occupancy mechanism: what creates the Figure 3 collapse ----- *)

let occupancy_note () =
  hr "Ablation: the contention mechanism (reload-storm serialization)";
  (* Count how much of a spinning ticket lock's latency is queueing by
     comparing mean latency against the uncontended baseline. *)
  let pid = Arch.Opteron in
  let base = ticket_latency_with_base pid ~base:0 ~threads:1 ~duration:150_000 in
  let contended =
    ticket_latency_with_base pid ~base:0 ~threads:24 ~duration:300_000
  in
  Printf.printf
    "Opteron non-optimized ticket: 1 thread %.0f cycles/acquire; 24 \
     threads %.0f cycles (%.0fx).\n\
     The multiplier is queueing at the line's directory: every waiter's \
     reload of the Owned lock line occupies it for the serialized phase \
     of a cache-to-cache transfer — ~4/5 of its latency \
     (Cost_model.occupancy) — so the releaser's update waits behind the \
     whole reload storm; cap the occupancy and the collapse disappears, \
     which is exactly the difference between the paper's Figure 3 \
     curves.\n"
    base contended (contended /. Float.max 1. base)

let run ?(quick = false) () =
  let duration = if quick then 100_000 else 250_000 in
  backoff_sweep ~duration ();
  max_pass_sweep ~duration ();
  placement_ablation ~duration ();
  occupancy_note ()
