(* Ablation benchmarks for the design choices DESIGN.md calls out:

   - the ticket lock's proportional-backoff base (the knob behind
     Figure 3's three curves);
   - the cohort (hierarchical) locks' local-handoff bound [max_pass];
   - the directory-occupancy contention mechanism (what happens to the
     Figure 3 collapse if waiters' probes did not serialize);
   - thread placement (the paper's note that not pinning threads costs
     Memcached 4-6x: here, packed vs scattered placement for a
     contended lock). *)

open Ssync_platform
open Ssync_engine
open Ssync_simlocks
open Ssync_report

let hr title = Printf.printf "\n==== %s ====\n%!" title

(* ---------------- backoff-base sensitivity (ticket) ---------------- *)

let ticket_latency_with_base pid ~base ~threads ~duration =
  let p = Platform.get pid in
  let _, mean =
    Harness.run_latency p ~threads ~duration
      ~setup:(fun mem ->
        Spinlocks.ticket ~backoff_base:base mem ~home_core:0 ~n_threads:threads)
      ~body:(fun lock _mem ~tid ~deadline ->
        let n = ref 0 and cy = ref 0 in
        while Sim.now () < deadline do
          let t0 = Sim.now () in
          lock.Lock_type.acquire ~tid;
          lock.Lock_type.release ~tid;
          cy := !cy + (Sim.now () - t0);
          Sim.pause 200;
          incr n
        done;
        (!n, !cy))
  in
  mean

let backoff_bases = [ 0; 50; 200; 600; 1500; 4000; 12000 ]

let backoff_jobs ~duration =
  Section.sweep
    (List.concat_map
       (fun pid -> List.map (fun base -> (pid, base)) backoff_bases)
       Arch.paper_platform_ids)
    (fun (pid, base) ->
      let threads = min 24 (Platform.n_cores (Platform.get pid)) in
      ticket_latency_with_base pid ~base ~threads ~duration)

let backoff_render got () =
  hr
    "Ablation: ticket-lock proportional backoff base (acquire+release \
     latency, cycles; 24 threads, 1 lock)";
  let next = Section.cursor got in
  let t =
    Table.create
      ~aligns:(Table.Right :: List.map (fun _ -> Table.Right) backoff_bases)
      ("platform/base" :: List.map string_of_int backoff_bases)
  in
  List.iter
    (fun pid ->
      Table.add_row t
        (Arch.platform_name pid
        :: List.map (fun _ -> Printf.sprintf "%.0f" (next ())) backoff_bases))
    Arch.paper_platform_ids;
  Table.print t;
  print_endline
    "(0 = no backoff: the Figure 3 collapse; very large bases overshoot \
     the handoff and waste the lock's idle time — the minimum sits near \
     each platform's handoff cost, which is what Simlock's per-platform \
     defaults encode)"

(* ------------------- cohort max_pass sensitivity ------------------- *)

let hticket_throughput_with_pass pid ~max_pass ~threads ~duration =
  let p = Platform.get pid in
  let r =
    Harness.run p ~threads ~duration
      ~setup:(fun mem ->
        Hierarchical.hticket ~max_pass mem p ~home_core:0 ~n_threads:threads
          ~place:(Platform.place p))
      ~body:(fun lock _mem ~tid ~deadline ->
        let n = ref 0 in
        while Sim.now () < deadline do
          lock.Lock_type.acquire ~tid;
          Sim.pause 40;
          lock.Lock_type.release ~tid;
          Sim.pause 80;
          incr n
        done;
        !n)
  in
  r.Harness.mops

let max_passes = [ 1; 4; 16; 64; 256; 1024 ]
let max_pass_platforms = [ (Arch.Opteron, 24); (Arch.Xeon, 40) ]

let max_pass_jobs ~duration =
  Section.sweep
    (List.concat_map
       (fun (pid, threads) ->
         List.map (fun max_pass -> (pid, threads, max_pass)) max_passes)
       max_pass_platforms)
    (fun (pid, threads, max_pass) ->
      hticket_throughput_with_pass pid ~max_pass ~threads ~duration)

let max_pass_render got () =
  hr
    "Ablation: hierarchical (cohort) ticket lock local-handoff bound \
     max_pass (throughput, Mops/s; extreme contention)";
  let next = Section.cursor got in
  let t =
    Table.create
      ~aligns:(Table.Right :: List.map (fun _ -> Table.Right) max_passes)
      ("platform/max_pass" :: List.map string_of_int max_passes)
  in
  List.iter
    (fun (pid, _) ->
      Table.add_row t
        (Arch.platform_name pid
        :: List.map (fun _ -> Printf.sprintf "%.2f" (next ())) max_passes))
    max_pass_platforms;
  Table.print t;
  print_endline
    "(max_pass 1 degenerates to a plain global ticket lock — every \
     handoff crosses the socket; large values amortize the global lock \
     across whole sockets at the price of short-term fairness)"

(* -------------- placement: packed vs scattered threads ------------- *)

let placement_throughput pid ~threads ~scattered ~duration =
  Sim.serial_fallback ~policy_key:("placement:" ^ Arch.platform_name pid)
  @@ fun () ->
  let p = Platform.get pid in
  let place =
    if not scattered then Platform.place p
    else begin
      (* scattered: round-robin across nodes, the OS's load-balanced
         worst case *)
      let n_nodes = p.Platform.topo.Topology.n_nodes in
      let per_node = Platform.n_cores p / n_nodes in
      fun tid -> (tid mod n_nodes * per_node) + (tid / n_nodes)
    end
  in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let lock =
    Simlock.create ~home_core:(place 0) mem p ~n_threads:threads Simlock.Ticket
  in
  let ops = Array.make threads 0 in
  let b = Sim.make_barrier threads in
  for tid = 0 to threads - 1 do
    Sim.spawn sim ~core:(place tid) (fun () ->
        Sim.await b;
        let deadline = Sim.now () + duration in
        let n = ref 0 in
        while Sim.now () < deadline do
          lock.Lock_type.acquire ~tid;
          Sim.pause 40;
          lock.Lock_type.release ~tid;
          Sim.pause 80;
          incr n
        done;
        ops.(tid) <- !n)
  done;
  ignore (Sim.run sim ~until:(duration * 8));
  Platform.mops p ~ops:(Array.fold_left ( + ) 0 ops) ~cycles:duration

let placement_platforms = [ (Arch.Opteron, 12); (Arch.Xeon, 10) ]

let placement_jobs ~duration =
  Section.sweep
    (List.concat_map
       (fun (pid, threads) ->
         [ (pid, threads, false); (pid, threads, true) ])
       placement_platforms)
    (fun (pid, threads, scattered) ->
      placement_throughput pid ~threads ~scattered ~duration)

let placement_render got () =
  hr
    "Ablation: thread placement for one contended lock (Mops/s; the \
     paper: not pinning threads costs 4-6x on the multi-sockets)";
  let next = Section.cursor got in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "platform"; "threads"; "packed (paper)"; "scattered" ]
  in
  List.iter
    (fun (pid, threads) ->
      let packed = next () in
      let scattered = next () in
      Table.add_row t
        [
          Arch.platform_name pid;
          string_of_int threads;
          Printf.sprintf "%.2f" packed;
          Printf.sprintf "%.2f" scattered;
        ])
    placement_platforms;
  Table.print t

(* ----- occupancy mechanism: what creates the Figure 3 collapse ----- *)

let occupancy_jobs () =
  (* Count how much of a spinning ticket lock's latency is queueing by
     comparing mean latency against the uncontended baseline. *)
  Section.sweep
    [ (1, 150_000); (24, 300_000) ]
    (fun (threads, duration) ->
      ticket_latency_with_base Arch.Opteron ~base:0 ~threads ~duration)

let occupancy_render got () =
  hr "Ablation: the contention mechanism (reload-storm serialization)";
  let base = got 0 and contended = got 1 in
  Printf.printf
    "Opteron non-optimized ticket: 1 thread %.0f cycles/acquire; 24 \
     threads %.0f cycles (%.0fx).\n\
     The multiplier is queueing at the line's directory: every waiter's \
     reload of the Owned lock line occupies it for the serialized phase \
     of a cache-to-cache transfer — ~4/5 of its latency \
     (Cost_model.occupancy) — so the releaser's update waits behind the \
     whole reload storm; cap the occupancy and the collapse disappears, \
     which is exactly the difference between the paper's Figure 3 \
     curves.\n"
    base contended
    (contended /. Float.max 1. base)

let run ?(quick = false) () =
  let duration = if quick then 100_000 else 250_000 in
  let backoff_j, backoff_g = backoff_jobs ~duration in
  let max_pass_j, max_pass_g = max_pass_jobs ~duration in
  let placement_j, placement_g = placement_jobs ~duration in
  let occupancy_j, occupancy_g = occupancy_jobs () in
  Section.make
    ~jobs:
      (Array.concat [ backoff_j; max_pass_j; placement_j; occupancy_j ])
    (fun () ->
      backoff_render backoff_g ();
      max_pass_render max_pass_g ();
      placement_render placement_g ();
      occupancy_render occupancy_g ())
