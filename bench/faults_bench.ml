(* Lock-holder-preemption sensitivity: throughput of each lock algorithm
   as the per-scheduling-point preemption probability rises, per
   platform.  The paper measures on dedicated machines with pinned
   threads; this experiment asks the question those machines hide —
   which lock families degrade gracefully when the OS deschedules
   threads, including ones holding the lock?

   Expected shape (and what the table shows): FIFO handoff locks
   (TICKET, ARRAY, MCS, CLH and the hierarchical cohorts) collapse under
   holder/waiter preemption, because the lock is granted to a specific
   thread — if that thread is descheduled, every later waiter stalls
   behind it.  Unordered spinlocks (TAS, TTAS) shrug: a preempted waiter
   just loses races it wasn't guaranteed to win, and only preemption of
   the holder itself hurts.  MUTEX sits between — sleeping waiters are
   preemption-tolerant, but the holder still serializes.  All faults are
   drawn from seeded per-thread streams, so every cell is reproducible.

   Runs that end with live threads stalled past the window (e.g. a
   preempted FIFO holder at high rates) are marked with [*]: their
   throughput is the genuinely completed work, and the harness's health
   record says who stalled — nothing is silently truncated. *)

open Ssync_platform
open Ssync_engine
open Ssync_simlocks
open Ssync_ccbench
open Ssync_report

let hr title = Printf.printf "\n==== %s ====\n%!" title

(* Preemption probabilities per scheduling point.  With critical
   sections of a few hundred cycles, 1e-3 preempts roughly one CS in
   ten and 1e-2 most of them. *)
let rates = [ 0.; 0.0002; 0.001; 0.005 ]

(* A preemption quantum: 2k-20k cycles, i.e. 1-10x a contended handoff,
   far below an OS quantum but enough to stall a FIFO handoff chain. *)
let preempt_cycles = (2_000, 20_000)

let threads_for pid =
  match pid with
  | Arch.Opteron -> 18
  | Arch.Xeon -> 20
  | Arch.Niagara -> 16
  | Arch.Tilera -> 18
  | Arch.Opteron2 -> 8
  | Arch.Xeon2 -> 12

let cell ?duration pid algo ~threads ~rate =
  let faults =
    if rate = 0. then Fault.none
    else Fault.preemption ~seed:42 ~cycles:preempt_cycles rate
  in
  let r = Lock_bench.throughput ~faults ?duration pid algo ~threads ~n_locks:1 in
  let stalled =
    match r.Ssync_engine.Harness.health.Sim.verdict with
    | Sim.Completed -> false
    | Sim.Stalled _ -> true
  in
  (r.Ssync_engine.Harness.mops, stalled)

let run ?(quick = false) () =
  let duration = if quick then 60_000 else 200_000 in
  (* one job per (platform, lock algo): a row of rate cells *)
  let combos =
    List.concat_map
      (fun pid ->
        List.map
          (fun algo -> (pid, algo))
          (Simlock.algos_for (Platform.get pid)))
      Arch.paper_platform_ids
  in
  let jobs, got =
    Section.sweep combos (fun (pid, algo) ->
        let threads = threads_for pid in
        List.map (fun rate -> cell ~duration pid algo ~threads ~rate) rates)
  in
  Section.make ~jobs (fun () ->
      hr
        "Preemption sensitivity: single-lock throughput (Mops/s) vs \
         per-scheduling-point preemption rate";
      Printf.printf
        "(quantum %d-%d cycles; seed 42; '*' = run ended with a stalled \
         thread past the measurement window)\n"
        (fst preempt_cycles) (snd preempt_cycles);
      let next = Section.cursor got in
      List.iter
        (fun pid ->
          let p = Platform.get pid in
          let threads = threads_for pid in
          Printf.printf "\n-- %s, %d threads, 1 lock --\n%!" p.Platform.name
            threads;
          let t =
            Table.create
              ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) rates)
              ("lock"
              :: List.map (fun r -> Printf.sprintf "p=%g" r) rates)
          in
          List.iter
            (fun algo ->
              let cells =
                List.map
                  (fun (mops, stalled) ->
                    Printf.sprintf "%.2f%s" mops (if stalled then "*" else ""))
                  (next ())
              in
              Table.add_row t (Simlock.name algo :: cells))
            (Simlock.algos_for p);
          Table.print t)
        Arch.paper_platform_ids)
