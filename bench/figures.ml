(* One generator per paper table/figure.  Each returns a {!Section.t}:
   the simulations are described as independent pure jobs (fanned across
   domains by the driver), and the printing happens afterwards in the
   section's [render], reading the job slots.  Durations are chosen so
   the full harness runs in minutes on one host CPU; shapes, not
   absolute precision, are the target (see EXPERIMENTS.md). *)

open Ssync_platform
open Ssync_report

let hr title =
  Printf.printf "\n==== %s ====\n%!" title

let paper_platforms = Arch.paper_platform_ids

(* Thread counts: the paper's x axes, scaled down to a small set of
   sample points per platform. *)
let thread_points pid =
  match pid with
  | Arch.Opteron -> [ 1; 2; 6; 12; 18; 24; 36; 48 ]
  | Arch.Xeon -> [ 1; 2; 10; 20; 40; 60; 80 ]
  | Arch.Niagara -> [ 1; 2; 8; 16; 32; 48; 64 ]
  | Arch.Tilera -> [ 1; 2; 6; 12; 18; 24; 36 ]
  | Arch.Opteron2 -> [ 1; 2; 4; 8 ]
  | Arch.Xeon2 -> [ 1; 2; 6; 12 ]

(* --------------------------- Table 1 ------------------------------ *)

let table1 () =
  Section.serial (fun () ->
      hr "Table 1: hardware and OS characteristics of the target platforms";
      let t =
        Table.create
          ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left; Table.Left ]
          ("" :: List.map (fun (m : Table1.t) -> Arch.platform_name m.Table1.id)
                   Table1.all)
      in
      let field_names = List.map fst (Table1.rows Table1.opteron) in
      List.iteri
        (fun i name ->
          Table.add_row t
            (name
            :: List.map
                 (fun m -> snd (List.nth (Table1.rows m) i))
                 Table1.all))
        field_names;
      Table.print t)

(* --------------------------- Table 3 ------------------------------ *)

let table3 () =
  let jobs, got =
    Section.sweep paper_platforms (fun pid -> Ssync_ccbench.Ccbench.table3 pid)
  in
  Section.make ~jobs (fun () ->
      hr
        "Table 3: local caches and memory latencies (cycles) [paper values \
         in ()]";
      let t =
        Table.create
          ~aligns:
            [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
          [ "level"; "Opteron"; "Xeon"; "Niagara"; "Tilera" ]
      in
      let tables = List.mapi (fun i _ -> got i) paper_platforms in
      List.iter
        (fun lvl ->
          let cell pid table3 =
            match List.assoc lvl table3 with
            | Some v -> (
                match Latencies.table3 pid lvl with
                | Some p -> Table.vs_paper ~measured:v ~paper:(Some p)
                | None -> string_of_int v)
            | None -> "-"
          in
          Table.add_row t
            (Arch.cache_level_name lvl
            :: List.map2 cell paper_platforms tables))
        [ Arch.L1; Arch.L2; Arch.LLC; Arch.RAM ];
      Table.print t)

(* --------------------------- Table 2 ------------------------------ *)

let table2 () =
  let jobs, got =
    Section.sweep paper_platforms (fun pid -> Ssync_ccbench.Ccbench.table2 pid)
  in
  let dir_jobs, got_dir =
    Section.sweep [ () ] (fun () ->
        Ssync_ccbench.Ccbench.opteron_remote_directory_load ())
  in
  Section.make ~jobs:(Array.append jobs dir_jobs) (fun () ->
      hr "Table 2: coherence latencies by state and distance [measured (paper)]";
      List.iteri
        (fun i pid ->
          Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
          let cells = got i in
          let t =
            Table.create
              ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Right ]
              [ "op"; "state"; "distance"; "cycles" ]
          in
          List.iter
            (fun (c : Ssync_ccbench.Ccbench.cell) ->
              Table.add_row t
                [
                  Arch.memop_name c.Ssync_ccbench.Ccbench.op;
                  Arch.cstate_name c.Ssync_ccbench.Ccbench.state;
                  Arch.distance_name c.Ssync_ccbench.Ccbench.distance;
                  Table.vs_paper ~measured:c.Ssync_ccbench.Ccbench.measured
                    ~paper:c.Ssync_ccbench.Ccbench.paper;
                ])
            cells;
          Table.print t)
        paper_platforms;
      Printf.printf
        "\nOpteron worst-case remote directory load (section 5.2, paper \
         ~312): %d\n"
        (got_dir 0))

(* --------------------------- Figure 3 ----------------------------- *)

let fig3 ?(duration = 300_000) () =
  let threads = [ 1; 2; 6; 12; 18; 24; 36; 48 ] in
  let variants =
    [
      ("non-optimized", Ssync_simlocks.Simlock.Ticket_spin);
      ("back-off", Ssync_simlocks.Simlock.Ticket);
      ("back-off+prefetchw", Ssync_simlocks.Simlock.Ticket_prefetchw);
    ]
  in
  let combos =
    List.concat_map
      (fun (_, variant) -> List.map (fun n -> (variant, n)) threads)
      variants
  in
  let jobs, got =
    Section.sweep combos (fun (variant, n) ->
        Ssync_ccbench.Lock_bench.figure3_latency ~duration variant ~threads:n)
  in
  Section.make ~jobs (fun () ->
      hr
        "Figure 3: ticket lock acquire+release latency on the Opteron \
         (cycles, lower is better)";
      let next = Section.cursor got in
      let series =
        List.map
          (fun (name, _) -> Series.of_fn name threads (fun _ -> next ()))
          variants
      in
      print_endline (Series.table ~x_label:"threads" series))

(* --------------------------- Figure 4 ----------------------------- *)

let fig4 ?(duration = 250_000) () =
  let jobs, got =
    Section.sweep paper_platforms (fun pid ->
        Ssync_ccbench.Atomic_bench.figure4 ~duration pid
          ~thread_counts:(thread_points pid))
  in
  Section.make ~jobs (fun () ->
      hr "Figure 4: throughput of atomic operations on one location (Mops/s)";
      List.iteri
        (fun i pid ->
          Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
          let results = got i in
          let series =
            List.map
              (fun (kind, points) ->
                Series.make
                  (Ssync_ccbench.Atomic_bench.op_kind_name kind)
                  (List.map (fun (n, m) -> (n, m)) points))
              results
          in
          print_endline (Series.table ~x_label:"threads" series))
        paper_platforms)

(* ------------------------- Figures 5 and 7 ------------------------ *)

let lock_throughput_figure ~title ~n_locks ?(duration = 200_000) () =
  let combos =
    List.concat_map
      (fun pid ->
        let p = Platform.get pid in
        List.concat_map
          (fun algo -> List.map (fun n -> (pid, algo, n)) (thread_points pid))
          (Ssync_simlocks.Simlock.algos_for p))
      paper_platforms
  in
  let jobs, got =
    Section.sweep combos (fun (pid, algo, n) ->
        (Ssync_ccbench.Lock_bench.throughput ~duration pid algo ~threads:n
           ~n_locks)
          .Ssync_engine.Harness.mops)
  in
  Section.make ~jobs (fun () ->
      hr title;
      let next = Section.cursor got in
      List.iter
        (fun pid ->
          let p = Platform.get pid in
          Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
          let series =
            List.map
              (fun algo ->
                Series.of_fn
                  (Ssync_simlocks.Simlock.name algo)
                  (thread_points pid)
                  (fun _ -> next ()))
              (Ssync_simlocks.Simlock.algos_for p)
          in
          print_endline (Series.table ~x_label:"threads" series))
        paper_platforms)

let fig5 ?duration () =
  lock_throughput_figure
    ~title:
      "Figure 5: lock throughput, single lock / extreme contention (Mops/s)"
    ~n_locks:1 ?duration ()

let fig7 ?duration () =
  lock_throughput_figure
    ~title:"Figure 7: lock throughput, 512 locks / very low contention (Mops/s)"
    ~n_locks:512 ?duration ()

(* --------------------------- Figure 6 ----------------------------- *)

let fig6 () =
  let jobs, got =
    Section.sweep paper_platforms (fun pid ->
        let p = Platform.get pid in
        let distances = Latencies.distance_classes pid in
        List.map
          (fun algo ->
            ( Ssync_ccbench.Lock_bench.single_thread_latency pid algo,
              List.map
                (fun d ->
                  Ssync_ccbench.Lock_bench.uncontested_latency pid algo d)
                distances ))
          (Ssync_simlocks.Simlock.algos_for p))
  in
  Section.make ~jobs (fun () ->
      hr
        "Figure 6: uncontested lock acquisition latency by previous holder \
         location (cycles)";
      List.iteri
        (fun i pid ->
          let p = Platform.get pid in
          Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
          let algos = Ssync_simlocks.Simlock.algos_for p in
          let distances = Latencies.distance_classes pid in
          let t =
            Table.create
              ~aligns:
                (Table.Left
                :: List.map
                     (fun _ -> Table.Right)
                     ("s" :: List.map Arch.distance_name distances))
              ("lock" :: "single thread" :: List.map Arch.distance_name distances)
          in
          List.iter2
            (fun algo (single, cells) ->
              let single = Printf.sprintf "%.0f" single in
              let cells =
                List.map
                  (function
                    | Some l -> Printf.sprintf "%.0f" l
                    | None -> "-")
                  cells
              in
              Table.add_row t
                (Ssync_simlocks.Simlock.name algo :: single :: cells))
            algos (got i);
          Table.print t)
        paper_platforms)

(* --------------------------- Figure 8 ----------------------------- *)

let fig8 ?(duration = 200_000) () =
  let thread_samples pid =
    match pid with
    | Arch.Opteron -> [ 1; 6; 18; 36 ]
    | Arch.Xeon -> [ 1; 10; 18; 36 ]
    | Arch.Niagara -> [ 1; 8; 18; 36 ]
    | Arch.Tilera -> [ 1; 8; 18; 36 ]
    | _ -> [ 1 ]
  in
  let lock_counts = [ 4; 16; 32; 128 ] in
  let combos =
    List.concat_map
      (fun n_locks ->
        List.concat_map
          (fun pid ->
            List.map (fun threads -> (n_locks, pid, threads))
              (thread_samples pid))
          paper_platforms)
      lock_counts
  in
  let jobs, got =
    Section.sweep combos (fun (n_locks, pid, threads) ->
        Ssync_ccbench.Lock_bench.best_of ~duration pid ~threads ~n_locks)
  in
  Section.make ~jobs (fun () ->
      hr
        "Figure 8: best lock and scalability by number of locks (\"X : Y\" = \
         scalability vs single thread : best lock)";
      let next = Section.cursor got in
      List.iter
        (fun n_locks ->
          Printf.printf "\n-- %d locks --\n" n_locks;
          let t =
            Table.create
              ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left ]
              [ "platform"; "threads"; "Mops/s"; "X : best lock" ]
          in
          List.iter
            (fun pid ->
              List.iter
                (fun threads ->
                  let b = next () in
                  Table.add_row t
                    [
                      Arch.platform_name pid;
                      string_of_int threads;
                      Printf.sprintf "%.1f" b.Ssync_ccbench.Lock_bench.mops;
                      Printf.sprintf "%.1fx : %s"
                        b.Ssync_ccbench.Lock_bench.scalability
                        (Ssync_simlocks.Simlock.name
                           b.Ssync_ccbench.Lock_bench.algo);
                    ])
                (thread_samples pid))
            paper_platforms;
          Table.print t)
        lock_counts)

(* --------------------------- Figure 9 ----------------------------- *)

let fig9 () =
  let jobs, got =
    Section.sweep paper_platforms (fun pid ->
        List.map
          (fun d -> (d, Ssync_ccbench.Mp_bench.one_to_one pid d))
          (Latencies.distance_classes pid))
  in
  Section.make ~jobs (fun () ->
      hr
        "Figure 9: one-to-one message passing latency by distance (cycles; \
         paper: e.g. Opteron one-way 262..660, Tilera hw 61..64)";
      let rows =
        List.concat
          (List.mapi
             (fun i pid ->
               List.filter_map
                 (fun (d, r) ->
                   match r with
                   | None -> None
                   | Some r ->
                       Some
                         [
                           Arch.platform_name pid;
                           Arch.distance_name d;
                           Printf.sprintf "%.0f" r.Ssync_ccbench.Mp_bench.one_way;
                           Printf.sprintf "%.0f"
                             r.Ssync_ccbench.Mp_bench.round_trip;
                         ])
                 (got i))
             paper_platforms)
      in
      Table.print
        (Table.of_rows
           ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
           [ "platform"; "distance"; "one-way"; "round-trip" ]
           rows))

(* --------------------------- Figure 10 ---------------------------- *)

let fig10 ?(duration = 250_000) () =
  let client_counts pid =
    let n = Platform.n_cores (Platform.get pid) - 1 in
    List.filter (fun c -> c <= n) [ 1; 2; 6; 12; 18; 24; 35 ]
  in
  let modes =
    [
      ("one-way", Ssync_ccbench.Mp_bench.One_way);
      ("round-trip", Ssync_ccbench.Mp_bench.Round_trip);
    ]
  in
  let combos =
    List.concat_map
      (fun pid ->
        List.concat_map
          (fun (_, mode) ->
            List.map (fun c -> (pid, mode, c)) (client_counts pid))
          modes)
      paper_platforms
  in
  let jobs, got =
    Section.sweep combos (fun (pid, mode, c) ->
        Ssync_ccbench.Mp_bench.client_server ~duration pid mode ~clients:c)
  in
  Section.make ~jobs (fun () ->
      hr "Figure 10: client-server message passing throughput (Mops/s)";
      let next = Section.cursor got in
      List.iter
        (fun pid ->
          Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
          let series =
            List.map
              (fun (name, _) ->
                Series.of_fn name (client_counts pid) (fun _ -> next ()))
              modes
          in
          print_endline (Series.table ~x_label:"clients" series))
        paper_platforms)

(* ----------------------- False sharing --------------------------- *)

(* Padded vs packed layouts of per-thread words (Fs_bench): the
   workload has zero logical contention, so every gap between the two
   curves is pure false sharing — line-granular coherence plus
   interconnect occupancy, which single-word lines could not express. *)
let false_sharing ?(duration = 200_000) () =
  let fs_thread_points = [ 2; 4; 8 ] in
  let combos =
    List.concat_map
      (fun pid ->
        List.concat_map
          (fun w ->
            List.concat_map
              (fun l ->
                List.map
                  (fun threads -> (pid, w, l, threads))
                  fs_thread_points)
              Ssync_ccbench.Fs_bench.all_layouts)
          Ssync_ccbench.Fs_bench.all_workloads)
      paper_platforms
  in
  let jobs, got =
    Section.sweep combos (fun (pid, w, l, threads) ->
        (Ssync_ccbench.Fs_bench.throughput ~duration pid w l ~threads)
          .Ssync_engine.Harness.mops)
  in
  Section.make ~jobs (fun () ->
      hr
        "False sharing: private per-thread words, padded vs packed lines \
         (Mops/s)";
      let next = Section.cursor got in
      List.iter
        (fun pid ->
          Printf.printf "\n-- %s --\n" (Arch.platform_name pid);
          let series =
            List.concat_map
              (fun w ->
                List.map
                  (fun l ->
                    Series.of_fn
                      (Printf.sprintf "%s %s"
                         (Ssync_ccbench.Fs_bench.workload_name w)
                         (Ssync_ccbench.Fs_bench.layout_name l))
                      fs_thread_points
                      (fun _ -> next ()))
                  Ssync_ccbench.Fs_bench.all_layouts)
              Ssync_ccbench.Fs_bench.all_workloads
          in
          print_endline (Series.table ~x_label:"threads" series))
        paper_platforms)
